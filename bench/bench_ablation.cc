// Ablation benchmarks for the design choices DESIGN.md calls out. Not a
// paper figure — these quantify *why* the design decisions of sections
// 4.1.1, 4.1.7 and 5.2.6 matter, on both device models:
//
//   A1  bitmap selections vs eager oid materialization (4.1.1): the bitmap
//       representation is what makes Ocelot's selection selectivity-
//       invariant and faster than MP in Fig. 5a/5b.
//   A2  accumulator spreading in grouped aggregation (4.1.7): one
//       accumulator per group concentrates atomic traffic; the inversely-
//       proportional spread buys back the contention.
//   A3  the memory manager's hash-table cache (5.2.6): probing a cached
//       table vs rebuilding it per join.

#include "bench/micro_common.h"

#include "ocelot/engine.h"
#include "ocelot/hash_table.h"

namespace {

using bench::Label;
using cstore::Bound;

const std::vector<std::string> kOcelotConfigs = {"ocelot:cpu", "ocelot:gpu"};

// A1: selection result representation.
void RegisterBitmapAblation() {
  for (const std::string& pipeline : kOcelotConfigs) {
    for (bool materialize : {false, true}) {
      std::string name = std::string("Ablation_SelectRepr/") + Label(pipeline) + "/" +
                         (materialize ? "oid_list" : "bitmap");
      bench::RegisterPoint(
          name, pipeline, [materialize](mal::Session* s, benchmark::State& st) {
            cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(256), 1000);
            bench::MicroLoop(s, st, [&] {
              auto res = s->engine()->SelectRange(col, nullptr, Bound::Incl(0),
                                                  Bound::Incl(499));
              if (!res.ok()) return !bench::IsMemoryLimit(res.status());
              if (materialize) {
                auto mat = s->ocelot()->MaterializeCand(*res);
                if (!mat.ok()) return !bench::IsMemoryLimit(mat);
              }
              bench::Settle(s);
              return true;
            });
          });
    }
  }
}

// A2: grouped-aggregation accumulator spreading. The spread is keyed off the
// group count; contrasting few groups (heavy contention, wide spread) with
// many groups (no contention, spread collapses to 1) exposes the mechanism.
void RegisterAccumulatorAblation() {
  for (const std::string& pipeline : kOcelotConfigs) {
    for (int groups : {4, 64, 1024}) {
      std::string name = std::string("Ablation_GroupedAggContention/") +
                         Label(pipeline) + "/" + std::to_string(groups) + "groups";
      bench::RegisterPoint(
          name, pipeline, [groups](mal::Session* s, benchmark::State& st) {
            std::size_t n = bench::RowsForMb(256);
            cstore::BatPtr gids = bench::UniformInts(n, groups);
            // Reinterpret the int column as group ids (dense 0..groups-1).
            cstore::BatPtr g = cstore::Bat::MakeOid(n);
            for (std::size_t i = 0; i < n; ++i) {
              g->oids()[i] = static_cast<cstore::oid_t>(gids->ints()[i]);
            }
            cstore::BatPtr vals = cstore::Bat::MakeFloat(n);
            for (auto& v : vals->floats()) v = 1.0f;
            bench::MicroLoop(s, st, [&] {
              auto res = s->engine()->SubSum(vals, g, static_cast<std::size_t>(groups));
              if (!res.ok()) return !bench::IsMemoryLimit(res.status());
              bench::Settle(s);
              return true;
            });
          });
    }
  }
}

// A3: hash-table cache hit vs cold rebuild per probe.
void RegisterHashCacheAblation() {
  for (const std::string& pipeline : kOcelotConfigs) {
    for (bool cached : {true, false}) {
      std::string name = std::string("Ablation_HashTableCache/") + Label(pipeline) +
                         "/" + (cached ? "cached" : "rebuild");
      bench::RegisterPoint(
          name, pipeline, [cached](mal::Session* s, benchmark::State& st) {
            cstore::BatPtr probe = bench::UniformInts(bench::RowsForMb(64), 100'000);
            cstore::BatPtr build = cstore::Bat::MakeInt(100'000);
            for (int i = 0; i < 100'000; ++i) {
              build->ints()[static_cast<std::size_t>(i)] = i;
            }
            build->set_key(true);
            bench::MicroLoop(s, st, [&] {
              if (!cached) s->ocelot()->memory()->DropCachedHashTable(build->id());
              auto res = s->engine()->HashJoin(probe, build);
              if (!res.ok()) return !bench::IsMemoryLimit(res.status());
              bench::Settle(s);
              return true;
            });
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBitmapAblation();
  RegisterAccumulatorAblation();
  RegisterHashCacheAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
