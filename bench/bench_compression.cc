// Column-encoding benchmarks: what the format-tagged heaps buy on the
// modeled PCIe bus. Not a paper figure — the paper ships plain columns;
// these quantify the compressed-transfer extension. Written to
// BENCH_compression.json (CI bench smoke) with three point families:
//
//   Compression_CatalogBytes/<policy>    encode cost (manual ms) plus the
//       database-wide logical vs physical bytes and their ratio.
//   Compression_Transfer/<column>/<fmt>  one cold upload + Sum of a
//       representative lineitem column per iteration: modeled transfer
//       bytes and virtual ms, compressed formats vs the plain baseline.
//   Compression_TPCH/Q{1,6}/<policy>/<engine>  cold-session Q1/Q6 makespan
//       under each forced catalog encoding: virtual ms includes the
//       compressed (or plain) upload, so the transfer saving shows up as a
//       makespan drop on the discrete device.
//
// Every point regenerates its catalog under OCELOT_FORCE_ENCODING so the
// sweep is insensitive to the environment the runner happens to set.

#include <cstdlib>
#include <map>

#include "bench/harness.h"
#include "common/timeline.h"
#include "cstore/encoding.h"
#include "ocelot/engine.h"

namespace {

using bench::Label;
using cstore::BatPtr;

const std::vector<std::string>& Policies() {
  static const std::vector<std::string>* kAll = new std::vector<std::string>(
      {"plain", "dict", "rle", "bitpack", "auto"});
  return *kAll;
}

/// SF-1 database generated under a forced encoding policy (cached per
/// policy; the env override is restored afterwards).
const tpch::TpchDb& DbForPolicy(const std::string& policy) {
  static std::map<std::string, tpch::TpchDb>* cache =
      new std::map<std::string, tpch::TpchDb>();
  auto it = cache->find(policy);
  if (it == cache->end()) {
    const char* prev = std::getenv("OCELOT_FORCE_ENCODING");
    std::string saved = prev == nullptr ? "" : prev;
    setenv("OCELOT_FORCE_ENCODING", policy.c_str(), 1);
    it = cache->emplace(policy, tpch::Generate(tpch::ScaleForPaperSf(1.0)))
             .first;
    if (prev == nullptr) {
      unsetenv("OCELOT_FORCE_ENCODING");
    } else {
      setenv("OCELOT_FORCE_ENCODING", saved.c_str(), 1);
    }
  }
  return it->second;
}

/// Modeled bytes that crossed the bus so far, summed over the session's
/// device slots (0 for host baselines).
std::uint64_t TransferredBytes(mal::Session* session) {
  ocl::Context* ctx = session->ocl_context();
  if (ctx == nullptr) return 0;
  std::uint64_t total = 0;
  for (int i = 0; i < ctx->device_count(); ++i) {
    total += ctx->queue(i)->transferred_bytes();
  }
  return total;
}

// Catalog-wide compression: encode cost and the bytes it saves.
void RegisterCatalogBytes() {
  for (const std::string& policy : Policies()) {
    std::string name = "Compression_CatalogBytes/" + policy;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [policy](benchmark::State& state) {
          const tpch::TpchDb& plain = DbForPolicy("plain");
          cstore::EncodingPolicy p = cstore::EncodingPolicy::kAuto;
          if (policy == "plain") p = cstore::EncodingPolicy::kPlain;
          if (policy == "dict") p = cstore::EncodingPolicy::kDict;
          if (policy == "rle") p = cstore::EncodingPolicy::kRle;
          if (policy == "bitpack") p = cstore::EncodingPolicy::kBitPacked;
          std::size_t logical = 0, phys = 0;
          for (auto _ : state) {
            cstore::Catalog copy = plain.catalog;  // shares the plain heaps
            common::Stopwatch wall;
            cstore::ApplyEncodings(&copy, p);
            state.SetIterationTime(wall.ElapsedMillis() / 1000.0);
            logical = copy.TotalBytes();
            phys = copy.TotalPhysicalBytes();
          }
          state.counters["logical_bytes"] = static_cast<double>(logical);
          state.counters["phys_bytes"] = static_cast<double>(phys);
          state.counters["ratio"] =
              phys == 0 ? 0.0
                        : static_cast<double>(logical) / static_cast<double>(phys);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

// Per-column cold upload on the discrete device: the modeled bus crossing
// is billed at the heap's physical size, so applicable formats cut the
// transferred bytes (and with them the virtual makespan of the Sum).
void RegisterTransfer() {
  const std::vector<std::string> kColumns = {"l_returnflag", "l_shipdate",
                                             "l_quantity", "l_extendedprice"};
  const std::vector<std::pair<std::string, cstore::Encoding>> kFormats = {
      {"plain", cstore::Encoding::kPlain},
      {"dict", cstore::Encoding::kDict},
      {"rle", cstore::Encoding::kRle},
      {"bitpack", cstore::Encoding::kBitPacked}};
  for (const std::string& column : kColumns) {
    for (const auto& [fmt_name, fmt] : kFormats) {
      std::string name = "Compression_Transfer/" + column + "/" + fmt_name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [column, fmt, fmt_name](benchmark::State& state) {
            BatPtr plain =
                *DbForPolicy("plain").catalog.GetColumn("lineitem", column);
            BatPtr col = plain;
            if (fmt != cstore::Encoding::kPlain) {
              col = cstore::EncodeColumn(plain, fmt);
              if (col.get() == plain.get()) {
                state.SkipWithError(
                    (fmt_name + " not applicable to " + column).c_str());
                return;
              }
            }
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            std::uint64_t bytes = 0;
            for (auto _ : state) {
              // Fresh session per iteration: cold device cache, so the
              // upload (compressed or plain) happens inside the timing.
              auto session = bench::OpenSession("ocelot:gpu", &gpu, &cpu);
              std::uint64_t before = TransferredBytes(session.get());
              double ms = bench::MeasureVirtualMs(session.get(), [&] {
                auto sum = session->engine()->Sum(col);
                OCELOT_CHECK(sum.ok()) << sum.status().ToString();
                benchmark::DoNotOptimize(*sum);
              });
              bytes = TransferredBytes(session.get()) - before;
              state.SetIterationTime(ms / 1000.0);
            }
            state.counters["transfer_bytes"] = static_cast<double>(bytes);
            state.counters["logical_bytes"] =
                static_cast<double>(col->tail_bytes());
            state.counters["phys_bytes"] =
                static_cast<double>(col->physical_tail_bytes());
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

// Cold Q1/Q6 makespan per catalog encoding: the acceptance comparison. The
// session (and with it the device buffer cache) is recreated every
// iteration, so each run pays the full catalog upload at the encoding's
// physical size.
void RegisterTpchMakespan() {
  for (int query : {1, 6}) {
    for (const std::string& policy : Policies()) {
      for (const std::string& pipeline : {std::string("ocelot:cpu"),
                                          std::string("ocelot:gpu")}) {
        std::string name = "Compression_TPCH/Q" + std::to_string(query) + "/" +
                           policy + "/" + Label(pipeline);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, policy, pipeline](benchmark::State& state) {
              const tpch::TpchDb& db = DbForPolicy(policy);
              ocl::DeviceModel gpu = bench::TpchGpuModel();
              ocl::DeviceModel cpu = bench::TpchCpuModel();
              std::uint64_t bytes = 0;
              for (auto _ : state) {
                auto session = bench::OpenSession(pipeline, &gpu, &cpu);
                std::uint64_t before = TransferredBytes(session.get());
                double ms = bench::MeasureVirtualMs(session.get(), [&] {
                  if (!bench::RunQuery(query, db, session.get())) {
                    state.SkipWithError("exceeds device memory");
                  }
                });
                bytes = TransferredBytes(session.get()) - before;
                state.SetIterationTime(ms / 1000.0);
              }
              state.counters["transfer_bytes"] = static_cast<double>(bytes);
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterCatalogBytes();
  RegisterTransfer();
  RegisterTpchMakespan();
  return bench::RunBenchmarks(argc, argv, "BENCH_compression.json");
}
