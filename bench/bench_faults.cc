// Fault-recovery overhead: virtual makespan of TPC-H Q1 on the
// multi-device scheduler, fault-free vs under a transient-retry fault
// schedule vs degraded (GPU permanently dead at startup, quarantined on
// first touch). Written to BENCH_faults.json so recovery overhead is
// tracked like any other figure.
//
// The retry ladder's cost model: a retried kernel bills the same modeled
// duration again plus the re-run of its batch siblings, so the
// transient-retry point should sit a bounded factor above fault-free —
// growth of that gap is a regression in the recovery path, not in the
// operators. The degraded point should approach the single-CPU makespan.

#include <string>

#include "bench/harness.h"
#include "common/logging.h"
#include "ocl/fault.h"

namespace {

struct FaultPoint {
  const char* label;
  const char* spec;  // empty = fault-free
};

const FaultPoint kPoints[] = {
    {"fault-free", ""},
    // One transient kernel blip per device early in the plan: each costs
    // exactly one batch retry.
    {"transient-retry", "dev=*,op=kernel,at=4,mode=transient"},
    // The GPU never executes a single kernel: first touch strikes it out
    // and the whole query runs on the surviving CPU.
    {"degraded-gpu-dead", "dev=gpu,op=kernel,p=1,mode=permanent"},
};

void RegisterPoints() {
  for (const FaultPoint& point : kPoints) {
    std::string name = std::string("Faults/Q1/MULTI/") + point.label;
    std::string spec = point.spec;
    benchmark::RegisterBenchmark(
        name.c_str(), [spec](benchmark::State& state) {
          const tpch::TpchDb& db = bench::Db(1.0);
          if (!spec.empty()) ocl::SetFaultSpecForTesting(spec);
          // A fresh session per iteration: fault schedules are per-context
          // op counts, so reuse would shift where scripted faults land.
          ocl::DeviceModel gpu = bench::TpchGpuModel();
          ocl::DeviceModel cpu = bench::TpchCpuModel();
          for (auto _ : state) {
            auto session = bench::OpenSession("ocelot:multi", &gpu, &cpu);
            double ms = bench::MeasureVirtualMs(session.get(), [&] {
              OCELOT_CHECK(bench::RunQuery(1, db, session.get()))
                  << "Q1 must survive the fault schedule: " << spec;
            });
            state.SetIterationTime(ms / 1e3);
          }
          ocl::ClearFaultSpecForTesting();
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterPoints();
  return bench::RunBenchmarks(argc, argv, "BENCH_faults.json");
}
