// Figure 5(d): (minimum) aggregation scaled by input size.
//
// Expected shape (paper 5.2.3): linear everywhere; MP ~30% faster than
// Ocelot/CPU (the Intel OpenCL SDK's code-generation gap, modeled by the
// CPU device's group_time_scale); Ocelot/GPU fastest.

#include "bench/micro_common.h"

namespace {

void Register() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig5d_MinAggregation/" + bench::Label(pipeline) +
                         "/" + std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(mb), 1 << 30);
        bench::MicroLoop(s, st, [&] {
          auto res = s->engine()->Min(col);
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          benchmark::DoNotOptimize(*res);
          return true;
        });
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
