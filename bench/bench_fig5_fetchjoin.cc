// Figure 5(c): left fetch join (positional projection of one column through
// the row identifiers of its relation) scaled by input size.
//
// Expected shape (paper 5.2.2): linear in the input for all configurations;
// Ocelot/CPU on par with MP, Ocelot/GPU clearly fastest.

#include "bench/micro_common.h"

namespace {

void Register() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig5c_LeftFetchJoin/" + bench::Label(pipeline) +
                         "/" + std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        std::size_t n = bench::RowsForMb(mb);
        cstore::BatPtr col = bench::UniformInts(n, 1'000'000);
        cstore::BatPtr oids = cstore::Bat::DenseOids(n);
        bench::MicroLoop(s, st, [&] {
          auto res = s->engine()->Project(oids, col);
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          bench::Settle(s);
          benchmark::DoNotOptimize(*res);
          return true;
        });
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
