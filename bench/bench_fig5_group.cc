// Figure 5(g): group-by on a column with 100 distinct values, scaled by
// input size.
// Figure 5(h): group-by on a 400 MB column, scaled by the group count.
//
// Expected shape (paper 5.2.5): linear scaling everywhere; Ocelot/CPU is the
// slowest configuration (the grouping operator leans on the parallel
// hashing machinery), and even Ocelot/GPU only draws level with MP.

#include "bench/micro_common.h"

#include "ocelot/engine.h"

namespace {

void RunGroup(mal::Session* s, benchmark::State& st, cstore::BatPtr col) {
  bench::MicroLoop(s, st, [&] {
    bench::DropCachedHashTable(s, col->id());
    auto res = s->engine()->GroupBy(col, nullptr);
    if (!res.ok()) return !bench::IsMemoryLimit(res.status());
    bench::Settle(s);
    benchmark::DoNotOptimize(res->ngroups);
    return true;
  });
}

void RegisterBySize() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig5g_GroupBySize/" + bench::Label(pipeline) +
                         "/" + std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(mb), 100);
        RunGroup(s, st, col);
      });
    }
  }
}

void RegisterByGroups() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int groups : {10, 100, 1000, 10000}) {
      std::string name = "Fig5h_GroupByDistinct/" +
                         bench::Label(pipeline) + "/" +
                         std::to_string(groups);
      bench::RegisterPoint(
          name, pipeline, [groups](mal::Session* s, benchmark::State& st) {
            cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(400), groups);
            RunGroup(s, st, col);
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBySize();
  RegisterByGroups();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
