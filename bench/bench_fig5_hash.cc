// Figure 5(e): hash-table build on a column with 100 distinct values,
// scaled by input size.
// Figure 5(f): hash-table build on a 400 MB column, scaled by the number of
// distinct values.
//
// Expected shape (paper 5.2.4): hashing is Ocelot's weak spot on the CPU —
// atomic contention makes it clearly slower than MonetDB's sequential hash
// build; with *more* distinct values Ocelot/CPU gets FASTER (less
// contention), opposite to the baselines; the GPU does not show the
// contention pattern. The baselines build hashes single-threaded (MonetDB
// does not parallelize hash construction), so MS == MP here.

#include "bench/micro_common.h"

#include "ocelot/engine.h"
#include "monet/hashmap.h"
#include "ocelot/hash_table.h"

namespace {

void RunHashBuild(mal::Session* s, benchmark::State& st, cstore::BatPtr col) {
  bench::MicroLoop(s, st, [&] {
    if (s->ocelot() != nullptr) {
      // Cold build each run: drop the memory manager's cached table first.
      bench::DropCachedHashTable(s, col->id());
      auto ht = ocelot::BuildHashTable(s->ocelot()->memory(), col,
                                       /*distinct_only=*/true);
      if (!ht.ok()) return !bench::IsMemoryLimit(ht.status());
      bench::Settle(s);
      benchmark::DoNotOptimize(ht->get());
      return true;
    }
    monet::ChainedHash ht(col->ints());
    benchmark::DoNotOptimize(ht.First(0));
    return true;
  });
}

// This microbenchmark measures the *per-device* hash-build primitive, which
// the multi-device scheduler never runs as a whole (its joins replicate the
// build per device; the scheduler-level cost shows in Fig. 5i). Skip
// "ocelot:multi" rather than silently measuring the baseline under its label.
bool SkipEngine(const std::string& pipeline) { return pipeline == "ocelot:multi"; }

void RegisterBySize() {
  for (const std::string& pipeline : bench::Configurations()) {
    if (SkipEngine(pipeline)) continue;
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig5e_HashBuildBySize/" +
                         bench::Label(pipeline) + "/" +
                         std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(mb), 100);
        RunHashBuild(s, st, col);
      });
    }
  }
}

void RegisterByDistinct() {
  for (const std::string& pipeline : bench::Configurations()) {
    if (SkipEngine(pipeline)) continue;
    for (int distinct : {10, 100, 1000, 10000}) {
      std::string name = "Fig5f_HashBuildByDistinct/" +
                         bench::Label(pipeline) + "/" +
                         std::to_string(distinct);
      bench::RegisterPoint(
          name, pipeline, [distinct](mal::Session* s, benchmark::State& st) {
            cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(400), distinct);
            RunHashBuild(s, st, col);
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBySize();
  RegisterByDistinct();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
