// Figure 5(i): PK-FK hash join with a fixed build side of 100 keys, scaled
// by the probe-side size. As in the paper (footnote 12) the measurements
// exclude the hash-table build: Ocelot probes the memory manager's cached
// table (5.2.6), and the baselines' build on 100 keys is negligible.
//
// Expected shape: linear; once the table exists the lookup is highly
// efficient in Ocelot — both devices clearly beat the baselines.

#include "bench/micro_common.h"

namespace {

void Register() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig5i_HashJoinByProbeSize/" +
                         bench::Label(pipeline) + "/" +
                         std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr probe = bench::UniformInts(bench::RowsForMb(mb), 100);
        cstore::BatPtr build = cstore::Bat::MakeInt(100);
        for (int i = 0; i < 100; ++i) build->ints()[static_cast<std::size_t>(i)] = i;
        build->set_key(true);
        build->set_sorted(true);
        bench::MicroLoop(s, st, [&] {
          auto res = s->engine()->HashJoin(probe, build);
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          bench::Settle(s);
          benchmark::DoNotOptimize(res->left);
          return true;
        });
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
