// Figure 5(a): range selection scaled by input size (selectivity 0.05).
// Figure 5(b): range selection on a 400 MB column scaled by selectivity.
//
// Expected shape (paper 5.2.1): all configurations scale linearly; Ocelot
// beats parallel MonetDB on the CPU because it emits bitmaps while MonetDB
// materializes oid lists; Ocelot's runtime is selectivity-invariant while
// MonetDB's grows with the result size.

#include "bench/micro_common.h"

namespace {

using bench::Label;
using cstore::Bound;

void RegisterBySize() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name =
          "Fig5a_SelectBySize/" + Label(pipeline) + "/" +
          std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(mb), 1000);
        bench::MicroLoop(s, st, [&] {
          auto res =
              s->engine()->SelectRange(col, nullptr, Bound::Incl(0), Bound::Incl(49));
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          bench::Settle(s);
          benchmark::DoNotOptimize(*res);
          return true;
        });
      });
    }
  }
}

void RegisterBySelectivity() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int sel : {5, 15, 30, 45, 60, 75}) {
      std::string name =
          "Fig5b_SelectBySelectivity/" + Label(pipeline) + "/" +
          std::to_string(sel) + "pct";
      bench::RegisterPoint(name, pipeline, [sel](mal::Session* s,
                                                 benchmark::State& st) {
        cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(400), 1000);
        double hi = sel * 10 - 1;
        bench::MicroLoop(s, st, [&] {
          auto res =
              s->engine()->SelectRange(col, nullptr, Bound::Incl(0), Bound::Incl(hi));
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          bench::Settle(s);
          benchmark::DoNotOptimize(*res);
          return true;
        });
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBySize();
  RegisterBySelectivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
