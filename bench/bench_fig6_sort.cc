// Figure 6: sort performance scaled by input size. Ocelot runs the binary
// radix sort (radix 8 on the CPU device, 4 on the GPU — a device preference,
// paper 4.1.3/5.2.7); MonetDB sorts with quick/merge sort (MS) and a
// parallel merge sort (MP).
//
// Expected shape: linear for the radix sort; Ocelot beats the comparison
// sorts on both devices.

#include "bench/micro_common.h"

namespace {

void Register() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (int mb : bench::MbAxis()) {
      std::string name = "Fig6_Sort/" + bench::Label(pipeline) + "/" +
                         std::to_string(mb) + "MB";
      bench::RegisterPoint(name, pipeline, [mb](mal::Session* s, benchmark::State& st) {
        cstore::BatPtr col =
            bench::UniformInts(bench::RowsForMb(mb), 2'000'000'000);
        bench::MicroLoop(s, st, [&] {
          auto res = s->engine()->Sort(col);
          if (!res.ok()) return !bench::IsMemoryLimit(res.status());
          bench::Settle(s);
          benchmark::DoNotOptimize(res->order);
          return true;
        });
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
