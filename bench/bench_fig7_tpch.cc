// Figure 7: the TPC-H-derived workload (paper Appendix A).
//   7(a) all queries at SF 1   — GPU wins, Ocelot/CPU hurt by driver overhead.
//   7(b) all queries at SF 8   — balanced; the GPU's lead shrinks because the
//        working set no longer fits device memory (eviction/offload churn).
//   7(c) all queries at SF 50  — CPU configurations only (as in the paper);
//        Ocelot/CPU on par with MP.
//   7(d) Q1 runtime vs scale factor — linear everywhere, with the CPU
//        driver's fixed per-query overhead as intercept and the GPU's memory
//        knee at the largest device-resident scale.
//
// "SF" follows the paper's axis; rows scale by OCELOT_SF_UNIT (default
// 0.02). Timing is hot-cache virtual time, result transfers included
// (queries end in ocelot.sync), mirroring section 5.3's methodology.

#include "bench/harness.h"

namespace {

using bench::Label;

void RegisterWorkload(const char* figure, double sf, bool with_gpu) {
  for (const std::string& pipeline : bench::Configurations()) {
    if (!with_gpu && pipeline == "ocelot:gpu") continue;
    for (int query : tpch::PaperWorkload()) {
      std::string name = std::string(figure) + "/Q" + std::to_string(query) + "/" +
                         Label(pipeline);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [pipeline, query, sf](benchmark::State& state) {
            const tpch::TpchDb& db = bench::Db(sf);
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            auto session = bench::OpenSession(pipeline, &gpu, &cpu);
            if (!bench::RunQuery(query, db, session.get())) {  // hot-cache warm-up
              state.SkipWithError("exceeds device memory");
              return;
            }
            bench::JsonMeasuredLoop(state, session.get(), [&] {
              return bench::RunQuery(query, db, session.get());
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

void RegisterQ1Scaling() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (double sf : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
      std::string name = "Fig7d_Q1Scaling/SF" + std::to_string(static_cast<int>(sf)) +
                         "/" + Label(pipeline);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [pipeline, sf](benchmark::State& state) {
            const tpch::TpchDb& db = bench::Db(sf);
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            auto session = bench::OpenSession(pipeline, &gpu, &cpu);
            if (!bench::RunQuery(1, db, session.get())) {
              state.SkipWithError("exceeds device memory");
              return;
            }
            bench::JsonMeasuredLoop(state, session.get(), [&] {
              return bench::RunQuery(1, db, session.get());
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

// Dataflow on/off comparison on the workload's multi-branch query: Q3's
// customer/orders/lineitem selection branches are independent until the
// joins, so the dataflow executor overlaps them (Q9 — the other natural
// candidate — is outside the paper's workload, App. A). Both points land in
// BENCH_tpch.json, so the perf trajectory records the inter-operator
// overlap per engine: virtual time via critical-path billing, real time via
// the real_ms counter (host overlap on concurrency-safe engines).
void RegisterQ3Dataflow() {
  for (const std::string& pipeline : bench::Configurations()) {
    for (bool dataflow : {false, true}) {
      std::string name = std::string("Fig7e_Q3Dataflow/") +
                         (dataflow ? "on" : "off") + "/" + Label(pipeline);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [pipeline, dataflow](benchmark::State& state) {
            mal::RunOptions::Mode mode = dataflow
                                             ? mal::RunOptions::Mode::kDataflow
                                             : mal::RunOptions::Mode::kSequential;
            const tpch::TpchDb& db = bench::Db(1.0);
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            auto session = bench::OpenSession(pipeline, &gpu, &cpu);
            if (!bench::RunQuery(3, db, session.get(), mode)) {
              state.SkipWithError("exceeds device memory");
              return;
            }
            bench::JsonMeasuredLoop(state, session.get(), [&] {
              return bench::RunQuery(3, db, session.get(), mode);
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterWorkload("Fig7a_TPCH_SF1", 1.0, /*with_gpu=*/true);
  RegisterWorkload("Fig7b_TPCH_SF8", 8.0, /*with_gpu=*/true);
  RegisterWorkload("Fig7c_TPCH_SF50", 50.0, /*with_gpu=*/false);
  RegisterQ1Scaling();
  RegisterQ3Dataflow();
  return bench::RunBenchmarks(argc, argv, "BENCH_tpch.json");
}
