// Kernel micro-sweep: the host SIMD primitives against their scalar
// references, A/B'd through the same SetForceScalar switch the
// OCELOT_SCALAR_KERNELS escape hatch flips. Unlike the figure benchmarks
// these measure real host nanoseconds (no virtual clock, no device model):
// the point is the raw rows/sec and bytes/sec of each kernel on this
// machine, published per run into BENCH_kernels.json so CI tracks the
// speedup of the vector path (and catches a regression that quietly turns
// it into a slowdown).
//
// Axes: kernel x rows (2^16, 2^19, 2^22) x {simd, scalar}. The 2^22 points
// are the acceptance gauge: the vector path must hold >= 1.5x rows/sec on
// the bulk kernels there.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/simd.h"
#include "monet/detail.h"

namespace {

namespace simd = common::simd;

/// Forces (or re-enables) the scalar fallback for one benchmark's scope.
class ScalarGuard {
 public:
  explicit ScalarGuard(bool force) { simd::SetForceScalar(force); }
  ~ScalarGuard() { simd::SetForceScalar(false); }
};

std::vector<std::int32_t> UniformKeys(std::size_t n, std::int32_t limit,
                                      std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (std::int32_t& x : v) x = static_cast<std::int32_t>(rng.Uniform(0, limit - 1));
  return v;
}

/// Registers the real-throughput rate counters the BenchJsonReporter
/// serializes: totals across all iterations, divided by host wall time by
/// google-benchmark's kIsRate machinery.
void Throughput(benchmark::State& state, std::size_t rows_per_iter,
                std::size_t bytes_per_iter) {
  double iters = static_cast<double>(state.iterations());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_per_iter) * iters, benchmark::Counter::kIsRate);
  state.counters["bytes_per_sec"] = benchmark::Counter(
      static_cast<double>(bytes_per_iter) * iters, benchmark::Counter::kIsRate);
}

// --- select: branchless range predicate + candidate materialization ----------

void BM_Select(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  std::vector<std::int32_t> col = UniformKeys(n, 1000, 7);
  std::vector<std::uint32_t> hits;
  hits.reserve(n);
  for (auto _ : state) {
    hits.clear();
    simd::SelectRangeInt32(col.data(), n, 0, 49, 0, &hits);  // 5% selectivity
    benchmark::DoNotOptimize(hits.data());
  }
  Throughput(state, n, n * sizeof(std::int32_t));
}

// --- batcalc: double-domain arithmetic with nil propagation ------------------

void BM_BatcalcAddInt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  std::vector<std::int32_t> a = UniformKeys(n, 100000, 11);
  std::vector<std::int32_t> b = UniformKeys(n, 100000, 13);
  std::vector<std::int32_t> out(n);
  for (auto _ : state) {
    simd::CalcIntInt(simd::Arith::kAdd, a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  Throughput(state, n, n * 3 * sizeof(std::int32_t));
}

void BM_BatcalcMulFloat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  std::vector<std::int32_t> ai = UniformKeys(n, 100000, 17);
  std::vector<float> a(n), b(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(ai[i]) * 0.5f;
    b[i] = static_cast<float>(ai[n - 1 - i]) * 0.25f;
  }
  for (auto _ : state) {
    simd::CalcFF(simd::Arith::kMul, a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  Throughput(state, n, n * 3 * sizeof(float));
}

// --- hashjoin probe: radix/chained index + distance-ahead prefetch -----------

void BM_HashjoinProbe(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  // Build side n/4 distinct-ish keys; probe side hits ~all of them. Built
  // under the same switch as the probe, so scalar measures the chained
  // table and simd the radix one — exactly the engines' dispatch.
  const std::size_t build_n = n / 4;
  std::vector<std::int32_t> build =
      UniformKeys(build_n, static_cast<std::int32_t>(build_n), 19);
  std::vector<std::int32_t> probe =
      UniformKeys(n, static_cast<std::int32_t>(build_n), 23);
  monet::detail::JoinIndex ht{std::span<const std::int32_t>(build)};
  for (auto _ : state) {
    std::uint64_t matches = 0;
    monet::detail::ProbeLoop(std::span<const std::int32_t>(probe), ht,
                             [&](std::size_t i) {
                               ht.ForEachMatch(probe[i],
                                               [&](std::uint32_t) { ++matches; });
                             });
    benchmark::DoNotOptimize(matches);
  }
  Throughput(state, n, n * sizeof(std::int32_t));
}

// --- fetchjoin: random gather with distance-ahead prefetch -------------------

void BM_FetchjoinGather(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  std::vector<std::uint32_t> src(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<std::uint32_t>(i);
  common::Rng rng(29);
  std::vector<std::uint32_t> idx(n);
  for (std::uint32_t& x : idx) {
    x = static_cast<std::uint32_t>(rng.Uniform(0, static_cast<std::int64_t>(n) - 1));
  }
  std::vector<std::uint32_t> dst(n);
  for (auto _ : state) {
    simd::GatherU32(src.data(), n, idx.data(), n, simd::kU32Nil, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  Throughput(state, n, n * 3 * sizeof(std::uint32_t));
}

// --- hash: full-avalanche finalizer, batched ---------------------------------

void BM_HashInt32(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ScalarGuard guard(state.range(1) != 0);
  std::vector<std::int32_t> keys = UniformKeys(n, 1 << 30, 31);
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    simd::HashInt32(keys.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  Throughput(state, n, n * 2 * sizeof(std::int32_t));
}

void Register(const char* name, void (*fn)(benchmark::State&)) {
  benchmark::RegisterBenchmark(name, fn)
      ->ArgNames({"rows", "scalar"})
      ->ArgsProduct({{1 << 16, 1 << 19, 1 << 22}, {0, 1}});
}

}  // namespace

int main(int argc, char** argv) {
  Register("Kernel/select", BM_Select);
  Register("Kernel/batcalc_add_int", BM_BatcalcAddInt);
  Register("Kernel/batcalc_mul_float", BM_BatcalcMulFloat);
  Register("Kernel/hashjoin_probe", BM_HashjoinProbe);
  Register("Kernel/fetchjoin_gather", BM_FetchjoinGather);
  Register("Kernel/hash_int32", BM_HashInt32);
  return bench::RunBenchmarks(argc, argv, "BENCH_kernels.json");
}
