// Scheduler scaling: partition+merge overhead and real wall-clock scaling
// of the multi-device Scheduler ("ocelot:multi") against the single-device
// baselines ("ocelot:cpu", "ocelot:gpu") across 1/2/4/8 host threads, on
// the three workloads the layer is built for:
//
//   * select   — range selection over a 256 MB-axis int column
//   * hashjoin — FK probe against a replicated unique-key build side
//   * q1       — TPC-H Q1 end to end at paper SF 1
//
// The multi-device engine runs in two partitioning modes: "weighted" (the
// default throughput-calibrated fragment sizing; a warm-up phase lets the
// per-class EWMA converge before measuring) and "static" (the
// OCELOT_STATIC_PARTITION=1 equal-split escape hatch). On the heterogeneous
// CPU+GPU model set, weighted must beat both static multi and the best
// single device on virtual makespan.
//
// Reported per point (and written to BENCH_scheduler.json):
//   virtual_ms   — modeled device time (google-benchmark's manual time)
//   real_ms      — measured host wall time per iteration: with zero-copy
//                  view partitioning and pool execution this is what must
//                  *drop* as threads grow (given ≥ 2 physical cores)
//   bytes_copied — host bytes the scheduler moved per iteration (merge
//                  writes only; must stay ≤ one output per operator and be
//                  independent of the thread count)
//   threads      — the OCELOT_THREADS value of the point
//
// Results and virtual clocks are thread-count-invariant (fragment i always
// runs whole against device slot i); only real_ms may change.

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "bench/micro_common.h"
#include "common/thread_pool.h"

namespace {

using bench::Label;
using cstore::Bound;

const int kThreadAxis[] = {1, 2, 4, 8};

/// The engines this bench compares, restricted by OCELOT_ENGINES like every
/// other sweep.
std::vector<std::string> Engines() {
  std::vector<std::string> all = bench::Configurations();
  std::vector<std::string> picked;
  for (const std::string& e : {"ocelot:cpu", "ocelot:gpu", "ocelot:multi"}) {
    if (std::find(all.begin(), all.end(), e) != all.end()) picked.push_back(e);
  }
  return picked;
}

/// One (engine, partition-mode) point of the sweep. Single-device engines
/// have no partitioning axis; the multi engine is measured both weighted
/// and static.
struct EngineMode {
  std::string engine;
  bool static_partition = false;
  int warmups = 1;

  std::string label() const {
    std::string l = Label(engine);
    if (engine == "ocelot:multi") l += static_partition ? "-static" : "-weighted";
    return l;
  }
};

std::vector<EngineMode> EngineModes() {
  std::vector<EngineMode> modes;
  for (const std::string& e : Engines()) {
    if (e == "ocelot:multi") {
      // The weighted mode needs calibration rounds before the measured
      // iterations see converged fragment boundaries.
      modes.push_back({e, /*static_partition=*/false, /*warmups=*/8});
      modes.push_back({e, /*static_partition=*/true, /*warmups=*/1});
    } else {
      modes.push_back({e});
    }
  }
  return modes;
}

/// Opens the session with the mode's partitioning flag (the same
/// OCELOT_STATIC_PARTITION switch operators would use). The variable is
/// forced for *both* modes during Session::Open — an operator-exported
/// OCELOT_STATIC_PARTITION=1 must not silently turn the weighted points
/// static — and the caller's setting is restored afterwards.
std::unique_ptr<mal::Session> OpenModeSession(const EngineMode& mode,
                                              const ocl::DeviceModel* gpu,
                                              const ocl::DeviceModel* cpu) {
  const char* old = std::getenv("OCELOT_STATIC_PARTITION");
  std::string saved = old != nullptr ? old : "";
  if (mode.static_partition) {
    setenv("OCELOT_STATIC_PARTITION", "1", 1);
  } else {
    unsetenv("OCELOT_STATIC_PARTITION");
  }
  auto session = bench::OpenSession(mode.engine, gpu, cpu);
  if (old != nullptr) {
    setenv("OCELOT_STATIC_PARTITION", saved.c_str(), 1);
  } else {
    unsetenv("OCELOT_STATIC_PARTITION");
  }
  return session;
}

/// Measured loop shared by all points: pool resize, warm-up (several rounds
/// for the calibrating scheduler), then the harness's JSON measured loop
/// plus the thread-count axis.
void ScalingLoop(benchmark::State& state, int threads, int warmups,
                 mal::Session* session, const std::function<bool()>& op) {
  common::ThreadPool::SetGlobalThreads(threads);
  for (int i = 0; i < warmups; ++i) {
    if (!op()) {
      state.SkipWithError("exceeds device memory");
      return;
    }
  }
  bench::JsonMeasuredLoop(state, session, op);
  state.counters["threads"] = threads;
}

void RegisterOperatorPoints() {
  for (const EngineMode& mode : EngineModes()) {
    for (int threads : kThreadAxis) {
      std::string suffix = mode.label() + "/t" + std::to_string(threads);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/select/" + suffix).c_str(),
          [mode, threads](benchmark::State& state) {
            ocl::DeviceModel gpu = bench::MicroGpuModel();
            ocl::DeviceModel cpu = bench::MicroCpuModel();
            auto session = OpenModeSession(mode, &gpu, &cpu);
            cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(256), 1000);
            ScalingLoop(state, threads, mode.warmups, session.get(), [&] {
              auto res = session->engine()->SelectRange(col, nullptr, Bound::Incl(0),
                                                        Bound::Incl(49));
              if (!res.ok()) {
                // Memory exhaustion is a legitimate skip; anything else must
                // abort, not be measured as a successful iteration.
                OCELOT_CHECK(bench::IsMemoryLimit(res.status()))
                    << res.status().ToString();
                return false;
              }
              bench::Settle(session.get());
              benchmark::DoNotOptimize(*res);
              return true;
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/hashjoin/" + suffix).c_str(),
          [mode, threads](benchmark::State& state) {
            ocl::DeviceModel gpu = bench::MicroGpuModel();
            ocl::DeviceModel cpu = bench::MicroCpuModel();
            auto session = OpenModeSession(mode, &gpu, &cpu);
            std::size_t nkeys = 100'000;
            cstore::BatPtr build = cstore::Bat::MakeInt(nkeys);
            std::iota(build->ints().begin(), build->ints().end(), 0);
            build->set_key(true);
            build->set_nonil(true);
            cstore::BatPtr probe = bench::UniformInts(
                bench::RowsForMb(64), static_cast<std::int32_t>(nkeys));
            ScalingLoop(state, threads, mode.warmups, session.get(), [&] {
              auto res = session->engine()->HashJoin(probe, build);
              if (!res.ok()) {
                OCELOT_CHECK(bench::IsMemoryLimit(res.status()))
                    << res.status().ToString();
                return false;
              }
              bench::Settle(session.get());
              benchmark::DoNotOptimize(res->left);
              return true;
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/q1/" + suffix).c_str(),
          [mode, threads](benchmark::State& state) {
            const tpch::TpchDb& db = bench::Db(1.0);
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            auto session = OpenModeSession(mode, &gpu, &cpu);
            ScalingLoop(state, threads, mode.warmups, session.get(), [&] {
              return bench::RunQuery(1, db, session.get());
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterOperatorPoints();
  return bench::RunBenchmarks(argc, argv, "BENCH_scheduler.json");
}
