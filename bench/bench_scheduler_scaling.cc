// Scheduler scaling: partition+merge overhead and real wall-clock scaling
// of the multi-device Scheduler ("ocelot:multi") against the single-device
// baseline ("ocelot:cpu") across 1/2/4/8 host threads, on the three
// workloads the layer is built for:
//
//   * select   — range selection over a 256 MB-axis int column
//   * hashjoin — FK probe against a replicated unique-key build side
//   * q1       — TPC-H Q1 end to end at paper SF 1
//
// Reported per point (and written to BENCH_scheduler.json):
//   virtual_ms   — modeled device time (google-benchmark's manual time)
//   real_ms      — measured host wall time per iteration: with zero-copy
//                  view partitioning and pool execution this is what must
//                  *drop* as threads grow (given ≥ 2 physical cores)
//   bytes_copied — host bytes the scheduler moved per iteration (merge
//                  writes only; must stay ≤ one output per operator and be
//                  independent of the thread count)
//   threads      — the OCELOT_THREADS value of the point
//
// Results and virtual clocks are thread-count-invariant (fragment i always
// runs whole against device slot i); only real_ms may change.

#include <algorithm>
#include <numeric>

#include "bench/micro_common.h"
#include "common/thread_pool.h"

namespace {

using bench::Label;
using cstore::Bound;

const int kThreadAxis[] = {1, 2, 4, 8};

/// The engines this bench compares, restricted by OCELOT_ENGINES like every
/// other sweep.
std::vector<std::string> Engines() {
  std::vector<std::string> all = bench::Configurations();
  std::vector<std::string> picked;
  for (const std::string& e : {"ocelot:cpu", "ocelot:multi"}) {
    if (std::find(all.begin(), all.end(), e) != all.end()) picked.push_back(e);
  }
  return picked;
}

/// Measured loop shared by all points: pool resize, warm-up, then the
/// harness's JSON measured loop plus the thread-count axis.
void ScalingLoop(benchmark::State& state, int threads, mal::Session* session,
                 const std::function<bool()>& op) {
  common::ThreadPool::SetGlobalThreads(threads);
  if (!op()) {
    state.SkipWithError("exceeds device memory");
    return;
  }
  bench::JsonMeasuredLoop(state, session, op);
  state.counters["threads"] = threads;
}

void RegisterOperatorPoints() {
  for (const std::string& engine : Engines()) {
    for (int threads : kThreadAxis) {
      std::string suffix = Label(engine) + "/t" + std::to_string(threads);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/select/" + suffix).c_str(),
          [engine, threads](benchmark::State& state) {
            ocl::DeviceModel gpu = bench::MicroGpuModel();
            ocl::DeviceModel cpu = bench::MicroCpuModel();
            auto session = bench::OpenSession(engine, &gpu, &cpu);
            cstore::BatPtr col = bench::UniformInts(bench::RowsForMb(256), 1000);
            ScalingLoop(state, threads, session.get(), [&] {
              auto res = session->engine()->SelectRange(col, nullptr, Bound::Incl(0),
                                                        Bound::Incl(49));
              if (!res.ok()) {
                // Memory exhaustion is a legitimate skip; anything else must
                // abort, not be measured as a successful iteration.
                OCELOT_CHECK(bench::IsMemoryLimit(res.status()))
                    << res.status().ToString();
                return false;
              }
              bench::Settle(session.get());
              benchmark::DoNotOptimize(*res);
              return true;
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/hashjoin/" + suffix).c_str(),
          [engine, threads](benchmark::State& state) {
            ocl::DeviceModel gpu = bench::MicroGpuModel();
            ocl::DeviceModel cpu = bench::MicroCpuModel();
            auto session = bench::OpenSession(engine, &gpu, &cpu);
            std::size_t nkeys = 100'000;
            cstore::BatPtr build = cstore::Bat::MakeInt(nkeys);
            std::iota(build->ints().begin(), build->ints().end(), 0);
            build->set_key(true);
            build->set_nonil(true);
            cstore::BatPtr probe = bench::UniformInts(
                bench::RowsForMb(64), static_cast<std::int32_t>(nkeys));
            ScalingLoop(state, threads, session.get(), [&] {
              auto res = session->engine()->HashJoin(probe, build);
              if (!res.ok()) {
                OCELOT_CHECK(bench::IsMemoryLimit(res.status()))
                    << res.status().ToString();
                return false;
              }
              bench::Settle(session.get());
              benchmark::DoNotOptimize(res->left);
              return true;
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);

      benchmark::RegisterBenchmark(
          ("SchedulerScaling/q1/" + suffix).c_str(),
          [engine, threads](benchmark::State& state) {
            const tpch::TpchDb& db = bench::Db(1.0);
            ocl::DeviceModel gpu = bench::TpchGpuModel();
            ocl::DeviceModel cpu = bench::TpchCpuModel();
            auto session = bench::OpenSession(engine, &gpu, &cpu);
            ScalingLoop(state, threads, session.get(), [&] {
              return bench::RunQuery(1, db, session.get());
            });
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterOperatorPoints();
  return bench::RunBenchmarks(argc, argv, "BENCH_scheduler.json");
}
