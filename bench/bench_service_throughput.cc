// Concurrent query-service throughput: queries/sec of the shuffled TPC-H
// workload submitted through mal::QueryService at 1/2/4/8 concurrent
// sessions, for the sequential baseline and the multi-device scheduler.
//
// This is the inter-query axis on top of the paper's intra-query one: each
// session runs the ordinary per-query machinery (dataflow interpreter,
// weighted multi-device partitioning), and the service composes N of them
// over one shared catalog, one shared host thread pool and the machine's
// physical device slots (leased per operator batch through the
// SlotArbiter). Queries/sec must *rise* with the session count until the
// host cores or the slot pool saturate; per-query virtual time is
// concurrency-invariant by contract, so it is not the measured axis here.
//
// Reported per point (and written to BENCH_service.json):
//   virtual_ms / real_ms — host wall milliseconds per workload round
//                          (manual time; a throughput bench measures wall)
//   qps                  — completed queries per second of wall time
//   sessions             — the point's concurrency level
//
// OCELOT_ENGINES restricts the engine sweep as everywhere else.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/vclock.h"
#include "mal/service.h"
#include "ocl/fault.h"

namespace {

const int kSessionAxis[] = {1, 2, 4, 8};

/// Queries per workload round: the paper workload, shuffled per submitter
/// so concurrent sessions interleave heavy and light queries.
std::vector<int> Workload() { return tpch::PaperWorkload(); }

std::vector<std::string> Engines() {
  std::vector<std::string> all = bench::Configurations();
  std::vector<std::string> picked;
  for (const std::string& e : {"seq", "ocelot:multi"}) {
    if (std::find(all.begin(), all.end(), e) != all.end()) picked.push_back(e);
  }
  return picked;
}

/// One measured iteration: submit `rounds` shuffled copies of the workload
/// through the service and wait for every result. Returns the wall time.
double RunRounds(mal::QueryService* service, const tpch::TpchDb& db, int rounds,
                 int* queries) {
  std::vector<std::future<common::Result<mal::ExecResult>>> futures;
  std::vector<int> order = Workload();
  common::Stopwatch wall;
  for (int r = 0; r < rounds; ++r) {
    // Rotate the workload per round: sessions see different query mixes
    // in flight together, like a real multi-tenant queue.
    std::rotate(order.begin(), order.begin() + (r % order.size()), order.end());
    for (int q : order) {
      futures.push_back(service->Submit(*tpch::BuildQuery(q, db)));
    }
  }
  for (auto& f : futures) {
    auto res = f.get();
    OCELOT_CHECK(res.ok()) << res.status().ToString();
  }
  *queries = static_cast<int>(futures.size());
  return wall.ElapsedMillis();
}

void RegisterPoints() {
  for (const std::string& engine : Engines()) {
    for (int sessions : kSessionAxis) {
      std::string name = "ServiceThroughput/" + bench::Label(engine) +
                         "/sessions:" + std::to_string(sessions);
      benchmark::RegisterBenchmark(
          name.c_str(), [engine, sessions](benchmark::State& state) {
            const tpch::TpchDb& db = bench::Db(1.0);
            mal::ServiceOptions options;
            options.max_sessions = sessions;
            auto service = mal::QueryService::Open(engine, &db.catalog, options);
            OCELOT_CHECK(service.ok()) << service.status().ToString();

            // Warm-up round: first-touch generation/JIT effects out of the
            // measured window.
            int queries = 0;
            RunRounds(service->get(), db, 1, &queries);

            double total_ms = 0;
            int total_queries = 0;
            for (auto _ : state) {
              int n = 0;
              double ms = RunRounds(service->get(), db, 2, &n);
              state.SetIterationTime(ms / 1e3);
              total_ms += ms;
              total_queries += n;
            }
            if (total_ms > 0) {
              state.counters["qps"] = total_queries / (total_ms / 1e3);
              state.counters["real_ms"] =
                  total_ms / static_cast<double>(state.iterations());
            }
            state.counters["sessions"] = sessions;
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }

  // Degraded-mode point: the GPU is permanently dead from its first kernel
  // on, so every session quarantines it and serves the workload from the
  // surviving CPU. Lands in BENCH_service.json next to the healthy points —
  // the visible cost of losing a device under load.
  std::vector<std::string> engines = Engines();
  if (std::find(engines.begin(), engines.end(), std::string("ocelot:multi")) !=
      engines.end()) {
    benchmark::RegisterBenchmark(
        "ServiceThroughput/MULTI-degraded/sessions:4",
        [](benchmark::State& state) {
          ocl::SetFaultSpecForTesting("dev=gpu,op=kernel,p=1,mode=permanent");
          const tpch::TpchDb& db = bench::Db(1.0);
          mal::ServiceOptions options;
          options.max_sessions = 4;
          auto service = mal::QueryService::Open("ocelot:multi", &db.catalog,
                                                 options);
          OCELOT_CHECK(service.ok()) << service.status().ToString();
          int queries = 0;
          RunRounds(service->get(), db, 1, &queries);
          double total_ms = 0;
          int total_queries = 0;
          for (auto _ : state) {
            int n = 0;
            double ms = RunRounds(service->get(), db, 2, &n);
            state.SetIterationTime(ms / 1e3);
            total_ms += ms;
            total_queries += n;
          }
          if (total_ms > 0) {
            state.counters["qps"] = total_queries / (total_ms / 1e3);
            state.counters["real_ms"] =
                total_ms / static_cast<double>(state.iterations());
          }
          state.counters["sessions"] = 4;
          ocl::ClearFaultSpecForTesting();
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterPoints();
  return bench::RunBenchmarks(argc, argv, "BENCH_service.json");
}
