#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "ocelot/scheduler.h"

namespace bench {

namespace {

std::vector<std::string> BuildConfigurations() {
  std::vector<std::string> ordered = mal::OrderedEngineNames();
  const char* env = std::getenv("OCELOT_ENGINES");
  if (env == nullptr || *env == '\0') return ordered;
  std::vector<std::string> filtered;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    OCELOT_CHECK(cstore::EngineRegistry::Global().Contains(token))
        << "OCELOT_ENGINES names unknown engine '" << token << "'";
    filtered.push_back(token);
  }
  return filtered;
}

}  // namespace

const std::vector<std::string>& Configurations() {
  static const std::vector<std::string>* kAll =
      new std::vector<std::string>(BuildConfigurations());
  return *kAll;
}

std::string Label(const std::string& engine) {
  if (engine == "seq") return "MS";
  if (engine == "par") return "MP";
  if (engine == "ocelot:cpu") return "CPU";
  if (engine == "ocelot:gpu") return "GPU";
  if (engine == "ocelot:multi") return "MULTI";
  return engine;
}

namespace {

double MbScale() {
  if (const char* env = std::getenv("OCELOT_MB_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.125;
}

}  // namespace

std::size_t RowsForMb(int mb) {
  double bytes = static_cast<double>(mb) * 1024 * 1024 * MbScale();
  return static_cast<std::size_t>(bytes / 4);
}

cstore::BatPtr UniformInts(std::size_t n, std::int32_t limit, std::uint64_t seed) {
  common::Rng rng(seed);
  cstore::BatPtr b = cstore::Bat::MakeInt(n);
  auto s = b->ints();
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<std::int32_t>(rng.Uniform(0, limit - 1));
  }
  b->set_nonil(true);
  return b;
}

namespace {

/// Scales a device's fixed driver costs with the shrunken data axis so the
/// fixed-vs-linear cost ratio of the paper's plots is preserved.
void ScaleDriverCosts(ocl::DeviceModel* m, double scale) {
  m->kernel_launch_overhead =
      static_cast<common::Nanos>(static_cast<double>(m->kernel_launch_overhead) * scale);
  m->kernel_compile_cost =
      static_cast<common::Nanos>(static_cast<double>(m->kernel_compile_cost) * scale);
}

}  // namespace

ocl::DeviceModel MicroGpuModel() {
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  gpu.global_mem_bytes =
      static_cast<std::size_t>(static_cast<double>(gpu.global_mem_bytes) * MbScale());
  ScaleDriverCosts(&gpu, MbScale());
  return gpu;
}

ocl::DeviceModel MicroCpuModel() {
  ocl::DeviceModel cpu = ocl::XeonE5620Model();
  ScaleDriverCosts(&cpu, MbScale());
  return cpu;
}

ocl::DeviceModel TpchGpuModel() {
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  double unit = tpch::ScaleForPaperSf(1.0);
  gpu.global_mem_bytes =
      static_cast<std::size_t>(static_cast<double>(gpu.global_mem_bytes) * unit);
  ScaleDriverCosts(&gpu, unit);
  return gpu;
}

ocl::DeviceModel TpchCpuModel() {
  ocl::DeviceModel cpu = ocl::XeonE5620Model();
  ScaleDriverCosts(&cpu, tpch::ScaleForPaperSf(1.0));
  return cpu;
}

double MeasureVirtualMs(mal::Session* session, const std::function<void()>& op) {
  common::Nanos v0 = session->clock()->Now();
  op();
  return static_cast<double>(session->clock()->Now() - v0) / 1e6;
}

std::unique_ptr<mal::Session> OpenSession(const std::string& engine,
                                          const ocl::DeviceModel* gpu_model,
                                          const ocl::DeviceModel* cpu_model) {
  cstore::EngineOptions options;
  options.gpu_model = gpu_model;
  options.cpu_model = cpu_model;
  auto session = mal::Session::Open(engine, options);
  OCELOT_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

void RegisterPoint(const std::string& name, const std::string& engine,
                   std::function<void(mal::Session*, benchmark::State&)> body) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [engine, body](benchmark::State& state) {
        ocl::DeviceModel gpu = MicroGpuModel();
        ocl::DeviceModel cpu = MicroCpuModel();
        auto session = OpenSession(engine, &gpu, &cpu);
        body(session.get(), state);
      })
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
}

const tpch::TpchDb& Db(double paper_sf) {
  static std::map<double, tpch::TpchDb>* cache = new std::map<double, tpch::TpchDb>();
  auto it = cache->find(paper_sf);
  if (it == cache->end()) {
    it = cache->emplace(paper_sf, tpch::Generate(tpch::ScaleForPaperSf(paper_sf)))
             .first;
  }
  return it->second;
}

void JsonMeasuredLoop(benchmark::State& state, mal::Session* session,
                      const std::function<bool()>& op) {
  double real_ms = 0;
  std::uint64_t copied0 = ocelot::Scheduler::bytes_copied();
  int iters = 0;
  for (auto _ : state) {
    common::Stopwatch wall;
    double ms = MeasureVirtualMs(session, [&] {
      if (!op()) state.SkipWithError("exceeds device memory");
    });
    real_ms += wall.ElapsedMillis();
    iters += 1;
    state.SetIterationTime(ms / 1000.0);
  }
  if (iters > 0) {
    state.counters["real_ms"] = real_ms / iters;
    state.counters["bytes_copied"] = static_cast<double>(
        (ocelot::Scheduler::bytes_copied() - copied0) /
        static_cast<std::uint64_t>(iters));
  }
}

namespace {

std::string EngineLabelOf(const std::string& name) {
  // One mapping governs both directions: benchmarks name their points with
  // Label(engine), so match path segments against the same function over
  // every registered engine.
  static const std::vector<std::string>* labels = [] {
    auto* v = new std::vector<std::string>();
    for (const std::string& engine : mal::OrderedEngineNames()) {
      v->push_back(Label(engine));
    }
    return v;
  }();
  std::stringstream ss(name);
  std::string segment;
  while (std::getline(ss, segment, '/')) {
    for (const std::string& label : *labels) {
      if (segment == label) return segment;
    }
  }
  return "";
}

double CounterOr(const benchmark::UserCounters& counters, const char* key,
                 double fallback) {
  auto it = counters.find(key);
  return it == counters.end() ? fallback : static_cast<double>(it->second);
}

/// google-benchmark < 1.8 reports errored runs via Run::error_occurred;
/// 1.8+ replaced it with the Run::skipped state. Detect whichever member
/// the installed headers have.
template <typename R>
auto RunErrored(const R& run, int) -> decltype(run.error_occurred) {
  return run.error_occurred;
}
template <typename R>
auto RunErrored(const R& run, long) -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);
}

}  // namespace

BenchJsonReporter::BenchJsonReporter(std::string path) : path_(std::move(path)) {}

void BenchJsonReporter::ReportRuns(const std::vector<Run>& report) {
  for (const Run& run : report) {
    if (RunErrored(run, 0)) continue;
    // Manual time is the virtual (modeled) milliseconds every bench reports;
    // GetAdjustedRealTime applies the per-iteration average and the ms unit.
    std::ostringstream rec;
    rec << "{\"engine\": \"" << EngineLabelOf(run.benchmark_name())
        << "\", \"benchmark\": \"" << run.benchmark_name()
        << "\", \"virtual_ms\": " << run.GetAdjustedRealTime()
        << ", \"real_ms\": " << CounterOr(run.counters, "real_ms", 0.0)
        << ", \"bytes_copied\": "
        << static_cast<std::uint64_t>(CounterOr(run.counters, "bytes_copied", 0.0));
    // Service-throughput points report queries/sec and their concurrency
    // level; absent counters are simply omitted from the record.
    if (run.counters.find("qps") != run.counters.end()) {
      rec << ", \"qps\": " << CounterOr(run.counters, "qps", 0.0);
    }
    if (run.counters.find("sessions") != run.counters.end()) {
      rec << ", \"sessions\": "
          << static_cast<int>(CounterOr(run.counters, "sessions", 0.0));
    }
    // Kernel-throughput points: the benchmark registers rate counters
    // (Counter::kIsRate), so google-benchmark already divided by host wall
    // time — these are real rows/bytes per second, not virtual.
    if (run.counters.find("rows_per_sec") != run.counters.end()) {
      rec << ", \"rows_per_sec\": " << CounterOr(run.counters, "rows_per_sec", 0.0);
    }
    if (run.counters.find("bytes_per_sec") != run.counters.end()) {
      rec << ", \"bytes_per_sec\": "
          << CounterOr(run.counters, "bytes_per_sec", 0.0);
    }
    // Compression points: byte counters and the ratio pass through under
    // their own names (UserCounters is an ordered map, so the record layout
    // is deterministic).
    for (const char* key :
         {"transfer_bytes", "logical_bytes", "phys_bytes", "ratio"}) {
      if (run.counters.find(key) != run.counters.end()) {
        rec << ", \"" << key << "\": " << CounterOr(run.counters, key, 0.0);
      }
    }
    rec << "}";
    records_.push_back(rec.str());
  }
  ConsoleReporter::ReportRuns(report);
}

BenchJsonReporter::~BenchJsonReporter() {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJsonReporter: cannot write %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  // Metadata header record: which SIMD flavor this binary compiled to and
  // what the host actually supports, so a perf-trajectory diff across CI
  // runners never silently compares different instruction sets.
  std::fprintf(f,
               "  {\"metadata\": true, \"simd_isa\": \"%s\", \"simd_width\": "
               "%d, \"cpu_features\": \"%s\", \"scalar_forced\": %s},\n",
               common::simd::IsaName(), common::simd::Width(),
               common::simd::CpuFeatures(),
               common::simd::Enabled() ? "false" : "true");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                 i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int RunBenchmarks(int argc, char** argv, const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  BenchJsonReporter reporter(json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (reporter.records() == 0) {
    std::fprintf(stderr,
                 "error: no benchmark produced a measurable run (every point "
                 "errored or the filter matched nothing)\n");
    return 1;
  }
  return 0;
}

bool RunQuery(int q, const tpch::TpchDb& db, mal::Session* session,
              mal::RunOptions::Mode mode) {
  auto plan = tpch::BuildQuery(q, db);
  OCELOT_CHECK(plan.ok()) << plan.status().ToString();
  mal::Program prog = *plan;
  if (session->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
  mal::RunOptions options;
  options.mode = mode;
  auto res = mal::Run(prog, db.catalog, session, options);
  if (!res.ok()) {
    // mal::Run wraps engine errors as Internal; memory exhaustion is a
    // legitimate skip, anything else is a bug.
    if (res.status().ToString().find("ResourceExhausted") != std::string::npos) {
      return false;
    }
    OCELOT_CHECK(false) << "Q" << q << " on " << session->engine_name() << ": "
                        << res.status().ToString();
  }
  benchmark::DoNotOptimize(res->returns.data());
  return true;
}

}  // namespace bench
