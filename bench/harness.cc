#include "bench/harness.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace bench {

namespace {

std::vector<std::string> BuildConfigurations() {
  std::vector<std::string> ordered = mal::OrderedEngineNames();
  const char* env = std::getenv("OCELOT_ENGINES");
  if (env == nullptr || *env == '\0') return ordered;
  std::vector<std::string> filtered;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    OCELOT_CHECK(cstore::EngineRegistry::Global().Contains(token))
        << "OCELOT_ENGINES names unknown engine '" << token << "'";
    filtered.push_back(token);
  }
  return filtered;
}

}  // namespace

const std::vector<std::string>& Configurations() {
  static const std::vector<std::string>* kAll =
      new std::vector<std::string>(BuildConfigurations());
  return *kAll;
}

std::string Label(const std::string& engine) {
  if (engine == "seq") return "MS";
  if (engine == "par") return "MP";
  if (engine == "ocelot:cpu") return "CPU";
  if (engine == "ocelot:gpu") return "GPU";
  if (engine == "ocelot:multi") return "MULTI";
  return engine;
}

namespace {

double MbScale() {
  if (const char* env = std::getenv("OCELOT_MB_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.125;
}

}  // namespace

std::size_t RowsForMb(int mb) {
  double bytes = static_cast<double>(mb) * 1024 * 1024 * MbScale();
  return static_cast<std::size_t>(bytes / 4);
}

cstore::BatPtr UniformInts(std::size_t n, std::int32_t limit, std::uint64_t seed) {
  common::Rng rng(seed);
  cstore::BatPtr b = cstore::Bat::MakeInt(n);
  auto s = b->ints();
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<std::int32_t>(rng.Uniform(0, limit - 1));
  }
  b->set_nonil(true);
  return b;
}

namespace {

/// Scales a device's fixed driver costs with the shrunken data axis so the
/// fixed-vs-linear cost ratio of the paper's plots is preserved.
void ScaleDriverCosts(ocl::DeviceModel* m, double scale) {
  m->kernel_launch_overhead =
      static_cast<common::Nanos>(static_cast<double>(m->kernel_launch_overhead) * scale);
  m->kernel_compile_cost =
      static_cast<common::Nanos>(static_cast<double>(m->kernel_compile_cost) * scale);
}

}  // namespace

ocl::DeviceModel MicroGpuModel() {
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  gpu.global_mem_bytes =
      static_cast<std::size_t>(static_cast<double>(gpu.global_mem_bytes) * MbScale());
  ScaleDriverCosts(&gpu, MbScale());
  return gpu;
}

ocl::DeviceModel MicroCpuModel() {
  ocl::DeviceModel cpu = ocl::XeonE5620Model();
  ScaleDriverCosts(&cpu, MbScale());
  return cpu;
}

ocl::DeviceModel TpchGpuModel() {
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  double unit = tpch::ScaleForPaperSf(1.0);
  gpu.global_mem_bytes =
      static_cast<std::size_t>(static_cast<double>(gpu.global_mem_bytes) * unit);
  ScaleDriverCosts(&gpu, unit);
  return gpu;
}

ocl::DeviceModel TpchCpuModel() {
  ocl::DeviceModel cpu = ocl::XeonE5620Model();
  ScaleDriverCosts(&cpu, tpch::ScaleForPaperSf(1.0));
  return cpu;
}

double MeasureVirtualMs(mal::Session* session, const std::function<void()>& op) {
  common::Nanos v0 = session->clock()->Now();
  op();
  return static_cast<double>(session->clock()->Now() - v0) / 1e6;
}

std::unique_ptr<mal::Session> OpenSession(const std::string& engine,
                                          const ocl::DeviceModel* gpu_model,
                                          const ocl::DeviceModel* cpu_model) {
  cstore::EngineOptions options;
  options.gpu_model = gpu_model;
  options.cpu_model = cpu_model;
  auto session = mal::Session::Open(engine, options);
  OCELOT_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

void RegisterPoint(const std::string& name, const std::string& engine,
                   std::function<void(mal::Session*, benchmark::State&)> body) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [engine, body](benchmark::State& state) {
        ocl::DeviceModel gpu = MicroGpuModel();
        ocl::DeviceModel cpu = MicroCpuModel();
        auto session = OpenSession(engine, &gpu, &cpu);
        body(session.get(), state);
      })
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
}

const tpch::TpchDb& Db(double paper_sf) {
  static std::map<double, tpch::TpchDb>* cache = new std::map<double, tpch::TpchDb>();
  auto it = cache->find(paper_sf);
  if (it == cache->end()) {
    it = cache->emplace(paper_sf, tpch::Generate(tpch::ScaleForPaperSf(paper_sf)))
             .first;
  }
  return it->second;
}

bool RunQuery(int q, const tpch::TpchDb& db, mal::Session* session) {
  auto plan = tpch::BuildQuery(q, db);
  OCELOT_CHECK(plan.ok()) << plan.status().ToString();
  mal::Program prog = *plan;
  if (session->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
  auto res = mal::Run(prog, db.catalog, session);
  if (!res.ok()) {
    // mal::Run wraps engine errors as Internal; memory exhaustion is a
    // legitimate skip, anything else is a bug.
    if (res.status().ToString().find("ResourceExhausted") != std::string::npos) {
      return false;
    }
    OCELOT_CHECK(false) << "Q" << q << " on " << session->engine_name() << ": "
                        << res.status().ToString();
  }
  benchmark::DoNotOptimize(res->returns.data());
  return true;
}

}  // namespace bench
