#ifndef OCELOT_BENCH_HARNESS_H_
#define OCELOT_BENCH_HARNESS_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "mal/interp.h"
#include "mal/rewriter.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

/// Shared machinery of the figure-reproduction benchmarks. Every benchmark
/// reports *virtual* milliseconds through google-benchmark's manual-time
/// mode: real host time for the sequential baseline, modeled parallel time
/// for MP and the Ocelot devices (DESIGN.md section 2).
namespace bench {

/// The four configurations of the paper's evaluation, in figure order.
inline const std::vector<mal::Pipeline>& Configurations() {
  static const std::vector<mal::Pipeline> kAll = {
      mal::Pipeline::kSequential, mal::Pipeline::kMitosis,
      mal::Pipeline::kOcelotCpu, mal::Pipeline::kOcelotGpu};
  return kAll;
}

/// Short labels used in the paper's plots.
const char* Label(mal::Pipeline p);

/// Paper "input size in MB" axis -> row count, scaled by OCELOT_MB_SCALE
/// (default 1/8 so the sweeps finish on one core).
std::size_t RowsForMb(int mb);

/// The paper-axis sizes of Figures 5/6.
inline std::vector<int> MbAxis() { return {64, 128, 256, 512, 1024}; }

/// Uniform int column in [0, limit).
cstore::BatPtr UniformInts(std::size_t n, std::int32_t limit, std::uint64_t seed = 7);

/// GTX460 with device memory scaled by the same unit as the data, so the
/// memory cliffs of the paper appear at the same *relative* sizes:
/// microbenchmarks scale their "MB" axis by OCELOT_MB_SCALE, the TPC-H runs
/// scale row counts by OCELOT_SF_UNIT.
ocl::DeviceModel MicroGpuModel();
ocl::DeviceModel MicroCpuModel();
ocl::DeviceModel TpchGpuModel();
ocl::DeviceModel TpchCpuModel();

/// One measured run of `op` under `session`: returns virtual milliseconds.
double MeasureVirtualMs(mal::Session* session, const std::function<void()>& op);

/// Registers one microbenchmark series point: name like "Fig5a/select/MS/64MB".
/// `make_op` is invoked once per measurement with the session; a warm-up run
/// precedes timing (hot caches, compiled kernels — paper 5.2/5.3).
void RegisterPoint(const std::string& name, mal::Pipeline pipeline,
                   std::function<void(mal::Session*, benchmark::State&)> body);

/// TPC-H database cache shared by the Fig. 7 benchmarks (generated once per
/// paper scale factor).
const tpch::TpchDb& Db(double paper_sf);

/// Runs query `q` under `session`. Returns false when the configuration
/// legitimately cannot run the point (device memory exhausted — the paper's
/// "line ends"/"could not use the graphics card" cases); aborts on any
/// other error (benchmarks must not silently measure failures).
bool RunQuery(int q, const tpch::TpchDb& db, mal::Session* session);

}  // namespace bench

#endif  // OCELOT_BENCH_HARNESS_H_
