#ifndef OCELOT_BENCH_HARNESS_H_
#define OCELOT_BENCH_HARNESS_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "mal/engines.h"
#include "mal/interp.h"
#include "ocl/device.h"
#include "mal/rewriter.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

/// Shared machinery of the figure-reproduction benchmarks. Every benchmark
/// reports *virtual* milliseconds through google-benchmark's manual-time
/// mode: real host time for the sequential baseline, modeled parallel time
/// for MP and the Ocelot devices (DESIGN.md section 2).
namespace bench {

/// The engines every benchmark sweeps, resolved by name from the global
/// cstore::EngineRegistry: the paper's four configurations first ("seq",
/// "par", "ocelot:cpu", "ocelot:gpu"), then every further registered engine
/// ("ocelot:multi", ...). Set OCELOT_ENGINES to a comma-separated subset
/// (e.g. OCELOT_ENGINES=seq,ocelot:multi) to restrict a sweep.
const std::vector<std::string>& Configurations();

/// Short labels used in the paper's plots ("MS", "MP", "CPU", "GPU",
/// "MULTI"; unknown engines label as their registry name).
std::string Label(const std::string& engine);

/// Paper "input size in MB" axis -> row count, scaled by OCELOT_MB_SCALE
/// (default 1/8 so the sweeps finish on one core).
std::size_t RowsForMb(int mb);

/// The paper-axis sizes of Figures 5/6.
inline std::vector<int> MbAxis() { return {64, 128, 256, 512, 1024}; }

/// Uniform int column in [0, limit).
cstore::BatPtr UniformInts(std::size_t n, std::int32_t limit, std::uint64_t seed = 7);

/// GTX460 with device memory scaled by the same unit as the data, so the
/// memory cliffs of the paper appear at the same *relative* sizes:
/// microbenchmarks scale their "MB" axis by OCELOT_MB_SCALE, the TPC-H runs
/// scale row counts by OCELOT_SF_UNIT.
ocl::DeviceModel MicroGpuModel();
ocl::DeviceModel MicroCpuModel();
ocl::DeviceModel TpchGpuModel();
ocl::DeviceModel TpchCpuModel();

/// One measured run of `op` under `session`: returns virtual milliseconds.
double MeasureVirtualMs(mal::Session* session, const std::function<void()>& op);

/// Resolves `engine` from the registry with the given device-model
/// overrides; aborts on failure (benchmarks must not silently skip an
/// engine they were asked to sweep).
std::unique_ptr<mal::Session> OpenSession(const std::string& engine,
                                          const ocl::DeviceModel* gpu_model,
                                          const ocl::DeviceModel* cpu_model);

/// Registers one microbenchmark series point: name like "Fig5a/select/MS/64MB".
/// The session is resolved from the engine registry by name (with the micro
/// device models); a warm-up run precedes timing (hot caches, compiled
/// kernels — paper 5.2/5.3).
void RegisterPoint(const std::string& name, const std::string& engine,
                   std::function<void(mal::Session*, benchmark::State&)> body);

/// TPC-H database cache shared by the Fig. 7 benchmarks (generated once per
/// paper scale factor).
const tpch::TpchDb& Db(double paper_sf);

/// Runs query `q` under `session`. Returns false when the configuration
/// legitimately cannot run the point (device memory exhausted — the paper's
/// "line ends"/"could not use the graphics card" cases); aborts on any
/// other error (benchmarks must not silently measure failures). `mode`
/// selects the interpreter (default: whatever OCELOT_DATAFLOW says); the
/// dataflow on/off comparison points pass it explicitly.
bool RunQuery(int q, const tpch::TpchDb& db, mal::Session* session,
              mal::RunOptions::Mode mode = mal::RunOptions::Mode::kEnv);

/// The measured loop of a JSON-reporting benchmark: per-iteration virtual
/// milliseconds as google-benchmark manual time, plus the `real_ms` (host
/// wall per iteration) and `bytes_copied` (scheduler merge traffic per
/// iteration) user counters the BenchJsonReporter picks up. `op` returns
/// false when the point legitimately exceeds device memory; the loop then
/// ends with SkipWithError. Callers warm up before entering.
void JsonMeasuredLoop(benchmark::State& state, mal::Session* session,
                      const std::function<bool()>& op);

/// Console reporter that additionally appends one machine-readable JSON
/// record per finished run to a file:
///   {"engine": "MULTI", "benchmark": "...", "virtual_ms": ..,
///    "real_ms": .., "bytes_copied": ..}
/// The engine is the paper label found in the benchmark name's path
/// segments; virtual_ms is the manual (modeled) time every bench reports;
/// real_ms and bytes_copied come from the like-named user counters when the
/// benchmark sets them (0 otherwise). Service-throughput points add "qps"
/// and "sessions" fields when those counters are present; kernel points add
/// "rows_per_sec" and "bytes_per_sec" when the benchmark sets those rate
/// counters (benchmark::Counter::kIsRate over host wall time — real
/// throughput, not modeled). The file is written on destruction, headed by
/// one metadata record ({"metadata": true, "simd_isa": .., "simd_width": ..,
/// "cpu_features": .., "scalar_forced": ..}) identifying the compiled SIMD
/// flavor and the runtime CPU feature set the numbers were measured under.
class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchJsonReporter(std::string path);
  ~BenchJsonReporter() override;

  void ReportRuns(const std::vector<Run>& report) override;

  /// Successfully measured runs so far (errored/skipped points excluded).
  std::size_t records() const { return records_.size(); }

 private:
  std::string path_;
  std::vector<std::string> records_;
};

/// Standard bench main body: Initialize + RunSpecifiedBenchmarks with a
/// BenchJsonReporter writing `json_path` next to the console output.
/// Returns nonzero when not a single point produced a measurable run, so a
/// CI smoke job fails instead of uploading an empty trajectory.
int RunBenchmarks(int argc, char** argv, const std::string& json_path);

}  // namespace bench

#endif  // OCELOT_BENCH_HARNESS_H_
