#ifndef OCELOT_BENCH_MICRO_COMMON_H_
#define OCELOT_BENCH_MICRO_COMMON_H_

#include "bench/harness.h"
#include "ocelot/engine.h"
#include "ocelot/scheduler.h"

namespace bench {

/// Shared skeleton of the Figure 5/6 microbenchmarks: one warm-up run (hot
/// caches + compiled kernels, as in the paper's methodology), then manual
/// virtual-time iterations. `op` returns false when the point exceeds the
/// device's memory (the "line ends midway" cases of Fig. 5).
inline void MicroLoop(mal::Session* session, benchmark::State& state,
                      const std::function<bool()>& op) {
  if (!op()) {
    state.SkipWithError("exceeds device memory");
    return;
  }
  for (auto _ : state) {
    double ms = MeasureVirtualMs(session, [&] {
      if (!op()) state.SkipWithError("exceeds device memory");
    });
    state.SetIterationTime(ms / 1000.0);
  }
}

/// Settles the virtual clock after enqueue-only Ocelot operators: waits for
/// all scheduled kernels but does not transfer results back (the paper's
/// microbenchmarks exclude device<->host transfers).
inline void Settle(mal::Session* session) { session->FinishDevices(); }

/// Drops the cached device hash table of BAT `id` on every device of the
/// session — the single Ocelot engine's, or all scheduler slots'; no-op for
/// the host baselines (benchmarks measuring cold builds).
inline void DropCachedHashTable(mal::Session* session, std::uint64_t id) {
  if (ocelot::OcelotEngine* eng = session->ocelot()) {
    eng->memory()->DropCachedHashTable(id);
    return;
  }
  if (auto* sched = dynamic_cast<ocelot::Scheduler*>(session->engine())) {
    sched->DropCachedHashTable(id);
  }
}

/// True when the status is the device-memory signal (skip the point).
inline bool IsMemoryLimit(const common::Status& s) {
  return s.code() == common::StatusCode::kResourceExhausted;
}

}  // namespace bench

#endif  // OCELOT_BENCH_MICRO_COMMON_H_
