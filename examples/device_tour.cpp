// Device tour: what "hardware-oblivious" resolves to at runtime.
//
// Lists the available OpenCLite devices with their modeled properties, then
// shows how the SAME kernel launch is scheduled differently on each: work
// group geometry (one group per core, 4*na items — paper 4.2), memory access
// pattern (sequential-per-thread vs coalesced), preferred radix width, and
// the event-level schedule (dispatch/compute/transfer overlap of Fig. 3).
//
//   $ ./device_tour

#include <cstdio>
#include <numeric>
#include <vector>

#include "ocl/context.h"

int main() {
  std::vector<std::int64_t> data(1 << 20, 1);

  for (const ocl::DeviceModel& model : ocl::AvailableDevices()) {
    std::printf("== %s ==\n", model.name.c_str());
    std::printf("   type                : %s\n",
                model.type == ocl::DeviceType::kCpu ? "CPU" : "GPU");
    std::printf("   cores x units       : %d x %d\n", model.compute_cores,
                model.units_per_core);
    std::printf("   default work-groups : %d groups of %d items\n",
                model.default_groups(), model.default_local_size());
    std::printf("   access pattern      : %s\n",
                model.access == ocl::AccessPattern::kCoalesced
                    ? "coalesced (neighboring threads, neighboring addresses)"
                    : "sequential per thread (prefetch/cache friendly)");
    std::printf("   radix-sort width    : %d bits (%d passes)\n", model.radix_bits,
                32 / model.radix_bits);
    std::printf("   memory              : %s\n",
                model.unified_memory ? "unified (zero-copy BATs)"
                                     : "discrete (transfers + device cache)");

    auto ctx = ocl::Context::Create(model);

    // The same hardware-oblivious kernel on every device: each work-item
    // walks the units the runtime assigns it under the device's pattern.
    std::int64_t total = 0;
    ocl::KernelLaunch k;
    k.name = "tour_sum";
    k.body = [&](ocl::WorkGroup& wg) {
      std::int64_t acc = 0;
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t i : wg.UnitsFor(item, data.size())) acc += data[i];
      }
      total += acc;  // groups execute sequentially in the simulator
    };
    ocl::EventPtr ev = ctx->queue()->EnqueueKernel(std::move(k));
    ctx->queue()->Wait(ev);

    std::printf("   kernel result       : %lld (expected %zu)\n",
                static_cast<long long>(total), data.size());
    std::printf("   event profile       : queued=%lld start=%lld end=%lld (+%.3f ms)\n",
                static_cast<long long>(ev->queued_time() % 1'000'000'000),
                static_cast<long long>(ev->start_time() % 1'000'000'000),
                static_cast<long long>(ev->end_time() % 1'000'000'000),
                static_cast<double>(ev->duration()) / 1e6);
    const auto& prof = ctx->queue()->profiles().at("tour_sum");
    std::printf("   profile             : %llu launch(es), %llu work-group(s)\n\n",
                static_cast<unsigned long long>(prof.launches),
                static_cast<unsigned long long>(prof.work_groups));
  }
  return 0;
}
