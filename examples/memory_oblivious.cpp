// Memory manager tour: the device cache, pinning, eviction and host
// offloading of paper section 3.3, demonstrated on a GPU model whose device
// memory is deliberately tiny so every mechanism fires.
//
//   $ ./memory_oblivious

#include <cstdio>

#include "common/rng.h"
#include "ocelot/engine.h"

namespace {

cstore::BatPtr Column(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  cstore::BatPtr b = cstore::Bat::MakeInt(n);
  for (auto& v : b->ints()) v = static_cast<std::int32_t>(rng.Uniform(0, 999));
  return b;
}

void PrintState(const char* when, ocelot::MemoryManager* mm) {
  std::printf("%-38s device=%7.2f MB  entries=%zu  evictions=%llu  "
              "offloads=%llu  reloads=%llu\n",
              when, static_cast<double>(mm->device_bytes()) / 1e6,
              mm->cached_entries(),
              static_cast<unsigned long long>(mm->evictions()),
              static_cast<unsigned long long>(mm->offloads()),
              static_cast<unsigned long long>(mm->reloads()));
}

}  // namespace

int main() {
  // A GTX460 shrunk to 20 MB of device memory (two 8 MB columns fit, a
  // third does not).
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  gpu.global_mem_bytes = 20 << 20;
  auto ctx = ocl::Context::Create(gpu);
  ocelot::OcelotEngine engine(ctx.get());
  ocelot::MemoryManager* mm = engine.memory();

  std::printf("device: %s with %.0f MB (deliberately tiny)\n\n", gpu.name.c_str(),
              static_cast<double>(gpu.global_mem_bytes) / 1e6);

  // Three 8 MB base columns: the first two fit, the third forces the LRU
  // eviction of the least recently used cached copy.
  constexpr std::size_t kRows = 2'000'000;  // 8 MB each
  cstore::BatPtr a = Column(kRows, 1), b = Column(kRows, 2), c = Column(kRows, 3);

  PrintState("start", mm);
  OCELOT_CHECK_OK(engine.Sum(a).status());
  PrintState("after scanning A (cached)", mm);
  OCELOT_CHECK_OK(engine.Sum(b).status());
  PrintState("after scanning B (cached)", mm);
  OCELOT_CHECK_OK(engine.Sum(c).status());
  PrintState("after scanning C (A evicted, LRU)", mm);

  // Results cannot be dropped, only offloaded to the host (footnote 4):
  // compute a result, then crowd it out and watch it come back.
  auto doubled = engine.CalcScalar(cstore::CalcOp::kMul, c, 2.0, false);
  OCELOT_CHECK_OK(doubled.status());
  PrintState("after computing C*2 (device result)", mm);

  OCELOT_CHECK_OK(engine.Sum(a).status());
  OCELOT_CHECK_OK(engine.Sum(b).status());
  PrintState("after re-scanning A and B", mm);

  auto sum = engine.Sum(*doubled);
  OCELOT_CHECK_OK(sum.status());
  PrintState("after using C*2 again (reloaded)", mm);

  // Pinning protects hot BATs from eviction (the manual refcount of 3.3).
  ocelot::MemoryManager::OpScope scope(mm);
  OCELOT_CHECK_OK(mm->Pin(&scope, a));
  OCELOT_CHECK_OK(engine.Sum(b).status());
  OCELOT_CHECK_OK(engine.Sum(c).status());
  PrintState("A pinned, B and C scanned", mm);
  mm->Unpin(a);

  std::printf("\nsum(C*2) = %.0f (result survived offload + reload)\n", *sum);
  return 0;
}
