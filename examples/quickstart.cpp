// Quickstart: the hardware-oblivious engine in ~60 lines.
//
// Creates a column, runs the same selection -> projection -> aggregation
// pipeline through the Ocelot operators on BOTH device models, and prints
// the (identical) results plus the virtual runtimes — the paper's core
// claim in miniature.
//
//   $ ./quickstart

#include <cstdio>

#include "common/rng.h"
#include "ocelot/engine.h"
#include "ocl/context.h"

int main() {
  // A column of one million uniform integers in [0, 1000).
  constexpr std::size_t kRows = 1'000'000;
  common::Rng rng(42);
  cstore::BatPtr col = cstore::Bat::MakeInt(kRows);
  for (auto& v : col->ints()) v = static_cast<std::int32_t>(rng.Uniform(0, 999));

  std::printf("hardware-oblivious pipeline: SELECT sum(v) WHERE 100 <= v < 200\n\n");

  for (const ocl::DeviceModel& model : ocl::AvailableDevices()) {
    auto ctx = ocl::Context::Create(model);
    ocelot::OcelotEngine engine(ctx.get());

    common::Nanos start = ctx->clock()->Now();

    // 1. Selection: produces a device-side bitmap (never materialized).
    auto cand = engine.SelectRange(col, nullptr, cstore::Bound::Incl(100),
                                   cstore::Bound::Excl(200));
    OCELOT_CHECK_OK(cand.status());

    // 2. Projection: gathers the qualifying values (materializes the bitmap
    //    into an oid list via a device prefix sum, paper 4.1.2).
    auto vals = engine.Project(*cand, col);
    OCELOT_CHECK_OK(vals.status());

    // 3. Aggregation: parallel binary reduction.
    auto sum = engine.Sum(*vals);
    OCELOT_CHECK_OK(sum.status());
    auto hits = engine.CandCount(*cand);
    OCELOT_CHECK_OK(hits.status());

    double virtual_ms = static_cast<double>(ctx->clock()->Now() - start) / 1e6;
    std::printf("%-45s rows=%lld  sum=%.0f  virtual=%.3f ms\n", model.name.c_str(),
                static_cast<long long>(*hits), *sum, virtual_ms);
  }

  std::printf("\nSame operators, same results, two very different devices.\n");
  return 0;
}
