// End-to-end analytics: generate a TPC-H database, show a query plan before
// and after the Ocelot rewriter, and run the paper's workload on every
// engine in the registry (the paper's four configurations plus the
// multi-device scheduler), printing a Fig. 7-style runtime table.
//
//   $ ./tpch_analytics [paper_scale_factor]   (default 1)

#include <cstdio>
#include <cstdlib>

#include "mal/engines.h"
#include "mal/interp.h"
#include "mal/rewriter.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("generating TPC-H (paper SF %.1f, unit %.3f)...\n", sf,
              tpch::ScaleForPaperSf(1.0));
  tpch::TpchDb db = tpch::Generate(tpch::ScaleForPaperSf(sf));
  std::printf("database: %.1f MB across %zu tables\n\n",
              static_cast<double>(db.catalog.TotalBytes()) / 1e6,
              db.catalog.TableNames().size());

  // Show the rewriter at work on Q6.
  auto q6 = tpch::BuildQuery(6, db);
  OCELOT_CHECK_OK(q6.status());
  std::printf("---- Q6 plan (MonetDB operators) ----\n%s\n", q6->Explain().c_str());
  std::printf("---- Q6 plan (after the Ocelot rewriter) ----\n%s\n",
              mal::RewriteForOcelot(*q6).Explain().c_str());

  // Run the paper workload on every registered engine, resolved by name.
  std::vector<std::string> engines = mal::OrderedEngineNames();

  std::printf("%-5s", "query");
  for (const std::string& e : engines) std::printf(" %12s", e.c_str());
  std::printf("   (virtual ms, hot cache)\n");
  for (int query : tpch::PaperWorkload()) {
    std::printf("Q%-4d", query);
    for (const std::string& e : engines) {
      auto opened = mal::Session::Open(e);
      OCELOT_CHECK(opened.ok()) << opened.status().ToString();
      std::unique_ptr<mal::Session> session = std::move(*opened);
      auto plan = tpch::BuildQuery(query, db);
      OCELOT_CHECK_OK(plan.status());
      mal::Program prog = *plan;
      if (session->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);

      auto warm = mal::Run(prog, db.catalog, session.get());  // hot cache
      if (!warm.ok()) {
        std::printf(" %12s", "-");
        continue;
      }
      common::Nanos start = session->clock()->Now();
      auto res = mal::Run(prog, db.catalog, session.get());
      if (!res.ok() &&
          (res.status().code() == common::StatusCode::kDeviceLost ||
           res.status().code() == common::StatusCode::kResourceExhausted)) {
        // A device fault (real exhaustion, or an injected OCELOT_FAULT_SPEC
        // schedule) on an engine without failover: the point is simply
        // unavailable, like the warm run above.
        std::printf(" %12s", "-");
        continue;
      }
      OCELOT_CHECK_OK(res.status());
      double ms = static_cast<double>(session->clock()->Now() - start) / 1e6;
      std::printf(" %12.2f", ms);
    }
    std::printf("\n");
  }
  return 0;
}
