#include "common/aligned.h"

#include "common/logging.h"

namespace common {

void* AlignedAlloc(std::size_t bytes) {
  if (bytes == 0) bytes = kHeapAlignment;
  // Round the size up: C11 aligned_alloc requires size % alignment == 0.
  std::size_t rounded = (bytes + kHeapAlignment - 1) & ~(kHeapAlignment - 1);
  void* ptr = std::aligned_alloc(kHeapAlignment, rounded);
  OCELOT_CHECK(ptr != nullptr) << "aligned_alloc(" << rounded << ") failed";
  return ptr;
}

void AlignedFree(void* ptr) { std::free(ptr); }

}  // namespace common
