#ifndef OCELOT_COMMON_ALIGNED_H_
#define OCELOT_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace common {

/// Alignment contract for all column heaps and device buffers.
///
/// The paper (section 4.3) modified MonetDB's allocator to return 128-byte
/// aligned chunks because the Intel OpenCL SDK vectorizes against aligned
/// memory. We keep the same contract: every heap the kernels touch is
/// 128-byte aligned.
inline constexpr std::size_t kHeapAlignment = 128;

/// Allocates `bytes` of 128-byte-aligned storage; never returns nullptr
/// (aborts on OOM like MonetDB's GDKmalloc does for internal allocations).
void* AlignedAlloc(std::size_t bytes);

/// Releases storage obtained from AlignedAlloc.
void AlignedFree(void* ptr);

/// std::allocator-compatible adaptor so std::vector can host column heaps
/// with the kernel-visible alignment contract.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT: implicit

  T* allocate(std::size_t n) {
    return static_cast<T*>(AlignedAlloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) { AlignedFree(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

}  // namespace common

#endif  // OCELOT_COMMON_ALIGNED_H_
