#include "common/bitvector.h"

namespace common {

void BitVector::ClearSlack() {
  if (words_.empty()) return;
  std::size_t used = size_ % kBitsPerWord;
  if (used != 0) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

std::size_t BitVector::CountOnes() const {
  std::size_t n = 0;
  if (words_.empty()) return 0;
  for (std::size_t i = 0; i + 1 < words_.size(); ++i) {
    n += std::popcount(words_[i]);
  }
  Word last = words_.back();
  std::size_t used = size_ % kBitsPerWord;
  if (used != 0) last &= (Word{1} << used) - 1;
  n += std::popcount(last);
  return n;
}

void BitVector::And(const BitVector& other) {
  OCELOT_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  OCELOT_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::Not() {
  for (Word& w : words_) w = ~w;
  ClearSlack();
}

void BitVector::AppendSetPositions(std::vector<std::uint32_t>* out,
                                   std::uint32_t base) const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    if (wi + 1 == words_.size()) {
      std::size_t used = size_ % kBitsPerWord;
      if (used != 0) w &= (Word{1} << used) - 1;
    }
    while (w != 0) {
      int bit = std::countr_zero(w);
      out->push_back(base + static_cast<std::uint32_t>(wi * kBitsPerWord + bit));
      w &= w - 1;
    }
  }
}

}  // namespace common
