#ifndef OCELOT_COMMON_BITVECTOR_H_
#define OCELOT_COMMON_BITVECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/logging.h"

namespace common {

/// Packed bitmap used as the intermediate representation of selection
/// results (paper section 4.1.1).
///
/// Bits are stored LSB-first inside 64-bit words; the layout matches what
/// the selection kernels produce one byte at a time (8 four-byte values per
/// work-item yield one result byte). Word-level accessors allow AND/OR/NOT
/// combination of predicates without re-materializing oid lists.
class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kBitsPerWord = 64;

  BitVector() = default;
  /// Creates a bitmap for `n` rows, all bits cleared.
  explicit BitVector(std::size_t n) : size_(n), words_(WordCount(n), 0) {}

  std::size_t size() const { return size_; }
  std::size_t word_count() const { return words_.size(); }
  bool empty() const { return size_ == 0; }

  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

  /// Raw byte view; the selection kernels write result bytes directly.
  std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(words_.data()); }
  const std::uint8_t* bytes() const {
    return reinterpret_cast<const std::uint8_t*>(words_.data());
  }
  std::size_t byte_count() const { return words_.size() * sizeof(Word); }

  bool Get(std::size_t i) const {
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }
  void Set(std::size_t i) { words_[i / kBitsPerWord] |= Word{1} << (i % kBitsPerWord); }
  void Clear(std::size_t i) { words_[i / kBitsPerWord] &= ~(Word{1} << (i % kBitsPerWord)); }

  /// Number of set bits; clears any tail slack first so callers may have
  /// written whole trailing bytes.
  std::size_t CountOnes() const;

  /// this &= other. Sizes must match.
  void And(const BitVector& other);
  /// this |= other. Sizes must match.
  void Or(const BitVector& other);
  /// this = ~this (tail slack kept clear).
  void Not();

  /// Zeroes the bits beyond size() in the last word. Kernels that write the
  /// bitmap byte-wise may dirty the slack; call this before counting.
  void ClearSlack();

  /// Appends the positions of all set bits to `out` (positions offset by
  /// `base`). This is the sequential reference for the parallel
  /// materialization kernel.
  void AppendSetPositions(std::vector<std::uint32_t>* out, std::uint32_t base = 0) const;

  static std::size_t WordCount(std::size_t bits) {
    return (bits + kBitsPerWord - 1) / kBitsPerWord;
  }

 private:
  std::size_t size_ = 0;
  std::vector<Word, AlignedAllocator<Word>> words_;
};

}  // namespace common

#endif  // OCELOT_COMMON_BITVECTOR_H_
