#ifndef OCELOT_COMMON_CANCEL_H_
#define OCELOT_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace common {

/// Cooperative cancellation + deadline for one query.
///
/// The interpreter polls `Check()` at instruction boundaries (both the
/// serial loop and the dataflow workers), so a cancel or an expired
/// deadline stops a query between instructions — never mid-operator, so
/// no partial result can escape. All state is atomic: the service thread
/// that arms a deadline or calls `Cancel()` races benignly with the
/// interpreter threads polling it.
class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms an absolute wall-clock deadline (steady clock).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Arms a deadline `budget` from now.
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Ok while the query may proceed; kCancelled / kDeadlineExceeded once
  /// it must stop. Cancellation wins over the deadline when both fire.
  Status Check() const {
    if (cancel_requested()) return Status::Cancelled("query cancelled");
    std::int64_t limit = deadline_ns_.load(std::memory_order_relaxed);
    if (limit != kNoDeadline) {
      std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
      if (now >= limit) return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace common

#endif  // OCELOT_COMMON_CANCEL_H_
