#include "common/date.h"

#include <cstdio>

#include "common/logging.h"

namespace common {
namespace date {
namespace {

// Howard Hinnant's civil-days algorithm (public domain), the standard
// branch-free Gregorian <-> day-count conversion.
std::int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                    // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(std::int32_t z, int* y, int* m, int* d) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);         // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int yr = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  *y = yr + (*m <= 2);
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

}  // namespace

std::int32_t FromYmd(int year, int month, int day) {
  OCELOT_CHECK(year >= 1 && year <= 9999) << "year " << year;
  OCELOT_CHECK(month >= 1 && month <= 12) << "month " << month;
  OCELOT_CHECK(day >= 1 && day <= DaysInMonth(year, month)) << "day " << day;
  return DaysFromCivil(year, month, day);
}

void ToYmd(std::int32_t days, int* year, int* month, int* day) {
  CivilFromDays(days, year, month, day);
}

std::string ToString(std::int32_t days) {
  int y, m, d;
  ToYmd(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::int32_t AddMonths(std::int32_t days, int months) {
  int y, m, d;
  ToYmd(days, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12 + 1;
  int nd = d;
  int dim = DaysInMonth(ny, nm);
  if (nd > dim) nd = dim;
  return FromYmd(ny, nm, nd);
}

}  // namespace date
}  // namespace common
