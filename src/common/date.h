#ifndef OCELOT_COMMON_DATE_H_
#define OCELOT_COMMON_DATE_H_

#include <cstdint>
#include <string>

namespace common {

/// Calendar dates as int32 day counts (days since 1970-01-01), mirroring
/// MonetDB's 4-byte `date` type. TPC-H date columns and date predicates all
/// operate on this representation, which keeps every column 4 bytes wide —
/// the data-type scope the paper restricts itself to.
namespace date {

/// Converts a proleptic-Gregorian calendar date to a day number.
/// Valid for years 1..9999; aborts on out-of-range months/days.
std::int32_t FromYmd(int year, int month, int day);

/// Inverse of FromYmd.
void ToYmd(std::int32_t days, int* year, int* month, int* day);

/// Renders as "YYYY-MM-DD" (used by EXPLAIN output and examples).
std::string ToString(std::int32_t days);

/// Adds whole months, clamping the day-of-month (SQL interval semantics used
/// by TPC-H predicates like `date '1995-01-01' + interval '3' month`).
std::int32_t AddMonths(std::int32_t days, int months);

/// Adds whole years (TPC-H `interval '1' year`).
inline std::int32_t AddYears(std::int32_t days, int years) {
  return AddMonths(days, years * 12);
}

}  // namespace date
}  // namespace common

#endif  // OCELOT_COMMON_DATE_H_
