#ifndef OCELOT_COMMON_HASH_H_
#define OCELOT_COMMON_HASH_H_

#include <array>
#include <cstdint>

namespace common {

/// Murmur3-style 32-bit finalizer: cheap, well-mixed, and expressible inside
/// a kernel (shifts/multiplies only).
inline std::uint32_t Mix32(std::uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

/// 64-bit splitmix finalizer (used to derive per-table salt streams).
inline std::uint64_t Mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Family of strong hash functions used by the pessimistic hashing round
/// (paper section 4.1.4: "re-hashes with six strong hash functions before
/// reverting to linear probing"). Each member is a salted multiply-mix.
class HashFamily {
 public:
  static constexpr int kFunctions = 6;

  /// Deterministic family; `seed` de-correlates rebuilt (grown) tables.
  explicit HashFamily(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t state = seed;
    for (auto& salt : salts_) {
      state = Mix64(state + 0x9e3779b97f4a7c15ULL);
      salt = static_cast<std::uint32_t>(state >> 32) | 1u;  // odd multiplier
    }
  }

  /// i-th hash of `key`, in [0, 2^32).
  std::uint32_t Hash(int i, std::uint32_t key) const {
    return Mix32(key * salts_[static_cast<std::size_t>(i)]);
  }

 private:
  std::array<std::uint32_t, kFunctions> salts_;
};

}  // namespace common

#endif  // OCELOT_COMMON_HASH_H_
