#ifndef OCELOT_COMMON_LOGGING_H_
#define OCELOT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace common {

/// Aborts the process with a formatted message. Used by the CHECK macros for
/// internal invariant violations (programming errors, never data errors).
[[noreturn]] void FatalError(const char* file, int line, const std::string& msg);

namespace internal {

/// Stream collector so CHECK macros accept `<<` payloads.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~LogMessageFatal() { FatalError(file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace common

/// Internal invariant check; aborts on violation. Enabled in all build modes
/// (database engines must fail loudly rather than corrupt data).
#define OCELOT_CHECK(cond)                                          \
  if (!(cond))                                                      \
  ::common::internal::LogMessageFatal(__FILE__, __LINE__).stream()  \
      << "Check failed: " #cond " "

#define OCELOT_CHECK_OK(expr)                                       \
  do {                                                              \
    ::common::Status _st = (expr);                                  \
    OCELOT_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#define OCELOT_CHECK_EQ(a, b) OCELOT_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define OCELOT_CHECK_LE(a, b) OCELOT_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define OCELOT_CHECK_LT(a, b) OCELOT_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // OCELOT_COMMON_LOGGING_H_
