#ifndef OCELOT_COMMON_RNG_H_
#define OCELOT_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"

namespace common {

/// Deterministic xorshift128+ generator.
///
/// Used by the TPC-H generator and the microbenchmark workload generators;
/// every experiment in EXPERIMENTS.md is reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) {
    s0_ = Mix64(seed + 1);
    s1_ = Mix64(seed + 0x9e3779b97f4a7c15ULL);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t Next64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  std::uint32_t Next32() { return static_cast<std::uint32_t>(Next64() >> 32); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(Next64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  float NextFloat() { return static_cast<float>(NextDouble()); }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace common

#endif  // OCELOT_COMMON_RNG_H_
