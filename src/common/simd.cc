#include "common/simd.h"

// See the matching pragma in simd.h: 32-byte vectors lower to paired 16-byte
// ops here; the cross-flag parameter-passing ABI never comes into play.
#pragma GCC diagnostic ignored "-Wpsabi"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

namespace common::simd {

namespace {

bool EnvForceScalar() {
  const char* v = std::getenv("OCELOT_SCALAR_KERNELS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{EnvForceScalar()};
  return flag;
}

}  // namespace

bool ForceScalar() { return ForceScalarFlag().load(std::memory_order_relaxed); }

void SetForceScalar(bool force) {
  ForceScalarFlag().store(force, std::memory_order_relaxed);
}

int Width() { return Enabled() ? 4 : 1; }

const char* IsaName() {
#if OCELOT_SIMD_VECTOR
  return "vector-ext-128";
#else
  return "scalar";
#endif
}

const char* CpuFeatures() {
  static const std::string features = [] {
    std::string s;
#if (defined(__GNUC__) || defined(__clang__)) && (defined(__x86_64__) || defined(__i386__))
    auto add = [&s](bool have, const char* name) {
      if (!have) return;
      if (!s.empty()) s += ' ';
      s += name;
    };
    add(__builtin_cpu_supports("sse2"), "sse2");
    add(__builtin_cpu_supports("sse4.2"), "sse4.2");
    add(__builtin_cpu_supports("avx"), "avx");
    add(__builtin_cpu_supports("avx2"), "avx2");
    add(__builtin_cpu_supports("avx512f"), "avx512f");
#endif
    if (s.empty()) s = "unknown";
    return s;
  }();
  return features.c_str();
}

std::size_t PrefetchDistance() {
  static const std::size_t dist = [] {
    const char* v = std::getenv("OCELOT_PREFETCH_DIST");
    long parsed = v != nullptr ? std::strtol(v, nullptr, 10) : 0;
    if (parsed < 1 || parsed > 256) parsed = 16;
    return static_cast<std::size_t>(parsed);
  }();
  return dist;
}

// --- Range predicates --------------------------------------------------------

namespace {

inline bool MatchInt(std::int32_t v, double lo, double hi) {
  if (v == kInt32Nil) return false;
  double d = v;
  return d >= lo && d <= hi;
}

inline bool MatchFloat(float v, double lo, double hi) {
  return v >= lo && v <= hi;  // NaN (nil) fails both compares
}

void RangeMaskBytesInt32Scalar(const std::int32_t* v, std::size_t n, double lo,
                               double hi, std::uint8_t* out) {
  for (std::size_t j = 0; j * 8 < n; ++j) {
    std::uint8_t byte = 0;
    std::size_t limit = std::min<std::size_t>(n, j * 8 + 8);
    for (std::size_t i = j * 8; i < limit; ++i) {
      if (MatchInt(v[i], lo, hi)) byte |= static_cast<std::uint8_t>(1u << (i - j * 8));
    }
    out[j] = byte;
  }
}

void RangeMaskBytesFloatScalar(const float* v, std::size_t n, double lo,
                               double hi, std::uint8_t* out) {
  for (std::size_t j = 0; j * 8 < n; ++j) {
    std::uint8_t byte = 0;
    std::size_t limit = std::min<std::size_t>(n, j * 8 + 8);
    for (std::size_t i = j * 8; i < limit; ++i) {
      if (MatchFloat(v[i], lo, hi)) byte |= static_cast<std::uint8_t>(1u << (i - j * 8));
    }
    out[j] = byte;
  }
}

}  // namespace

void RangeMaskBytesInt32(const std::int32_t* v, std::size_t n, double lo,
                         double hi, std::uint8_t* out) {
#if OCELOT_SIMD_VECTOR
  if (Enabled() && n >= 8) {
    IntRange r = ClampRangeToInt32(lo, hi);
    if (r.empty) {
      std::memset(out, 0, (n + 7) / 8);
      return;
    }
    const i32x4 vlo = {r.lo, r.lo, r.lo, r.lo};
    const i32x4 vhi = {r.hi, r.hi, r.hi, r.hi};
    const i32x4 vnil = {kInt32Nil, kInt32Nil, kInt32Nil, kInt32Nil};
    std::size_t j = 0;
    for (; (j + 1) * 8 <= n; ++j) {
      i32x4 a = LoadV<i32x4>(v + j * 8);
      i32x4 b = LoadV<i32x4>(v + j * 8 + 4);
      i32x4 ma = (a >= vlo) & (a <= vhi) & (a != vnil);
      i32x4 mb = (b >= vlo) & (b <= vhi) & (b != vnil);
      out[j] = static_cast<std::uint8_t>(MoveMask4(ma) | (MoveMask4(mb) << 4));
    }
    if (j * 8 < n) RangeMaskBytesInt32Scalar(v + j * 8, n - j * 8, lo, hi, out + j);
    return;
  }
#endif
  RangeMaskBytesInt32Scalar(v, n, lo, hi, out);
}

void RangeMaskBytesFloat(const float* v, std::size_t n, double lo, double hi,
                         std::uint8_t* out) {
#if OCELOT_SIMD_VECTOR
  if (Enabled() && n >= 8) {
    const f64x4 vlo = {lo, lo, lo, lo};
    const f64x4 vhi = {hi, hi, hi, hi};
    std::size_t j = 0;
    for (; (j + 1) * 8 <= n; ++j) {
      f64x4 a = ToF64x4(LoadV<f32x4>(v + j * 8));
      f64x4 b = ToF64x4(LoadV<f32x4>(v + j * 8 + 4));
      i32x4 ma = __builtin_convertvector((a >= vlo) & (a <= vhi), i32x4);
      i32x4 mb = __builtin_convertvector((b >= vlo) & (b <= vhi), i32x4);
      out[j] = static_cast<std::uint8_t>(MoveMask4(ma) | (MoveMask4(mb) << 4));
    }
    if (j * 8 < n) RangeMaskBytesFloatScalar(v + j * 8, n - j * 8, lo, hi, out + j);
    return;
  }
#endif
  RangeMaskBytesFloatScalar(v, n, lo, hi, out);
}

namespace {

/// Turns a block's bitmap into appended hit positions. `base` is the global
/// position of mask bit 0; `bits` is the number of valid bits.
void AppendHitsFromMask(const std::uint8_t* mask, std::size_t bits,
                        std::uint32_t base, std::vector<std::uint32_t>* out) {
  for (std::size_t j = 0; j * 8 < bits; ++j) {
    unsigned byte = mask[j];
    while (byte != 0) {
      unsigned b = static_cast<unsigned>(std::countr_zero(byte));
      out->push_back(base + static_cast<std::uint32_t>(j * 8 + b));
      byte &= byte - 1;
    }
  }
}

template <typename T, typename MaskFn, typename MatchFn>
void SelectRangeImpl(const T* v, std::size_t n, double lo, double hi,
                     std::uint32_t base, std::vector<std::uint32_t>* out,
                     MaskFn&& mask_fn, MatchFn&& match_fn) {
  if (!Enabled() || n < 64) {
    for (std::size_t i = 0; i < n; ++i) {
      if (match_fn(v[i], lo, hi)) out->push_back(base + static_cast<std::uint32_t>(i));
    }
    return;
  }
  constexpr std::size_t kBlock = 4096;
  std::uint8_t mask[kBlock / 8];
  for (std::size_t at = 0; at < n; at += kBlock) {
    std::size_t len = std::min(kBlock, n - at);
    mask_fn(v + at, len, lo, hi, mask);
    AppendHitsFromMask(mask, len, base + static_cast<std::uint32_t>(at), out);
  }
}

}  // namespace

void SelectRangeInt32(const std::int32_t* v, std::size_t n, double lo,
                      double hi, std::uint32_t base,
                      std::vector<std::uint32_t>* out) {
  SelectRangeImpl(v, n, lo, hi, base, out, RangeMaskBytesInt32,
                  [](std::int32_t x, double l, double h) { return MatchInt(x, l, h); });
}

void SelectRangeFloat(const float* v, std::size_t n, double lo, double hi,
                      std::uint32_t base, std::vector<std::uint32_t>* out) {
  SelectRangeImpl(v, n, lo, hi, base, out, RangeMaskBytesFloat,
                  [](float x, double l, double h) { return MatchFloat(x, l, h); });
}

// --- Batcalc -----------------------------------------------------------------

#if OCELOT_SIMD_VECTOR
namespace {

/// kAdd/kSub stay in the int32 domain: the double-domain result of
/// int32 +/- int32 is exact, truncation returns it unchanged, and the
/// cvttsd2si convention sends the only inexact case — overflow past the
/// int32 range — to INT32_MIN. The sign rule ((a^r)&(b^r) for add,
/// (a^b)&(a^r) for sub, sign bit set iff overflowed) detects exactly that
/// case, so this is bit-identical to the double path at a quarter of the
/// vector width cost (no i32->f64 widening, no 256-bit emulation on SSE).
template <bool kIsAdd>
std::size_t CalcIntAddSubVec(const std::int32_t* a, const std::int32_t* b,
                             std::int32_t* out, std::size_t n) {
  const i32x4 nil_out = {kInt32Nil, kInt32Nil, kInt32Nil, kInt32Nil};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    i32x4 va = LoadV<i32x4>(a + i);
    i32x4 vb = LoadV<i32x4>(b + i);
    i32x4 nil = NilMask4(va) | NilMask4(vb);
    // Arithmetic in the unsigned domain: signed vector add/sub overflow is
    // UB, unsigned wraps mod 2^32 — and the wrapped bit pattern is exactly
    // what the sign rule inspects.
    u32x4 ua = (u32x4)va;
    u32x4 ub = (u32x4)vb;
    i32x4 r = kIsAdd ? (i32x4)(ua + ub) : (i32x4)(ua - ub);
    i32x4 ovf;
    if constexpr (kIsAdd) {
      ovf = ((va ^ r) & (vb ^ r)) >> 31;
    } else {
      ovf = ((va ^ vb) & (va ^ r)) >> 31;
    }
    i32x4 bad = nil | ovf;
    StoreV(out + i, (r & ~bad) | (bad & nil_out));
  }
  return i;
}

}  // namespace
#endif

void CalcIntInt(Arith op, const std::int32_t* a, const std::int32_t* b,
                std::int32_t* out, std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled() && (op == Arith::kAdd || op == Arith::kSub)) {
    i = op == Arith::kAdd ? CalcIntAddSubVec<true>(a, b, out, n)
                          : CalcIntAddSubVec<false>(a, b, out, n);
  } else if (Enabled()) {
    const i32x4 nil_out = {kInt32Nil, kInt32Nil, kInt32Nil, kInt32Nil};
    const f64x4 min_ok = {-2147483649.0, -2147483649.0, -2147483649.0, -2147483649.0};
    const f64x4 max_ok = {2147483648.0, 2147483648.0, 2147483648.0, 2147483648.0};
    for (; i + 4 <= n; i += 4) {
      i32x4 va = LoadV<i32x4>(a + i);
      i32x4 vb = LoadV<i32x4>(b + i);
      i32x4 nil = NilMask4(va) | NilMask4(vb);
      f64x4 r = ArithV(op, ToF64x4(va), ToF64x4(vb));
      // cvttsd2si convention: NaN / out-of-range lanes become INT32_MIN,
      // which is also the nil sentinel, so one blend covers both.
      i64x4 in_range = (r > min_ok) & (r < max_ok);
      i32x4 good = __builtin_convertvector(in_range, i32x4) & ~nil;
      f64x4 safe = (f64x4)((i64x4)r & in_range);
      i32x4 ri = __builtin_convertvector(safe, i32x4);
      StoreV(out + i, (good & ri) | (~good & nil_out));
    }
  }
#endif
  for (; i < n; ++i) {
    bool nil = IsNil(a[i]) || IsNil(b[i]);
    out[i] = nil ? kInt32Nil : DoubleToInt32(ApplyArith(op, a[i], b[i]));
  }
}

namespace {

template <typename TA, typename TB>
void CalcFloatOutImpl(Arith op, const TA* a, const TB* b, float* out,
                      std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const i32x4 nil_bits = {
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue()))};
    for (; i + 4 <= n; i += 4) {
      auto va = LoadV<typename Vec4Of<TA>::type>(a + i);
      auto vb = LoadV<typename Vec4Of<TB>::type>(b + i);
      i32x4 nil = NilMask4(va) | NilMask4(vb);
      f64x4 r = ArithV(op, ToF64x4(va), ToF64x4(vb));
      f32x4 rf = __builtin_convertvector(r, f32x4);
      i32x4 blended = ((i32x4)rf & ~nil) | (nil & nil_bits);
      StoreV(out + i, (f32x4)blended);
    }
  }
#endif
  for (; i < n; ++i) {
    bool nil = IsNil(a[i]) || IsNil(b[i]);
    out[i] = nil ? FloatNilValue()
                 : static_cast<float>(ApplyArith(op, ToDouble(a[i]), ToDouble(b[i])));
  }
}

template <typename TA>
void CalcScalarImpl(Arith op, const TA* a, double s, bool scalar_left,
                    float* out, std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const f64x4 vs = {s, s, s, s};
    const i32x4 nil_bits = {
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue()))};
    for (; i + 4 <= n; i += 4) {
      auto va = LoadV<typename Vec4Of<TA>::type>(a + i);
      i32x4 nil = NilMask4(va);
      f64x4 da = ToF64x4(va);
      f64x4 r = scalar_left ? ArithV(op, vs, da) : ArithV(op, da, vs);
      f32x4 rf = __builtin_convertvector(r, f32x4);
      i32x4 blended = ((i32x4)rf & ~nil) | (nil & nil_bits);
      StoreV(out + i, (f32x4)blended);
    }
  }
#endif
  for (; i < n; ++i) {
    if (IsNil(a[i])) {
      out[i] = FloatNilValue();
      continue;
    }
    double v = ToDouble(a[i]);
    out[i] = static_cast<float>(scalar_left ? ApplyArith(op, s, v)
                                            : ApplyArith(op, v, s));
  }
}

template <typename TA, typename TB>
void CmpImpl(Rel op, const TA* a, const TB* b, std::int32_t* out, std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const i32x4 one = {1, 1, 1, 1};
    for (; i + 4 <= n; i += 4) {
      auto va = LoadV<typename Vec4Of<TA>::type>(a + i);
      auto vb = LoadV<typename Vec4Of<TB>::type>(b + i);
      i32x4 nil = NilMask4(va) | NilMask4(vb);
      i32x4 m = __builtin_convertvector(RelV(op, ToF64x4(va), ToF64x4(vb)), i32x4);
      StoreV(out + i, m & ~nil & one);
    }
  }
#endif
  for (; i < n; ++i) {
    bool nil = IsNil(a[i]) || IsNil(b[i]);
    out[i] = (!nil && ApplyRel(op, ToDouble(a[i]), ToDouble(b[i]))) ? 1 : 0;
  }
}

template <typename TA>
void CmpScalarImpl(Rel op, const TA* a, double s, std::int32_t* out,
                   std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const f64x4 vs = {s, s, s, s};
    const i32x4 one = {1, 1, 1, 1};
    for (; i + 4 <= n; i += 4) {
      auto va = LoadV<typename Vec4Of<TA>::type>(a + i);
      i32x4 nil = NilMask4(va);
      i32x4 m = __builtin_convertvector(RelV(op, ToF64x4(va), vs), i32x4);
      StoreV(out + i, m & ~nil & one);
    }
  }
#endif
  for (; i < n; ++i) {
    out[i] = (!IsNil(a[i]) && ApplyRel(op, ToDouble(a[i]), s)) ? 1 : 0;
  }
}

}  // namespace

void CalcFF(Arith op, const float* a, const float* b, float* out, std::size_t n) {
  CalcFloatOutImpl(op, a, b, out, n);
}
void CalcFI(Arith op, const float* a, const std::int32_t* b, float* out,
            std::size_t n) {
  CalcFloatOutImpl(op, a, b, out, n);
}
void CalcIF(Arith op, const std::int32_t* a, const float* b, float* out,
            std::size_t n) {
  CalcFloatOutImpl(op, a, b, out, n);
}
void CalcIIf(Arith op, const std::int32_t* a, const std::int32_t* b, float* out,
             std::size_t n) {
  CalcFloatOutImpl(op, a, b, out, n);
}

void CalcScalarI(Arith op, const std::int32_t* a, double s, bool scalar_left,
                 float* out, std::size_t n) {
  CalcScalarImpl(op, a, s, scalar_left, out, n);
}
void CalcScalarF(Arith op, const float* a, double s, bool scalar_left,
                 float* out, std::size_t n) {
  CalcScalarImpl(op, a, s, scalar_left, out, n);
}

void CmpII(Rel op, const std::int32_t* a, const std::int32_t* b,
           std::int32_t* out, std::size_t n) {
  CmpImpl(op, a, b, out, n);
}
void CmpFF(Rel op, const float* a, const float* b, std::int32_t* out,
           std::size_t n) {
  CmpImpl(op, a, b, out, n);
}
void CmpFI(Rel op, const float* a, const std::int32_t* b, std::int32_t* out,
           std::size_t n) {
  CmpImpl(op, a, b, out, n);
}
void CmpIF(Rel op, const std::int32_t* a, const float* b, std::int32_t* out,
           std::size_t n) {
  CmpImpl(op, a, b, out, n);
}

void CmpScalarI(Rel op, const std::int32_t* a, double s, std::int32_t* out,
                std::size_t n) {
  CmpScalarImpl(op, a, s, out, n);
}
void CmpScalarF(Rel op, const float* a, double s, std::int32_t* out,
                std::size_t n) {
  CmpScalarImpl(op, a, s, out, n);
}

void BoolBin(bool is_or, const std::int32_t* a, const std::int32_t* b,
             std::int32_t* out, std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const i32x4 zero = {0, 0, 0, 0};
    const i32x4 one = {1, 1, 1, 1};
    for (; i + 4 <= n; i += 4) {
      i32x4 va = LoadV<i32x4>(a + i) != zero;
      i32x4 vb = LoadV<i32x4>(b + i) != zero;
      StoreV(out + i, (is_or ? (va | vb) : (va & vb)) & one);
    }
  }
#endif
  for (; i < n; ++i) {
    bool r = is_or ? (a[i] != 0 || b[i] != 0) : (a[i] != 0 && b[i] != 0);
    out[i] = r ? 1 : 0;
  }
}

void CastIntToFloat(const std::int32_t* v, float* out, std::size_t n) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const i32x4 nil_bits = {
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue())),
        static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(FloatNilValue()))};
    for (; i + 4 <= n; i += 4) {
      i32x4 vi = LoadV<i32x4>(v + i);
      i32x4 nil = NilMask4(vi);
      f32x4 f = __builtin_convertvector(vi, f32x4);
      i32x4 blended = ((i32x4)f & ~nil) | (nil & nil_bits);
      StoreV(out + i, (f32x4)blended);
    }
  }
#endif
  for (; i < n; ++i) {
    out[i] = IsNil(v[i]) ? FloatNilValue() : static_cast<float>(v[i]);
  }
}

// --- Hashing -----------------------------------------------------------------

void BucketHashInt32(const std::int32_t* keys, std::size_t n,
                     std::uint32_t bucket_mask, std::uint32_t* out) {
  std::size_t i = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    const u32x4 vmask = {bucket_mask, bucket_mask, bucket_mask, bucket_mask};
    for (; i + 4 <= n; i += 4) {
      u32x4 h = Mix32V(LoadV<u32x4>(keys + i)) & vmask;
      StoreV(out + i, h);
    }
  }
#endif
  for (; i < n; ++i) {
    out[i] = Mix32(static_cast<std::uint32_t>(keys[i])) & bucket_mask;
  }
}

void HashInt32(const std::int32_t* keys, std::size_t n, std::uint32_t* out) {
  BucketHashInt32(keys, n, 0xffffffffu, out);
}

// --- Grouped-aggregate folds -------------------------------------------------

namespace {

/// Shared skeleton: per-row `update(i)` in exact row order, with the
/// accumulator slot of row i+dist prefetched ahead. The nil test lives in
/// `update`, so the adds (and their order) are identical to the scalar twin.
template <typename Update>
void GroupedFoldPrefetch(const std::uint32_t* g, std::size_t n,
                         const void* acc_base, std::size_t acc_elem,
                         Update&& update) {
  const std::size_t dist = PrefetchDistance();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + dist < n) {
      PrefetchRead(static_cast<const std::byte*>(acc_base) +
                   static_cast<std::size_t>(g[i + dist]) * acc_elem);
    }
    update(i);
  }
}

}  // namespace

void GroupedSumInt32(const std::int32_t* v, const std::uint32_t* g,
                     std::size_t n, std::int64_t* acc, std::int64_t* cnt) {
  if (Enabled()) {
    GroupedFoldPrefetch(g, n, acc, sizeof(*acc), [&](std::size_t i) {
      if (v[i] == kInt32Nil) return;
      acc[g[i]] += v[i];
      cnt[g[i]] += 1;
    });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] == kInt32Nil) continue;
    acc[g[i]] += v[i];
    cnt[g[i]] += 1;
  }
}

void GroupedSumFloat(const float* v, const std::uint32_t* g, std::size_t n,
                     double* acc, std::int64_t* cnt) {
  if (Enabled()) {
    GroupedFoldPrefetch(g, n, acc, sizeof(*acc), [&](std::size_t i) {
      if (std::isnan(v[i])) return;
      acc[g[i]] += v[i];
      cnt[g[i]] += 1;
    });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(v[i])) continue;
    acc[g[i]] += v[i];
    cnt[g[i]] += 1;
  }
}

void GroupedSumInt32AsDouble(const std::int32_t* v, const std::uint32_t* g,
                             std::size_t n, double* acc, std::int64_t* cnt) {
  if (Enabled()) {
    GroupedFoldPrefetch(g, n, acc, sizeof(*acc), [&](std::size_t i) {
      if (v[i] == kInt32Nil) return;
      acc[g[i]] += static_cast<double>(v[i]);
      cnt[g[i]] += 1;
    });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] == kInt32Nil) continue;
    acc[g[i]] += static_cast<double>(v[i]);
    cnt[g[i]] += 1;
  }
}

void GroupedCount(const std::uint32_t* g, std::size_t n, std::int32_t* counts) {
  if (Enabled()) {
    GroupedFoldPrefetch(g, n, counts, sizeof(*counts),
                        [&](std::size_t i) { counts[g[i]] += 1; });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) counts[g[i]] += 1;
}

// --- Gather ------------------------------------------------------------------

std::uint32_t SumU32(const std::uint32_t* v, std::size_t n) {
  std::size_t i = 0;
  std::uint32_t total = 0;
#if OCELOT_SIMD_VECTOR
  if (Enabled()) {
    u32x4 acc = {0, 0, 0, 0};
    for (; i + 4 <= n; i += 4) acc += LoadV<u32x4>(v + i);
    total = acc[0] + acc[1] + acc[2] + acc[3];
  }
#endif
  for (; i < n; ++i) total += v[i];
  return total;
}

void GatherU32(const std::uint32_t* src, std::size_t src_n,
               const std::uint32_t* idx, std::size_t n, std::uint32_t nil_bits,
               std::uint32_t* dst) {
  const std::size_t dist = PrefetchDistance();
  if (Enabled()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + dist < n) {
        std::uint32_t j = idx[i + dist];
        if (j < src_n) PrefetchRead(src + j);
      }
      dst[i] = idx[i] == kU32Nil ? nil_bits : src[idx[i]];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = idx[i] == kU32Nil ? nil_bits : src[idx[i]];
  }
}

}  // namespace common::simd
