#ifndef OCELOT_COMMON_SIMD_H_
#define OCELOT_COMMON_SIMD_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/hash.h"

/// Portable SIMD layer for the host kernels (ROADMAP open item 5).
///
/// Everything here comes in pairs: a vector implementation built on the
/// GCC/Clang vector extensions (lowered to SSE/AVX on x86, NEON on ARM, or
/// plain scalar code on anything else) and a scalar reference implementation
/// that reproduces the pre-SIMD engine loops operation for operation. The
/// public entry points dispatch between the two:
///
///  - compile time: `OCELOT_SIMD_VECTOR` is 1 only under a compiler that
///    supports the vector extensions; otherwise the scalar path is all
///    there is.
///  - run time: `OCELOT_SCALAR_KERNELS=1` (or SetForceScalar(true)) forces
///    the scalar path everywhere — the A/B escape hatch used by the bench
///    sweep and the bit-identity tests.
///
/// The determinism contract: every vector kernel must produce bit-identical
/// results to its scalar reference on every input, including nil sentinels
/// (kIntNil / NaN), -0.0, infinities, unaligned spans and ragged tails.
/// Float arithmetic therefore evaluates in double precision per element,
/// exactly like the scalar engines do, and integer overflow reproduces the
/// x86 cvttsd2si convention (out-of-range -> INT32_MIN) explicitly, which
/// also keeps the conversion defined under UBSan.
namespace common::simd {

#if defined(__GNUC__) || defined(__clang__)
#define OCELOT_SIMD_VECTOR 1
#else
#define OCELOT_SIMD_VECTOR 0
#endif

inline constexpr std::int32_t kInt32Nil = std::numeric_limits<std::int32_t>::min();
inline constexpr std::uint32_t kU32Nil = 0xffffffffu;

/// Arithmetic / comparison ops, mirroring cstore::CalcOp / cstore::CmpOp
/// without depending on the cstore layer (simd.h sits below it).
enum class Arith { kAdd, kSub, kMul, kDiv };
enum class Rel { kEq, kNe, kLt, kLe, kGt, kGe };

// --- Runtime dispatch --------------------------------------------------------

/// True when OCELOT_SCALAR_KERNELS=1 (env, read once) or SetForceScalar(true).
bool ForceScalar();
/// Test/bench hook: force (or re-enable) the scalar fallback at run time.
void SetForceScalar(bool force);
/// True when the vector path is compiled in and not forced off.
inline bool Enabled() {
  return OCELOT_SIMD_VECTOR != 0 && !ForceScalar();
}

/// Lanes of a 32-bit element the vector path processes per step (1 = scalar).
int Width();
/// Human-readable name of the compiled vector flavor ("vector-ext-128" or
/// "scalar"); independent of the runtime switch.
const char* IsaName();
/// Space-separated runtime CPU feature list (x86: via __builtin_cpu_supports).
const char* CpuFeatures();

/// Lookahead, in elements, for the distance-ahead software prefetches in the
/// irregular-access loops (hash probe, fetchjoin gather). Tunable via
/// OCELOT_PREFETCH_DIST; default 16, clamped to [1, 256].
std::size_t PrefetchDistance();

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

// --- Scalar reference helpers ------------------------------------------------

inline double ApplyArith(Arith op, double a, double b) {
  switch (op) {
    case Arith::kAdd:
      return a + b;
    case Arith::kSub:
      return a - b;
    case Arith::kMul:
      return a * b;
    case Arith::kDiv:
      return a / b;
  }
  return 0;
}

inline bool ApplyRel(Rel op, double a, double b) {
  switch (op) {
    case Rel::kEq:
      return a == b;
    case Rel::kNe:
      return a != b;
    case Rel::kLt:
      return a < b;
    case Rel::kLe:
      return a <= b;
    case Rel::kGt:
      return a > b;
    case Rel::kGe:
      return a >= b;
  }
  return false;
}

inline bool IsNil(std::int32_t v) { return v == kInt32Nil; }
inline bool IsNil(float v) { return v != v; }
inline double ToDouble(std::int32_t v) { return static_cast<double>(v); }
inline double ToDouble(float v) { return static_cast<double>(v); }

inline float FloatNilValue() { return std::numeric_limits<float>::quiet_NaN(); }

/// double -> int32 with the x86 cvttsd2si convention (NaN and out-of-range
/// truncate to INT32_MIN), spelled out so it is defined behavior everywhere.
/// This is bit-identical to what the pre-SIMD `static_cast<std::int32_t>`
/// compiled to on x86.
inline std::int32_t DoubleToInt32(double d) {
  if (!(d > -2147483649.0) || d >= 2147483648.0) return kInt32Nil;
  return static_cast<std::int32_t>(d);
}

// --- Vector machinery --------------------------------------------------------

#if OCELOT_SIMD_VECTOR

// The 32-byte types lower to two 16-byte ops without AVX; GCC warns that
// their parameter-passing ABI differs across -mavx settings, which is
// irrelevant here (all uses inline within TUs built with the same flags).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

typedef std::int32_t i32x4 __attribute__((vector_size(16)));
typedef std::uint32_t u32x4 __attribute__((vector_size(16)));
typedef float f32x4 __attribute__((vector_size(16)));
typedef double f64x4 __attribute__((vector_size(32)));
typedef std::int64_t i64x4 __attribute__((vector_size(32)));

template <typename V, typename T>
inline V LoadV(const T* p) {
  V v;
  std::memcpy(&v, p, sizeof(V));  // unaligned-safe
  return v;
}

template <typename V, typename T>
inline void StoreV(T* p, V v) {
  std::memcpy(p, &v, sizeof(V));
}

template <typename T>
struct Vec4Of;
template <>
struct Vec4Of<std::int32_t> {
  using type = i32x4;
};
template <>
struct Vec4Of<float> {
  using type = f32x4;
};

inline f64x4 ToF64x4(i32x4 v) { return __builtin_convertvector(v, f64x4); }
inline f64x4 ToF64x4(f32x4 v) { return __builtin_convertvector(v, f64x4); }

/// -1 per nil lane (int: == kIntNil; float: NaN, by self-inequality).
inline i32x4 NilMask4(i32x4 v) {
  return v == i32x4{kInt32Nil, kInt32Nil, kInt32Nil, kInt32Nil};
}
inline i32x4 NilMask4(f32x4 v) { return v != v; }

inline f64x4 ArithV(Arith op, f64x4 a, f64x4 b) {
  switch (op) {
    case Arith::kAdd:
      return a + b;
    case Arith::kSub:
      return a - b;
    case Arith::kMul:
      return a * b;
    case Arith::kDiv:
      return a / b;
  }
  return f64x4{};
}

inline i64x4 RelV(Rel op, f64x4 a, f64x4 b) {
  switch (op) {
    case Rel::kEq:
      return a == b;
    case Rel::kNe:
      return a != b;
    case Rel::kLt:
      return a < b;
    case Rel::kLe:
      return a <= b;
    case Rel::kGt:
      return a > b;
    case Rel::kGe:
      return a >= b;
  }
  return i64x4{};
}

/// Low 4 bits: one per lane of the (all-ones / all-zeros) compare mask.
inline unsigned MoveMask4(i32x4 m) {
#if defined(__SSE__)
  return static_cast<unsigned>(__builtin_ia32_movmskps((f32x4)m));
#else
  union {
    i32x4 v;
    std::uint32_t u[4];
  } x{m};
  return (x.u[0] & 1u) | (x.u[1] & 2u) | (x.u[2] & 4u) | (x.u[3] & 8u);
#endif
}

inline u32x4 Mix32V(u32x4 h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

#pragma GCC diagnostic pop

#endif  // OCELOT_SIMD_VECTOR

// --- Range predicates (select) -----------------------------------------------

/// Closed int32 range equivalent to the engines' double-domain predicate
/// `(double)v >= lo && (double)v <= hi` (every int32 is exact in double, so
/// the comparison can be moved to the integer domain after rounding the
/// bounds inward). `empty` means no int32 can match. Nil exclusion is
/// separate, exactly like RangePred::Match(int32).
struct IntRange {
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  bool empty = false;
};

inline IntRange ClampRangeToInt32(double lo, double hi) {
  double cl = std::ceil(lo);
  double fh = std::floor(hi);
  if (!(cl <= 2147483647.0) || !(fh >= -2147483648.0) || !(cl <= fh)) {
    return {0, 0, true};
  }
  IntRange r;
  r.lo = cl <= -2147483648.0 ? kInt32Nil : static_cast<std::int32_t>(cl);
  r.hi = fh >= 2147483647.0 ? std::numeric_limits<std::int32_t>::max()
                            : static_cast<std::int32_t>(fh);
  return r;
}

/// Writes ceil(n/8) bitmap bytes; bit b of byte j is set iff element j*8+b
/// matches `lo <= (double)v <= hi` and is not nil. Tail bits stay zero.
/// Bit-compatible with the Ocelot select_range kernels' byte loop.
void RangeMaskBytesInt32(const std::int32_t* v, std::size_t n, double lo,
                         double hi, std::uint8_t* out);
void RangeMaskBytesFloat(const float* v, std::size_t n, double lo, double hi,
                         std::uint8_t* out);

/// Appends `base + i` for every matching element i to `out`, in ascending
/// order — the full-column (or slice, via base) select of the MonetDB
/// engines.
void SelectRangeInt32(const std::int32_t* v, std::size_t n, double lo,
                      double hi, std::uint32_t base,
                      std::vector<std::uint32_t>* out);
void SelectRangeFloat(const float* v, std::size_t n, double lo, double hi,
                      std::uint32_t base, std::vector<std::uint32_t>* out);

// --- Batcalc -----------------------------------------------------------------

/// out[i] = nil if either input is nil, else the double-domain op truncated
/// to int32 (cvttsd2si convention). `op` must not be kDiv (int division
/// produces a float column in this engine).
void CalcIntInt(Arith op, const std::int32_t* a, const std::int32_t* b,
                std::int32_t* out, std::size_t n);

/// Float-result batcalc over any int/float operand mix: out[i] = NaN-nil if
/// either input is nil, else (float)((double)a op (double)b).
void CalcFF(Arith op, const float* a, const float* b, float* out, std::size_t n);
void CalcFI(Arith op, const float* a, const std::int32_t* b, float* out,
            std::size_t n);
void CalcIF(Arith op, const std::int32_t* a, const float* b, float* out,
            std::size_t n);
void CalcIIf(Arith op, const std::int32_t* a, const std::int32_t* b, float* out,
             std::size_t n);

/// Column (+) scalar, float result; `scalar_left` puts `s` on the left.
void CalcScalarI(Arith op, const std::int32_t* a, double s, bool scalar_left,
                 float* out, std::size_t n);
void CalcScalarF(Arith op, const float* a, double s, bool scalar_left,
                 float* out, std::size_t n);

/// out[i] = (neither nil && a op b in the double domain) ? 1 : 0.
void CmpII(Rel op, const std::int32_t* a, const std::int32_t* b,
           std::int32_t* out, std::size_t n);
void CmpFF(Rel op, const float* a, const float* b, std::int32_t* out,
           std::size_t n);
void CmpFI(Rel op, const float* a, const std::int32_t* b, std::int32_t* out,
           std::size_t n);
void CmpIF(Rel op, const std::int32_t* a, const float* b, std::int32_t* out,
           std::size_t n);

void CmpScalarI(Rel op, const std::int32_t* a, double s, std::int32_t* out,
                std::size_t n);
void CmpScalarF(Rel op, const float* a, double s, std::int32_t* out,
                std::size_t n);

/// out[i] = (a[i] != 0 <op> b[i] != 0) ? 1 : 0, op = OR (is_or) or AND.
void BoolBin(bool is_or, const std::int32_t* a, const std::int32_t* b,
             std::int32_t* out, std::size_t n);

/// out[i] = nil ? NaN : (float)v[i].
void CastIntToFloat(const std::int32_t* v, float* out, std::size_t n);

// --- Hashing -----------------------------------------------------------------

/// out[i] = Mix32((uint32)keys[i]) & bucket_mask — the ChainedHash / radix
/// bucket function, batched.
void BucketHashInt32(const std::int32_t* keys, std::size_t n,
                     std::uint32_t bucket_mask, std::uint32_t* out);

/// out[i] = Mix32((uint32)keys[i]) (full 32-bit hash, no masking).
void HashInt32(const std::int32_t* keys, std::size_t n, std::uint32_t* out);

// --- Reduction ---------------------------------------------------------------

/// Wraparound (mod 2^32) sum of a u32 span. Unsigned addition is exactly
/// associative, so the 4-lane accumulation is bit-identical to the serial
/// loop — usable even in kernels whose results feed indexing (prefix sums).
std::uint32_t SumU32(const std::uint32_t* v, std::size_t n);

// --- Grouped-aggregate folds -------------------------------------------------

/// Fold loops of the host engines' grouped aggregates (SubSum / SubCount /
/// SubAvg). The accumulator updates are data-dependent scatters, so lanes
/// cannot be combined without reordering the adds; the vector path instead
/// evaluates the nil masks four rows at a time and prefetches the
/// accumulator slots distance-ahead, keeping every add in exact row order —
/// bit-identical to the scalar twins because the adds themselves are
/// unchanged. `g[i]` must be < the accumulator length for every row.

/// acc[g[i]] += v[i] and cnt[g[i]] += 1 for every non-nil v[i].
void GroupedSumInt32(const std::int32_t* v, const std::uint32_t* g,
                     std::size_t n, std::int64_t* acc, std::int64_t* cnt);

/// Same fold with double accumulation of float values (row order preserved;
/// float addition is not associative, so order is part of the contract).
void GroupedSumFloat(const float* v, const std::uint32_t* g, std::size_t n,
                     double* acc, std::int64_t* cnt);

/// Same fold with double accumulation of int values (the SubAvg int path).
void GroupedSumInt32AsDouble(const std::int32_t* v, const std::uint32_t* g,
                             std::size_t n, double* acc, std::int64_t* cnt);

/// counts[g[i]] += 1 for every row (SubCount counts nils too).
void GroupedCount(const std::uint32_t* g, std::size_t n, std::int32_t* counts);

// --- Gather (fetchjoin) ------------------------------------------------------

/// dst[i] = idx[i] == kU32Nil ? nil_bits : src[idx[i]], with distance-ahead
/// prefetching of src when the vector path is enabled. Covers every 4-byte
/// payload type (int / float / oid) as raw bits; src_n guards the prefetch.
void GatherU32(const std::uint32_t* src, std::size_t src_n,
               const std::uint32_t* idx, std::size_t n, std::uint32_t nil_bits,
               std::uint32_t* dst);

}  // namespace common::simd

#endif  // OCELOT_COMMON_SIMD_H_
