#ifndef OCELOT_COMMON_STATUS_H_
#define OCELOT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace common {

/// Error categories used across the engine. Modeled after the RocksDB /
/// Arrow convention of status-based error handling: no exceptions are thrown
/// on operator hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kUnsupported,
  kInternal,
  kDeviceLost,
  kDeadlineExceeded,
  kCancelled,
};

/// A success-or-error result without a payload.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// message. All engine entry points that can fail return `Status` or
/// `Result<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeviceLost(std::string msg) {
    return Status(StatusCode::kDeviceLost, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Rebuilds a status with the same code but a different message — used by
  /// layers that add context without collapsing the code (error codes must
  /// survive to the service tier verbatim).
  static Status WithCode(StatusCode code, std::string msg) {
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad selectivity".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. `value()` must only be called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {}    // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace common

/// Propagates an error Status from an expression, RocksDB-style.
#define RETURN_IF_ERROR(expr)                     \
  do {                                            \
    ::common::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define OCELOT_CONCAT_INNER(a, b) a##b
#define OCELOT_CONCAT(a, b) OCELOT_CONCAT_INNER(a, b)

/// Assigns the value of a Result<T> expression or propagates its error.
#define ASSIGN_OR_RETURN(lhs, expr)                              \
  auto OCELOT_CONCAT(_res_, __LINE__) = (expr);                  \
  if (!OCELOT_CONCAT(_res_, __LINE__).ok())                      \
    return OCELOT_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(OCELOT_CONCAT(_res_, __LINE__)).value()

#endif  // OCELOT_COMMON_STATUS_H_
