#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace common {

namespace {

/// True while this thread is executing inside a ParallelFor (caller or
/// worker): nested fan-out runs serially instead of deadlocking.
thread_local bool tl_in_parallel_for = false;

std::mutex& GlobalMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int workers = (threads < 1 ? 1 : threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    int i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) return;
    (*batch->fn)(i);
    batch->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

ThreadPool::Batch* ThreadPool::FindOpenBatch() {
  while (!open_.empty() &&
         open_.front()->next.load(std::memory_order_relaxed) >= open_.front()->n) {
    open_.pop_front();  // exhausted; its caller no longer needs it listed
  }
  for (Batch* batch : open_) {
    if (batch->next.load(std::memory_order_relaxed) < batch->n) return batch;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  tl_in_parallel_for = true;  // nested fan-out from task bodies runs serial
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (batch = FindOpenBatch()) != nullptr;
      });
      if (shutdown_) return;
      batch->entered += 1;
    }
    RunBatch(batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch->exited += 1;
      done_cv_.notify_all();  // under mu_: pairs with the caller's predicate
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (tl_in_parallel_for || workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_.push_back(&batch);
  }
  work_cv_.notify_all();

  tl_in_parallel_for = true;
  RunBatch(&batch);
  tl_in_parallel_for = false;

  // All indices are claimed once the caller's RunBatch returns; delist the
  // batch (a pruning worker may already have) and wait until every index
  // ran *and* every worker that touched the batch has left it (the batch
  // lives on this stack frame). The final index may finish inside a
  // worker's fn; that worker's exited-bump under mu_ delivers the wakeup.
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = std::find(open_.begin(), open_.end(), &batch);
    if (it != open_.end()) open_.erase(it);
    done_cv_.wait(lock, [&] {
      return batch.done.load(std::memory_order_acquire) == batch.n &&
             batch.entered == batch.exited;
    });
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  auto& slot = GlobalSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(EnvThreads());
  return *slot;
}

int ThreadPool::EnvThreads() {
  if (const char* env = std::getenv("OCELOT_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::SetGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  auto& slot = GlobalSlot();
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace common
