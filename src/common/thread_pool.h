#ifndef OCELOT_COMMON_THREAD_POOL_H_
#define OCELOT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace common {

/// A fixed-size host thread pool for index-based fan-out: ParallelFor(n, fn)
/// runs fn(0..n-1) across the pool and the calling thread, blocking until
/// every index finished. This is the *real* parallelism underneath the
/// simulated kind — ocelot::Scheduler runs its per-device fragments on it,
/// monet::ParallelFor runs its Mitosis slice tasks on it, and
/// mal::QueryService's concurrent sessions run their dataflow lanes on it —
/// while virtual clocks keep billing modeled device time exactly as in
/// serial execution.
///
/// Semantics:
///  * The caller participates: a pool of size 1 has no worker threads and
///    ParallelFor degenerates to the serial loop `for (i) fn(i)`.
///  * Indices are claimed atomically; no ordering between indices may be
///    assumed. fn must make concurrent calls safe for *distinct* indices
///    (the scheduler's fragments touch disjoint devices/slots by design).
///  * Nested ParallelFor calls from inside fn run serially on the calling
///    worker — no deadlock, no thread explosion.
///  * Concurrent ParallelFor calls from different threads run
///    *concurrently*: each batch joins a shared open list and idle workers
///    help whichever batch still has unclaimed indices (oldest first).
///    Every caller participates in its own batch, so every batch makes
///    progress — at worst at the caller's own serial speed — even when all
///    workers are busy elsewhere. This is what lets N concurrent sessions
///    share one process-wide pool instead of owning a pool each (and
///    instead of serializing on a caller mutex, which would defeat
///    inter-query parallelism entirely).
class ThreadPool {
 public:
  /// Creates `threads` total execution lanes (the caller plus threads-1
  /// workers). Values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, caller included.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0..n-1) across the pool; returns when all calls finished.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// The process-wide pool, sized from OCELOT_THREADS (default: the host's
  /// hardware_concurrency). Created on first use.
  static ThreadPool& Global();

  /// Re-sizes the global pool (benchmarks/tests sweeping thread counts).
  /// Must not be called while a ParallelFor is in flight.
  static void SetGlobalThreads(int threads);

  /// The environment-derived pool size (OCELOT_THREADS, else the host's
  /// hardware_concurrency) — what Global() starts with. Tests that sweep
  /// SetGlobalThreads restore this afterwards, so a CI OCELOT_THREADS
  /// matrix leg keeps meaning what it says for the tests that follow.
  static int EnvThreads();

 private:
  struct Batch {
    int n = 0;
    const std::function<void(int)>* fn = nullptr;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    // Guarded by mu_: workers currently inside RunBatch for this batch. The
    // caller frees the (stack-allocated) batch only once every worker that
    // touched it has left it, not merely once every index ran.
    int entered = 0;
    int exited = 0;
  };

  void WorkerLoop();
  static void RunBatch(Batch* batch);
  /// First open batch with unclaimed indices; prunes exhausted entries.
  /// Call with mu_ held.
  Batch* FindOpenBatch();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: an open batch may exist
  std::condition_variable done_cv_;   // callers: some batch made progress
  /// Batches that may still have unclaimed indices, oldest first. Entries
  /// live on their caller's stack; the caller removes its entry (if a
  /// worker's pruning has not already) before returning from ParallelFor.
  std::deque<Batch*> open_;
  bool shutdown_ = false;
};

}  // namespace common

#endif  // OCELOT_COMMON_THREAD_POOL_H_
