#include "common/timeline.h"

#include <algorithm>

#include "common/logging.h"

namespace common {

Timeline::Timeline(int lanes) {
  OCELOT_CHECK(lanes > 0) << "timeline needs at least one lane";
  lane_free_.assign(static_cast<std::size_t>(lanes), 0);
}

Interval Timeline::Schedule(Nanos ready, Nanos duration) {
  OCELOT_CHECK(duration >= 0);
  auto it = std::min_element(lane_free_.begin(), lane_free_.end());
  Nanos start = std::max(ready, *it);
  *it = start + duration;
  return {start, *it};
}

Interval Timeline::ScheduleBatch(Nanos ready, std::span<const Nanos> durations) {
  if (durations.empty()) return {ready, ready};
  Interval batch{ready, ready};
  bool first = true;
  for (Nanos d : durations) {
    Interval iv = Schedule(ready, d);
    if (first) {
      batch.start = iv.start;
      first = false;
    } else {
      batch.start = std::min(batch.start, iv.start);
    }
    batch.end = std::max(batch.end, iv.end);
  }
  return batch;
}

Nanos Timeline::AllIdleTime() const {
  return *std::max_element(lane_free_.begin(), lane_free_.end());
}

Nanos Timeline::NextFreeTime() const {
  return *std::min_element(lane_free_.begin(), lane_free_.end());
}

void Timeline::Reset(Nanos t) { lane_free_.assign(lane_free_.size(), t); }

}  // namespace common
