#ifndef OCELOT_COMMON_TIMELINE_H_
#define OCELOT_COMMON_TIMELINE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace common {

/// Virtual nanoseconds. All modeled device time in the engine is expressed
/// in this unit (see DESIGN.md section 2: the hardware substitution).
using Nanos = std::int64_t;

/// Half-open interval of virtual time occupied by one scheduled operation.
struct Interval {
  Nanos start = 0;
  Nanos end = 0;
  Nanos duration() const { return end - start; }
};

/// A discrete-event resource timeline with `lanes` identical execution lanes
/// (virtual CPU cores, GPU multiprocessors, or a DMA engine with one lane).
///
/// `Schedule` places a task that becomes ready at `ready` and runs for
/// `duration` onto the earliest-available lane; `ScheduleBatch` places a set
/// of independent tasks (e.g. the work-groups of one kernel launch) and
/// returns the interval from the earliest start to the latest completion —
/// the makespan of greedy list scheduling, which is how both the OpenCLite
/// devices and the MonetDB mitosis baseline turn measured per-chunk work
/// into modeled parallel runtime.
class Timeline {
 public:
  explicit Timeline(int lanes);

  int lanes() const { return static_cast<int>(lane_free_.size()); }

  /// Schedules one task; returns its interval.
  Interval Schedule(Nanos ready, Nanos duration);

  /// Schedules independent tasks in order; returns the enclosing interval.
  /// An empty batch yields {ready, ready}.
  Interval ScheduleBatch(Nanos ready, std::span<const Nanos> durations);

  /// Virtual time at which all lanes are idle.
  Nanos AllIdleTime() const;

  /// Virtual time at which the next task could start (earliest free lane).
  Nanos NextFreeTime() const;

  /// Forgets all scheduled work; lanes become free at `t`.
  void Reset(Nanos t = 0);

 private:
  // Lane availability times; kept as a vector (lane counts are tiny: 4 cores,
  // 7 multiprocessors) so a heap would be overkill.
  std::vector<Nanos> lane_free_;
};

}  // namespace common

#endif  // OCELOT_COMMON_TIMELINE_H_
