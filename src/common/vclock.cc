#include "common/vclock.h"

#include <ctime>

namespace common {

Nanos RealNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Nanos ThreadCpuNow() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  std::timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<Nanos>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return RealNow();  // platforms without a per-thread CPU clock
}

}  // namespace common
