#include "common/vclock.h"

namespace common {

Nanos RealNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace common
