#ifndef OCELOT_COMMON_VCLOCK_H_
#define OCELOT_COMMON_VCLOCK_H_

#include <chrono>

#include "common/timeline.h"

namespace common {

/// Wall-clock nanoseconds from a monotonic source.
Nanos RealNow();

/// A virtual clock that tracks real host time except where the simulation
/// substitutes modeled device time.
///
/// Usage contract (see DESIGN.md section 2):
///  * Host-side work (plan interpretation, MonetDB baseline operators)
///    advances the clock implicitly — `Now()` follows the real clock.
///  * The simulated runtimes execute kernels for *correctness* on the host;
///    that real execution time must not be billed, so they wrap execution in
///    `Deduct(real_ns)` and instead bill the modeled interval by calling
///    `AdvanceTo(modeled_end)`.
///
/// The clock is monotone: AdvanceTo never moves it backwards.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time.
  Nanos Now() const { return RealNow() + offset_; }

  /// Moves virtual time forward to `t` if `t` is in the future.
  void AdvanceTo(Nanos t) {
    Nanos now = Now();
    if (t > now) offset_ += t - now;
  }

  /// Removes `real_ns` of already-elapsed real time from the virtual clock
  /// (the caller spent that time executing simulated work).
  void Deduct(Nanos real_ns) { offset_ -= real_ns; }

 private:
  Nanos offset_ = 0;
};

/// Measures real elapsed time; used both for benchmarking the sequential
/// baseline and for timing kernel work-groups inside the simulator.
class Stopwatch {
 public:
  Stopwatch() : start_(RealNow()) {}
  void Restart() { start_ = RealNow(); }
  Nanos ElapsedNanos() const { return RealNow() - start_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }

 private:
  Nanos start_;
};

}  // namespace common

#endif  // OCELOT_COMMON_VCLOCK_H_
