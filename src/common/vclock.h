#ifndef OCELOT_COMMON_VCLOCK_H_
#define OCELOT_COMMON_VCLOCK_H_

#include <chrono>

#include "common/timeline.h"

namespace common {

/// Wall-clock nanoseconds from a monotonic source.
Nanos RealNow();

/// CPU nanoseconds consumed by the *calling thread* (excludes time the
/// thread spent descheduled). Seeds the modeled kernel/task durations, so
/// an oversubscribed host (OCELOT_THREADS > cores) does not inflate the
/// virtual cost model with scheduling gaps.
Nanos ThreadCpuNow();

/// A virtual clock that tracks real host time except where the simulation
/// substitutes modeled device time.
///
/// Usage contract (see DESIGN.md section 2):
///  * Host-side work (plan interpretation, MonetDB baseline operators)
///    advances the clock implicitly — `Now()` follows the real clock.
///  * The simulated runtimes execute kernels for *correctness* on the host;
///    that real execution time must not be billed, so they wrap execution in
///    `Deduct(real_ns)` and instead bill the modeled interval by calling
///    `AdvanceTo(modeled_end)`.
///
/// The clock is monotone: AdvanceTo never moves it backwards.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time.
  Nanos Now() const { return RealNow() + offset_; }

  /// Moves virtual time forward to `t` if `t` is in the future.
  void AdvanceTo(Nanos t) {
    Nanos now = Now();
    if (t > now) offset_ += t - now;
  }

  /// Removes `real_ns` of already-elapsed real time from the virtual clock
  /// (the caller spent that time executing simulated work).
  void Deduct(Nanos real_ns) { offset_ -= real_ns; }

 private:
  Nanos offset_ = 0;
};

/// Measures real elapsed time; used both for benchmarking the sequential
/// baseline and for deducting simulated-execution time from virtual clocks.
class Stopwatch {
 public:
  Stopwatch() : start_(RealNow()) {}
  void Restart() { start_ = RealNow(); }
  Nanos ElapsedNanos() const { return RealNow() - start_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }

 private:
  Nanos start_;
};

/// Measures the calling thread's CPU time; used for timing kernel
/// work-groups and Mitosis slice tasks inside the simulator, where the
/// measurement seeds a *modeled* duration and must not grow just because
/// concurrent host threads contended for cores.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(ThreadCpuNow()) {}
  Nanos ElapsedNanos() const { return ThreadCpuNow() - start_; }

 private:
  Nanos start_;
};

}  // namespace common

#endif  // OCELOT_COMMON_VCLOCK_H_
