#include "cstore/bat.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "cstore/encoding.h"

namespace cstore {
namespace {

std::atomic<std::uint64_t> g_next_bat_id{1};
std::atomic<std::uint64_t> g_next_heap_id{1};
std::atomic<std::uint64_t> g_next_listener_token{1};

/// One registered callback with its own invocation lock. Fire() invokes
/// under this per-listener lock, and Remove() clears the callback under the
/// same lock — so Remove() doubles as a barrier for exactly this listener:
/// once it returns, the callback can no longer be in flight on any thread
/// and its owner (a MemoryManager) may be destroyed safely. The lock is
/// recursive so a callback that itself releases a BAT (firing the registry
/// again on the same thread) cannot self-deadlock.
struct Listener {
  std::uint64_t token = 0;
  std::recursive_mutex mu;
  std::function<void(std::uint64_t)> fn;  // empty after removal
};

/// One registry for BAT-death callbacks, one for heap-death callbacks.
/// Scheduler fragments create and destroy BATs concurrently on pool
/// threads, so the registry lock guards only the listener *list* (held
/// briefly for snapshots); invocation serializes per listener, not
/// globally — fragments destroying unrelated BATs do not convoy behind one
/// process-wide lock while some memory manager drains its queue.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Listener>> listeners;

  std::uint64_t Add(std::function<void(std::uint64_t)> fn) {
    auto l = std::make_shared<Listener>();
    l->token = g_next_listener_token.fetch_add(1);
    l->fn = std::move(fn);
    std::lock_guard<std::mutex> lock(mu);
    listeners.push_back(l);
    return listeners.back()->token;
  }

  void Remove(std::uint64_t token) {
    std::shared_ptr<Listener> victim;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (auto it = listeners.begin(); it != listeners.end(); ++it) {
        if ((*it)->token == token) {
          victim = *it;
          listeners.erase(it);
          break;
        }
      }
    }
    if (victim != nullptr) {
      // Wait out any in-flight invocation of *this* listener, then disarm.
      std::lock_guard<std::recursive_mutex> lock(victim->mu);
      victim->fn = nullptr;
    }
  }

  void Fire(std::uint64_t id) {
    std::vector<std::shared_ptr<Listener>> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu);
      snapshot = listeners;
    }
    for (const auto& l : snapshot) {
      std::lock_guard<std::recursive_mutex> lock(l->mu);
      if (l->fn) l->fn(id);
    }
  }
};

Registry& BatRegistry() {
  static Registry* r = new Registry();
  return *r;
}

Registry& HeapRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

Bat::Heap::Heap(std::size_t n) : id(g_next_heap_id.fetch_add(1)), bytes(n) {}

Bat::Heap::~Heap() { HeapRegistry().Fire(id); }

Bat::Bat(ValType type, std::size_t n, oid_t hseqbase)
    : id_(g_next_bat_id.fetch_add(1)),
      type_(type),
      count_(n),
      hseqbase_(hseqbase),
      heap_(std::make_shared<Heap>(n * ValTypeSize(type))) {}

BatPtr Bat::Make(ValType type, std::size_t n, oid_t hseqbase) {
  return BatPtr(new Bat(type, n, hseqbase));
}

BatPtr Bat::DenseOids(std::size_t n, oid_t base) {
  BatPtr b = Make(ValType::kOid, n);
  auto out = b->oids();
  for (std::size_t i = 0; i < n; ++i) out[i] = base + static_cast<oid_t>(i);
  b->SetDense(base);
  return b;
}

BatPtr Bat::MakeEncoded(ValType type, std::size_t rows,
                        std::size_t physical_bytes,
                        std::shared_ptr<EncodingInfo> enc, oid_t hseqbase) {
  OCELOT_CHECK(enc != nullptr && enc->encoding != Encoding::kPlain)
      << "MakeEncoded requires a non-plain format descriptor";
  OCELOT_CHECK(enc->plain_rows == rows)
      << "format descriptor covers " << enc->plain_rows << " rows, BAT has "
      << rows;
  // The plain constructor sizes the heap logically; shrink it to the
  // physical image before anyone sees the descriptor.
  BatPtr b(new Bat(type, 0, hseqbase));
  b->heap_->bytes.resize(physical_bytes);
  b->count_ = rows;
  b->enc_ = std::move(enc);
  return b;
}

Bat::Bat(const Bat& src, std::size_t offset, std::size_t n, ViewTag)
    : id_(g_next_bat_id.fetch_add(1)),
      type_(src.type_),
      count_(n),
      hseqbase_(src.hseqbase_ + static_cast<oid_t>(offset)),
      // Share the parent's storage: the view pins the heap, which dies only
      // when parent and every view are gone.
      heap_(src.heap_),
      // Plain views address bytes; encoded views share the whole physical
      // image and address logical rows through row_offset_.
      offset_(src.enc_ == nullptr
                  ? src.offset_ + offset * ValTypeSize(src.type_)
                  : src.offset_),
      view_(true),
      enc_(src.enc_),
      row_offset_(src.row_offset_ + offset) {
  // A contiguous row sub-range preserves every tail property.
  sorted_ = src.sorted_;
  key_ = src.key_;
  nonil_ = src.nonil_;
  if (src.dense_) SetDense(src.tseqbase_ + static_cast<oid_t>(offset));
  // Device ownership travels with the bytes: a view of an unsynced
  // device-resident result is itself device-resident, so host-residency
  // checks (and the memory manager) keep seeing the truth.
  ocelot_owned_ = src.ocelot_owned_;
}

BatPtr Bat::View(const BatPtr& src, std::size_t offset, std::size_t n) {
  OCELOT_CHECK(src != nullptr) << "View of a null BAT";
  OCELOT_CHECK_LE(offset + n, src->size())
      << "view range [" << offset << ", " << offset + n << ") exceeds parent";
  return BatPtr(new Bat(*src, offset, n, ViewTag{}));
}

void* Bat::DecodedData() {
  OCELOT_CHECK(enc_ != nullptr);
  {
    std::lock_guard<std::mutex> lock(enc_->decode_mu);
    if (enc_->decoded == nullptr) {
      enc_->decoded = DecodePhysical(type_, heap_->bytes.data(),
                                     heap_->bytes.size(), *enc_);
    }
  }
  // The twin covers the whole column; this descriptor's rows start at
  // row_offset_. Twin bytes are stable once built (plain root, never
  // resized), so the unlocked pointer read is safe.
  return static_cast<std::byte*>(enc_->decoded->data()) +
         row_offset_ * ValTypeSize(type_);
}

BatPtr Bat::DecodedView() const {
  OCELOT_CHECK(enc_ != nullptr) << "DecodedView of a plain BAT";
  const_cast<Bat*>(this)->DecodedData();  // ensure the twin exists
  BatPtr v = Bat::View(enc_->decoded, row_offset_, count_);
  v->CopyPropertiesFrom(*this);
  return v;
}

std::uint64_t Bat::decoded_heap_id() const {
  OCELOT_CHECK(enc_ != nullptr) << "decoded_heap_id of a plain BAT";
  const_cast<Bat*>(this)->DecodedData();
  return enc_->decoded->heap_id();
}

std::shared_ptr<const void> Bat::decoded_heap_handle() const {
  OCELOT_CHECK(enc_ != nullptr) << "decoded_heap_handle of a plain BAT";
  const_cast<Bat*>(this)->DecodedData();
  return enc_->decoded->heap_handle();
}

void Bat::ResizeTail(std::size_t n) {
  OCELOT_CHECK(!view_) << "ResizeTail on a BAT view (views alias a fixed "
                          "range of their parent's heap)";
  OCELOT_CHECK(enc_ == nullptr)
      << "ResizeTail on an encoded BAT (encoded images are immutable)";
  OCELOT_CHECK(heap_.use_count() == 1)
      << "ResizeTail on a BAT with live views of its heap";
  // Anything keyed on (heap id, offset, length) is stale after the resize:
  // the byte length changes and the storage may move. Announce the heap's
  // old identity as dead before reallocating, exactly as destruction would.
  HeapRegistry().Fire(heap_->id);
  count_ = n;
  heap_->bytes.resize(n * ValTypeSize(type_));
}

Bat::~Bat() { BatRegistry().Fire(id_); }

std::uint64_t Bat::AddDeleteListener(std::function<void(std::uint64_t)> fn) {
  return BatRegistry().Add(std::move(fn));
}

void Bat::RemoveDeleteListener(std::uint64_t token) { BatRegistry().Remove(token); }

std::uint64_t Bat::AddHeapDeleteListener(std::function<void(std::uint64_t)> fn) {
  return HeapRegistry().Add(std::move(fn));
}

void Bat::RemoveHeapDeleteListener(std::uint64_t token) {
  HeapRegistry().Remove(token);
}

}  // namespace cstore
