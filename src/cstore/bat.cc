#include "cstore/bat.h"

#include <atomic>
#include <utility>

namespace cstore {
namespace {

std::atomic<std::uint64_t> g_next_bat_id{1};
std::atomic<std::uint64_t> g_next_listener_token{1};

struct Listener {
  std::uint64_t token;
  std::function<void(std::uint64_t)> fn;
};

// The engine is single-threaded per session (MonetDB's operator-at-a-time
// execution); a plain vector suffices.
std::vector<Listener>& Listeners() {
  static std::vector<Listener>* listeners = new std::vector<Listener>();
  return *listeners;
}

}  // namespace

Bat::Bat(ValType type, std::size_t n, oid_t hseqbase)
    : id_(g_next_bat_id.fetch_add(1)),
      type_(type),
      count_(n),
      hseqbase_(hseqbase),
      heap_(n * ValTypeSize(type)) {}

BatPtr Bat::Make(ValType type, std::size_t n, oid_t hseqbase) {
  return BatPtr(new Bat(type, n, hseqbase));
}

BatPtr Bat::DenseOids(std::size_t n, oid_t base) {
  BatPtr b = Make(ValType::kOid, n);
  auto out = b->oids();
  for (std::size_t i = 0; i < n; ++i) out[i] = base + static_cast<oid_t>(i);
  b->SetDense(base);
  return b;
}

Bat::~Bat() {
  for (const Listener& l : Listeners()) l.fn(id_);
}

std::uint64_t Bat::AddDeleteListener(std::function<void(std::uint64_t)> fn) {
  std::uint64_t token = g_next_listener_token.fetch_add(1);
  Listeners().push_back({token, std::move(fn)});
  return token;
}

void Bat::RemoveDeleteListener(std::uint64_t token) {
  auto& listeners = Listeners();
  std::erase_if(listeners, [token](const Listener& l) { return l.token == token; });
}

}  // namespace cstore
