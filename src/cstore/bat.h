#ifndef OCELOT_CSTORE_BAT_H_
#define OCELOT_CSTORE_BAT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/logging.h"
#include "cstore/types.h"

#include <mutex>

namespace cstore {

class Bat;
using BatPtr = std::shared_ptr<Bat>;

/// Format descriptor of an encoded tail heap, shared by the root BAT and
/// every view of it. The descriptor owns the auxiliary state of the format
/// (the dictionary BAT for kDict) and the lazily materialized *decoded
/// twin*: a plain BAT holding the whole column's decoded values. Any code
/// path that asks an encoded BAT for plain bytes (`data()`, `ints()`, ...)
/// transparently reads the twin — that is the universal `Decode()` fallback
/// which keeps every operator without a native compressed path bit-identical
/// to plain. The twin is built at most once (decode_mu) and shared across
/// parent and views.
struct EncodingInfo {
  Encoding encoding = Encoding::kPlain;
  std::size_t plain_rows = 0;  ///< logical rows of the whole encoded column

  // kDict: `code_width`-byte codes (1 or 2) indexing `dict` (sorted, unique).
  BatPtr dict;
  std::size_t code_width = 0;

  // kRle: physical heap = [u32 value_bits[runs]][u32 starts[runs]];
  // run i covers rows [starts[i], starts[i+1]) with starts[runs] == rows.
  std::size_t runs = 0;

  // kBitPacked (kInt, nonil only): row value = base + <bit_width bits at
  // bit position row*bit_width of the little-endian u32 word stream>.
  std::uint32_t bit_width = 0;
  std::int32_t base = 0;

  std::mutex decode_mu;
  BatPtr decoded;  ///< plain twin of the whole column (lazily built)
};

/// A Binary Association Table: MonetDB's storage unit (dense oid head +
/// typed tail heap), the object every operator in this engine consumes and
/// produces.
///
/// The tail heap is 128-byte aligned (paper 4.3) and *shared*: a BAT either
/// owns its heap or is a **view** (`Bat::View`) aliasing a row range of
/// another BAT's heap, the way MonetDB's Mitosis slices are views rather
/// than copies. A view holds a shared reference to the heap, so the storage
/// outlives whichever of parent and views is released first. Every heap
/// carries a process-unique id; (heap id, byte offset, byte length)
/// identifies the bytes a BAT covers, independent of which descriptor —
/// parent or view — names them (Ocelot's memory manager keys its device
/// cache on exactly this triple).
///
/// Property bits mirror MonetDB's: `sorted`/`revsorted` (tail ordering),
/// `key` (tail values unique), `dense` (tail is the oid sequence tseqbase,
/// tseqbase+1, ...) and `nonil`. Operators maintain them best-effort;
/// consumers may only rely on a set bit, never on a cleared one. Views
/// inherit every property from their parent at creation (a contiguous
/// sub-range preserves all of them; a dense view's tseqbase shifts by the
/// view offset).
///
/// Two integration hooks from the paper's MonetDB modifications (4.3) are
/// present: the `ocelot_owned` flag on the descriptor (results of Ocelot
/// operators are device-resident until an explicit sync hands them back) and
/// the delete-listener callbacks that let Ocelot's memory manager drop
/// cached state when a BAT — or the heap behind it — is destroyed. Both
/// registries are thread-safe: scheduler fragments create and destroy BATs
/// concurrently on host threads.
class Bat {
 public:
  /// Creates a BAT with `n` uninitialized tail values of type `type` and a
  /// dense head starting at `hseqbase`.
  static BatPtr Make(ValType type, std::size_t n, oid_t hseqbase = 0);
  static BatPtr MakeInt(std::size_t n) { return Make(ValType::kInt, n); }
  static BatPtr MakeFloat(std::size_t n) { return Make(ValType::kFloat, n); }
  static BatPtr MakeOid(std::size_t n) { return Make(ValType::kOid, n); }

  /// Creates a *view* materializing the dense oid sequence [base, base+n):
  /// the identity candidate list of a table.
  static BatPtr DenseOids(std::size_t n, oid_t base = 0);

  /// Creates a format-tagged BAT: `rows` logical values of `type` stored as
  /// `physical_bytes` encoded bytes described by `enc` (which must not be
  /// kPlain). The caller fills the physical heap through physical_data().
  static BatPtr MakeEncoded(ValType type, std::size_t rows,
                            std::size_t physical_bytes,
                            std::shared_ptr<EncodingInfo> enc,
                            oid_t hseqbase = 0);

  /// Creates a zero-copy view of rows [offset, offset+n) of `src`: a new
  /// descriptor aliasing `src`'s heap (shared ownership — the heap lives
  /// until parent *and* every view are gone). Property bits are inherited;
  /// the head continues `src`'s numbering (hseqbase shifts by `offset`).
  /// Views of views collapse to one level: the result aliases the root heap
  /// directly. Views are fixed-size: ResizeTail on a view is a fatal error.
  static BatPtr View(const BatPtr& src, std::size_t offset, std::size_t n);

  ~Bat();

  Bat(const Bat&) = delete;
  Bat& operator=(const Bat&) = delete;

  std::uint64_t id() const { return id_; }
  ValType type() const { return type_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  oid_t hseqbase() const { return hseqbase_; }

  // -- Logical vs physical bytes ---------------------------------------------
  //
  // The *logical* size is what operators compute over: count() decoded
  // 4-byte values. The *physical* size is what the heap actually stores —
  // equal for plain BATs, smaller for encoded ones. Transfer billing, heap
  // allocation and device-cache keys for raw encoded bytes use the physical
  // accessors; everything row-oriented uses the logical ones. The old
  // scattered `count * ValTypeSize(type)` idiom routes through here.

  /// Logical tail size: count() decoded values of ValTypeSize each.
  std::size_t tail_bytes() const { return count_ * ValTypeSize(type_); }
  /// Explicitly named alias of tail_bytes() for call sites where the
  /// logical-vs-physical distinction is the point.
  std::size_t logical_tail_bytes() const { return tail_bytes(); }
  /// Bytes the backing heap actually stores for this BAT. Plain: the
  /// logical size of this descriptor's range. Encoded: the whole encoded
  /// image (views of an encoded column share the full physical heap and
  /// carry a row_offset() instead of a byte offset).
  std::size_t physical_tail_bytes() const {
    return enc_ == nullptr ? tail_bytes() : heap_->bytes.size();
  }

  // -- Encoding --------------------------------------------------------------

  /// Storage format of the tail heap (kPlain unless MakeEncoded built it).
  Encoding encoding() const {
    return enc_ == nullptr ? Encoding::kPlain : enc_->encoding;
  }
  bool encoded() const { return enc_ != nullptr; }
  /// Format descriptor; null for plain BATs. Shared by parent and views.
  const std::shared_ptr<EncodingInfo>& encoding_info() const { return enc_; }
  /// Logical row index of this descriptor's first row inside the encoded
  /// column (0 for roots; views of encoded BATs address rows, not bytes).
  std::size_t row_offset() const { return row_offset_; }

  /// The raw encoded bytes (whole column image — apply row_offset()).
  /// For plain BATs this is just data().
  const void* physical_data() const {
    return enc_ == nullptr ? data() : heap_->bytes.data();
  }
  void* physical_data() {
    return enc_ == nullptr ? data() : heap_->bytes.data();
  }

  /// For encoded BATs: a plain *view* of the decoded twin covering exactly
  /// this BAT's rows — same values, same properties, backed by the shared
  /// twin heap (whose heap identity the device cache can key decoded
  /// buffers on). Fatal on plain BATs.
  BatPtr DecodedView() const;

  /// Heap identity of the decoded twin (ensuring it exists) without
  /// constructing a view descriptor. Cache code running under its own lock
  /// needs these: creating and destroying a temporary BAT there would fire
  /// the process-wide delete listeners back into that same lock.
  std::uint64_t decoded_heap_id() const;
  std::shared_ptr<const void> decoded_heap_handle() const;

  /// True for descriptors created by View (non-owning alias of a range).
  bool is_view() const { return view_; }
  /// Process-unique id of the heap backing this BAT; equal for a parent and
  /// all of its views.
  std::uint64_t heap_id() const { return heap_->id; }
  /// Byte offset of this BAT's first tail value inside its heap (0 for
  /// heap-owning BATs and for views of encoded BATs, which use row_offset()).
  std::size_t heap_offset() const { return offset_; }
  /// Type-erased shared handle to the tail heap: alive exactly as long as
  /// any BAT (parent or view) still references it. The memory manager
  /// tracks heap liveness through a weak copy of this.
  std::shared_ptr<const void> heap_handle() const {
    return std::shared_ptr<const void>(heap_, heap_.get());
  }

  /// Decoded bytes of this BAT's rows. Plain: the heap bytes themselves.
  /// Encoded: the (lazily materialized, shared) decoded twin's bytes — the
  /// transparent Decode() fallback. The twin is logically const; the
  /// non-const overload exists because spans are taken through non-const
  /// BatPtrs everywhere, not as license to mutate an encoded column.
  void* data() {
    if (enc_ == nullptr) return heap_->bytes.data() + offset_;
    return DecodedData();
  }
  const void* data() const {
    if (enc_ == nullptr) return heap_->bytes.data() + offset_;
    return const_cast<Bat*>(this)->DecodedData();
  }

  /// Re-sizes the tail heap. Used when a deferred result (e.g. an Ocelot
  /// bitmap-backed candidate list) learns its true cardinality at
  /// materialization time. Existing contents up to min(old, new) survive;
  /// all outstanding spans/pointers are invalidated — including any device
  /// buffer cached for a range of this heap, so the heap-delete listeners
  /// fire (under the old heap id; the BAT keeps it) before the storage is
  /// reallocated. Fatal on views (a view does not own its heap) and on a
  /// parent with live views (the resize would reallocate the heap under
  /// them).
  void ResizeTail(std::size_t n);

  std::span<std::int32_t> ints() {
    OCELOT_CHECK(type_ == ValType::kInt);
    return {reinterpret_cast<std::int32_t*>(data()), count_};
  }
  std::span<const std::int32_t> ints() const {
    OCELOT_CHECK(type_ == ValType::kInt);
    return {reinterpret_cast<const std::int32_t*>(data()), count_};
  }
  std::span<float> floats() {
    OCELOT_CHECK(type_ == ValType::kFloat);
    return {reinterpret_cast<float*>(data()), count_};
  }
  std::span<const float> floats() const {
    OCELOT_CHECK(type_ == ValType::kFloat);
    return {reinterpret_cast<const float*>(data()), count_};
  }
  std::span<oid_t> oids() {
    OCELOT_CHECK(type_ == ValType::kOid);
    return {reinterpret_cast<oid_t*>(data()), count_};
  }
  std::span<const oid_t> oids() const {
    OCELOT_CHECK(type_ == ValType::kOid);
    return {reinterpret_cast<const oid_t*>(data()), count_};
  }

  // -- Properties -----------------------------------------------------------

  bool sorted() const { return sorted_; }
  bool key() const { return key_; }
  bool nonil() const { return nonil_; }
  /// Tail is the dense sequence tseqbase(), tseqbase()+1, ...
  bool dense() const { return dense_; }
  oid_t tseqbase() const { return tseqbase_; }

  void set_sorted(bool v) { sorted_ = v; }
  void set_key(bool v) { key_ = v; }
  void set_nonil(bool v) { nonil_ = v; }
  void SetDense(oid_t tseqbase) {
    dense_ = true;
    tseqbase_ = tseqbase;
    sorted_ = true;
    key_ = true;
    nonil_ = true;
  }

  /// Copies the complete property set of `src` (tail bits, dense/tseqbase,
  /// hseqbase) onto this BAT. The one place that must enumerate every
  /// property bit — anything cloning a BAT's contents (e.g. the scheduler's
  /// aggregate-fold copies) goes through here so a newly added bit cannot be
  /// silently laundered away. `ocelot_owned` is deliberately excluded: it
  /// describes where the *storage* lives, not what the values are.
  void CopyPropertiesFrom(const Bat& src) {
    sorted_ = src.sorted_;
    key_ = src.key_;
    nonil_ = src.nonil_;
    dense_ = src.dense_;
    tseqbase_ = src.tseqbase_;
    hseqbase_ = src.hseqbase_;
  }

  // -- Ocelot integration (paper 4.3) ---------------------------------------

  /// True while the BAT's authoritative contents live on an Ocelot device;
  /// MonetDB-side operators must not touch it until ocelot.sync runs.
  bool ocelot_owned() const { return ocelot_owned_; }
  void set_ocelot_owned(bool v) { ocelot_owned_ = v; }

  /// Registers a process-wide callback fired with the BAT id on destruction
  /// (MonetDB's resource-management callbacks into the memory manager).
  /// Returns a registration token for RemoveDeleteListener.
  static std::uint64_t AddDeleteListener(std::function<void(std::uint64_t)> fn);
  static void RemoveDeleteListener(std::uint64_t token);

  /// Registers a process-wide callback fired with the heap id when a tail
  /// heap is destroyed — i.e. when the *last* BAT sharing it (parent or
  /// view) goes away. Buffer caches keyed on heap identity hook this.
  static std::uint64_t AddHeapDeleteListener(std::function<void(std::uint64_t)> fn);
  static void RemoveHeapDeleteListener(std::uint64_t token);

 private:
  /// The shared tail storage: an aligned byte vector with a process-unique
  /// identity that outlives any single descriptor referencing it.
  struct Heap {
    explicit Heap(std::size_t n);
    ~Heap();
    std::uint64_t id;
    std::vector<std::byte, common::AlignedAllocator<std::byte>> bytes;
  };

  struct ViewTag {};

  Bat(ValType type, std::size_t n, oid_t hseqbase);
  /// View constructor: aliases `src`'s heap at a row offset.
  Bat(const Bat& src, std::size_t offset, std::size_t n, ViewTag);

  /// Ensures the decoded twin exists and returns the bytes of this BAT's
  /// rows inside it (enc_ != nullptr only).
  void* DecodedData();

  std::uint64_t id_;
  ValType type_;
  std::size_t count_;
  oid_t hseqbase_;
  std::shared_ptr<Heap> heap_;
  std::size_t offset_ = 0;  ///< byte offset into heap_ (plain views only)
  bool view_ = false;
  /// Format descriptor shared by the root and every view; null == plain.
  std::shared_ptr<EncodingInfo> enc_;
  std::size_t row_offset_ = 0;  ///< logical first row (encoded views)

  bool sorted_ = false;
  bool key_ = false;
  bool nonil_ = false;
  bool dense_ = false;
  oid_t tseqbase_ = 0;
  bool ocelot_owned_ = false;
};

}  // namespace cstore

#endif  // OCELOT_CSTORE_BAT_H_
