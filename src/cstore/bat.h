#ifndef OCELOT_CSTORE_BAT_H_
#define OCELOT_CSTORE_BAT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/logging.h"
#include "cstore/types.h"

namespace cstore {

class Bat;
using BatPtr = std::shared_ptr<Bat>;

/// A Binary Association Table: MonetDB's storage unit (dense oid head +
/// typed tail heap), the object every operator in this engine consumes and
/// produces.
///
/// The tail heap is 128-byte aligned (paper 4.3). Property bits mirror
/// MonetDB's: `sorted`/`revsorted` (tail ordering), `key` (tail values
/// unique), `dense` (tail is the oid sequence tseqbase, tseqbase+1, ...) and
/// `nonil`. Operators maintain them best-effort; consumers may only rely on
/// a set bit, never on a cleared one.
///
/// Two integration hooks from the paper's MonetDB modifications (4.3) are
/// present: the `ocelot_owned` flag on the descriptor (results of Ocelot
/// operators are device-resident until an explicit sync hands them back) and
/// the delete-listener callbacks that let Ocelot's memory manager drop
/// cached device buffers when a BAT is destroyed.
class Bat {
 public:
  /// Creates a BAT with `n` uninitialized tail values of type `type` and a
  /// dense head starting at `hseqbase`.
  static BatPtr Make(ValType type, std::size_t n, oid_t hseqbase = 0);
  static BatPtr MakeInt(std::size_t n) { return Make(ValType::kInt, n); }
  static BatPtr MakeFloat(std::size_t n) { return Make(ValType::kFloat, n); }
  static BatPtr MakeOid(std::size_t n) { return Make(ValType::kOid, n); }

  /// Creates a *view* materializing the dense oid sequence [base, base+n):
  /// the identity candidate list of a table.
  static BatPtr DenseOids(std::size_t n, oid_t base = 0);

  ~Bat();

  Bat(const Bat&) = delete;
  Bat& operator=(const Bat&) = delete;

  std::uint64_t id() const { return id_; }
  ValType type() const { return type_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  oid_t hseqbase() const { return hseqbase_; }
  std::size_t tail_bytes() const { return count_ * ValTypeSize(type_); }

  void* data() { return heap_.data(); }
  const void* data() const { return heap_.data(); }

  /// Re-sizes the tail heap. Used when a deferred result (e.g. an Ocelot
  /// bitmap-backed candidate list) learns its true cardinality at
  /// materialization time. Existing contents up to min(old, new) survive;
  /// all outstanding spans/pointers are invalidated.
  void ResizeTail(std::size_t n) {
    count_ = n;
    heap_.resize(n * ValTypeSize(type_));
  }

  std::span<std::int32_t> ints() {
    OCELOT_CHECK(type_ == ValType::kInt);
    return {reinterpret_cast<std::int32_t*>(heap_.data()), count_};
  }
  std::span<const std::int32_t> ints() const {
    OCELOT_CHECK(type_ == ValType::kInt);
    return {reinterpret_cast<const std::int32_t*>(heap_.data()), count_};
  }
  std::span<float> floats() {
    OCELOT_CHECK(type_ == ValType::kFloat);
    return {reinterpret_cast<float*>(heap_.data()), count_};
  }
  std::span<const float> floats() const {
    OCELOT_CHECK(type_ == ValType::kFloat);
    return {reinterpret_cast<const float*>(heap_.data()), count_};
  }
  std::span<oid_t> oids() {
    OCELOT_CHECK(type_ == ValType::kOid);
    return {reinterpret_cast<oid_t*>(heap_.data()), count_};
  }
  std::span<const oid_t> oids() const {
    OCELOT_CHECK(type_ == ValType::kOid);
    return {reinterpret_cast<const oid_t*>(heap_.data()), count_};
  }

  // -- Properties -----------------------------------------------------------

  bool sorted() const { return sorted_; }
  bool key() const { return key_; }
  bool nonil() const { return nonil_; }
  /// Tail is the dense sequence tseqbase(), tseqbase()+1, ...
  bool dense() const { return dense_; }
  oid_t tseqbase() const { return tseqbase_; }

  void set_sorted(bool v) { sorted_ = v; }
  void set_key(bool v) { key_ = v; }
  void set_nonil(bool v) { nonil_ = v; }
  void SetDense(oid_t tseqbase) {
    dense_ = true;
    tseqbase_ = tseqbase;
    sorted_ = true;
    key_ = true;
    nonil_ = true;
  }

  // -- Ocelot integration (paper 4.3) ---------------------------------------

  /// True while the BAT's authoritative contents live on an Ocelot device;
  /// MonetDB-side operators must not touch it until ocelot.sync runs.
  bool ocelot_owned() const { return ocelot_owned_; }
  void set_ocelot_owned(bool v) { ocelot_owned_ = v; }

  /// Registers a process-wide callback fired with the BAT id on destruction
  /// (MonetDB's resource-management callbacks into the memory manager).
  /// Returns a registration token for RemoveDeleteListener.
  static std::uint64_t AddDeleteListener(std::function<void(std::uint64_t)> fn);
  static void RemoveDeleteListener(std::uint64_t token);

 private:
  Bat(ValType type, std::size_t n, oid_t hseqbase);

  std::uint64_t id_;
  ValType type_;
  std::size_t count_;
  oid_t hseqbase_;
  std::vector<std::byte, common::AlignedAllocator<std::byte>> heap_;

  bool sorted_ = false;
  bool key_ = false;
  bool nonil_ = false;
  bool dense_ = false;
  oid_t tseqbase_ = 0;
  bool ocelot_owned_ = false;
};

}  // namespace cstore

#endif  // OCELOT_CSTORE_BAT_H_
