#include "cstore/catalog.h"

namespace cstore {

common::Status Table::AddColumn(const std::string& column, BatPtr bat) {
  if (!columns_.empty() && bat->size() != rows()) {
    return common::Status::InvalidArgument(
        "column " + column + " has " + std::to_string(bat->size()) +
        " rows; table " + name_ + " has " + std::to_string(rows()));
  }
  for (const NamedColumn& c : columns_) {
    if (c.name == column) {
      return common::Status::AlreadyExists(name_ + "." + column);
    }
  }
  columns_.push_back({column, std::move(bat)});
  return common::Status::Ok();
}

common::Status Table::ReplaceColumn(const std::string& column, BatPtr bat) {
  for (NamedColumn& c : columns_) {
    if (c.name != column) continue;
    if (bat->size() != c.bat->size()) {
      return common::Status::InvalidArgument(
          "replacement for " + name_ + "." + column + " has " +
          std::to_string(bat->size()) + " rows; column has " +
          std::to_string(c.bat->size()));
    }
    c.bat = std::move(bat);
    return common::Status::Ok();
  }
  return common::Status::NotFound(name_ + "." + column);
}

common::Result<BatPtr> Table::Column(const std::string& column) const {
  for (const NamedColumn& c : columns_) {
    if (c.name == column) return c.bat;
  }
  return common::Status::NotFound(name_ + "." + column);
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const NamedColumn& c : columns_) names.push_back(c.name);
  return names;
}

common::Status Catalog::AddTable(Table table) {
  auto [it, inserted] = tables_.emplace(table.name(), std::move(table));
  if (!inserted) return common::Status::AlreadyExists(it->first);
  return common::Status::Ok();
}

common::Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return common::Status::NotFound("table " + name);
  return &it->second;
}

Table* Catalog::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

common::Result<BatPtr> Catalog::GetColumn(const std::string& table,
                                          const std::string& column) const {
  ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  return t->Column(column);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::size_t Catalog::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [_, table] : tables_) {
    for (const std::string& col : table.ColumnNames()) {
      total += (*table.Column(col))->tail_bytes();
    }
  }
  return total;
}

std::size_t Catalog::TotalPhysicalBytes() const {
  std::size_t total = 0;
  for (const auto& [_, table] : tables_) {
    for (const std::string& col : table.ColumnNames()) {
      const BatPtr& b = *table.Column(col);
      total += b->physical_tail_bytes();
      // A dictionary is part of the column's storage footprint.
      if (b->encoding() == Encoding::kDict) {
        total += b->encoding_info()->dict->tail_bytes();
      }
    }
  }
  return total;
}

}  // namespace cstore
