#ifndef OCELOT_CSTORE_CATALOG_H_
#define OCELOT_CSTORE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "cstore/bat.h"

namespace cstore {

/// A named table: an ordered set of equally-sized columns, each stored as
/// one BAT (MonetDB's vertical decomposition).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t rows() const { return columns_.empty() ? 0 : columns_[0].bat->size(); }
  std::size_t column_count() const { return columns_.size(); }

  /// Adds a column; all columns of a table must have equal cardinality.
  common::Status AddColumn(const std::string& column, BatPtr bat);

  /// Swaps an existing column's BAT for another representation of the same
  /// rows (the encoding pass re-formats columns in place during the load
  /// phase). The replacement must keep the table's cardinality.
  common::Status ReplaceColumn(const std::string& column, BatPtr bat);

  /// Looks up a column BAT by name.
  common::Result<BatPtr> Column(const std::string& column) const;

  std::vector<std::string> ColumnNames() const;

 private:
  struct NamedColumn {
    std::string name;
    BatPtr bat;
  };
  std::string name_;
  std::vector<NamedColumn> columns_;
};

/// The schema catalog: name -> table. The TPC-H generator fills one of
/// these; plans resolve `table.column` references against it.
///
/// Thread-safety contract (mal::QueryService relies on this): a Catalog has
/// a single-writer *load phase* (AddTable/AddColumn calls, externally
/// serialized) followed by a shared read-only *serve phase* — once loading
/// is done, any number of concurrent sessions may call the const accessors
/// (GetTable/GetColumn/TableNames/TotalBytes) without synchronization.
/// GetColumn hands out BatPtr copies; shared_ptr refcounting is atomic, and
/// engines never mutate catalog-owned BATs in place (ocelot.sync targets
/// operator *results*, and a query's writes go to fresh heaps), so the
/// column data behind those pointers stays immutable for the catalog's
/// lifetime. There is no mutation API to guard: correcting a served catalog
/// means building a new one and swapping the pointer between workloads.
class Catalog {
 public:
  common::Status AddTable(Table table);
  common::Result<const Table*> GetTable(const std::string& name) const;
  /// Load-phase-only mutable access (the encoding pass); nullptr when the
  /// table does not exist.
  Table* MutableTable(const std::string& name);
  common::Result<BatPtr> GetColumn(const std::string& table,
                                   const std::string& column) const;
  std::vector<std::string> TableNames() const;

  /// Total *logical* tail bytes across all columns (the "database size" the
  /// TPC-H scale experiments report; unaffected by encoding).
  std::size_t TotalBytes() const;

  /// Total *physical* tail bytes: what the heaps actually store after
  /// encoding. TotalPhysicalBytes()/TotalBytes() is the database-wide
  /// compression ratio's inverse.
  std::size_t TotalPhysicalBytes() const;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace cstore

#endif  // OCELOT_CSTORE_CATALOG_H_
