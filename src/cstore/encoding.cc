#include "cstore/encoding.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "cstore/catalog.h"

namespace cstore {
namespace {

constexpr std::uint32_t kIntNilBits = 0x80000000u;  // bit_cast of kIntNil

bool BitsAreNil(ValType type, std::uint32_t bits) {
  switch (type) {
    case ValType::kInt:
      return bits == kIntNilBits;
    case ValType::kFloat:
      return IsFloatNil(std::bit_cast<float>(bits));
    case ValType::kOid:
      return bits == kOidNil;
  }
  return false;
}

/// Monotone sort key: ascending key order == ascending value order for the
/// type (ints numerically, floats in IEEE total order with negatives
/// reversed; NaN patterns land deterministically at the positive end).
std::uint32_t SortKey(ValType type, std::uint32_t bits) {
  if (type == ValType::kInt) return bits ^ 0x80000000u;
  return (bits & 0x80000000u) != 0 ? ~bits : (bits | 0x80000000u);
}

std::uint32_t BitWidthFor(std::int64_t range) {
  std::uint32_t width = 1;
  while (width < 32 && (std::int64_t{1} << width) <= range) ++width;
  return width;
}

BatPtr EncodeDict(const BatPtr& plain) {
  const std::size_t n = plain->size();
  const auto* bits = static_cast<const std::uint32_t*>(plain->data());
  std::unordered_map<std::uint32_t, std::uint32_t> code_of;
  std::vector<std::uint32_t> uniq;
  for (std::size_t i = 0; i < n; ++i) {
    if (code_of.emplace(bits[i], 0).second) {
      uniq.push_back(bits[i]);
      if (uniq.size() > ColumnStats::kDistinctCap) return plain;
    }
  }
  const ValType type = plain->type();
  std::sort(uniq.begin(), uniq.end(),
            [type](std::uint32_t a, std::uint32_t b) {
              return SortKey(type, a) < SortKey(type, b);
            });
  bool dict_has_nil = false;
  for (std::size_t c = 0; c < uniq.size(); ++c) {
    code_of[uniq[c]] = static_cast<std::uint32_t>(c);
    dict_has_nil = dict_has_nil || BitsAreNil(type, uniq[c]);
  }

  auto info = std::make_shared<EncodingInfo>();
  info->encoding = Encoding::kDict;
  info->plain_rows = n;
  info->code_width = uniq.size() <= 256 ? 1 : 2;
  BatPtr dict = Bat::Make(type, uniq.size());
  std::memcpy(dict->data(), uniq.data(), uniq.size() * sizeof(std::uint32_t));
  dict->set_key(true);
  dict->set_nonil(!dict_has_nil);
  if (type == ValType::kInt && !dict_has_nil) dict->set_sorted(true);
  info->dict = std::move(dict);

  BatPtr out = Bat::MakeEncoded(type, n, n * info->code_width, info,
                                plain->hseqbase());
  if (info->code_width == 1) {
    auto* codes = static_cast<std::uint8_t*>(out->physical_data());
    for (std::size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<std::uint8_t>(code_of[bits[i]]);
    }
  } else {
    auto* codes = static_cast<std::uint16_t*>(out->physical_data());
    for (std::size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<std::uint16_t>(code_of[bits[i]]);
    }
  }
  out->CopyPropertiesFrom(*plain);
  return out;
}

BatPtr EncodeRle(const BatPtr& plain) {
  const std::size_t n = plain->size();
  const auto* bits = static_cast<const std::uint32_t*>(plain->data());
  std::vector<std::uint32_t> values;
  std::vector<std::uint32_t> starts;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || bits[i] != bits[i - 1]) {
      values.push_back(bits[i]);
      starts.push_back(static_cast<std::uint32_t>(i));
    }
  }

  auto info = std::make_shared<EncodingInfo>();
  info->encoding = Encoding::kRle;
  info->plain_rows = n;
  info->runs = values.size();
  BatPtr out = Bat::MakeEncoded(plain->type(), n, 8 * info->runs, info,
                                plain->hseqbase());
  auto* phys = static_cast<std::uint32_t*>(out->physical_data());
  std::memcpy(phys, values.data(), values.size() * sizeof(std::uint32_t));
  std::memcpy(phys + info->runs, starts.data(),
              starts.size() * sizeof(std::uint32_t));
  out->CopyPropertiesFrom(*plain);
  return out;
}

BatPtr EncodeBitPacked(const BatPtr& plain) {
  if (plain->type() != ValType::kInt) return plain;
  const std::size_t n = plain->size();
  const auto vals = std::span<const std::int32_t>(
      static_cast<const std::int32_t*>(plain->data()), n);
  std::int32_t min_v = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_v = std::numeric_limits<std::int32_t>::min();
  for (std::int32_t v : vals) {
    if (v == kIntNil) return plain;  // no nil slot in the packed domain
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  const std::uint32_t width =
      BitWidthFor(std::int64_t{max_v} - std::int64_t{min_v});

  auto info = std::make_shared<EncodingInfo>();
  info->encoding = Encoding::kBitPacked;
  info->plain_rows = n;
  info->bit_width = width;
  info->base = min_v;
  const std::size_t words = (n * width + 31) / 32;
  BatPtr out =
      Bat::MakeEncoded(ValType::kInt, n, words * 4, info, plain->hseqbase());
  auto* packed = static_cast<std::uint32_t*>(out->physical_data());
  std::memset(packed, 0, words * 4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = static_cast<std::uint32_t>(
        std::int64_t{vals[i]} - std::int64_t{min_v});
    const std::size_t bit = i * width;
    const std::size_t word = bit >> 5;
    const std::uint32_t shift = static_cast<std::uint32_t>(bit & 31);
    packed[word] |= static_cast<std::uint32_t>(code << shift);
    if (shift + width > 32) {
      packed[word + 1] |= static_cast<std::uint32_t>(code >> (32 - shift));
    }
  }
  out->CopyPropertiesFrom(*plain);
  return out;
}

}  // namespace

ColumnStats ObserveColumn(const Bat& plain) {
  OCELOT_CHECK(!plain.encoded()) << "ObserveColumn wants the plain bytes";
  ColumnStats s;
  s.rows = plain.size();
  const auto* bits = static_cast<const std::uint32_t*>(plain.data());
  std::unordered_set<std::uint32_t> uniq;
  bool min_max_seeded = false;
  for (std::size_t i = 0; i < s.rows; ++i) {
    if (i == 0 || bits[i] != bits[i - 1]) ++s.runs;
    if (!s.distinct_capped) {
      uniq.insert(bits[i]);
      if (uniq.size() > ColumnStats::kDistinctCap) s.distinct_capped = true;
    }
    if (BitsAreNil(plain.type(), bits[i])) {
      s.has_nil = true;
    } else if (plain.type() == ValType::kInt) {
      const std::int32_t v = std::bit_cast<std::int32_t>(bits[i]);
      if (!min_max_seeded) {
        s.min_int = s.max_int = v;
        min_max_seeded = true;
      } else {
        s.min_int = std::min(s.min_int, v);
        s.max_int = std::max(s.max_int, v);
      }
    }
  }
  s.distinct = uniq.size();
  return s;
}

std::size_t EncodedPhysicalBytes(const ColumnStats& stats, ValType type,
                                 Encoding enc) {
  constexpr std::size_t kInapplicable = std::numeric_limits<std::size_t>::max();
  switch (enc) {
    case Encoding::kPlain:
      return stats.rows * 4;
    case Encoding::kDict: {
      if (stats.distinct_capped || stats.distinct == 0) return kInapplicable;
      const std::size_t cw = stats.distinct <= 256 ? 1 : 2;
      return stats.rows * cw + stats.distinct * 4;
    }
    case Encoding::kRle:
      return 8 * stats.runs;
    case Encoding::kBitPacked: {
      if (type != ValType::kInt || stats.has_nil || stats.rows == 0) {
        return kInapplicable;
      }
      const std::uint32_t width =
          BitWidthFor(std::int64_t{stats.max_int} - std::int64_t{stats.min_int});
      return ((stats.rows * width + 31) / 32) * 4;
    }
  }
  return kInapplicable;
}

Encoding ChooseEncoding(const ColumnStats& stats, ValType type) {
  constexpr std::size_t kMinRows = 1024;
  if (stats.rows < kMinRows || type == ValType::kOid) return Encoding::kPlain;
  const std::size_t logical = stats.rows * 4;
  Encoding best = Encoding::kPlain;
  std::size_t best_bytes = logical;
  for (Encoding enc :
       {Encoding::kDict, Encoding::kRle, Encoding::kBitPacked}) {
    const std::size_t bytes = EncodedPhysicalBytes(stats, type, enc);
    if (bytes < best_bytes) {
      best = enc;
      best_bytes = bytes;
    }
  }
  // Only re-format when the win is material: a marginal image buys no
  // bandwidth but costs every decode-fallback operator a twin build.
  if (best_bytes * 4 > logical * 3) return Encoding::kPlain;
  return best;
}

BatPtr EncodeColumn(const BatPtr& plain, Encoding enc) {
  OCELOT_CHECK(plain != nullptr);
  if (enc == Encoding::kPlain || plain->encoded() || plain->empty() ||
      plain->type() == ValType::kOid) {
    return plain;
  }
  switch (enc) {
    case Encoding::kDict:
      return EncodeDict(plain);
    case Encoding::kRle:
      return EncodeRle(plain);
    case Encoding::kBitPacked:
      return EncodeBitPacked(plain);
    case Encoding::kPlain:
      break;
  }
  return plain;
}

EncodingPolicy EncodingPolicyFromEnv() {
  const char* env = std::getenv("OCELOT_FORCE_ENCODING");
  if (env == nullptr) return EncodingPolicy::kAuto;
  const std::string v(env);
  if (v == "plain") return EncodingPolicy::kPlain;
  if (v == "dict") return EncodingPolicy::kDict;
  if (v == "rle") return EncodingPolicy::kRle;
  if (v == "bitpack") return EncodingPolicy::kBitPacked;
  return EncodingPolicy::kAuto;
}

void ApplyEncodings(Catalog* catalog, EncodingPolicy policy) {
  if (policy == EncodingPolicy::kPlain) return;
  for (const std::string& name : catalog->TableNames()) {
    Table* table = catalog->MutableTable(name);
    for (const std::string& col : table->ColumnNames()) {
      BatPtr b = *table->Column(col);
      if (b->encoded() || b->type() == ValType::kOid) continue;
      Encoding enc = Encoding::kPlain;
      switch (policy) {
        case EncodingPolicy::kAuto:
          enc = ChooseEncoding(ObserveColumn(*b), b->type());
          break;
        case EncodingPolicy::kDict:
          enc = Encoding::kDict;
          break;
        case EncodingPolicy::kRle:
          enc = Encoding::kRle;
          break;
        case EncodingPolicy::kBitPacked:
          enc = Encoding::kBitPacked;
          break;
        case EncodingPolicy::kPlain:
          break;
      }
      if (enc == Encoding::kPlain) continue;
      BatPtr e = EncodeColumn(b, enc);
      if (e != b) OCELOT_CHECK(table->ReplaceColumn(col, std::move(e)).ok());
    }
  }
}

void ApplyEncodings(Catalog* catalog) {
  ApplyEncodings(catalog, EncodingPolicyFromEnv());
}

BatPtr DecodePhysical(ValType type, const void* phys, std::size_t phys_bytes,
                      const EncodingInfo& info) {
  (void)phys_bytes;
  BatPtr out = Bat::Make(type, info.plain_rows);
  auto* dst = static_cast<std::uint32_t*>(out->data());
  switch (info.encoding) {
    case Encoding::kDict: {
      const auto* dict_bits =
          static_cast<const std::uint32_t*>(info.dict->data());
      if (info.code_width == 1) {
        const auto* codes = static_cast<const std::uint8_t*>(phys);
        for (std::size_t i = 0; i < info.plain_rows; ++i) {
          dst[i] = dict_bits[codes[i]];
        }
      } else {
        const auto* codes = static_cast<const std::uint16_t*>(phys);
        for (std::size_t i = 0; i < info.plain_rows; ++i) {
          dst[i] = dict_bits[codes[i]];
        }
      }
      break;
    }
    case Encoding::kRle: {
      const std::uint32_t* values = RleValueBits(phys, info);
      const std::uint32_t* starts = RleStarts(phys, info);
      for (std::size_t r = 0; r < info.runs; ++r) {
        const std::size_t end =
            r + 1 < info.runs ? starts[r + 1] : info.plain_rows;
        for (std::size_t i = starts[r]; i < end; ++i) dst[i] = values[r];
      }
      break;
    }
    case Encoding::kBitPacked: {
      const auto* words = static_cast<const std::uint32_t*>(phys);
      for (std::size_t i = 0; i < info.plain_rows; ++i) {
        dst[i] = std::bit_cast<std::uint32_t>(
            BitPackedAt(words, info.bit_width, info.base, i));
      }
      break;
    }
    case Encoding::kPlain:
      OCELOT_CHECK(false) << "DecodePhysical on a plain descriptor";
  }
  return out;
}

}  // namespace cstore
