#ifndef OCELOT_CSTORE_ENCODING_H_
#define OCELOT_CSTORE_ENCODING_H_

#include <cstddef>
#include <cstdint>

#include "cstore/bat.h"
#include "cstore/types.h"

namespace cstore {

class Catalog;

/// One-pass observations over a plain column, the inputs to the
/// stats-driven format selection of the catalog load path.
struct ColumnStats {
  std::size_t rows = 0;
  /// Distinct tail bit patterns; counting stops at kDistinctCap + 1 (see
  /// distinct_capped) so a high-cardinality column costs one hash probe per
  /// row, not unbounded set growth.
  std::size_t distinct = 0;
  bool distinct_capped = false;
  /// Maximal runs of equal bit patterns (rows > 0 implies runs >= 1).
  std::size_t runs = 0;
  /// Min/max over non-nil values (kInt columns only; meaningless otherwise).
  std::int32_t min_int = 0;
  std::int32_t max_int = 0;
  bool has_nil = false;

  static constexpr std::size_t kDistinctCap = 65536;  ///< u16 code space
};

ColumnStats ObserveColumn(const Bat& plain);

/// The format the stats-driven policy would store this column in: the
/// applicable format with the smallest physical image, provided the column
/// is large enough to bother (>= 1024 rows) and the image is at most 0.75x
/// the plain size; kPlain otherwise.
Encoding ChooseEncoding(const ColumnStats& stats, ValType type);

/// Physical image size of `stats` under `enc` (SIZE_MAX when the format is
/// inapplicable — bit-packing a float or nil-bearing column, dictionary
/// cardinality overflow). Exposed for the compression benchmark.
std::size_t EncodedPhysicalBytes(const ColumnStats& stats, ValType type,
                                 Encoding enc);

/// Re-formats `plain` as `enc`. Returns `plain` itself (not a copy) when
/// enc is kPlain, the column is not a base int/float column, or the format
/// is inapplicable; callers detect "nothing happened" by pointer equality.
/// The encoded BAT carries the source's property bits and hseqbase, and its
/// decoded twin reproduces the source bytes exactly.
BatPtr EncodeColumn(const BatPtr& plain, Encoding enc);

/// Per-process encoding policy: auto (stats-driven) or one format forced
/// for every applicable column. Forced modes skip the row-count and
/// benefit thresholds — they exist for tests and A/B benchmarks, not for
/// production sizing.
enum class EncodingPolicy { kAuto, kPlain, kDict, kRle, kBitPacked };

/// Parses OCELOT_FORCE_ENCODING (plain|dict|rle|bitpack|auto; unset or
/// unrecognized -> auto). The escape hatch the issue requires: CI pins a
/// leg to one format, and =plain turns the whole feature off.
EncodingPolicy EncodingPolicyFromEnv();

/// Walks every base column of every table and swaps in the encoded
/// representation chosen by `policy`. Called at the end of catalog load
/// (still the single-writer phase).
void ApplyEncodings(Catalog* catalog, EncodingPolicy policy);
/// Env-driven overload: ApplyEncodings(catalog, EncodingPolicyFromEnv()).
void ApplyEncodings(Catalog* catalog);

/// Decodes a whole physical image into a fresh plain root BAT of
/// info.plain_rows rows — the decoded-twin builder behind Bat::data()'s
/// transparent fallback, and the host-side reference for the device decode
/// kernels.
BatPtr DecodePhysical(ValType type, const void* phys, std::size_t phys_bytes,
                      const EncodingInfo& info);

// -- Physical-layout accessors for native compressed kernels -----------------

/// kRle: the run value bit patterns (u32[info.runs]).
inline const std::uint32_t* RleValueBits(const void* phys,
                                         const EncodingInfo& info) {
  (void)info;
  return static_cast<const std::uint32_t*>(phys);
}

/// kRle: the run start rows (u32[info.runs]); run i covers
/// [starts[i], i + 1 < runs ? starts[i+1] : plain_rows).
inline const std::uint32_t* RleStarts(const void* phys,
                                      const EncodingInfo& info) {
  return static_cast<const std::uint32_t*>(phys) + info.runs;
}

/// kBitPacked: decoded value at row r of the word stream.
inline std::int32_t BitPackedAt(const std::uint32_t* words,
                                std::uint32_t width, std::int32_t base,
                                std::size_t r) {
  const std::size_t bit = r * width;
  const std::size_t word = bit >> 5;
  const std::uint32_t shift = static_cast<std::uint32_t>(bit & 31);
  std::uint64_t window = words[word];
  if (shift + width > 32) window |= std::uint64_t{words[word + 1]} << 32;
  const std::uint32_t mask =
      width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
  return base + static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(window >> shift) & mask);
}

}  // namespace cstore

#endif  // OCELOT_CSTORE_ENCODING_H_
