#ifndef OCELOT_CSTORE_ENGINE_H_
#define OCELOT_CSTORE_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "cstore/bat.h"

namespace cstore {

/// One side of a range predicate. `unbounded` ignores the side entirely;
/// otherwise `value` compares against int or float tails (int32 is exactly
/// representable in double, so a single numeric carrier is lossless).
struct Bound {
  double value = 0;
  bool inclusive = true;
  bool unbounded = false;

  static Bound Incl(double v) { return {v, true, false}; }
  static Bound Excl(double v) { return {v, false, false}; }
  static Bound None() { return {0, true, true}; }
};

enum class CalcOp { kAdd, kSub, kMul, kDiv };
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A join result: aligned oid lists into the left and right inputs.
struct JoinResult {
  BatPtr left;
  BatPtr right;
};

/// A grouping result (MonetDB's group.group/subgroup triple): `groups`
/// assigns a dense group id to every input row, `extents` holds the oid of
/// each group's representative row, `ngroups` the number of groups.
struct GroupResult {
  BatPtr groups;
  BatPtr extents;
  std::size_t ngroups = 0;
};

/// A sort result: the reordered values plus the order (oids of the input in
/// sorted sequence), MonetDB's algebra.sort pair.
struct SortResult {
  BatPtr values;
  BatPtr order;
};

/// The property bits every engine's Sort guarantees, in one place (the
/// CopyPropertiesFrom discipline: a bit added here reaches all engines at
/// once instead of silently diverging one of them): the order BAT is a
/// permutation of 0..n-1 — key and nonil by construction, *not* sorted —
/// and the values are a sorted permutation of the input, inheriting its
/// nonil/key bits.
inline void FinalizeSortProperties(SortResult* res, const BatPtr& input) {
  res->order->set_key(true);
  res->order->set_nonil(true);
  res->values->set_sorted(true);
  if (input->nonil()) res->values->set_nonil(true);
  if (input->key()) res->values->set_key(true);
}

/// The operator contract every execution engine implements. There are three
/// implementations, matching the paper's four configurations:
///
///  * monet::SequentialEngine  — hand-written single-core operators (MS);
///  * monet::MitosisEngine     — hand-parallelized operators (MP), slicing
///                               BATs across virtual cores like MonetDB's
///                               Mitosis/Dataflow optimizers;
///  * ocelot::OcelotEngine     — the paper's hardware-oblivious operators,
///                               one implementation mapped to either device.
///
/// Conventions: candidate/selection results are sorted oid BATs (Ocelot may
/// back them with device-side bitmaps, but never exposes those — paper
/// 4.1.1); `cand == nullptr` means "all rows"; results of engines that own
/// device memory carry `ocelot_owned()` until `Sync` hands them back.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  virtual std::string name() const = 0;

  /// The engine's concurrency contract for the MAL dataflow executor: true
  /// when *independent* operator calls (distinct instructions of one plan,
  /// never sharing a result BAT) may run concurrently from different host
  /// threads. Default is false — the executor then serializes the engine's
  /// calls in program order (deterministic, still benefiting from eager
  /// intermediate release and critical-path billing).
  ///
  /// Audit notes for the built-ins:
  ///  * monet::SequentialEngine — true: stateless pure operators over
  ///    host-resident BATs;
  ///  * monet::MitosisEngine — false: every operator brackets its slices
  ///    with Deduct/AdvanceTo billing windows on the shared session clock;
  ///    interleaved windows from two threads would corrupt the makespan
  ///    accounting (and offset_ is not atomic);
  ///  * ocelot::OcelotEngine — false: one CommandQueue per device slot
  ///    (unsynchronized pending deque, flush-driven clock splicing) and
  ///    OpScope/eviction interplay assume a single driving thread;
  ///  * ocelot::Scheduler — false: the throughput-tracker EWMAs, the plan
  ///    hysteresis cache and the merged session clock are fed on the
  ///    calling thread after each fragment barrier; concurrent operator
  ///    calls would race them — and make partition boundaries (and thus
  ///    float partial-sum splits) depend on scheduling order, breaking the
  ///    dataflow-on == dataflow-off bit-identity contract.
  virtual bool concurrency_safe() const { return false; }

  // -- Selection ------------------------------------------------------------

  /// Rows of `col` (within `cand`) whose value lies in [lo, hi]; nil values
  /// never match. Returns a sorted oid candidate list.
  virtual common::Result<BatPtr> SelectRange(const BatPtr& col, const BatPtr& cand,
                                             Bound lo, Bound hi) = 0;

  /// Union of two sorted candidate lists (disjunctive predicates).
  virtual common::Result<BatPtr> CandUnion(const BatPtr& a, const BatPtr& b) = 0;

  // -- Projection / joins -----------------------------------------------------

  /// Positional fetch: result[i] = col[oids[i]] (the left fetch join of
  /// Fig. 5c; works for int/float/oid tails).
  virtual common::Result<BatPtr> Project(const BatPtr& oids, const BatPtr& col) = 0;

  /// Equi-join of two int32 value BATs; builds on the right side.
  virtual common::Result<JoinResult> HashJoin(const BatPtr& left,
                                              const BatPtr& right) = 0;

  /// Nested-loop theta join: pairs (i, j) with left[i] <op> right[j].
  virtual common::Result<JoinResult> ThetaJoin(const BatPtr& left,
                                               const BatPtr& right, CmpOp op) = 0;

  /// Oids of left rows with (no) match in right (EXISTS / NOT EXISTS).
  virtual common::Result<BatPtr> SemiJoin(const BatPtr& left, const BatPtr& right) = 0;
  virtual common::Result<BatPtr> AntiJoin(const BatPtr& left, const BatPtr& right) = 0;

  // -- Sort / group / aggregate ----------------------------------------------

  /// Stable ascending sort (single column; the paper's workload drops
  /// multi-column sorts, section A).
  virtual common::Result<SortResult> Sort(const BatPtr& col) = 0;

  /// Dense group ids for `col`; `prev` refines an existing grouping
  /// (multi-column group-by, paper 4.1.6).
  virtual common::Result<GroupResult> GroupBy(const BatPtr& col,
                                              const GroupResult* prev) = 0;

  virtual common::Result<BatPtr> SubSum(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) = 0;
  virtual common::Result<BatPtr> SubCount(const BatPtr& groups, std::size_t ngroups) = 0;
  virtual common::Result<BatPtr> SubMin(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) = 0;
  virtual common::Result<BatPtr> SubMax(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) = 0;
  virtual common::Result<BatPtr> SubAvg(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) = 0;

  virtual common::Result<double> Sum(const BatPtr& col) = 0;
  virtual common::Result<double> Min(const BatPtr& col) = 0;
  virtual common::Result<double> Max(const BatPtr& col) = 0;
  virtual common::Result<std::int64_t> Count(const BatPtr& col) = 0;

  // -- Column arithmetic (batcalc) -------------------------------------------

  /// Element-wise arithmetic on two equally-sized numeric BATs.
  virtual common::Result<BatPtr> Calc(CalcOp op, const BatPtr& a, const BatPtr& b) = 0;
  /// Arithmetic against a scalar; `scalar_left` computes s <op> a[i].
  virtual common::Result<BatPtr> CalcScalar(CalcOp op, const BatPtr& a, double s,
                                            bool scalar_left) = 0;
  /// Element-wise comparison producing an int32 0/1 BAT.
  virtual common::Result<BatPtr> Cmp(CmpOp op, const BatPtr& a, const BatPtr& b) = 0;
  virtual common::Result<BatPtr> CmpScalar(CmpOp op, const BatPtr& a, double s) = 0;
  /// Logical combination of int32 0/1 BATs.
  virtual common::Result<BatPtr> BoolOr(const BatPtr& a, const BatPtr& b) = 0;
  virtual common::Result<BatPtr> BoolAnd(const BatPtr& a, const BatPtr& b) = 0;
  /// result[i] = cond[i] ? then_vals[i] : else_val  (SQL CASE).
  virtual common::Result<BatPtr> IfThenElseConst(const BatPtr& cond,
                                                 const BatPtr& then_vals,
                                                 double else_val) = 0;
  /// Calendar year of an int32 day-count column (TPC-H extract(year ...)).
  virtual common::Result<BatPtr> Year(const BatPtr& col) = 0;
  virtual common::Result<BatPtr> CastToFloat(const BatPtr& col) = 0;

  // -- Ownership --------------------------------------------------------------

  /// Hands a result back to the host side (paper 3.4): waits for producing
  /// device operations and materializes the contents into the BAT's host
  /// heap. No-op for host-resident engines.
  virtual common::Status Sync(const BatPtr& bat) {
    (void)bat;
    return common::Status::Ok();
  }
};

}  // namespace cstore

#endif  // OCELOT_CSTORE_ENGINE_H_
