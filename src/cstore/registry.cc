#include "cstore/registry.h"

#include <utility>

namespace cstore {

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = new EngineRegistry();
  return *registry;
}

void EngineRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);
}

bool EngineRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

common::Result<std::unique_ptr<EngineBundle>> EngineRegistry::Create(
    const std::string& name, const EngineOptions& options) const {
  // Copy the factory out under the lock, invoke it off the lock: factories
  // build whole engine stacks and may legitimately consult the registry.
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      return common::Status::NotFound("no engine named '" + name +
                                      "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(options);
}

std::vector<std::string> EngineRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [n, f] : factories_) names.push_back(n);
  return names;  // std::map iteration is already sorted
}

}  // namespace cstore
