#include "cstore/registry.h"

#include <utility>

namespace cstore {

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = new EngineRegistry();
  return *registry;
}

void EngineRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

bool EngineRegistry::Contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

common::Result<std::unique_ptr<EngineBundle>> EngineRegistry::Create(
    const std::string& name, const EngineOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [n, f] : factories_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return common::Status::NotFound("no engine named '" + name +
                                    "' (registered: " + known + ")");
  }
  return it->second(options);
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [n, f] : factories_) names.push_back(n);
  return names;  // std::map iteration is already sorted
}

}  // namespace cstore
