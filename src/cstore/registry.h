#ifndef OCELOT_CSTORE_REGISTRY_H_
#define OCELOT_CSTORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vclock.h"
#include "cstore/engine.h"

namespace ocl {
struct DeviceModel;  // registry options carry model overrides opaquely
class Context;
}  // namespace ocl

namespace cstore {

/// Construction-time knobs a caller may pass when resolving an engine by
/// name. Benchmarks use the model overrides to scale device memory and
/// driver constants with their data axes; everything else takes the presets.
struct EngineOptions {
  const ocl::DeviceModel* cpu_model = nullptr;  ///< override the CPU preset
  const ocl::DeviceModel* gpu_model = nullptr;  ///< override the GPU preset
};

/// A constructed engine plus the runtime state that backs it (OpenCLite
/// context, virtual clock, sub-engines). Factories return bundles so callers
/// never have to know what an engine needs to stay alive — the prerequisite
/// for resolving engines purely by name.
class EngineBundle {
 public:
  virtual ~EngineBundle() = default;

  virtual QueryEngine* engine() = 0;

  /// The clock all measurements of this engine should read: Ocelot bundles
  /// expose the context clock (which splices in modeled device time),
  /// baselines their own session clock.
  virtual common::VirtualClock* clock() = 0;

  /// True for engines built from the hardware-oblivious operator set; plans
  /// for these need the ocelot rewrite (module swap + sync instructions).
  virtual bool hardware_oblivious() const { return false; }

  /// The OpenCLite context, when the engine has one (null for baselines).
  virtual ocl::Context* ocl_context() { return nullptr; }

  /// Drains any device queues and settles the clock (clFinish analogue);
  /// no-op for host-resident engines. Returns the first pending device
  /// fault, if the drain flushed failed work (and clears it).
  virtual common::Status Finish() { return common::Status::Ok(); }
};

/// Process-wide name -> factory map for execution engines. Each layer
/// registers its own engines (monet: "seq", "par"; ocelot: "ocelot:cpu",
/// "ocelot:gpu", "ocelot:multi", one per available device model), so
/// benches, examples, tests and the MAL interpreter resolve engines by name
/// instead of constructing them by hand.
///
/// Thread safety: all methods are safe to call concurrently — concurrent
/// sessions resolve engines by name while tests register custom engines
/// (the map is mutex-guarded; Create invokes the factory *off* the lock, so
/// a factory may itself consult the registry). The bundles a factory
/// returns are per-session state and are NOT shared: each concurrent
/// session owns its engine, context and clocks outright.
class EngineRegistry {
 public:
  using Factory =
      std::function<common::Result<std::unique_ptr<EngineBundle>>(const EngineOptions&)>;

  /// The process-wide registry instance.
  static EngineRegistry& Global();

  /// Registers (or replaces) the factory for `name`.
  void Register(const std::string& name, Factory factory);

  bool Contains(const std::string& name) const;

  /// Instantiates the engine registered under `name`; NotFound lists the
  /// registered names when the lookup misses.
  common::Result<std::unique_ptr<EngineBundle>> Create(
      const std::string& name, const EngineOptions& options = {}) const;

  /// Registered names in sorted order (benchmark sweeps iterate this).
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace cstore

#endif  // OCELOT_CSTORE_REGISTRY_H_
