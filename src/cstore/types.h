#ifndef OCELOT_CSTORE_TYPES_H_
#define OCELOT_CSTORE_TYPES_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace cstore {

/// Object id: the position of a tuple inside its table. MonetDB BATs are
/// (head, tail) pairs; with dense heads the head is just an oid sequence, so
/// an oid column *is* a materialized candidate/selection/join-index list.
using oid_t = std::uint32_t;

inline constexpr oid_t kOidNil = std::numeric_limits<oid_t>::max();

/// Nil sentinels, following MonetDB's convention (int_nil = INT_MIN,
/// flt_nil = NaN). The paper's scope is 4-byte ints and floats; dates and
/// dictionary-encoded strings are stored as int32.
inline constexpr std::int32_t kIntNil = std::numeric_limits<std::int32_t>::min();

inline float FloatNil() { return std::numeric_limits<float>::quiet_NaN(); }
inline bool IsFloatNil(float v) { return std::isnan(v); }

/// Tail types supported by the engine (paper section 3.1: four-byte integer
/// and floating point data). kOid tails hold selection results/join indexes.
enum class ValType : std::uint8_t { kInt = 0, kFloat = 1, kOid = 2 };

inline const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kInt:
      return "int";
    case ValType::kFloat:
      return "flt";
    case ValType::kOid:
      return "oid";
  }
  return "?";
}

inline std::size_t ValTypeSize(ValType) { return 4; }  // everything is 4 bytes

/// Physical storage format of a BAT's tail heap. A plain heap holds one
/// 4-byte value per row; the other formats hold a compressed image whose
/// *logical* size (rows * ValTypeSize) differs from its *physical* byte
/// count. Every size computation must therefore say which of the two it
/// means — `Bat::tail_bytes()` (logical) vs `Bat::physical_tail_bytes()`.
enum class Encoding : std::uint8_t {
  kPlain = 0,      ///< one 4-byte value per row
  kDict = 1,       ///< u8/u16 codes into a shared sorted dictionary BAT
  kRle = 2,        ///< run-length: [values[runs]][starts[runs]], u32 each
  kBitPacked = 3,  ///< frame-of-reference bit-packed ints (nonil only)
};

inline const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kDict:
      return "dict";
    case Encoding::kRle:
      return "rle";
    case Encoding::kBitPacked:
      return "bitpack";
  }
  return "?";
}

}  // namespace cstore

#endif  // OCELOT_CSTORE_TYPES_H_
