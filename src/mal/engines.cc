#include "mal/engines.h"

#include <algorithm>

#include "monet/register.h"
#include "ocelot/register.h"

namespace mal {

cstore::EngineRegistry& EnsureEngineRegistry() {
  static bool registered = [] {
    monet::RegisterEngines(&cstore::EngineRegistry::Global());
    ocelot::RegisterEngines(&cstore::EngineRegistry::Global());
    return true;
  }();
  (void)registered;
  return cstore::EngineRegistry::Global();
}

std::vector<std::string> OrderedEngineNames() {
  EnsureEngineRegistry();
  std::vector<std::string> ordered = {"seq", "par", "ocelot:cpu", "ocelot:gpu"};
  for (const std::string& name : cstore::EngineRegistry::Global().Names()) {
    if (std::find(ordered.begin(), ordered.end(), name) == ordered.end()) {
      ordered.push_back(name);
    }
  }
  return ordered;
}

}  // namespace mal
