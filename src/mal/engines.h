#ifndef OCELOT_MAL_ENGINES_H_
#define OCELOT_MAL_ENGINES_H_

#include "cstore/registry.h"

namespace mal {

/// Ensures every built-in engine factory is registered with the global
/// cstore::EngineRegistry: monet's baselines ("seq", "par") and ocelot's
/// device engines ("ocelot:cpu", "ocelot:gpu", "ocelot:multi"). Idempotent
/// and cheap; called by Session::Open, the bench harness and tests before
/// any by-name lookup.
cstore::EngineRegistry& EnsureEngineRegistry();

/// Every registered engine name, the paper's configurations first ("seq",
/// "par", "ocelot:cpu", "ocelot:gpu"), then all further registrations in
/// sorted order — the canonical column/sweep order for benches, examples
/// and reports.
std::vector<std::string> OrderedEngineNames();

}  // namespace mal

#endif  // OCELOT_MAL_ENGINES_H_
