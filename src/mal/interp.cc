#include "mal/interp.h"

#include <cmath>
#include <condition_variable>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "mal/engines.h"
#include "ocelot/engine.h"

namespace mal {

using common::Result;
using common::Status;
using cstore::BatPtr;
using cstore::Bound;
using cstore::CalcOp;
using cstore::CmpOp;
using cstore::GroupResult;

const char* PipelineName(Pipeline p) {
  switch (p) {
    case Pipeline::kSequential:
      return "MS";
    case Pipeline::kMitosis:
      return "MP";
    case Pipeline::kOcelotCpu:
      return "Ocelot/CPU";
    case Pipeline::kOcelotGpu:
      return "Ocelot/GPU";
    case Pipeline::kOcelotMulti:
      return "Ocelot/Multi";
    case Pipeline::kExternal:
      return "External";
  }
  return "?";
}

const char* EngineNameFor(Pipeline p) {
  switch (p) {
    case Pipeline::kSequential:
      return "seq";
    case Pipeline::kMitosis:
      return "par";
    case Pipeline::kOcelotCpu:
      return "ocelot:cpu";
    case Pipeline::kOcelotGpu:
      return "ocelot:gpu";
    case Pipeline::kOcelotMulti:
      return "ocelot:multi";
    case Pipeline::kExternal:
      return "";  // external engines exist only as concrete registry names
  }
  return "?";
}

namespace {

Pipeline PipelineForName(const std::string& name) {
  for (Pipeline p : {Pipeline::kSequential, Pipeline::kMitosis, Pipeline::kOcelotCpu,
                     Pipeline::kOcelotGpu, Pipeline::kOcelotMulti}) {
    if (name == EngineNameFor(p)) return p;
  }
  // External registration: keep the name visible through Session::label()
  // instead of mislabeling the configuration "MS".
  return Pipeline::kExternal;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Open(const std::string& engine_name,
                                               const cstore::EngineOptions& options) {
  cstore::EngineRegistry& registry = EnsureEngineRegistry();
  ASSIGN_OR_RETURN(std::unique_ptr<cstore::EngineBundle> bundle,
                   registry.Create(engine_name, options));
  auto session = std::unique_ptr<Session>(new Session());
  session->pipeline_ = PipelineForName(engine_name);
  session->engine_name_ = engine_name;
  session->bundle_ = std::move(bundle);
  return session;
}

std::unique_ptr<Session> Session::Create(Pipeline pipeline,
                                         const ocl::DeviceModel* gpu_model,
                                         const ocl::DeviceModel* cpu_model) {
  cstore::EngineOptions options;
  options.gpu_model = gpu_model;
  options.cpu_model = cpu_model;
  auto session = Open(EngineNameFor(pipeline), options);
  OCELOT_CHECK(session.ok()) << session.status().ToString();
  return std::move(*session);
}

ocelot::OcelotEngine* Session::ocelot() {
  return dynamic_cast<ocelot::OcelotEngine*>(bundle_->engine());
}

namespace {

struct EvalCtx {
  const cstore::Catalog* catalog;
  cstore::QueryEngine* engine;
  std::vector<Value>* vars;

  Result<BatPtr> Bat(int var) const {
    const Value& v = (*vars)[static_cast<std::size_t>(var)];
    if (!std::holds_alternative<BatPtr>(v)) {
      return Status::InvalidArgument("X_" + std::to_string(var) + " is not a BAT");
    }
    return std::get<BatPtr>(v);
  }
  Result<BatPtr> BatOrNull(int var) const {
    const Value& v = (*vars)[static_cast<std::size_t>(var)];
    if (IsNil(v)) return BatPtr(nullptr);
    return Bat(var);
  }
  Result<double> Num(int var) const {
    const Value& v = (*vars)[static_cast<std::size_t>(var)];
    if (std::holds_alternative<double>(v)) return std::get<double>(v);
    if (std::holds_alternative<std::int64_t>(v)) {
      return static_cast<double>(std::get<std::int64_t>(v));
    }
    return Status::InvalidArgument("X_" + std::to_string(var) + " is not numeric");
  }
  Result<std::int64_t> Int(int var) const {
    const Value& v = (*vars)[static_cast<std::size_t>(var)];
    if (std::holds_alternative<std::int64_t>(v)) return std::get<std::int64_t>(v);
    return Status::InvalidArgument("X_" + std::to_string(var) + " is not an int");
  }
  Result<std::string> Str(int var) const {
    const Value& v = (*vars)[static_cast<std::size_t>(var)];
    if (std::holds_alternative<std::string>(v)) return std::get<std::string>(v);
    return Status::InvalidArgument("X_" + std::to_string(var) + " is not a string");
  }
  bool IsBat(int var) const {
    return std::holds_alternative<BatPtr>((*vars)[static_cast<std::size_t>(var)]);
  }
  void Set(int var, Value v) { (*vars)[static_cast<std::size_t>(var)] = std::move(v); }
};

Status ArgCount(const Instr& ins, std::size_t want) {
  if (ins.args.size() != want) {
    return Status::InvalidArgument(ins.module + "." + ins.op + ": expected " +
                                   std::to_string(want) + " args, got " +
                                   std::to_string(ins.args.size()));
  }
  return Status::Ok();
}

Bound BoundFrom(double v, std::int64_t inclusive) {
  if (std::isinf(v)) return Bound::None();
  return inclusive != 0 ? Bound::Incl(v) : Bound::Excl(v);
}

Status ExecInstr(EvalCtx& ctx, const Instr& ins) {
  const std::string& op = ins.op;

  if (op == "bind") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(std::string table, ctx.Str(ins.args[0]));
    ASSIGN_OR_RETURN(std::string column, ctx.Str(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr bat, ctx.catalog->GetColumn(table, column));
    ctx.Set(ins.rets[0], bat);
    return Status::Ok();
  }
  if (op == "setkey") {
    // Metadata-only: plan generators assert key-ness of projected key
    // subsets (MonetDB tracks this property through its optimizer).
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr bat, ctx.Bat(ins.args[0]));
    bat->set_key(true);
    ctx.Set(ins.rets[0], bat);
    return Status::Ok();
  }
  if (op == "mirror") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ctx.Set(ins.rets[0], cstore::Bat::DenseOids(col->size()));
    return Status::Ok();
  }
  if (op == "select") {
    RETURN_IF_ERROR(ArgCount(ins, 6));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr cand, ctx.BatOrNull(ins.args[1]));
    ASSIGN_OR_RETURN(double lo, ctx.Num(ins.args[2]));
    ASSIGN_OR_RETURN(double hi, ctx.Num(ins.args[3]));
    ASSIGN_OR_RETURN(std::int64_t li, ctx.Int(ins.args[4]));
    ASSIGN_OR_RETURN(std::int64_t hi_incl, ctx.Int(ins.args[5]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->SelectRange(col, cand, BoundFrom(lo, li),
                                                         BoundFrom(hi, hi_incl)));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "projection") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr oids, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->Project(oids, col));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "join") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr l, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr r, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(cstore::JoinResult res, ctx.engine->HashJoin(l, r));
    ctx.Set(ins.rets[0], res.left);
    ctx.Set(ins.rets[1], res.right);
    return Status::Ok();
  }
  if (op == "thetajoin") {
    RETURN_IF_ERROR(ArgCount(ins, 3));
    ASSIGN_OR_RETURN(BatPtr l, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr r, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(std::int64_t cmp, ctx.Int(ins.args[2]));
    ASSIGN_OR_RETURN(cstore::JoinResult res,
                     ctx.engine->ThetaJoin(l, r, static_cast<CmpOp>(cmp)));
    ctx.Set(ins.rets[0], res.left);
    ctx.Set(ins.rets[1], res.right);
    return Status::Ok();
  }
  if (op == "semijoin" || op == "antijoin") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr l, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr r, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr res, op == "semijoin" ? ctx.engine->SemiJoin(l, r)
                                                  : ctx.engine->AntiJoin(l, r));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "candunion") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr a, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr b, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->CandUnion(a, b));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "sort") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(cstore::SortResult res, ctx.engine->Sort(col));
    ctx.Set(ins.rets[0], res.values);
    ctx.Set(ins.rets[1], res.order);
    return Status::Ok();
  }
  if (op == "group") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(GroupResult res, ctx.engine->GroupBy(col, nullptr));
    ctx.Set(ins.rets[0], res.groups);
    ctx.Set(ins.rets[1], res.extents);
    ctx.Set(ins.rets[2], static_cast<std::int64_t>(res.ngroups));
    return Status::Ok();
  }
  if (op == "subgroup") {
    RETURN_IF_ERROR(ArgCount(ins, 3));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    GroupResult prev;
    ASSIGN_OR_RETURN(prev.groups, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(std::int64_t ng, ctx.Int(ins.args[2]));
    prev.ngroups = static_cast<std::size_t>(ng);
    ASSIGN_OR_RETURN(GroupResult res, ctx.engine->GroupBy(col, &prev));
    ctx.Set(ins.rets[0], res.groups);
    ctx.Set(ins.rets[1], res.extents);
    ctx.Set(ins.rets[2], static_cast<std::int64_t>(res.ngroups));
    return Status::Ok();
  }
  if (op == "subsum" || op == "submin" || op == "submax" || op == "subavg") {
    RETURN_IF_ERROR(ArgCount(ins, 3));
    ASSIGN_OR_RETURN(BatPtr vals, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr groups, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(std::int64_t ng, ctx.Int(ins.args[2]));
    auto sz = static_cast<std::size_t>(ng);
    Result<BatPtr> res =
        op == "subsum"   ? ctx.engine->SubSum(vals, groups, sz)
        : op == "submin" ? ctx.engine->SubMin(vals, groups, sz)
        : op == "submax" ? ctx.engine->SubMax(vals, groups, sz)
                         : ctx.engine->SubAvg(vals, groups, sz);
    RETURN_IF_ERROR(res.status());
    ctx.Set(ins.rets[0], *res);
    return Status::Ok();
  }
  if (op == "subcount") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr groups, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(std::int64_t ng, ctx.Int(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr res,
                     ctx.engine->SubCount(groups, static_cast<std::size_t>(ng)));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "sum" || op == "min" || op == "max") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    Result<double> res = op == "sum"   ? ctx.engine->Sum(col)
                         : op == "min" ? ctx.engine->Min(col)
                                       : ctx.engine->Max(col);
    RETURN_IF_ERROR(res.status());
    ctx.Set(ins.rets[0], *res);
    return Status::Ok();
  }
  if (op == "count") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(std::int64_t res, ctx.engine->Count(col));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "add" || op == "sub" || op == "mul" || op == "div") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    CalcOp calc = op == "add"   ? CalcOp::kAdd
                  : op == "sub" ? CalcOp::kSub
                  : op == "mul" ? CalcOp::kMul
                                : CalcOp::kDiv;
    bool a_bat = ctx.IsBat(ins.args[0]);
    bool b_bat = ctx.IsBat(ins.args[1]);
    Result<BatPtr> res = Status::InvalidArgument("calc needs at least one BAT");
    if (a_bat && b_bat) {
      ASSIGN_OR_RETURN(BatPtr a, ctx.Bat(ins.args[0]));
      ASSIGN_OR_RETURN(BatPtr b, ctx.Bat(ins.args[1]));
      res = ctx.engine->Calc(calc, a, b);
    } else if (a_bat) {
      ASSIGN_OR_RETURN(BatPtr a, ctx.Bat(ins.args[0]));
      ASSIGN_OR_RETURN(double s, ctx.Num(ins.args[1]));
      res = ctx.engine->CalcScalar(calc, a, s, /*scalar_left=*/false);
    } else if (b_bat) {
      ASSIGN_OR_RETURN(BatPtr b, ctx.Bat(ins.args[1]));
      ASSIGN_OR_RETURN(double s, ctx.Num(ins.args[0]));
      res = ctx.engine->CalcScalar(calc, b, s, /*scalar_left=*/true);
    }
    RETURN_IF_ERROR(res.status());
    ctx.Set(ins.rets[0], *res);
    return Status::Ok();
  }
  if (op == "eq" || op == "ne" || op == "lt" || op == "le" || op == "gt" ||
      op == "ge") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    CmpOp cmp = op == "eq"   ? CmpOp::kEq
                : op == "ne" ? CmpOp::kNe
                : op == "lt" ? CmpOp::kLt
                : op == "le" ? CmpOp::kLe
                : op == "gt" ? CmpOp::kGt
                             : CmpOp::kGe;
    ASSIGN_OR_RETURN(BatPtr a, ctx.Bat(ins.args[0]));
    Result<BatPtr> res = Status::InvalidArgument("");
    if (ctx.IsBat(ins.args[1])) {
      ASSIGN_OR_RETURN(BatPtr b, ctx.Bat(ins.args[1]));
      res = ctx.engine->Cmp(cmp, a, b);
    } else {
      ASSIGN_OR_RETURN(double s, ctx.Num(ins.args[1]));
      res = ctx.engine->CmpScalar(cmp, a, s);
    }
    RETURN_IF_ERROR(res.status());
    ctx.Set(ins.rets[0], *res);
    return Status::Ok();
  }
  if (op == "or" || op == "and") {
    RETURN_IF_ERROR(ArgCount(ins, 2));
    ASSIGN_OR_RETURN(BatPtr a, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr b, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(BatPtr res, op == "or" ? ctx.engine->BoolOr(a, b)
                                            : ctx.engine->BoolAnd(a, b));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "ifthenelse") {
    RETURN_IF_ERROR(ArgCount(ins, 3));
    ASSIGN_OR_RETURN(BatPtr cond, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr then_vals, ctx.Bat(ins.args[1]));
    ASSIGN_OR_RETURN(double else_val, ctx.Num(ins.args[2]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->IfThenElseConst(cond, then_vals, else_val));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "year") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->Year(col));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "flt") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    ASSIGN_OR_RETURN(BatPtr col, ctx.Bat(ins.args[0]));
    ASSIGN_OR_RETURN(BatPtr res, ctx.engine->CastToFloat(col));
    ctx.Set(ins.rets[0], res);
    return Status::Ok();
  }
  if (op == "sync") {
    RETURN_IF_ERROR(ArgCount(ins, 1));
    if (!ctx.IsBat(ins.args[0])) return Status::Ok();  // scalars need no handover
    ASSIGN_OR_RETURN(BatPtr bat, ctx.Bat(ins.args[0]));
    return ctx.engine->Sync(bat);
  }
  return Status::Unsupported(ins.module + "." + ins.op);
}

Status WrapInstrError(const Instr& ins, const Status& st) {
  switch (st.code()) {
    case common::StatusCode::kUnsupported:
    case common::StatusCode::kCancelled:
    case common::StatusCode::kDeadlineExceeded:
      // Verbatim: cancellation and deadline kills are not the instruction's
      // fault, and the service tier dispatches on these codes.
      return st;
    case common::StatusCode::kDeviceLost:
    case common::StatusCode::kResourceExhausted:
      // Add instruction context but keep the code — a device fault that
      // survived every scheduler recovery path must reach the service
      // tier as a device fault, not be laundered into Internal.
      return Status::WithCode(st.code(),
                              ins.module + "." + ins.op + ": " + st.ToString());
    default:
      return Status::Internal(ins.module + "." + ins.op + ": " + st.ToString());
  }
}

bool DataflowEnabled(RunOptions::Mode mode) {
  switch (mode) {
    case RunOptions::Mode::kSequential:
      return false;
    case RunOptions::Mode::kDataflow:
      return true;
    case RunOptions::Mode::kEnv:
      break;
  }
  const char* env = std::getenv("OCELOT_DATAFLOW");
  if (env == nullptr) return true;
  // The escape hatch: common "disabled" spellings all work, any case.
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return v != "0" && v != "false" && v != "off" && v != "no";
}

ExecResult CollectReturns(const Program& program, const std::vector<Value>& vars) {
  ExecResult result;
  result.returns.reserve(program.returns.size());
  for (int var : program.returns) {
    result.returns.push_back(vars[static_cast<std::size_t>(var)]);
  }
  return result;
}

/// The bookkeeping one finished instruction triggers, shared by the ordered
/// and the concurrent executor (the latter calls it under its lock):
/// accounts freshly produced BATs, decrements the liveness counts of every
/// variable the instruction touched and moves dead values into `graveyard`
/// — the caller destroys them outside any lock, which is where heap-death
/// listeners reap device-cache entries mid-query.
void AccountAndRelease(const Program& program, const Dataflow& dag, int i,
                       std::vector<Value>* vars, std::vector<int>* uses,
                       DataflowStats* stats, int* live_bats,
                       std::vector<Value>* graveyard) {
  const Instr& ins = program.instrs[static_cast<std::size_t>(i)];
  for (int ret : ins.rets) {
    if (std::holds_alternative<cstore::BatPtr>((*vars)[static_cast<std::size_t>(ret)])) {
      stats->total_bat_vars += 1;
      *live_bats += 1;
    }
  }
  stats->peak_live_bats = std::max(stats->peak_live_bats, *live_bats);
  for (int v : dag.touched[static_cast<std::size_t>(i)]) {
    auto idx = static_cast<std::size_t>(v);
    if (--(*uses)[idx] != 0 || dag.returned[idx]) continue;
    if (std::holds_alternative<cstore::BatPtr>((*vars)[idx])) {
      *live_bats -= 1;
      stats->released_early += 1;
    }
    graveyard->push_back(std::move((*vars)[idx]));
    (*vars)[idx] = Value{};
  }
  stats->executed += 1;
}

/// Shared state of the concurrent dataflow executor. Workers (thread-pool
/// lanes) pull ready instructions from `ready`; a finished instruction
/// unblocks its successors.
///
/// Error contract: the run reports exactly the error sequential
/// interpretation would — the lowest-index instruction that fails with all
/// lower-index instructions succeeding. After a failure, instructions
/// *below* the failing index stay eligible (sequential would have executed
/// them first, and one of them may fail with a lower index yet); ready
/// instructions above it are never issued. Successors of a failed
/// instruction are unreachable anyway (their index is higher).
struct ConcurrentRun {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  std::vector<int> npreds;
  std::vector<int> uses;
  int inflight = 0;
  int first_error = std::numeric_limits<int>::max();
  Status error = Status::Ok();
  int live_bats = 0;
  int cur_parallel = 0;

  /// Position in `ready` of the next issuable instruction (index below the
  /// first known error), -1 if none. Call with `mu` held.
  int Eligible() const {
    for (std::size_t at = 0; at < ready.size(); ++at) {
      if (ready[at] < first_error) return static_cast<int>(at);
    }
    return -1;
  }
};

}  // namespace

Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                       Session* session, const RunOptions& options) {
  std::vector<Value> vars = program.init;
  vars.resize(static_cast<std::size_t>(program.nvars));
  EvalCtx ctx{&catalog, session->engine(), &vars};

  if (options.stats != nullptr) *options.stats = DataflowStats{};

  if (!DataflowEnabled(options.mode) || program.instrs.empty()) {
    // Classic operator-at-a-time interpretation: every intermediate stays
    // live in `vars` until the program ends.
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
      const Instr& ins = program.instrs[i];
      // Cooperative cancellation boundary: a cancelled or over-deadline
      // query stops before the next operator, leaving no half-built state
      // (every completed instruction's results are whole).
      if (options.cancel != nullptr) RETURN_IF_ERROR(options.cancel->Check());
      Status st = ExecInstr(ctx, ins);
      if (!st.ok()) return WrapInstrError(ins, st);
      if (options.after_instr) options.after_instr(static_cast<int>(i));
    }
    return CollectReturns(program, vars);
  }

  const Dataflow dag = AnalyzeDataflow(program);
  const int n = dag.instructions();
  common::VirtualClock* clock = session->clock();
  const common::Nanos t0 = clock->Now();
  std::vector<common::Nanos> costs(static_cast<std::size_t>(n), 0);
  DataflowStats stats;

  common::ThreadPool& pool = common::ThreadPool::Global();
  const bool concurrent =
      session->engine()->concurrency_safe() && pool.threads() > 1 && n > 1;
  stats.parallel = concurrent;

  if (!concurrent) {
    // Ordered dataflow: engines without a concurrency contract (or a
    // one-lane pool) execute in program order — deterministic by
    // construction — but still release each variable at its last use and
    // get the DAG's critical-path billing below.
    int live_bats = 0;
    std::vector<int> uses = dag.use_count;
    for (int i = 0; i < n; ++i) {
      const Instr& ins = program.instrs[static_cast<std::size_t>(i)];
      if (options.cancel != nullptr) RETURN_IF_ERROR(options.cancel->Check());
      common::Nanos c0 = clock->Now();
      Status st = ExecInstr(ctx, ins);
      if (!st.ok()) return WrapInstrError(ins, st);
      // Release work (it can flush a device queue) bills to the
      // instruction that killed the variable.
      std::vector<Value> graveyard;
      AccountAndRelease(program, dag, i, &vars, &uses, &stats, &live_bats,
                        &graveyard);
      graveyard.clear();
      costs[static_cast<std::size_t>(i)] = clock->Now() - c0;
      stats.peak_parallelism = 1;
      if (options.after_instr) options.after_instr(i);
    }
  } else {
    ConcurrentRun ex;
    ex.npreds.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ex.npreds[static_cast<std::size_t>(i)] =
          static_cast<int>(dag.preds[static_cast<std::size_t>(i)].size());
      if (ex.npreds[static_cast<std::size_t>(i)] == 0) ex.ready.push_back(i);
    }
    ex.uses = dag.use_count;

    auto worker = [&](int) {
      std::unique_lock<std::mutex> lock(ex.mu);
      for (;;) {
        // Wake when there is an issuable instruction or nothing is in
        // flight (nothing in flight + nothing issuable == the run is over:
        // with an acyclic DAG some unfinished instruction is always ready
        // or running, unless everything left sits above the first error).
        ex.cv.wait(lock, [&] { return ex.Eligible() >= 0 || ex.inflight == 0; });
        int at = ex.Eligible();
        if (at < 0) {
          if (ex.inflight == 0) return;
          continue;  // another worker claimed the instruction; sleep again
        }
        int i = ex.ready[static_cast<std::size_t>(at)];
        ex.ready.erase(ex.ready.begin() + at);
        ex.inflight += 1;
        ex.cur_parallel += 1;
        stats.peak_parallelism = std::max(stats.peak_parallelism, ex.cur_parallel);
        lock.unlock();

        const Instr& ins = program.instrs[static_cast<std::size_t>(i)];
        common::Nanos c0 = clock->Now();
        // Cancellation boundary at instruction claim: a cancelled query's
        // remaining instructions fail here and flow through the
        // first-error machinery, so concurrent lanes drain deterministically.
        Status st = options.cancel != nullptr ? options.cancel->Check()
                                              : Status::Ok();
        if (st.ok()) st = ExecInstr(ctx, ins);
        std::vector<Value> graveyard;
        lock.lock();
        ex.cur_parallel -= 1;
        if (!st.ok()) {
          if (i < ex.first_error) {
            ex.first_error = i;
            ex.error = WrapInstrError(ins, st);
          }
        } else {
          AccountAndRelease(program, dag, i, &vars, &ex.uses, &stats,
                            &ex.live_bats, &graveyard);
        }
        lock.unlock();
        graveyard.clear();  // dead values die off-lock (listeners may work)
        costs[static_cast<std::size_t>(i)] = clock->Now() - c0;
        lock.lock();
        if (st.ok()) {
          for (int s : dag.succs[static_cast<std::size_t>(i)]) {
            if (--ex.npreds[static_cast<std::size_t>(s)] == 0) {
              ex.ready.push_back(s);
            }
          }
          if (options.after_instr) options.after_instr(i);
        }
        ex.inflight -= 1;
        ex.cv.notify_all();
      }
    };
    pool.ParallelFor(std::min(pool.threads(), n), worker);
    if (ex.first_error != std::numeric_limits<int>::max()) return ex.error;
  }

  for (common::Nanos c : costs) stats.serial_sum_ns += c;
  stats.critical_path_ns = CriticalPath(dag, costs);
  // Bill the makespan of the dependency DAG: independent instructions are
  // modeled as overlapped (the dataflow analogue of the Scheduler's
  // per-fragment makespan merge), however many host threads actually ran
  // them. Exception: a single-device Ocelot session's clock *is* the
  // context clock the device timelines re-anchor on every Finish — and one
  // simulated device executes operators serially anyway — so its
  // device-timeline billing stands untouched (the stats still expose the
  // DAG numbers).
  bool clock_is_device_anchored = session->ocl_context() != nullptr &&
                                  clock == session->ocl_context()->clock();
  if (!clock_is_device_anchored) {
    clock->Deduct(clock->Now() - t0);
    clock->AdvanceTo(t0 + stats.critical_path_ns);
  }
  if (options.stats != nullptr) *options.stats = stats;
  return CollectReturns(program, vars);
}

Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                       Session* session) {
  return Run(program, catalog, session, RunOptions{});
}

}  // namespace mal
