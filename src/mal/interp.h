#ifndef OCELOT_MAL_INTERP_H_
#define OCELOT_MAL_INTERP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/vclock.h"
#include "cstore/catalog.h"
#include "cstore/engine.h"
#include "cstore/registry.h"
#include "mal/program.h"

namespace ocelot {
class OcelotEngine;
}
namespace ocl {
class Context;
}

namespace mal {

/// The execution configurations of the paper's evaluation (5.1), plus the
/// multi-device scheduler this reproduction adds and a marker for engines
/// registered from outside this codebase. Kept as a convenience enum over
/// the registry's canonical engine names.
enum class Pipeline {
  kSequential,
  kMitosis,
  kOcelotCpu,
  kOcelotGpu,
  kOcelotMulti,
  /// An externally registered engine resolved by name; it has no paper
  /// label — reports should use Session::label(), which carries the
  /// registry name through instead of mislabeling it "MS".
  kExternal,
};

const char* PipelineName(Pipeline p);

/// The engine-registry name a pipeline resolves to ("seq", "par",
/// "ocelot:cpu", "ocelot:gpu", "ocelot:multi"; "" for kExternal, which
/// only exists resolved from a concrete registry name).
const char* EngineNameFor(Pipeline p);

/// One execution configuration, resolved by name from the global
/// cstore::EngineRegistry: the engine plus whatever runtime state backs it
/// (an OpenCLite context for the Ocelot engines, a session clock for the
/// baselines), sharing one virtual clock with the measurement harness.
class Session {
 public:
  /// Resolves `engine_name` through the registry ("seq", "par",
  /// "ocelot:cpu", "ocelot:gpu", "ocelot:multi", ...). NotFound lists the
  /// registered names on a miss.
  static common::Result<std::unique_ptr<Session>> Open(
      const std::string& engine_name, const cstore::EngineOptions& options = {});

  /// Convenience constructor over the paper's configurations; aborts if the
  /// engine cannot be built (the built-ins always can).
  /// `gpu_model`/`cpu_model` override the GTX460/Xeon presets (benchmarks
  /// scale device memory and driver constants with their data axes).
  static std::unique_ptr<Session> Create(Pipeline pipeline,
                                         const ocl::DeviceModel* gpu_model = nullptr,
                                         const ocl::DeviceModel* cpu_model = nullptr);

  Pipeline pipeline() const { return pipeline_; }
  const std::string& engine_name() const { return engine_name_; }

  /// Human-readable configuration label for bench/report output: the
  /// paper's name for the built-ins ("MS", "MP", "Ocelot/CPU", ...), the
  /// registry name for externally registered engines.
  std::string label() const {
    return pipeline_ == Pipeline::kExternal ? engine_name_ : PipelineName(pipeline_);
  }

  cstore::QueryEngine* engine() { return bundle_->engine(); }

  /// True when plans must be rewritten for the hardware-oblivious operator
  /// set (module swap + sync instructions) before running on this session.
  bool hardware_oblivious() const { return bundle_->hardware_oblivious(); }

  /// The single-device Ocelot engine, when this session wraps exactly one
  /// (null for the baselines and for the multi-device scheduler). Benches
  /// use this for cache/bitmap introspection.
  ocelot::OcelotEngine* ocelot();

  /// The clock all measurements read: Ocelot pipelines share the OpenCLite
  /// context clock (which splices in modeled device time), baselines use
  /// the session's own (MP bills parallel makespans against it) and the
  /// scheduler its makespan-merged clock.
  common::VirtualClock* clock() { return bundle_->clock(); }

  /// The OpenCLite context, when the engine has one (null for baselines).
  ocl::Context* ocl_context() { return bundle_->ocl_context(); }

  /// Drains every device queue of the session and settles the clock
  /// (clFinish analogue); no-op for host-resident engines.
  common::Status FinishDevices() { return bundle_->Finish(); }

 private:
  Session() = default;
  Pipeline pipeline_ = Pipeline::kSequential;
  std::string engine_name_;
  std::unique_ptr<cstore::EngineBundle> bundle_;
};

/// Execution result: the values of the program's return variables.
struct ExecResult {
  std::vector<Value> returns;
};

/// Introspection of one dataflow-mode program run (all zero after a
/// sequential-mode run). Costs are per-instruction session-clock deltas;
/// the clock is advanced by critical_path_ns, not serial_sum_ns — the
/// dataflow model bills independent branches as overlapped.
struct DataflowStats {
  common::Nanos critical_path_ns = 0;  ///< billed virtual makespan
  common::Nanos serial_sum_ns = 0;     ///< what operator-at-a-time would bill
  int executed = 0;                    ///< instructions run
  int released_early = 0;   ///< variables released before program end
  int total_bat_vars = 0;   ///< variables that ever held a BAT
  int peak_live_bats = 0;   ///< max BAT-holding variables live at once
  int peak_parallelism = 0; ///< max instructions in flight concurrently
  bool parallel = false;    ///< ran on the concurrent executor (engine
                            ///< concurrency-safe and pool has >1 lane)
};

/// Per-run knobs of the interpreter (tests and benches; Run() without
/// options follows OCELOT_DATAFLOW).
struct RunOptions {
  enum class Mode {
    kEnv,         ///< dataflow unless OCELOT_DATAFLOW=0 (the escape hatch)
    kSequential,  ///< force classic operator-at-a-time interpretation
    kDataflow,    ///< force the dataflow executor
  };
  Mode mode = Mode::kEnv;
  /// Filled with the run's dataflow introspection when non-null.
  DataflowStats* stats = nullptr;
  /// Test probe: called after instruction `i` finished and the variables it
  /// killed were released (serialized under the executor lock in parallel
  /// mode). Mid-query memory observations hook here.
  std::function<void(int)> after_instr;
  /// Cooperative cancellation/deadline token, checked at instruction
  /// boundaries by every executor (serial, ordered dataflow, concurrent).
  /// A tripped token stops the run with kCancelled / kDeadlineExceeded
  /// before the next operator starts — completed instructions are never
  /// half-built, so cancellation can't corrupt shared state. Not owned;
  /// must outlive the run. Null disables the checks.
  const common::CancelToken* cancel = nullptr;
};

/// The MAL interpreter (MonetDB's execution layer in miniature). Column
/// bindings resolve against the catalog; operator calls dispatch to the
/// session's engine.
///
/// By default programs execute in **dataflow mode** (MonetDB's dataflow
/// optimizer in miniature — the "MP = mitosis + dataflow" of the paper's
/// baseline): instructions run as their operands become ready, concurrently
/// on common::ThreadPool when the engine's concurrency contract allows it
/// (QueryEngine::concurrency_safe; other engines execute serialized in
/// program order), every variable is released the moment its last consumer
/// finished (heap-death listeners then reap device-cache entries
/// mid-query), and the session clock advances by the dependency DAG's
/// *critical path* instead of the instruction sum. Results are
/// bit-identical to sequential interpretation at every OCELOT_THREADS /
/// OCELOT_DATAFLOW setting; OCELOT_DATAFLOW=0 is the escape hatch back to
/// strict operator-at-a-time execution.
common::Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                               Session* session, const RunOptions& options);

common::Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                               Session* session);

}  // namespace mal

#endif  // OCELOT_MAL_INTERP_H_
