#ifndef OCELOT_MAL_INTERP_H_
#define OCELOT_MAL_INTERP_H_

#include <memory>
#include <vector>

#include "common/vclock.h"
#include "cstore/catalog.h"
#include "cstore/engine.h"
#include "mal/program.h"
#include "ocelot/engine.h"
#include "ocl/context.h"

namespace mal {

/// The four execution configurations of the paper's evaluation (5.1).
enum class Pipeline { kSequential, kMitosis, kOcelotCpu, kOcelotGpu };

const char* PipelineName(Pipeline p);

/// One execution configuration: an engine plus (for Ocelot) its OpenCLite
/// context, sharing one virtual clock with the measurement harness.
class Session {
 public:
  /// `gpu_model`/`cpu_model` override the GTX460/Xeon presets (benchmarks
  /// scale device memory and driver constants with their data axes).
  static std::unique_ptr<Session> Create(Pipeline pipeline,
                                         const ocl::DeviceModel* gpu_model = nullptr,
                                         const ocl::DeviceModel* cpu_model = nullptr);

  Pipeline pipeline() const { return pipeline_; }
  cstore::QueryEngine* engine() { return engine_.get(); }
  ocelot::OcelotEngine* ocelot() { return ocelot_; }  // null for baselines
  /// The clock all measurements read: Ocelot pipelines share the OpenCLite
  /// context clock (which splices in modeled device time), baselines use
  /// the session's own (MP bills parallel makespans against it).
  common::VirtualClock* clock() {
    return ocl_ctx_ != nullptr ? ocl_ctx_->clock() : &clock_;
  }
  ocl::Context* ocl_context() { return ocl_ctx_.get(); }

 private:
  Session() = default;
  Pipeline pipeline_ = Pipeline::kSequential;
  common::VirtualClock clock_;
  std::unique_ptr<ocl::Context> ocl_ctx_;
  std::unique_ptr<cstore::QueryEngine> engine_;
  ocelot::OcelotEngine* ocelot_ = nullptr;
};

/// Execution result: the values of the program's return variables.
struct ExecResult {
  std::vector<Value> returns;
};

/// The operator-at-a-time MAL interpreter (MonetDB's execution layer in
/// miniature): materializes every instruction's result before the next
/// starts. Column bindings resolve against the catalog; operator calls
/// dispatch to the session's engine.
common::Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                               Session* session);

}  // namespace mal

#endif  // OCELOT_MAL_INTERP_H_
