#ifndef OCELOT_MAL_INTERP_H_
#define OCELOT_MAL_INTERP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/vclock.h"
#include "cstore/catalog.h"
#include "cstore/engine.h"
#include "cstore/registry.h"
#include "mal/program.h"

namespace ocelot {
class OcelotEngine;
}
namespace ocl {
class Context;
}

namespace mal {

/// The execution configurations of the paper's evaluation (5.1), plus the
/// multi-device scheduler this reproduction adds. Kept as a convenience
/// enum over the registry's canonical engine names.
enum class Pipeline { kSequential, kMitosis, kOcelotCpu, kOcelotGpu, kOcelotMulti };

const char* PipelineName(Pipeline p);

/// The engine-registry name a pipeline resolves to ("seq", "par",
/// "ocelot:cpu", "ocelot:gpu", "ocelot:multi").
const char* EngineNameFor(Pipeline p);

/// One execution configuration, resolved by name from the global
/// cstore::EngineRegistry: the engine plus whatever runtime state backs it
/// (an OpenCLite context for the Ocelot engines, a session clock for the
/// baselines), sharing one virtual clock with the measurement harness.
class Session {
 public:
  /// Resolves `engine_name` through the registry ("seq", "par",
  /// "ocelot:cpu", "ocelot:gpu", "ocelot:multi", ...). NotFound lists the
  /// registered names on a miss.
  static common::Result<std::unique_ptr<Session>> Open(
      const std::string& engine_name, const cstore::EngineOptions& options = {});

  /// Convenience constructor over the paper's configurations; aborts if the
  /// engine cannot be built (the built-ins always can).
  /// `gpu_model`/`cpu_model` override the GTX460/Xeon presets (benchmarks
  /// scale device memory and driver constants with their data axes).
  static std::unique_ptr<Session> Create(Pipeline pipeline,
                                         const ocl::DeviceModel* gpu_model = nullptr,
                                         const ocl::DeviceModel* cpu_model = nullptr);

  Pipeline pipeline() const { return pipeline_; }
  const std::string& engine_name() const { return engine_name_; }
  cstore::QueryEngine* engine() { return bundle_->engine(); }

  /// True when plans must be rewritten for the hardware-oblivious operator
  /// set (module swap + sync instructions) before running on this session.
  bool hardware_oblivious() const { return bundle_->hardware_oblivious(); }

  /// The single-device Ocelot engine, when this session wraps exactly one
  /// (null for the baselines and for the multi-device scheduler). Benches
  /// use this for cache/bitmap introspection.
  ocelot::OcelotEngine* ocelot();

  /// The clock all measurements read: Ocelot pipelines share the OpenCLite
  /// context clock (which splices in modeled device time), baselines use
  /// the session's own (MP bills parallel makespans against it) and the
  /// scheduler its makespan-merged clock.
  common::VirtualClock* clock() { return bundle_->clock(); }

  /// The OpenCLite context, when the engine has one (null for baselines).
  ocl::Context* ocl_context() { return bundle_->ocl_context(); }

  /// Drains every device queue of the session and settles the clock
  /// (clFinish analogue); no-op for host-resident engines.
  void FinishDevices() { bundle_->Finish(); }

 private:
  Session() = default;
  Pipeline pipeline_ = Pipeline::kSequential;
  std::string engine_name_;
  std::unique_ptr<cstore::EngineBundle> bundle_;
};

/// Execution result: the values of the program's return variables.
struct ExecResult {
  std::vector<Value> returns;
};

/// The operator-at-a-time MAL interpreter (MonetDB's execution layer in
/// miniature): materializes every instruction's result before the next
/// starts. Column bindings resolve against the catalog; operator calls
/// dispatch to the session's engine.
common::Result<ExecResult> Run(const Program& program, const cstore::Catalog& catalog,
                               Session* session);

}  // namespace mal

#endif  // OCELOT_MAL_INTERP_H_
