#include "mal/program.h"

#include <algorithm>
#include <sstream>

namespace mal {

namespace {

/// Ops that mutate the BAT behind an argument in place. They order like
/// writers of that argument: `setkey` flips the key property bit, `sync`
/// moves device-authoritative bytes into the host heap and clears Ocelot
/// ownership — concurrent readers would observe the transition.
bool MutatesArgs(const Instr& ins) { return ins.op == "setkey" || ins.op == "sync"; }

void PushUnique(std::vector<int>* v, int x) {
  if (std::find(v->begin(), v->end(), x) == v->end()) v->push_back(x);
}

}  // namespace

Dataflow AnalyzeDataflow(const Program& program) {
  int n = static_cast<int>(program.instrs.size());
  auto nvars = static_cast<std::size_t>(program.nvars);
  Dataflow d;
  d.preds.resize(static_cast<std::size_t>(n));
  d.succs.resize(static_cast<std::size_t>(n));
  d.touched.resize(static_cast<std::size_t>(n));
  d.use_count.assign(nvars, 0);
  d.returned.assign(nvars, 0);
  for (int var : program.returns) d.returned[static_cast<std::size_t>(var)] = 1;

  std::vector<int> writer(nvars, -1);            // last instruction writing v
  std::vector<std::vector<int>> readers(nvars);  // readers since that write
  for (int i = 0; i < n; ++i) {
    const Instr& ins = program.instrs[static_cast<std::size_t>(i)];
    std::vector<int>& preds = d.preds[static_cast<std::size_t>(i)];
    std::vector<int>& touched = d.touched[static_cast<std::size_t>(i)];
    bool mutates = MutatesArgs(ins);
    for (int arg : ins.args) {
      auto v = static_cast<std::size_t>(arg);
      if (writer[v] >= 0) PushUnique(&preds, writer[v]);
      if (mutates) {
        for (int r : readers[v]) PushUnique(&preds, r);
      }
      PushUnique(&touched, arg);
    }
    // Mutating ops become the new "writer" of their arguments only after
    // every argument contributed its edges (an op reading a variable twice
    // must not depend on itself).
    if (mutates) {
      for (int arg : ins.args) {
        auto v = static_cast<std::size_t>(arg);
        writer[v] = i;
        readers[v].clear();
      }
    } else {
      for (int arg : ins.args) readers[static_cast<std::size_t>(arg)].push_back(i);
    }
    for (int ret : ins.rets) {
      auto v = static_cast<std::size_t>(ret);
      if (writer[v] >= 0 && writer[v] != i) PushUnique(&preds, writer[v]);
      for (int r : readers[v]) {
        if (r != i) PushUnique(&preds, r);
      }
      writer[v] = i;
      readers[v].clear();
      PushUnique(&touched, ret);
    }
    std::sort(preds.begin(), preds.end());
    for (int p : preds) d.succs[static_cast<std::size_t>(p)].push_back(i);
    for (int var : touched) d.use_count[static_cast<std::size_t>(var)] += 1;
  }
  return d;
}

common::Nanos CriticalPath(const Dataflow& dataflow,
                           const std::vector<common::Nanos>& costs) {
  // Program order is a topological order (every edge points forward), so a
  // single left-to-right pass computes earliest finish times.
  common::Nanos makespan = 0;
  std::vector<common::Nanos> finish(dataflow.preds.size(), 0);
  for (std::size_t i = 0; i < dataflow.preds.size(); ++i) {
    common::Nanos start = 0;
    for (int p : dataflow.preds[i]) {
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    }
    finish[i] = start + (i < costs.size() ? costs[i] : 0);
    makespan = std::max(makespan, finish[i]);
  }
  return makespan;
}

int ProgramBuilder::NewVar() {
  program_.init.emplace_back();
  return program_.nvars++;
}

int ProgramBuilder::Const(Value v) {
  int var = NewVar();
  program_.init[static_cast<std::size_t>(var)] = std::move(v);
  return var;
}

int ProgramBuilder::Emit(const std::string& module, const std::string& op,
                         std::vector<int> args) {
  int ret = NewVar();
  program_.instrs.push_back({module, op, {ret}, std::move(args)});
  return ret;
}

std::vector<int> ProgramBuilder::EmitMulti(const std::string& module,
                                           const std::string& op,
                                           std::vector<int> args, int nrets) {
  std::vector<int> rets;
  rets.reserve(static_cast<std::size_t>(nrets));
  for (int i = 0; i < nrets; ++i) rets.push_back(NewVar());
  program_.instrs.push_back({module, op, rets, std::move(args)});
  return rets;
}

void ProgramBuilder::EmitVoid(const std::string& module, const std::string& op,
                              std::vector<int> args) {
  program_.instrs.push_back({module, op, {}, std::move(args)});
}

void ProgramBuilder::Return(int var) { program_.returns.push_back(var); }

std::string Program::Explain() const {
  std::ostringstream out;
  out << "function user.query();\n";
  for (const Instr& ins : instrs) {
    out << "    ";
    if (!ins.rets.empty()) {
      out << "(";
      for (std::size_t i = 0; i < ins.rets.size(); ++i) {
        out << (i ? "," : "") << "X_" << ins.rets[i];
      }
      out << ") := ";
    }
    out << ins.module << "." << ins.op << "(";
    for (std::size_t i = 0; i < ins.args.size(); ++i) {
      out << (i ? "," : "") << "X_" << ins.args[i];
    }
    out << ");\n";
  }
  out << "    return";
  for (std::size_t i = 0; i < returns.size(); ++i) {
    out << (i ? "," : " ") << "X_" << returns[i];
  }
  out << ";\nend user.query;\n";
  return out.str();
}

}  // namespace mal
