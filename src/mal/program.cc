#include "mal/program.h"

#include <sstream>

namespace mal {

int ProgramBuilder::NewVar() {
  program_.init.emplace_back();
  return program_.nvars++;
}

int ProgramBuilder::Const(Value v) {
  int var = NewVar();
  program_.init[static_cast<std::size_t>(var)] = std::move(v);
  return var;
}

int ProgramBuilder::Emit(const std::string& module, const std::string& op,
                         std::vector<int> args) {
  int ret = NewVar();
  program_.instrs.push_back({module, op, {ret}, std::move(args)});
  return ret;
}

std::vector<int> ProgramBuilder::EmitMulti(const std::string& module,
                                           const std::string& op,
                                           std::vector<int> args, int nrets) {
  std::vector<int> rets;
  rets.reserve(static_cast<std::size_t>(nrets));
  for (int i = 0; i < nrets; ++i) rets.push_back(NewVar());
  program_.instrs.push_back({module, op, rets, std::move(args)});
  return rets;
}

void ProgramBuilder::EmitVoid(const std::string& module, const std::string& op,
                              std::vector<int> args) {
  program_.instrs.push_back({module, op, {}, std::move(args)});
}

void ProgramBuilder::Return(int var) { program_.returns.push_back(var); }

std::string Program::Explain() const {
  std::ostringstream out;
  out << "function user.query();\n";
  for (const Instr& ins : instrs) {
    out << "    ";
    if (!ins.rets.empty()) {
      out << "(";
      for (std::size_t i = 0; i < ins.rets.size(); ++i) {
        out << (i ? "," : "") << "X_" << ins.rets[i];
      }
      out << ") := ";
    }
    out << ins.module << "." << ins.op << "(";
    for (std::size_t i = 0; i < ins.args.size(); ++i) {
      out << (i ? "," : "") << "X_" << ins.args[i];
    }
    out << ");\n";
  }
  out << "    return";
  for (std::size_t i = 0; i < returns.size(); ++i) {
    out << (i ? "," : " ") << "X_" << returns[i];
  }
  out << ";\nend user.query;\n";
  return out.str();
}

}  // namespace mal
