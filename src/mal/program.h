#ifndef OCELOT_MAL_PROGRAM_H_
#define OCELOT_MAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cstore/bat.h"

namespace mal {

/// A MAL variable/constant value: BATs, 64-bit ints (counts, flags, group
/// cardinalities), doubles (bounds, scalar aggregates) and strings (binding
/// names). Mirrors the value kinds flowing through MonetDB Assembly
/// Language programs in this engine's scope.
using Value =
    std::variant<std::monostate, std::int64_t, double, cstore::BatPtr, std::string>;

inline bool IsNil(const Value& v) { return std::holds_alternative<std::monostate>(v); }

/// One MAL instruction: rets := module.op(args). Args and rets are variable
/// ids; constants are materialized into dedicated variables by the builder.
struct Instr {
  std::string module;
  std::string op;
  std::vector<int> rets;
  std::vector<int> args;
};

/// A MAL program: the operator-at-a-time plan the interpreter executes and
/// the Ocelot query rewriter transforms (paper Fig. 2).
struct Program {
  std::vector<Instr> instrs;
  /// Initial variable bindings (constants baked in by the builder).
  std::vector<Value> init;
  int nvars = 0;
  /// Variables whose values form the result set.
  std::vector<int> returns;

  /// MonetDB EXPLAIN-style rendering.
  std::string Explain() const;
};

/// Convenience builder used by the TPC-H plan generators and the tests.
class ProgramBuilder {
 public:
  /// Introduces a constant variable.
  int Const(Value v);

  /// Appends `module.op(args)` with one result; returns its variable id.
  int Emit(const std::string& module, const std::string& op, std::vector<int> args);

  /// Appends an instruction with `nrets` results.
  std::vector<int> EmitMulti(const std::string& module, const std::string& op,
                             std::vector<int> args, int nrets);

  /// Appends an instruction with no results (e.g. ocelot.sync).
  void EmitVoid(const std::string& module, const std::string& op,
                std::vector<int> args);

  /// Marks a variable as part of the result set.
  void Return(int var);

  Program Build() { return std::move(program_); }

 private:
  int NewVar();
  Program program_;
};

}  // namespace mal

#endif  // OCELOT_MAL_PROGRAM_H_
