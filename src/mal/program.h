#ifndef OCELOT_MAL_PROGRAM_H_
#define OCELOT_MAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/timeline.h"
#include "cstore/bat.h"

namespace mal {

/// A MAL variable/constant value: BATs, 64-bit ints (counts, flags, group
/// cardinalities), doubles (bounds, scalar aggregates) and strings (binding
/// names). Mirrors the value kinds flowing through MonetDB Assembly
/// Language programs in this engine's scope.
using Value =
    std::variant<std::monostate, std::int64_t, double, cstore::BatPtr, std::string>;

inline bool IsNil(const Value& v) { return std::holds_alternative<std::monostate>(v); }

/// One MAL instruction: rets := module.op(args). Args and rets are variable
/// ids; constants are materialized into dedicated variables by the builder.
struct Instr {
  std::string module;
  std::string op;
  std::vector<int> rets;
  std::vector<int> args;
};

/// A MAL program: the operator-at-a-time plan the interpreter executes and
/// the Ocelot query rewriter transforms (paper Fig. 2).
struct Program {
  std::vector<Instr> instrs;
  /// Initial variable bindings (constants baked in by the builder).
  std::vector<Value> init;
  int nvars = 0;
  /// Variables whose values form the result set.
  std::vector<int> returns;

  /// MonetDB EXPLAIN-style rendering.
  std::string Explain() const;
};

/// The dependency structure of a Program, derived purely from its args/rets
/// variable ids: the instruction DAG the dataflow executor schedules, plus
/// the liveness bookkeeping that lets it release a variable's value the
/// moment its last consumer finished (so heap-death listeners can reap
/// device-cache entries mid-query instead of at program end).
///
/// Edge rules (instruction indices; every predecessor precedes its
/// successor in program order, so program order is a topological order):
///  * read-after-write — an instruction depends on the producer of each of
///    its argument variables;
///  * mutation ordering — ops that mutate the BAT behind an argument in
///    place (`setkey` flips a property bit, `sync` materializes device
///    results into the host heap) act as *writers* of that argument: they
///    wait for every earlier reader, and every later toucher waits for
///    them. Everything else may share arguments freely;
///  * write-after-read/write — a re-written variable (not produced by the
///    ProgramBuilder, but legal) waits for every earlier toucher.
///
/// Mutation ordering is tracked per *variable id*, not per runtime BAT
/// identity (analysis never sees values). Plans must therefore only mutate
/// variables whose BAT is not aliased by an unrelated live variable —
/// which builder-produced plans satisfy: `setkey` is applied to fresh
/// operator outputs, and `sync` targets are only consumed again through
/// the synced variable itself (or run on serialized engines anyway).
struct Dataflow {
  /// preds[i] / succs[i]: dependency edges of instruction i (deduplicated,
  /// ascending).
  std::vector<std::vector<int>> preds;
  std::vector<std::vector<int>> succs;
  /// touched[i]: distinct variable ids instruction i reads, writes or
  /// mutates. The executor decrements use_count[v] for each once i
  /// finished; the variable dies at zero.
  std::vector<std::vector<int>> touched;
  /// use_count[v]: number of instructions touching variable v (0 for
  /// constants no instruction consumes).
  std::vector<int> use_count;
  /// returned[v]: v carries a result of the program — never released.
  std::vector<char> returned;

  int instructions() const { return static_cast<int>(preds.size()); }
};

/// Derives the dependency DAG and liveness table of `program`. Pure
/// bookkeeping over variable ids; does not inspect values.
Dataflow AnalyzeDataflow(const Program& program);

/// The makespan of executing the DAG with unlimited parallelism: the cost
/// of the most expensive dependency chain ("critical path"). `costs` holds
/// one per-instruction duration. This is the virtual time the dataflow
/// executor bills for a program run — the analogue of the Scheduler's
/// per-fragment makespan merge, one level up.
common::Nanos CriticalPath(const Dataflow& dataflow,
                           const std::vector<common::Nanos>& costs);

/// Convenience builder used by the TPC-H plan generators and the tests.
class ProgramBuilder {
 public:
  /// Introduces a constant variable.
  int Const(Value v);

  /// Appends `module.op(args)` with one result; returns its variable id.
  int Emit(const std::string& module, const std::string& op, std::vector<int> args);

  /// Appends an instruction with `nrets` results.
  std::vector<int> EmitMulti(const std::string& module, const std::string& op,
                             std::vector<int> args, int nrets);

  /// Appends an instruction with no results (e.g. ocelot.sync).
  void EmitVoid(const std::string& module, const std::string& op,
                std::vector<int> args);

  /// Marks a variable as part of the result set.
  void Return(int var);

  Program Build() { return std::move(program_); }

 private:
  int NewVar();
  Program program_;
};

}  // namespace mal

#endif  // OCELOT_MAL_PROGRAM_H_
