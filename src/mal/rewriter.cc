#include "mal/rewriter.h"

#include <algorithm>
#include <vector>

namespace mal {

Program RewriteForOcelot(const Program& program) {
  Program out = program;
  for (Instr& ins : out.instrs) {
    // bat.bind stays with the storage layer; everything else has an Ocelot
    // drop-in replacement in this engine's scope.
    if (ins.module != "bat") ins.module = "ocelot";
  }
  // One sync per distinct returned variable: a variable returned twice
  // needs (and gets) exactly one ownership handover — a duplicate would be
  // a pure serialization point in the dataflow DAG (sync mutates its
  // argument, so syncs of one variable order behind each other).
  std::vector<int> synced;
  for (int var : out.returns) {
    if (std::find(synced.begin(), synced.end(), var) != synced.end()) continue;
    synced.push_back(var);
    out.instrs.push_back({"ocelot", "sync", {}, {var}});
  }
  return out;
}

int CountSyncs(const Program& program) {
  int n = 0;
  for (const Instr& ins : program.instrs) {
    if (ins.op == "sync") ++n;
  }
  return n;
}

}  // namespace mal
