#include "mal/rewriter.h"

namespace mal {

Program RewriteForOcelot(const Program& program) {
  Program out = program;
  for (Instr& ins : out.instrs) {
    // bat.bind stays with the storage layer; everything else has an Ocelot
    // drop-in replacement in this engine's scope.
    if (ins.module != "bat") ins.module = "ocelot";
  }
  for (int var : out.returns) {
    out.instrs.push_back({"ocelot", "sync", {}, {var}});
  }
  return out;
}

int CountSyncs(const Program& program) {
  int n = 0;
  for (const Instr& ins : program.instrs) {
    if (ins.op == "sync") ++n;
  }
  return n;
}

}  // namespace mal
