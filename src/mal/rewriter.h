#ifndef OCELOT_MAL_REWRITER_H_
#define OCELOT_MAL_REWRITER_H_

#include "mal/program.h"

namespace mal {

/// The Ocelot query rewriter (paper sections 3.1/3.4): takes a plan built
/// for MonetDB's operators and reroutes every supported operator call to the
/// corresponding Ocelot implementation (module rename, visible in EXPLAIN),
/// then appends an explicit `ocelot.sync` for every returned variable so
/// ownership of device-resident results is handed back to MonetDB before the
/// result set is consumed.
Program RewriteForOcelot(const Program& program);

/// Number of sync instructions in a program (for tests/inspection).
int CountSyncs(const Program& program);

}  // namespace mal

#endif  // OCELOT_MAL_REWRITER_H_
