#include "mal/service.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "mal/engines.h"
#include "mal/rewriter.h"
#include "ocelot/scheduler.h"
#include "ocl/context.h"

namespace mal {

namespace {

int DefaultMaxSessions() {
  if (const char* env = std::getenv("OCELOT_MAX_SESSIONS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 4;
}

}  // namespace

common::Result<std::unique_ptr<QueryService>> QueryService::Open(
    const std::string& engine_name, const cstore::Catalog* catalog,
    const ServiceOptions& options) {
  OCELOT_CHECK(catalog != nullptr) << "QueryService needs a catalog";
  // Probe the engine name once so a typo fails Open with the registry's
  // name list instead of failing every submitted query.
  cstore::EngineRegistry& registry = EnsureEngineRegistry();
  ASSIGN_OR_RETURN(std::unique_ptr<cstore::EngineBundle> probe,
                   registry.Create(engine_name, options.engine_options));
  (void)probe;  // construction-validates; sessions are opened per query
  int slots = static_cast<int>(ocl::AvailableDevices().size());
  return std::unique_ptr<QueryService>(
      new QueryService(engine_name, catalog, options, slots));
}

QueryService::QueryService(std::string engine_name, const cstore::Catalog* catalog,
                           const ServiceOptions& options, int slot_count)
    : engine_name_(std::move(engine_name)),
      catalog_(catalog),
      options_(options),
      arbiter_(slot_count, options.leases_per_slot) {
  int sessions = options.max_sessions >= 1 ? options.max_sessions
                                           : DefaultMaxSessions();
  workers_.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;  // workers finish the queue first, then exit
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<common::Result<ExecResult>> QueryService::Submit(Program program) {
  return Submit(std::move(program), SubmitOptions{});
}

std::future<common::Result<ExecResult>> QueryService::Submit(Program program,
                                                             SubmitOptions options) {
  Job job;
  job.program = std::move(program);
  job.options = std::move(options);
  std::future<common::Result<ExecResult>> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    OCELOT_CHECK(!shutdown_) << "Submit after QueryService destruction began";
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

int QueryService::peak_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_active_;
}

std::uint64_t QueryService::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

DegradationStats QueryService::degradation() const {
  DegradationStats s;
  s.retries = agg_retries_.load(std::memory_order_relaxed);
  s.quarantines = agg_quarantines_.load(std::memory_order_relaxed);
  s.fallbacks = agg_fallbacks_.load(std::memory_order_relaxed);
  s.deadline_kills = agg_deadline_kills_.load(std::memory_order_relaxed);
  s.cancel_kills = agg_cancel_kills_.load(std::memory_order_relaxed);
  s.failures = agg_failures_.load(std::memory_order_relaxed);
  return s;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      active_ += 1;
      peak_active_ = std::max(peak_active_, active_);
    }
    common::Result<ExecResult> result =
        RunOne(std::move(job.program), job.options);
    {
      // Account *before* fulfilling the promise: a caller that observed its
      // future resolve must see the query counted.
      std::lock_guard<std::mutex> lock(mu_);
      active_ -= 1;
      completed_ += 1;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
    job.promise.set_value(std::move(result));
  }
}

common::Result<ExecResult> QueryService::RunOne(Program program,
                                                const SubmitOptions& options) {
  // A fresh session per query: own engine, own simulated contexts, own
  // clocks, cold calibration. Queries never share mutable engine state —
  // the whole reason the serial-vs-concurrent bit-identity contract holds.
  common::Result<ExecResult> result = [&]() -> common::Result<ExecResult> {
    ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                     Session::Open(engine_name_, options_.engine_options));
    ocelot::Scheduler* sched =
        dynamic_cast<ocelot::Scheduler*>(session->engine());
    if (sched != nullptr) {
      sched->set_slot_arbiter(&arbiter_);
      if (options_.static_partition) sched->set_static_partition(true);
    }
    if (session->hardware_oblivious()) program = RewriteForOcelot(program);

    // The deadline is armed here — at dequeue — not at Submit: queue wait
    // under admission control is the service's doing, not the query's, and
    // must not eat the query's execution budget.
    std::shared_ptr<common::CancelToken> token = options.cancel;
    if (options.deadline.count() > 0) {
      if (token == nullptr) token = std::make_shared<common::CancelToken>();
      token->SetDeadlineAfter(options.deadline);
    }
    RunOptions run_options;
    run_options.cancel = token.get();

    common::Result<ExecResult> r =
        Run(program, *catalog_, session.get(), run_options);

    // Per-query fault-recovery counters come straight off the scheduler:
    // the session is query-private, so its totals are this query's story.
    DegradationStats q;
    if (sched != nullptr) {
      ocelot::FaultStats fs = sched->fault_stats();
      q.retries = fs.retries;
      q.quarantines = fs.quarantines;
      q.fallbacks = fs.fallbacks;
    }
    if (!r.ok()) {
      switch (r.status().code()) {
        case common::StatusCode::kDeadlineExceeded:
          q.deadline_kills = 1;
          break;
        case common::StatusCode::kCancelled:
          q.cancel_kills = 1;
          break;
        default:
          q.failures = 1;
          break;
      }
    }
    agg_retries_.fetch_add(q.retries, std::memory_order_relaxed);
    agg_quarantines_.fetch_add(q.quarantines, std::memory_order_relaxed);
    agg_fallbacks_.fetch_add(q.fallbacks, std::memory_order_relaxed);
    agg_deadline_kills_.fetch_add(q.deadline_kills, std::memory_order_relaxed);
    agg_cancel_kills_.fetch_add(q.cancel_kills, std::memory_order_relaxed);
    agg_failures_.fetch_add(q.failures, std::memory_order_relaxed);
    if (options.stats != nullptr) *options.stats = q;

    // Drain the device queues deliberately *without* failing the query on a
    // residual drain-time fault: every result BAT was already synced to the
    // host fragment by fragment, so a fault surfacing here cannot have
    // touched the answer (and the recovery ladder handled live faults).
    (void)session->FinishDevices();
    return r;
  }();
  return result;
}

}  // namespace mal
