#ifndef OCELOT_MAL_SERVICE_H_
#define OCELOT_MAL_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "cstore/catalog.h"
#include "cstore/registry.h"
#include "mal/interp.h"
#include "ocelot/slot_arbiter.h"

namespace mal {

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  /// Maximum concurrently executing sessions (the admission-control bound).
  /// <= 0 reads OCELOT_MAX_SESSIONS (default 4). Submissions beyond the
  /// bound queue in arrival order; they are admitted, not rejected — the
  /// bound caps *concurrency*, protecting the host and the device pool from
  /// an unbounded session stampede.
  int max_sessions = 0;

  /// Lease units per physical device slot for this service's SlotArbiter
  /// (<= 0: OCELOT_SLOT_LEASES, default 4; 1 = strictly exclusive devices).
  int leases_per_slot = 0;

  /// Pin every session's Scheduler to static (equal-split) partitioning.
  /// This is the *bit-identity* mode: weighted calibration is seeded from
  /// measured CPU time, which is not bit-reproducible between any two runs
  /// — serial or not — so workloads that must reproduce results bit-exactly
  /// across serial and concurrent execution pin the partition boundaries,
  /// exactly like the dataflow bit-identity tests do. Engines other than
  /// the multi-device scheduler are unaffected.
  bool static_partition = false;

  /// Model overrides passed through to every session's engine factory.
  cstore::EngineOptions engine_options;
};

/// Graceful-degradation counters: how much fault recovery, cancellation and
/// deadline enforcement a query (or the whole service, aggregated) needed.
/// All zero on a healthy run. The first three mirror the scheduler's
/// ocelot::FaultStats (sessions are per-query, so the session totals *are*
/// the query's stats); the rest classify terminal query outcomes.
struct DegradationStats {
  std::uint64_t retries = 0;      ///< operator batches re-run after device faults
  std::uint64_t quarantines = 0;  ///< devices quarantined mid-query
  std::uint64_t fallbacks = 0;    ///< operators completed on the host engine
  std::uint64_t deadline_kills = 0;  ///< queries ended with kDeadlineExceeded
  std::uint64_t cancel_kills = 0;    ///< queries ended with kCancelled
  std::uint64_t failures = 0;        ///< queries ended with any other error
};

/// Per-submission knobs (Submit without options keeps the old behavior).
struct SubmitOptions {
  /// Execution deadline, armed when the query is *dequeued* — time spent
  /// waiting in the admission queue does not count against it, so one slow
  /// query cannot make every queued successor miss its budget. The
  /// interpreter checks it cooperatively at instruction boundaries; an
  /// over-budget query resolves to kDeadlineExceeded. Zero = no deadline.
  std::chrono::nanoseconds deadline{0};
  /// Caller-held cancellation handle: Cancel() it any time to stop the
  /// query at its next instruction boundary (future resolves to
  /// kCancelled). Optional; the service creates an internal token when a
  /// deadline needs one.
  std::shared_ptr<common::CancelToken> cancel;
  /// When non-null, receives this query's degradation counters before its
  /// future resolves. Must outlive the query.
  DegradationStats* stats = nullptr;
};

/// A concurrent query service: N sessions of one engine configuration
/// executing MAL programs over one shared read-only cstore::Catalog.
///
/// This is the paper's missing other half at system scale: the
/// hardware-oblivious operators parallelize one query across devices
/// (intra-query), the service runs many such queries at once (inter-query)
/// — and the two compose, because every session runs the same per-query
/// machinery it would run standalone, over shared process-wide resources:
///
///  * the **catalog** is shared read-only (see the Catalog thread-safety
///    contract) — zero copies, zero locks on the read path;
///  * the **host thread pool** (common::ThreadPool::Global()) is shared by
///    every session's dataflow lanes and scheduler fragments — concurrent
///    ParallelFor batches interleave on the one lane set instead of
///    oversubscribing the host with per-session pools;
///  * the machine's **physical device slots** are shared through a
///    per-service ocelot::SlotArbiter — each session's Scheduler leases the
///    slots of its partition plan per operator batch, so devices
///    time-share fairly between queries (FIFO, no starvation) instead of
///    being monopolized for a whole query's runtime.
///
/// Per *query*, a worker opens a fresh Session (own engine, own contexts,
/// own clocks, cold calibration): queries never share mutable engine state,
/// which is what makes the determinism contract extend to concurrency — a
/// workload's results are bit-identical whether its queries run serially or
/// through N concurrent sessions (weighted-partitioning float caveat: see
/// ServiceOptions::static_partition); only wall-clock throughput changes.
///
/// Usage:
///   auto service = *mal::QueryService::Open("ocelot:multi", &db.catalog);
///   auto f = service->Submit(*tpch::BuildQuery(3, db));
///   auto result = f.get();   // Result<ExecResult>
///
/// Submit is thread-safe and non-blocking; plans are rewritten for
/// hardware-oblivious engines internally (callers submit the same plan they
/// would hand to a "seq" session). Destruction drains: every accepted
/// submission completes before the service goes away.
class QueryService {
 public:
  /// Validates `engine_name` against the registry (NotFound on a miss,
  /// listing the registered names) and starts the worker sessions.
  /// `catalog` must outlive the service and be in its read-only serve
  /// phase (no more AddTable/AddColumn).
  static common::Result<std::unique_ptr<QueryService>> Open(
      const std::string& engine_name, const cstore::Catalog* catalog,
      const ServiceOptions& options = {});

  /// Drains outstanding queries, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `program` for execution; the future resolves to the query's
  /// result (or its error — a failing query never takes the service down;
  /// error codes reach the future verbatim, so callers can dispatch on
  /// kDeadlineExceeded / kCancelled / kDeviceLost). Queries are admitted in
  /// submission order; up to max_sessions() execute concurrently.
  std::future<common::Result<ExecResult>> Submit(Program program);

  /// Submit with per-query deadline / cancellation / stats plumbing.
  std::future<common::Result<ExecResult>> Submit(Program program,
                                                 SubmitOptions options);

  /// Blocks until every submission accepted so far has completed.
  void Drain();

  const std::string& engine_name() const { return engine_name_; }
  int max_sessions() const { return static_cast<int>(workers_.size()); }

  /// High-water mark of concurrently executing sessions (tests pin the
  /// admission bound with this).
  int peak_sessions() const;
  /// Queries completed (successfully or not) since Open.
  std::uint64_t completed() const;
  /// Aggregate degradation counters across every completed query.
  DegradationStats degradation() const;

  /// The service's physical-slot arbiter (slot count = the machine's
  /// device count; installed into every session's Scheduler).
  ocelot::SlotArbiter* arbiter() { return &arbiter_; }

 private:
  struct Job {
    Program program;
    SubmitOptions options;
    std::promise<common::Result<ExecResult>> promise;
  };

  QueryService(std::string engine_name, const cstore::Catalog* catalog,
               const ServiceOptions& options, int slot_count);

  void WorkerLoop();
  /// One query, start to finish, on a freshly opened session; fills
  /// `options.stats` and folds the query's counters into the aggregate.
  common::Result<ExecResult> RunOne(Program program, const SubmitOptions& options);

  const std::string engine_name_;
  const cstore::Catalog* const catalog_;
  const ServiceOptions options_;
  ocelot::SlotArbiter arbiter_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a job arrived / shutdown
  std::condition_variable idle_cv_;   // Drain: queue empty and workers idle
  std::deque<Job> queue_;
  bool shutdown_ = false;
  int active_ = 0;
  int peak_active_ = 0;
  std::uint64_t completed_ = 0;

  /// Aggregate degradation counters (atomics: workers fold in their query's
  /// counters off mu_, readers snapshot without blocking the queue).
  std::atomic<std::uint64_t> agg_retries_{0};
  std::atomic<std::uint64_t> agg_quarantines_{0};
  std::atomic<std::uint64_t> agg_fallbacks_{0};
  std::atomic<std::uint64_t> agg_deadline_kills_{0};
  std::atomic<std::uint64_t> agg_cancel_kills_{0};
  std::atomic<std::uint64_t> agg_failures_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mal

#endif  // OCELOT_MAL_SERVICE_H_
