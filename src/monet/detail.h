#ifndef OCELOT_MONET_DETAIL_H_
#define OCELOT_MONET_DETAIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/status.h"
#include "cstore/bat.h"
#include "cstore/engine.h"
#include "monet/hashmap.h"

/// Shared inner-loop helpers of the MonetDB baseline engines (sequential and
/// Mitosis). Internal header — not part of the public API.
namespace monet::detail {

static_assert(common::simd::kInt32Nil == cstore::kIntNil);
static_assert(common::simd::kU32Nil == cstore::kOidNil);

/// cstore op enums -> their simd-layer mirrors (kept separate so common/
/// does not depend on cstore/).
inline common::simd::Arith ToSimdOp(cstore::CalcOp op) {
  switch (op) {
    case cstore::CalcOp::kAdd:
      return common::simd::Arith::kAdd;
    case cstore::CalcOp::kSub:
      return common::simd::Arith::kSub;
    case cstore::CalcOp::kMul:
      return common::simd::Arith::kMul;
    case cstore::CalcOp::kDiv:
      return common::simd::Arith::kDiv;
  }
  return common::simd::Arith::kAdd;
}

inline common::simd::Rel ToSimdOp(cstore::CmpOp op) {
  switch (op) {
    case cstore::CmpOp::kEq:
      return common::simd::Rel::kEq;
    case cstore::CmpOp::kNe:
      return common::simd::Rel::kNe;
    case cstore::CmpOp::kLt:
      return common::simd::Rel::kLt;
    case cstore::CmpOp::kLe:
      return common::simd::Rel::kLe;
    case cstore::CmpOp::kGt:
      return common::simd::Rel::kGt;
    case cstore::CmpOp::kGe:
      return common::simd::Rel::kGe;
  }
  return common::simd::Rel::kEq;
}

/// Build-side index of the hash/semi/anti joins: radix-partitioned when the
/// key count justifies it (and the SIMD layer is not forced scalar — the
/// OCELOT_SCALAR_KERNELS escape hatch reverts to the chained build), the
/// classic chained table otherwise. Both enumerate the matches of a key in
/// descending position order, so the choice never changes a result bit.
class JoinIndex {
 public:
  explicit JoinIndex(std::span<const std::int32_t> keys) {
    if (RadixHash::ShouldUse(keys.size())) {
      radix_.emplace(keys);
    } else {
      chained_.emplace(keys);
    }
  }

  template <typename Fn>
  void ForEachMatch(std::int32_t key, Fn&& fn) const {
    if (radix_.has_value()) {
      radix_->ForEachMatch(key, fn);
    } else {
      chained_->ForEachMatch(key, fn);
    }
  }

  bool Contains(std::int32_t key) const {
    return radix_.has_value() ? radix_->Contains(key) : chained_->Contains(key);
  }

  void PrefetchBucket(std::int32_t key) const {
    if (radix_.has_value()) {
      radix_->PrefetchBucket(key);
    } else {
      chained_->PrefetchBucket(key);
    }
  }
  void PrefetchEntries(std::int32_t key) const {
    if (radix_.has_value()) {
      radix_->PrefetchEntries(key);
    } else {
      chained_->PrefetchEntries(key);
    }
  }

 private:
  std::optional<ChainedHash> chained_;
  std::optional<RadixHash> radix_;
};

/// Shared probe loop of the int-keyed joins: invokes fn(i) for every left
/// row in order (fn does its own nil handling), with the index structures
/// of the keys `dist` and `2*dist` rows ahead prefetched. Identical visit
/// order to the plain loop, so results are unchanged; only the stalls move.
template <typename Fn>
void ProbeLoop(std::span<const std::int32_t> lv, const JoinIndex& ht, Fn&& fn) {
  const std::size_t n = lv.size();
  if (common::simd::Enabled()) {
    const std::size_t dist = common::simd::PrefetchDistance();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 2 * dist < n && lv[i + 2 * dist] != cstore::kIntNil) {
        ht.PrefetchBucket(lv[i + 2 * dist]);
      }
      if (i + dist < n && lv[i + dist] != cstore::kIntNil) {
        ht.PrefetchEntries(lv[i + dist]);
      }
      fn(i);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

inline common::Status CheckNumeric(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() == cstore::ValType::kOid) {
    return common::Status::InvalidArgument(std::string(what) + " must be int or float");
  }
  return common::Status::Ok();
}

inline common::Status CheckOids(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() != cstore::ValType::kOid) {
    return common::Status::InvalidArgument(std::string(what) + " must be an oid BAT");
  }
  return common::Status::Ok();
}

inline common::Status CheckInts(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() != cstore::ValType::kInt) {
    return common::Status::InvalidArgument(std::string(what) + " must be an int BAT");
  }
  return common::Status::Ok();
}

inline common::Status CheckSameSize(const cstore::BatPtr& a, const cstore::BatPtr& b) {
  if (a->size() != b->size()) {
    return common::Status::InvalidArgument(
        "size mismatch: " + std::to_string(a->size()) + " vs " +
        std::to_string(b->size()));
  }
  return common::Status::Ok();
}

/// Compiled form of a Bound pair for branch-light inner loops.
struct RangePred {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  RangePred(cstore::Bound lo_b, cstore::Bound hi_b) {
    // Half-open adjustment happens in double space; exact for int32 payloads
    // and adequate for float (nextafter on the bound).
    if (!lo_b.unbounded) {
      lo = lo_b.inclusive ? lo_b.value
                          : std::nextafter(lo_b.value,
                                           std::numeric_limits<double>::infinity());
    }
    if (!hi_b.unbounded) {
      hi = hi_b.inclusive ? hi_b.value
                          : std::nextafter(hi_b.value,
                                           -std::numeric_limits<double>::infinity());
    }
  }

  bool Match(std::int32_t v) const {
    if (v == cstore::kIntNil) return false;
    double d = v;
    return d >= lo && d <= hi;
  }
  bool Match(float v) const {
    return v >= lo && v <= hi;  // NaN (nil) fails both compares
  }
};

inline double ApplyCalc(cstore::CalcOp op, double a, double b) {
  switch (op) {
    case cstore::CalcOp::kAdd:
      return a + b;
    case cstore::CalcOp::kSub:
      return a - b;
    case cstore::CalcOp::kMul:
      return a * b;
    case cstore::CalcOp::kDiv:
      return a / b;
  }
  return 0;
}

inline bool ApplyCmp(cstore::CmpOp op, double a, double b) {
  switch (op) {
    case cstore::CmpOp::kEq:
      return a == b;
    case cstore::CmpOp::kNe:
      return a != b;
    case cstore::CmpOp::kLt:
      return a < b;
    case cstore::CmpOp::kLe:
      return a <= b;
    case cstore::CmpOp::kGt:
      return a > b;
    case cstore::CmpOp::kGe:
      return a >= b;
  }
  return false;
}

inline double ValueAt(const cstore::BatPtr& b, std::size_t i) {
  return b->type() == cstore::ValType::kInt ? static_cast<double>(b->ints()[i])
                                            : static_cast<double>(b->floats()[i]);
}

inline bool IsNilAt(const cstore::BatPtr& b, std::size_t i) {
  if (b->type() == cstore::ValType::kInt) return b->ints()[i] == cstore::kIntNil;
  return std::isnan(b->floats()[i]);
}

inline cstore::BatPtr OidsFromVector(const std::vector<cstore::oid_t>& oids) {
  cstore::BatPtr out = cstore::Bat::MakeOid(oids.size());
  std::copy(oids.begin(), oids.end(), out->oids().begin());
  out->set_sorted(true);
  out->set_key(true);
  out->set_nonil(true);
  return out;
}

}  // namespace monet::detail

#endif  // OCELOT_MONET_DETAIL_H_
