#ifndef OCELOT_MONET_DETAIL_H_
#define OCELOT_MONET_DETAIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "cstore/bat.h"
#include "cstore/engine.h"

/// Shared inner-loop helpers of the MonetDB baseline engines (sequential and
/// Mitosis). Internal header — not part of the public API.
namespace monet::detail {

inline common::Status CheckNumeric(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() == cstore::ValType::kOid) {
    return common::Status::InvalidArgument(std::string(what) + " must be int or float");
  }
  return common::Status::Ok();
}

inline common::Status CheckOids(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() != cstore::ValType::kOid) {
    return common::Status::InvalidArgument(std::string(what) + " must be an oid BAT");
  }
  return common::Status::Ok();
}

inline common::Status CheckInts(const cstore::BatPtr& b, const char* what) {
  if (b == nullptr) return common::Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() != cstore::ValType::kInt) {
    return common::Status::InvalidArgument(std::string(what) + " must be an int BAT");
  }
  return common::Status::Ok();
}

inline common::Status CheckSameSize(const cstore::BatPtr& a, const cstore::BatPtr& b) {
  if (a->size() != b->size()) {
    return common::Status::InvalidArgument(
        "size mismatch: " + std::to_string(a->size()) + " vs " +
        std::to_string(b->size()));
  }
  return common::Status::Ok();
}

/// Compiled form of a Bound pair for branch-light inner loops.
struct RangePred {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  RangePred(cstore::Bound lo_b, cstore::Bound hi_b) {
    // Half-open adjustment happens in double space; exact for int32 payloads
    // and adequate for float (nextafter on the bound).
    if (!lo_b.unbounded) {
      lo = lo_b.inclusive ? lo_b.value
                          : std::nextafter(lo_b.value,
                                           std::numeric_limits<double>::infinity());
    }
    if (!hi_b.unbounded) {
      hi = hi_b.inclusive ? hi_b.value
                          : std::nextafter(hi_b.value,
                                           -std::numeric_limits<double>::infinity());
    }
  }

  bool Match(std::int32_t v) const {
    if (v == cstore::kIntNil) return false;
    double d = v;
    return d >= lo && d <= hi;
  }
  bool Match(float v) const {
    return v >= lo && v <= hi;  // NaN (nil) fails both compares
  }
};

inline double ApplyCalc(cstore::CalcOp op, double a, double b) {
  switch (op) {
    case cstore::CalcOp::kAdd:
      return a + b;
    case cstore::CalcOp::kSub:
      return a - b;
    case cstore::CalcOp::kMul:
      return a * b;
    case cstore::CalcOp::kDiv:
      return a / b;
  }
  return 0;
}

inline bool ApplyCmp(cstore::CmpOp op, double a, double b) {
  switch (op) {
    case cstore::CmpOp::kEq:
      return a == b;
    case cstore::CmpOp::kNe:
      return a != b;
    case cstore::CmpOp::kLt:
      return a < b;
    case cstore::CmpOp::kLe:
      return a <= b;
    case cstore::CmpOp::kGt:
      return a > b;
    case cstore::CmpOp::kGe:
      return a >= b;
  }
  return false;
}

inline double ValueAt(const cstore::BatPtr& b, std::size_t i) {
  return b->type() == cstore::ValType::kInt ? static_cast<double>(b->ints()[i])
                                            : static_cast<double>(b->floats()[i]);
}

inline bool IsNilAt(const cstore::BatPtr& b, std::size_t i) {
  if (b->type() == cstore::ValType::kInt) return b->ints()[i] == cstore::kIntNil;
  return std::isnan(b->floats()[i]);
}

inline cstore::BatPtr OidsFromVector(const std::vector<cstore::oid_t>& oids) {
  cstore::BatPtr out = cstore::Bat::MakeOid(oids.size());
  std::copy(oids.begin(), oids.end(), out->oids().begin());
  out->set_sorted(true);
  out->set_key(true);
  out->set_nonil(true);
  return out;
}

}  // namespace monet::detail

#endif  // OCELOT_MONET_DETAIL_H_
