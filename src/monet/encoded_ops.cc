#include "monet/encoded_ops.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.h"
#include "common/simd.h"

namespace monet::encoded {

using cstore::Bat;
using cstore::Encoding;
using cstore::EncodingInfo;
using cstore::oid_t;
using cstore::ValType;

namespace {

/// Per-dictionary-entry evaluation of the engine's own predicate — the
/// "dictionary-rewritten predicate": one RangePred::Match per distinct
/// value, then the scan compares codes against this table only.
std::vector<std::uint8_t> DictMatchTable(const Bat& col,
                                         const detail::RangePred& pred) {
  const EncodingInfo& info = *col.encoding_info();
  const std::size_t d = info.dict->size();
  std::vector<std::uint8_t> match(d);
  if (col.type() == ValType::kInt) {
    auto v = info.dict->ints();
    for (std::size_t j = 0; j < d; ++j) match[j] = pred.Match(v[j]) ? 1 : 0;
  } else {
    auto v = info.dict->floats();
    for (std::size_t j = 0; j < d; ++j) match[j] = pred.Match(v[j]) ? 1 : 0;
  }
  return match;
}

}  // namespace

ValueCursor::ValueCursor(const Bat& col)
    : info_(col.encoding_info().get()), ro_(col.row_offset()) {
  OCELOT_CHECK(info_ != nullptr) << "ValueCursor over a plain BAT";
  const void* phys = col.physical_data();
  switch (info_->encoding) {
    case Encoding::kDict:
      if (info_->code_width == 1) {
        c8_ = static_cast<const std::uint8_t*>(phys);
      } else {
        c16_ = static_cast<const std::uint16_t*>(phys);
      }
      dict_ = static_cast<const std::uint32_t*>(info_->dict->data());
      break;
    case Encoding::kRle:
      rvals_ = cstore::RleValueBits(phys, *info_);
      rstarts_ = cstore::RleStarts(phys, *info_);
      break;
    default:
      words_ = static_cast<const std::uint32_t*>(phys);
      break;
  }
}

void SelectRange(const Bat& col, const detail::RangePred& pred,
                 std::size_t begin, std::size_t end,
                 std::vector<oid_t>* hits) {
  const EncodingInfo& info = *col.encoding_info();
  const std::size_t ro = col.row_offset();
  switch (info.encoding) {
    case Encoding::kDict: {
      std::vector<std::uint8_t> match = DictMatchTable(col, pred);
      const void* phys = col.physical_data();
      if (info.code_width == 1) {
        auto codes = static_cast<const std::uint8_t*>(phys);
        for (std::size_t i = begin; i < end; ++i) {
          if (match[codes[ro + i]]) hits->push_back(static_cast<oid_t>(i));
        }
      } else {
        auto codes = static_cast<const std::uint16_t*>(phys);
        for (std::size_t i = begin; i < end; ++i) {
          if (match[codes[ro + i]]) hits->push_back(static_cast<oid_t>(i));
        }
      }
      return;
    }
    case Encoding::kRle: {
      // Run-granular: one predicate evaluation per run overlapping the
      // range, then the hit oids are emitted as dense spans — ascending,
      // exactly the plain scan's output.
      const void* phys = col.physical_data();
      const std::uint32_t* vals = cstore::RleValueBits(phys, info);
      const std::uint32_t* starts = cstore::RleStarts(phys, info);
      const std::size_t lo_row = ro + begin;
      const std::size_t hi_row = ro + end;
      std::size_t run = static_cast<std::size_t>(
          std::upper_bound(starts, starts + info.runs,
                           static_cast<std::uint32_t>(lo_row)) -
          starts);
      run = run == 0 ? 0 : run - 1;
      const bool is_int = col.type() == ValType::kInt;
      for (; run < info.runs && starts[run] < hi_row; ++run) {
        const std::size_t run_end =
            run + 1 < info.runs ? starts[run + 1] : info.plain_rows;
        const std::size_t from = std::max<std::size_t>(starts[run], lo_row);
        const std::size_t to = std::min(run_end, hi_row);
        if (from >= to) continue;
        const bool ok = is_int
                            ? pred.Match(std::bit_cast<std::int32_t>(vals[run]))
                            : pred.Match(std::bit_cast<float>(vals[run]));
        if (!ok) continue;
        for (std::size_t r = from; r < to; ++r) {
          hits->push_back(static_cast<oid_t>(r - ro));
        }
      }
      return;
    }
    default: {  // kBitPacked — int-only, nil-free by construction
      // Integer-domain rewrite of the double bounds: for integral v,
      // (double)v in [lo, hi] <=> v in [ceil(lo), floor(hi)].
      common::simd::IntRange r = common::simd::ClampRangeToInt32(pred.lo, pred.hi);
      if (r.empty) return;
      auto words = static_cast<const std::uint32_t*>(col.physical_data());
      for (std::size_t i = begin; i < end; ++i) {
        const std::int32_t v =
            cstore::BitPackedAt(words, info.bit_width, info.base, ro + i);
        if (v >= r.lo && v <= r.hi) hits->push_back(static_cast<oid_t>(i));
      }
      return;
    }
  }
}

void SelectRangeCand(const Bat& col, const detail::RangePred& pred,
                     std::span<const oid_t> cands, std::vector<oid_t>* hits) {
  const EncodingInfo& info = *col.encoding_info();
  switch (info.encoding) {
    case Encoding::kDict: {
      std::vector<std::uint8_t> match = DictMatchTable(col, pred);
      const void* phys = col.physical_data();
      const std::size_t ro = col.row_offset();
      if (info.code_width == 1) {
        auto codes = static_cast<const std::uint8_t*>(phys);
        for (oid_t o : cands) {
          if (match[codes[ro + o]]) hits->push_back(o);
        }
      } else {
        auto codes = static_cast<const std::uint16_t*>(phys);
        for (oid_t o : cands) {
          if (match[codes[ro + o]]) hits->push_back(o);
        }
      }
      return;
    }
    case Encoding::kRle: {
      // Candidates are ascending, so a forward run cursor suffices; the
      // run's predicate verdict is reused until the cursor leaves the run.
      ValueCursor cur(col);
      const bool is_int = col.type() == ValType::kInt;
      std::uint32_t cur_bits = 0;
      bool cur_ok = false;
      bool have = false;
      for (oid_t o : cands) {
        const std::uint32_t bits = cur.Bits(o);
        if (!have || bits != cur_bits) {
          cur_bits = bits;
          cur_ok = is_int ? pred.Match(std::bit_cast<std::int32_t>(bits))
                          : pred.Match(std::bit_cast<float>(bits));
          have = true;
        }
        if (cur_ok) hits->push_back(o);
      }
      return;
    }
    default: {  // kBitPacked
      common::simd::IntRange r = common::simd::ClampRangeToInt32(pred.lo, pred.hi);
      if (r.empty) return;
      const EncodingInfo& bi = info;
      auto words = static_cast<const std::uint32_t*>(col.physical_data());
      const std::size_t ro = col.row_offset();
      for (oid_t o : cands) {
        const std::int32_t v =
            cstore::BitPackedAt(words, bi.bit_width, bi.base, ro + o);
        if (v >= r.lo && v <= r.hi) hits->push_back(o);
      }
      return;
    }
  }
}

bool Gather(const Bat& col, const oid_t* idx, std::size_t n,
            std::uint32_t nil_bits, std::uint32_t* dst) {
  const EncodingInfo& info = *col.encoding_info();
  const std::size_t ro = col.row_offset();
  const void* phys = col.physical_data();
  switch (info.encoding) {
    case Encoding::kDict: {
      auto dict = static_cast<const std::uint32_t*>(info.dict->data());
      if (info.code_width == 1) {
        auto codes = static_cast<const std::uint8_t*>(phys);
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = idx[i] == cstore::kOidNil ? nil_bits : dict[codes[ro + idx[i]]];
        }
      } else {
        auto codes = static_cast<const std::uint16_t*>(phys);
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = idx[i] == cstore::kOidNil ? nil_bits : dict[codes[ro + idx[i]]];
        }
      }
      return true;
    }
    case Encoding::kBitPacked: {
      auto words = static_cast<const std::uint32_t*>(phys);
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = idx[i] == cstore::kOidNil
                     ? nil_bits
                     : static_cast<std::uint32_t>(cstore::BitPackedAt(
                           words, info.bit_width, info.base, ro + idx[i]));
      }
      return true;
    }
    default:
      return false;  // RLE: no O(1) random access; use the decoded twin
  }
}

namespace {

/// Invokes fn(value_bits, count) per maximal run of equal values across rows
/// [begin, end) of an RLE descriptor, in row order.
template <typename Fn>
void ForEachRleRun(const Bat& col, std::size_t begin, std::size_t end, Fn&& fn) {
  const EncodingInfo& info = *col.encoding_info();
  const void* phys = col.physical_data();
  const std::uint32_t* vals = cstore::RleValueBits(phys, info);
  const std::uint32_t* starts = cstore::RleStarts(phys, info);
  const std::size_t lo_row = col.row_offset() + begin;
  const std::size_t hi_row = col.row_offset() + end;
  std::size_t run = static_cast<std::size_t>(
      std::upper_bound(starts, starts + info.runs,
                       static_cast<std::uint32_t>(lo_row)) -
      starts);
  run = run == 0 ? 0 : run - 1;
  for (; run < info.runs && starts[run] < hi_row; ++run) {
    const std::size_t run_end =
        run + 1 < info.runs ? starts[run + 1] : info.plain_rows;
    const std::size_t from = std::max<std::size_t>(starts[run], lo_row);
    const std::size_t to = std::min(run_end, hi_row);
    if (from < to) fn(vals[run], to - from);
  }
}

bool IsNilBits(ValType type, std::uint32_t bits) {
  if (type == ValType::kInt) {
    return std::bit_cast<std::int32_t>(bits) == cstore::kIntNil;
  }
  float f = std::bit_cast<float>(bits);
  return f != f;
}

double BitsToDouble(ValType type, std::uint32_t bits) {
  return type == ValType::kInt
             ? static_cast<double>(std::bit_cast<std::int32_t>(bits))
             : static_cast<double>(std::bit_cast<float>(bits));
}

}  // namespace

double SumRows(const Bat& col, std::size_t begin, std::size_t end) {
  const EncodingInfo& info = *col.encoding_info();
  if (info.encoding == Encoding::kRle) {
    if (col.type() == ValType::kInt && end - begin < (std::size_t{1} << 21)) {
      // Every partial row-order sum is bounded by n * 2^31 < 2^52, so the
      // plain double accumulation was exact — an exact int64 run-at-a-time
      // fold lands on the identical value.
      std::int64_t total = 0;
      ForEachRleRun(col, begin, end, [&](std::uint32_t bits, std::size_t len) {
        const std::int32_t v = std::bit_cast<std::int32_t>(bits);
        if (v != cstore::kIntNil) {
          total += static_cast<std::int64_t>(v) * static_cast<std::int64_t>(len);
        }
      });
      return static_cast<double>(total);
    }
    // Float (or huge) columns: repeat the adds per run — row order and
    // rounding identical to the plain loop, still no decoded twin.
    double acc = 0;
    const ValType type = col.type();
    ForEachRleRun(col, begin, end, [&](std::uint32_t bits, std::size_t len) {
      if (IsNilBits(type, bits)) return;
      const double v = BitsToDouble(type, bits);
      for (std::size_t i = 0; i < len; ++i) acc += v;
    });
    return acc;
  }
  ValueCursor cur(col);
  const ValType type = col.type();
  double acc = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t bits = cur.Bits(i);
    if (!IsNilBits(type, bits)) acc += BitsToDouble(type, bits);
  }
  return acc;
}

double MinRows(const Bat& col, std::size_t begin, std::size_t end) {
  const ValType type = col.type();
  double best = std::numeric_limits<double>::infinity();
  if (col.encoding() == Encoding::kRle) {
    ForEachRleRun(col, begin, end, [&](std::uint32_t bits, std::size_t) {
      if (!IsNilBits(type, bits)) best = std::min(best, BitsToDouble(type, bits));
    });
    return best;
  }
  ValueCursor cur(col);
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t bits = cur.Bits(i);
    if (!IsNilBits(type, bits)) best = std::min(best, BitsToDouble(type, bits));
  }
  return best;
}

double MaxRows(const Bat& col, std::size_t begin, std::size_t end) {
  const ValType type = col.type();
  double best = -std::numeric_limits<double>::infinity();
  if (col.encoding() == Encoding::kRle) {
    ForEachRleRun(col, begin, end, [&](std::uint32_t bits, std::size_t) {
      if (!IsNilBits(type, bits)) best = std::max(best, BitsToDouble(type, bits));
    });
    return best;
  }
  ValueCursor cur(col);
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t bits = cur.Bits(i);
    if (!IsNilBits(type, bits)) best = std::max(best, BitsToDouble(type, bits));
  }
  return best;
}

}  // namespace monet::encoded
