#ifndef OCELOT_MONET_ENCODED_OPS_H_
#define OCELOT_MONET_ENCODED_OPS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cstore/bat.h"
#include "cstore/encoding.h"
#include "monet/detail.h"

/// Native compressed paths of the host engines: select, gather, grouping and
/// aggregation directly over dictionary / RLE / bit-packed images, without
/// materializing the decoded twin. Internal header, like monet/detail.h.
///
/// The determinism contract mirrors the SIMD layer's: every path here must
/// be bit-identical to the plain loop it replaces. Concretely that means
///  - predicates are evaluated with the engine's own RangePred (dictionary
///    entries are tested once each, and code comparison only replaces value
///    comparison where the mapping is a bijection);
///  - value folds preserve exact row order (float addition is not
///    associative); only order-free folds (min/max, int64 sums, counts) may
///    batch a whole RLE run.
/// Operators without a native path fall back to Bat::data()'s decoded twin,
/// which is the same bytes a plain column would have had.
namespace monet::encoded {

/// Monotone row-order reader of an encoded column's logical values as raw
/// 4-byte bit patterns. `Bits(row)` takes rows relative to the descriptor
/// (views included); calls must be non-decreasing for RLE (the run cursor
/// only walks forward) — dictionary and bit-packed access is random-safe,
/// reported by random_ok().
class ValueCursor {
 public:
  explicit ValueCursor(const cstore::Bat& col);

  bool random_ok() const { return info_->encoding != cstore::Encoding::kRle; }

  std::uint32_t Bits(std::size_t row) {
    const std::size_t r = ro_ + row;
    switch (info_->encoding) {
      case cstore::Encoding::kDict:
        return dict_[c8_ != nullptr ? c8_[r] : c16_[r]];
      case cstore::Encoding::kBitPacked:
        return static_cast<std::uint32_t>(cstore::BitPackedAt(
            words_, info_->bit_width, info_->base, r));
      default: {  // kRle
        while (run_ + 1 < info_->runs && rstarts_[run_ + 1] <= r) ++run_;
        return rvals_[run_];
      }
    }
  }

 private:
  const cstore::EncodingInfo* info_;
  std::size_t ro_;  ///< descriptor's first logical row in the column image
  const std::uint8_t* c8_ = nullptr;
  const std::uint16_t* c16_ = nullptr;
  const std::uint32_t* dict_ = nullptr;
  const std::uint32_t* rvals_ = nullptr;
  const std::uint32_t* rstarts_ = nullptr;
  std::size_t run_ = 0;
  const std::uint32_t* words_ = nullptr;
};

/// Full-scan range select over rows [begin, end) of the descriptor:
/// appends matching row indices (relative to the descriptor) in ascending
/// order, exactly like the plain scan. Dictionary entries are tested once
/// each (the rewritten predicate), RLE is run-granular, bit-packed values
/// are tested through an integer-domain rewrite of the bounds.
void SelectRange(const cstore::Bat& col, const detail::RangePred& pred,
                 std::size_t begin, std::size_t end,
                 std::vector<cstore::oid_t>* hits);

/// Candidate-list variant: `cands` are ascending row indices relative to the
/// descriptor (the engines' sorted candidate invariant, which the RLE
/// forward cursor relies on).
void SelectRangeCand(const cstore::Bat& col, const detail::RangePred& pred,
                     std::span<const cstore::oid_t> cands,
                     std::vector<cstore::oid_t>* hits);

/// Native gather (fetchjoin): dst[i] = idx[i] == kOidNil ? nil_bits :
/// value bits at row idx[i]. Returns false (dst untouched) when the format
/// has no random-access path (RLE) — the caller falls back to the twin.
bool Gather(const cstore::Bat& col, const cstore::oid_t* idx, std::size_t n,
            std::uint32_t nil_bits, std::uint32_t* dst);

/// True when Gather has a native path for this column (encoded, not RLE).
inline bool GatherSupported(const cstore::Bat& col) {
  return col.encoded() && col.encoding() != cstore::Encoding::kRle;
}

/// Whole-column fold over rows [begin, end) of the descriptor, replicating
/// the plain engines' loops exactly: double accumulation in row order for
/// Sum (skipping nils), double min/max over non-nil values (+inf / -inf
/// when empty). RLE batches where that is provably bit-identical: min/max
/// are order-free, and int sums fold a run at a time only when the row
/// count guarantees every partial sum is exact in double (< 2^52), so the
/// plain row-order accumulation could never have rounded.
double SumRows(const cstore::Bat& col, std::size_t begin, std::size_t end);
double MinRows(const cstore::Bat& col, std::size_t begin, std::size_t end);
double MaxRows(const cstore::Bat& col, std::size_t begin, std::size_t end);

}  // namespace monet::encoded

#endif  // OCELOT_MONET_ENCODED_OPS_H_
