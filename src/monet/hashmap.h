#ifndef OCELOT_MONET_HASHMAP_H_
#define OCELOT_MONET_HASHMAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace monet {

/// MonetDB-style chained hash index over an int32 column: a bucket array
/// (`head`) plus a per-row collision chain (`next`). Supports duplicate
/// keys; used by the sequential hash join, semi/anti joins and grouping.
class ChainedHash {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  explicit ChainedHash(std::span<const std::int32_t> keys) : keys_(keys) {
    std::size_t buckets = 16;
    while (buckets < keys.size() * 2) buckets <<= 1;
    mask_ = static_cast<std::uint32_t>(buckets - 1);
    head_.assign(buckets, kNone);
    next_.assign(keys.size(), kNone);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      std::uint32_t b = Bucket(keys[i]);
      next_[i] = head_[b];
      head_[b] = static_cast<std::uint32_t>(i);
    }
  }

  /// First candidate position for `key` (callers re-check equality), or kNone.
  std::uint32_t First(std::int32_t key) const { return head_[Bucket(key)]; }
  /// Next position on the same chain.
  std::uint32_t Next(std::uint32_t pos) const { return next_[pos]; }

  /// First position whose key equals `key`, or kNone.
  std::uint32_t FindFirst(std::int32_t key) const {
    for (std::uint32_t p = First(key); p != kNone; p = Next(p)) {
      if (keys_[p] == key) return p;
    }
    return kNone;
  }

  bool Contains(std::int32_t key) const { return FindFirst(key) != kNone; }

 private:
  std::uint32_t Bucket(std::int32_t key) const {
    return common::Mix32(static_cast<std::uint32_t>(key)) & mask_;
  }

  std::span<const std::int32_t> keys_;
  std::uint32_t mask_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> next_;
};

/// Open-addressing map from 64-bit keys to dense 32-bit ids, used by the
/// sequential group-by ((previous group id, value) -> new group id).
class DenseIdMap {
 public:
  static constexpr std::uint32_t kEmptyId = 0xffffffffu;

  explicit DenseIdMap(std::size_t expected) {
    std::size_t buckets = 16;
    while (buckets < expected * 2) buckets <<= 1;
    mask_ = buckets - 1;
    keys_.assign(buckets, kEmptyKey);
    ids_.assign(buckets, kEmptyId);
  }

  /// Returns the id of `key`, assigning `next_id` (and incrementing it) on
  /// first sight. Grows when past 2/3 load.
  std::uint32_t GetOrAssign(std::uint64_t key, std::uint32_t* next_id) {
    if (occupied_ * 3 > keys_.size() * 2) Grow();
    std::size_t b = Probe(key);
    if (ids_[b] == kEmptyId) {
      keys_[b] = key;
      ids_[b] = (*next_id)++;
      ++occupied_;
    }
    return ids_[b];
  }

 private:
  // Keys are (group id << 32 | value bits); all-ones never occurs because
  // group ids stay far below 2^32 - 1.
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  std::size_t Probe(std::uint64_t key) const {
    std::size_t b = common::Mix64(key) & mask_;
    while (ids_[b] != kEmptyId && keys_[b] != key) b = (b + 1) & mask_;
    return b;
  }

  void Grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_ids = std::move(ids_);
    std::size_t buckets = (mask_ + 1) * 2;
    mask_ = buckets - 1;
    keys_.assign(buckets, kEmptyKey);
    ids_.assign(buckets, kEmptyId);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_ids[i] == kEmptyId) continue;
      std::size_t b = Probe(old_keys[i]);
      keys_[b] = old_keys[i];
      ids_[b] = old_ids[i];
    }
  }

  std::size_t mask_;
  std::size_t occupied_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace monet

#endif  // OCELOT_MONET_HASHMAP_H_
