#ifndef OCELOT_MONET_HASHMAP_H_
#define OCELOT_MONET_HASHMAP_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/simd.h"

namespace monet {

/// MonetDB-style chained hash index over an int32 column: a bucket array
/// (`head`) plus a per-row collision chain (`next`). Supports duplicate
/// keys; used by the sequential hash join, semi/anti joins and grouping.
///
/// Capacity is a power of two (>= 2x the key count) indexed by mask, and the
/// bucket function is the full-avalanche murmur3 finalizer (common::Mix32) —
/// both prerequisites for the radix build below, which must agree with this
/// table on bucket semantics. Matches for a key enumerate in descending row
/// position (chains push-front); RadixHash reproduces that order exactly.
class ChainedHash {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  explicit ChainedHash(std::span<const std::int32_t> keys) : keys_(keys) {
    std::size_t buckets = 16;
    while (buckets < keys.size() * 2) buckets <<= 1;
    mask_ = static_cast<std::uint32_t>(buckets - 1);
    head_.assign(buckets, kNone);
    next_.assign(keys.size(), kNone);
    if (common::simd::Enabled() && keys.size() >= 1024) {
      // Batch-hash the keys, then insert with the bucket slot of the row
      // `dist` ahead prefetched — insertion is a read-modify-write of a
      // random `head_` slot, the classic TLB/cache stall of hash builds.
      std::vector<std::uint32_t> bucket(keys.size());
      common::simd::BucketHashInt32(keys.data(), keys.size(), mask_, bucket.data());
      const std::size_t dist = common::simd::PrefetchDistance();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i + dist < keys.size()) common::simd::PrefetchRead(&head_[bucket[i + dist]]);
        std::uint32_t b = bucket[i];
        next_[i] = head_[b];
        head_[b] = static_cast<std::uint32_t>(i);
      }
    } else {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        std::uint32_t b = Bucket(keys[i]);
        next_[i] = head_[b];
        head_[b] = static_cast<std::uint32_t>(i);
      }
    }
  }

  /// First candidate position for `key` (callers re-check equality), or kNone.
  std::uint32_t First(std::int32_t key) const { return head_[Bucket(key)]; }
  /// Next position on the same chain.
  std::uint32_t Next(std::uint32_t pos) const { return next_[pos]; }

  /// Invokes fn(pos) for every position whose key equals `key`, in
  /// descending position order.
  template <typename Fn>
  void ForEachMatch(std::int32_t key, Fn&& fn) const {
    for (std::uint32_t p = First(key); p != kNone; p = Next(p)) {
      if (keys_[p] == key) fn(p);
    }
  }

  /// First position whose key equals `key`, or kNone.
  std::uint32_t FindFirst(std::int32_t key) const {
    for (std::uint32_t p = First(key); p != kNone; p = Next(p)) {
      if (keys_[p] == key) return p;
    }
    return kNone;
  }

  bool Contains(std::int32_t key) const { return FindFirst(key) != kNone; }

  /// Distance-ahead probe pipeline: prefetch the bucket head slot...
  void PrefetchBucket(std::int32_t key) const {
    common::simd::PrefetchRead(&head_[Bucket(key)]);
  }
  /// ...then (once the head line has arrived) the first chain entry.
  void PrefetchEntries(std::int32_t key) const {
    std::uint32_t p = head_[Bucket(key)];
    if (p != kNone) {
      common::simd::PrefetchRead(&keys_[p]);
      common::simd::PrefetchRead(&next_[p]);
    }
  }

 private:
  std::uint32_t Bucket(std::int32_t key) const {
    return common::Mix32(static_cast<std::uint32_t>(key)) & mask_;
  }

  std::span<const std::int32_t> keys_;
  std::uint32_t mask_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> next_;
};

/// Radix-partitioned hash index over an int32 column, equivalent to
/// ChainedHash (same bucket count, same per-key descending match order) but
/// built cache-consciously and laid out for probe locality:
///
///  1. batch-hash every key (vectorized Mix32);
///  2. single-pass histogram over 2^pbits partitions (top hash bits), then
///     scatter (key, pos) entries partition-major — every partition's
///     entries and its ~2x bucket directory segment fit in L2, so the
///     build's random accesses never leave the cache;
///  3. per partition, counting-sort entries into per-bucket compact runs
///     (CSR layout: `starts_[b]..starts_[b+1]` indexes `entries_`),
///     iterating in reverse so equal keys land in descending-position
///     order — bit-compatible with ChainedHash's push-front chains.
///
/// A probe touches exactly two lines in the common case: the bucket offset
/// and the (key,pos)-interleaved entry run. Below kMinKeys the build cost
/// is not worth it and callers should use ChainedHash (see ShouldUse).
class RadixHash {
 public:
  /// Radix pays off once the bucket directory outgrows L2; below this the
  /// chained build is already cache-resident.
  static constexpr std::size_t kMinKeys = 1u << 16;

  static bool ShouldUse(std::size_t nkeys) {
    return common::simd::Enabled() && nkeys >= kMinKeys;
  }

  explicit RadixHash(std::span<const std::int32_t> keys) {
    const std::size_t n = keys.size();
    std::size_t buckets = 16;
    while (buckets < n * 2) buckets <<= 1;
    total_bits_ = static_cast<std::uint32_t>(std::countr_zero(buckets));
    // Aim for <= ~32k entries per partition (a partition's entries plus its
    // bucket-directory segment then fit comfortably in a 256 KB L2).
    std::size_t parts = std::bit_ceil(std::max<std::size_t>(1, n / 32768));
    parts = std::min<std::size_t>(parts, 512);
    pbits_ = static_cast<std::uint32_t>(std::countr_zero(parts));
    if (pbits_ > total_bits_) pbits_ = total_bits_;
    bbits_ = total_bits_ - pbits_;
    low_mask_ = (1u << bbits_) - 1u;

    std::vector<std::uint32_t> hash(n);
    common::simd::HashInt32(keys.data(), n, hash.data());

    // Histogram + scatter: partition-major (key, pos) scratch.
    const std::size_t nparts = std::size_t{1} << pbits_;
    std::vector<std::uint32_t> cursor(nparts + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cursor[PartOf(hash[i]) + 1];
    for (std::size_t p = 1; p <= nparts; ++p) cursor[p] += cursor[p - 1];
    std::vector<std::uint32_t> pstart(cursor);  // immutable partition bounds
    std::vector<Entry> scratch(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch[cursor[PartOf(hash[i])]++] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    hash.clear();
    hash.shrink_to_fit();

    // Per-partition counting sort into the CSR (bucket counts first, one
    // prefix sum over the whole directory, then reverse placement).
    starts_.assign(buckets + 1, 0);
    for (std::size_t e = 0; e < n; ++e) ++starts_[GlobalBucket(scratch[e].key) + 1];
    for (std::size_t b = 1; b <= buckets; ++b) starts_[b] += starts_[b - 1];
    entries_.resize(n);
    std::vector<std::uint32_t> cur(std::size_t{1} << bbits_);
    for (std::size_t p = 0; p < nparts; ++p) {
      const std::size_t seg = p << bbits_;
      for (std::size_t b = 0; b <= low_mask_; ++b) cur[b] = starts_[seg + b];
      // Reverse over the partition's (ascending-position) entries so each
      // bucket run comes out in descending position order.
      for (std::size_t e = pstart[p + 1]; e-- > pstart[p];) {
        std::uint32_t low = GlobalBucket(scratch[e].key) & low_mask_;
        entries_[cur[low]++] = scratch[e];
      }
    }
  }

  /// Invokes fn(pos) for every position whose key equals `key`, in
  /// descending position order (the ChainedHash contract).
  template <typename Fn>
  void ForEachMatch(std::int32_t key, Fn&& fn) const {
    std::uint32_t b = GlobalBucket(key);
    for (std::uint32_t e = starts_[b]; e < starts_[b + 1]; ++e) {
      if (entries_[e].key == key) fn(entries_[e].pos);
    }
  }

  bool Contains(std::int32_t key) const {
    std::uint32_t b = GlobalBucket(key);
    for (std::uint32_t e = starts_[b]; e < starts_[b + 1]; ++e) {
      if (entries_[e].key == key) return true;
    }
    return false;
  }

  void PrefetchBucket(std::int32_t key) const {
    common::simd::PrefetchRead(&starts_[GlobalBucket(key)]);
  }
  void PrefetchEntries(std::int32_t key) const {
    // data() + offset stays valid even when the bucket is empty and the
    // offset equals entries_.size().
    common::simd::PrefetchRead(entries_.data() + starts_[GlobalBucket(key)]);
  }

 private:
  struct Entry {
    std::int32_t key;
    std::uint32_t pos;
  };

  std::uint32_t PartOf(std::uint32_t h) const {
    return pbits_ == 0 ? 0 : h >> (32 - pbits_);
  }
  std::uint32_t GlobalBucket(std::uint32_t h) const {
    return (PartOf(h) << bbits_) | (h & low_mask_);
  }
  std::uint32_t GlobalBucket(std::int32_t key) const {
    return GlobalBucket(common::Mix32(static_cast<std::uint32_t>(key)));
  }

  std::uint32_t total_bits_ = 0;
  std::uint32_t pbits_ = 0;
  std::uint32_t bbits_ = 0;
  std::uint32_t low_mask_ = 0;
  std::vector<std::uint32_t> starts_;
  std::vector<Entry> entries_;
};

/// Open-addressing map from 64-bit keys to dense 32-bit ids, used by the
/// sequential group-by ((previous group id, value) -> new group id).
class DenseIdMap {
 public:
  static constexpr std::uint32_t kEmptyId = 0xffffffffu;

  explicit DenseIdMap(std::size_t expected) {
    std::size_t buckets = 16;
    while (buckets < expected * 2) buckets <<= 1;
    mask_ = buckets - 1;
    keys_.assign(buckets, kEmptyKey);
    ids_.assign(buckets, kEmptyId);
  }

  /// Returns the id of `key`, assigning `next_id` (and incrementing it) on
  /// first sight. Grows when past 2/3 load.
  std::uint32_t GetOrAssign(std::uint64_t key, std::uint32_t* next_id) {
    if (occupied_ * 3 > keys_.size() * 2) Grow();
    std::size_t b = Probe(key);
    if (ids_[b] == kEmptyId) {
      keys_[b] = key;
      ids_[b] = (*next_id)++;
      ++occupied_;
    }
    return ids_[b];
  }

  /// Prefetches the home slot of `key` for a later GetOrAssign. Only a hint:
  /// a Grow() in between moves the slots, which merely wastes the prefetch.
  void Prefetch(std::uint64_t key) const {
    std::size_t b = common::Mix64(key) & mask_;
    common::simd::PrefetchRead(&keys_[b]);
    common::simd::PrefetchRead(&ids_[b]);
  }

 private:
  // Keys are (group id << 32 | value bits); all-ones never occurs because
  // group ids stay far below 2^32 - 1.
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  std::size_t Probe(std::uint64_t key) const {
    std::size_t b = common::Mix64(key) & mask_;
    while (ids_[b] != kEmptyId && keys_[b] != key) b = (b + 1) & mask_;
    return b;
  }

  void Grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_ids = std::move(ids_);
    std::size_t buckets = (mask_ + 1) * 2;
    mask_ = buckets - 1;
    keys_.assign(buckets, kEmptyKey);
    ids_.assign(buckets, kEmptyId);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_ids[i] == kEmptyId) continue;
      std::size_t b = Probe(old_keys[i]);
      keys_[b] = old_keys[i];
      ids_[b] = old_ids[i];
    }
  }

  std::size_t mask_;
  std::size_t occupied_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace monet

#endif  // OCELOT_MONET_HASHMAP_H_
