#include "monet/mitosis.h"

#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timeline.h"

namespace monet {

Slice SliceOf(std::size_t n, int i, int slices) {
  OCELOT_CHECK(i >= 0 && i < slices);
  std::size_t per = (n + static_cast<std::size_t>(slices) - 1) /
                    static_cast<std::size_t>(slices);
  std::size_t begin = static_cast<std::size_t>(i) * per;
  std::size_t end = begin + per;
  if (begin > n) begin = n;
  if (end > n) end = n;
  return {begin, end};
}

common::Nanos ParallelFor(common::VirtualClock* clock, int lanes, int tasks,
                          const std::function<void(int)>& task) {
  // Tasks execute concurrently on the host thread pool (they write disjoint
  // slices by construction). Each task's duration seeds the *virtual* cost
  // model below, measured as thread CPU time so that host oversubscription
  // cannot inflate the model with scheduling gaps — serial execution
  // measures the same thing it always did.
  std::vector<common::Nanos> durations(static_cast<std::size_t>(tasks));
  common::Stopwatch total;
  common::ThreadPool::Global().ParallelFor(tasks, [&](int i) {
    common::CpuStopwatch sw;
    task(i);
    durations[static_cast<std::size_t>(i)] = sw.ElapsedNanos();
  });
  common::Nanos real = total.ElapsedNanos();

  // Bill the makespan of list-scheduling the measured durations onto the
  // *virtual* core count (the engine's `cores_`, not the pool size): the
  // model stays hardware-oblivious no matter how many host threads ran.
  common::Timeline timeline(lanes);
  common::Interval iv = timeline.ScheduleBatch(0, durations);

  clock->Deduct(real);
  clock->AdvanceTo(clock->Now() + iv.duration());
  return iv.duration();
}

}  // namespace monet
