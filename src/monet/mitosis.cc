#include "monet/mitosis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timeline.h"

namespace monet {

Slice SliceOf(std::size_t n, int i, int slices) {
  OCELOT_CHECK(i >= 0 && i < slices);
  std::size_t per = (n + static_cast<std::size_t>(slices) - 1) /
                    static_cast<std::size_t>(slices);
  std::size_t begin = static_cast<std::size_t>(i) * per;
  std::size_t end = begin + per;
  if (begin > n) begin = n;
  if (end > n) end = n;
  return {begin, end};
}

std::vector<Slice> WeightedSlices(std::size_t n, const std::vector<double>& weights) {
  const std::size_t parts = weights.size();
  OCELOT_CHECK(parts > 0) << "weighted slicing needs at least one part";
  OCELOT_CHECK(n >= parts) << "cannot cut " << n << " rows into " << parts
                           << " non-empty slices";

  // Sanitize: a weight that is not a positive finite number (or an all-zero
  // set) makes the whole vector unusable — fall back to an equal split.
  double total = 0;
  bool usable = true;
  for (double w : weights) {
    if (!std::isfinite(w) || w <= 0) {
      usable = false;
      break;
    }
    total += w;
  }
  std::vector<double> w = usable && total > 0 ? weights
                                              : std::vector<double>(parts, 1.0);
  if (!usable || total <= 0) total = static_cast<double>(parts);

  // Largest-remainder apportionment: floor every ideal share, then hand the
  // leftover rows to the largest fractional parts (ties broken by index, so
  // the result is deterministic for identical inputs).
  std::vector<std::size_t> share(parts);
  std::vector<std::pair<double, std::size_t>> frac(parts);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    double ideal = static_cast<double>(n) * w[i] / total;
    share[i] = std::min(static_cast<std::size_t>(ideal), n);
    frac[i] = {ideal - static_cast<double>(share[i]), i};
    assigned += share[i];
  }
  std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t k = 0; assigned < n; k = (k + 1) % parts) {
    share[frac[k].second] += 1;
    assigned += 1;
  }
  while (assigned > n) {  // floating-point paranoia: shave the largest share
    auto it = std::max_element(share.begin(), share.end());
    *it -= 1;
    assigned -= 1;
  }

  // Never emit an empty fragment: a starved device takes one row from the
  // fattest share (which has > 1 because n >= parts).
  for (std::size_t i = 0; i < parts; ++i) {
    while (share[i] == 0) {
      auto it = std::max_element(share.begin(), share.end());
      OCELOT_CHECK(*it > 1);
      *it -= 1;
      share[i] += 1;
    }
  }

  std::vector<Slice> slices(parts);
  std::size_t at = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    slices[i] = {at, at + share[i]};
    at += share[i];
  }
  OCELOT_CHECK(at == n);
  return slices;
}

common::Nanos ParallelFor(common::VirtualClock* clock, int lanes, int tasks,
                          const std::function<void(int)>& task) {
  // Tasks execute concurrently on the host thread pool (they write disjoint
  // slices by construction). Each task's duration seeds the *virtual* cost
  // model below, measured as thread CPU time so that host oversubscription
  // cannot inflate the model with scheduling gaps — serial execution
  // measures the same thing it always did.
  std::vector<common::Nanos> durations(static_cast<std::size_t>(tasks));
  common::Stopwatch total;
  common::ThreadPool::Global().ParallelFor(tasks, [&](int i) {
    common::CpuStopwatch sw;
    task(i);
    durations[static_cast<std::size_t>(i)] = sw.ElapsedNanos();
  });
  common::Nanos real = total.ElapsedNanos();

  // Bill the makespan of list-scheduling the measured durations onto the
  // *virtual* core count (the engine's `cores_`, not the pool size): the
  // model stays hardware-oblivious no matter how many host threads ran.
  common::Timeline timeline(lanes);
  common::Interval iv = timeline.ScheduleBatch(0, durations);

  clock->Deduct(real);
  clock->AdvanceTo(clock->Now() + iv.duration());
  return iv.duration();
}

}  // namespace monet
