#ifndef OCELOT_MONET_MITOSIS_H_
#define OCELOT_MONET_MITOSIS_H_

#include <cstddef>
#include <functional>

#include "common/timeline.h"
#include "common/vclock.h"

namespace monet {

/// A contiguous slice of rows processed by one virtual core.
struct Slice {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Slice `i` of `n` rows split over `slices` equal parts (MonetDB Mitosis
/// partitioning).
Slice SliceOf(std::size_t n, int i, int slices);

/// Executes `tasks` independent closures, measuring each on the host, then
/// bills the makespan of list-scheduling them onto `lanes` virtual cores to
/// the clock (real execution time is deducted; DESIGN.md section 2).
/// Returns the modeled makespan.
///
/// This is MonetDB's Mitosis/Dataflow pair in miniature: Mitosis decides the
/// slicing, Dataflow runs the per-slice operator instances on a core pool.
common::Nanos ParallelFor(common::VirtualClock* clock, int lanes, int tasks,
                          const std::function<void(int)>& task);

}  // namespace monet

#endif  // OCELOT_MONET_MITOSIS_H_
