#ifndef OCELOT_MONET_MITOSIS_H_
#define OCELOT_MONET_MITOSIS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/timeline.h"
#include "common/vclock.h"

namespace monet {

/// A contiguous slice of rows processed by one virtual core.
struct Slice {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Slice `i` of `n` rows split over `slices` equal parts (MonetDB Mitosis
/// partitioning). Ceil division: the trailing slice can be empty (n=5 over
/// 4 parts is 2+2+1+0) — partitioners that must not ship empty fragments
/// use WeightedSlices instead.
Slice SliceOf(std::size_t n, int i, int slices);

/// Splits `n` rows into weights.size() contiguous slices whose sizes are
/// proportional to `weights` (largest-remainder rounding, deterministic
/// index-order tie-break). Contract: weights is non-empty and
/// n >= weights.size(); every returned slice is **non-empty** — a device's
/// share is clamped up to one row rather than shipping it a zero-row
/// fragment. Non-finite, zero or negative weights (and an all-zero set)
/// degrade to an equal split, which is also the balanced replacement for
/// ceil-division SliceOf: equal weights over n=5, 4 parts give 2+1+1+1.
std::vector<Slice> WeightedSlices(std::size_t n, const std::vector<double>& weights);

/// Executes `tasks` independent closures, measuring each on the host, then
/// bills the makespan of list-scheduling them onto `lanes` virtual cores to
/// the clock (real execution time is deducted; DESIGN.md section 2).
/// Returns the modeled makespan.
///
/// This is MonetDB's Mitosis/Dataflow pair in miniature: Mitosis decides the
/// slicing, Dataflow runs the per-slice operator instances on a core pool.
common::Nanos ParallelFor(common::VirtualClock* clock, int lanes, int tasks,
                          const std::function<void(int)>& task);

}  // namespace monet

#endif  // OCELOT_MONET_MITOSIS_H_
