#include "monet/par_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <span>

#include "common/simd.h"

#include "monet/detail.h"
#include "monet/encoded_ops.h"
#include "monet/hashmap.h"
#include "monet/mitosis.h"

namespace monet {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using cstore::CalcOp;
using cstore::GroupResult;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;

using detail::ApplyCalc;
using detail::CheckInts;
using detail::CheckNumeric;
using detail::CheckOids;
using detail::CheckSameSize;
using detail::IsNilAt;
using detail::OidsFromVector;
using detail::RangePred;
using detail::ValueAt;

namespace {

/// Concatenates per-slice oid vectors into one sorted candidate BAT
/// (MonetDB's mat.pack after a sliced operator).
BatPtr PackOids(const std::vector<std::vector<oid_t>>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  BatPtr out = Bat::MakeOid(total);
  auto dst = out->oids();
  std::size_t at = 0;
  for (const auto& p : parts) {
    std::copy(p.begin(), p.end(), dst.begin() + static_cast<std::ptrdiff_t>(at));
    at += p.size();
  }
  out->set_sorted(true);
  out->set_key(true);
  out->set_nonil(true);
  return out;
}

/// Sort key carrier: doubles order int32/oid exactly; float nil (NaN) maps
/// to -inf so it sorts first like the sequential engine.
double SortKeyAt(const BatPtr& col, std::size_t i) {
  switch (col->type()) {
    case ValType::kInt:
      return col->ints()[i];
    case ValType::kOid:
      return col->oids()[i];
    case ValType::kFloat: {
      float v = col->floats()[i];
      return std::isnan(v) ? -std::numeric_limits<double>::infinity() : v;
    }
  }
  return 0;
}

/// Invokes fn(row, value-as-double) for every non-nil row in [begin, end).
/// Encoded columns are read natively (the cursor is per call, so each slice
/// gets its own forward RLE walk); plain columns go through IsNilAt/ValueAt.
/// The double conversion is exactly what the plain loops did, so slice
/// partials stay bit-identical either way.
template <typename Fn>
void ForEachNonNil(const BatPtr& col, std::size_t begin, std::size_t end,
                   Fn&& fn) {
  if (col->encoded()) {
    encoded::ValueCursor cur(*col);
    if (col->type() == ValType::kFloat) {
      for (std::size_t i = begin; i < end; ++i) {
        float v = std::bit_cast<float>(cur.Bits(i));
        if (!std::isnan(v)) fn(i, static_cast<double>(v));
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        auto v = std::bit_cast<std::int32_t>(cur.Bits(i));
        if (v != kIntNil) fn(i, static_cast<double>(v));
      }
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (!IsNilAt(col, i)) fn(i, ValueAt(col, i));
  }
}

}  // namespace

Result<BatPtr> MitosisEngine::SelectRange(const BatPtr& col, const BatPtr& cand,
                                          Bound lo, Bound hi) {
  RETURN_IF_ERROR(CheckNumeric(col, "select input"));
  if (cand != nullptr) RETURN_IF_ERROR(CheckOids(cand, "candidates"));
  RangePred pred(lo, hi);
  std::size_t domain = cand != nullptr ? cand->size() : col->size();
  std::vector<std::vector<oid_t>> parts(static_cast<std::size_t>(slices_));

  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(domain, s, slices_);
    auto& hits = parts[static_cast<std::size_t>(s)];
    if (col->encoded()) {
      // Native compressed scan per slice; each slice owns its row (or
      // candidate) subrange, so the pack below still concatenates sorted
      // ascending oids.
      if (cand == nullptr) {
        encoded::SelectRange(*col, pred, sl.begin, sl.end, &hits);
      } else {
        encoded::SelectRangeCand(
            *col, pred, cand->oids().subspan(sl.begin, sl.end - sl.begin),
            &hits);
      }
      return;
    }
    if (cand == nullptr) {
      // Full-column slice: slices are contiguous, so the SIMD bitmask select
      // runs on the subrange with sl.begin as the position base.
      if (col->type() == ValType::kInt) {
        common::simd::SelectRangeInt32(col->ints().data() + sl.begin,
                                       sl.end - sl.begin, pred.lo, pred.hi,
                                       static_cast<std::uint32_t>(sl.begin),
                                       &hits);
      } else {
        common::simd::SelectRangeFloat(col->floats().data() + sl.begin,
                                       sl.end - sl.begin, pred.lo, pred.hi,
                                       static_cast<std::uint32_t>(sl.begin),
                                       &hits);
      }
      return;
    }
    if (col->type() == ValType::kInt) {
      auto vals = col->ints();
      for (std::size_t i = sl.begin; i < sl.end; ++i) {
        oid_t o = cand->oids()[i];
        if (pred.Match(vals[o])) hits.push_back(o);
      }
    } else {
      auto vals = col->floats();
      for (std::size_t i = sl.begin; i < sl.end; ++i) {
        oid_t o = cand->oids()[i];
        if (pred.Match(vals[o])) hits.push_back(o);
      }
    }
  });
  return PackOids(parts);
}

Result<BatPtr> MitosisEngine::Project(const BatPtr& oids, const BatPtr& col) {
  RETURN_IF_ERROR(CheckOids(oids, "projection head"));
  if (col == nullptr) return Status::InvalidArgument("projection tail is null");
  std::size_t n = oids->size();
  BatPtr out = Bat::Make(col->type(), n);
  auto idx = oids->oids();

  // Every payload is 4 bytes; one bit-level gather (prefetching the randomly
  // accessed source distance-ahead) covers all three types, per slice.
  std::uint32_t nil_bits;
  switch (col->type()) {
    case ValType::kInt:
      nil_bits = std::bit_cast<std::uint32_t>(kIntNil);
      break;
    case ValType::kFloat:
      nil_bits = std::bit_cast<std::uint32_t>(cstore::FloatNil());
      break;
    default:
      nil_bits = cstore::kOidNil;
      break;
  }
  auto dst = static_cast<std::uint32_t*>(out->data());
  // Dictionary / bit-packed sources gather straight off the codes per slice;
  // RLE has no random-access path, so it (and plain) reads data(), which for
  // encoded columns is the decoded twin. Resolve src before the slices fan
  // out so the twin is built once, not raced over.
  if (encoded::GatherSupported(*col)) {
    ParallelFor(clock_, cores_, slices_, [&](int s) {
      Slice sl = SliceOf(n, s, slices_);
      encoded::Gather(*col, idx.data() + sl.begin, sl.end - sl.begin, nil_bits,
                      dst + sl.begin);
    });
    return out;
  }
  const auto* src = static_cast<const std::uint32_t*>(col->data());
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    common::simd::GatherU32(src, col->size(), idx.data() + sl.begin,
                            sl.end - sl.begin, nil_bits, dst + sl.begin);
  });
  return out;
}

Result<JoinResult> MitosisEngine::HashJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "join left"));
  RETURN_IF_ERROR(CheckInts(right, "join right"));
  auto lv = left->ints();
  auto rv = right->ints();

  // Build is sequential (as in MonetDB: the probe side is sliced, the build
  // side hash is shared); probe is sliced across cores.
  std::optional<detail::JoinIndex> ht;
  if (!right->dense()) ht.emplace(rv);

  std::vector<std::vector<oid_t>> lparts(static_cast<std::size_t>(slices_));
  std::vector<std::vector<oid_t>> rparts(static_cast<std::size_t>(slices_));

  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(lv.size(), s, slices_);
    auto& lo = lparts[static_cast<std::size_t>(s)];
    auto& ro = rparts[static_cast<std::size_t>(s)];
    if (right->dense()) {
      std::int64_t base = right->tseqbase();
      std::int64_t limit = base + static_cast<std::int64_t>(rv.size());
      for (std::size_t i = sl.begin; i < sl.end; ++i) {
        std::int64_t v = lv[i];
        if (v >= base && v < limit) {
          lo.push_back(static_cast<oid_t>(i));
          ro.push_back(static_cast<oid_t>(v - base));
        }
      }
    } else {
      detail::ProbeLoop(lv.subspan(sl.begin, sl.end - sl.begin), *ht,
                        [&](std::size_t i) {
                          std::size_t row = sl.begin + i;
                          if (lv[row] == kIntNil) return;
                          ht->ForEachMatch(lv[row], [&](std::uint32_t p) {
                            lo.push_back(static_cast<oid_t>(row));
                            ro.push_back(static_cast<oid_t>(p));
                          });
                        });
    }
  });

  JoinResult res;
  res.left = PackOids(lparts);
  std::size_t total = res.left->size();
  res.right = Bat::MakeOid(total);
  auto dst = res.right->oids();
  std::size_t at = 0;
  for (const auto& p : rparts) {
    std::copy(p.begin(), p.end(), dst.begin() + static_cast<std::ptrdiff_t>(at));
    at += p.size();
  }
  return res;
}

Result<BatPtr> MitosisEngine::SemiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "semijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "semijoin right"));
  detail::JoinIndex ht(right->ints());
  auto lv = left->ints();
  std::vector<std::vector<oid_t>> parts(static_cast<std::size_t>(slices_));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(lv.size(), s, slices_);
    auto& hits = parts[static_cast<std::size_t>(s)];
    detail::ProbeLoop(lv.subspan(sl.begin, sl.end - sl.begin), ht,
                      [&](std::size_t i) {
                        std::size_t row = sl.begin + i;
                        if (lv[row] != kIntNil && ht.Contains(lv[row])) {
                          hits.push_back(static_cast<oid_t>(row));
                        }
                      });
  });
  return PackOids(parts);
}

Result<BatPtr> MitosisEngine::AntiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "antijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "antijoin right"));
  detail::JoinIndex ht(right->ints());
  auto lv = left->ints();
  std::vector<std::vector<oid_t>> parts(static_cast<std::size_t>(slices_));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(lv.size(), s, slices_);
    auto& hits = parts[static_cast<std::size_t>(s)];
    detail::ProbeLoop(lv.subspan(sl.begin, sl.end - sl.begin), ht,
                      [&](std::size_t i) {
                        std::size_t row = sl.begin + i;
                        if (lv[row] == kIntNil || !ht.Contains(lv[row])) {
                          hits.push_back(static_cast<oid_t>(row));
                        }
                      });
  });
  return PackOids(parts);
}

Result<SortResult> MitosisEngine::Sort(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("sort input is null");
  std::size_t n = col->size();

  // Parallel merge sort: slice-local stable sorts, then log2 rounds of
  // pairwise merges, each round sliced over the cores.
  using Pair = std::pair<double, oid_t>;
  std::vector<Pair> work(n);
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    for (std::size_t i = sl.begin; i < sl.end; ++i) {
      work[i] = {SortKeyAt(col, i), static_cast<oid_t>(i)};
    }
    std::stable_sort(work.begin() + static_cast<std::ptrdiff_t>(sl.begin),
                     work.begin() + static_cast<std::ptrdiff_t>(sl.end),
                     [](const Pair& a, const Pair& b) { return a.first < b.first; });
  });

  // Run boundaries after the slice sorts; each merge round fuses adjacent
  // pairs of runs until one sorted run remains.
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (int s = 0; s < slices_; ++s) bounds.push_back(SliceOf(n, s, slices_).end);

  std::vector<Pair> scratch(n);
  std::vector<Pair>* src = &work;
  std::vector<Pair>* dst = &scratch;
  while (bounds.size() > 2) {
    int pairs = static_cast<int>((bounds.size() - 1 + 1) / 2);
    std::vector<std::size_t> next_bounds;
    next_bounds.push_back(0);
    ParallelFor(clock_, cores_, pairs, [&](int p) {
      std::size_t lo = bounds[static_cast<std::size_t>(2 * p)];
      std::size_t mid = bounds[static_cast<std::size_t>(2 * p + 1)];
      std::size_t hi = (static_cast<std::size_t>(2 * p + 2) < bounds.size())
                           ? bounds[static_cast<std::size_t>(2 * p + 2)]
                           : mid;
      std::merge(src->begin() + static_cast<std::ptrdiff_t>(lo),
                 src->begin() + static_cast<std::ptrdiff_t>(mid),
                 src->begin() + static_cast<std::ptrdiff_t>(mid),
                 src->begin() + static_cast<std::ptrdiff_t>(hi),
                 dst->begin() + static_cast<std::ptrdiff_t>(lo),
                 [](const Pair& x, const Pair& y) { return x.first < y.first; });
    });
    for (int p = 0; p < pairs; ++p) {
      std::size_t hi = (static_cast<std::size_t>(2 * p + 2) < bounds.size())
                           ? bounds[static_cast<std::size_t>(2 * p + 2)]
                           : bounds[static_cast<std::size_t>(2 * p + 1)];
      next_bounds.push_back(hi);
    }
    std::swap(src, dst);
    bounds = std::move(next_bounds);
  }

  SortResult res;
  res.order = Bat::MakeOid(n);
  auto order = res.order->oids();
  for (std::size_t i = 0; i < n; ++i) order[i] = (*src)[i].second;
  ASSIGN_OR_RETURN(res.values, Project(res.order, col));
  cstore::FinalizeSortProperties(&res, col);
  return res;
}

Result<GroupResult> MitosisEngine::GroupBy(const BatPtr& col, const GroupResult* prev) {
  RETURN_IF_ERROR(CheckNumeric(col, "group input"));
  if (prev != nullptr) RETURN_IF_ERROR(CheckSameSize(col, prev->groups));
  std::size_t n = col->size();

  GroupResult res;
  res.groups = Bat::MakeOid(n);
  auto gids = res.groups->oids();
  auto prev_gids = prev != nullptr ? prev->groups->oids() : std::span<const oid_t>();

  auto key_at = [&](std::size_t i) -> std::uint64_t {
    std::uint32_t bits = col->type() == ValType::kInt
                             ? static_cast<std::uint32_t>(col->ints()[i])
                             : std::bit_cast<std::uint32_t>(col->floats()[i]);
    return prev != nullptr ? (static_cast<std::uint64_t>(prev_gids[i]) << 32) | bits
                           : bits;
  };

  // Phase 1 (parallel): per-slice local grouping; rows get local ids, each
  // slice records its distinct keys and their first-occurrence oids.
  struct SliceGroups {
    std::vector<std::uint64_t> keys;   // by local id
    std::vector<oid_t> extents;        // by local id
  };
  std::vector<SliceGroups> local(static_cast<std::size_t>(slices_));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    DenseIdMap map(256);
    std::uint32_t next_id = 0;
    auto& sg = local[static_cast<std::size_t>(s)];
    auto run = [&](auto&& key_fn, bool prefetch_ok) {
      const std::size_t dist = prefetch_ok && common::simd::Enabled()
                                   ? common::simd::PrefetchDistance()
                                   : 0;
      for (std::size_t i = sl.begin; i < sl.end; ++i) {
        if (dist != 0 && i + dist < sl.end) map.Prefetch(key_fn(i + dist));
        std::uint64_t key = key_fn(i);
        std::uint32_t before = next_id;
        std::uint32_t lid = map.GetOrAssign(key, &next_id);
        if (next_id != before) {
          sg.keys.push_back(key);
          sg.extents.push_back(static_cast<oid_t>(i));
        }
        gids[i] = lid;  // temporary local id, translated in phase 3
      }
    };
    if (col->encoded()) {
      // Per-slice cursor reading value bits straight off the format; the
      // RLE cursor only walks forward, so lookahead prefetch is disabled
      // there (it would rewind the run position).
      encoded::ValueCursor cur(*col);
      run(
          [&](std::size_t i) -> std::uint64_t {
            std::uint32_t bits = cur.Bits(i);
            return prev != nullptr
                       ? (static_cast<std::uint64_t>(prev_gids[i]) << 32) | bits
                       : bits;
          },
          cur.random_ok());
    } else {
      run(key_at, true);
    }
  });

  // Phase 2 (sequential): merge slice dictionaries into global ids. Slice 0
  // first, so ids coincide with the sequential engine's first-occurrence
  // order for its rows.
  DenseIdMap global(1024);
  std::uint32_t next_gid = 0;
  std::vector<std::vector<oid_t>> translate(static_cast<std::size_t>(slices_));
  std::vector<oid_t> extents;
  for (int s = 0; s < slices_; ++s) {
    auto& sg = local[static_cast<std::size_t>(s)];
    auto& tr = translate[static_cast<std::size_t>(s)];
    tr.resize(sg.keys.size());
    for (std::size_t k = 0; k < sg.keys.size(); ++k) {
      std::uint32_t before = next_gid;
      std::uint32_t gid = global.GetOrAssign(sg.keys[k], &next_gid);
      if (next_gid != before) {
        extents.push_back(sg.extents[k]);
      } else {
        extents[gid] = std::min(extents[gid], sg.extents[k]);
      }
      tr[k] = gid;
    }
  }

  // Phase 3 (parallel): translate local ids to global ids.
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    const auto& tr = translate[static_cast<std::size_t>(s)];
    for (std::size_t i = sl.begin; i < sl.end; ++i) gids[i] = tr[gids[i]];
  });

  res.ngroups = next_gid;
  res.extents = Bat::MakeOid(extents.size());
  std::copy(extents.begin(), extents.end(), res.extents->oids().begin());
  return res;
}

Result<BatPtr> MitosisEngine::SubSum(const BatPtr& vals, const BatPtr& groups,
                                     std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "subsum input"));
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  std::size_t n = vals->size();
  auto g = groups->oids();
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(slices_), std::vector<double>(ngroups, 0.0));
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(slices_), std::vector<std::int64_t>(ngroups, 0));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    auto& acc = partials[static_cast<std::size_t>(s)];
    auto& cnt = counts[static_cast<std::size_t>(s)];
    ForEachNonNil(vals, sl.begin, sl.end, [&](std::size_t i, double v) {
      acc[g[i]] += v;
      cnt[g[i]] += 1;
    });
  });
  std::vector<double> total(ngroups, 0.0);
  std::vector<std::int64_t> seen(ngroups, 0);
  for (std::size_t s = 0; s < partials.size(); ++s) {
    for (std::size_t k = 0; k < ngroups; ++k) {
      total[k] += partials[s][k];
      seen[k] += counts[s][k];
    }
  }
  // Empty-group nil convention: all-nil (or row-less) groups sum to nil,
  // matching the sequential and Ocelot engines.
  if (vals->type() == ValType::kFloat) {
    BatPtr out = Bat::MakeFloat(ngroups);
    for (std::size_t k = 0; k < ngroups; ++k) {
      out->floats()[k] =
          seen[k] == 0 ? cstore::FloatNil() : static_cast<float>(total[k]);
    }
    return out;
  }
  BatPtr out = Bat::MakeInt(ngroups);
  for (std::size_t k = 0; k < ngroups; ++k) {
    out->ints()[k] = seen[k] == 0 ? kIntNil : static_cast<std::int32_t>(total[k]);
  }
  return out;
}

Result<BatPtr> MitosisEngine::SubCount(const BatPtr& groups, std::size_t ngroups) {
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  std::size_t n = groups->size();
  auto g = groups->oids();
  std::vector<std::vector<std::int32_t>> partials(
      static_cast<std::size_t>(slices_), std::vector<std::int32_t>(ngroups, 0));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    auto& acc = partials[static_cast<std::size_t>(s)];
    for (std::size_t i = sl.begin; i < sl.end; ++i) acc[g[i]] += 1;
  });
  BatPtr out = Bat::MakeInt(ngroups);
  auto o = out->ints();
  std::fill(o.begin(), o.end(), 0);
  for (const auto& acc : partials) {
    for (std::size_t k = 0; k < ngroups; ++k) o[k] += acc[k];
  }
  return out;
}

Result<BatPtr> MitosisEngine::SubMin(const BatPtr& vals, const BatPtr& groups,
                                     std::size_t ngroups) {
  // Min/max merge cheaply; run the slice loops through the sequential code
  // on each slice's partial output.
  RETURN_IF_ERROR(CheckNumeric(vals, "submin input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  std::size_t n = vals->size();
  auto g = groups->oids();
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(slices_),
      std::vector<double>(ngroups, std::numeric_limits<double>::infinity()));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    auto& acc = partials[static_cast<std::size_t>(s)];
    ForEachNonNil(vals, sl.begin, sl.end, [&](std::size_t i, double v) {
      acc[g[i]] = std::min(acc[g[i]], v);
    });
  });
  std::vector<double> best(ngroups, std::numeric_limits<double>::infinity());
  for (const auto& acc : partials) {
    for (std::size_t k = 0; k < ngroups; ++k) best[k] = std::min(best[k], acc[k]);
  }
  BatPtr out = Bat::Make(vals->type(), ngroups);
  for (std::size_t k = 0; k < ngroups; ++k) {
    bool empty = std::isinf(best[k]);
    if (vals->type() == ValType::kFloat) {
      out->floats()[k] = empty ? cstore::FloatNil() : static_cast<float>(best[k]);
    } else {
      out->ints()[k] = empty ? kIntNil : static_cast<std::int32_t>(best[k]);
    }
  }
  return out;
}

Result<BatPtr> MitosisEngine::SubMax(const BatPtr& vals, const BatPtr& groups,
                                     std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "submax input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  std::size_t n = vals->size();
  auto g = groups->oids();
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(slices_),
      std::vector<double>(ngroups, -std::numeric_limits<double>::infinity()));
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    auto& acc = partials[static_cast<std::size_t>(s)];
    ForEachNonNil(vals, sl.begin, sl.end, [&](std::size_t i, double v) {
      acc[g[i]] = std::max(acc[g[i]], v);
    });
  });
  std::vector<double> best(ngroups, -std::numeric_limits<double>::infinity());
  for (const auto& acc : partials) {
    for (std::size_t k = 0; k < ngroups; ++k) best[k] = std::max(best[k], acc[k]);
  }
  BatPtr out = Bat::Make(vals->type(), ngroups);
  for (std::size_t k = 0; k < ngroups; ++k) {
    bool empty = std::isinf(best[k]);
    if (vals->type() == ValType::kFloat) {
      out->floats()[k] = empty ? cstore::FloatNil() : static_cast<float>(best[k]);
    } else {
      out->ints()[k] = empty ? kIntNil : static_cast<std::int32_t>(best[k]);
    }
  }
  return out;
}

Result<double> MitosisEngine::Sum(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "sum input"));
  std::size_t n = col->size();
  std::vector<double> partials(static_cast<std::size_t>(slices_), 0.0);
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    if (col->encoded()) {
      // Run-granular where provably exact; same row-order adds otherwise.
      partials[static_cast<std::size_t>(s)] =
          encoded::SumRows(*col, sl.begin, sl.end);
      return;
    }
    double acc = 0;
    for (std::size_t i = sl.begin; i < sl.end; ++i) {
      if (!IsNilAt(col, i)) acc += ValueAt(col, i);
    }
    partials[static_cast<std::size_t>(s)] = acc;
  });
  double total = 0;
  for (double p : partials) total += p;
  return total;
}

Result<double> MitosisEngine::Min(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "min input"));
  std::size_t n = col->size();
  std::vector<double> partials(static_cast<std::size_t>(slices_),
                               std::numeric_limits<double>::infinity());
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    if (col->encoded()) {
      partials[static_cast<std::size_t>(s)] =
          encoded::MinRows(*col, sl.begin, sl.end);
      return;
    }
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = sl.begin; i < sl.end; ++i) {
      if (!IsNilAt(col, i)) best = std::min(best, ValueAt(col, i));
    }
    partials[static_cast<std::size_t>(s)] = best;
  });
  return *std::min_element(partials.begin(), partials.end());
}

Result<double> MitosisEngine::Max(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "max input"));
  std::size_t n = col->size();
  std::vector<double> partials(static_cast<std::size_t>(slices_),
                               -std::numeric_limits<double>::infinity());
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    if (col->encoded()) {
      partials[static_cast<std::size_t>(s)] =
          encoded::MaxRows(*col, sl.begin, sl.end);
      return;
    }
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = sl.begin; i < sl.end; ++i) {
      if (!IsNilAt(col, i)) best = std::max(best, ValueAt(col, i));
    }
    partials[static_cast<std::size_t>(s)] = best;
  });
  return *std::max_element(partials.begin(), partials.end());
}

Result<BatPtr> MitosisEngine::Calc(CalcOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "calc rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  std::size_t n = a->size();
  bool a_int = a->type() == ValType::kInt;
  bool b_int = b->type() == ValType::kInt;
  bool int_result = a_int && b_int && op != CalcOp::kDiv;
  BatPtr out = Bat::Make(int_result ? ValType::kInt : ValType::kFloat, n);
  common::simd::Arith sop = detail::ToSimdOp(op);
  ParallelFor(clock_, cores_, slices_, [&](int s) {
    Slice sl = SliceOf(n, s, slices_);
    std::size_t len = sl.end - sl.begin;
    if (int_result) {
      common::simd::CalcIntInt(sop, a->ints().data() + sl.begin,
                               b->ints().data() + sl.begin,
                               out->ints().data() + sl.begin, len);
    } else if (a_int && b_int) {
      common::simd::CalcIIf(sop, a->ints().data() + sl.begin,
                            b->ints().data() + sl.begin,
                            out->floats().data() + sl.begin, len);
    } else if (a_int) {
      common::simd::CalcIF(sop, a->ints().data() + sl.begin,
                           b->floats().data() + sl.begin,
                           out->floats().data() + sl.begin, len);
    } else if (b_int) {
      common::simd::CalcFI(sop, a->floats().data() + sl.begin,
                           b->ints().data() + sl.begin,
                           out->floats().data() + sl.begin, len);
    } else {
      common::simd::CalcFF(sop, a->floats().data() + sl.begin,
                           b->floats().data() + sl.begin,
                           out->floats().data() + sl.begin, len);
    }
  });
  return out;
}

Result<BatPtr> MitosisEngine::CalcScalar(CalcOp op, const BatPtr& a, double s,
                                         bool scalar_left) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc input"));
  std::size_t n = a->size();
  BatPtr out = Bat::MakeFloat(n);
  auto o = out->floats();
  common::simd::Arith sop = detail::ToSimdOp(op);
  ParallelFor(clock_, cores_, slices_, [&](int sl_idx) {
    Slice sl = SliceOf(n, sl_idx, slices_);
    std::size_t len = sl.end - sl.begin;
    if (a->type() == ValType::kInt) {
      common::simd::CalcScalarI(sop, a->ints().data() + sl.begin, s,
                                scalar_left, o.data() + sl.begin, len);
    } else {
      common::simd::CalcScalarF(sop, a->floats().data() + sl.begin, s,
                                scalar_left, o.data() + sl.begin, len);
    }
  });
  return out;
}

}  // namespace monet
