#ifndef OCELOT_MONET_PAR_ENGINE_H_
#define OCELOT_MONET_PAR_ENGINE_H_

#include "common/vclock.h"
#include "monet/seq_engine.h"

namespace monet {

/// The parallel MonetDB baseline ("MP"): the hand-tuned multi-core
/// configuration the paper compares against. Heavy operators slice their
/// inputs Mitosis-style across `cores` virtual CPU cores; per-slice work is
/// executed (and measured) for real and billed as parallel makespan on the
/// shared virtual clock. Cheap/odd operators inherit the sequential
/// implementation — exactly MonetDB's behavior, where only data-parallel
/// kernels run under the Dataflow scheduler.
class MitosisEngine : public SequentialEngine {
 public:
  /// `cores` defaults to the paper's Xeon E5620 (4 cores); `slices_per_core`
  /// is Mitosis' over-decomposition factor smoothing load imbalance.
  explicit MitosisEngine(common::VirtualClock* clock, int cores = 4,
                         int slices_per_core = 4)
      : clock_(clock), cores_(cores), slices_(cores * slices_per_core) {}

  std::string name() const override { return "MonetDB (parallel)"; }

  /// Not concurrency-safe (unlike the sequential base): every heavy
  /// operator brackets its slice fan-out in a Deduct/AdvanceTo billing
  /// window on the shared session clock; interleaved windows from two
  /// threads would corrupt the parallel-makespan accounting.
  bool concurrency_safe() const override { return false; }

  common::Result<cstore::BatPtr> SelectRange(const cstore::BatPtr& col,
                                             const cstore::BatPtr& cand,
                                             cstore::Bound lo,
                                             cstore::Bound hi) override;
  common::Result<cstore::BatPtr> Project(const cstore::BatPtr& oids,
                                         const cstore::BatPtr& col) override;
  common::Result<cstore::JoinResult> HashJoin(const cstore::BatPtr& left,
                                              const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> SemiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> AntiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::SortResult> Sort(const cstore::BatPtr& col) override;
  common::Result<cstore::GroupResult> GroupBy(const cstore::BatPtr& col,
                                              const cstore::GroupResult* prev) override;
  common::Result<cstore::BatPtr> SubSum(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubCount(const cstore::BatPtr& groups,
                                          std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMin(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMax(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<double> Sum(const cstore::BatPtr& col) override;
  common::Result<double> Min(const cstore::BatPtr& col) override;
  common::Result<double> Max(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> Calc(cstore::CalcOp op, const cstore::BatPtr& a,
                                      const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CalcScalar(cstore::CalcOp op, const cstore::BatPtr& a,
                                            double s, bool scalar_left) override;

  int cores() const { return cores_; }

 private:
  common::VirtualClock* clock_;
  int cores_;
  int slices_;
};

}  // namespace monet

#endif  // OCELOT_MONET_PAR_ENGINE_H_
