#include "monet/register.h"

#include <memory>

#include "monet/par_engine.h"
#include "monet/seq_engine.h"

namespace monet {

namespace {

/// Baseline engines run in real host time against a session-owned clock.
class BaselineBundle : public cstore::EngineBundle {
 public:
  cstore::QueryEngine* engine() override { return engine_.get(); }
  common::VirtualClock* clock() override { return &clock_; }

  static std::unique_ptr<BaselineBundle> Sequential() {
    auto b = std::make_unique<BaselineBundle>();
    b->engine_ = std::make_unique<SequentialEngine>();
    return b;
  }

  static std::unique_ptr<BaselineBundle> Mitosis() {
    auto b = std::make_unique<BaselineBundle>();
    b->engine_ = std::make_unique<MitosisEngine>(&b->clock_);
    return b;
  }

 private:
  common::VirtualClock clock_;
  std::unique_ptr<cstore::QueryEngine> engine_;
};

}  // namespace

void RegisterEngines(cstore::EngineRegistry* registry) {
  registry->Register("seq", [](const cstore::EngineOptions&)
                                -> common::Result<std::unique_ptr<cstore::EngineBundle>> {
    return std::unique_ptr<cstore::EngineBundle>(BaselineBundle::Sequential());
  });
  registry->Register("par", [](const cstore::EngineOptions&)
                                -> common::Result<std::unique_ptr<cstore::EngineBundle>> {
    return std::unique_ptr<cstore::EngineBundle>(BaselineBundle::Mitosis());
  });
}

}  // namespace monet
