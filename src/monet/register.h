#ifndef OCELOT_MONET_REGISTER_H_
#define OCELOT_MONET_REGISTER_H_

#include "cstore/registry.h"

namespace monet {

/// Registers the MonetDB baseline engines with `registry`:
///   "seq" — hand-written single-core operators (the paper's MS);
///   "par" — hand-parallelized Mitosis/Dataflow operators (MP).
/// Idempotent; mal::EnsureEngineRegistry() calls this once per process.
void RegisterEngines(cstore::EngineRegistry* registry);

}  // namespace monet

#endif  // OCELOT_MONET_REGISTER_H_
