#include "monet/seq_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/date.h"
#include "monet/detail.h"
#include "monet/hashmap.h"

namespace monet {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using cstore::CalcOp;
using cstore::CmpOp;
using cstore::GroupResult;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::kOidNil;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;

using detail::ApplyCalc;
using detail::ApplyCmp;
using detail::CheckInts;
using detail::CheckNumeric;
using detail::CheckOids;
using detail::CheckSameSize;
using detail::IsNilAt;
using detail::OidsFromVector;
using detail::RangePred;
using detail::ValueAt;

namespace {

/// Invokes fn(oid) for every candidate row (all rows when cand is null).
template <typename Fn>
void ForEachCand(std::size_t n, const BatPtr& cand, Fn&& fn) {
  if (cand == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(static_cast<oid_t>(i));
  } else {
    for (oid_t o : cand->oids()) fn(o);
  }
}

}  // namespace

Result<BatPtr> SequentialEngine::SelectRange(const BatPtr& col, const BatPtr& cand,
                                             Bound lo, Bound hi) {
  RETURN_IF_ERROR(CheckNumeric(col, "select input"));
  if (cand != nullptr) RETURN_IF_ERROR(CheckOids(cand, "candidates"));
  RangePred pred(lo, hi);
  std::vector<oid_t> hits;
  if (col->type() == ValType::kInt) {
    auto vals = col->ints();
    ForEachCand(col->size(), cand, [&](oid_t o) {
      if (pred.Match(vals[o])) hits.push_back(o);
    });
  } else {
    auto vals = col->floats();
    ForEachCand(col->size(), cand, [&](oid_t o) {
      if (pred.Match(vals[o])) hits.push_back(o);
    });
  }
  return OidsFromVector(hits);
}

Result<BatPtr> SequentialEngine::CandUnion(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckOids(a, "union lhs"));
  RETURN_IF_ERROR(CheckOids(b, "union rhs"));
  auto av = a->oids();
  auto bv = b->oids();
  std::vector<oid_t> merged;
  merged.reserve(av.size() + bv.size());
  std::set_union(av.begin(), av.end(), bv.begin(), bv.end(),
                 std::back_inserter(merged));
  return OidsFromVector(merged);
}

Result<BatPtr> SequentialEngine::Project(const BatPtr& oids, const BatPtr& col) {
  RETURN_IF_ERROR(CheckOids(oids, "projection head"));
  if (col == nullptr) return Status::InvalidArgument("projection tail is null");
  std::size_t n = oids->size();
  BatPtr out = Bat::Make(col->type(), n);
  auto idx = oids->oids();
  switch (col->type()) {
    case ValType::kInt: {
      auto src = col->ints();
      auto dst = out->ints();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = idx[i] == kOidNil ? kIntNil : src[idx[i]];
      }
      break;
    }
    case ValType::kFloat: {
      auto src = col->floats();
      auto dst = out->floats();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = idx[i] == kOidNil ? cstore::FloatNil() : src[idx[i]];
      }
      break;
    }
    case ValType::kOid: {
      auto src = col->oids();
      auto dst = out->oids();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = idx[i] == kOidNil ? kOidNil : src[idx[i]];
      }
      break;
    }
  }
  return out;
}

Result<JoinResult> SequentialEngine::HashJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "join left"));
  RETURN_IF_ERROR(CheckInts(right, "join right"));
  auto lv = left->ints();
  auto rv = right->ints();
  std::vector<oid_t> lo, ro;

  if (right->dense()) {
    // PK-FK fast path (paper 4.1.5 footnote 6): the right side is the dense
    // key sequence, so the join is pure arithmetic.
    std::int64_t base = right->tseqbase();
    std::int64_t limit = base + static_cast<std::int64_t>(rv.size());
    for (std::size_t i = 0; i < lv.size(); ++i) {
      std::int64_t v = lv[i];
      if (v >= base && v < limit) {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(static_cast<oid_t>(v - base));
      }
    }
  } else {
    ChainedHash ht(rv);
    for (std::size_t i = 0; i < lv.size(); ++i) {
      if (lv[i] == kIntNil) continue;
      for (std::uint32_t p = ht.First(lv[i]); p != ChainedHash::kNone; p = ht.Next(p)) {
        if (rv[p] == lv[i]) {
          lo.push_back(static_cast<oid_t>(i));
          ro.push_back(static_cast<oid_t>(p));
        }
      }
    }
  }
  return JoinResult{OidsFromVector(lo), [&] {
                      BatPtr r = Bat::MakeOid(ro.size());
                      std::copy(ro.begin(), ro.end(), r->oids().begin());
                      return r;
                    }()};
}

Result<JoinResult> SequentialEngine::ThetaJoin(const BatPtr& left, const BatPtr& right,
                                               CmpOp op) {
  RETURN_IF_ERROR(CheckNumeric(left, "join left"));
  RETURN_IF_ERROR(CheckNumeric(right, "join right"));
  std::vector<oid_t> lo, ro;
  for (std::size_t i = 0; i < left->size(); ++i) {
    if (IsNilAt(left, i)) continue;
    double a = ValueAt(left, i);
    for (std::size_t j = 0; j < right->size(); ++j) {
      if (IsNilAt(right, j)) continue;
      if (ApplyCmp(op, a, ValueAt(right, j))) {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(static_cast<oid_t>(j));
      }
    }
  }
  JoinResult res;
  res.left = OidsFromVector(lo);
  res.right = Bat::MakeOid(ro.size());
  std::copy(ro.begin(), ro.end(), res.right->oids().begin());
  return res;
}

Result<BatPtr> SequentialEngine::SemiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "semijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "semijoin right"));
  ChainedHash ht(right->ints());
  auto lv = left->ints();
  std::vector<oid_t> hits;
  for (std::size_t i = 0; i < lv.size(); ++i) {
    if (lv[i] != kIntNil && ht.Contains(lv[i])) hits.push_back(static_cast<oid_t>(i));
  }
  return OidsFromVector(hits);
}

Result<BatPtr> SequentialEngine::AntiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "antijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "antijoin right"));
  ChainedHash ht(right->ints());
  auto lv = left->ints();
  std::vector<oid_t> hits;
  for (std::size_t i = 0; i < lv.size(); ++i) {
    if (lv[i] == kIntNil || !ht.Contains(lv[i])) hits.push_back(static_cast<oid_t>(i));
  }
  return OidsFromVector(hits);
}

Result<SortResult> SequentialEngine::Sort(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("sort input is null");
  std::size_t n = col->size();
  std::vector<oid_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  // MonetDB orders with quicksort (std::stable_sort here keeps ties in
  // appearance order, matching algebra.sort's stability).
  switch (col->type()) {
    case ValType::kInt: {
      auto v = col->ints();
      std::stable_sort(order.begin(), order.end(),
                       [&](oid_t a, oid_t b) { return v[a] < v[b]; });
      break;
    }
    case ValType::kOid: {
      auto v = col->oids();
      std::stable_sort(order.begin(), order.end(),
                       [&](oid_t a, oid_t b) { return v[a] < v[b]; });
      break;
    }
    case ValType::kFloat: {
      auto v = col->floats();
      std::stable_sort(order.begin(), order.end(), [&](oid_t a, oid_t b) {
        bool na = std::isnan(v[a]), nb = std::isnan(v[b]);
        if (na || nb) return na && !nb;  // nil sorts first
        return v[a] < v[b];
      });
      break;
    }
  }

  SortResult res;
  res.order = Bat::MakeOid(n);
  std::copy(order.begin(), order.end(), res.order->oids().begin());
  ASSIGN_OR_RETURN(res.values, Project(res.order, col));
  cstore::FinalizeSortProperties(&res, col);
  return res;
}

Result<GroupResult> SequentialEngine::GroupBy(const BatPtr& col,
                                              const GroupResult* prev) {
  RETURN_IF_ERROR(CheckNumeric(col, "group input"));
  if (prev != nullptr) {
    RETURN_IF_ERROR(CheckSameSize(col, prev->groups));
  }
  std::size_t n = col->size();
  GroupResult res;
  res.groups = Bat::MakeOid(n);
  auto gids = res.groups->oids();
  std::vector<oid_t> extents;

  DenseIdMap map(1024);
  std::uint32_t next_id = 0;
  auto prev_gids = prev != nullptr ? prev->groups->oids() : std::span<const oid_t>();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits = col->type() == ValType::kInt
                             ? static_cast<std::uint32_t>(col->ints()[i])
                             : std::bit_cast<std::uint32_t>(col->floats()[i]);
    std::uint64_t key = prev != nullptr
                            ? (static_cast<std::uint64_t>(prev_gids[i]) << 32) | bits
                            : bits;
    std::uint32_t before = next_id;
    std::uint32_t gid = map.GetOrAssign(key, &next_id);
    if (next_id != before) extents.push_back(static_cast<oid_t>(i));
    gids[i] = gid;
  }

  res.ngroups = next_id;
  res.extents = Bat::MakeOid(extents.size());
  std::copy(extents.begin(), extents.end(), res.extents->oids().begin());
  return res;
}

Result<BatPtr> SequentialEngine::SubSum(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "subsum input"));
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  // Empty-group nil convention (shared by every engine, and what the
  // multi-device merge in ocelot::Scheduler folds over): a group that
  // received no non-nil value sums to nil — kIntNil / NaN — like min/max,
  // not to 0, which is indistinguishable from a real zero-sum.
  std::vector<std::int64_t> cnt(ngroups, 0);
  if (vals->type() == ValType::kFloat) {
    std::vector<double> acc(ngroups, 0.0);
    auto v = vals->floats();
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (std::isnan(v[i])) continue;
      acc[g[i]] += v[i];
      cnt[g[i]] += 1;
    }
    BatPtr out = Bat::MakeFloat(ngroups);
    auto o = out->floats();
    for (std::size_t k = 0; k < ngroups; ++k) {
      o[k] = cnt[k] == 0 ? cstore::FloatNil() : static_cast<float>(acc[k]);
    }
    return out;
  }
  std::vector<std::int64_t> acc(ngroups, 0);
  auto v = vals->ints();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == kIntNil) continue;
    acc[g[i]] += v[i];
    cnt[g[i]] += 1;
  }
  BatPtr out = Bat::MakeInt(ngroups);
  auto o = out->ints();
  for (std::size_t k = 0; k < ngroups; ++k) {
    o[k] = cnt[k] == 0 ? kIntNil : static_cast<std::int32_t>(acc[k]);
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubCount(const BatPtr& groups, std::size_t ngroups) {
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  BatPtr out = Bat::MakeInt(ngroups);
  auto o = out->ints();
  std::fill(o.begin(), o.end(), 0);
  for (oid_t gid : groups->oids()) o[gid] += 1;
  return out;
}

Result<BatPtr> SequentialEngine::SubMin(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "submin input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  BatPtr out = Bat::Make(vals->type(), ngroups);
  if (vals->type() == ValType::kFloat) {
    auto o = out->floats();
    std::fill(o.begin(), o.end(), cstore::FloatNil());
    auto v = vals->floats();
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (std::isnan(v[i])) continue;
      if (std::isnan(o[g[i]]) || v[i] < o[g[i]]) o[g[i]] = v[i];
    }
  } else {
    auto o = out->ints();
    std::fill(o.begin(), o.end(), kIntNil);
    auto v = vals->ints();
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == kIntNil) continue;
      if (o[g[i]] == kIntNil || v[i] < o[g[i]]) o[g[i]] = v[i];
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubMax(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "submax input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  BatPtr out = Bat::Make(vals->type(), ngroups);
  if (vals->type() == ValType::kFloat) {
    auto o = out->floats();
    std::fill(o.begin(), o.end(), cstore::FloatNil());
    auto v = vals->floats();
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (std::isnan(v[i])) continue;
      if (std::isnan(o[g[i]]) || v[i] > o[g[i]]) o[g[i]] = v[i];
    }
  } else {
    auto o = out->ints();
    std::fill(o.begin(), o.end(), kIntNil);
    auto v = vals->ints();
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == kIntNil) continue;
      if (o[g[i]] == kIntNil || v[i] > o[g[i]]) o[g[i]] = v[i];
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubAvg(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "subavg input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  std::vector<double> sum(ngroups, 0.0);
  std::vector<std::int64_t> cnt(ngroups, 0);
  auto g = groups->oids();
  for (std::size_t i = 0; i < vals->size(); ++i) {
    if (IsNilAt(vals, i)) continue;
    sum[g[i]] += ValueAt(vals, i);
    cnt[g[i]] += 1;
  }
  BatPtr out = Bat::MakeFloat(ngroups);
  auto o = out->floats();
  for (std::size_t k = 0; k < ngroups; ++k) {
    o[k] = cnt[k] == 0 ? cstore::FloatNil()
                       : static_cast<float>(sum[k] / static_cast<double>(cnt[k]));
  }
  return out;
}

Result<double> SequentialEngine::Sum(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "sum input"));
  double acc = 0;
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) acc += ValueAt(col, i);
  }
  return acc;
}

Result<double> SequentialEngine::Min(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "min input"));
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) best = std::min(best, ValueAt(col, i));
  }
  return best;
}

Result<double> SequentialEngine::Max(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "max input"));
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) best = std::max(best, ValueAt(col, i));
  }
  return best;
}

Result<std::int64_t> SequentialEngine::Count(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("count input is null");
  return static_cast<std::int64_t>(col->size());
}

Result<BatPtr> SequentialEngine::Calc(CalcOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "calc rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  std::size_t n = a->size();
  bool int_result = a->type() == ValType::kInt && b->type() == ValType::kInt &&
                    op != CalcOp::kDiv;
  BatPtr out = Bat::Make(int_result ? ValType::kInt : ValType::kFloat, n);
  for (std::size_t i = 0; i < n; ++i) {
    bool nil = IsNilAt(a, i) || IsNilAt(b, i);
    double r = nil ? 0 : ApplyCalc(op, ValueAt(a, i), ValueAt(b, i));
    if (int_result) {
      out->ints()[i] = nil ? kIntNil : static_cast<std::int32_t>(r);
    } else {
      out->floats()[i] = nil ? cstore::FloatNil() : static_cast<float>(r);
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::CalcScalar(CalcOp op, const BatPtr& a, double s,
                                            bool scalar_left) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc input"));
  std::size_t n = a->size();
  BatPtr out = Bat::MakeFloat(n);
  auto o = out->floats();
  for (std::size_t i = 0; i < n; ++i) {
    if (IsNilAt(a, i)) {
      o[i] = cstore::FloatNil();
      continue;
    }
    double v = ValueAt(a, i);
    o[i] = static_cast<float>(scalar_left ? ApplyCalc(op, s, v) : ApplyCalc(op, v, s));
  }
  return out;
}

Result<BatPtr> SequentialEngine::Cmp(CmpOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "cmp rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  auto o = out->ints();
  for (std::size_t i = 0; i < a->size(); ++i) {
    bool nil = IsNilAt(a, i) || IsNilAt(b, i);
    o[i] = (!nil && ApplyCmp(op, ValueAt(a, i), ValueAt(b, i))) ? 1 : 0;
  }
  return out;
}

Result<BatPtr> SequentialEngine::CmpScalar(CmpOp op, const BatPtr& a, double s) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp input"));
  BatPtr out = Bat::MakeInt(a->size());
  auto o = out->ints();
  for (std::size_t i = 0; i < a->size(); ++i) {
    o[i] = (!IsNilAt(a, i) && ApplyCmp(op, ValueAt(a, i), s)) ? 1 : 0;
  }
  return out;
}

Result<BatPtr> SequentialEngine::BoolOr(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckInts(a, "or lhs"));
  RETURN_IF_ERROR(CheckInts(b, "or rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  auto av = a->ints(), bv = b->ints();
  auto o = out->ints();
  for (std::size_t i = 0; i < a->size(); ++i) o[i] = (av[i] != 0 || bv[i] != 0) ? 1 : 0;
  return out;
}

Result<BatPtr> SequentialEngine::BoolAnd(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckInts(a, "and lhs"));
  RETURN_IF_ERROR(CheckInts(b, "and rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  auto av = a->ints(), bv = b->ints();
  auto o = out->ints();
  for (std::size_t i = 0; i < a->size(); ++i) o[i] = (av[i] != 0 && bv[i] != 0) ? 1 : 0;
  return out;
}

Result<BatPtr> SequentialEngine::IfThenElseConst(const BatPtr& cond,
                                                 const BatPtr& then_vals,
                                                 double else_val) {
  RETURN_IF_ERROR(CheckInts(cond, "condition"));
  RETURN_IF_ERROR(CheckNumeric(then_vals, "then branch"));
  RETURN_IF_ERROR(CheckSameSize(cond, then_vals));
  std::size_t n = cond->size();
  auto c = cond->ints();
  BatPtr out = Bat::Make(then_vals->type(), n);
  if (then_vals->type() == ValType::kFloat) {
    auto t = then_vals->floats();
    auto o = out->floats();
    for (std::size_t i = 0; i < n; ++i) {
      o[i] = c[i] != 0 ? t[i] : static_cast<float>(else_val);
    }
  } else {
    auto t = then_vals->ints();
    auto o = out->ints();
    for (std::size_t i = 0; i < n; ++i) {
      o[i] = c[i] != 0 ? t[i] : static_cast<std::int32_t>(else_val);
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::Year(const BatPtr& col) {
  RETURN_IF_ERROR(CheckInts(col, "year input"));
  BatPtr out = Bat::MakeInt(col->size());
  auto v = col->ints();
  auto o = out->ints();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (v[i] == kIntNil) {
      o[i] = kIntNil;
      continue;
    }
    int y, m, d;
    common::date::ToYmd(v[i], &y, &m, &d);
    o[i] = y;
  }
  return out;
}

Result<BatPtr> SequentialEngine::CastToFloat(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "cast input"));
  if (col->type() == ValType::kFloat) {
    BatPtr out = Bat::MakeFloat(col->size());
    std::copy(col->floats().begin(), col->floats().end(), out->floats().begin());
    return out;
  }
  BatPtr out = Bat::MakeFloat(col->size());
  auto v = col->ints();
  auto o = out->floats();
  for (std::size_t i = 0; i < col->size(); ++i) {
    o[i] = v[i] == kIntNil ? cstore::FloatNil() : static_cast<float>(v[i]);
  }
  return out;
}

}  // namespace monet
