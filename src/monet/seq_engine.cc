#include "monet/seq_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/date.h"
#include "common/simd.h"
#include "monet/detail.h"
#include "monet/encoded_ops.h"
#include "monet/hashmap.h"

namespace monet {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using cstore::CalcOp;
using cstore::CmpOp;
using cstore::GroupResult;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::kOidNil;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;

using detail::ApplyCalc;
using detail::ApplyCmp;
using detail::CheckInts;
using detail::CheckNumeric;
using detail::CheckOids;
using detail::CheckSameSize;
using detail::IsNilAt;
using detail::OidsFromVector;
using detail::RangePred;
using detail::ValueAt;

namespace {

/// Invokes fn(oid) for every candidate row (all rows when cand is null).
template <typename Fn>
void ForEachCand(std::size_t n, const BatPtr& cand, Fn&& fn) {
  if (cand == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(static_cast<oid_t>(i));
  } else {
    for (oid_t o : cand->oids()) fn(o);
  }
}

}  // namespace

Result<BatPtr> SequentialEngine::SelectRange(const BatPtr& col, const BatPtr& cand,
                                             Bound lo, Bound hi) {
  RETURN_IF_ERROR(CheckNumeric(col, "select input"));
  if (cand != nullptr) RETURN_IF_ERROR(CheckOids(cand, "candidates"));
  RangePred pred(lo, hi);
  std::vector<oid_t> hits;
  if (col->encoded()) {
    // Native compressed scan: dictionary-rewritten predicate, run-granular
    // RLE, integer-rewritten bit-packed test — never touches the twin.
    if (cand == nullptr) {
      encoded::SelectRange(*col, pred, 0, col->size(), &hits);
    } else {
      encoded::SelectRangeCand(*col, pred, cand->oids(), &hits);
    }
    return OidsFromVector(hits);
  }
  if (cand == nullptr) {
    // Full-column scan: branchless bitmask + materialization in the SIMD
    // layer (which falls back to this very predicate when forced scalar).
    if (col->type() == ValType::kInt) {
      common::simd::SelectRangeInt32(col->ints().data(), col->size(), pred.lo,
                                     pred.hi, /*base=*/0, &hits);
    } else {
      common::simd::SelectRangeFloat(col->floats().data(), col->size(), pred.lo,
                                     pred.hi, /*base=*/0, &hits);
    }
    return OidsFromVector(hits);
  }
  if (col->type() == ValType::kInt) {
    auto vals = col->ints();
    ForEachCand(col->size(), cand, [&](oid_t o) {
      if (pred.Match(vals[o])) hits.push_back(o);
    });
  } else {
    auto vals = col->floats();
    ForEachCand(col->size(), cand, [&](oid_t o) {
      if (pred.Match(vals[o])) hits.push_back(o);
    });
  }
  return OidsFromVector(hits);
}

Result<BatPtr> SequentialEngine::CandUnion(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckOids(a, "union lhs"));
  RETURN_IF_ERROR(CheckOids(b, "union rhs"));
  auto av = a->oids();
  auto bv = b->oids();
  std::vector<oid_t> merged;
  merged.reserve(av.size() + bv.size());
  std::set_union(av.begin(), av.end(), bv.begin(), bv.end(),
                 std::back_inserter(merged));
  return OidsFromVector(merged);
}

Result<BatPtr> SequentialEngine::Project(const BatPtr& oids, const BatPtr& col) {
  RETURN_IF_ERROR(CheckOids(oids, "projection head"));
  if (col == nullptr) return Status::InvalidArgument("projection tail is null");
  std::size_t n = oids->size();
  BatPtr out = Bat::Make(col->type(), n);
  auto idx = oids->oids();
  // Every payload is 4 bytes, so one bit-level gather (with distance-ahead
  // prefetching of the randomly accessed source) covers all three types.
  std::uint32_t nil_bits;
  switch (col->type()) {
    case ValType::kInt:
      nil_bits = std::bit_cast<std::uint32_t>(kIntNil);
      break;
    case ValType::kFloat:
      nil_bits = std::bit_cast<std::uint32_t>(cstore::FloatNil());
      break;
    default:
      nil_bits = kOidNil;
      break;
  }
  auto dst = static_cast<std::uint32_t*>(out->data());
  // Dictionary / bit-packed sources gather straight out of the codes; RLE
  // (and plain) go through data(), which for encoded columns is the twin.
  if (col->encoded() &&
      encoded::Gather(*col, idx.data(), n, nil_bits, dst)) {
    return out;
  }
  common::simd::GatherU32(static_cast<const std::uint32_t*>(col->data()),
                          col->size(), idx.data(), n, nil_bits, dst);
  return out;
}

Result<JoinResult> SequentialEngine::HashJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "join left"));
  RETURN_IF_ERROR(CheckInts(right, "join right"));
  auto lv = left->ints();
  auto rv = right->ints();
  std::vector<oid_t> lo, ro;

  if (right->dense()) {
    // PK-FK fast path (paper 4.1.5 footnote 6): the right side is the dense
    // key sequence, so the join is pure arithmetic.
    std::int64_t base = right->tseqbase();
    std::int64_t limit = base + static_cast<std::int64_t>(rv.size());
    for (std::size_t i = 0; i < lv.size(); ++i) {
      std::int64_t v = lv[i];
      if (v >= base && v < limit) {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(static_cast<oid_t>(v - base));
      }
    }
  } else {
    detail::JoinIndex ht(rv);
    detail::ProbeLoop(lv, ht, [&](std::size_t i) {
      if (lv[i] == kIntNil) return;
      ht.ForEachMatch(lv[i], [&](std::uint32_t p) {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(static_cast<oid_t>(p));
      });
    });
  }
  return JoinResult{OidsFromVector(lo), [&] {
                      BatPtr r = Bat::MakeOid(ro.size());
                      std::copy(ro.begin(), ro.end(), r->oids().begin());
                      return r;
                    }()};
}

Result<JoinResult> SequentialEngine::ThetaJoin(const BatPtr& left, const BatPtr& right,
                                               CmpOp op) {
  RETURN_IF_ERROR(CheckNumeric(left, "join left"));
  RETURN_IF_ERROR(CheckNumeric(right, "join right"));
  std::vector<oid_t> lo, ro;
  for (std::size_t i = 0; i < left->size(); ++i) {
    if (IsNilAt(left, i)) continue;
    double a = ValueAt(left, i);
    for (std::size_t j = 0; j < right->size(); ++j) {
      if (IsNilAt(right, j)) continue;
      if (ApplyCmp(op, a, ValueAt(right, j))) {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(static_cast<oid_t>(j));
      }
    }
  }
  JoinResult res;
  res.left = OidsFromVector(lo);
  res.right = Bat::MakeOid(ro.size());
  std::copy(ro.begin(), ro.end(), res.right->oids().begin());
  return res;
}

Result<BatPtr> SequentialEngine::SemiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "semijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "semijoin right"));
  detail::JoinIndex ht(right->ints());
  auto lv = left->ints();
  std::vector<oid_t> hits;
  detail::ProbeLoop(lv, ht, [&](std::size_t i) {
    if (lv[i] != kIntNil && ht.Contains(lv[i])) hits.push_back(static_cast<oid_t>(i));
  });
  return OidsFromVector(hits);
}

Result<BatPtr> SequentialEngine::AntiJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckInts(left, "antijoin left"));
  RETURN_IF_ERROR(CheckInts(right, "antijoin right"));
  detail::JoinIndex ht(right->ints());
  auto lv = left->ints();
  std::vector<oid_t> hits;
  detail::ProbeLoop(lv, ht, [&](std::size_t i) {
    if (lv[i] == kIntNil || !ht.Contains(lv[i])) hits.push_back(static_cast<oid_t>(i));
  });
  return OidsFromVector(hits);
}

Result<SortResult> SequentialEngine::Sort(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("sort input is null");
  std::size_t n = col->size();
  std::vector<oid_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  // MonetDB orders with quicksort (std::stable_sort here keeps ties in
  // appearance order, matching algebra.sort's stability).
  switch (col->type()) {
    case ValType::kInt: {
      auto v = col->ints();
      std::stable_sort(order.begin(), order.end(),
                       [&](oid_t a, oid_t b) { return v[a] < v[b]; });
      break;
    }
    case ValType::kOid: {
      auto v = col->oids();
      std::stable_sort(order.begin(), order.end(),
                       [&](oid_t a, oid_t b) { return v[a] < v[b]; });
      break;
    }
    case ValType::kFloat: {
      auto v = col->floats();
      std::stable_sort(order.begin(), order.end(), [&](oid_t a, oid_t b) {
        bool na = std::isnan(v[a]), nb = std::isnan(v[b]);
        if (na || nb) return na && !nb;  // nil sorts first
        return v[a] < v[b];
      });
      break;
    }
  }

  SortResult res;
  res.order = Bat::MakeOid(n);
  std::copy(order.begin(), order.end(), res.order->oids().begin());
  ASSIGN_OR_RETURN(res.values, Project(res.order, col));
  cstore::FinalizeSortProperties(&res, col);
  return res;
}

Result<GroupResult> SequentialEngine::GroupBy(const BatPtr& col,
                                              const GroupResult* prev) {
  RETURN_IF_ERROR(CheckNumeric(col, "group input"));
  if (prev != nullptr) {
    RETURN_IF_ERROR(CheckSameSize(col, prev->groups));
  }
  std::size_t n = col->size();
  GroupResult res;
  res.groups = Bat::MakeOid(n);
  auto gids = res.groups->oids();
  std::vector<oid_t> extents;

  DenseIdMap map(1024);
  std::uint32_t next_id = 0;
  auto prev_gids = prev != nullptr ? prev->groups->oids() : std::span<const oid_t>();
  auto with_prev = [&](std::size_t i, std::uint32_t bits) {
    return prev != nullptr
               ? (static_cast<std::uint64_t>(prev_gids[i]) << 32) | bits
               : std::uint64_t{bits};
  };
  // The gid numbering is first-appearance order of the key, so any reader
  // producing equality-equivalent bits per row yields identical groups.
  auto run_loop = [&](auto&& key_at, bool prefetch_ok) {
    const std::size_t dist = prefetch_ok && common::simd::Enabled()
                                 ? common::simd::PrefetchDistance()
                                 : 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dist != 0 && i + dist < n) map.Prefetch(key_at(i + dist));
      std::uint32_t before = next_id;
      std::uint32_t gid = map.GetOrAssign(key_at(i), &next_id);
      if (next_id != before) extents.push_back(static_cast<oid_t>(i));
      gids[i] = gid;
    }
  };
  if (col->encoded()) {
    // Native compressed grouping reads value bits straight off the format
    // (the RLE cursor only walks forward, so prefetch-ahead is disabled
    // there — lookahead would rewind it).
    encoded::ValueCursor cur(*col);
    run_loop([&](std::size_t i) { return with_prev(i, cur.Bits(i)); },
             cur.random_ok());
  } else {
    run_loop(
        [&](std::size_t i) {
          std::uint32_t bits =
              col->type() == ValType::kInt
                  ? static_cast<std::uint32_t>(col->ints()[i])
                  : std::bit_cast<std::uint32_t>(col->floats()[i]);
          return with_prev(i, bits);
        },
        true);
  }

  res.ngroups = next_id;
  res.extents = Bat::MakeOid(extents.size());
  std::copy(extents.begin(), extents.end(), res.extents->oids().begin());
  return res;
}

Result<BatPtr> SequentialEngine::SubSum(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "subsum input"));
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  // Empty-group nil convention (shared by every engine, and what the
  // multi-device merge in ocelot::Scheduler folds over): a group that
  // received no non-nil value sums to nil — kIntNil / NaN — like min/max,
  // not to 0, which is indistinguishable from a real zero-sum.
  std::vector<std::int64_t> cnt(ngroups, 0);
  const std::size_t n = vals->size();
  if (vals->type() == ValType::kFloat) {
    std::vector<double> acc(ngroups, 0.0);
    if (vals->encoded()) {
      // Compressed fold: decode per row off the format, same adds in the
      // same row order (float addition is order-sensitive).
      encoded::ValueCursor cur(*vals);
      for (std::size_t i = 0; i < n; ++i) {
        float v = std::bit_cast<float>(cur.Bits(i));
        if (std::isnan(v)) continue;
        acc[g[i]] += v;
        cnt[g[i]] += 1;
      }
    } else {
      common::simd::GroupedSumFloat(vals->floats().data(), g.data(), n,
                                    acc.data(), cnt.data());
    }
    BatPtr out = Bat::MakeFloat(ngroups);
    auto o = out->floats();
    for (std::size_t k = 0; k < ngroups; ++k) {
      o[k] = cnt[k] == 0 ? cstore::FloatNil() : static_cast<float>(acc[k]);
    }
    return out;
  }
  std::vector<std::int64_t> acc(ngroups, 0);
  if (vals->encoded()) {
    encoded::ValueCursor cur(*vals);
    for (std::size_t i = 0; i < n; ++i) {
      std::int32_t v = std::bit_cast<std::int32_t>(cur.Bits(i));
      if (v == kIntNil) continue;
      acc[g[i]] += v;
      cnt[g[i]] += 1;
    }
  } else {
    common::simd::GroupedSumInt32(vals->ints().data(), g.data(), n, acc.data(),
                                  cnt.data());
  }
  BatPtr out = Bat::MakeInt(ngroups);
  auto o = out->ints();
  for (std::size_t k = 0; k < ngroups; ++k) {
    o[k] = cnt[k] == 0 ? kIntNil : static_cast<std::int32_t>(acc[k]);
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubCount(const BatPtr& groups, std::size_t ngroups) {
  RETURN_IF_ERROR(CheckOids(groups, "group ids"));
  BatPtr out = Bat::MakeInt(ngroups);
  auto o = out->ints();
  std::fill(o.begin(), o.end(), 0);
  common::simd::GroupedCount(groups->oids().data(), groups->size(), o.data());
  return out;
}

Result<BatPtr> SequentialEngine::SubMin(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "submin input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  const std::size_t n = vals->size();
  BatPtr out = Bat::Make(vals->type(), ngroups);
  if (vals->type() == ValType::kFloat) {
    auto o = out->floats();
    std::fill(o.begin(), o.end(), cstore::FloatNil());
    auto fold = [&](std::size_t i, float v) {
      if (std::isnan(v)) return;
      if (std::isnan(o[g[i]]) || v < o[g[i]]) o[g[i]] = v;
    };
    if (vals->encoded()) {
      encoded::ValueCursor cur(*vals);
      for (std::size_t i = 0; i < n; ++i) fold(i, std::bit_cast<float>(cur.Bits(i)));
    } else {
      auto v = vals->floats();
      for (std::size_t i = 0; i < n; ++i) fold(i, v[i]);
    }
  } else {
    auto o = out->ints();
    std::fill(o.begin(), o.end(), kIntNil);
    auto fold = [&](std::size_t i, std::int32_t v) {
      if (v == kIntNil) return;
      if (o[g[i]] == kIntNil || v < o[g[i]]) o[g[i]] = v;
    };
    if (vals->encoded()) {
      encoded::ValueCursor cur(*vals);
      for (std::size_t i = 0; i < n; ++i) {
        fold(i, std::bit_cast<std::int32_t>(cur.Bits(i)));
      }
    } else {
      auto v = vals->ints();
      for (std::size_t i = 0; i < n; ++i) fold(i, v[i]);
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubMax(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "submax input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  auto g = groups->oids();
  const std::size_t n = vals->size();
  BatPtr out = Bat::Make(vals->type(), ngroups);
  if (vals->type() == ValType::kFloat) {
    auto o = out->floats();
    std::fill(o.begin(), o.end(), cstore::FloatNil());
    auto fold = [&](std::size_t i, float v) {
      if (std::isnan(v)) return;
      if (std::isnan(o[g[i]]) || v > o[g[i]]) o[g[i]] = v;
    };
    if (vals->encoded()) {
      encoded::ValueCursor cur(*vals);
      for (std::size_t i = 0; i < n; ++i) fold(i, std::bit_cast<float>(cur.Bits(i)));
    } else {
      auto v = vals->floats();
      for (std::size_t i = 0; i < n; ++i) fold(i, v[i]);
    }
  } else {
    auto o = out->ints();
    std::fill(o.begin(), o.end(), kIntNil);
    auto fold = [&](std::size_t i, std::int32_t v) {
      if (v == kIntNil) return;
      if (o[g[i]] == kIntNil || v > o[g[i]]) o[g[i]] = v;
    };
    if (vals->encoded()) {
      encoded::ValueCursor cur(*vals);
      for (std::size_t i = 0; i < n; ++i) {
        fold(i, std::bit_cast<std::int32_t>(cur.Bits(i)));
      }
    } else {
      auto v = vals->ints();
      for (std::size_t i = 0; i < n; ++i) fold(i, v[i]);
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::SubAvg(const BatPtr& vals, const BatPtr& groups,
                                        std::size_t ngroups) {
  RETURN_IF_ERROR(CheckNumeric(vals, "subavg input"));
  RETURN_IF_ERROR(CheckSameSize(vals, groups));
  std::vector<double> sum(ngroups, 0.0);
  std::vector<std::int64_t> cnt(ngroups, 0);
  auto g = groups->oids();
  const std::size_t n = vals->size();
  if (vals->encoded()) {
    encoded::ValueCursor cur(*vals);
    if (vals->type() == ValType::kFloat) {
      for (std::size_t i = 0; i < n; ++i) {
        float v = std::bit_cast<float>(cur.Bits(i));
        if (std::isnan(v)) continue;
        sum[g[i]] += v;
        cnt[g[i]] += 1;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::int32_t v = std::bit_cast<std::int32_t>(cur.Bits(i));
        if (v == kIntNil) continue;
        sum[g[i]] += v;
        cnt[g[i]] += 1;
      }
    }
  } else if (vals->type() == ValType::kFloat) {
    common::simd::GroupedSumFloat(vals->floats().data(), g.data(), n,
                                  sum.data(), cnt.data());
  } else {
    common::simd::GroupedSumInt32AsDouble(vals->ints().data(), g.data(), n,
                                          sum.data(), cnt.data());
  }
  BatPtr out = Bat::MakeFloat(ngroups);
  auto o = out->floats();
  for (std::size_t k = 0; k < ngroups; ++k) {
    o[k] = cnt[k] == 0 ? cstore::FloatNil()
                       : static_cast<float>(sum[k] / static_cast<double>(cnt[k]));
  }
  return out;
}

Result<double> SequentialEngine::Sum(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "sum input"));
  if (col->encoded()) return encoded::SumRows(*col, 0, col->size());
  double acc = 0;
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) acc += ValueAt(col, i);
  }
  return acc;
}

Result<double> SequentialEngine::Min(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "min input"));
  if (col->encoded()) return encoded::MinRows(*col, 0, col->size());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) best = std::min(best, ValueAt(col, i));
  }
  return best;
}

Result<double> SequentialEngine::Max(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "max input"));
  if (col->encoded()) return encoded::MaxRows(*col, 0, col->size());
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (!IsNilAt(col, i)) best = std::max(best, ValueAt(col, i));
  }
  return best;
}

Result<std::int64_t> SequentialEngine::Count(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("count input is null");
  return static_cast<std::int64_t>(col->size());
}

Result<BatPtr> SequentialEngine::Calc(CalcOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "calc rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  std::size_t n = a->size();
  bool a_int = a->type() == ValType::kInt;
  bool b_int = b->type() == ValType::kInt;
  bool int_result = a_int && b_int && op != CalcOp::kDiv;
  BatPtr out = Bat::Make(int_result ? ValType::kInt : ValType::kFloat, n);
  auto sop = detail::ToSimdOp(op);
  if (int_result) {
    common::simd::CalcIntInt(sop, a->ints().data(), b->ints().data(),
                             out->ints().data(), n);
  } else if (a_int && b_int) {
    common::simd::CalcIIf(sop, a->ints().data(), b->ints().data(),
                          out->floats().data(), n);
  } else if (a_int) {
    common::simd::CalcIF(sop, a->ints().data(), b->floats().data(),
                         out->floats().data(), n);
  } else if (b_int) {
    common::simd::CalcFI(sop, a->floats().data(), b->ints().data(),
                         out->floats().data(), n);
  } else {
    common::simd::CalcFF(sop, a->floats().data(), b->floats().data(),
                         out->floats().data(), n);
  }
  return out;
}

Result<BatPtr> SequentialEngine::CalcScalar(CalcOp op, const BatPtr& a, double s,
                                            bool scalar_left) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc input"));
  std::size_t n = a->size();
  BatPtr out = Bat::MakeFloat(n);
  if (a->type() == ValType::kInt) {
    common::simd::CalcScalarI(detail::ToSimdOp(op), a->ints().data(), s,
                              scalar_left, out->floats().data(), n);
  } else {
    common::simd::CalcScalarF(detail::ToSimdOp(op), a->floats().data(), s,
                              scalar_left, out->floats().data(), n);
  }
  return out;
}

Result<BatPtr> SequentialEngine::Cmp(CmpOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "cmp rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  std::size_t n = a->size();
  auto o = out->ints().data();
  auto rop = detail::ToSimdOp(op);
  bool a_int = a->type() == ValType::kInt;
  bool b_int = b->type() == ValType::kInt;
  if (a_int && b_int) {
    common::simd::CmpII(rop, a->ints().data(), b->ints().data(), o, n);
  } else if (a_int) {
    common::simd::CmpIF(rop, a->ints().data(), b->floats().data(), o, n);
  } else if (b_int) {
    common::simd::CmpFI(rop, a->floats().data(), b->ints().data(), o, n);
  } else {
    common::simd::CmpFF(rop, a->floats().data(), b->floats().data(), o, n);
  }
  return out;
}

Result<BatPtr> SequentialEngine::CmpScalar(CmpOp op, const BatPtr& a, double s) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp input"));
  BatPtr out = Bat::MakeInt(a->size());
  if (a->type() == ValType::kInt) {
    common::simd::CmpScalarI(detail::ToSimdOp(op), a->ints().data(), s,
                             out->ints().data(), a->size());
  } else {
    common::simd::CmpScalarF(detail::ToSimdOp(op), a->floats().data(), s,
                             out->ints().data(), a->size());
  }
  return out;
}

Result<BatPtr> SequentialEngine::BoolOr(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckInts(a, "or lhs"));
  RETURN_IF_ERROR(CheckInts(b, "or rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  common::simd::BoolBin(/*is_or=*/true, a->ints().data(), b->ints().data(),
                        out->ints().data(), a->size());
  return out;
}

Result<BatPtr> SequentialEngine::BoolAnd(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckInts(a, "and lhs"));
  RETURN_IF_ERROR(CheckInts(b, "and rhs"));
  RETURN_IF_ERROR(CheckSameSize(a, b));
  BatPtr out = Bat::MakeInt(a->size());
  common::simd::BoolBin(/*is_or=*/false, a->ints().data(), b->ints().data(),
                        out->ints().data(), a->size());
  return out;
}

Result<BatPtr> SequentialEngine::IfThenElseConst(const BatPtr& cond,
                                                 const BatPtr& then_vals,
                                                 double else_val) {
  RETURN_IF_ERROR(CheckInts(cond, "condition"));
  RETURN_IF_ERROR(CheckNumeric(then_vals, "then branch"));
  RETURN_IF_ERROR(CheckSameSize(cond, then_vals));
  std::size_t n = cond->size();
  auto c = cond->ints();
  BatPtr out = Bat::Make(then_vals->type(), n);
  if (then_vals->type() == ValType::kFloat) {
    auto t = then_vals->floats();
    auto o = out->floats();
    for (std::size_t i = 0; i < n; ++i) {
      o[i] = c[i] != 0 ? t[i] : static_cast<float>(else_val);
    }
  } else {
    auto t = then_vals->ints();
    auto o = out->ints();
    for (std::size_t i = 0; i < n; ++i) {
      o[i] = c[i] != 0 ? t[i] : static_cast<std::int32_t>(else_val);
    }
  }
  return out;
}

Result<BatPtr> SequentialEngine::Year(const BatPtr& col) {
  RETURN_IF_ERROR(CheckInts(col, "year input"));
  BatPtr out = Bat::MakeInt(col->size());
  auto v = col->ints();
  auto o = out->ints();
  for (std::size_t i = 0; i < col->size(); ++i) {
    if (v[i] == kIntNil) {
      o[i] = kIntNil;
      continue;
    }
    int y, m, d;
    common::date::ToYmd(v[i], &y, &m, &d);
    o[i] = y;
  }
  return out;
}

Result<BatPtr> SequentialEngine::CastToFloat(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "cast input"));
  if (col->type() == ValType::kFloat) {
    BatPtr out = Bat::MakeFloat(col->size());
    std::copy(col->floats().begin(), col->floats().end(), out->floats().begin());
    return out;
  }
  BatPtr out = Bat::MakeFloat(col->size());
  common::simd::CastIntToFloat(col->ints().data(), out->floats().data(),
                               col->size());
  return out;
}

}  // namespace monet
