#ifndef OCELOT_MONET_SEQ_ENGINE_H_
#define OCELOT_MONET_SEQ_ENGINE_H_

#include "cstore/engine.h"

namespace monet {

/// The sequential MonetDB baseline ("MS" in the paper's figures):
/// hand-written single-core operators in the style of MonetDB's GDK kernels
/// (tight loops over tail heaps, chained hash joins, quicksort ordering).
/// Runs in real time on the host — no virtual-clock interaction.
class SequentialEngine : public cstore::QueryEngine {
 public:
  std::string name() const override { return "MonetDB (sequential)"; }

  /// Stateless pure operators over host-resident BATs: independent
  /// instructions of a plan may run concurrently (the MAL dataflow
  /// executor's real-parallelism case; see QueryEngine::concurrency_safe).
  bool concurrency_safe() const override { return true; }

  common::Result<cstore::BatPtr> SelectRange(const cstore::BatPtr& col,
                                             const cstore::BatPtr& cand,
                                             cstore::Bound lo,
                                             cstore::Bound hi) override;
  common::Result<cstore::BatPtr> CandUnion(const cstore::BatPtr& a,
                                           const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> Project(const cstore::BatPtr& oids,
                                         const cstore::BatPtr& col) override;
  common::Result<cstore::JoinResult> HashJoin(const cstore::BatPtr& left,
                                              const cstore::BatPtr& right) override;
  common::Result<cstore::JoinResult> ThetaJoin(const cstore::BatPtr& left,
                                               const cstore::BatPtr& right,
                                               cstore::CmpOp op) override;
  common::Result<cstore::BatPtr> SemiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> AntiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::SortResult> Sort(const cstore::BatPtr& col) override;
  common::Result<cstore::GroupResult> GroupBy(const cstore::BatPtr& col,
                                              const cstore::GroupResult* prev) override;
  common::Result<cstore::BatPtr> SubSum(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubCount(const cstore::BatPtr& groups,
                                          std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMin(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMax(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubAvg(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<double> Sum(const cstore::BatPtr& col) override;
  common::Result<double> Min(const cstore::BatPtr& col) override;
  common::Result<double> Max(const cstore::BatPtr& col) override;
  common::Result<std::int64_t> Count(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> Calc(cstore::CalcOp op, const cstore::BatPtr& a,
                                      const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CalcScalar(cstore::CalcOp op, const cstore::BatPtr& a,
                                            double s, bool scalar_left) override;
  common::Result<cstore::BatPtr> Cmp(cstore::CmpOp op, const cstore::BatPtr& a,
                                     const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CmpScalar(cstore::CmpOp op, const cstore::BatPtr& a,
                                           double s) override;
  common::Result<cstore::BatPtr> BoolOr(const cstore::BatPtr& a,
                                        const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> BoolAnd(const cstore::BatPtr& a,
                                         const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> IfThenElseConst(const cstore::BatPtr& cond,
                                                 const cstore::BatPtr& then_vals,
                                                 double else_val) override;
  common::Result<cstore::BatPtr> Year(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> CastToFloat(const cstore::BatPtr& col) override;
};

}  // namespace monet

#endif  // OCELOT_MONET_SEQ_ENGINE_H_
