// OcelotEngine: element-wise column arithmetic (batcalc) and ungrouped
// aggregation via parallel binary reduction (paper 4.1.7).

#include <cmath>

#include "common/date.h"
#include "common/simd.h"
#include "monet/detail.h"
#include "ocelot/engine.h"
#include "ocelot/internal.h"
#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::CalcOp;
using cstore::CmpOp;
using cstore::kIntNil;
using cstore::ValType;

namespace {

Status CheckNumeric(const BatPtr& b, const char* what) {
  if (b == nullptr) return Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() == ValType::kOid) {
    return Status::InvalidArgument(std::string(what) + " must be int or float");
  }
  return Status::Ok();
}

double ApplyCalc(CalcOp op, double a, double b) {
  switch (op) {
    case CalcOp::kAdd:
      return a + b;
    case CalcOp::kSub:
      return a - b;
    case CalcOp::kMul:
      return a * b;
    case CalcOp::kDiv:
      return a / b;
  }
  return 0;
}

bool ApplyCmp(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// Type-erased per-element view of a numeric device buffer, resolved once
/// per kernel invocation (outside the hot loop).
struct NumSpans {
  std::span<const std::int32_t> iv;
  std::span<const float> fv;
  bool is_int;

  static NumSpans Of(const ocl::BufferPtr& buf, ValType type) {
    NumSpans s;
    s.is_int = type == ValType::kInt;
    if (s.is_int) {
      s.iv = buf->Span<const std::int32_t>();
    } else {
      s.fv = buf->Span<const float>();
    }
    return s;
  }
  double At(std::size_t i) const {
    return is_int ? static_cast<double>(iv[i]) : static_cast<double>(fv[i]);
  }
  bool Nil(std::size_t i) const {
    return is_int ? iv[i] == kIntNil : std::isnan(fv[i]);
  }
};

}  // namespace

// --- batcalc map kernels ---------------------------------------------------------

Result<BatPtr> OcelotEngine::Calc(CalcOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "calc rhs"));
  if (a->size() != b->size()) return Status::InvalidArgument("calc size mismatch");
  std::size_t n = a->size();
  bool int_result =
      a->type() == ValType::kInt && b->type() == ValType::kInt && op != CalcOp::kDiv;

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, a, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr b_buf, mm_.AcquireRead(&scope, b, &waits));
  BatPtr out = Bat::Make(int_result ? ValType::kInt : ValType::kFloat, n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  ValType at = a->type(), bt = b->type();
  ocl::KernelLaunch k;
  k.name = "batcalc_binop";
  k.body = [a_buf, b_buf, o_buf, n, op, at, bt, int_result](ocl::WorkGroup& wg) {
    NumSpans av = NumSpans::Of(a_buf, at);
    NumSpans bv = NumSpans::Of(b_buf, bt);
    auto oi = int_result ? o_buf->Span<std::int32_t>() : std::span<std::int32_t>();
    auto of = !int_result ? o_buf->Span<float>() : std::span<float>();
    common::simd::Arith sop = monet::detail::ToSimdOp(op);
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        // Contiguous chunk (CPU-preferred pattern): run the typed SIMD
        // kernel; it falls back to this very scalar loop when forced off.
        std::size_t at_ = static_cast<std::size_t>(r.first);
        std::size_t len = static_cast<std::size_t>(r.limit - r.first);
        if (int_result) {
          common::simd::CalcIntInt(sop, av.iv.data() + at_, bv.iv.data() + at_,
                                   oi.data() + at_, len);
        } else if (av.is_int && bv.is_int) {
          common::simd::CalcIIf(sop, av.iv.data() + at_, bv.iv.data() + at_,
                                of.data() + at_, len);
        } else if (av.is_int) {
          common::simd::CalcIF(sop, av.iv.data() + at_, bv.fv.data() + at_,
                               of.data() + at_, len);
        } else if (bv.is_int) {
          common::simd::CalcFI(sop, av.fv.data() + at_, bv.iv.data() + at_,
                               of.data() + at_, len);
        } else {
          common::simd::CalcFF(sop, av.fv.data() + at_, bv.fv.data() + at_,
                               of.data() + at_, len);
        }
        continue;
      }
      for (std::uint64_t i : r) {
        bool nil = av.Nil(i) || bv.Nil(i);
        double rr = nil ? 0 : ApplyCalc(op, av.At(i), bv.At(i));
        if (int_result) {
          oi[i] = nil ? kIntNil : static_cast<std::int32_t>(rr);
        } else {
          of[i] = nil ? cstore::FloatNil() : static_cast<float>(rr);
        }
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(a, ev);
  mm_.AddConsumer(b, ev);
  return out;
}

Result<BatPtr> OcelotEngine::CalcScalar(CalcOp op, const BatPtr& a, double s,
                                        bool scalar_left) {
  RETURN_IF_ERROR(CheckNumeric(a, "calc input"));
  std::size_t n = a->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, a, &waits));
  BatPtr out = Bat::MakeFloat(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  ValType at = a->type();
  ocl::KernelLaunch k;
  k.name = "batcalc_scalar";
  k.body = [a_buf, o_buf, n, op, s, scalar_left, at](ocl::WorkGroup& wg) {
    NumSpans av = NumSpans::Of(a_buf, at);
    auto of = o_buf->Span<float>();
    common::simd::Arith sop = monet::detail::ToSimdOp(op);
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        std::size_t at_ = static_cast<std::size_t>(r.first);
        std::size_t len = static_cast<std::size_t>(r.limit - r.first);
        if (av.is_int) {
          common::simd::CalcScalarI(sop, av.iv.data() + at_, s, scalar_left,
                                    of.data() + at_, len);
        } else {
          common::simd::CalcScalarF(sop, av.fv.data() + at_, s, scalar_left,
                                    of.data() + at_, len);
        }
        continue;
      }
      for (std::uint64_t i : r) {
        if (av.Nil(i)) {
          of[i] = cstore::FloatNil();
          continue;
        }
        double v = av.At(i);
        of[i] = static_cast<float>(scalar_left ? ApplyCalc(op, s, v)
                                               : ApplyCalc(op, v, s));
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(a, ev);
  return out;
}

Result<BatPtr> OcelotEngine::Cmp(CmpOp op, const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp lhs"));
  RETURN_IF_ERROR(CheckNumeric(b, "cmp rhs"));
  if (a->size() != b->size()) return Status::InvalidArgument("cmp size mismatch");
  std::size_t n = a->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, a, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr b_buf, mm_.AcquireRead(&scope, b, &waits));
  BatPtr out = Bat::MakeInt(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  ValType at = a->type(), bt = b->type();
  ocl::KernelLaunch k;
  k.name = "batcalc_cmp";
  k.body = [a_buf, b_buf, o_buf, n, op, at, bt](ocl::WorkGroup& wg) {
    NumSpans av = NumSpans::Of(a_buf, at);
    NumSpans bv = NumSpans::Of(b_buf, bt);
    auto oi = o_buf->Span<std::int32_t>();
    common::simd::Rel sop = monet::detail::ToSimdOp(op);
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        std::size_t at_ = static_cast<std::size_t>(r.first);
        std::size_t len = static_cast<std::size_t>(r.limit - r.first);
        if (av.is_int && bv.is_int) {
          common::simd::CmpII(sop, av.iv.data() + at_, bv.iv.data() + at_,
                              oi.data() + at_, len);
        } else if (av.is_int) {
          common::simd::CmpIF(sop, av.iv.data() + at_, bv.fv.data() + at_,
                              oi.data() + at_, len);
        } else if (bv.is_int) {
          common::simd::CmpFI(sop, av.fv.data() + at_, bv.iv.data() + at_,
                              oi.data() + at_, len);
        } else {
          common::simd::CmpFF(sop, av.fv.data() + at_, bv.fv.data() + at_,
                              oi.data() + at_, len);
        }
        continue;
      }
      for (std::uint64_t i : r) {
        bool nil = av.Nil(i) || bv.Nil(i);
        oi[i] = (!nil && ApplyCmp(op, av.At(i), bv.At(i))) ? 1 : 0;
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(a, ev);
  mm_.AddConsumer(b, ev);
  return out;
}

Result<BatPtr> OcelotEngine::CmpScalar(CmpOp op, const BatPtr& a, double s) {
  RETURN_IF_ERROR(CheckNumeric(a, "cmp input"));
  std::size_t n = a->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, a, &waits));
  BatPtr out = Bat::MakeInt(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  ValType at = a->type();
  ocl::KernelLaunch k;
  k.name = "batcalc_cmp_scalar";
  k.body = [a_buf, o_buf, n, op, s, at](ocl::WorkGroup& wg) {
    NumSpans av = NumSpans::Of(a_buf, at);
    auto oi = o_buf->Span<std::int32_t>();
    common::simd::Rel sop = monet::detail::ToSimdOp(op);
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        std::size_t at_ = static_cast<std::size_t>(r.first);
        std::size_t len = static_cast<std::size_t>(r.limit - r.first);
        if (av.is_int) {
          common::simd::CmpScalarI(sop, av.iv.data() + at_, s, oi.data() + at_, len);
        } else {
          common::simd::CmpScalarF(sop, av.fv.data() + at_, s, oi.data() + at_, len);
        }
        continue;
      }
      for (std::uint64_t i : r) {
        oi[i] = (!av.Nil(i) && ApplyCmp(op, av.At(i), s)) ? 1 : 0;
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(a, ev);
  return out;
}

namespace {

/// Shared implementation of the int32 0/1 logical kernels.
Result<BatPtr> BoolBinary(OcelotEngine* eng, MemoryManager* mm, ocl::DeviceContext* ctx,
                          const BatPtr& a, const BatPtr& b, bool is_or) {
  (void)eng;
  if (a == nullptr || b == nullptr) return Status::InvalidArgument("bool op: null input");
  if (a->type() != ValType::kInt || b->type() != ValType::kInt) {
    return Status::InvalidArgument("bool op requires int 0/1 BATs");
  }
  if (a->size() != b->size()) return Status::InvalidArgument("bool op size mismatch");
  std::size_t n = a->size();
  MemoryManager::OpScope scope(mm);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm->AcquireRead(&scope, a, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr b_buf, mm->AcquireRead(&scope, b, &waits));
  BatPtr out = Bat::MakeInt(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm->AcquireWrite(&scope, out));

  ocl::KernelLaunch k;
  k.name = is_or ? "batcalc_or" : "batcalc_and";
  k.body = [a_buf, b_buf, o_buf, n, is_or](ocl::WorkGroup& wg) {
    auto av = a_buf->Span<const std::int32_t>();
    auto bv = b_buf->Span<const std::int32_t>();
    auto ov = o_buf->Span<std::int32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        std::size_t at_ = static_cast<std::size_t>(r.first);
        common::simd::BoolBin(is_or, av.data() + at_, bv.data() + at_,
                              ov.data() + at_,
                              static_cast<std::size_t>(r.limit - r.first));
        continue;
      }
      for (std::uint64_t i : r) {
        ov[i] = (is_or ? (av[i] != 0 || bv[i] != 0) : (av[i] != 0 && bv[i] != 0)) ? 1 : 0;
      }
    }
  };
  ocl::EventPtr ev = ctx->queue()->EnqueueKernel(std::move(k), waits);
  mm->SetProducer(out, ev);
  mm->AddConsumer(a, ev);
  mm->AddConsumer(b, ev);
  return out;
}

}  // namespace

Result<BatPtr> OcelotEngine::BoolOr(const BatPtr& a, const BatPtr& b) {
  return BoolBinary(this, &mm_, ctx_, a, b, /*is_or=*/true);
}

Result<BatPtr> OcelotEngine::BoolAnd(const BatPtr& a, const BatPtr& b) {
  return BoolBinary(this, &mm_, ctx_, a, b, /*is_or=*/false);
}

Result<BatPtr> OcelotEngine::IfThenElseConst(const BatPtr& cond, const BatPtr& then_vals,
                                             double else_val) {
  if (cond == nullptr || then_vals == nullptr) {
    return Status::InvalidArgument("ifthenelse: null input");
  }
  if (cond->type() != ValType::kInt) {
    return Status::InvalidArgument("ifthenelse condition must be int 0/1");
  }
  RETURN_IF_ERROR(CheckNumeric(then_vals, "then branch"));
  if (cond->size() != then_vals->size()) {
    return Status::InvalidArgument("ifthenelse size mismatch");
  }
  std::size_t n = cond->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr c_buf, mm_.AcquireRead(&scope, cond, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr t_buf, mm_.AcquireRead(&scope, then_vals, &waits));
  BatPtr out = Bat::Make(then_vals->type(), n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  bool flt = then_vals->type() == ValType::kFloat;
  ocl::KernelLaunch k;
  k.name = "batcalc_ifthenelse";
  k.body = [c_buf, t_buf, o_buf, n, flt, else_val](ocl::WorkGroup& wg) {
    auto cv = c_buf->Span<const std::int32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      if (flt) {
        auto tv = t_buf->Span<const float>();
        auto ov = o_buf->Span<float>();
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          ov[i] = cv[i] != 0 ? tv[i] : static_cast<float>(else_val);
        }
      } else {
        auto tv = t_buf->Span<const std::int32_t>();
        auto ov = o_buf->Span<std::int32_t>();
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          ov[i] = cv[i] != 0 ? tv[i] : static_cast<std::int32_t>(else_val);
        }
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(cond, ev);
  mm_.AddConsumer(then_vals, ev);
  return out;
}

Result<BatPtr> OcelotEngine::Year(const BatPtr& col) {
  if (col == nullptr || col->type() != ValType::kInt) {
    return Status::InvalidArgument("year input must be an int date BAT");
  }
  std::size_t n = col->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, col, &waits));
  BatPtr out = Bat::MakeInt(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  ocl::KernelLaunch k;
  k.name = "batcalc_year";
  k.body = [a_buf, o_buf, n](ocl::WorkGroup& wg) {
    auto av = a_buf->Span<const std::int32_t>();
    auto ov = o_buf->Span<std::int32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t i : wg.UnitsFor(item, n)) {
        if (av[i] == kIntNil) {
          ov[i] = kIntNil;
          continue;
        }
        int y, m, d;
        common::date::ToYmd(av[i], &y, &m, &d);
        ov[i] = y;
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(col, ev);
  return out;
}

Result<BatPtr> OcelotEngine::CastToFloat(const BatPtr& col) {
  RETURN_IF_ERROR(CheckNumeric(col, "cast input"));
  std::size_t n = col->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm_.AcquireRead(&scope, col, &waits));
  BatPtr out = Bat::MakeFloat(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr o_buf, mm_.AcquireWrite(&scope, out));

  bool is_int = col->type() == ValType::kInt;
  ocl::KernelLaunch k;
  k.name = "batcalc_cast_flt";
  k.body = [a_buf, o_buf, n, is_int](ocl::WorkGroup& wg) {
    auto ov = o_buf->Span<float>();
    for (int item = 0; item < wg.local_size(); ++item) {
      if (is_int) {
        auto av = a_buf->Span<const std::int32_t>();
        ocl::UnitRange r = wg.UnitsFor(item, n);
        if (r.step == 1 && !r.empty()) {
          std::size_t at_ = static_cast<std::size_t>(r.first);
          common::simd::CastIntToFloat(av.data() + at_, ov.data() + at_,
                                       static_cast<std::size_t>(r.limit - r.first));
          continue;
        }
        for (std::uint64_t i : r) {
          ov[i] = av[i] == kIntNil ? cstore::FloatNil() : static_cast<float>(av[i]);
        }
      } else {
        auto av = a_buf->Span<const float>();
        for (std::uint64_t i : wg.UnitsFor(item, n)) ov[i] = av[i];
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(col, ev);
  return out;
}

// --- Ungrouped aggregation: parallel binary reduction (paper 4.1.7) ----------------

namespace {

enum class ReduceOp { kSum, kMin, kMax };

Result<double> Reduce(MemoryManager* mm, ocl::DeviceContext* ctx, const BatPtr& col,
                      ReduceOp op) {
  RETURN_IF_ERROR(CheckNumeric(col, "reduce input"));
  std::size_t n = col->size();
  int groups = ctx->device()->model().default_groups();

  MemoryManager::OpScope scope(mm);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr a_buf, mm->AcquireRead(&scope, col, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr partials,
                   mm->AllocScratch(static_cast<std::size_t>(groups) * 8));

  double init = op == ReduceOp::kSum ? 0.0
                : op == ReduceOp::kMin ? std::numeric_limits<double>::infinity()
                                       : -std::numeric_limits<double>::infinity();
  ValType at = col->type();

  // Stage 1: each work-group reduces its partition into one partial value;
  // work-items accumulate privately, the group folds sequentially (the
  // in-group barrier tree of the OpenCL original collapses to this under
  // the one-thread-per-group execution of section 4.2).
  ocl::KernelLaunch k1;
  k1.name = "reduce_partial";
  k1.body = [a_buf, partials, n, op, init, at](ocl::WorkGroup& wg) {
    NumSpans av = NumSpans::Of(a_buf, at);
    double acc = init;
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t i : wg.UnitsFor(item, n)) {
        if (av.Nil(i)) continue;
        double v = av.At(i);
        switch (op) {
          case ReduceOp::kSum:
            acc += v;
            break;
          case ReduceOp::kMin:
            acc = std::min(acc, v);
            break;
          case ReduceOp::kMax:
            acc = std::max(acc, v);
            break;
        }
      }
    }
    partials->Span<double>()[static_cast<std::size_t>(wg.group_id())] = acc;
  };
  ocl::EventPtr e1 = ctx->queue()->EnqueueKernel(std::move(k1), waits);

  // Stage 2: a single work-group folds the partials.
  ocl::KernelLaunch k2;
  k2.name = "reduce_final";
  k2.groups = 1;
  k2.local_size = 1;
  k2.body = [partials, groups, op](ocl::WorkGroup&) {
    auto p = partials->Span<double>();
    double acc = p[0];
    for (int g = 1; g < groups; ++g) {
      switch (op) {
        case ReduceOp::kSum:
          acc += p[static_cast<std::size_t>(g)];
          break;
        case ReduceOp::kMin:
          acc = std::min(acc, p[static_cast<std::size_t>(g)]);
          break;
        case ReduceOp::kMax:
          acc = std::max(acc, p[static_cast<std::size_t>(g)]);
          break;
      }
    }
    p[0] = acc;
  };
  ocl::EventPtr e2 = ctx->queue()->EnqueueKernel(std::move(k2), {e1});
  mm->AddConsumer(col, e2);

  // 8-byte result read-back.
  double result = 0;
  ocl::EventPtr read = ctx->queue()->EnqueueRead(&result, partials, 8, {e2});
  RETURN_IF_ERROR(ctx->queue()->Wait(read));
  result = partials->Span<double>()[0];
  return result;
}

}  // namespace

Result<double> OcelotEngine::Sum(const BatPtr& col) {
  return Reduce(&mm_, ctx_, col, ReduceOp::kSum);
}

Result<double> OcelotEngine::Min(const BatPtr& col) {
  return Reduce(&mm_, ctx_, col, ReduceOp::kMin);
}

Result<double> OcelotEngine::Max(const BatPtr& col) {
  return Reduce(&mm_, ctx_, col, ReduceOp::kMax);
}

Result<std::int64_t> OcelotEngine::Count(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("count input is null");
  // Counting a bitmap-backed candidate list is a device popcount; plain
  // BATs know their cardinality.
  if (mm_.FindBitmap(col) != nullptr) return CandCount(col);
  return static_cast<std::int64_t>(col->size());
}

}  // namespace ocelot
