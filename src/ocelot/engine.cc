// OcelotEngine: bitmap-based selection machinery, candidate handling,
// projection (gather) and ownership synchronization. Further operators live
// in join.cc, sort.cc, group.cc and calc.cc.

#include "ocelot/engine.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/simd.h"
#include "cstore/encoding.h"
#include "ocelot/internal.h"
#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using cstore::kOidNil;
using cstore::oid_t;
using cstore::ValType;
using internal::BitmapBytes;
using internal::CompiledRange;
using internal::LastByteMask;

namespace {

Status CheckNotNull(const BatPtr& b, const char* what) {
  if (b == nullptr) return Status::InvalidArgument(std::string(what) + " is null");
  return Status::Ok();
}

}  // namespace

// --- Selection (paper 4.1.1) -------------------------------------------------

Result<BatPtr> OcelotEngine::SelectRange(const BatPtr& col, const BatPtr& cand,
                                         Bound lo, Bound hi) {
  RETURN_IF_ERROR(CheckNotNull(col, "select input"));
  if (col->type() == ValType::kOid) {
    return Status::InvalidArgument("select input must be int or float");
  }
  std::size_t domain = col->size();
  std::size_t nbytes = (domain + 7) / 8;

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr bits, mm_.AllocScratch(BitmapBytes(domain)));

  CompiledRange pred(lo, hi);
  bool is_int = col->type() == ValType::kInt;
  ocl::EventPtr ev;
  if (col->encoded() && col->encoding() != cstore::Encoding::kRle) {
    // Native compressed select: the kernel reads the raw encoded image
    // (compressed bytes across the bus, no decode kernel). Dictionary
    // predicates are rewritten host-side — one Match per dictionary entry,
    // with the engine's own CompiledRange, so per-row outcomes are
    // bit-identical to the plain kernel's — leaving a byte-table lookup per
    // row. Bit-packed values are unpacked inline and tested directly.
    ASSIGN_OR_RETURN(ocl::BufferPtr phys, mm_.AcquireEncodedRead(&scope, col, &waits));
    const auto& info = col->encoding_info();
    const std::size_t row_offset = col->row_offset();
    ocl::KernelLaunch k;
    if (info->encoding == cstore::Encoding::kDict) {
      std::vector<std::uint8_t> match(info->dict->size());
      if (is_int) {
        auto dv = info->dict->ints();
        for (std::size_t c = 0; c < match.size(); ++c) {
          match[c] = static_cast<std::uint8_t>(pred.Match(dv[c]));
        }
      } else {
        auto dv = info->dict->floats();
        for (std::size_t c = 0; c < match.size(); ++c) {
          match[c] = static_cast<std::uint8_t>(pred.Match(dv[c]));
        }
      }
      const std::size_t cw = info->code_width;
      k.name = "select_range_dict";
      k.body = [phys, bits, match = std::move(match), cw, domain, nbytes,
                row_offset](ocl::WorkGroup& wg) {
        auto c8 = phys->Span<const std::uint8_t>();
        auto c16 = phys->Span<const std::uint16_t>();
        auto out = bits->Span<std::uint8_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t u : wg.UnitsFor(item, nbytes)) {
            std::uint8_t byte = 0;
            std::size_t base = static_cast<std::size_t>(u) * 8;
            std::size_t limit = std::min(domain, base + 8);
            for (std::size_t i = base; i < limit; ++i) {
              const std::size_t r = row_offset + i;
              byte |= static_cast<std::uint8_t>(match[cw == 1 ? c8[r] : c16[r]])
                      << (i - base);
            }
            out[u] = byte;
          }
        }
      };
    } else {  // kBitPacked: int-only and nil-free by construction
      const std::uint32_t width = info->bit_width;
      const std::int32_t vbase = info->base;
      k.name = "select_range_bitpack";
      k.body = [phys, bits, pred, width, vbase, domain, nbytes,
                row_offset](ocl::WorkGroup& wg) {
        auto words = phys->Span<const std::uint32_t>();
        auto out = bits->Span<std::uint8_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t u : wg.UnitsFor(item, nbytes)) {
            std::uint8_t byte = 0;
            std::size_t base = static_cast<std::size_t>(u) * 8;
            std::size_t limit = std::min(domain, base + 8);
            for (std::size_t i = base; i < limit; ++i) {
              byte |= static_cast<std::uint8_t>(pred.Match(cstore::BitPackedAt(
                          words.data(), width, vbase, row_offset + i)))
                      << (i - base);
            }
            out[u] = byte;
          }
        }
      };
    }
    ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
    mm_.AddEncodedConsumer(col, ev);
  } else {
    // Plain (or RLE, which rides the decode-on-device fallback) path.
    ASSIGN_OR_RETURN(ocl::BufferPtr col_buf, mm_.AcquireRead(&scope, col, &waits));

    // One result byte per work-item step: the predicate is evaluated on eight
    // four-byte values per unit, the geometry the paper found robust across
    // architectures.
    ocl::KernelLaunch k;
    k.name = is_int ? "select_range_int" : "select_range_flt";
    k.body = [col_buf, bits, pred, domain, nbytes, is_int](ocl::WorkGroup& wg) {
      auto iv = is_int ? col_buf->Span<const std::int32_t>()
                       : std::span<const std::int32_t>();
      auto fv = !is_int ? col_buf->Span<const float>() : std::span<const float>();
      auto out = bits->Span<std::uint8_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        ocl::UnitRange r = wg.UnitsFor(item, nbytes);
        if (r.step == 1 && !r.empty()) {
          // Contiguous byte chunk (CPU-preferred pattern): one SIMD bitmask
          // call covers the whole chunk, 8 elements per output byte.
          std::size_t base = static_cast<std::size_t>(r.first) * 8;
          std::size_t limit = std::min(domain, static_cast<std::size_t>(r.limit) * 8);
          if (is_int) {
            common::simd::RangeMaskBytesInt32(iv.data() + base, limit - base,
                                              pred.lo, pred.hi, out.data() + r.first);
          } else {
            common::simd::RangeMaskBytesFloat(fv.data() + base, limit - base,
                                              pred.lo, pred.hi, out.data() + r.first);
          }
          continue;
        }
        for (std::uint64_t u : r) {
          std::uint8_t byte = 0;
          std::size_t base = static_cast<std::size_t>(u) * 8;
          std::size_t limit = std::min(domain, base + 8);
          if (is_int) {
            for (std::size_t i = base; i < limit; ++i) {
              byte |= static_cast<std::uint8_t>(pred.Match(iv[i])) << (i - base);
            }
          } else {
            for (std::size_t i = base; i < limit; ++i) {
              byte |= static_cast<std::uint8_t>(pred.Match(fv[i])) << (i - base);
            }
          }
          out[u] = byte;
        }
      }
    };
    ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
    mm_.AddConsumer(col, ev);
  }

  // Conjunction with the incoming candidate list stays in bitmap space —
  // the key advantage over oid materialization (Fig. 5a/5b).
  if (cand != nullptr) {
    MemoryManager::BitmapInfo* cinfo = mm_.FindBitmap(cand);
    ocl::BufferPtr cand_bits;
    ocl::EventList and_waits{ev};
    if (cinfo != nullptr) {
      if (cinfo->domain != domain) {
        return Status::InvalidArgument("candidate bitmap domain mismatch");
      }
      cand_bits = cinfo->bits;
      if (cinfo->producer != nullptr && !cinfo->producer->complete()) {
        and_waits.push_back(cinfo->producer);
      }
    } else {
      // Materialized oid-list candidates get scattered back into a bitmap.
      ocl::EventList cwaits;
      ASSIGN_OR_RETURN(ocl::BufferPtr cand_buf, mm_.AcquireRead(&scope, cand, &cwaits));
      ASSIGN_OR_RETURN(cand_bits, mm_.AllocScratch(BitmapBytes(domain)));
      std::size_t cn = cand->size();
      ocl::KernelLaunch zero;
      zero.name = "bitmap_zero";
      std::size_t words = BitmapBytes(domain) / 4;
      zero.body = [cand_bits, words](ocl::WorkGroup& wg) {
        auto w = cand_bits->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t u : wg.UnitsFor(item, words)) w[u] = 0;
        }
      };
      ocl::EventPtr ez = ctx_->queue()->EnqueueKernel(std::move(zero), cwaits);
      ocl::KernelLaunch scatter;
      scatter.name = "bitmap_from_oids";
      scatter.body = [cand_buf, cand_bits, cn, nbytes](ocl::WorkGroup& wg) {
        auto src = cand_buf->Span<const oid_t>();
        auto out = cand_bits->Span<std::uint8_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          ocl::UnitRange r = wg.ContiguousUnitsFor(item, cn);
          for (std::uint64_t i : r) {
            out[src[i] / 8] |= static_cast<std::uint8_t>(1u << (src[i] % 8));
          }
          wg.CountAtomics(r.size(), nbytes);  // cross-item bytes may collide
        }
      };
      ocl::EventPtr es = ctx_->queue()->EnqueueKernel(std::move(scatter), {ez});
      mm_.AddConsumer(cand, es);
      and_waits.push_back(es);
    }

    std::size_t words = BitmapBytes(domain) / 4;
    ocl::KernelLaunch andk;
    andk.name = "bitmap_and";
    andk.body = [bits, cand_bits, words](ocl::WorkGroup& wg) {
      auto dst = bits->Span<std::uint32_t>();
      auto src = cand_bits->Span<const std::uint32_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t u : wg.UnitsFor(item, words)) dst[u] &= src[u];
      }
    };
    ev = ctx_->queue()->EnqueueKernel(std::move(andk), and_waits);
  }

  BatPtr handle = Bat::MakeOid(0);
  handle->set_sorted(true);
  handle->set_key(true);
  handle->set_nonil(true);
  mm_.RegisterBitmap(handle, {bits, domain, ev, -1});
  return handle;
}

Result<BatPtr> OcelotEngine::CandUnion(const BatPtr& a, const BatPtr& b) {
  RETURN_IF_ERROR(CheckNotNull(a, "union lhs"));
  RETURN_IF_ERROR(CheckNotNull(b, "union rhs"));
  MemoryManager::BitmapInfo* ia = mm_.FindBitmap(a);
  MemoryManager::BitmapInfo* ib = mm_.FindBitmap(b);
  if (ia != nullptr && ib != nullptr && ia->domain == ib->domain) {
    std::size_t words = BitmapBytes(ia->domain) / 4;
    ASSIGN_OR_RETURN(ocl::BufferPtr out, mm_.AllocScratch(BitmapBytes(ia->domain)));
    ocl::EventList waits;
    if (ia->producer != nullptr && !ia->producer->complete()) waits.push_back(ia->producer);
    if (ib->producer != nullptr && !ib->producer->complete()) waits.push_back(ib->producer);
    ocl::BufferPtr abits = ia->bits, bbits = ib->bits;
    ocl::KernelLaunch k;
    k.name = "bitmap_or";
    k.body = [abits, bbits, out, words](ocl::WorkGroup& wg) {
      auto av = abits->Span<const std::uint32_t>();
      auto bv = bbits->Span<const std::uint32_t>();
      auto ov = out->Span<std::uint32_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t u : wg.UnitsFor(item, words)) ov[u] = av[u] | bv[u];
      }
    };
    ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), std::move(waits));
    BatPtr handle = Bat::MakeOid(0);
    handle->set_sorted(true);
    handle->set_key(true);
    handle->set_nonil(true);
    mm_.RegisterBitmap(handle, {out, ia->domain, ev, -1});
    return handle;
  }

  // Mixed representations: fall back to a host-side sorted merge.
  RETURN_IF_ERROR(Sync(a));
  RETURN_IF_ERROR(Sync(b));
  auto av = a->oids();
  auto bv = b->oids();
  std::vector<oid_t> merged;
  merged.reserve(av.size() + bv.size());
  std::set_union(av.begin(), av.end(), bv.begin(), bv.end(),
                 std::back_inserter(merged));
  BatPtr out = Bat::MakeOid(merged.size());
  std::copy(merged.begin(), merged.end(), out->oids().begin());
  out->set_sorted(true);
  out->set_key(true);
  out->set_nonil(true);
  return out;
}

// --- Bitmap materialization (paper 4.1.2) --------------------------------------

Status OcelotEngine::MaterializeCand(const BatPtr& cand) {
  RETURN_IF_ERROR(CheckNotNull(cand, "candidates"));
  MemoryManager::BitmapInfo* info = mm_.FindBitmap(cand);
  if (info == nullptr) return Status::Ok();  // already a real oid BAT

  std::size_t domain = info->domain;
  std::size_t nbytes = (domain + 7) / 8;
  const ocl::DeviceModel& model = ctx_->device()->model();
  std::size_t threads = static_cast<std::size_t>(model.default_groups()) *
                        static_cast<std::size_t>(model.default_local_size());

  MemoryManager::OpScope scope(&mm_);
  ASSIGN_OR_RETURN(ocl::BufferPtr counts, mm_.AllocScratch(threads * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr offsets, mm_.AllocScratch((threads + 1) * 4));

  ocl::EventList waits;
  if (info->producer != nullptr && !info->producer->complete()) {
    waits.push_back(info->producer);
  }
  ocl::BufferPtr bits = info->bits;

  // Step 1: per-thread popcounts over contiguous byte chunks.
  ocl::KernelLaunch kc;
  kc.name = "bitmap_mat_count";
  kc.body = [bits, counts, domain, nbytes](ocl::WorkGroup& wg) {
    auto in = bits->Span<const std::uint8_t>();
    auto out = counts->Span<std::uint32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t c = 0;
      for (std::uint64_t u : wg.ContiguousUnitsFor(item, nbytes)) {
        c += static_cast<std::uint32_t>(
            std::popcount(static_cast<unsigned>(in[u] & LastByteMask(domain, u))));
      }
      out[static_cast<std::size_t>(wg.global_id(item))] = c;
    }
  };
  ocl::EventPtr ec = ctx_->queue()->EnqueueKernel(std::move(kc), std::move(waits));

  // Step 2: prefix sum over the counts gives unique write offsets.
  ASSIGN_OR_RETURN(ocl::EventPtr es,
                   EnqueueExclusiveScan(&mm_, counts, offsets, threads, {ec}));
  ASSIGN_OR_RETURN(std::uint32_t total, ReadScalarU32(ctx_, offsets, threads, {es}));

  // Step 3: each thread writes the positions of its set bits at its offset.
  cand->ResizeTail(total);
  ASSIGN_OR_RETURN(ocl::BufferPtr out_buf, mm_.AcquireWrite(&scope, cand));
  ocl::KernelLaunch km;
  km.name = "bitmap_mat_scatter";
  km.body = [bits, offsets, out_buf, domain, nbytes](ocl::WorkGroup& wg) {
    auto in = bits->Span<const std::uint8_t>();
    auto offs = offsets->Span<const std::uint32_t>();
    auto out = out_buf->Span<oid_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t at = offs[static_cast<std::size_t>(wg.global_id(item))];
      for (std::uint64_t u : wg.ContiguousUnitsFor(item, nbytes)) {
        unsigned byte = in[u] & LastByteMask(domain, u);
        while (byte != 0) {
          int bit = std::countr_zero(byte);
          out[at++] = static_cast<oid_t>(u * 8 + static_cast<unsigned>(bit));
          byte &= byte - 1;
        }
      }
    }
  };
  ocl::EventPtr em = ctx_->queue()->EnqueueKernel(std::move(km), {es});
  mm_.SetProducer(cand, em);
  info->count = total;
  mm_.DropBitmap(cand);
  return Status::Ok();
}

Result<std::int64_t> OcelotEngine::CandCount(const BatPtr& cand) {
  RETURN_IF_ERROR(CheckNotNull(cand, "candidates"));
  MemoryManager::BitmapInfo* info = mm_.FindBitmap(cand);
  if (info == nullptr) return static_cast<std::int64_t>(cand->size());
  if (info->count >= 0) return info->count;

  std::size_t domain = info->domain;
  std::size_t nbytes = (domain + 7) / 8;
  int groups = ctx_->device()->model().default_groups();
  ASSIGN_OR_RETURN(ocl::BufferPtr partials,
                   mm_.AllocScratch(static_cast<std::size_t>(groups) * 4));
  ocl::EventList waits;
  if (info->producer != nullptr && !info->producer->complete()) {
    waits.push_back(info->producer);
  }
  ocl::BufferPtr bits = info->bits;

  ocl::KernelLaunch kp;
  kp.name = "bitmap_popcount";
  kp.body = [bits, partials, domain, nbytes](ocl::WorkGroup& wg) {
    auto in = bits->Span<const std::uint8_t>();
    std::uint32_t c = 0;
    for (std::uint64_t u : wg.GroupUnits(nbytes)) {
      c += static_cast<std::uint32_t>(
          std::popcount(static_cast<unsigned>(in[u] & LastByteMask(domain, u))));
    }
    partials->Span<std::uint32_t>()[static_cast<std::size_t>(wg.group_id())] = c;
  };
  ocl::EventPtr ep = ctx_->queue()->EnqueueKernel(std::move(kp), std::move(waits));

  ocl::KernelLaunch kr;
  kr.name = "popcount_reduce";
  kr.groups = 1;
  kr.local_size = 1;
  kr.body = [partials, groups](ocl::WorkGroup&) {
    auto p = partials->Span<std::uint32_t>();
    std::uint32_t total = 0;
    for (int g = 0; g < groups; ++g) total += p[static_cast<std::size_t>(g)];
    p[0] = total;
  };
  ocl::EventPtr er = ctx_->queue()->EnqueueKernel(std::move(kr), {ep});
  ASSIGN_OR_RETURN(std::uint32_t total, ReadScalarU32(ctx_, partials, 0, {er}));
  info->count = total;
  return static_cast<std::int64_t>(total);
}

// --- Projection: parallel gather (paper 4.1.2) -----------------------------------

Result<BatPtr> OcelotEngine::Project(const BatPtr& oids, const BatPtr& col) {
  RETURN_IF_ERROR(CheckNotNull(oids, "projection head"));
  RETURN_IF_ERROR(CheckNotNull(col, "projection tail"));
  if (oids->type() != ValType::kOid) {
    return Status::InvalidArgument("projection head must be an oid BAT");
  }
  RETURN_IF_ERROR(MaterializeCand(oids));

  std::size_t n = oids->size();
  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr idx_buf, mm_.AcquireRead(&scope, oids, &waits));
  ValType type = col->type();

  if (col->encoded() && col->encoding() != cstore::Encoding::kRle) {
    // Native compressed gather: the source stays in its encoded image on the
    // device (compressed transfer, no decode kernel); codes are looked up /
    // unpacked per fetched row. RLE has no random-access path and takes the
    // decoded fallback below.
    ASSIGN_OR_RETURN(ocl::BufferPtr phys, mm_.AcquireEncodedRead(&scope, col, &waits));
    const auto& info = col->encoding_info();
    const std::size_t row_offset = col->row_offset();
    BatPtr out = Bat::Make(type, n);
    ASSIGN_OR_RETURN(ocl::BufferPtr dst_buf, mm_.AcquireWrite(&scope, out));
    std::uint32_t nil_bits =
        type == ValType::kInt ? std::bit_cast<std::uint32_t>(cstore::kIntNil)
        : type == ValType::kFloat
            ? std::bit_cast<std::uint32_t>(cstore::FloatNil())
            : kOidNil;
    ocl::KernelLaunch k;
    ocl::BufferPtr dict_buf;
    if (info->encoding == cstore::Encoding::kDict) {
      ASSIGN_OR_RETURN(dict_buf, mm_.AcquireRead(&scope, info->dict, &waits));
      const std::size_t cw = info->code_width;
      k.name = "gather_dict";
      k.body = [idx_buf, phys, dict_buf, dst_buf, n, cw, row_offset,
                nil_bits](ocl::WorkGroup& wg) {
        auto idx = idx_buf->Span<const oid_t>();
        auto c8 = phys->Span<const std::uint8_t>();
        auto c16 = phys->Span<const std::uint16_t>();
        auto dict = dict_buf->Span<const std::uint32_t>();
        auto dst = dst_buf->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t i : wg.UnitsFor(item, n)) {
            if (idx[i] == kOidNil) {
              dst[i] = nil_bits;
              continue;
            }
            const std::size_t r = row_offset + idx[i];
            dst[i] = dict[cw == 1 ? c8[r] : c16[r]];
          }
        }
      };
    } else {  // kBitPacked
      const std::uint32_t width = info->bit_width;
      const std::int32_t vbase = info->base;
      k.name = "gather_bitpack";
      k.body = [idx_buf, phys, dst_buf, n, width, vbase, row_offset,
                nil_bits](ocl::WorkGroup& wg) {
        auto idx = idx_buf->Span<const oid_t>();
        auto words = phys->Span<const std::uint32_t>();
        auto dst = dst_buf->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t i : wg.UnitsFor(item, n)) {
            dst[i] = idx[i] == kOidNil
                         ? nil_bits
                         : std::bit_cast<std::uint32_t>(cstore::BitPackedAt(
                               words.data(), width, vbase, row_offset + idx[i]));
          }
        }
      };
    }
    ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
    mm_.SetProducer(out, ev);
    mm_.AddConsumer(oids, ev);
    mm_.AddEncodedConsumer(col, ev);
    if (dict_buf != nullptr) mm_.AddConsumer(info->dict, ev);
    return out;
  }

  ASSIGN_OR_RETURN(ocl::BufferPtr src_buf, mm_.AcquireRead(&scope, col, &waits));
  BatPtr out = Bat::Make(col->type(), n);
  ASSIGN_OR_RETURN(ocl::BufferPtr dst_buf, mm_.AcquireWrite(&scope, out));
  ocl::KernelLaunch k;
  k.name = "gather";
  k.body = [idx_buf, src_buf, dst_buf, n, type](ocl::WorkGroup& wg) {
    auto idx = idx_buf->Span<const oid_t>();
    // All tails are 4-byte; gather generically except for the nil fixup.
    auto src = src_buf->Span<const std::uint32_t>();
    auto dst = dst_buf->Span<std::uint32_t>();
    std::uint32_t nil_bits = kOidNil;
    switch (type) {
      case ValType::kInt:
        nil_bits = std::bit_cast<std::uint32_t>(cstore::kIntNil);
        break;
      case ValType::kFloat:
        nil_bits = std::bit_cast<std::uint32_t>(cstore::FloatNil());
        break;
      case ValType::kOid:
        nil_bits = kOidNil;
        break;
    }
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      if (r.step == 1 && !r.empty()) {
        // Contiguous chunk: the SIMD-layer gather adds distance-ahead
        // prefetching of the randomly accessed source column.
        common::simd::GatherU32(src.data(), src.size(), idx.data() + r.first,
                                static_cast<std::size_t>(r.limit - r.first),
                                nil_bits, dst.data() + r.first);
        continue;
      }
      for (std::uint64_t i : r) {
        dst[i] = idx[i] == kOidNil ? nil_bits : src[idx[i]];
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
  mm_.SetProducer(out, ev);
  mm_.AddConsumer(oids, ev);
  mm_.AddConsumer(col, ev);
  return out;
}

// --- Ownership handover (paper 3.4) -----------------------------------------------

Status OcelotEngine::Sync(const BatPtr& bat) {
  RETURN_IF_ERROR(CheckNotNull(bat, "sync target"));
  RETURN_IF_ERROR(MaterializeCand(bat));
  return mm_.SyncToHost(bat);
}

}  // namespace ocelot
