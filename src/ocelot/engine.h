#ifndef OCELOT_OCELOT_ENGINE_H_
#define OCELOT_OCELOT_ENGINE_H_

#include <memory>

#include "cstore/engine.h"
#include "ocelot/memory_manager.h"

namespace ocelot {

/// The hardware-oblivious operator set — the paper's contribution. One
/// implementation of every relational operator, written against the kernel
/// programming model (OpenCLite) and mapped at runtime to whichever device
/// the context wraps (the Xeon CPU model or the GTX460 GPU model).
///
/// Operator host-code is device-independent: all device-specific decisions
/// (work-group geometry, access patterns, radix widths, memory placement)
/// are taken by the runtime, the memory manager, or the device model — see
/// paper sections 3.2 and 4.2.
///
/// Selection results are device-side bitmaps behind placeholder oid BATs
/// (paper 4.1.1); they are combined with bit operations and only
/// materialized into oid lists when an operator needs explicit positions or
/// when `Sync` hands the BAT back to the host.
class OcelotEngine : public cstore::QueryEngine {
 public:
  /// Binds to device slot `device_index` of `ctx`; the default is the
  /// primary device, matching the historical one-device contexts.
  explicit OcelotEngine(ocl::Context* ctx, int device_index = 0)
      : OcelotEngine(ctx->at(device_index)) {}

  /// Binds directly to one device slot (used by ocelot::Scheduler, which
  /// creates one engine per slot of a multi-device context).
  explicit OcelotEngine(ocl::DeviceContext* ctx) : ctx_(ctx), mm_(ctx) {}

  std::string name() const override {
    return std::string("Ocelot on ") + ctx_->device()->name();
  }

  /// Audited not concurrency-safe: operators enqueue into the slot's single
  /// CommandQueue (unsynchronized pending deque; flushes splice modeled
  /// time into the context clock), and OpScope refcounts assume one driving
  /// thread per slot. The MAL dataflow executor therefore serializes calls
  /// in program order; cross-*slot* parallelism stays with the Scheduler.
  bool concurrency_safe() const override { return false; }

  ocl::DeviceContext* context() { return ctx_; }
  MemoryManager* memory() { return &mm_; }

  common::Result<cstore::BatPtr> SelectRange(const cstore::BatPtr& col,
                                             const cstore::BatPtr& cand,
                                             cstore::Bound lo,
                                             cstore::Bound hi) override;
  common::Result<cstore::BatPtr> CandUnion(const cstore::BatPtr& a,
                                           const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> Project(const cstore::BatPtr& oids,
                                         const cstore::BatPtr& col) override;
  common::Result<cstore::JoinResult> HashJoin(const cstore::BatPtr& left,
                                              const cstore::BatPtr& right) override;
  common::Result<cstore::JoinResult> ThetaJoin(const cstore::BatPtr& left,
                                               const cstore::BatPtr& right,
                                               cstore::CmpOp op) override;
  common::Result<cstore::BatPtr> SemiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> AntiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::SortResult> Sort(const cstore::BatPtr& col) override;
  common::Result<cstore::GroupResult> GroupBy(const cstore::BatPtr& col,
                                              const cstore::GroupResult* prev) override;
  common::Result<cstore::BatPtr> SubSum(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubCount(const cstore::BatPtr& groups,
                                          std::size_t ngroups) override;
  /// Per-group count of *non-nil* values of `vals` (0 for a group with only
  /// nils — counts are never nil). Not part of the QueryEngine surface: it
  /// exists so ocelot::Scheduler can distribute SubAvg exactly (merge
  /// partial sums and non-nil counts, then divide by the non-nil count the
  /// way every engine's avg does).
  common::Result<cstore::BatPtr> SubCountNonNil(const cstore::BatPtr& vals,
                                                const cstore::BatPtr& groups,
                                                std::size_t ngroups);
  common::Result<cstore::BatPtr> SubMin(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMax(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubAvg(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<double> Sum(const cstore::BatPtr& col) override;
  common::Result<double> Min(const cstore::BatPtr& col) override;
  common::Result<double> Max(const cstore::BatPtr& col) override;
  common::Result<std::int64_t> Count(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> Calc(cstore::CalcOp op, const cstore::BatPtr& a,
                                      const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CalcScalar(cstore::CalcOp op, const cstore::BatPtr& a,
                                            double s, bool scalar_left) override;
  common::Result<cstore::BatPtr> Cmp(cstore::CmpOp op, const cstore::BatPtr& a,
                                     const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CmpScalar(cstore::CmpOp op, const cstore::BatPtr& a,
                                           double s) override;
  common::Result<cstore::BatPtr> BoolOr(const cstore::BatPtr& a,
                                        const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> BoolAnd(const cstore::BatPtr& a,
                                         const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> IfThenElseConst(const cstore::BatPtr& cond,
                                                 const cstore::BatPtr& then_vals,
                                                 double else_val) override;
  common::Result<cstore::BatPtr> Year(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> CastToFloat(const cstore::BatPtr& col) override;

  /// The explicit ownership-handover operator (paper 3.4): waits on the
  /// producer events, materializes bitmap-backed candidates, and transfers
  /// device-resident results into the BAT's host heap.
  common::Status Sync(const cstore::BatPtr& bat) override;

  /// Cardinality of a candidate list without materializing it: bitmap
  /// popcount on the device (used by selectivity accounting and benches).
  common::Result<std::int64_t> CandCount(const cstore::BatPtr& cand);

  /// Ensures `cand` is a materialized oid BAT (paper 4.1.2: bitmap ->
  /// prefix sum -> position scatter). Idempotent for real oid BATs.
  common::Status MaterializeCand(const cstore::BatPtr& cand);

 private:
  // Implementation helpers shared by the operator translation units.
  friend struct EngineOps;

  ocl::DeviceContext* ctx_;
  MemoryManager mm_;
};

}  // namespace ocelot

#endif  // OCELOT_OCELOT_ENGINE_H_
