// OcelotEngine: grouping (paper 4.1.6) and grouped aggregation (4.1.7).
//
// Grouping has two code paths: sorted inputs detect group boundaries by
// neighbor comparison plus a prefix sum; unsorted inputs build the distinct
// hash table and derive dense ids from the occupied-slot prefix sum.
// Multi-column grouping recurses on combined ids. Grouped aggregation uses
// the hierarchical scheme: per-work-group tables with multiple accumulators
// per group (inversely proportional to the group count) to spread atomic
// contention, then a final per-group fold.

#include <algorithm>
#include <bit>
#include <limits>

#include "ocelot/engine.h"
#include "ocelot/hash_table.h"
#include "ocelot/internal.h"
#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::GroupResult;
using cstore::kIntNil;
using cstore::oid_t;
using cstore::ValType;

namespace {

Status CheckNumeric(const BatPtr& b, const char* what) {
  if (b == nullptr) return Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() == ValType::kOid) {
    return Status::InvalidArgument(std::string(what) + " must be int or float");
  }
  return Status::Ok();
}

}  // namespace

Result<GroupResult> OcelotEngine::GroupBy(const BatPtr& col, const GroupResult* prev) {
  RETURN_IF_ERROR(CheckNumeric(col, "group input"));
  std::size_t n = col->size();

  // Multi-column refinement: combine the previous group ids with this
  // column's own grouping, then group the combined ids (paper 4.1.6).
  if (prev != nullptr) {
    if (prev->groups == nullptr || prev->groups->size() != n) {
      return Status::InvalidArgument("refining grouping of mismatched size");
    }
    ASSIGN_OR_RETURN(GroupResult sub, GroupBy(col, nullptr));
    if (prev->ngroups != 0 && sub.ngroups != 0 &&
        static_cast<std::uint64_t>(prev->ngroups) * sub.ngroups >
            static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
      return Status::ResourceExhausted("combined group id space exceeds int32");
    }
    BatPtr combined = Bat::MakeInt(n);
    MemoryManager::OpScope scope(&mm_);
    ocl::EventList waits;
    ASSIGN_OR_RETURN(ocl::BufferPtr p_buf, mm_.AcquireRead(&scope, prev->groups, &waits));
    ASSIGN_OR_RETURN(ocl::BufferPtr s_buf, mm_.AcquireRead(&scope, sub.groups, &waits));
    ASSIGN_OR_RETURN(ocl::BufferPtr c_buf, mm_.AcquireWrite(&scope, combined));
    std::int32_t stride = static_cast<std::int32_t>(sub.ngroups);
    ocl::KernelLaunch k;
    k.name = "group_combine_ids";
    k.body = [p_buf, s_buf, c_buf, n, stride](ocl::WorkGroup& wg) {
      auto pv = p_buf->Span<const oid_t>();
      auto sv = s_buf->Span<const oid_t>();
      auto cv = c_buf->Span<std::int32_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          cv[i] = static_cast<std::int32_t>(pv[i]) * stride +
                  static_cast<std::int32_t>(sv[i]);
        }
      }
    };
    ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(k), waits);
    mm_.SetProducer(combined, ev);
    mm_.AddConsumer(prev->groups, ev);
    mm_.AddConsumer(sub.groups, ev);
    return GroupBy(combined, nullptr);
  }

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr col_buf, mm_.AcquireRead(&scope, col, &waits));

  GroupResult res;
  res.groups = Bat::MakeOid(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr gid_buf, mm_.AcquireWrite(&scope, res.groups));

  if (col->sorted()) {
    // Sorted path: boundary flags -> prefix sum -> dense ids (paper 4.1.6).
    ASSIGN_OR_RETURN(ocl::BufferPtr flags, mm_.AllocScratch(std::max<std::size_t>(n, 1) * 4));
    ASSIGN_OR_RETURN(ocl::BufferPtr scans, mm_.AllocScratch((n + 1) * 4));
    bool is_int = col->type() == ValType::kInt;
    ocl::KernelLaunch kf;
    kf.name = "group_boundaries";
    kf.body = [col_buf, flags, n, is_int](ocl::WorkGroup& wg) {
      auto f = flags->Span<std::uint32_t>();
      auto iv = is_int ? col_buf->Span<const std::int32_t>()
                       : std::span<const std::int32_t>();
      auto fv = !is_int ? col_buf->Span<const float>() : std::span<const float>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          bool boundary =
              i == 0 || (is_int ? iv[i] != iv[i - 1]
                                : std::bit_cast<std::uint32_t>(fv[i]) !=
                                      std::bit_cast<std::uint32_t>(fv[i - 1]));
          f[i] = boundary ? 1u : 0u;
        }
      }
    };
    ocl::EventPtr ef = ctx_->queue()->EnqueueKernel(std::move(kf), waits);
    ASSIGN_OR_RETURN(ocl::EventPtr es, EnqueueExclusiveScan(&mm_, flags, scans, n, {ef}));
    ASSIGN_OR_RETURN(std::uint32_t ngroups, ReadScalarU32(ctx_, scans, n, {es}));

    res.ngroups = ngroups;
    res.extents = Bat::MakeOid(ngroups);
    ASSIGN_OR_RETURN(ocl::BufferPtr ext_buf, mm_.AcquireWrite(&scope, res.extents));
    ocl::KernelLaunch kg;
    kg.name = "group_sorted_ids";
    kg.body = [flags, scans, gid_buf, ext_buf, n](ocl::WorkGroup& wg) {
      auto f = flags->Span<const std::uint32_t>();
      auto s = scans->Span<const std::uint32_t>();
      auto g = gid_buf->Span<oid_t>();
      auto e = ext_buf->Span<oid_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          oid_t gid = static_cast<oid_t>(s[i] + f[i] - 1);
          g[i] = gid;
          if (f[i] != 0) e[gid] = static_cast<oid_t>(i);
        }
      }
    };
    ocl::EventPtr eg = ctx_->queue()->EnqueueKernel(std::move(kg), {es});
    mm_.SetProducer(res.groups, eg);
    mm_.SetProducer(res.extents, eg);
    mm_.AddConsumer(col, eg);
    return res;
  }

  // Hash path: distinct table, occupied-slot scan for dense ids, then a
  // lookup per row to build the assignment table.
  BatPtr key_col = col;
  if (col->type() == ValType::kFloat) {
    // Group float columns by bit pattern through the int hash machinery.
    auto to_bits = [&]() -> Result<BatPtr> {
      BatPtr bits = Bat::MakeInt(n);
      MemoryManager::OpScope s2(&mm_);
      ocl::EventList w2;
      ASSIGN_OR_RETURN(ocl::BufferPtr src, mm_.AcquireRead(&s2, col, &w2));
      ASSIGN_OR_RETURN(ocl::BufferPtr dst, mm_.AcquireWrite(&s2, bits));
      ocl::KernelLaunch k;
      k.name = "group_float_bits";
      k.body = [src, dst, n](ocl::WorkGroup& wg) {
        auto sv = src->Span<const std::uint32_t>();
        auto dv = dst->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t i : wg.UnitsFor(item, n)) dv[i] = sv[i];
        }
      };
      ocl::EventPtr e = ctx_->queue()->EnqueueKernel(std::move(k), w2);
      mm_.SetProducer(bits, e);
      mm_.AddConsumer(col, e);
      return bits;
    };
    ASSIGN_OR_RETURN(key_col, to_bits());
  }

  ASSIGN_OR_RETURN(std::shared_ptr<DeviceHashTable> ht,
                   BuildHashTable(&mm_, key_col, /*distinct_only=*/true));
  if (ht->ready != nullptr && !ht->ready->complete()) waits.push_back(ht->ready);

  std::size_t slots = ht->slots;
  ASSIGN_OR_RETURN(ocl::BufferPtr occ, mm_.AllocScratch(slots * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr slot_gid, mm_.AllocScratch((slots + 1) * 4));

  ocl::KernelLaunch ko;
  ko.name = "group_occupancy";
  ko.body = [ht, occ, slots](ocl::WorkGroup& wg) {
    auto v = ht->vals->Span<const std::uint32_t>();
    auto o = occ->Span<std::uint32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t u : wg.UnitsFor(item, slots)) o[u] = v[u] != 0 ? 1u : 0u;
    }
  };
  ocl::EventPtr eo = ctx_->queue()->EnqueueKernel(std::move(ko), waits);
  ASSIGN_OR_RETURN(ocl::EventPtr es, EnqueueExclusiveScan(&mm_, occ, slot_gid, slots, {eo}));
  ASSIGN_OR_RETURN(std::uint32_t ngroups, ReadScalarU32(ctx_, slot_gid, slots, {es}));

  // Nil-pattern keys never enter the distinct table (HtInsert skips
  // kIntNil, which is what join semantics want: nil matches nothing). For
  // *grouping* the convention is MonetDB's: rows group by raw bit pattern,
  // so every kIntNil-pattern row — an int nil, or a float -0.0 whose bits
  // equal kIntNil — belongs to one ordinary group. Scan for such rows and
  // give them the dense id after the slot-derived ones; without this their
  // rows would carry kOidNil group ids and every downstream aggregate
  // kernel would index its accumulators out of bounds
  // (fuzz_differential_test seed 20260731 found exactly that crash).
  //
  // A nonil int column cannot contain the pattern (the same property bit
  // the engines already trust for correctness), so the usual case — every
  // TPC-H group key — skips the scan entirely. Float keys always scan,
  // nonil or not: -0.0 carries kIntNil's bit pattern.
  const bool may_have_nil = !(col->type() == ValType::kInt && col->nonil());
  std::uint32_t nil_rows = 0;
  std::uint32_t first_nil = 0;
  ocl::EventList gwaits{es};
  ocl::BufferPtr key_buf;
  ASSIGN_OR_RETURN(key_buf, mm_.AcquireRead(&scope, key_col, &gwaits));
  if (may_have_nil) {
    ASSIGN_OR_RETURN(ocl::BufferPtr nil_stats, mm_.AllocScratch(2 * 4));
    ocl::KernelLaunch kn;
    kn.name = "group_nil_scan";
    kn.body = [key_buf, nil_stats, n](ocl::WorkGroup& wg) {
      auto keys = key_buf->Span<const std::int32_t>();
      auto s = nil_stats->Span<std::uint32_t>();
      // s[0] = nil-pattern rows, s[1] = first such row. Group 0
      // initializes (groups execute in order here, like ht_init's flag
      // reset); every group then folds its own tally in — an
      // unconditional per-group reset would throw away every
      // predecessor's count.
      if (wg.group_id() == 0) {
        s[0] = 0;
        s[1] = std::numeric_limits<std::uint32_t>::max();
      }
      std::uint32_t count = 0;
      std::uint32_t first = std::numeric_limits<std::uint32_t>::max();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t i : wg.UnitsFor(item, n)) {
          if (keys[i] == kIntNil) {
            count += 1;
            first = std::min(first, static_cast<std::uint32_t>(i));
          }
        }
      }
      if (count != 0) {
        s[0] += count;  // one atomic add + min per group in a real runtime
        s[1] = std::min(s[1], first);
        wg.CountAtomics(2, 2);
      }
    };
    ocl::EventPtr en = ctx_->queue()->EnqueueKernel(std::move(kn), gwaits);
    ASSIGN_OR_RETURN(nil_rows, ReadScalarU32(ctx_, nil_stats, 0, {en}));
    if (nil_rows != 0) {
      ASSIGN_OR_RETURN(first_nil, ReadScalarU32(ctx_, nil_stats, 1, {en}));
    }
  }
  const bool has_nil = nil_rows != 0;
  const oid_t nil_gid = has_nil ? static_cast<oid_t>(ngroups) : cstore::kOidNil;

  res.ngroups = ngroups + (has_nil ? 1 : 0);
  res.extents = Bat::MakeOid(res.ngroups);
  ASSIGN_OR_RETURN(ocl::BufferPtr ext_buf, mm_.AcquireWrite(&scope, res.extents));

  ocl::KernelLaunch ke;
  ke.name = "group_extents";
  ke.body = [ht, slot_gid, ext_buf, slots, has_nil, nil_gid,
             first_nil](ocl::WorkGroup& wg) {
    auto v = ht->vals->Span<const std::uint32_t>();
    auto sg = slot_gid->Span<const std::uint32_t>();
    auto e = ext_buf->Span<oid_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t u : wg.UnitsFor(item, slots)) {
        if (v[u] != 0) e[sg[u]] = static_cast<oid_t>(v[u] - 1);
      }
    }
    if (has_nil) e[nil_gid] = static_cast<oid_t>(first_nil);
  };
  ocl::EventPtr ee = ctx_->queue()->EnqueueKernel(std::move(ke), {es});
  mm_.SetProducer(res.extents, ee);

  ocl::KernelLaunch kg;
  kg.name = "group_assign_ids";
  kg.body = [key_buf, ht, slot_gid, gid_buf, n, nil_gid](ocl::WorkGroup& wg) {
    auto keys = key_buf->Span<const std::int32_t>();
    auto tk = ht->keys->Span<const std::int32_t>();
    auto tv = ht->vals->Span<const std::uint32_t>();
    auto sg = slot_gid->Span<const std::uint32_t>();
    auto g = gid_buf->Span<oid_t>();
    const std::size_t dist =
        common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
    for (int item = 0; item < wg.local_size(); ++item) {
      ocl::UnitRange r = wg.UnitsFor(item, n);
      for (std::uint64_t i : r) {
        if (dist != 0 && r.step == 1 && i + dist < r.limit) {
          HtPrefetch(tk, tv, ht->mask, ht->family, keys[i + dist]);
        }
        std::size_t slot = HtLookup(tk, tv, ht->mask, ht->family, keys[i]);
        // SIZE_MAX means "not in the distinct table", and the only keys the
        // build skipped are the nil-pattern ones — they map to the dense
        // nil-group id (kOidNil when no such row exists, which then never
        // reaches this branch).
        g[i] = slot == SIZE_MAX ? nil_gid : static_cast<oid_t>(sg[slot]);
      }
    }
  };
  ocl::EventPtr eg = ctx_->queue()->EnqueueKernel(std::move(kg), gwaits);
  mm_.SetProducer(res.groups, eg);
  mm_.AddConsumer(col, eg);
  return res;
}

// --- Grouped aggregation (paper 4.1.7) ----------------------------------------

namespace {

enum class GroupAgg { kSum, kMin, kMax, kCount, kCountNonNil, kAvg };

/// The empty-group nil convention shared by every engine (and relied on by
/// the multi-device merge layer in ocelot::Scheduler):
///   SubSum / SubMin / SubMax  -> kIntNil (int) / NaN (float) when a group
///                                received no non-nil value,
///   SubAvg                    -> NaN (always float-typed),
///   SubCount / SubCountNonNil -> 0, never nil (a count is a cardinality).
/// Min/max detect emptiness through their +/-inf fold identities; sum's
/// identity is 0 — indistinguishable from a real zero-sum — so the sum path
/// tracks per-group non-nil counts exactly like avg does.

/// Accumulators per group: inversely proportional to the group count so the
/// atomic traffic per address stays bounded (the paper's contention fix).
std::size_t AccumulatorsPerGroup(std::size_t ngroups) {
  if (ngroups == 0) return 1;
  return std::clamp<std::size_t>(256 / ngroups, 1, 32);
}

struct GroupAggArgs {
  OcelotEngine* eng;
  MemoryManager* mm;
  ocl::DeviceContext* ctx;
  const BatPtr& vals;  // null for kCount
  const BatPtr& groups;
  std::size_t ngroups;
  GroupAgg op;
};

Result<BatPtr> GroupedAggregate(const GroupAggArgs& args) {
  if (args.groups == nullptr || args.groups->type() != ValType::kOid) {
    return Status::InvalidArgument("group ids must be an oid BAT");
  }
  bool counting = args.op == GroupAgg::kCount;
  if (!counting) {
    RETURN_IF_ERROR(CheckNumeric(args.vals, "aggregation input"));
    if (args.vals->size() != args.groups->size()) {
      return Status::InvalidArgument("aggregation size mismatch");
    }
  }
  std::size_t n = args.groups->size();
  std::size_t ngroups = args.ngroups;
  const ocl::DeviceModel& model = args.ctx->device()->model();
  std::size_t groups_launched = static_cast<std::size_t>(model.default_groups());
  std::size_t accums = AccumulatorsPerGroup(ngroups);
  // avg needs non-nil counts for the divide; sum needs them to tell an
  // empty group (-> nil) from one that genuinely sums to zero.
  bool with_count = args.op == GroupAgg::kAvg || args.op == GroupAgg::kSum;

  MemoryManager::OpScope scope(args.mm);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr gid_buf, args.mm->AcquireRead(&scope, args.groups, &waits));
  ocl::BufferPtr val_buf;
  bool is_int = false;
  if (!counting) {
    ASSIGN_OR_RETURN(val_buf, args.mm->AcquireRead(&scope, args.vals, &waits));
    is_int = args.vals->type() == ValType::kInt;
  }

  std::size_t table = std::max<std::size_t>(ngroups, 1);
  ASSIGN_OR_RETURN(ocl::BufferPtr partials,
                   args.mm->AllocScratch(groups_launched * table * 8));
  ocl::BufferPtr counts;
  if (with_count) {
    ASSIGN_OR_RETURN(counts, args.mm->AllocScratch(groups_launched * table * 8));
  }

  GroupAgg op = args.op;
  double init = op == GroupAgg::kMin ? std::numeric_limits<double>::infinity()
                : op == GroupAgg::kMax ? -std::numeric_limits<double>::infinity()
                                       : 0.0;
  std::size_t local_doubles = table * accums * (with_count ? 2 : 1);
  bool use_local = local_doubles * 8 <= model.local_mem_bytes;

  ocl::KernelLaunch kp;
  kp.name = use_local ? "group_agg_partial_local" : "group_agg_partial_global";
  kp.body = [gid_buf, val_buf, partials, counts, n, table, accums, op, init, is_int,
             counting, with_count, use_local, groups_launched](ocl::WorkGroup& wg) {
    auto gids = gid_buf->Span<const oid_t>();
    auto iv = (!counting && is_int) ? val_buf->Span<const std::int32_t>()
                                    : std::span<const std::int32_t>();
    auto fv = (!counting && !is_int) ? val_buf->Span<const float>()
                                     : std::span<const float>();
    auto part = partials->Span<double>();
    auto cnt = with_count ? counts->Span<double>() : std::span<double>();
    std::size_t g = static_cast<std::size_t>(wg.group_id());

    // The accumulation table: in local memory when it fits, otherwise the
    // global-memory fallback of the paper.
    std::span<double> acc, acount;
    if (use_local) {
      acc = wg.local().Alloc<double>(table * accums);
      if (with_count) acount = wg.local().Alloc<double>(table * accums);
    } else {
      acc = part.subspan(g * table, table);
      if (with_count) acount = cnt.subspan(g * table, table);
    }
    std::size_t spread = use_local ? accums : 1;
    for (double& a : acc) a = init;
    for (double& a : acount) a = 0;

    std::uint64_t ops = 0;
    for (int item = 0; item < wg.local_size(); ++item) {
      std::size_t a_slot = static_cast<std::size_t>(item) % spread;
      for (std::uint64_t i : wg.UnitsFor(item, n)) {
        oid_t grp = gids[i];
        double v = 1.0;
        if (!counting) {
          if (is_int) {
            if (iv[i] == kIntNil) continue;
            v = iv[i];
          } else {
            if (std::isnan(fv[i])) continue;
            v = fv[i];
          }
        }
        std::size_t at = use_local ? grp * spread + a_slot : grp;
        switch (op) {
          case GroupAgg::kSum:
          case GroupAgg::kAvg:
            acc[at] += v;
            break;
          case GroupAgg::kMin:
            acc[at] = std::min(acc[at], v);
            break;
          case GroupAgg::kMax:
            acc[at] = std::max(acc[at], v);
            break;
          case GroupAgg::kCount:
          case GroupAgg::kCountNonNil:
            acc[at] += 1.0;
            break;
        }
        if (with_count && !counting) acount[at] += 1.0;
        ops += 1;
      }
    }
    // Float atomics are emulated via compare-and-swap on ints (footnote 7);
    // each accumulation is one atomic.
    if (use_local) {
      wg.CountLocalAtomics(ops, table * spread);
    } else {
      wg.CountAtomics(ops, table);
    }

    if (use_local) {
      // Fold the spread accumulators and publish this group's partial table.
      for (std::size_t grp = 0; grp < table; ++grp) {
        double folded = init;
        double folded_cnt = 0;
        for (std::size_t a = 0; a < spread; ++a) {
          double v = acc[grp * spread + a];
          switch (op) {
            case GroupAgg::kSum:
            case GroupAgg::kAvg:
            case GroupAgg::kCount:
            case GroupAgg::kCountNonNil:
              folded += v;
              break;
            case GroupAgg::kMin:
              folded = std::min(folded, v);
              break;
            case GroupAgg::kMax:
              folded = std::max(folded, v);
              break;
          }
          if (with_count && !counting) folded_cnt += acount[grp * spread + a];
        }
        part[g * table + grp] = folded;
        if (with_count && !counting) cnt[g * table + grp] = folded_cnt;
      }
    }
    (void)groups_launched;
  };
  ocl::EventPtr ep = args.ctx->queue()->EnqueueKernel(std::move(kp), waits);

  // Final stage: one thread per group folds the per-work-group partials.
  ValType out_type = counting || args.op == GroupAgg::kCountNonNil
                         ? ValType::kInt
                     : args.op == GroupAgg::kAvg ? ValType::kFloat
                                                 : args.vals->type();
  BatPtr out = Bat::Make(out_type, ngroups);
  ASSIGN_OR_RETURN(ocl::BufferPtr out_buf, args.mm->AcquireWrite(&scope, out));

  ocl::KernelLaunch kf;
  kf.name = "group_agg_final";
  kf.body = [partials, counts, out_buf, table, ngroups, groups_launched, op, init,
             out_type, with_count, counting](ocl::WorkGroup& wg) {
    auto part = partials->Span<const double>();
    auto cnt = with_count && !counting ? counts->Span<const double>()
                                       : std::span<const double>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t grp : wg.UnitsFor(item, ngroups)) {
        double folded = init;
        double folded_cnt = 0;
        for (std::size_t g = 0; g < groups_launched; ++g) {
          double v = part[g * table + grp];
          switch (op) {
            case GroupAgg::kSum:
            case GroupAgg::kAvg:
            case GroupAgg::kCount:
            case GroupAgg::kCountNonNil:
              folded += v;
              break;
            case GroupAgg::kMin:
              folded = std::min(folded, v);
              break;
            case GroupAgg::kMax:
              folded = std::max(folded, v);
              break;
          }
          if (with_count && !counting) folded_cnt += cnt[g * table + grp];
        }
        if (op == GroupAgg::kAvg) {
          folded = folded_cnt == 0 ? std::numeric_limits<double>::quiet_NaN()
                                   : folded / folded_cnt;
        }
        // Empty-group detection: min/max fall out of their infinite fold
        // identities; sum's identity (0) is a legal result, so its counts
        // decide. Counts themselves are never nil — 0 is the answer.
        bool empty = op == GroupAgg::kSum ? folded_cnt == 0 : std::isinf(folded);
        switch (out_type) {
          case ValType::kInt:
            out_buf->Span<std::int32_t>()[grp] =
                empty ? kIntNil : static_cast<std::int32_t>(folded);
            break;
          case ValType::kFloat:
            out_buf->Span<float>()[grp] =
                empty ? cstore::FloatNil() : static_cast<float>(folded);
            break;
          case ValType::kOid:
            break;  // unreachable: out_type is int or float
        }
      }
    }
  };
  ocl::EventPtr ef = args.ctx->queue()->EnqueueKernel(std::move(kf), {ep});
  args.mm->SetProducer(out, ef);
  args.mm->AddConsumer(args.groups, ef);
  if (!counting) args.mm->AddConsumer(args.vals, ef);
  return out;
}

}  // namespace

Result<BatPtr> OcelotEngine::SubSum(const BatPtr& vals, const BatPtr& groups,
                                    std::size_t ngroups) {
  return GroupedAggregate({this, &mm_, ctx_, vals, groups, ngroups, GroupAgg::kSum});
}

Result<BatPtr> OcelotEngine::SubCount(const BatPtr& groups, std::size_t ngroups) {
  return GroupedAggregate({this, &mm_, ctx_, nullptr, groups, ngroups, GroupAgg::kCount});
}

Result<BatPtr> OcelotEngine::SubCountNonNil(const BatPtr& vals, const BatPtr& groups,
                                            std::size_t ngroups) {
  return GroupedAggregate(
      {this, &mm_, ctx_, vals, groups, ngroups, GroupAgg::kCountNonNil});
}

Result<BatPtr> OcelotEngine::SubMin(const BatPtr& vals, const BatPtr& groups,
                                    std::size_t ngroups) {
  return GroupedAggregate({this, &mm_, ctx_, vals, groups, ngroups, GroupAgg::kMin});
}

Result<BatPtr> OcelotEngine::SubMax(const BatPtr& vals, const BatPtr& groups,
                                    std::size_t ngroups) {
  return GroupedAggregate({this, &mm_, ctx_, vals, groups, ngroups, GroupAgg::kMax});
}

Result<BatPtr> OcelotEngine::SubAvg(const BatPtr& vals, const BatPtr& groups,
                                    std::size_t ngroups) {
  return GroupedAggregate({this, &mm_, ctx_, vals, groups, ngroups, GroupAgg::kAvg});
}

}  // namespace ocelot
