#include "ocelot/hash_table.h"

#include <bit>

#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::BatPtr;
using cstore::kIntNil;

namespace {

std::size_t TableSlots(std::size_t n, int attempt) {
  // Over-allocate by 1.4x (paper: observed ~75% fill), round to a power of
  // two for mask probing, double per restart.
  std::size_t want = static_cast<std::size_t>(static_cast<double>(n) * 1.4) + 16;
  std::size_t slots = std::bit_ceil(want);
  return slots << attempt;
}

/// Cardinality estimate for distinct-insert tables: sample the host heap
/// (the "adequate initial table size" the paper picks, 4.1.4). Device-owned
/// inputs cannot be sampled cheaply; fall back to the row count. Gross
/// underestimates are repaired by the grow-and-restart loop.
std::size_t EstimateDistinct(const BatPtr& col) {
  if (col->ocelot_owned()) return col->size();
  constexpr std::size_t kSamples = 4096;
  std::size_t n = col->size();
  if (n == 0) return 1;
  std::size_t step = std::max<std::size_t>(1, n / kSamples);
  auto vals = col->ints();
  // Small open table over the samples.
  std::vector<std::int32_t> seen;
  seen.reserve(kSamples);
  for (std::size_t i = 0; i < n; i += step) {
    if (std::find(seen.begin(), seen.end(), vals[i]) == seen.end()) {
      seen.push_back(vals[i]);
      if (seen.size() >= kSamples / 4) return n;  // high cardinality: give up
    }
  }
  std::size_t sampled = (n + step - 1) / step;
  // Saw `seen` distinct among `sampled`: if close to saturation assume high
  // cardinality; otherwise the sample covers the domain.
  if (seen.size() * 2 >= sampled) return n;
  return seen.size() * 2 + 16;
}

}  // namespace

Result<std::shared_ptr<DeviceHashTable>> BuildHashTable(MemoryManager* mm,
                                                        const BatPtr& build,
                                                        bool distinct_only) {
  if (build == nullptr || build->type() != cstore::ValType::kInt) {
    return Status::InvalidArgument("hash build input must be an int BAT");
  }
  if (auto cached = mm->FindHashTable(build->id())) {
    return std::static_pointer_cast<DeviceHashTable>(cached);
  }

  ocl::DeviceContext* ctx = mm->context();
  std::size_t n = build->size();
  // Unique-key builds size by the input; distinct-insert builds (grouping,
  // semijoins) size by an estimated cardinality.
  std::size_t expected = distinct_only ? std::min(EstimateDistinct(build), n) : n;

  for (int attempt = 0; attempt < 24; ++attempt) {
    auto ht = std::make_shared<DeviceHashTable>();
    ht->slots = TableSlots(expected, attempt);
    ht->mask = static_cast<std::uint32_t>(ht->slots - 1);
    ht->family = common::HashFamily(0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(attempt));
    ht->rebuilds = attempt;
    ht->bytes = ht->slots * 8 + 16;

    MemoryManager::OpScope scope(mm);
    ocl::EventList waits;
    ASSIGN_OR_RETURN(ocl::BufferPtr keys_bat, mm->AcquireRead(&scope, build, &waits));
    ASSIGN_OR_RETURN(ht->keys, mm->AllocScratch(ht->slots * 4));
    ASSIGN_OR_RETURN(ht->vals, mm->AllocScratch(ht->slots * 4));
    // flags[0] = verification failure count, flags[1] = grow request.
    ASSIGN_OR_RETURN(ocl::BufferPtr flags, mm->AllocScratch(8));

    std::size_t slots = ht->slots;
    std::uint32_t mask = ht->mask;
    common::HashFamily family = ht->family;
    ocl::BufferPtr tkeys = ht->keys, tvals = ht->vals;

    ocl::KernelLaunch init;
    init.name = "ht_init";
    init.body = [tvals, flags, slots](ocl::WorkGroup& wg) {
      auto v = tvals->Span<std::uint32_t>();
      for (int item = 0; item < wg.local_size(); ++item) {
        for (std::uint64_t u : wg.UnitsFor(item, slots)) v[u] = 0;
      }
      if (wg.group_id() == 0) {
        flags->Span<std::uint32_t>()[0] = 0;
        flags->Span<std::uint32_t>()[1] = 0;
      }
    };
    ocl::EventPtr e_init = ctx->queue()->EnqueueKernel(std::move(init), waits);

    // Optimistic round: plain unsynchronized writes; colliding keys
    // overwrite each other and are repaired later.
    ocl::KernelLaunch opt;
    opt.name = "ht_optimistic";
    opt.body = [keys_bat, tkeys, tvals, mask, family, n](ocl::WorkGroup& wg) {
      auto src = keys_bat->Span<const std::int32_t>();
      auto k = tkeys->Span<std::int32_t>();
      auto v = tvals->Span<std::uint32_t>();
      const std::size_t dist =
          common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
      for (int item = 0; item < wg.local_size(); ++item) {
        ocl::UnitRange r = wg.UnitsFor(item, n);
        for (std::uint64_t i : r) {
          if (dist != 0 && r.step == 1 && i + dist < r.limit) {
            HtPrefetch(k, v, mask, family, src[i + dist]);
          }
          std::int32_t key = src[i];
          if (key == kIntNil) continue;
          std::size_t slot = family.Hash(0, static_cast<std::uint32_t>(key)) & mask;
          k[slot] = key;
          v[slot] = static_cast<std::uint32_t>(i) + 1;
        }
      }
    };
    ocl::EventPtr e_opt = ctx->queue()->EnqueueKernel(std::move(opt), {e_init});

    // Verification round: every thread checks its keys survived.
    ocl::KernelLaunch verify;
    verify.name = "ht_verify";
    verify.body = [keys_bat, tkeys, tvals, flags, mask, family, n](ocl::WorkGroup& wg) {
      auto src = keys_bat->Span<const std::int32_t>();
      auto k = tkeys->Span<const std::int32_t>();
      auto v = tvals->Span<const std::uint32_t>();
      auto f = flags->Span<std::uint32_t>();
      std::uint32_t failed = 0;
      const std::size_t dist =
          common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
      for (int item = 0; item < wg.local_size(); ++item) {
        ocl::UnitRange r = wg.UnitsFor(item, n);
        for (std::uint64_t i : r) {
          if (dist != 0 && r.step == 1 && i + dist < r.limit) {
            HtPrefetch(k, v, mask, family, src[i + dist]);
          }
          std::int32_t key = src[i];
          if (key == kIntNil) continue;
          std::size_t slot = family.Hash(0, static_cast<std::uint32_t>(key)) & mask;
          if (k[slot] != key || v[slot] == 0) failed += 1;
        }
      }
      if (failed != 0) {
        f[0] += failed;  // atomic add on the shared failure counter
        wg.CountAtomics(1, 1);
      }
    };
    ocl::EventPtr e_ver = ctx->queue()->EnqueueKernel(std::move(verify), {e_opt});
    ASSIGN_OR_RETURN(std::uint32_t failures, ReadScalarU32(ctx, flags, 0, {e_ver}));
    ht->optimistic_failures = failures;

    ocl::EventPtr e_done = e_ver;
    if (failures != 0) {
      // Pessimistic round: re-insert lost keys with the strong hash family,
      // claiming empty slots via compare-and-swap.
      ocl::KernelLaunch pess;
      pess.name = "ht_pessimistic";
      pess.body = [keys_bat, tkeys, tvals, flags, mask, family, n,
                   distinct_only](ocl::WorkGroup& wg) {
        auto src = keys_bat->Span<const std::int32_t>();
        auto k = tkeys->Span<std::int32_t>();
        auto v = tvals->Span<std::uint32_t>();
        auto f = flags->Span<std::uint32_t>();
        std::uint64_t cas_ops = 0;
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t i : wg.UnitsFor(item, n)) {
            std::int32_t key = src[i];
            if (key == kIntNil) continue;
            if (HtLookup(k, v, mask, family, key) != SIZE_MAX) continue;  // survived
            bool placed = false;
            std::size_t slot = 0;
            for (int h = 1; h < common::HashFamily::kFunctions && !placed; ++h) {
              slot = family.Hash(h, static_cast<std::uint32_t>(key)) & mask;
              cas_ops += 1;
              if (v[slot] == 0) {  // CAS claim (sequential execution)
                k[slot] = key;
                v[slot] = static_cast<std::uint32_t>(i) + 1;
                placed = true;
              } else if (k[slot] == key && distinct_only) {
                placed = true;
              }
            }
            std::size_t probes = 0;
            while (!placed && probes <= mask) {
              slot = (slot + 1) & mask;
              cas_ops += 1;
              if (v[slot] == 0) {
                k[slot] = key;
                v[slot] = static_cast<std::uint32_t>(i) + 1;
                placed = true;
              } else if (k[slot] == key && distinct_only) {
                placed = true;
              }
              probes += 1;
            }
            if (!placed) f[1] = 1;  // table full: request grow-and-restart
          }
        }
        wg.CountAtomics(cas_ops, mask + 1);
      };
      e_done = ctx->queue()->EnqueueKernel(std::move(pess), {e_ver});
      ASSIGN_OR_RETURN(std::uint32_t grow, ReadScalarU32(ctx, flags, 1, {e_done}));
      if (grow != 0) continue;  // restart with a doubled table
    }

    ht->ready = e_done;
    mm->CacheHashTable(build->id(), ht, ht->bytes);
    return ht;
  }
  return Status::Internal("hash table build failed to converge");
}

}  // namespace ocelot
