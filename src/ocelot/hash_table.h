#ifndef OCELOT_OCELOT_HASH_TABLE_H_
#define OCELOT_OCELOT_HASH_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>

#include "common/hash.h"
#include "common/simd.h"
#include "cstore/bat.h"
#include "ocelot/memory_manager.h"

namespace ocelot {

/// Device-resident open-addressing hash table over int32 keys, built with
/// the paper's scheme (4.1.4): an optimistic synchronization-free round, a
/// verification round, and a pessimistic round that re-hashes with six
/// strong hash functions before reverting to linear probing. The table is
/// over-allocated by 1.4x; if the pessimistic round still fails, the build
/// restarts with a doubled table.
///
/// Slots: `keys[slot]` holds the key, `vals[slot]` holds position+1
/// (0 = empty). Used by hash joins, semi/anti joins and hash grouping.
struct DeviceHashTable {
  ocl::BufferPtr keys;
  ocl::BufferPtr vals;
  std::size_t slots = 0;
  std::uint32_t mask = 0;
  common::HashFamily family;
  ocl::EventPtr ready;         ///< producer event of the build
  std::size_t bytes = 0;       ///< device footprint (for the MM cache)
  std::uint64_t optimistic_failures = 0;  ///< keys needing the pessimistic round
  int rebuilds = 0;            ///< grow-and-restart count
};

/// Probe sequence shared by build and lookup: h0..h5, then linear from the
/// last hash. Returns the slot holding `key`, or SIZE_MAX when absent.
/// The "empty slot => absent" cut is sound because slots never empty during
/// a build and the optimistic round writes every key's h0 slot.
inline std::size_t HtLookup(std::span<const std::int32_t> keys,
                            std::span<const std::uint32_t> vals, std::uint32_t mask,
                            const common::HashFamily& family, std::int32_t key) {
  std::size_t slot = 0;
  for (int h = 0; h < common::HashFamily::kFunctions; ++h) {
    slot = family.Hash(h, static_cast<std::uint32_t>(key)) & mask;
    if (vals[slot] == 0) return SIZE_MAX;
    if (keys[slot] == key) return slot;
  }
  for (std::size_t probes = 0; probes <= mask; ++probes) {
    slot = (slot + 1) & mask;
    if (vals[slot] == 0) return SIZE_MAX;
    if (keys[slot] == key) return slot;
  }
  return SIZE_MAX;
}

/// Prefetches the h0 slot of `key` — the line every probe touches first.
/// Paired with HtLookup at a distance-ahead offset in the probe loops; a
/// pure latency hint, never a semantic change.
inline void HtPrefetch(std::span<const std::int32_t> keys,
                       std::span<const std::uint32_t> vals, std::uint32_t mask,
                       const common::HashFamily& family, std::int32_t key) {
  std::size_t slot = family.Hash(0, static_cast<std::uint32_t>(key)) & mask;
  common::simd::PrefetchRead(keys.data() + slot);
  common::simd::PrefetchRead(vals.data() + slot);
}

/// Builds a hash table for `build` on the device. With `distinct_only`,
/// duplicate keys collapse onto one slot (grouping/semijoin use); otherwise
/// the input must be duplicate-free (a key column), which is verified.
/// Consults/fills the memory manager's hash-table cache (paper 5.2.6).
common::Result<std::shared_ptr<DeviceHashTable>> BuildHashTable(
    MemoryManager* mm, const cstore::BatPtr& build, bool distinct_only);

}  // namespace ocelot

#endif  // OCELOT_OCELOT_HASH_TABLE_H_
