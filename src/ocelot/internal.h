#ifndef OCELOT_OCELOT_INTERNAL_H_
#define OCELOT_OCELOT_INTERNAL_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "cstore/bat.h"
#include "cstore/engine.h"
#include "ocelot/memory_manager.h"

/// Internal helpers shared by the Ocelot operator translation units.
namespace ocelot::internal {

/// Branch-light compiled range predicate (same contract as the baseline
/// engines: nil never matches).
struct CompiledRange {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  CompiledRange(cstore::Bound lo_b, cstore::Bound hi_b) {
    if (!lo_b.unbounded) {
      lo = lo_b.inclusive ? lo_b.value
                          : std::nextafter(lo_b.value,
                                           std::numeric_limits<double>::infinity());
    }
    if (!hi_b.unbounded) {
      hi = hi_b.inclusive ? hi_b.value
                          : std::nextafter(hi_b.value,
                                           -std::numeric_limits<double>::infinity());
    }
  }

  bool Match(std::int32_t v) const {
    if (v == cstore::kIntNil) return false;
    double d = v;
    return d >= lo && d <= hi;
  }
  bool Match(float v) const { return v >= lo && v <= hi; }
};

/// Bitmap storage size for `domain` rows: byte-granular, padded to 4 bytes
/// so word kernels can run over uint32 lanes.
inline std::size_t BitmapBytes(std::size_t domain) {
  return ((domain + 7) / 8 + 3) & ~std::size_t{3};
}

/// Mask selecting the valid bits of the final bitmap byte.
inline std::uint8_t LastByteMask(std::size_t domain, std::size_t byte_index) {
  std::size_t full = domain / 8;
  if (byte_index < full) return 0xff;
  unsigned rem = static_cast<unsigned>(domain % 8);
  return static_cast<std::uint8_t>((1u << rem) - 1);
}

inline double NumAt(std::span<const std::int32_t> iv, std::span<const float> fv,
                    bool is_int, std::size_t i) {
  return is_int ? static_cast<double>(iv[i]) : static_cast<double>(fv[i]);
}

inline bool NumNil(std::span<const std::int32_t> iv, std::span<const float> fv,
                   bool is_int, std::size_t i) {
  return is_int ? iv[i] == cstore::kIntNil : std::isnan(fv[i]);
}

}  // namespace ocelot::internal

#endif  // OCELOT_OCELOT_INTERNAL_H_
