// OcelotEngine: hash join, nested-loop (theta) join, semi/anti joins
// (paper 4.1.5). Joins use the two-step count/scatter scheme to avoid
// thread synchronization: threads first count their result tuples, a prefix
// sum assigns unique write offsets, then the join runs again and scatters.

#include "ocelot/engine.h"
#include "ocelot/hash_table.h"
#include "ocelot/internal.h"
#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::CmpOp;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::oid_t;
using cstore::ValType;

namespace {

Status CheckIntCol(const BatPtr& b, const char* what) {
  if (b == nullptr) return Status::InvalidArgument(std::string(what) + " is null");
  if (b->type() != ValType::kInt) {
    return Status::InvalidArgument(std::string(what) + " must be an int BAT");
  }
  return Status::Ok();
}

double NumAtCmp(std::span<const std::int32_t> iv, std::span<const float> fv,
                bool is_int, std::size_t i) {
  return is_int ? static_cast<double>(iv[i]) : static_cast<double>(fv[i]);
}

bool CmpApply(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<JoinResult> OcelotEngine::HashJoin(const BatPtr& left, const BatPtr& right) {
  RETURN_IF_ERROR(CheckIntCol(left, "join left"));
  RETURN_IF_ERROR(CheckIntCol(right, "join right"));
  if (!right->key() && !right->dense()) {
    // The multi-stage lookup table of [19] covers unique build sides; general
    // M:N equi-joins fall back to the nested-loop kernel (documented scope).
    return ThetaJoin(left, right, CmpOp::kEq);
  }

  std::size_t n = left->size();
  const ocl::DeviceModel& model = ctx_->device()->model();
  std::size_t threads = static_cast<std::size_t>(model.default_groups()) *
                        static_cast<std::size_t>(model.default_local_size());

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr l_buf, mm_.AcquireRead(&scope, left, &waits));

  // The probe predicate: either pure arithmetic against a dense key column
  // (the PK-FK fast path) or a lookup in the (cached) device hash table.
  bool dense = right->dense();
  std::int64_t dense_base = right->tseqbase();
  std::int64_t dense_limit = dense_base + static_cast<std::int64_t>(right->size());
  std::shared_ptr<DeviceHashTable> ht;
  if (!dense) {
    ASSIGN_OR_RETURN(ht, BuildHashTable(&mm_, right, /*distinct_only=*/false));
    if (ht->ready != nullptr && !ht->ready->complete()) waits.push_back(ht->ready);
  }

  auto probe = [dense, dense_base, dense_limit, ht](std::int32_t key,
                                                    std::span<const std::int32_t> tk,
                                                    std::span<const std::uint32_t> tv,
                                                    oid_t* rpos) {
    if (key == kIntNil) return false;
    if (dense) {
      if (key < dense_base || key >= dense_limit) return false;
      *rpos = static_cast<oid_t>(key - dense_base);
      return true;
    }
    std::size_t slot = HtLookup(tk, tv, ht->mask, ht->family, key);
    if (slot == SIZE_MAX) return false;
    *rpos = static_cast<oid_t>(tv[slot] - 1);
    return true;
  };

  // Step 1: count matches per thread.
  ASSIGN_OR_RETURN(ocl::BufferPtr counts, mm_.AllocScratch(threads * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr offsets, mm_.AllocScratch((threads + 1) * 4));
  ocl::KernelLaunch kc;
  kc.name = "hashjoin_count";
  kc.body = [l_buf, counts, probe, ht, n](ocl::WorkGroup& wg) {
    auto lv = l_buf->Span<const std::int32_t>();
    auto tk = ht ? ht->keys->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto tv = ht ? ht->vals->Span<const std::uint32_t>() : std::span<const std::uint32_t>();
    auto c = counts->Span<std::uint32_t>();
    const std::size_t dist =
        ht && common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t found = 0;
      oid_t rpos;
      ocl::UnitRange r = wg.ContiguousUnitsFor(item, n);
      for (std::uint64_t i : r) {
        if (dist != 0 && i + dist < r.limit && lv[i + dist] != kIntNil) {
          HtPrefetch(tk, tv, ht->mask, ht->family, lv[i + dist]);
        }
        if (probe(lv[i], tk, tv, &rpos)) found += 1;
      }
      c[static_cast<std::size_t>(wg.global_id(item))] = found;
    }
  };
  ocl::EventPtr ec = ctx_->queue()->EnqueueKernel(std::move(kc), waits);
  mm_.AddConsumer(left, ec);

  ASSIGN_OR_RETURN(ocl::EventPtr es,
                   EnqueueExclusiveScan(&mm_, counts, offsets, threads, {ec}));
  ASSIGN_OR_RETURN(std::uint32_t total, ReadScalarU32(ctx_, offsets, threads, {es}));

  // Step 2: scatter result pairs at the per-thread offsets.
  JoinResult res;
  res.left = Bat::MakeOid(total);
  res.left->set_sorted(true);
  res.right = Bat::MakeOid(total);
  ASSIGN_OR_RETURN(ocl::BufferPtr lo_buf, mm_.AcquireWrite(&scope, res.left));
  ASSIGN_OR_RETURN(ocl::BufferPtr ro_buf, mm_.AcquireWrite(&scope, res.right));

  ocl::KernelLaunch km;
  km.name = "hashjoin_scatter";
  km.body = [l_buf, offsets, lo_buf, ro_buf, probe, ht, n](ocl::WorkGroup& wg) {
    auto lv = l_buf->Span<const std::int32_t>();
    auto tk = ht ? ht->keys->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto tv = ht ? ht->vals->Span<const std::uint32_t>() : std::span<const std::uint32_t>();
    auto offs = offsets->Span<const std::uint32_t>();
    auto lo = lo_buf->Span<oid_t>();
    auto ro = ro_buf->Span<oid_t>();
    const std::size_t dist =
        ht && common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t at = offs[static_cast<std::size_t>(wg.global_id(item))];
      oid_t rpos;
      ocl::UnitRange r = wg.ContiguousUnitsFor(item, n);
      for (std::uint64_t i : r) {
        if (dist != 0 && i + dist < r.limit && lv[i + dist] != kIntNil) {
          HtPrefetch(tk, tv, ht->mask, ht->family, lv[i + dist]);
        }
        if (probe(lv[i], tk, tv, &rpos)) {
          lo[at] = static_cast<oid_t>(i);
          ro[at] = rpos;
          at += 1;
        }
      }
    }
  };
  ocl::EventPtr em = ctx_->queue()->EnqueueKernel(std::move(km), {es});
  mm_.SetProducer(res.left, em);
  mm_.SetProducer(res.right, em);
  mm_.AddConsumer(left, em);
  return res;
}

namespace {

/// Shared semi/anti join: probes the distinct hash table of `right` and
/// emits a *bitmap* over the left domain (a candidate handle, like a
/// selection result).
Result<BatPtr> SemiAnti(OcelotEngine* eng, MemoryManager* mm, ocl::DeviceContext* ctx,
                        const BatPtr& left, const BatPtr& right, bool anti) {
  (void)eng;
  RETURN_IF_ERROR(CheckIntCol(left, "semijoin left"));
  RETURN_IF_ERROR(CheckIntCol(right, "semijoin right"));
  std::size_t n = left->size();
  std::size_t nbytes = (n + 7) / 8;

  MemoryManager::OpScope scope(mm);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr l_buf, mm->AcquireRead(&scope, left, &waits));
  ASSIGN_OR_RETURN(std::shared_ptr<DeviceHashTable> ht,
                   BuildHashTable(mm, right, /*distinct_only=*/true));
  if (ht->ready != nullptr && !ht->ready->complete()) waits.push_back(ht->ready);
  ASSIGN_OR_RETURN(ocl::BufferPtr bits,
                   mm->AllocScratch(internal::BitmapBytes(n)));

  ocl::KernelLaunch k;
  k.name = anti ? "antijoin_probe" : "semijoin_probe";
  k.body = [l_buf, bits, ht, n, nbytes, anti](ocl::WorkGroup& wg) {
    auto lv = l_buf->Span<const std::int32_t>();
    auto tk = ht->keys->Span<const std::int32_t>();
    auto tv = ht->vals->Span<const std::uint32_t>();
    auto out = bits->Span<std::uint8_t>();
    const std::size_t dist =
        common::simd::Enabled() ? common::simd::PrefetchDistance() : 0;
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t u : wg.UnitsFor(item, nbytes)) {
        std::uint8_t byte = 0;
        std::size_t base = static_cast<std::size_t>(u) * 8;
        std::size_t limit = std::min(n, base + 8);
        for (std::size_t i = base; i < limit; ++i) {
          if (dist != 0 && i + dist < n && lv[i + dist] != kIntNil) {
            HtPrefetch(tk, tv, ht->mask, ht->family, lv[i + dist]);
          }
          bool match;
          if (lv[i] == kIntNil) {
            match = anti;  // nil has no match: anti keeps it, semi drops it
          } else {
            bool found = HtLookup(tk, tv, ht->mask, ht->family, lv[i]) != SIZE_MAX;
            match = anti ? !found : found;
          }
          byte |= static_cast<std::uint8_t>(match) << (i - base);
        }
        out[u] = byte;
      }
    }
  };
  ocl::EventPtr ev = ctx->queue()->EnqueueKernel(std::move(k), waits);
  mm->AddConsumer(left, ev);

  BatPtr handle = Bat::MakeOid(0);
  handle->set_sorted(true);
  handle->set_key(true);
  handle->set_nonil(true);
  mm->RegisterBitmap(handle, {bits, n, ev, -1});
  return handle;
}

}  // namespace

Result<BatPtr> OcelotEngine::SemiJoin(const BatPtr& left, const BatPtr& right) {
  return SemiAnti(this, &mm_, ctx_, left, right, /*anti=*/false);
}

Result<BatPtr> OcelotEngine::AntiJoin(const BatPtr& left, const BatPtr& right) {
  return SemiAnti(this, &mm_, ctx_, left, right, /*anti=*/true);
}

Result<JoinResult> OcelotEngine::ThetaJoin(const BatPtr& left, const BatPtr& right,
                                           CmpOp op) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("theta join: null input");
  }
  if (left->type() == ValType::kOid || right->type() == ValType::kOid) {
    return Status::InvalidArgument("theta join inputs must be numeric");
  }
  std::size_t n = left->size();
  std::size_t m = right->size();
  const ocl::DeviceModel& model = ctx_->device()->model();
  std::size_t threads = static_cast<std::size_t>(model.default_groups()) *
                        static_cast<std::size_t>(model.default_local_size());

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr l_buf, mm_.AcquireRead(&scope, left, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr r_buf, mm_.AcquireRead(&scope, right, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr counts, mm_.AllocScratch(threads * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr offsets, mm_.AllocScratch((threads + 1) * 4));

  bool l_int = left->type() == ValType::kInt;
  bool r_int = right->type() == ValType::kInt;

  ocl::KernelLaunch kc;
  kc.name = "nljoin_count";
  kc.body = [l_buf, r_buf, counts, n, m, op, l_int, r_int](ocl::WorkGroup& wg) {
    auto liv = l_int ? l_buf->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto lfv = !l_int ? l_buf->Span<const float>() : std::span<const float>();
    auto riv = r_int ? r_buf->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto rfv = !r_int ? r_buf->Span<const float>() : std::span<const float>();
    auto c = counts->Span<std::uint32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t found = 0;
      for (std::uint64_t i : wg.ContiguousUnitsFor(item, n)) {
        if (internal::NumNil(liv, lfv, l_int, i)) continue;
        double a = NumAtCmp(liv, lfv, l_int, i);
        for (std::size_t j = 0; j < m; ++j) {
          if (internal::NumNil(riv, rfv, r_int, j)) continue;
          if (CmpApply(op, a, NumAtCmp(riv, rfv, r_int, j))) found += 1;
        }
      }
      c[static_cast<std::size_t>(wg.global_id(item))] = found;
    }
  };
  ocl::EventPtr ec = ctx_->queue()->EnqueueKernel(std::move(kc), waits);
  ASSIGN_OR_RETURN(ocl::EventPtr es,
                   EnqueueExclusiveScan(&mm_, counts, offsets, threads, {ec}));
  ASSIGN_OR_RETURN(std::uint32_t total, ReadScalarU32(ctx_, offsets, threads, {es}));

  JoinResult res;
  res.left = Bat::MakeOid(total);
  res.left->set_sorted(true);
  res.right = Bat::MakeOid(total);
  ASSIGN_OR_RETURN(ocl::BufferPtr lo_buf, mm_.AcquireWrite(&scope, res.left));
  ASSIGN_OR_RETURN(ocl::BufferPtr ro_buf, mm_.AcquireWrite(&scope, res.right));

  ocl::KernelLaunch km;
  km.name = "nljoin_scatter";
  km.body = [l_buf, r_buf, offsets, lo_buf, ro_buf, n, m, op, l_int,
             r_int](ocl::WorkGroup& wg) {
    auto liv = l_int ? l_buf->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto lfv = !l_int ? l_buf->Span<const float>() : std::span<const float>();
    auto riv = r_int ? r_buf->Span<const std::int32_t>() : std::span<const std::int32_t>();
    auto rfv = !r_int ? r_buf->Span<const float>() : std::span<const float>();
    auto offs = offsets->Span<const std::uint32_t>();
    auto lo = lo_buf->Span<oid_t>();
    auto ro = ro_buf->Span<oid_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      std::uint32_t at = offs[static_cast<std::size_t>(wg.global_id(item))];
      for (std::uint64_t i : wg.ContiguousUnitsFor(item, n)) {
        if (internal::NumNil(liv, lfv, l_int, i)) continue;
        double a = NumAtCmp(liv, lfv, l_int, i);
        for (std::size_t j = 0; j < m; ++j) {
          if (internal::NumNil(riv, rfv, r_int, j)) continue;
          if (CmpApply(op, a, NumAtCmp(riv, rfv, r_int, j))) {
            lo[at] = static_cast<oid_t>(i);
            ro[at] = static_cast<oid_t>(j);
            at += 1;
          }
        }
      }
    }
  };
  ocl::EventPtr em = ctx_->queue()->EnqueueKernel(std::move(km), {es});
  mm_.SetProducer(res.left, em);
  mm_.SetProducer(res.right, em);
  mm_.AddConsumer(left, em);
  mm_.AddConsumer(right, em);
  return res;
}

}  // namespace ocelot
