#include "ocelot/memory_manager.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.h"
#include "cstore/encoding.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::BatPtr;

namespace {

/// The heap whose lifetime governs a cache entry's bytes: the tail heap for
/// plain BATs, the decoded twin's heap for encoded ones (the twin lives as
/// long as the column, and its death is the reaping signal for decoded
/// cache entries).
std::shared_ptr<const void> BackingHandle(const BatPtr& bat) {
  if (!bat->encoded()) return bat->heap_handle();
  // No DecodedView() here: this runs under the manager's lock, and a
  // temporary descriptor's destruction would fire the BAT-delete listeners
  // straight back into that lock.
  return bat->decoded_heap_handle();
}

}  // namespace

MemoryManager::MemoryManager(ocl::DeviceContext* ctx) : ctx_(ctx) {
  bat_listener_token_ = cstore::Bat::AddDeleteListener(
      [this](std::uint64_t id) { OnBatDeleted(id); });
  heap_listener_token_ = cstore::Bat::AddHeapDeleteListener(
      [this](std::uint64_t id) { OnHeapDeleted(id); });
}

MemoryManager::~MemoryManager() {
  cstore::Bat::RemoveDeleteListener(bat_listener_token_);
  cstore::Bat::RemoveHeapDeleteListener(heap_listener_token_);
}

MemoryManager::BufferKey MemoryManager::KeyOf(const BatPtr& bat) {
  if (!bat->encoded()) {
    return {bat->heap_id(), bat->heap_offset(), bat->logical_tail_bytes()};
  }
  // Encoded views all report heap_offset() == 0 on the shared physical
  // image, so keying them there would collide equal-sized fragments of one
  // column onto a single entry. The *decoded* cache is therefore keyed on
  // the decoded twin's heap identity, where every view has a distinct byte
  // range again — exactly the plain-BAT geometry. (The raw image itself is
  // cached separately under {encoded heap, 0, physical bytes}; see
  // AcquirePhysicalLocked.) decoded_heap_id() rather than DecodedView():
  // KeyOf runs under mu_, where a temporary descriptor's death would
  // re-enter the delete listeners.
  return {bat->decoded_heap_id(),
          bat->row_offset() * cstore::ValTypeSize(bat->type()),
          bat->logical_tail_bytes()};
}

MemoryManager::OpScope::~OpScope() {
  std::lock_guard<std::mutex> lock(mm_->mu_);
  for (const BufferKey& key : held_) {
    auto it = mm_->entries_.find(key);
    if (it == mm_->entries_.end() || it->second.scope_refs <= 0) continue;
    it->second.scope_refs -= 1;
    // A write overlapping this entry landed while the scope held it (see
    // InvalidateOverlappingEntries): reap it the moment it is free so the
    // pre-write bytes can never satisfy a later acquire. The scope closes
    // on the slot's driving thread, so draining the queue here is safe.
    if (it->second.scope_refs == 0 && it->second.stale) {
      mm_->WaitForQuiescence(&it->second);
      mm_->entries_.erase(it);
    }
  }
}

void MemoryManager::Hold(OpScope* scope, const BufferKey& key, Entry* entry) {
  if (scope == nullptr) return;
  entry->scope_refs += 1;
  scope->held_.push_back(key);
}

Result<ocl::BufferPtr> MemoryManager::AcquireRead(OpScope* scope, const BatPtr& bat,
                                                  ocl::EventList* waits) {
  std::lock_guard<std::mutex> lock(mu_);
  return AcquireReadLocked(scope, bat, waits);
}

Result<ocl::BufferPtr> MemoryManager::AcquireReadLocked(OpScope* scope,
                                                        const BatPtr& bat,
                                                        ocl::EventList* waits) {
  if (bat == nullptr) return Status::InvalidArgument("AcquireRead: null BAT");
  BufferKey key = KeyOf(bat);
  Entry& entry = entries_[key];
  if (entry.producer != nullptr && entry.producer->failed()) {
    if (bat->ocelot_owned()) {
      // The kernel that was to *compute* this result failed: there is no
      // valid copy of these bytes anywhere (on unified devices the heap
      // was never written; on discrete ones the device buffer holds
      // garbage and the host heap was never read back). This is a device
      // fault, not a cache miss — surface the queue's fault code so the
      // retry ladder above sees kDeviceLost / kResourceExhausted rather
      // than garbage data or a plan error. (A parked offload copy is the
      // one loss here: its failed re-upload would be host-retryable, but
      // distinguishing it is not worth serving garbage when wrong.)
      Status fault = ctx_->queue()->fault();
      if (fault.ok()) {
        fault = Status::DeviceLost("AcquireRead: producer kernel of " +
                                   entry.producer->label() + " failed");
      }
      return fault;
    }
    // A failed *upload* of host-authoritative bytes: the cached copy is
    // garbage but the host heap is intact. Drop the entry so the normal
    // path re-uploads (the re-upload may fail again; the retry ladder
    // above us decides how often to try).
    WaitForQuiescence(&entry);
    entry.buffer.reset();
    entry.producer.reset();
    entry.device_authoritative = false;
  }
  if (entry.stale && entry.scope_refs == 0) {
    // Marked stale by an overlapping write while scope-held, and the scope
    // has since closed without this key being re-held: drop the pre-write
    // buffer so the normal path re-uploads fresh host bytes.
    WaitForQuiescence(&entry);
    entry.buffer.reset();
    entry.producer.reset();
    entry.stale = false;
  }
  entry.bat = bat;
  entry.heap = BackingHandle(bat);
  entry.last_use = ++tick_;
  entry.bytes = key.bytes;

  if (entry.buffer == nullptr) {
    if (ctx_->device()->model().unified_memory) {
      // Zero-copy: the host heap *is* the device memory, so this is valid
      // even for device-owned ranges. For encoded BATs data() is the
      // decoded twin — the transparent Decode() fallback.
      ASSIGN_OR_RETURN(entry.buffer,
                       ctx_->device()->WrapHost(bat->data(), bat->tail_bytes()));
    } else if (bat->encoded()) {
      // Discrete device: ship the compressed image (billed on physical
      // bytes) and expand it with a decode kernel on the device.
      RETURN_IF_ERROR(UploadEncodedLocked(scope, bat, &entry));
      SubsumeCoveredEntries(key);
    } else {
      if (entry.device_authoritative) {
        // An offloaded result is being pulled back (footnote 4): reload the
        // host copy we parked in the BAT heap.
        reloads_ += 1;
      } else if (bat->ocelot_owned()) {
        // The BAT says its authoritative bytes live on a device, but this
        // range has no device-resident buffer here. If the queue carries a
        // pending fault, the likely story is that the entry was reaped
        // after its producer failed (EvictOne's garbage-drop) — surface
        // that fault so callers see a retryable device error. Otherwise
        // it's a plan error (a sub-range view of an unsynced result, or a
        // result of another device's engine): uploading the host heap
        // would silently read stale bytes.
        Status fault = ctx_->queue()->fault();
        if (!fault.ok()) return fault;
        return Status::InvalidArgument(
            "AcquireRead: BAT is device-owned but this range is not "
            "device-resident here (sync the producing engine first)");
      }
      ASSIGN_OR_RETURN(entry.buffer, AllocateWithEviction(bat->tail_bytes()));
      entry.producer =
          ctx_->queue()->EnqueueWrite(entry.buffer, bat->data(), bat->tail_bytes());
      SubsumeCoveredEntries(key);
    }
  }
  if (entry.producer != nullptr && !entry.producer->settled() && waits != nullptr) {
    waits->push_back(entry.producer);
  }
  Hold(scope, key, &entry);
  return entry.buffer;
}

Result<ocl::BufferPtr> MemoryManager::AcquirePhysicalLocked(
    OpScope* scope, const BatPtr& bat, ocl::EventList* waits) {
  const BufferKey pkey{bat->heap_id(), 0, bat->physical_tail_bytes()};
  Entry& pent = entries_[pkey];
  if (pent.producer != nullptr && pent.producer->failed()) {
    // A failed upload of the compressed image. The host copy is always
    // authoritative (encoded images are immutable), so drop the garbage
    // buffer and let the path below re-upload; the retry ladder above
    // decides how often to try.
    WaitForQuiescence(&pent);
    pent.buffer.reset();
    pent.producer.reset();
  }
  pent.bat = bat;
  pent.heap = bat->heap_handle();  // the *encoded* heap owns these bytes
  pent.last_use = ++tick_;
  pent.bytes = pkey.bytes;
  if (pent.buffer == nullptr) {
    if (ctx_->device()->model().unified_memory) {
      ASSIGN_OR_RETURN(pent.buffer, ctx_->device()->WrapHost(
                                        bat->physical_data(), pkey.bytes));
    } else {
      ASSIGN_OR_RETURN(pent.buffer, AllocateWithEviction(pkey.bytes));
      // The bandwidth win of the whole encoding layer: this is the only
      // host->device copy of the column, and it is physical_tail_bytes()
      // long, not logical_tail_bytes().
      pent.producer = ctx_->queue()->EnqueueWrite(
          pent.buffer, bat->physical_data(), pkey.bytes);
    }
  }
  if (pent.producer != nullptr && !pent.producer->settled() && waits != nullptr) {
    waits->push_back(pent.producer);
  }
  Hold(scope, pkey, &pent);
  return pent.buffer;
}

Result<ocl::BufferPtr> MemoryManager::AcquireEncodedRead(OpScope* scope,
                                                         const BatPtr& bat,
                                                         ocl::EventList* waits) {
  if (bat == nullptr) return Status::InvalidArgument("AcquireEncodedRead: null BAT");
  std::lock_guard<std::mutex> lock(mu_);
  if (!bat->encoded()) return AcquireReadLocked(scope, bat, waits);
  return AcquirePhysicalLocked(scope, bat, waits);
}

Status MemoryManager::UploadEncodedLocked(OpScope* scope, const BatPtr& bat,
                                          Entry* entry) {
  const auto& info = bat->encoding_info();
  // Hold the compressed image while the decode is being scheduled: the
  // decoded buffer's allocation below may run the eviction ladder, which
  // must not reap the entry we are about to read from. (The raw-bits
  // protection for in-flight closures is the BufferPtr captures.)
  ocl::EventList dwaits;
  ASSIGN_OR_RETURN(ocl::BufferPtr phys, AcquirePhysicalLocked(scope, bat, &dwaits));
  const BufferKey pkey{bat->heap_id(), 0, bat->physical_tail_bytes()};
  entries_[pkey].scope_refs += 1;  // pin across the allocation below
  ocl::BufferPtr dict_buf;
  if (info->encoding == cstore::Encoding::kDict) {
    auto dict = AcquireReadLocked(scope, info->dict, &dwaits);
    if (!dict.ok()) {
      entries_[pkey].scope_refs -= 1;
      return dict.status();
    }
    dict_buf = *dict;
  }
  auto decoded = AllocateWithEviction(bat->logical_tail_bytes());
  entries_[pkey].scope_refs -= 1;
  RETURN_IF_ERROR(decoded.status());
  entry->buffer = *decoded;

  // Decode-on-device, modeled as a kernel (billed like any other kernel,
  // so ThroughputTracker calibration and makespan accounting see both the
  // cheap transfer and the decode cost). Kernels cover this descriptor's
  // rows [row_offset, row_offset + size) of the shared column image.
  const std::size_t rows = bat->size();
  const std::size_t row_offset = bat->row_offset();
  ocl::BufferPtr out = entry->buffer;
  ocl::KernelLaunch k;
  switch (info->encoding) {
    case cstore::Encoding::kDict: {
      const std::size_t cw = info->code_width;
      k.name = "decode_dict";
      k.body = [phys, dict_buf, out, cw, rows, row_offset](ocl::WorkGroup& wg) {
        auto dict = dict_buf->Span<const std::uint32_t>();
        auto dst = out->Span<std::uint32_t>();
        auto c8 = phys->Span<const std::uint8_t>();
        auto c16 = phys->Span<const std::uint16_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t u : wg.UnitsFor(item, rows)) {
            const std::size_t i = row_offset + static_cast<std::size_t>(u);
            dst[u] = dict[cw == 1 ? c8[i] : c16[i]];
          }
        }
      };
      break;
    }
    case cstore::Encoding::kRle: {
      const std::size_t runs = info->runs;
      k.name = "decode_rle";
      k.body = [phys, out, runs, rows, row_offset](ocl::WorkGroup& wg) {
        auto words = phys->Span<const std::uint32_t>();
        const std::uint32_t* values = words.data();
        const std::uint32_t* starts = words.data() + runs;
        auto dst = out->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          ocl::UnitRange r = wg.ContiguousUnitsFor(item, rows);
          if (r.empty()) continue;
          // Binary-search the first run, then walk run boundaries forward.
          std::size_t run = static_cast<std::size_t>(
              std::upper_bound(starts, starts + runs,
                               static_cast<std::uint32_t>(row_offset + r.first)) -
              starts - 1);
          for (std::uint64_t u = r.first; u < r.limit; ++u) {
            const std::uint32_t row = static_cast<std::uint32_t>(row_offset + u);
            while (run + 1 < runs && starts[run + 1] <= row) ++run;
            dst[u] = values[run];
          }
        }
      };
      break;
    }
    case cstore::Encoding::kBitPacked: {
      const std::uint32_t width = info->bit_width;
      const std::int32_t base = info->base;
      k.name = "decode_bitpack";
      k.body = [phys, out, width, base, rows, row_offset](ocl::WorkGroup& wg) {
        auto words = phys->Span<const std::uint32_t>();
        auto dst = out->Span<std::uint32_t>();
        for (int item = 0; item < wg.local_size(); ++item) {
          for (std::uint64_t u : wg.UnitsFor(item, rows)) {
            dst[u] = std::bit_cast<std::uint32_t>(cstore::BitPackedAt(
                words.data(), width, base, row_offset + static_cast<std::size_t>(u)));
          }
        }
      };
      break;
    }
    case cstore::Encoding::kPlain:
      return Status::InvalidArgument("UploadEncodedLocked on a plain BAT");
  }
  entry->producer = ctx_->queue()->EnqueueKernel(std::move(k), dwaits);
  entries_[pkey].consumers.push_back(entry->producer);
  return Status::Ok();
}

void MemoryManager::SubsumeCoveredEntries(const BufferKey& key) {
  // A freshly cached range makes cached copies of sub-ranges redundant:
  // once the whole column lands on the device, the scheduler's persistent
  // per-fragment view entries would otherwise double the footprint. Reap
  // the evictable ones (clean, unpinned, unreferenced, quiescent).
  auto it = entries_.lower_bound(BufferKey{key.heap, 0, 0});
  while (it != entries_.end() && it->first.heap == key.heap) {
    const BufferKey& k = it->first;
    const Entry& e = it->second;
    bool covered = k != key && k.offset >= key.offset &&
                   k.offset + k.bytes <= key.offset + key.bytes;
    if (covered && !e.device_authoritative && !e.pinned && e.scope_refs == 0 &&
        Quiescent(e)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void MemoryManager::InvalidateOverlappingEntries(const BufferKey& key) {
  // Write-path cache coherence: the written range is about to become
  // device-authoritative, so every *other* cached upload of bytes it
  // overlaps (a previously cached sub-range view, a stale partial parent)
  // now holds pre-write host bytes and must not serve another read. Unlike
  // SubsumeCoveredEntries this is a correctness rule, not a footprint
  // optimization: pinned and LRU state do not protect a stale entry.
  // Device-authoritative overlaps are left alone — they hold the only copy
  // of *their* result and writing over them is a plan error this layer
  // cannot repair. Entries held by an open OpScope belong to the very
  // operator doing this write (its own inputs, which it may still read):
  // they are only *marked* stale here and reaped when the scope closes, so
  // they can never satisfy a later acquire either.
  auto it = entries_.lower_bound(BufferKey{key.heap, 0, 0});
  while (it != entries_.end() && it->first.heap == key.heap) {
    const BufferKey& k = it->first;
    Entry& e = it->second;
    bool overlaps = k != key && k.offset < key.offset + key.bytes &&
                    k.offset + k.bytes > key.offset;
    if (overlaps && !e.device_authoritative) {
      if (e.scope_refs > 0) {
        e.stale = true;
        ++it;
      } else {
        WaitForQuiescence(&e);
        it = entries_.erase(it);
      }
    } else {
      ++it;
    }
  }
}

Result<ocl::BufferPtr> MemoryManager::AcquireWrite(OpScope* scope, const BatPtr& bat) {
  if (bat == nullptr) return Status::InvalidArgument("AcquireWrite: null BAT");
  if (bat->encoded()) {
    // Encoded images are immutable load-time artifacts; operator results
    // are always plain. Writing "through" the decoded twin would desync
    // twin and image silently.
    return Status::InvalidArgument("AcquireWrite: encoded BATs are read-only");
  }
  std::lock_guard<std::mutex> lock(mu_);
  BufferKey key = KeyOf(bat);
  if (!ctx_->device()->model().unified_memory) InvalidateOverlappingEntries(key);
  Entry& entry = entries_[key];
  entry.stale = false;  // the write overwrites whatever the buffer held
  entry.bat = bat;
  entry.heap = bat->heap_handle();
  entry.last_use = ++tick_;
  entry.bytes = key.bytes;

  if (entry.buffer == nullptr) {
    if (ctx_->device()->model().unified_memory) {
      ASSIGN_OR_RETURN(entry.buffer,
                       ctx_->device()->WrapHost(bat->data(), bat->tail_bytes()));
    } else {
      ASSIGN_OR_RETURN(entry.buffer, AllocateWithEviction(bat->tail_bytes()));
    }
  }
  entry.device_authoritative = !ctx_->device()->model().unified_memory;
  bat->set_ocelot_owned(true);
  Hold(scope, key, &entry);
  return entry.buffer;
}

Result<ocl::BufferPtr> MemoryManager::AllocScratch(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocateWithEviction(bytes);
}

Result<ocl::BufferPtr> MemoryManager::AllocateWithEviction(std::size_t bytes) {
  for (;;) {
    auto buf = ctx_->device()->Allocate(bytes);
    if (buf.ok()) return buf;
    if (buf.status().code() != common::StatusCode::kResourceExhausted) return buf;
    if (!EvictOne()) {
      return Status::ResourceExhausted(
          "device memory exhausted and nothing evictable (need " +
          std::to_string(bytes) + "B on " + ctx_->device()->name() + ")");
    }
  }
}

void MemoryManager::WaitForQuiescence(Entry* entry) {
  if (entry->producer != nullptr && !entry->producer->settled()) {
    ctx_->queue()->Wait(entry->producer);
  }
  for (const ocl::EventPtr& e : entry->consumers) {
    if (!e->settled()) ctx_->queue()->Wait(e);
  }
  entry->consumers.clear();
}

bool MemoryManager::EvictOne() {
  // Tier 1 (paper 3.3): evict cached copies of host-resident BATs, LRU.
  Entry* victim = nullptr;
  BufferKey victim_key;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (auto& [key, entry] : entries_) {
    if (entry.buffer == nullptr || entry.pinned || entry.scope_refs > 0) continue;
    if (entry.device_authoritative) continue;  // tier 3
    if (entry.last_use < best) {
      best = entry.last_use;
      victim = &entry;
      victim_key = key;
    }
  }
  if (victim != nullptr) {
    WaitForQuiescence(victim);
    victim->buffer.reset();
    victim->producer.reset();
    entries_.erase(victim_key);
    evictions_ += 1;
    return true;
  }

  // Tier 2: drop auxiliary structures (cached hash tables) before touching
  // result buffers.
  if (!hash_tables_.empty()) {
    auto lru = hash_tables_.begin();
    for (auto it = hash_tables_.begin(); it != hash_tables_.end(); ++it) {
      if (it->second.last_use < lru->second.last_use) lru = it;
    }
    ctx_->queue()->Flush();  // any probe using it has been scheduled already
    hash_tables_.erase(lru);
    evictions_ += 1;
    return true;
  }

  // Tier 3: offload a computed result to the host (it cannot be dropped —
  // footnote 4); the BAT heap serves as the parking space. Results whose
  // BAT has been destroyed are unreachable garbage: drop them outright.
  best = std::numeric_limits<std::uint64_t>::max();
  victim = nullptr;
  for (auto& [key, entry] : entries_) {
    if (entry.buffer == nullptr || entry.pinned || entry.scope_refs > 0) continue;
    if (!entry.device_authoritative) continue;
    if (entry.bat.expired()) {
      // The descriptor is gone, but with heap-identity keys the bytes may
      // still be reachable through a live view of the same range — then the
      // buffer holds the only copy and is neither garbage nor offloadable
      // (no descriptor to park it in) until a view re-acquires the entry.
      if (!entry.heap.expired()) continue;
      WaitForQuiescence(&entry);
      entry.buffer.reset();
      entry.producer.reset();
      entries_.erase(key);
      evictions_ += 1;
      return true;
    }
    if (entry.last_use < best) {
      best = entry.last_use;
      victim = &entry;
      victim_key = key;
    }
  }
  if (victim == nullptr) return false;

  BatPtr bat = victim->bat.lock();
  OCELOT_CHECK(bat != nullptr);
  if (victim->producer != nullptr && victim->producer->failed()) {
    // The "result" was never produced: garbage, droppable outright.
    WaitForQuiescence(victim);
    victim->buffer.reset();
    victim->producer.reset();
    entries_.erase(victim_key);
    evictions_ += 1;
    return true;
  }
  ocl::EventList waits;
  if (victim->producer != nullptr && !victim->producer->settled()) {
    waits.push_back(victim->producer);
  }
  ocl::EventPtr read = ctx_->queue()->EnqueueRead(bat->data(), victim->buffer,
                                                  bat->tail_bytes(), waits);
  if (!ctx_->queue()->Wait(read).ok()) {
    // The offload transfer itself faulted: the device copy is still the
    // only one, so nothing was freed. Report "nothing evictable" and let
    // the allocation failure surface to the retry ladder.
    return false;
  }
  WaitForQuiescence(victim);
  victim->buffer.reset();   // freed once pending closures drop their refs
  victim->producer.reset();
  offloads_ += 1;
  return true;
}

void MemoryManager::SetProducer(const BatPtr& bat, ocl::EventPtr event) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[KeyOf(bat)];
  entry.bat = bat;
  entry.heap = BackingHandle(bat);
  entry.producer = std::move(event);
  entry.last_use = ++tick_;
}

void MemoryManager::AddConsumer(const BatPtr& bat, ocl::EventPtr event) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(bat));
  if (it == entries_.end()) return;
  // Consumer events decide when a buffer may be discarded (footnote 5);
  // prune settled ones to bound the list.
  std::erase_if(it->second.consumers,
                [](const ocl::EventPtr& e) { return e->settled(); });
  it->second.consumers.push_back(std::move(event));
}

void MemoryManager::AddEncodedConsumer(const BatPtr& bat, ocl::EventPtr event) {
  if (!bat->encoded()) {
    AddConsumer(bat, std::move(event));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({bat->heap_id(), 0, bat->physical_tail_bytes()});
  if (it == entries_.end()) return;
  std::erase_if(it->second.consumers,
                [](const ocl::EventPtr& e) { return e->settled(); });
  it->second.consumers.push_back(std::move(event));
}

ocl::EventPtr MemoryManager::Producer(const BatPtr& bat) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(bat));
  if (it == entries_.end()) return nullptr;
  return it->second.producer;
}

void MemoryManager::RegisterBitmap(const BatPtr& handle, BitmapInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  bitmaps_[handle->id()] = std::move(info);
  handle->set_ocelot_owned(true);
}

MemoryManager::BitmapInfo* MemoryManager::FindBitmap(const BatPtr& bat) {
  // The returned pointer stays valid while the caller holds `bat` alive:
  // only the death of this exact BAT erases its bitmap registration.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bitmaps_.find(bat->id());
  return it == bitmaps_.end() ? nullptr : &it->second;
}

void MemoryManager::DropBitmap(const BatPtr& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  bitmaps_.erase(bat->id());
}

void MemoryManager::CacheHashTable(std::uint64_t bat_id, std::shared_ptr<void> table,
                                   std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  hash_tables_[bat_id] = {std::move(table), bytes, ++tick_};
}

std::shared_ptr<void> MemoryManager::FindHashTable(std::uint64_t bat_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hash_tables_.find(bat_id);
  if (it == hash_tables_.end()) return nullptr;
  it->second.last_use = ++tick_;
  return it->second.table;
}

void MemoryManager::DropCachedHashTable(std::uint64_t bat_id) {
  std::lock_guard<std::mutex> lock(mu_);
  hash_tables_.erase(bat_id);
}

std::size_t MemoryManager::cached_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status MemoryManager::SyncToHost(const BatPtr& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(bat));
  if (it == entries_.end()) {
    bat->set_ocelot_owned(false);
    return Status::Ok();
  }
  Entry& entry = it->second;
  if (entry.producer != nullptr && !entry.producer->settled()) {
    ctx_->queue()->Wait(entry.producer);
  }
  if (entry.producer != nullptr && entry.producer->failed()) {
    // The result was never produced; the host heap keeps its pre-op bytes
    // (no partial write can escape). Surface the failure instead of
    // silently declaring the host authoritative over garbage.
    return Status::DeviceLost("SyncToHost: producer of '" +
                              entry.producer->label() + "' failed on " +
                              ctx_->device()->name());
  }
  if (!ctx_->device()->model().unified_memory && entry.device_authoritative &&
      entry.buffer != nullptr) {
    ocl::EventPtr read =
        ctx_->queue()->EnqueueRead(bat->data(), entry.buffer, bat->tail_bytes());
    RETURN_IF_ERROR(ctx_->queue()->Wait(read));
  }
  entry.device_authoritative = false;
  bat->set_ocelot_owned(false);
  return Status::Ok();
}

Status MemoryManager::Pin(OpScope* scope, const BatPtr& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  ocl::EventList waits;
  RETURN_IF_ERROR(AcquireReadLocked(scope, bat, &waits).status());
  entries_[KeyOf(bat)].pinned = true;
  return Status::Ok();
}

void MemoryManager::Unpin(const BatPtr& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(bat));
  if (it != entries_.end()) it->second.pinned = false;
}

std::size_t MemoryManager::PurgeFailed() {
  // Post-fault cleanup, called by the scheduler's driving thread after the
  // slot's queue has been drained (all events settled): every entry whose
  // producer or any consumer failed holds garbage or fed a failed op — drop
  // it so a retry re-uploads fresh host bytes instead of reading the junk.
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    Entry& e = it->second;
    bool fault = e.producer != nullptr && e.producer->failed();
    for (const ocl::EventPtr& c : e.consumers) fault = fault || c->failed();
    if (!fault) {
      ++it;
      continue;
    }
    WaitForQuiescence(&e);
    if (BatPtr bat = e.bat.lock()) bat->set_ocelot_owned(false);
    it = entries_.erase(it);
    dropped += 1;
  }
  auto bm = bitmaps_.begin();
  while (bm != bitmaps_.end()) {
    if (bm->second.producer != nullptr && bm->second.producer->failed()) {
      bm = bitmaps_.erase(bm);
      dropped += 1;
    } else {
      ++bm;
    }
  }
  return dropped;
}

std::size_t MemoryManager::Quarantine() {
  // The device is being retired from the plan: every cached buffer, bitmap
  // and hash table bound to it is unreachable state. Cached uploads of
  // host-resident BATs lose nothing; device-authoritative results are
  // declared lost (their ops will be recomputed on surviving devices), so
  // their BATs revert to host ownership rather than pointing at a corpse.
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = entries_.size() + bitmaps_.size() + hash_tables_.size();
  for (auto& [key, e] : entries_) {
    WaitForQuiescence(&e);
    if (BatPtr bat = e.bat.lock()) bat->set_ocelot_owned(false);
  }
  entries_.clear();
  bitmaps_.clear();
  hash_tables_.clear();
  return dropped;
}

void MemoryManager::OnBatDeleted(std::uint64_t bat_id) {
  // MonetDB told us the BAT is gone (paper 4.3): its bitmap and hash table
  // are garbage now. Buffer-cache entries are keyed on heap identity and
  // survive as long as the heap does — another view of the same bytes keeps
  // hitting the cached buffer (OnHeapDeleted reaps them).
  std::lock_guard<std::mutex> lock(mu_);
  bitmaps_.erase(bat_id);
  hash_tables_.erase(bat_id);
}

bool MemoryManager::Quiescent(const Entry& entry) {
  // Settled, not complete: a failed event is just as terminal — treating it
  // as "still busy" would make the entry permanently non-quiescent and push
  // foreign-thread reapers (OnHeapDeleted) into draining the queue.
  if (entry.producer != nullptr && !entry.producer->settled()) return false;
  for (const ocl::EventPtr& e : entry.consumers) {
    if (!e->settled()) return false;
  }
  return true;
}

void MemoryManager::OnHeapDeleted(std::uint64_t heap_id) {
  // The last BAT sharing this heap (parent or view) is gone — or its heap
  // was reallocated by ResizeTail: every cached buffer of any range of it
  // is garbage. Quiescent entries are erased outright (pending queue ops
  // hold their own buffer/event references, so this never touches the
  // CommandQueue and is safe from whatever thread dropped the last
  // reference). Entries with incomplete events can only exist while the
  // slot's own driving thread has enqueued-but-unflushed work; that thread
  // is also the only one that can be destroying such a BAT (fragments own
  // their temporaries), so draining the queue here stays single-threaded.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.lower_bound(BufferKey{heap_id, 0, 0});
  while (it != entries_.end() && it->first.heap == heap_id) {
    if (!Quiescent(it->second)) WaitForQuiescence(&it->second);
    it = entries_.erase(it);
  }
}

}  // namespace ocelot
