#include "ocelot/memory_manager.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::BatPtr;

MemoryManager::MemoryManager(ocl::DeviceContext* ctx) : ctx_(ctx) {
  listener_token_ = cstore::Bat::AddDeleteListener(
      [this](std::uint64_t id) { OnBatDeleted(id); });
}

MemoryManager::~MemoryManager() {
  cstore::Bat::RemoveDeleteListener(listener_token_);
}

MemoryManager::OpScope::~OpScope() {
  for (std::uint64_t id : held_) {
    auto it = mm_->entries_.find(id);
    if (it != mm_->entries_.end() && it->second.scope_refs > 0) {
      it->second.scope_refs -= 1;
    }
  }
}

void MemoryManager::Hold(OpScope* scope, std::uint64_t id, Entry* entry) {
  if (scope == nullptr) return;
  entry->scope_refs += 1;
  scope->held_.push_back(id);
}

Result<ocl::BufferPtr> MemoryManager::AcquireRead(OpScope* scope, const BatPtr& bat,
                                                  ocl::EventList* waits) {
  if (bat == nullptr) return Status::InvalidArgument("AcquireRead: null BAT");
  Entry& entry = entries_[bat->id()];
  entry.bat = bat;
  entry.last_use = ++tick_;
  entry.bytes = bat->tail_bytes();

  if (entry.buffer == nullptr) {
    if (ctx_->device()->model().unified_memory) {
      ASSIGN_OR_RETURN(entry.buffer,
                       ctx_->device()->WrapHost(bat->data(), bat->tail_bytes()));
    } else {
      if (entry.device_authoritative) {
        // An offloaded result is being pulled back (footnote 4): reload the
        // host copy we parked in the BAT heap.
        reloads_ += 1;
      }
      ASSIGN_OR_RETURN(entry.buffer, AllocateWithEviction(bat->tail_bytes()));
      entry.producer =
          ctx_->queue()->EnqueueWrite(entry.buffer, bat->data(), bat->tail_bytes());
    }
  }
  if (entry.producer != nullptr && !entry.producer->complete() && waits != nullptr) {
    waits->push_back(entry.producer);
  }
  Hold(scope, bat->id(), &entry);
  return entry.buffer;
}

Result<ocl::BufferPtr> MemoryManager::AcquireWrite(OpScope* scope, const BatPtr& bat) {
  if (bat == nullptr) return Status::InvalidArgument("AcquireWrite: null BAT");
  Entry& entry = entries_[bat->id()];
  entry.bat = bat;
  entry.last_use = ++tick_;
  entry.bytes = bat->tail_bytes();

  if (entry.buffer == nullptr) {
    if (ctx_->device()->model().unified_memory) {
      ASSIGN_OR_RETURN(entry.buffer,
                       ctx_->device()->WrapHost(bat->data(), bat->tail_bytes()));
    } else {
      ASSIGN_OR_RETURN(entry.buffer, AllocateWithEviction(bat->tail_bytes()));
    }
  }
  entry.device_authoritative = !ctx_->device()->model().unified_memory;
  bat->set_ocelot_owned(true);
  Hold(scope, bat->id(), &entry);
  return entry.buffer;
}

Result<ocl::BufferPtr> MemoryManager::AllocScratch(std::size_t bytes) {
  return AllocateWithEviction(bytes);
}

Result<ocl::BufferPtr> MemoryManager::AllocateWithEviction(std::size_t bytes) {
  for (;;) {
    auto buf = ctx_->device()->Allocate(bytes);
    if (buf.ok()) return buf;
    if (buf.status().code() != common::StatusCode::kResourceExhausted) return buf;
    if (!EvictOne()) {
      return Status::ResourceExhausted(
          "device memory exhausted and nothing evictable (need " +
          std::to_string(bytes) + "B on " + ctx_->device()->name() + ")");
    }
  }
}

void MemoryManager::WaitForQuiescence(Entry* entry) {
  if (entry->producer != nullptr && !entry->producer->complete()) {
    ctx_->queue()->Wait(entry->producer);
  }
  for (const ocl::EventPtr& e : entry->consumers) {
    if (!e->complete()) ctx_->queue()->Wait(e);
  }
  entry->consumers.clear();
}

bool MemoryManager::EvictOne() {
  // Tier 1 (paper 3.3): evict cached copies of host-resident BATs, LRU.
  Entry* victim = nullptr;
  std::uint64_t victim_id = 0;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (auto& [id, entry] : entries_) {
    if (entry.buffer == nullptr || entry.pinned || entry.scope_refs > 0) continue;
    if (entry.device_authoritative) continue;  // tier 3
    if (entry.last_use < best) {
      best = entry.last_use;
      victim = &entry;
      victim_id = id;
    }
  }
  if (victim != nullptr) {
    WaitForQuiescence(victim);
    victim->buffer.reset();
    victim->producer.reset();
    entries_.erase(victim_id);
    evictions_ += 1;
    return true;
  }

  // Tier 2: drop auxiliary structures (cached hash tables) before touching
  // result buffers.
  if (!hash_tables_.empty()) {
    auto lru = hash_tables_.begin();
    for (auto it = hash_tables_.begin(); it != hash_tables_.end(); ++it) {
      if (it->second.last_use < lru->second.last_use) lru = it;
    }
    ctx_->queue()->Flush();  // any probe using it has been scheduled already
    hash_tables_.erase(lru);
    evictions_ += 1;
    return true;
  }

  // Tier 3: offload a computed result to the host (it cannot be dropped —
  // footnote 4); the BAT heap serves as the parking space. Results whose
  // BAT has been destroyed are unreachable garbage: drop them outright.
  best = std::numeric_limits<std::uint64_t>::max();
  victim = nullptr;
  for (auto& [id, entry] : entries_) {
    if (entry.buffer == nullptr || entry.pinned || entry.scope_refs > 0) continue;
    if (!entry.device_authoritative) continue;
    if (entry.bat.expired()) {
      WaitForQuiescence(&entry);
      entry.buffer.reset();
      entry.producer.reset();
      entries_.erase(id);
      evictions_ += 1;
      return true;
    }
    if (entry.last_use < best) {
      best = entry.last_use;
      victim = &entry;
      victim_id = id;
    }
  }
  if (victim == nullptr) return false;

  BatPtr bat = victim->bat.lock();
  OCELOT_CHECK(bat != nullptr);
  ocl::EventList waits;
  if (victim->producer != nullptr && !victim->producer->complete()) {
    waits.push_back(victim->producer);
  }
  ocl::EventPtr read = ctx_->queue()->EnqueueRead(bat->data(), victim->buffer,
                                                  bat->tail_bytes(), waits);
  ctx_->queue()->Wait(read);
  WaitForQuiescence(victim);
  victim->buffer.reset();   // freed once pending closures drop their refs
  victim->producer.reset();
  offloads_ += 1;
  return true;
}

void MemoryManager::SetProducer(const BatPtr& bat, ocl::EventPtr event) {
  Entry& entry = entries_[bat->id()];
  entry.bat = bat;
  entry.producer = std::move(event);
  entry.last_use = ++tick_;
}

void MemoryManager::AddConsumer(const BatPtr& bat, ocl::EventPtr event) {
  auto it = entries_.find(bat->id());
  if (it == entries_.end()) return;
  // Consumer events decide when a buffer may be discarded (footnote 5);
  // prune completed ones to bound the list.
  std::erase_if(it->second.consumers,
                [](const ocl::EventPtr& e) { return e->complete(); });
  it->second.consumers.push_back(std::move(event));
}

ocl::EventPtr MemoryManager::Producer(const BatPtr& bat) const {
  auto it = entries_.find(bat->id());
  if (it == entries_.end()) return nullptr;
  return it->second.producer;
}

void MemoryManager::RegisterBitmap(const BatPtr& handle, BitmapInfo info) {
  bitmaps_[handle->id()] = std::move(info);
  handle->set_ocelot_owned(true);
}

MemoryManager::BitmapInfo* MemoryManager::FindBitmap(const BatPtr& bat) {
  auto it = bitmaps_.find(bat->id());
  return it == bitmaps_.end() ? nullptr : &it->second;
}

void MemoryManager::DropBitmap(const BatPtr& bat) { bitmaps_.erase(bat->id()); }

void MemoryManager::CacheHashTable(std::uint64_t bat_id, std::shared_ptr<void> table,
                                   std::size_t bytes) {
  hash_tables_[bat_id] = {std::move(table), bytes, ++tick_};
}

std::shared_ptr<void> MemoryManager::FindHashTable(std::uint64_t bat_id) {
  auto it = hash_tables_.find(bat_id);
  if (it == hash_tables_.end()) return nullptr;
  it->second.last_use = ++tick_;
  return it->second.table;
}

Status MemoryManager::SyncToHost(const BatPtr& bat) {
  auto it = entries_.find(bat->id());
  if (it == entries_.end()) {
    bat->set_ocelot_owned(false);
    return Status::Ok();
  }
  Entry& entry = it->second;
  if (entry.producer != nullptr && !entry.producer->complete()) {
    ctx_->queue()->Wait(entry.producer);
  }
  if (!ctx_->device()->model().unified_memory && entry.device_authoritative &&
      entry.buffer != nullptr) {
    ocl::EventPtr read =
        ctx_->queue()->EnqueueRead(bat->data(), entry.buffer, bat->tail_bytes());
    ctx_->queue()->Wait(read);
  }
  entry.device_authoritative = false;
  bat->set_ocelot_owned(false);
  return Status::Ok();
}

Status MemoryManager::Pin(OpScope* scope, const BatPtr& bat) {
  ocl::EventList waits;
  RETURN_IF_ERROR(AcquireRead(scope, bat, &waits).status());
  entries_[bat->id()].pinned = true;
  return Status::Ok();
}

void MemoryManager::Unpin(const BatPtr& bat) {
  auto it = entries_.find(bat->id());
  if (it != entries_.end()) it->second.pinned = false;
}

void MemoryManager::OnBatDeleted(std::uint64_t bat_id) {
  // MonetDB told us the BAT is gone (paper 4.3): its cache entry, bitmap and
  // hash table are garbage now. Pending events must drain first.
  auto it = entries_.find(bat_id);
  if (it != entries_.end()) {
    WaitForQuiescence(&it->second);
    entries_.erase(it);
  }
  bitmaps_.erase(bat_id);
  hash_tables_.erase(bat_id);
}

}  // namespace ocelot
