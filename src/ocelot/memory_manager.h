#ifndef OCELOT_OCELOT_MEMORY_MANAGER_H_
#define OCELOT_OCELOT_MEMORY_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "cstore/bat.h"
#include "ocl/context.h"

namespace ocelot {

/// The storage interface between Ocelot and the column store (paper 3.3).
///
/// Responsibilities, mirroring the paper:
///  * BAT -> device buffer registry. On unified-memory devices the mapping
///    is zero-copy; discrete devices get a transfer and the copy is kept as
///    a *device cache* for as long as possible. The cache is keyed on
///    **heap identity** — (heap id, byte offset, byte length) — not on the
///    BAT descriptor, so a parent and any view covering the same bytes share
///    one cached buffer, and the scheduler's per-operator fragment views hit
///    the cache across operator calls instead of re-uploading.
///  * LRU eviction of clean cached base BATs under memory pressure, then
///    dropping of auxiliary structures (cached hash tables), then
///    *offloading* of computed result buffers back to the host — those
///    cannot be dropped, only moved (footnote 4) — with transparent reload.
///  * Reference counting (OpScope) so buffers used by the operator being
///    scheduled are never victims; explicit pinning for hot BATs.
///  * Producer/consumer event registries per buffer: the scheduling
///    information Ocelot hands to the OpenCL runtime (paper 3.4).
///  * Delete/recycle callbacks from the BAT layer (paper 4.3): BAT death
///    drops bitmap/hash-table state, heap death drops the buffer cache
///    entries of every range of that heap.
///  * The hash-table cache for base-table joins (paper 5.2.6).
///  * Bitmap registry: selection results live as device bitmaps and are
///    only materialized into oid lists on demand (paper 4.1.1).
///
/// Thread safety: one MemoryManager belongs to one device slot and is
/// driven by one scheduler fragment at a time, but the process-wide BAT and
/// heap delete listeners fire on whichever thread drops the last reference
/// — possibly while another fragment runs on this manager's device. All
/// internal state is therefore guarded by a mutex. Foreign threads only
/// ever mutate the maps (their reaping never drives this slot's command
/// queue — see OnHeapDeleted); queue draining stays with the slot's own
/// driving thread, which keeps per-slot virtual clocks single-writer.
class MemoryManager {
  /// Identity of the bytes a device buffer caches: the backing heap plus
  /// the byte range inside it. A parent BAT and a view covering the same
  /// range produce the same key; distinct fragment views of one column
  /// produce per-range keys that are stable across operator calls.
  /// (Declared before OpScope, which stores the keys it holds.)
  struct BufferKey {
    std::uint64_t heap = 0;
    std::size_t offset = 0;
    std::size_t bytes = 0;
    auto operator<=>(const BufferKey&) const = default;
  };

 public:
  /// Binds to one device slot of a context; a multi-device context gets one
  /// MemoryManager (inside one OcelotEngine) per slot.
  explicit MemoryManager(ocl::DeviceContext* ctx);
  ~MemoryManager();

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// RAII guard holding entries of one operator invocation; buffers held by
  /// an open scope are exempt from eviction.
  class OpScope {
   public:
    explicit OpScope(MemoryManager* mm) : mm_(mm) {}
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    friend class MemoryManager;

    MemoryManager* mm_;
    std::vector<BufferKey> held_;  ///< cache keys of the held buffers
  };

  /// Device buffer with valid *decoded* contents of `bat`. Appends the
  /// buffer's producer event (if pending) to `waits`.
  ///
  /// Encoded BATs: the cache entry is keyed on the decoded twin's heap
  /// identity (so equal-sized fragment views of one encoded column can
  /// never collide, and views share cached decoded ranges exactly like
  /// plain ones). On discrete devices the *encoded* image is what crosses
  /// the bus — transfer billing sees the compressed byte count — and a
  /// decode_{dict,rle,bitpack} kernel expands it on the device, billed as
  /// kernel time like any other kernel. On unified devices the decoded twin
  /// is wrapped zero-copy, as plain heaps are.
  common::Result<ocl::BufferPtr> AcquireRead(OpScope* scope, const cstore::BatPtr& bat,
                                             ocl::EventList* waits);

  /// Device buffer holding the raw *encoded* image of `bat` (whole column;
  /// kernels apply Bat::row_offset()). The native compressed kernels —
  /// dictionary-rewritten selects, bit-unpacking gathers — read this
  /// instead of the decoded buffer. Falls back to AcquireRead for plain
  /// BATs. Upload is billed on the physical (compressed) size.
  common::Result<ocl::BufferPtr> AcquireEncodedRead(OpScope* scope,
                                                    const cstore::BatPtr& bat,
                                                    ocl::EventList* waits);

  /// Device buffer backing the (new) result `bat`; contents undefined.
  /// Marks the BAT ocelot-owned. On discrete devices every *other* cached
  /// non-authoritative entry overlapping the written byte range is
  /// invalidated first — a previously cached sub-range view must not keep
  /// serving pre-write host bytes once this range is device-authoritative.
  common::Result<ocl::BufferPtr> AcquireWrite(OpScope* scope, const cstore::BatPtr& bat);

  /// Anonymous device scratch (histograms, ping-pong buffers, partials).
  common::Result<ocl::BufferPtr> AllocScratch(std::size_t bytes);

  // -- Event registries (lazy evaluation, paper 3.4) -------------------------

  void SetProducer(const cstore::BatPtr& bat, ocl::EventPtr event);
  void AddConsumer(const cstore::BatPtr& bat, ocl::EventPtr event);
  /// Consumer registration for kernels reading the raw encoded image
  /// (AcquireEncodedRead): keys the *physical* cache entry. AddConsumer
  /// would key the decoded twin — and building that key materializes the
  /// twin, defeating the point of the native compressed path. Falls back
  /// to AddConsumer for plain BATs.
  void AddEncodedConsumer(const cstore::BatPtr& bat, ocl::EventPtr event);
  ocl::EventPtr Producer(const cstore::BatPtr& bat) const;

  // -- Bitmaps ----------------------------------------------------------------

  struct BitmapInfo {
    ocl::BufferPtr bits;       ///< packed, byte-granular, 4-byte padded
    std::size_t domain = 0;    ///< number of rows covered
    ocl::EventPtr producer;
    std::int64_t count = -1;   ///< cached popcount (-1 unknown)
  };

  /// Registers `handle` (a placeholder oid BAT) as a bitmap-backed
  /// candidate list.
  void RegisterBitmap(const cstore::BatPtr& handle, BitmapInfo info);
  /// nullptr when `bat` is not bitmap-backed.
  BitmapInfo* FindBitmap(const cstore::BatPtr& bat);
  /// Called after materialization turned the handle into a real oid BAT.
  void DropBitmap(const cstore::BatPtr& bat);

  // -- Hash table cache (paper 5.2.6) ------------------------------------------

  void CacheHashTable(std::uint64_t bat_id, std::shared_ptr<void> table,
                      std::size_t bytes);
  std::shared_ptr<void> FindHashTable(std::uint64_t bat_id);
  /// Forgets a cached hash table (benchmarks measuring cold builds).
  void DropCachedHashTable(std::uint64_t bat_id);

  // -- Ownership / sync ---------------------------------------------------------

  /// Waits for the producer and makes the BAT's host heap authoritative
  /// (device->host read on discrete devices); clears ocelot ownership.
  /// Fails (without corrupting the host heap) when the producer or the
  /// readback faulted.
  common::Status SyncToHost(const cstore::BatPtr& bat);

  // -- Fault recovery -----------------------------------------------------------

  /// Drops every cache entry touched by a failed event (garbage uploads,
  /// never-produced results, bitmaps of failed kernels). Call after the
  /// slot's queue has been drained, before retrying. Returns entries dropped.
  std::size_t PurgeFailed();

  /// Retires the whole device cache: the device has been quarantined, so
  /// every entry/bitmap/hash table bound to its buffers is dropped and
  /// surviving BATs revert to host ownership. Returns entries dropped.
  std::size_t Quarantine();

  /// Pins a BAT's device buffer (never evicted) — the manual refcount bump
  /// of paper 3.3.
  common::Status Pin(OpScope* scope, const cstore::BatPtr& bat);
  void Unpin(const cstore::BatPtr& bat);

  // -- Introspection -------------------------------------------------------------

  std::size_t device_bytes() const { return ctx_->device()->allocated_bytes(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t offloads() const { return offloads_; }
  std::uint64_t reloads() const { return reloads_; }
  std::size_t cached_entries() const;

  ocl::DeviceContext* context() { return ctx_; }

 private:
  static BufferKey KeyOf(const cstore::BatPtr& bat);

  struct Entry {
    std::weak_ptr<cstore::Bat> bat;
    std::weak_ptr<const void> heap;  // liveness of the bytes behind the key
    ocl::BufferPtr buffer;          // null while offloaded/evicted
    ocl::EventPtr producer;
    ocl::EventList consumers;
    bool device_authoritative = false;  // result lives on device only
    bool pinned = false;
    /// An overlapping range was acquired for write while this entry was
    /// scope-held: the cached bytes are pre-write garbage. The entry is
    /// reaped when its scope closes (or on the next acquire of the key) —
    /// it must never serve another read.
    bool stale = false;
    int scope_refs = 0;
    std::uint64_t last_use = 0;
    std::size_t bytes = 0;
  };

  struct CachedTable {
    std::shared_ptr<void> table;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  // Unlocked implementations; the public methods take mu_ and delegate.
  common::Result<ocl::BufferPtr> AcquireReadLocked(OpScope* scope,
                                                   const cstore::BatPtr& bat,
                                                   ocl::EventList* waits);
  /// Caches/uploads the raw encoded image of `bat` under its physical key
  /// {encoded heap, 0, physical bytes}; appends the upload event to waits.
  common::Result<ocl::BufferPtr> AcquirePhysicalLocked(OpScope* scope,
                                                       const cstore::BatPtr& bat,
                                                       ocl::EventList* waits);
  /// Discrete-device path for encoded BATs: compressed upload (via
  /// AcquirePhysicalLocked) + decode kernel into `entry`'s fresh buffer.
  common::Status UploadEncodedLocked(OpScope* scope, const cstore::BatPtr& bat,
                                     Entry* entry);
  common::Result<ocl::BufferPtr> AllocateWithEviction(std::size_t bytes);
  /// Frees some device memory; returns false when nothing can be evicted.
  bool EvictOne();
  /// Reaps evictable cached sub-ranges of `key`'s heap that `key`'s buffer
  /// now covers (fragment views after the whole column got cached).
  void SubsumeCoveredEntries(const BufferKey& key);
  /// Write-path coherence (AcquireWrite): drops every other cached
  /// non-authoritative entry whose byte range overlaps `key` — after the
  /// write those entries would keep serving pre-write host-uploaded bytes.
  /// Correctness, not eviction policy: ignores pin and LRU state.
  void InvalidateOverlappingEntries(const BufferKey& key);
  /// True when the entry's events are all complete (safe to move/drop
  /// without touching the command queue).
  static bool Quiescent(const Entry& entry);
  /// Drains the entry's pending events through the slot's queue.
  void WaitForQuiescence(Entry* entry);
  void OnBatDeleted(std::uint64_t bat_id);
  void OnHeapDeleted(std::uint64_t heap_id);
  void Hold(OpScope* scope, const BufferKey& key, Entry* entry);

  ocl::DeviceContext* ctx_;
  mutable std::mutex mu_;
  std::map<BufferKey, Entry> entries_;
  std::map<std::uint64_t, BitmapInfo> bitmaps_;
  std::map<std::uint64_t, CachedTable> hash_tables_;
  std::uint64_t bat_listener_token_;
  std::uint64_t heap_listener_token_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t offloads_ = 0;
  std::uint64_t reloads_ = 0;
};

}  // namespace ocelot

#endif  // OCELOT_OCELOT_MEMORY_MANAGER_H_
