#include "ocelot/register.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ocelot/engine.h"
#include "ocelot/scheduler.h"
#include "ocl/context.h"

namespace ocelot {

namespace {

/// Applies the caller's model overrides to a discovered device model.
ocl::DeviceModel WithOverride(const ocl::DeviceModel& discovered,
                              const cstore::EngineOptions& options) {
  if (discovered.type == ocl::DeviceType::kCpu && options.cpu_model != nullptr) {
    return *options.cpu_model;
  }
  if (discovered.type == ocl::DeviceType::kGpu && options.gpu_model != nullptr) {
    return *options.gpu_model;
  }
  return discovered;
}

const char* ShortName(ocl::DeviceType type) {
  return type == ocl::DeviceType::kCpu ? "cpu" : "gpu";
}

/// One OcelotEngine on one device model.
class SingleDeviceBundle : public cstore::EngineBundle {
 public:
  explicit SingleDeviceBundle(ocl::DeviceModel model)
      : ctx_(ocl::Context::Create(std::move(model))), engine_(ctx_.get()) {}

  cstore::QueryEngine* engine() override { return &engine_; }
  common::VirtualClock* clock() override { return ctx_->clock(); }
  bool hardware_oblivious() const override { return true; }
  ocl::Context* ocl_context() override { return ctx_.get(); }
  common::Status Finish() override { return ctx_->FinishAll(); }

 private:
  std::unique_ptr<ocl::Context> ctx_;
  OcelotEngine engine_;
};

/// The Scheduler across every device of a multi-device context.
class MultiDeviceBundle : public cstore::EngineBundle {
 public:
  explicit MultiDeviceBundle(std::vector<ocl::DeviceModel> models)
      : ctx_(ocl::Context::Create(std::move(models))), scheduler_(ctx_.get()) {}

  cstore::QueryEngine* engine() override { return &scheduler_; }
  common::VirtualClock* clock() override { return scheduler_.clock(); }
  bool hardware_oblivious() const override { return true; }
  ocl::Context* ocl_context() override { return ctx_.get(); }
  common::Status Finish() override { return ctx_->FinishAll(); }

 private:
  std::unique_ptr<ocl::Context> ctx_;
  Scheduler scheduler_;
};

}  // namespace

void RegisterEngines(cstore::EngineRegistry* registry) {
  // One single-device engine per discovered device, named by device kind.
  for (const ocl::DeviceModel& model : ocl::AvailableDevices()) {
    std::string name = std::string("ocelot:") + ShortName(model.type);
    registry->Register(
        name, [model](const cstore::EngineOptions& options)
                  -> common::Result<std::unique_ptr<cstore::EngineBundle>> {
          return std::unique_ptr<cstore::EngineBundle>(
              std::make_unique<SingleDeviceBundle>(WithOverride(model, options)));
        });
  }

  // The multi-device scheduler over the whole device set.
  registry->Register(
      "ocelot:multi", [](const cstore::EngineOptions& options)
                          -> common::Result<std::unique_ptr<cstore::EngineBundle>> {
        std::vector<ocl::DeviceModel> models;
        for (const ocl::DeviceModel& model : ocl::AvailableDevices()) {
          models.push_back(WithOverride(model, options));
        }
        return std::unique_ptr<cstore::EngineBundle>(
            std::make_unique<MultiDeviceBundle>(std::move(models)));
      });
}

}  // namespace ocelot
