#ifndef OCELOT_OCELOT_REGISTER_H_
#define OCELOT_OCELOT_REGISTER_H_

#include "cstore/registry.h"

namespace ocelot {

/// Registers the hardware-oblivious engines with `registry`, driven by
/// ocl::AvailableDevices():
///   "ocelot:cpu" / "ocelot:gpu" — one OcelotEngine on a single device model
///                                 (overridable through EngineOptions);
///   "ocelot:multi"              — the Scheduler across *all* available
///                                 devices (one engine per device slot).
/// Idempotent; mal::EnsureEngineRegistry() calls this once per process.
void RegisterEngines(cstore::EngineRegistry* registry);

}  // namespace ocelot

#endif  // OCELOT_OCELOT_REGISTER_H_
