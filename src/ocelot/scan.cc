#include "ocelot/scan.h"

#include "common/simd.h"

namespace ocelot {

using common::Result;

Result<ocl::EventPtr> EnqueueExclusiveScan(MemoryManager* mm, ocl::BufferPtr in,
                                           ocl::BufferPtr out, std::size_t n,
                                           ocl::EventList waits) {
  ocl::DeviceContext* ctx = mm->context();
  int groups = ctx->device()->model().default_groups();
  ASSIGN_OR_RETURN(ocl::BufferPtr partials,
                   mm->AllocScratch(static_cast<std::size_t>(groups) * 4));

  ocl::KernelLaunch k1;
  k1.name = "scan_partials";
  k1.body = [in, partials, n](ocl::WorkGroup& wg) {
    auto src = in->Span<std::uint32_t>();
    auto part = partials->Span<std::uint32_t>();
    ocl::UnitRange r = wg.GroupUnits(n);
    std::uint32_t sum = 0;
    if (r.step == 1) {
      // u32 wraparound addition is associative, so the 4-lane sum is
      // bit-identical to the serial loop.
      sum = common::simd::SumU32(src.data() + r.first, r.size());
    } else {
      for (std::uint64_t i : r) sum += src[i];
    }
    part[static_cast<std::size_t>(wg.group_id())] = sum;
  };
  ocl::EventPtr e1 = ctx->queue()->EnqueueKernel(std::move(k1), std::move(waits));

  ocl::KernelLaunch k2;
  k2.name = "scan_spine";
  k2.groups = 1;
  k2.local_size = 1;
  k2.body = [partials, groups](ocl::WorkGroup& wg) {
    if (wg.group_id() != 0) return;
    auto part = partials->Span<std::uint32_t>();
    std::uint32_t running = 0;
    for (int g = 0; g < groups; ++g) {
      std::uint32_t v = part[static_cast<std::size_t>(g)];
      part[static_cast<std::size_t>(g)] = running;
      running += v;
    }
  };
  ocl::EventPtr e2 = ctx->queue()->EnqueueKernel(std::move(k2), {e1});

  ocl::KernelLaunch k3;
  k3.name = "scan_apply";
  k3.body = [in, out, partials, n](ocl::WorkGroup& wg) {
    auto src = in->Span<std::uint32_t>();
    auto dst = out->Span<std::uint32_t>();
    auto part = partials->Span<std::uint32_t>();
    std::uint32_t running = part[static_cast<std::size_t>(wg.group_id())];
    ocl::UnitRange r = wg.GroupUnits(n);
    for (std::uint64_t i : r) {
      dst[i] = running;
      running += src[i];
    }
    // The last group also publishes the grand total into out[n].
    if (r.limit == n) dst[n] = running;
  };
  return ctx->queue()->EnqueueKernel(std::move(k3), {e2});
}

Result<std::uint32_t> ReadScalarU32(ocl::DeviceContext* ctx, ocl::BufferPtr buffer,
                                    std::size_t index, ocl::EventList waits) {
  std::uint32_t value = 0;
  // A 4-byte read; on discrete devices this is a (latency-bound) transfer,
  // exactly the small sync points a real OpenCL host program pays when it
  // needs a result cardinality to size the next allocation.
  auto src = buffer->Span<std::uint32_t>();
  if (index >= src.size()) {
    return common::Status::InvalidArgument("scalar read out of bounds");
  }
  ocl::EventPtr read = ctx->queue()->EnqueueRead(
      &value, buffer, 4, std::move(waits));
  // EnqueueRead copies from the buffer start; re-read the right slot below.
  RETURN_IF_ERROR(ctx->queue()->Wait(read));
  value = src[index];
  return value;
}

}  // namespace ocelot
