#ifndef OCELOT_OCELOT_SCAN_H_
#define OCELOT_OCELOT_SCAN_H_

#include <cstdint>

#include "ocelot/memory_manager.h"

namespace ocelot {

/// Device-side exclusive prefix sum over `n` uint32 values — the scan
/// primitive [33] underlying bitmap materialization, the radix sort's
/// histogram shuffle and the two-phase joins (paper 4.1.2/4.1.3/4.1.5).
///
/// Three launches: per-group partial sums over contiguous chunks, a
/// single-work-group scan of the partials, and the chunk-local scan that
/// applies the group offsets. `out` must hold n+1 values; out[n] receives
/// the grand total.
common::Result<ocl::EventPtr> EnqueueExclusiveScan(MemoryManager* mm,
                                                   ocl::BufferPtr in,
                                                   ocl::BufferPtr out, std::size_t n,
                                                   ocl::EventList waits);

/// Blocking 4-byte read of `buffer[index]` (uint32 element index).
common::Result<std::uint32_t> ReadScalarU32(ocl::DeviceContext* ctx, ocl::BufferPtr buffer,
                                            std::size_t index, ocl::EventList waits);

}  // namespace ocelot

#endif  // OCELOT_OCELOT_SCAN_H_
