// The multi-device execution layer (see scheduler.h): Mitosis-style
// horizontal fragments over the device set, per-device execution through the
// hardware-oblivious operator set, host-side merge, makespan clock billing.
//
// Fragment sizes are throughput-weighted: a per-device, per-operator-class,
// per-size-bucket EWMA calibrated from the virtual durations RunPartitioned
// measures decides each device's share (monet::WeightedSlices cuts the
// ranges; equal split on cold start or under OCELOT_STATIC_PARTITION=1),
// and a device whose fixed per-operator cost exceeds the makespan without
// it is dropped from the plan entirely.
//
// Data movement is zero-copy on the partition side: fragments are Bat views
// aliasing the input heaps, so the only bytes the scheduler itself moves
// are the single merge write of each operator's output. Fragments execute
// concurrently on the host thread pool (one lane per device at most); every
// fragment bills its own device queue's modeled time, and the session clock
// advances by the makespan only.

#include "ocelot/scheduler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "common/thread_pool.h"
#include "monet/mitosis.h"

namespace ocelot {

using common::Nanos;
using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::GroupResult;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;
using cstore::ValTypeSize;

namespace {

/// Host bytes the scheduler itself has copied (merge writes and partial
/// folds; partitioning is views and contributes nothing). Process-wide so
/// benchmarks can report copy traffic per measured section.
std::atomic<std::uint64_t> g_bytes_copied{0};

Status CheckHostResident(const BatPtr& b, const char* what) {
  if (b != nullptr && b->ocelot_owned()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": scheduler inputs must be host-resident "
                                   "(sync the producing engine first)");
  }
  return Status::Ok();
}

/// Zero-copy fragment: a view of rows [s.begin, s.end) aliasing `src`'s heap.
BatPtr FragmentOf(const BatPtr& src, const monet::Slice& s) {
  return Bat::View(src, s.begin, s.size());
}

/// Merges oid-list fragment results into one output BAT, preallocated once
/// from a size-prefix pass. Each fragment's base row offset is added during
/// the single merge write (the old per-fragment OffsetOids pass is fused
/// into it); bases must be zero where fragment results are already global.
/// A lone fragment is stolen wholesale — the steady-state single-device
/// case copies nothing at all.
BatPtr MergeOidParts(std::vector<BatPtr>& parts, const std::vector<oid_t>& bases) {
  if (parts.size() == 1 && bases[0] == 0) return std::move(parts[0]);
  std::size_t total = 0;
  bool nonil = true;
  for (const BatPtr& p : parts) {
    total += p->size();
    nonil = nonil && p->nonil();
  }
  BatPtr out = Bat::MakeOid(total);
  auto dst = out->oids();
  std::size_t at = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto src = parts[i]->oids();
    oid_t base = bases[i];
    if (base == 0) {
      std::copy(src.begin(), src.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      for (std::size_t k = 0; k < src.size(); ++k) dst[at + k] = src[k] + base;
    }
    at += src.size();
  }
  out->set_nonil(nonil);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Concatenates value fragment results in fragment order (byte counts from
/// the logical-size accessor, so merges stay correct for any tail width or
/// encoding). Single fragments are stolen without a copy.
BatPtr MergeValueParts(ValType type, std::vector<BatPtr>& parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  std::size_t total = 0;
  bool nonil = true;
  for (const BatPtr& p : parts) {
    total += p->size();
    nonil = nonil && p->nonil();
  }
  BatPtr out = Bat::Make(type, total);
  std::size_t at = 0;  // byte offset into the merged tail
  for (const BatPtr& p : parts) {
    // tail_bytes() is the *logical* size: if a fragment result were ever an
    // encoded view, data() is its decoded twin and the byte count must match
    // that, not the physical image.
    if (p->tail_bytes() != 0) {
      std::memcpy(static_cast<std::byte*>(out->data()) + at, p->data(),
                  p->tail_bytes());
    }
    at += p->tail_bytes();
  }
  out->set_nonil(nonil);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Fresh private copy of a fragment partial (grouped-aggregate folds mutate
/// the accumulator; the partials were synced through their devices' memory
/// managers, which may still cache their device buffers). The *complete*
/// property set rides along (Bat::CopyPropertiesFrom — key, dense/tseqbase,
/// hseqbase and whatever bit is added next), so the aggregate fold path
/// cannot launder properties away.
BatPtr CloneBat(const BatPtr& src) {
  BatPtr out = Bat::Make(src->type(), src->size());
  // Empty BATs have a null heap; zero-length memcpy from null is still UB.
  if (src->tail_bytes() != 0) {
    std::memcpy(out->data(), src->data(), src->tail_bytes());
  }
  out->CopyPropertiesFrom(*src);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Marks a candidate list with the properties every engine guarantees for
/// selection results (sorted unique oids, no nils).
void MarkCandidate(const BatPtr& b) {
  b->set_sorted(true);
  b->set_key(true);
  b->set_nonil(true);
}

/// The failure classes the retry/quarantine/fallback ladder handles:
/// injected or real device loss and device-memory exhaustion. Anything else
/// (bad arguments, engine bugs) is not a device's fault and surfaces
/// immediately, unretried.
bool IsDeviceFault(const Status& s) {
  return s.code() == common::StatusCode::kDeviceLost ||
         s.code() == common::StatusCode::kResourceExhausted;
}

/// Exponential backoff between retry attempts (attempt >= 1). Real time
/// only — the virtual clocks never see it — and deliberately tiny: the
/// whole kMaxAttempts ladder costs single-digit milliseconds, enough to let
/// a genuinely transient condition clear without stalling tests.
void Backoff(int attempt) {
  std::this_thread::sleep_for(std::chrono::microseconds(50LL << std::min(attempt, 8)));
}

}  // namespace

// --- Throughput calibration --------------------------------------------------

ThroughputTracker::ThroughputTracker(std::vector<double> priors)
    : priors_(std::move(priors)), cells_(priors_.size()) {}

int ThroughputTracker::Bucket(std::size_t n) {
  if (n <= 1) return 0;
  int b = std::bit_width(n) - 1;
  return std::min(b, kSizeBuckets - 1);
}

const ThroughputTracker::Cell& ThroughputTracker::At(OpClass c, std::size_t n,
                                                     int device) const {
  return cells_[static_cast<std::size_t>(device)][static_cast<int>(c)]
               [static_cast<std::size_t>(Bucket(n))];
}

void ThroughputTracker::Observe(OpClass c, std::size_t n, int device,
                                std::size_t rows, common::Nanos ns) {
  if (rows == 0 || ns <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[static_cast<std::size_t>(device)][static_cast<int>(c)]
                     [static_cast<std::size_t>(Bucket(n))];
  double tp = static_cast<double>(rows) / static_cast<double>(ns);
  cell.throughput = cell.throughput == 0.0
                        ? tp
                        : kAlpha * tp + (1.0 - kAlpha) * cell.throughput;
  cell.samples += 1;
  // The first sample of a kernel on a device carries the one-time JIT
  // compile cost; folding it into the floor would poison the device-drop
  // rule (see MinCost), so the floor only starts with the second sample.
  if (cell.samples >= 2 &&
      (cell.min_cost == 0.0 || static_cast<double>(ns) < cell.min_cost)) {
    cell.min_cost = static_cast<double>(ns);
  }
}

double ThroughputTracker::Throughput(OpClass c, std::size_t n, int device) const {
  std::lock_guard<std::mutex> lock(mu_);
  return At(c, n, device).throughput;
}

common::Nanos ThroughputTracker::MinCost(OpClass c, std::size_t n,
                                         int device) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<common::Nanos>(At(c, n, device).min_cost);
}

std::vector<double> ThroughputTracker::Weights(
    OpClass c, std::size_t n, const std::vector<int>& devices) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> w(devices.size(), 1.0);
  double observed_tp = 0, observed_prior = 0;
  int observed = 0;
  for (int d : devices) {
    double e = At(c, n, d).throughput;
    if (e > 0) {
      observed += 1;
      observed_tp += e;
      observed_prior += priors_[static_cast<std::size_t>(d)];
    }
  }
  if (observed == 0) return w;  // cold start: equal split
  // A device without its own measurement for this bucket (it sat out
  // earlier calls) is extrapolated from the model prior, scaled into the
  // observed devices' EWMA units so the two kinds of weight are comparable.
  double scale = observed_prior > 0 ? observed_tp / observed_prior : 0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    double e = At(c, n, devices[i]).throughput;
    if (e > 0) {
      w[i] = e;
    } else if (scale > 0) {
      w[i] = priors_[static_cast<std::size_t>(devices[i])] * scale;
    } else {
      w[i] = observed_tp / observed;
    }
  }
  return w;
}

Scheduler::Scheduler(ocl::Context* ctx)
    : ctx_(ctx), tracker_([ctx] {
        std::vector<double> priors;
        priors.reserve(static_cast<std::size_t>(ctx->device_count()));
        for (int i = 0; i < ctx->device_count(); ++i) {
          priors.push_back(ctx->at(i)->device()->model().partition_weight());
        }
        return priors;
      }()) {
  engines_.reserve(static_cast<std::size_t>(ctx->device_count()));
  double best_prior = -1.0;
  for (int i = 0; i < ctx->device_count(); ++i) {
    engines_.push_back(std::make_unique<OcelotEngine>(ctx->at(i)));
    double prior = ctx->at(i)->device()->model().partition_weight();
    if (prior > best_prior) {
      best_prior = prior;
      primary_ = i;
    }
  }
  quarantined_.assign(static_cast<std::size_t>(ctx->device_count()), false);
  strikes_.assign(static_cast<std::size_t>(ctx->device_count()), 0);
  if (const char* env = std::getenv("OCELOT_STATIC_PARTITION")) {
    static_partition_ = env[0] == '1' && env[1] == '\0';
  }
}

std::string Scheduler::name() const {
  std::string n = "Ocelot scheduler on {";
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (i != 0) n += ", ";
    n += engines_[i]->context()->device()->name();
  }
  return n + "}";
}

std::uint64_t Scheduler::bytes_copied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

std::vector<int> Scheduler::HealthyDevices() const {
  std::vector<int> devices;
  devices.reserve(quarantined_.size());
  for (int i = 0; i < device_count(); ++i) {
    if (!quarantined_[static_cast<std::size_t>(i)]) devices.push_back(i);
  }
  return devices;
}

PartitionPlan Scheduler::PlanParts(OpClass c, std::size_t n) {
  // Plans only ever cover the healthy subset; an all-quarantined context
  // yields the empty plan and the caller's fallback ladder takes over.
  std::vector<int> devices = HealthyDevices();
  if (devices.empty()) return {};
  if (static_partition_) {
    // Static mode's contract is bit-reproducibility, and that must survive
    // quarantine: the plan *shape* is a function of the machine (the full
    // device count), never of the quarantine state — a dead device's slices
    // are reassigned round-robin to survivors instead of re-cutting the
    // boundaries. Same boundaries → same per-slice kernels (devices execute
    // identical host SIMD code) → same merge inputs in the same order, so a
    // degraded run is bit-identical to the fault-free one.
    std::size_t parts = std::min(static_cast<std::size_t>(device_count()),
                                 std::max<std::size_t>(n, 1));
    if (parts <= 1) return {{monet::Slice{0, n}}, {primary_}};
    std::vector<int> assign;
    assign.reserve(parts);
    for (std::size_t i = 0; i < parts; ++i) {
      int want = static_cast<int>(i);
      assign.push_back(quarantined_[static_cast<std::size_t>(want)]
                           ? devices[i % devices.size()]
                           : want);
    }
    return {monet::WeightedSlices(n, std::vector<double>(parts, 1.0)),
            std::move(assign)};
  }
  std::size_t parts = std::min(devices.size(), std::max<std::size_t>(n, 1));
  if (parts <= 1) return {{monet::Slice{0, n}}, {primary_}};
  // parts <= n, so every slice is non-empty: no device is ever shipped a
  // zero-row fragment (it would pay launch/sync virtual cost for nothing).
  devices.resize(parts);

  // Device drop: per-launch driver costs (the paper's 2 ms Intel-SDK
  // dispatch) do not shrink with a device's row share, so past a point a
  // slow device is pure ballast — even its smallest-ever fragment costs a
  // multiple of the whole makespan achievable without it. MinCost is an
  // upper bound on the device's fixed per-operator cost (it converges down
  // as the weighting shrinks the share); the remaining set's makespan is
  // estimated as its linear time n/Σtp plus its own worst fixed floor.
  // Break-even is floor == makespan-without (a device can only absorb rows
  // "for free" until its fragment time reaches the others' finish line);
  // the 1.25x margin is hysteresis against flip-flopping. All terms depend
  // on n, so a dropped device re-enters when inputs grow enough to
  // amortize its fixed costs.
  while (devices.size() > 1) {
    double total_tp = 0;
    bool all_observed = true;
    std::size_t slowest = 0;
    double slowest_tp = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      double tp = tracker_.Throughput(c, n, devices[i]);
      if (tp <= 0) {
        all_observed = false;  // still calibrating: keep the full set
        break;
      }
      total_tp += tp;
      if (slowest_tp == 0 || tp < slowest_tp) {
        slowest_tp = tp;
        slowest = i;
      }
    }
    if (!all_observed) break;
    double floor_rest = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (i == slowest) continue;
      floor_rest = std::max(
          floor_rest, static_cast<double>(tracker_.MinCost(c, n, devices[i])));
    }
    double makespan_without =
        static_cast<double>(n) / (total_tp - slowest_tp) + floor_rest;
    double floor = static_cast<double>(tracker_.MinCost(c, n, devices[slowest]));
    if (floor <= 1.25 * makespan_without) break;
    devices.erase(devices.begin() + static_cast<std::ptrdiff_t>(slowest));
  }
  if (devices.size() == 1) return {{monet::Slice{0, n}}, std::move(devices)};

  std::vector<monet::Slice> slices =
      monet::WeightedSlices(n, tracker_.Weights(c, n, devices));

  // Hysteresis: fragment views are cached device-side by exact heap range,
  // so moving a cut point invalidates the covering uploads on non-unified
  // devices and pays a fresh transfer. Keep the previously adopted plan
  // for this (class, exact n, device set) unless some device's ideal share
  // drifted by more than n/8 — EWMA jitter then never wobbles the
  // boundaries, while a real throughput shift still re-cuts promptly. The
  // window is sized for device sets near throughput parity (SIMD host
  // kernels vs the modeled GPU): measurement noise there moves the ideal
  // share by several percent, and a noise re-cut costs a transfer that
  // dwarfs the share refinement it chased; a genuine kernel-speedup shift
  // (1.5x+) moves shares far beyond any such window.
  std::map<std::size_t, PlanCache>& class_plans = plans_[static_cast<int>(c)];
  if (class_plans.size() > 1024) class_plans.clear();
  PlanCache& cache = class_plans[n];
  if (cache.devices == devices && cache.shares.size() == slices.size()) {
    bool stable = true;
    for (std::size_t i = 0; i < slices.size() && stable; ++i) {
      std::size_t ideal = slices[i].size();
      std::size_t kept = cache.shares[i];
      std::size_t drift = ideal > kept ? ideal - kept : kept - ideal;
      stable = drift * 8 <= n;
    }
    if (stable) {
      std::vector<monet::Slice> kept(cache.shares.size());
      std::size_t at = 0;
      for (std::size_t i = 0; i < cache.shares.size(); ++i) {
        kept[i] = {at, at + cache.shares[i]};
        at += cache.shares[i];
      }
      return {std::move(kept), std::move(devices)};
    }
  }
  cache.devices = devices;
  cache.shares.resize(slices.size());
  for (std::size_t i = 0; i < slices.size(); ++i) {
    cache.shares[i] = slices[i].size();
  }
  return {std::move(slices), std::move(devices)};
}

void Scheduler::DropCachedHashTable(std::uint64_t id) {
  for (auto& engine : engines_) engine->memory()->DropCachedHashTable(id);
}

Status Scheduler::SyncPart(int i, const BatPtr& bat) {
  return engines_[static_cast<std::size_t>(i)]->Sync(bat);
}

Status Scheduler::RunPartitioned(const std::vector<int>& devices,
                                 const std::function<Status(int)>& frag,
                                 std::vector<Nanos>* deltas_out,
                                 std::vector<Nanos>* kernel_deltas_out,
                                 std::vector<Status>* statuses_out) {
  int parts = static_cast<int>(devices.size());
  Nanos t0 = clock_.Now();
  common::Stopwatch real;
  // Physical-slot leases, when a service-level arbiter is attached: hold
  // one lease unit of every plan device for exactly this operator batch.
  // Acquired *inside* the deducted real-time window, so queueing for a
  // contended device costs wall-clock only — the makespan billed below is
  // the same with or without concurrent sessions.
  // Group fragments by device slot: weighted plans assign distinct devices,
  // but a *degraded static* plan keeps the fault-free shape and maps a dead
  // device's slices onto survivors — a device's fragments then run
  // sequentially on its one engine (queues, memory managers and slot clocks
  // are single-session objects, not concurrency-safe), while distinct
  // devices still run concurrently on the pool.
  std::vector<int> unique_devices;
  std::vector<std::vector<int>> frags_of;  // parallel to unique_devices
  for (int i = 0; i < parts; ++i) {
    int dev = devices[static_cast<std::size_t>(i)];
    std::size_t u = 0;
    while (u < unique_devices.size() && unique_devices[u] != dev) ++u;
    if (u == unique_devices.size()) {
      unique_devices.push_back(dev);
      frags_of.emplace_back();
    }
    frags_of[u].push_back(i);
  }
  SlotArbiter::Lease lease;
  if (arbiter_ != nullptr) lease = arbiter_->Acquire(unique_devices);
  std::vector<Nanos> deltas(static_cast<std::size_t>(parts), 0);
  std::vector<Nanos> kdeltas(static_cast<std::size_t>(parts), 0);
  std::vector<Status> statuses(static_cast<std::size_t>(parts));
  // Each fragment's duration is its device queue's *modeled* busy-time
  // delta (kernels + transfers), not a wall-clock difference: the slot
  // clocks are real-time anchored, so a raw clock delta would fold host
  // scheduling gaps into the measurement and poison both the makespan bill
  // and the throughput calibration with thread-count-dependent noise.
  common::ThreadPool::Global().ParallelFor(
      static_cast<int>(unique_devices.size()), [&](int u) {
        ocl::CommandQueue* queue =
            ctx_->at(unique_devices[static_cast<std::size_t>(u)])->queue();
        for (int i : frags_of[static_cast<std::size_t>(u)]) {
          Nanos d0 = queue->modeled_busy_ns();
          Nanos k0 = queue->modeled_kernel_busy_ns();
          statuses[static_cast<std::size_t>(i)] = frag(i);
          deltas[static_cast<std::size_t>(i)] = queue->modeled_busy_ns() - d0;
          kdeltas[static_cast<std::size_t>(i)] =
              queue->modeled_kernel_busy_ns() - k0;
        }
      });
  // Makespan = the busiest *device* (a device executes its fragments
  // serially; distinct devices overlap).
  Nanos longest = 0;
  for (const std::vector<int>& group : frags_of) {
    Nanos total = 0;
    for (int i : group) total += deltas[static_cast<std::size_t>(i)];
    longest = std::max(longest, total);
  }
  // The host ran the fragments on however many threads it has; the model
  // says the *devices* ran them concurrently, so the session clock advances
  // by the makespan only. Done on the error path too: the fragments that
  // did execute must not leave their real host time billed as virtual time
  // (vclock.h contract).
  clock_.Deduct(real.ElapsedNanos());
  clock_.AdvanceTo(t0 + longest);
  if (deltas_out != nullptr) *deltas_out = std::move(deltas);
  if (kernel_deltas_out != nullptr) *kernel_deltas_out = std::move(kdeltas);
  Status first;
  for (Status& s : statuses) {
    if (!s.ok()) {
      first = s;  // first failing fragment, deterministically
      break;
    }
  }
  if (statuses_out != nullptr) *statuses_out = std::move(statuses);
  return first;
}

Status Scheduler::RunWeighted(
    OpClass c, std::size_t n,
    const std::function<void(const PartitionPlan&)>& reset,
    const std::function<Status(int, int, const monet::Slice&)>& part,
    std::vector<std::size_t>* observed_rows) {
  Status last = Status::DeviceLost("no healthy devices left (all quarantined)");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) Backoff(attempt);
    // Re-planned every attempt: a quarantine in the previous attempt shrinks
    // the healthy set and this attempt's plan — and the caller's fragment
    // state, via reset — follows it transparently.
    PartitionPlan plan = PlanParts(c, n);
    if (plan.devices.empty()) return last;
    reset(plan);
    if (observed_rows != nullptr) observed_rows->assign(plan.slices.size(), 0);
    std::vector<Nanos> deltas;
    std::vector<Nanos> kdeltas;
    std::vector<Status> statuses;
    Status status = RunPartitioned(
        plan.devices,
        [&](int i) {
          return part(i, plan.devices[static_cast<std::size_t>(i)],
                      plan.slices[static_cast<std::size_t>(i)]);
        },
        &deltas, &kdeltas, &statuses);
    if (status.ok()) {
      // A whole clean batch heals its devices' strike counters: strikes
      // count *consecutive* faults, so transient blips never accumulate
      // into a quarantine across a long query.
      for (int d : plan.devices) strikes_[static_cast<std::size_t>(d)] = 0;
      if (static_partition_) return status;
      // Calibration feed, on the calling thread after the fragment barrier
      // and in plan order: the measured deltas are *virtual* durations, so
      // the EWMA state — and with it every later partition boundary — is
      // invariant under the host thread count (PR 2's determinism contract
      // carries over). Kernel-only deltas: transfer time is a plan-change
      // artifact, not a property of the device's compute rate. Failed
      // attempts feed nothing, and retried kernels model the same virtual
      // duration, so calibration state after a healed fault is identical to
      // the fault-free run — partition boundaries (and with them results)
      // do not depend on the fault schedule.
      for (int i = 0; i < plan.parts(); ++i) {
        std::size_t rows = observed_rows != nullptr
                               ? (*observed_rows)[static_cast<std::size_t>(i)]
                               : plan.slices[static_cast<std::size_t>(i)].size();
        tracker_.Observe(c, n, plan.devices[static_cast<std::size_t>(i)], rows,
                         kdeltas[static_cast<std::size_t>(i)]);
      }
      return status;
    }
    // Anything that is not a device fault is the operator's own error
    // (shape mismatch, engine bug): surface it immediately, unretried.
    for (const Status& s : statuses) {
      if (!s.ok() && !IsDeviceFault(s)) return s;
    }
    // Pure device-fault batch: drain + purge + strike every faulted device
    // (quarantining repeat offenders), then go around again.
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) HandleDeviceFault(plan.devices[i]);
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    last = status;
  }
  return last;
}

Status Scheduler::RunWhole(const std::function<Status(int)>& fn) {
  Status last = Status::DeviceLost("no healthy devices left (all quarantined)");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (HealthyDevices().empty()) return last;
    // primary_ is re-elected on quarantine, so after a quarantine the next
    // attempt automatically lands on the best surviving device.
    int device = primary_;
    Status status = RunOnDevice(device, [&] { return fn(device); });
    if (status.ok()) {
      strikes_[static_cast<std::size_t>(device)] = 0;
      return status;
    }
    if (!IsDeviceFault(status)) return status;
    HandleDeviceFault(device);
    retries_.fetch_add(1, std::memory_order_relaxed);
    last = status;
  }
  return last;
}

void Scheduler::HandleDeviceFault(int device) {
  // Drain whatever the failed batch left enqueued and clear the queue's
  // sticky fault so the next attempt starts from a clean slate (the drain's
  // own status is the fault being handled — nothing new to learn from it).
  (void)ctx_->at(device)->queue()->Finish();
  // Cache entries whose producers failed hold garbage bytes; purge them so
  // a retry re-uploads instead of reading a poisoned buffer.
  engines_[static_cast<std::size_t>(device)]->memory()->PurgeFailed();
  int strikes = ++strikes_[static_cast<std::size_t>(device)];
  if (strikes >= kQuarantineStrikes &&
      !quarantined_[static_cast<std::size_t>(device)]) {
    QuarantineDevice(device);
  }
}

void Scheduler::QuarantineDevice(int device) {
  quarantined_[static_cast<std::size_t>(device)] = true;
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  // Nothing cached on a quarantined device can ever be read back again —
  // drop its entire cache so host BATs lose their device bindings and later
  // plans (or a later re-upload in tests) start from nothing.
  engines_[static_cast<std::size_t>(device)]->memory()->Quarantine();
  // Re-elect the primary among survivors so whole-device operators (sort,
  // grouping, degenerate paths) migrate off the corpse.
  double best_prior = -1.0;
  for (int i = 0; i < device_count(); ++i) {
    if (quarantined_[static_cast<std::size_t>(i)]) continue;
    double prior = ctx_->at(i)->device()->model().partition_weight();
    if (prior > best_prior) {
      best_prior = prior;
      primary_ = i;
    }
  }
}

Status Scheduler::RunOnDevice(int device, const std::function<Status()>& fn) {
  Nanos t0 = clock_.Now();
  common::Stopwatch real;
  SlotArbiter::Lease lease;
  if (arbiter_ != nullptr) lease = arbiter_->Acquire({device});
  ocl::CommandQueue* queue = ctx_->at(device)->queue();
  Nanos d0 = queue->modeled_busy_ns();
  Status status = fn();
  Nanos delta = queue->modeled_busy_ns() - d0;
  clock_.Deduct(real.ElapsedNanos());
  clock_.AdvanceTo(t0 + delta);
  return status;
}

// --- Selection ---------------------------------------------------------------

Result<BatPtr> Scheduler::SelectRange(const BatPtr& col, const BatPtr& cand,
                                      cstore::Bound lo, cstore::Bound hi) {
  if (col == nullptr) return Status::InvalidArgument("select input is null");
  RETURN_IF_ERROR(CheckHostResident(col, "select input"));
  RETURN_IF_ERROR(CheckHostResident(cand, "select candidates"));

  // Without candidates the column is fragmented by rows and results come
  // back fragment-local (rebased during the merge). With candidates the
  // *candidate list* is partitioned instead, and each device sees a
  // zero-copy view of the column covering just its fragment's row range
  // [cand[first], cand[last]] — 1/N of the scan, not a replicated full
  // column. The candidate oids are rebased to that view in a single
  // fragment-sized write (the one partition-side transform no view can
  // express); results rebase back during the fused merge write.
  if (cand != nullptr && cand->empty()) {
    BatPtr none = Bat::MakeOid(0);
    MarkCandidate(none);
    return none;
  }
  std::size_t domain = cand != nullptr ? cand->size() : col->size();
  std::vector<BatPtr> results;
  std::vector<oid_t> bases;
  // Calibration weight of each fragment: the column rows the device
  // actually scans (== the slice for plain selects, the covered row range
  // for candidate selects), so both flavors feed comparable rows/ns into
  // the shared select buckets.
  std::vector<std::size_t> scanned;
  Status run = RunWeighted(OpClass::kSelect, domain,
                           [&](const PartitionPlan& plan) {
    results.assign(plan.slices.size(), nullptr);
    bases.assign(plan.slices.size(), 0);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    if (s.size() == 0) {
      // Only the degenerate whole-input plan over an empty column lands
      // here (multi-fragment plans never contain empty slices); it
      // contributes an empty result without a device round-trip.
      BatPtr none = Bat::MakeOid(0);
      MarkCandidate(none);
      results[static_cast<std::size_t>(i)] = std::move(none);
      return Status::Ok();
    }
    BatPtr col_in;
    BatPtr cand_in;
    oid_t base = 0;
    if (cand != nullptr) {
      auto cv = cand->oids();
      base = cv[s.begin];
      std::size_t rows = cv[s.end - 1] - base + 1;
      col_in = Bat::View(col, base, rows);
      cand_in = Bat::MakeOid(s.size());
      auto out = cand_in->oids();
      for (std::size_t k = 0; k < s.size(); ++k) out[k] = cv[s.begin + k] - base;
      MarkCandidate(cand_in);
      g_bytes_copied.fetch_add(cand_in->tail_bytes(), std::memory_order_relaxed);
      scanned[static_cast<std::size_t>(i)] = rows;
    } else {
      col_in = FragmentOf(col, s);
      base = static_cast<oid_t>(s.begin);
      scanned[static_cast<std::size_t>(i)] = s.size();
    }
    bases[static_cast<std::size_t>(i)] = base;
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr r, eng->SelectRange(col_in, cand_in, lo, hi));
    RETURN_IF_ERROR(SyncPart(dev, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  },
                           &scanned);
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return host_.SelectRange(col, cand, lo, hi);
  }

  BatPtr merged = MergeOidParts(results, bases);
  MarkCandidate(merged);
  return merged;
}

Result<BatPtr> Scheduler::CandUnion(const BatPtr& a, const BatPtr& b) {
  if (a == nullptr || b == nullptr) return Status::InvalidArgument("union input null");
  RETURN_IF_ERROR(CheckHostResident(a, "union lhs"));
  RETURN_IF_ERROR(CheckHostResident(b, "union rhs"));
  // Both inputs are host-resident sorted oid lists; the merge is pure host
  // work and cheaper than any device round-trip.
  auto av = a->oids();
  auto bv = b->oids();
  std::vector<oid_t> merged;
  merged.reserve(av.size() + bv.size());
  std::set_union(av.begin(), av.end(), bv.begin(), bv.end(),
                 std::back_inserter(merged));
  BatPtr out = Bat::MakeOid(merged.size());
  std::copy(merged.begin(), merged.end(), out->oids().begin());
  MarkCandidate(out);
  return out;
}

// --- Projection / joins ------------------------------------------------------

Result<BatPtr> Scheduler::Project(const BatPtr& oids, const BatPtr& col) {
  if (oids == nullptr || col == nullptr) {
    return Status::InvalidArgument("projection input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(oids, "projection head"));
  RETURN_IF_ERROR(CheckHostResident(col, "projection tail"));

  // Partition the oid list (views); the gathered column is replicated (the
  // gather needs random access to all of it).
  std::size_t n = oids->size();
  std::vector<BatPtr> results;
  Status run = RunWeighted(OpClass::kProject, n,
                           [&](const PartitionPlan& plan) {
    results.assign(plan.slices.size(), nullptr);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr r, eng->Project(FragmentOf(oids, s), col));
    RETURN_IF_ERROR(SyncPart(dev, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return host_.Project(oids, col);
  }
  return MergeValueParts(col->type(), results);
}

Result<JoinResult> Scheduler::LeftFragmentJoin(
    const BatPtr& left,
    const std::function<Result<JoinResult>(cstore::QueryEngine*, const BatPtr&)>& op) {
  std::size_t n = left->size();
  std::vector<JoinResult> results;
  std::vector<oid_t> bases;
  Status run = RunWeighted(OpClass::kJoin, n,
                           [&](const PartitionPlan& plan) {
    results.assign(plan.slices.size(), JoinResult{});
    bases.assign(plan.slices.size(), 0);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    bases[static_cast<std::size_t>(i)] = static_cast<oid_t>(s.begin);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(JoinResult r, op(eng, FragmentOf(left, s)));
    RETURN_IF_ERROR(SyncPart(dev, r.left));
    RETURN_IF_ERROR(SyncPart(dev, r.right));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    // Device path lost: run the whole probe on the host engine (the op
    // callback is engine-agnostic, so the same lambda serves both paths).
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return op(&host_, left);
  }

  // Fragment outputs are in probe (left) order, so concatenation reproduces
  // the single-device pair order exactly; the left oids rebase during the
  // merge write, the right oids point into the replicated build side and
  // are global already.
  std::vector<BatPtr> lefts, rights;
  for (JoinResult& r : results) {
    lefts.push_back(std::move(r.left));
    rights.push_back(std::move(r.right));
  }
  JoinResult merged;
  merged.left = MergeOidParts(lefts, bases);
  merged.left->set_sorted(true);
  merged.right = MergeValueParts(ValType::kOid, rights);
  return merged;
}

Result<JoinResult> Scheduler::HashJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("join input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "join left"));
  RETURN_IF_ERROR(CheckHostResident(right, "join right"));
  // Fragment-and-replicate: the probe side is partitioned, the build side is
  // replicated (every device builds/caches its own hash table of `right`).
  return LeftFragmentJoin(left,
                          [&right](cstore::QueryEngine* eng, const BatPtr& frag) {
    return eng->HashJoin(frag, right);
  });
}

Result<JoinResult> Scheduler::ThetaJoin(const BatPtr& left, const BatPtr& right,
                                        cstore::CmpOp op) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("theta join: null input");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "theta join left"));
  RETURN_IF_ERROR(CheckHostResident(right, "theta join right"));
  return LeftFragmentJoin(left,
                          [&right, op](cstore::QueryEngine* eng, const BatPtr& frag) {
    return eng->ThetaJoin(frag, right, op);
  });
}

Result<BatPtr> Scheduler::LeftFragmentFilter(
    const BatPtr& left,
    const std::function<Result<BatPtr>(cstore::QueryEngine*, const BatPtr&)>& op) {
  std::size_t n = left->size();
  std::vector<BatPtr> results;
  std::vector<oid_t> bases;
  Status run = RunWeighted(OpClass::kJoin, n,
                           [&](const PartitionPlan& plan) {
    results.assign(plan.slices.size(), nullptr);
    bases.assign(plan.slices.size(), 0);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    bases[static_cast<std::size_t>(i)] = static_cast<oid_t>(s.begin);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr r, op(eng, FragmentOf(left, s)));
    RETURN_IF_ERROR(SyncPart(dev, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return op(&host_, left);
  }
  BatPtr merged = MergeOidParts(results, bases);
  MarkCandidate(merged);
  return merged;
}

Result<BatPtr> Scheduler::SemiJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("semijoin input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "semijoin left"));
  RETURN_IF_ERROR(CheckHostResident(right, "semijoin right"));
  return LeftFragmentFilter(left,
                            [&right](cstore::QueryEngine* eng, const BatPtr& frag) {
    return eng->SemiJoin(frag, right);
  });
}

Result<BatPtr> Scheduler::AntiJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("antijoin input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "antijoin left"));
  RETURN_IF_ERROR(CheckHostResident(right, "antijoin right"));
  return LeftFragmentFilter(left,
                            [&right](cstore::QueryEngine* eng, const BatPtr& frag) {
    return eng->AntiJoin(frag, right);
  });
}

// --- Sort / group (order-sensitive: whole on the primary device) -------------

Result<SortResult> Scheduler::Sort(const BatPtr& col) {
  RETURN_IF_ERROR(CheckHostResident(col, "sort input"));
  SortResult result;
  Status run = RunWhole([&](int dev) -> Status {
    ASSIGN_OR_RETURN(result, engines_[static_cast<std::size_t>(dev)]->Sort(col));
    RETURN_IF_ERROR(SyncPart(dev, result.values));
    RETURN_IF_ERROR(SyncPart(dev, result.order));
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return host_.Sort(col);
  }
  return result;
}

Result<GroupResult> Scheduler::GroupBy(const BatPtr& col, const GroupResult* prev) {
  RETURN_IF_ERROR(CheckHostResident(col, "group input"));
  // Group ids must be globally dense and consistent; repartitioning them
  // would need an id-remap pass, so grouping runs whole — on the fastest
  // device of the set (by model prior), not on whatever slot is first.
  GroupResult result;
  Status run = RunWhole([&](int dev) -> Status {
    ASSIGN_OR_RETURN(result,
                     engines_[static_cast<std::size_t>(dev)]->GroupBy(col, prev));
    RETURN_IF_ERROR(SyncPart(dev, result.groups));
    RETURN_IF_ERROR(SyncPart(dev, result.extents));
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return host_.GroupBy(col, prev);
  }
  return result;
}

// --- Grouped aggregation -----------------------------------------------------

Result<BatPtr> Scheduler::PartitionedSubAgg(
    const BatPtr& vals, const BatPtr& groups, std::size_t ngroups,
    const std::function<Result<BatPtr>(cstore::QueryEngine*, const BatPtr&,
                                       const BatPtr&)>& op,
    const std::function<void(BatPtr&, const BatPtr&)>& merge) {
  RETURN_IF_ERROR(CheckHostResident(vals, "aggregate input"));
  RETURN_IF_ERROR(CheckHostResident(groups, "group ids"));
  if (groups == nullptr) return Status::InvalidArgument("group ids are null");
  if (vals != nullptr && vals->size() != groups->size()) {
    return Status::InvalidArgument("aggregate input and group ids differ in size");
  }
  std::size_t n = groups->size();
  std::vector<BatPtr> partials;
  Status run = RunWeighted(OpClass::kSubAgg, n,
                           [&](const PartitionPlan& plan) {
    partials.assign(plan.slices.size(), nullptr);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    BatPtr vals_frag = vals != nullptr ? FragmentOf(vals, s) : nullptr;
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr p, op(eng, vals_frag, FragmentOf(groups, s)));
    RETURN_IF_ERROR(SyncPart(dev, p));
    partials[static_cast<std::size_t>(i)] = std::move(p);
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return op(&host_, vals, groups);
  }
  (void)ngroups;
  if (partials.size() == 1) return std::move(partials[0]);
  // Fold into a fresh ngroups-sized BAT (≤ output bytes): the partials were
  // synced through their devices' memory managers, which may still cache
  // their device buffers — mutating a synced BAT in place would leave such
  // a cache stale.
  BatPtr acc = CloneBat(partials[0]);
  for (std::size_t i = 1; i < partials.size(); ++i) merge(acc, partials[i]);
  return acc;
}

namespace {

/// Element-wise partial merges over `ngroups`-sized aggregate BATs, with the
/// engines' nil conventions (kIntNil / NaN marks "group empty so far").
///
/// The additive merge must honor them just like MergeMinMax does: a group
/// whose rows are clustered into one fragment (any post-sort grouping) is
/// *empty* in every other fragment, and those partials carry nil — folding
/// them in blindly would poison the sum (NaN) or wrap it (kIntNil). A nil
/// partial is the identity; a group nil in every fragment stays nil.
void MergeAdd(BatPtr& acc, const BatPtr& part) {
  if (acc->type() == ValType::kFloat) {
    auto a = acc->floats();
    auto p = part->floats();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (std::isnan(p[k])) continue;
      a[k] = std::isnan(a[k]) ? p[k] : a[k] + p[k];
    }
  } else {
    auto a = acc->ints();
    auto p = part->ints();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (p[k] == kIntNil) continue;
      a[k] = a[k] == kIntNil ? p[k] : a[k] + p[k];
    }
  }
}

void MergeMinMax(BatPtr& acc, const BatPtr& part, bool want_min) {
  if (acc->type() == ValType::kFloat) {
    auto a = acc->floats();
    auto p = part->floats();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (std::isnan(p[k])) continue;
      if (std::isnan(a[k]) || (want_min ? p[k] < a[k] : p[k] > a[k])) a[k] = p[k];
    }
  } else {
    auto a = acc->ints();
    auto p = part->ints();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (p[k] == kIntNil) continue;
      if (a[k] == kIntNil || (want_min ? p[k] < a[k] : p[k] > a[k])) a[k] = p[k];
    }
  }
}

}  // namespace

Result<BatPtr> Scheduler::SubSum(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](cstore::QueryEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubSum(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeAdd(acc, p); });
}

Result<BatPtr> Scheduler::SubCount(const BatPtr& groups, std::size_t ngroups) {
  // Counts follow the other half of the nil convention: a group empty in a
  // fragment counts 0 there, never nil (a count is a cardinality), so the
  // nil-aware MergeAdd degenerates to plain addition on this path.
  return PartitionedSubAgg(
      nullptr, groups, ngroups,
      [ngroups](cstore::QueryEngine* eng, const BatPtr&, const BatPtr& g) {
        return eng->SubCount(g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeAdd(acc, p); });
}

Result<BatPtr> Scheduler::SubMin(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](cstore::QueryEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubMin(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeMinMax(acc, p, /*want_min=*/true); });
}

Result<BatPtr> Scheduler::SubMax(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](cstore::QueryEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubMax(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeMinMax(acc, p, /*want_min=*/false); });
}

Result<BatPtr> Scheduler::SubAvg(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  RETURN_IF_ERROR(CheckHostResident(vals, "subavg input"));
  RETURN_IF_ERROR(CheckHostResident(groups, "group ids"));
  if (vals == nullptr || groups == nullptr || vals->size() != groups->size()) {
    // Let the single-device engine surface its own shape errors.
    BatPtr result;
    Status run = RunWhole([&](int dev) -> Status {
      ASSIGN_OR_RETURN(result, engines_[static_cast<std::size_t>(dev)]->SubAvg(
                                   vals, groups, ngroups));
      return SyncPart(dev, result);
    });
    if (!run.ok()) {
      if (!IsDeviceFault(run)) return run;
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return host_.SubAvg(vals, groups, ngroups);
    }
    return result;
  }

  // avg distributes exactly now that a per-group non-nil count operator
  // exists: merge per-fragment partial sums (nil-aware) and non-nil counts,
  // then divide by the non-nil count the way every engine's avg does —
  // dividing by SubCount instead would weigh nil values into the
  // denominator. The partials go through the engines' SubSum output types,
  // so this path inherits SubSum's value-range contract: int partial sums
  // live in int32 (groups summing past 2^31 wrap there too) and float
  // partials round to float per fragment. Exact for int groups within
  // int32 and bit-equal to seq for integer-valued floats — the property
  // the sweep tests pin.
  std::size_t n = groups->size();
  std::vector<BatPtr> sums;
  std::vector<BatPtr> cnts;
  // Each fragment runs *two* grouped aggregates (sum + non-nil count), so
  // its measured duration covers twice the row-aggregation work of a plain
  // SubSum fragment. Report 2x rows to the shared kSubAgg calibration
  // bucket — feeding raw rows would halve the apparent throughput and make
  // the EWMA (and with it the cut points, against the hysteresis) oscillate
  // between SubSum and SubAvg calls of the same size.
  std::vector<std::size_t> observed_rows;
  Status run = RunWeighted(OpClass::kSubAgg, n,
                           [&](const PartitionPlan& plan) {
    sums.assign(plan.slices.size(), nullptr);
    cnts.assign(plan.slices.size(), nullptr);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    BatPtr vals_frag = FragmentOf(vals, s);
    BatPtr groups_frag = FragmentOf(groups, s);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr sum, eng->SubSum(vals_frag, groups_frag, ngroups));
    RETURN_IF_ERROR(SyncPart(dev, sum));
    ASSIGN_OR_RETURN(BatPtr cnt,
                     eng->SubCountNonNil(vals_frag, groups_frag, ngroups));
    RETURN_IF_ERROR(SyncPart(dev, cnt));
    sums[static_cast<std::size_t>(i)] = std::move(sum);
    cnts[static_cast<std::size_t>(i)] = std::move(cnt);
    observed_rows[static_cast<std::size_t>(i)] = 2 * s.size();
    return Status::Ok();
  }, &observed_rows);
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return host_.SubAvg(vals, groups, ngroups);
  }

  BatPtr sum = sums.size() == 1 ? std::move(sums[0]) : CloneBat(sums[0]);
  BatPtr cnt = cnts.size() == 1 ? std::move(cnts[0]) : CloneBat(cnts[0]);
  for (std::size_t i = 1; i < sums.size(); ++i) {
    MergeAdd(sum, sums[i]);
    MergeAdd(cnt, cnts[i]);
  }
  BatPtr out = Bat::MakeFloat(ngroups);
  auto o = out->floats();
  auto c = cnt->ints();
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (c[g] == 0) {
      o[g] = cstore::FloatNil();  // all-nil group: avg is nil
    } else if (sum->type() == ValType::kFloat) {
      o[g] = static_cast<float>(static_cast<double>(sum->floats()[g]) /
                                static_cast<double>(c[g]));
    } else {
      o[g] = static_cast<float>(static_cast<double>(sum->ints()[g]) /
                                static_cast<double>(c[g]));
    }
  }
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

// --- Ungrouped aggregation ---------------------------------------------------

Result<double> Scheduler::PartitionedReduce(
    const BatPtr& col,
    const std::function<Result<double>(cstore::QueryEngine*, const BatPtr&)>& op,
    const std::function<double(double, double)>& merge) {
  RETURN_IF_ERROR(CheckHostResident(col, "reduce input"));
  std::size_t n = col == nullptr ? 0 : col->size();
  if (col == nullptr || n == 0) {
    // Preserve the engine's own null/empty-input semantics.
    double result = 0;
    Status run = RunWhole([&](int dev) -> Status {
      ASSIGN_OR_RETURN(result, op(engines_[static_cast<std::size_t>(dev)].get(), col));
      return Status::Ok();
    });
    if (!run.ok()) {
      if (!IsDeviceFault(run)) return run;
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return op(&host_, col);
    }
    return result;
  }
  std::vector<double> partials;
  Status run = RunWeighted(OpClass::kReduce, n,
                           [&](const PartitionPlan& plan) {
    partials.assign(plan.slices.size(), 0.0);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    ASSIGN_OR_RETURN(partials[static_cast<std::size_t>(i)],
                     op(engines_[static_cast<std::size_t>(dev)].get(),
                        FragmentOf(col, s)));
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return op(&host_, col);
  }
  double acc = partials[0];
  for (std::size_t i = 1; i < partials.size(); ++i) acc = merge(acc, partials[i]);
  return acc;
}

Result<double> Scheduler::Sum(const BatPtr& col) {
  return PartitionedReduce(
      col, [](cstore::QueryEngine* eng, const BatPtr& c) { return eng->Sum(c); },
      [](double a, double b) { return a + b; });
}

Result<double> Scheduler::Min(const BatPtr& col) {
  return PartitionedReduce(
      col, [](cstore::QueryEngine* eng, const BatPtr& c) { return eng->Min(c); },
      [](double a, double b) { return std::min(a, b); });
}

Result<double> Scheduler::Max(const BatPtr& col) {
  return PartitionedReduce(
      col, [](cstore::QueryEngine* eng, const BatPtr& c) { return eng->Max(c); },
      [](double a, double b) { return std::max(a, b); });
}

Result<std::int64_t> Scheduler::Count(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("count input is null");
  RETURN_IF_ERROR(CheckHostResident(col, "count input"));
  // Scheduler inputs are host-resident, so cardinality is known directly —
  // the same answer every engine gives for materialized BATs.
  return static_cast<std::int64_t>(col->size());
}

// --- Column arithmetic (all element-wise: fragment every input) --------------

Result<BatPtr> Scheduler::ElementWise(
    const std::vector<BatPtr>& inputs,
    const std::function<Result<BatPtr>(cstore::QueryEngine*,
                                       const std::vector<BatPtr>&)>& op) {
  for (const BatPtr& in : inputs) {
    if (in == nullptr) return Status::InvalidArgument("batcalc input is null");
    RETURN_IF_ERROR(CheckHostResident(in, "batcalc input"));
  }
  std::size_t n = inputs[0]->size();
  for (const BatPtr& in : inputs) {
    if (in->size() != n) {
      // Let the single-device engine produce its own size-mismatch error.
      BatPtr result;
      Status run = RunWhole([&](int dev) -> Status {
        ASSIGN_OR_RETURN(result,
                         op(engines_[static_cast<std::size_t>(dev)].get(), inputs));
        RETURN_IF_ERROR(SyncPart(dev, result));
        return Status::Ok();
      });
      if (!run.ok()) {
        if (!IsDeviceFault(run)) return run;
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return op(&host_, inputs);
      }
      return result;
    }
  }

  std::vector<BatPtr> results;
  Status run = RunWeighted(OpClass::kElementWise, n,
                           [&](const PartitionPlan& plan) {
    results.assign(plan.slices.size(), nullptr);
  },
                           [&](int i, int dev, const monet::Slice& s) -> Status {
    std::vector<BatPtr> frags;
    frags.reserve(inputs.size());
    for (const BatPtr& in : inputs) frags.push_back(FragmentOf(in, s));
    OcelotEngine* eng = engines_[static_cast<std::size_t>(dev)].get();
    ASSIGN_OR_RETURN(BatPtr r, op(eng, frags));
    RETURN_IF_ERROR(SyncPart(dev, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  });
  if (!run.ok()) {
    if (!IsDeviceFault(run)) return run;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return op(&host_, inputs);
  }
  return MergeValueParts(results[0]->type(), results);
}

Result<BatPtr> Scheduler::Calc(cstore::CalcOp op, const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [op](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Calc(op, f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::CalcScalar(cstore::CalcOp op, const BatPtr& a, double s,
                                     bool scalar_left) {
  return ElementWise(
      {a}, [op, s, scalar_left](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
        return eng->CalcScalar(op, f[0], s, scalar_left);
      });
}

Result<BatPtr> Scheduler::Cmp(cstore::CmpOp op, const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [op](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Cmp(op, f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::CmpScalar(cstore::CmpOp op, const BatPtr& a, double s) {
  return ElementWise({a}, [op, s](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->CmpScalar(op, f[0], s);
  });
}

Result<BatPtr> Scheduler::BoolOr(const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->BoolOr(f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::BoolAnd(const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->BoolAnd(f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::IfThenElseConst(const BatPtr& cond, const BatPtr& then_vals,
                                          double else_val) {
  return ElementWise(
      {cond, then_vals},
      [else_val](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
        return eng->IfThenElseConst(f[0], f[1], else_val);
      });
}

Result<BatPtr> Scheduler::Year(const BatPtr& col) {
  return ElementWise({col}, [](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Year(f[0]);
  });
}

Result<BatPtr> Scheduler::CastToFloat(const BatPtr& col) {
  return ElementWise({col}, [](cstore::QueryEngine* eng, const std::vector<BatPtr>& f) {
    return eng->CastToFloat(f[0]);
  });
}

}  // namespace ocelot
