// The multi-device execution layer (see scheduler.h): Mitosis-style
// horizontal fragments over the device set, per-device execution through the
// hardware-oblivious operator set, host-side merge, makespan clock billing.
//
// Data movement is zero-copy on the partition side: fragments are Bat views
// aliasing the input heaps (monet::SliceOf decides the ranges), so the only
// bytes the scheduler itself moves are the single merge write of each
// operator's output. Fragments execute concurrently on the host thread pool
// (one lane per device at most); every fragment bills its own device-slot
// clock, and the session clock advances by the makespan only.

#include "ocelot/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/thread_pool.h"
#include "monet/mitosis.h"

namespace ocelot {

using common::Nanos;
using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::GroupResult;
using cstore::JoinResult;
using cstore::kIntNil;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;
using cstore::ValTypeSize;

namespace {

/// Host bytes the scheduler itself has copied (merge writes and partial
/// folds; partitioning is views and contributes nothing). Process-wide so
/// benchmarks can report copy traffic per measured section.
std::atomic<std::uint64_t> g_bytes_copied{0};

Status CheckHostResident(const BatPtr& b, const char* what) {
  if (b != nullptr && b->ocelot_owned()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": scheduler inputs must be host-resident "
                                   "(sync the producing engine first)");
  }
  return Status::Ok();
}

/// Zero-copy fragment: a view of rows [s.begin, s.end) aliasing `src`'s heap.
BatPtr FragmentOf(const BatPtr& src, const monet::Slice& s) {
  return Bat::View(src, s.begin, s.size());
}

/// Merges oid-list fragment results into one output BAT, preallocated once
/// from a size-prefix pass. Each fragment's base row offset is added during
/// the single merge write (the old per-fragment OffsetOids pass is fused
/// into it); bases must be zero where fragment results are already global.
/// A lone fragment is stolen wholesale — the steady-state single-device
/// case copies nothing at all.
BatPtr MergeOidParts(std::vector<BatPtr>& parts, const std::vector<oid_t>& bases) {
  if (parts.size() == 1 && bases[0] == 0) return std::move(parts[0]);
  std::size_t total = 0;
  bool nonil = true;
  for (const BatPtr& p : parts) {
    total += p->size();
    nonil = nonil && p->nonil();
  }
  BatPtr out = Bat::MakeOid(total);
  auto dst = out->oids();
  std::size_t at = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto src = parts[i]->oids();
    oid_t base = bases[i];
    if (base == 0) {
      std::copy(src.begin(), src.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      for (std::size_t k = 0; k < src.size(); ++k) dst[at + k] = src[k] + base;
    }
    at += src.size();
  }
  out->set_nonil(nonil);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Concatenates value fragment results in fragment order (element size from
/// ValTypeSize — merges stay correct for any tail width). Single fragments
/// are stolen without a copy.
BatPtr MergeValueParts(ValType type, std::vector<BatPtr>& parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  std::size_t total = 0;
  bool nonil = true;
  for (const BatPtr& p : parts) {
    total += p->size();
    nonil = nonil && p->nonil();
  }
  BatPtr out = Bat::Make(type, total);
  const std::size_t elem = ValTypeSize(type);
  std::size_t at = 0;
  for (const BatPtr& p : parts) {
    std::memcpy(static_cast<std::byte*>(out->data()) + at * elem, p->data(),
                p->size() * elem);
    at += p->size();
  }
  out->set_nonil(nonil);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Fresh private copy of a fragment partial (grouped-aggregate folds mutate
/// the accumulator; the partials were synced through their devices' memory
/// managers, which may still cache their device buffers).
BatPtr CloneBat(const BatPtr& src) {
  BatPtr out = Bat::Make(src->type(), src->size());
  std::memcpy(out->data(), src->data(), src->tail_bytes());
  out->set_nonil(src->nonil());
  if (src->sorted()) out->set_sorted(true);
  g_bytes_copied.fetch_add(out->tail_bytes(), std::memory_order_relaxed);
  return out;
}

/// Marks a candidate list with the properties every engine guarantees for
/// selection results (sorted unique oids, no nils).
void MarkCandidate(const BatPtr& b) {
  b->set_sorted(true);
  b->set_key(true);
  b->set_nonil(true);
}

}  // namespace

Scheduler::Scheduler(ocl::Context* ctx) : ctx_(ctx) {
  engines_.reserve(static_cast<std::size_t>(ctx->device_count()));
  for (int i = 0; i < ctx->device_count(); ++i) {
    engines_.push_back(std::make_unique<OcelotEngine>(ctx->at(i)));
  }
}

std::string Scheduler::name() const {
  std::string n = "Ocelot scheduler on {";
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (i != 0) n += ", ";
    n += engines_[i]->context()->device()->name();
  }
  return n + "}";
}

std::uint64_t Scheduler::bytes_copied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

int Scheduler::PartsFor(std::size_t n) const {
  if (n == 0) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(device_count()), n));
}

void Scheduler::DropCachedHashTable(std::uint64_t id) {
  for (auto& engine : engines_) engine->memory()->DropCachedHashTable(id);
}

Status Scheduler::SyncPart(int i, const BatPtr& bat) {
  return engines_[static_cast<std::size_t>(i)]->Sync(bat);
}

Status Scheduler::RunPartitioned(int parts,
                                 const std::function<Status(int)>& part) {
  Nanos t0 = clock_.Now();
  common::Stopwatch real;
  std::vector<Nanos> deltas(static_cast<std::size_t>(parts), 0);
  std::vector<Status> statuses(static_cast<std::size_t>(parts));
  // Fragment i runs against device slot i only, so concurrent fragments
  // touch disjoint engines, memory managers and slot clocks; the pool adds
  // real host parallelism without changing what any slot clock observes.
  common::ThreadPool::Global().ParallelFor(parts, [&](int i) {
    common::VirtualClock* device_clock = ctx_->at(i)->clock();
    Nanos d0 = device_clock->Now();
    statuses[static_cast<std::size_t>(i)] = part(i);
    deltas[static_cast<std::size_t>(i)] = device_clock->Now() - d0;
  });
  Nanos longest = 0;
  for (Nanos d : deltas) longest = std::max(longest, d);
  // The host ran the fragments on however many threads it has; the model
  // says the *devices* ran them concurrently, so the session clock advances
  // by the makespan only. Done on the error path too: the fragments that
  // did execute must not leave their real host time billed as virtual time
  // (vclock.h contract).
  clock_.Deduct(real.ElapsedNanos());
  clock_.AdvanceTo(t0 + longest);
  for (Status& s : statuses) {
    if (!s.ok()) return s;  // first failing fragment, deterministically
  }
  return Status::Ok();
}

// --- Selection ---------------------------------------------------------------

Result<BatPtr> Scheduler::SelectRange(const BatPtr& col, const BatPtr& cand,
                                      cstore::Bound lo, cstore::Bound hi) {
  if (col == nullptr) return Status::InvalidArgument("select input is null");
  RETURN_IF_ERROR(CheckHostResident(col, "select input"));
  RETURN_IF_ERROR(CheckHostResident(cand, "select candidates"));

  // Without candidates the column is fragmented by rows and results come
  // back fragment-local (rebased during the merge). With candidates the
  // *candidate list* is partitioned instead, and each device sees a
  // zero-copy view of the column covering just its fragment's row range
  // [cand[first], cand[last]] — 1/N of the scan, not a replicated full
  // column. The candidate oids are rebased to that view in a single
  // fragment-sized write (the one partition-side transform no view can
  // express); results rebase back during the fused merge write.
  if (cand != nullptr && cand->empty()) {
    BatPtr none = Bat::MakeOid(0);
    MarkCandidate(none);
    return none;
  }
  std::size_t domain = cand != nullptr ? cand->size() : col->size();
  int parts = PartsFor(domain);
  std::vector<BatPtr> results(static_cast<std::size_t>(parts));
  std::vector<oid_t> bases(static_cast<std::size_t>(parts), 0);
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(domain, i, parts);
    if (s.size() == 0) {
      // Ceil-division slicing can leave a trailing device without rows
      // (e.g. 4 candidates on 3 devices); it contributes an empty result.
      BatPtr none = Bat::MakeOid(0);
      MarkCandidate(none);
      results[static_cast<std::size_t>(i)] = std::move(none);
      return Status::Ok();
    }
    BatPtr col_in;
    BatPtr cand_in;
    oid_t base = 0;
    if (cand != nullptr) {
      auto cv = cand->oids();
      base = cv[s.begin];
      std::size_t rows = cv[s.end - 1] - base + 1;
      col_in = Bat::View(col, base, rows);
      cand_in = Bat::MakeOid(s.size());
      auto out = cand_in->oids();
      for (std::size_t k = 0; k < s.size(); ++k) out[k] = cv[s.begin + k] - base;
      MarkCandidate(cand_in);
      g_bytes_copied.fetch_add(cand_in->tail_bytes(), std::memory_order_relaxed);
    } else {
      col_in = FragmentOf(col, s);
      base = static_cast<oid_t>(s.begin);
    }
    bases[static_cast<std::size_t>(i)] = base;
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(BatPtr r, eng->SelectRange(col_in, cand_in, lo, hi));
    RETURN_IF_ERROR(SyncPart(i, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  }));

  BatPtr merged = MergeOidParts(results, bases);
  MarkCandidate(merged);
  return merged;
}

Result<BatPtr> Scheduler::CandUnion(const BatPtr& a, const BatPtr& b) {
  if (a == nullptr || b == nullptr) return Status::InvalidArgument("union input null");
  RETURN_IF_ERROR(CheckHostResident(a, "union lhs"));
  RETURN_IF_ERROR(CheckHostResident(b, "union rhs"));
  // Both inputs are host-resident sorted oid lists; the merge is pure host
  // work and cheaper than any device round-trip.
  auto av = a->oids();
  auto bv = b->oids();
  std::vector<oid_t> merged;
  merged.reserve(av.size() + bv.size());
  std::set_union(av.begin(), av.end(), bv.begin(), bv.end(),
                 std::back_inserter(merged));
  BatPtr out = Bat::MakeOid(merged.size());
  std::copy(merged.begin(), merged.end(), out->oids().begin());
  MarkCandidate(out);
  return out;
}

// --- Projection / joins ------------------------------------------------------

Result<BatPtr> Scheduler::Project(const BatPtr& oids, const BatPtr& col) {
  if (oids == nullptr || col == nullptr) {
    return Status::InvalidArgument("projection input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(oids, "projection head"));
  RETURN_IF_ERROR(CheckHostResident(col, "projection tail"));

  // Partition the oid list (views); the gathered column is replicated (the
  // gather needs random access to all of it).
  std::size_t n = oids->size();
  int parts = PartsFor(n);
  std::vector<BatPtr> results(static_cast<std::size_t>(parts));
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(BatPtr r, eng->Project(FragmentOf(oids, s), col));
    RETURN_IF_ERROR(SyncPart(i, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  }));
  return MergeValueParts(col->type(), results);
}

Result<JoinResult> Scheduler::LeftFragmentJoin(
    const BatPtr& left,
    const std::function<Result<JoinResult>(OcelotEngine*, const BatPtr&)>& op) {
  std::size_t n = left->size();
  int parts = PartsFor(n);
  std::vector<JoinResult> results(static_cast<std::size_t>(parts));
  std::vector<oid_t> bases(static_cast<std::size_t>(parts), 0);
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    bases[static_cast<std::size_t>(i)] = static_cast<oid_t>(s.begin);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(JoinResult r, op(eng, FragmentOf(left, s)));
    RETURN_IF_ERROR(SyncPart(i, r.left));
    RETURN_IF_ERROR(SyncPart(i, r.right));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  }));

  // Fragment outputs are in probe (left) order, so concatenation reproduces
  // the single-device pair order exactly; the left oids rebase during the
  // merge write, the right oids point into the replicated build side and
  // are global already.
  std::vector<BatPtr> lefts, rights;
  for (JoinResult& r : results) {
    lefts.push_back(std::move(r.left));
    rights.push_back(std::move(r.right));
  }
  JoinResult merged;
  merged.left = MergeOidParts(lefts, bases);
  merged.left->set_sorted(true);
  merged.right = MergeValueParts(ValType::kOid, rights);
  return merged;
}

Result<JoinResult> Scheduler::HashJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("join input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "join left"));
  RETURN_IF_ERROR(CheckHostResident(right, "join right"));
  // Fragment-and-replicate: the probe side is partitioned, the build side is
  // replicated (every device builds/caches its own hash table of `right`).
  return LeftFragmentJoin(left, [&right](OcelotEngine* eng, const BatPtr& frag) {
    return eng->HashJoin(frag, right);
  });
}

Result<JoinResult> Scheduler::ThetaJoin(const BatPtr& left, const BatPtr& right,
                                        cstore::CmpOp op) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("theta join: null input");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "theta join left"));
  RETURN_IF_ERROR(CheckHostResident(right, "theta join right"));
  return LeftFragmentJoin(left, [&right, op](OcelotEngine* eng, const BatPtr& frag) {
    return eng->ThetaJoin(frag, right, op);
  });
}

Result<BatPtr> Scheduler::LeftFragmentFilter(
    const BatPtr& left,
    const std::function<Result<BatPtr>(OcelotEngine*, const BatPtr&)>& op) {
  std::size_t n = left->size();
  int parts = PartsFor(n);
  std::vector<BatPtr> results(static_cast<std::size_t>(parts));
  std::vector<oid_t> bases(static_cast<std::size_t>(parts), 0);
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    bases[static_cast<std::size_t>(i)] = static_cast<oid_t>(s.begin);
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(BatPtr r, op(eng, FragmentOf(left, s)));
    RETURN_IF_ERROR(SyncPart(i, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  }));
  BatPtr merged = MergeOidParts(results, bases);
  MarkCandidate(merged);
  return merged;
}

Result<BatPtr> Scheduler::SemiJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("semijoin input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "semijoin left"));
  RETURN_IF_ERROR(CheckHostResident(right, "semijoin right"));
  return LeftFragmentFilter(left, [&right](OcelotEngine* eng, const BatPtr& frag) {
    return eng->SemiJoin(frag, right);
  });
}

Result<BatPtr> Scheduler::AntiJoin(const BatPtr& left, const BatPtr& right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("antijoin input is null");
  }
  RETURN_IF_ERROR(CheckHostResident(left, "antijoin left"));
  RETURN_IF_ERROR(CheckHostResident(right, "antijoin right"));
  return LeftFragmentFilter(left, [&right](OcelotEngine* eng, const BatPtr& frag) {
    return eng->AntiJoin(frag, right);
  });
}

// --- Sort / group (order-sensitive: whole on the primary device) -------------

Result<SortResult> Scheduler::Sort(const BatPtr& col) {
  RETURN_IF_ERROR(CheckHostResident(col, "sort input"));
  SortResult result;
  RETURN_IF_ERROR(RunPartitioned(1, [&](int) -> Status {
    ASSIGN_OR_RETURN(result, engines_[0]->Sort(col));
    RETURN_IF_ERROR(SyncPart(0, result.values));
    RETURN_IF_ERROR(SyncPart(0, result.order));
    return Status::Ok();
  }));
  return result;
}

Result<GroupResult> Scheduler::GroupBy(const BatPtr& col, const GroupResult* prev) {
  RETURN_IF_ERROR(CheckHostResident(col, "group input"));
  // Group ids must be globally dense and consistent; repartitioning them
  // would need an id-remap pass, so grouping runs whole on device 0.
  GroupResult result;
  RETURN_IF_ERROR(RunPartitioned(1, [&](int) -> Status {
    ASSIGN_OR_RETURN(result, engines_[0]->GroupBy(col, prev));
    RETURN_IF_ERROR(SyncPart(0, result.groups));
    RETURN_IF_ERROR(SyncPart(0, result.extents));
    return Status::Ok();
  }));
  return result;
}

// --- Grouped aggregation -----------------------------------------------------

Result<BatPtr> Scheduler::PartitionedSubAgg(
    const BatPtr& vals, const BatPtr& groups, std::size_t ngroups,
    const std::function<Result<BatPtr>(OcelotEngine*, const BatPtr&,
                                       const BatPtr&)>& op,
    const std::function<void(BatPtr&, const BatPtr&)>& merge) {
  RETURN_IF_ERROR(CheckHostResident(vals, "aggregate input"));
  RETURN_IF_ERROR(CheckHostResident(groups, "group ids"));
  if (groups == nullptr) return Status::InvalidArgument("group ids are null");
  if (vals != nullptr && vals->size() != groups->size()) {
    return Status::InvalidArgument("aggregate input and group ids differ in size");
  }
  std::size_t n = groups->size();
  int parts = PartsFor(n);
  std::vector<BatPtr> partials(static_cast<std::size_t>(parts));
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    BatPtr vals_frag = vals != nullptr ? FragmentOf(vals, s) : nullptr;
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(BatPtr p, op(eng, vals_frag, FragmentOf(groups, s)));
    RETURN_IF_ERROR(SyncPart(i, p));
    partials[static_cast<std::size_t>(i)] = std::move(p);
    return Status::Ok();
  }));
  (void)ngroups;
  if (partials.size() == 1) return std::move(partials[0]);
  // Fold into a fresh ngroups-sized BAT (≤ output bytes): the partials were
  // synced through their devices' memory managers, which may still cache
  // their device buffers — mutating a synced BAT in place would leave such
  // a cache stale.
  BatPtr acc = CloneBat(partials[0]);
  for (std::size_t i = 1; i < partials.size(); ++i) merge(acc, partials[i]);
  return acc;
}

namespace {

/// Element-wise partial merges over `ngroups`-sized aggregate BATs, with the
/// engines' nil conventions (kIntNil / NaN marks "group empty so far").
void MergeAdd(BatPtr& acc, const BatPtr& part) {
  if (acc->type() == ValType::kFloat) {
    auto a = acc->floats();
    auto p = part->floats();
    for (std::size_t k = 0; k < a.size(); ++k) a[k] += p[k];
  } else {
    auto a = acc->ints();
    auto p = part->ints();
    for (std::size_t k = 0; k < a.size(); ++k) a[k] += p[k];
  }
}

void MergeMinMax(BatPtr& acc, const BatPtr& part, bool want_min) {
  if (acc->type() == ValType::kFloat) {
    auto a = acc->floats();
    auto p = part->floats();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (std::isnan(p[k])) continue;
      if (std::isnan(a[k]) || (want_min ? p[k] < a[k] : p[k] > a[k])) a[k] = p[k];
    }
  } else {
    auto a = acc->ints();
    auto p = part->ints();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (p[k] == kIntNil) continue;
      if (a[k] == kIntNil || (want_min ? p[k] < a[k] : p[k] > a[k])) a[k] = p[k];
    }
  }
}

}  // namespace

Result<BatPtr> Scheduler::SubSum(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](OcelotEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubSum(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeAdd(acc, p); });
}

Result<BatPtr> Scheduler::SubCount(const BatPtr& groups, std::size_t ngroups) {
  return PartitionedSubAgg(
      nullptr, groups, ngroups,
      [ngroups](OcelotEngine* eng, const BatPtr&, const BatPtr& g) {
        return eng->SubCount(g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeAdd(acc, p); });
}

Result<BatPtr> Scheduler::SubMin(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](OcelotEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubMin(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeMinMax(acc, p, /*want_min=*/true); });
}

Result<BatPtr> Scheduler::SubMax(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  return PartitionedSubAgg(
      vals, groups, ngroups,
      [ngroups](OcelotEngine* eng, const BatPtr& v, const BatPtr& g) {
        return eng->SubMax(v, g, ngroups);
      },
      [](BatPtr& acc, const BatPtr& p) { MergeMinMax(acc, p, /*want_min=*/false); });
}

Result<BatPtr> Scheduler::SubAvg(const BatPtr& vals, const BatPtr& groups,
                                 std::size_t ngroups) {
  // avg has no exact distributed merge through the existing operator set:
  // dividing merged sums by SubCount would weigh nil values into the
  // denominator (the engines divide by the *non-nil* count). Run it whole
  // on the primary device until a per-group non-nil count operator exists.
  RETURN_IF_ERROR(CheckHostResident(vals, "subavg input"));
  RETURN_IF_ERROR(CheckHostResident(groups, "group ids"));
  BatPtr result;
  RETURN_IF_ERROR(RunPartitioned(1, [&](int) -> Status {
    ASSIGN_OR_RETURN(result, engines_[0]->SubAvg(vals, groups, ngroups));
    return SyncPart(0, result);
  }));
  return result;
}

// --- Ungrouped aggregation ---------------------------------------------------

Result<double> Scheduler::PartitionedReduce(
    const BatPtr& col,
    const std::function<Result<double>(OcelotEngine*, const BatPtr&)>& op,
    const std::function<double(double, double)>& merge) {
  RETURN_IF_ERROR(CheckHostResident(col, "reduce input"));
  std::size_t n = col == nullptr ? 0 : col->size();
  if (col == nullptr || n == 0) {
    // Preserve the engine's own null/empty-input semantics.
    double result = 0;
    RETURN_IF_ERROR(RunPartitioned(1, [&](int) -> Status {
      ASSIGN_OR_RETURN(result, op(engines_[0].get(), col));
      return Status::Ok();
    }));
    return result;
  }
  int parts = PartsFor(n);
  std::vector<double> partials(static_cast<std::size_t>(parts));
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    ASSIGN_OR_RETURN(partials[static_cast<std::size_t>(i)],
                     op(engines_[static_cast<std::size_t>(i)].get(),
                        FragmentOf(col, s)));
    return Status::Ok();
  }));
  double acc = partials[0];
  for (std::size_t i = 1; i < partials.size(); ++i) acc = merge(acc, partials[i]);
  return acc;
}

Result<double> Scheduler::Sum(const BatPtr& col) {
  return PartitionedReduce(
      col, [](OcelotEngine* eng, const BatPtr& c) { return eng->Sum(c); },
      [](double a, double b) { return a + b; });
}

Result<double> Scheduler::Min(const BatPtr& col) {
  return PartitionedReduce(
      col, [](OcelotEngine* eng, const BatPtr& c) { return eng->Min(c); },
      [](double a, double b) { return std::min(a, b); });
}

Result<double> Scheduler::Max(const BatPtr& col) {
  return PartitionedReduce(
      col, [](OcelotEngine* eng, const BatPtr& c) { return eng->Max(c); },
      [](double a, double b) { return std::max(a, b); });
}

Result<std::int64_t> Scheduler::Count(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("count input is null");
  RETURN_IF_ERROR(CheckHostResident(col, "count input"));
  // Scheduler inputs are host-resident, so cardinality is known directly —
  // the same answer every engine gives for materialized BATs.
  return static_cast<std::int64_t>(col->size());
}

// --- Column arithmetic (all element-wise: fragment every input) --------------

Result<BatPtr> Scheduler::ElementWise(
    const std::vector<BatPtr>& inputs,
    const std::function<Result<BatPtr>(OcelotEngine*, const std::vector<BatPtr>&)>&
        op) {
  for (const BatPtr& in : inputs) {
    if (in == nullptr) return Status::InvalidArgument("batcalc input is null");
    RETURN_IF_ERROR(CheckHostResident(in, "batcalc input"));
  }
  std::size_t n = inputs[0]->size();
  for (const BatPtr& in : inputs) {
    if (in->size() != n) {
      // Let the single-device engine produce its own size-mismatch error.
      BatPtr result;
      RETURN_IF_ERROR(RunPartitioned(1, [&](int) -> Status {
        ASSIGN_OR_RETURN(result, op(engines_[0].get(), inputs));
        RETURN_IF_ERROR(SyncPart(0, result));
        return Status::Ok();
      }));
      return result;
    }
  }

  int parts = PartsFor(n);
  std::vector<BatPtr> results(static_cast<std::size_t>(parts));
  RETURN_IF_ERROR(RunPartitioned(parts, [&](int i) -> Status {
    monet::Slice s = monet::SliceOf(n, i, parts);
    std::vector<BatPtr> frags;
    frags.reserve(inputs.size());
    for (const BatPtr& in : inputs) frags.push_back(FragmentOf(in, s));
    OcelotEngine* eng = engines_[static_cast<std::size_t>(i)].get();
    ASSIGN_OR_RETURN(BatPtr r, op(eng, frags));
    RETURN_IF_ERROR(SyncPart(i, r));
    results[static_cast<std::size_t>(i)] = std::move(r);
    return Status::Ok();
  }));
  return MergeValueParts(results[0]->type(), results);
}

Result<BatPtr> Scheduler::Calc(cstore::CalcOp op, const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [op](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Calc(op, f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::CalcScalar(cstore::CalcOp op, const BatPtr& a, double s,
                                     bool scalar_left) {
  return ElementWise(
      {a}, [op, s, scalar_left](OcelotEngine* eng, const std::vector<BatPtr>& f) {
        return eng->CalcScalar(op, f[0], s, scalar_left);
      });
}

Result<BatPtr> Scheduler::Cmp(cstore::CmpOp op, const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [op](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Cmp(op, f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::CmpScalar(cstore::CmpOp op, const BatPtr& a, double s) {
  return ElementWise({a}, [op, s](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->CmpScalar(op, f[0], s);
  });
}

Result<BatPtr> Scheduler::BoolOr(const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->BoolOr(f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::BoolAnd(const BatPtr& a, const BatPtr& b) {
  return ElementWise({a, b}, [](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->BoolAnd(f[0], f[1]);
  });
}

Result<BatPtr> Scheduler::IfThenElseConst(const BatPtr& cond, const BatPtr& then_vals,
                                          double else_val) {
  return ElementWise(
      {cond, then_vals},
      [else_val](OcelotEngine* eng, const std::vector<BatPtr>& f) {
        return eng->IfThenElseConst(f[0], f[1], else_val);
      });
}

Result<BatPtr> Scheduler::Year(const BatPtr& col) {
  return ElementWise({col}, [](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->Year(f[0]);
  });
}

Result<BatPtr> Scheduler::CastToFloat(const BatPtr& col) {
  return ElementWise({col}, [](OcelotEngine* eng, const std::vector<BatPtr>& f) {
    return eng->CastToFloat(f[0]);
  });
}

}  // namespace ocelot
