#ifndef OCELOT_OCELOT_SCHEDULER_H_
#define OCELOT_OCELOT_SCHEDULER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/vclock.h"
#include "cstore/engine.h"
#include "monet/mitosis.h"
#include "monet/seq_engine.h"
#include "ocelot/engine.h"
#include "ocelot/slot_arbiter.h"
#include "ocl/context.h"

namespace ocelot {

/// Operator classes the scheduler calibrates separately: devices have
/// different relative strengths per kernel shape (a GPU gains more on a
/// streaming select than on an atomic-heavy sub-aggregate), so throughput is
/// tracked per (device, class), not per device.
enum class OpClass : int {
  kSelect = 0,
  kProject,
  kJoin,
  kElementWise,
  kSubAgg,
  kReduce,
};
inline constexpr int kOpClassCount = 6;

/// Per-device, per-operator-class, per-size-bucket throughput calibration
/// for weighted work division. Fed by the *virtual* per-fragment durations
/// RunPartitioned measures (rows / modeled-nanoseconds, folded by EWMA), so
/// the calibration inherits the billing layer's thread-count invariance:
/// the weights — and therefore the fragment boundaries — do not depend on
/// how many host threads ran the fragments.
///
/// Calibration is bucketed by log2 of the *operator's* input size because
/// effective throughput is not size-free: per-launch driver costs and DMA
/// setup dominate small inputs, so a 4-row projection and a 120k-row
/// projection of the same class have throughputs three orders of magnitude
/// apart — one EWMA across both would corrupt each other's plans.
///
/// Observations arrive on the scheduler's calling thread after the fragment
/// barrier, in device order. The tracker is internally mutex-guarded: one
/// scheduler == one session feeds it single-threaded as before, but
/// mal::QueryService runs many sessions in one process, and an engine
/// introspecting a sibling's calibration (tests, benches, a future shared
/// prior) must not race the owner's EWMA updates. The lock is uncontended
/// on the single-session hot path. Determinism is unchanged: each tracker
/// instance is still fed exclusively by its own session, in plan order, so
/// cross-session scheduling cannot reorder any instance's observations.
class ThroughputTracker {
 public:
  /// `priors` are model-derived relative throughputs (one per device,
  /// ocl::DeviceModel::partition_weight()), used only to extrapolate a
  /// device that has no observation for a bucket while its siblings do.
  explicit ThroughputTracker(std::vector<double> priors);

  /// Relative split weights for the given devices of class `c` at operator
  /// size `n`. Equal weights until the first calibration of the bucket
  /// lands (equal-split cold start); afterwards the observed EWMA
  /// throughputs, with prior-extrapolated stand-ins for not-yet-observed
  /// devices.
  std::vector<double> Weights(OpClass c, std::size_t n,
                              const std::vector<int>& devices) const;

  /// Observed EWMA throughput of `device` for (`c`, size bucket of `n`) in
  /// rows per virtual nanosecond; 0 when there is no observation yet.
  double Throughput(OpClass c, std::size_t n, int device) const;

  /// Smallest fragment duration observed for (`c`, bucket of `n`,
  /// `device`): an upper bound on the device's *fixed* per-operator cost
  /// (launch/dispatch/DMA setup), approached as the weighting shrinks its
  /// share. A device whose floor exceeds the whole makespan achievable
  /// without it is ballast — the signal the scheduler's device-drop rule
  /// uses. Returns 0 (unknown) until a cell has at least two observations:
  /// the first sample of a kernel on a device carries the one-time JIT
  /// compile cost, and treating that as the device's floor would let a
  /// single compile-inflated measurement exclude a healthy device
  /// permanently (dropped devices get no new observations to recover
  /// with).
  common::Nanos MinCost(OpClass c, std::size_t n, int device) const;

  /// Folds one fragment measurement (`rows` of an `n`-row operator in `ns`
  /// virtual nanoseconds on `device`) into the bucket EWMAs. Zero-row or
  /// zero-time measurements carry no signal and are dropped.
  void Observe(OpClass c, std::size_t n, int device, std::size_t rows,
               common::Nanos ns);

  /// log2 size bucket of `n` (0 for n <= 1).
  static int Bucket(std::size_t n);
  static constexpr int kSizeBuckets = 40;

 private:
  static constexpr double kAlpha = 0.3;  ///< EWMA: fresh observation share

  struct Cell {
    double throughput = 0;  ///< EWMA rows per virtual ns; 0 = no observation
    double min_cost = 0;    ///< smallest fragment ns since sample 2; 0 = none
    int samples = 0;        ///< observations folded into this cell
  };
  const Cell& At(OpClass c, std::size_t n, int device) const;

  mutable std::mutex mu_;
  std::vector<double> priors_;
  /// cells_[device][class][bucket].
  std::vector<std::array<std::array<Cell, kSizeBuckets>, kOpClassCount>> cells_;
};

/// A partition plan: fragment i (rows [slices[i].begin, slices[i].end)) runs
/// on device devices[i]. Slices are contiguous and ascending, so merging
/// fragment results in plan order reproduces the global row order; the
/// device set may be a subset of the context (see Scheduler::PlanParts).
struct PartitionPlan {
  std::vector<monet::Slice> slices;
  std::vector<int> devices;
  int parts() const { return static_cast<int>(slices.size()); }
};

/// Degradation counters of one scheduler (== one session, so the service
/// tier reads them as per-query stats): how often the fault-recovery ladder
/// fired. All zero on a fault-free run.
struct FaultStats {
  std::uint64_t retries = 0;      ///< operator batches re-run after a device fault
  std::uint64_t quarantines = 0;  ///< devices removed from planning permanently
  std::uint64_t fallbacks = 0;    ///< operators completed on the host seq engine
};

/// The multi-device execution layer: one hardware-oblivious operator set
/// running concurrently on every device of a multi-device ocl::Context.
///
/// The Scheduler is itself a cstore::QueryEngine. It owns one OcelotEngine
/// per device slot and, per operator call, horizontally partitions the
/// operator's inputs across the devices with **throughput-weighted** Mitosis
/// slicing (monet::WeightedSlices over the per-device, per-operator-class
/// EWMA the ThroughputTracker maintains; equal split on cold start or under
/// OCELOT_STATIC_PARTITION=1), runs each fragment on its device's engine,
/// synchronizes the fragment results through each engine's memory manager,
/// and merges them on the host:
///
///  * partitioning is **zero-copy**: fragments are Bat views aliasing the
///    input heaps, so devices cache fragment uploads across operator calls
///    (the memory manager keys its cache on heap identity) and the host
///    moves no input bytes at all;
///  * row-partitionable operators (selection, projection, batcalc, the
///    probe side of joins, grouped/ungrouped aggregation) run as true
///    fragments — each device's share follows its calibrated throughput
///    (selection with a candidate list fragments the *candidates* instead),
///    and a device whose fixed per-operator cost exceeds the makespan
///    without it is dropped from the plan (see PlanParts);
///  * order-sensitive operators without a cheap merge (sort, grouping)
///    run whole on the fastest device of the set (by model prior);
///  * merges preallocate the output once from a size-prefix pass and write
///    every fragment exactly once (candidate/pair-list rebasing is fused
///    into that write; single-fragment results are stolen wholesale), so
///    the scheduler's copy traffic is at most one output's worth of bytes
///    per operator — and the byte-exact single-device result order is
///    reproduced. Merges of grouped-aggregate partials honor the engines'
///    empty-group nil convention (kIntNil / NaN partials are fold
///    identities — see MergeAdd/MergeMinMax in scheduler.cc).
///
/// Execution is *really* parallel: fragments run concurrently on the host
/// thread pool (common::ThreadPool, OCELOT_THREADS lanes). Fragment i only
/// ever touches its plan device — engine, memory manager and queue are
/// per-fragment-private — so results are bit-identical and billing follows
/// the same makespan rule at every thread count (clock *values* stay
/// real-time-anchored and vary run to run, as for every engine; see
/// ARCHITECTURE.md's determinism contract).
///
/// Virtual time: each fragment's duration is its device queue's *modeled*
/// busy-time delta (kernels + transfers — never raw wall time, which would
/// fold host scheduling noise into both billing and calibration); the
/// scheduler advances its session clock by the *makespan* (the slowest
/// fragment's delta), modeling the fragments as concurrent on the devices
/// regardless of how many host threads happened to drive them.
///
/// Contract: inputs must be host-resident BATs (catalog columns or results
/// this scheduler produced). Scheduler results are always host-resident, so
/// Sync is a no-op and chains of scheduler operators compose naturally.
class Scheduler : public cstore::QueryEngine {
 public:
  /// Builds one engine per device of `ctx` (which must outlive the
  /// scheduler). A one-device context degenerates to single-device Ocelot
  /// with a merge layer on top. Honors OCELOT_STATIC_PARTITION=1 (equal
  /// splits forever — the calibration escape hatch).
  explicit Scheduler(ocl::Context* ctx);

  /// Forces equal-split partitioning regardless of calibration state (what
  /// OCELOT_STATIC_PARTITION=1 sets at construction). Benchmarks and tests
  /// use this to compare weighted against static division.
  void set_static_partition(bool v) { static_partition_ = v; }
  bool static_partition() const { return static_partition_; }

  /// Attaches the process-level physical-slot arbiter (mal::QueryService
  /// installs its own into every session's scheduler). When set, each
  /// operator batch acquires one lease unit of every device slot in its
  /// partition plan before the fragments launch and releases them after the
  /// merge — concurrent sessions then time-share the machine's physical
  /// devices instead of pretending N disjoint machines exist. Slot ids map
  /// 1:1 onto this scheduler's device indices: both the multi-device
  /// context and the arbiter enumerate ocl::AvailableDevices() in order.
  ///
  /// Determinism: the lease gates *when* a plan executes, never *what* the
  /// plan is — partition boundaries remain a pure function of calibration
  /// state, and the wait happens inside the window RunPartitioned deducts
  /// as unbilled host time, so results and virtual metrics are identical
  /// with or without contention; only wall-clock changes. `arbiter` must
  /// outlive the scheduler; nullptr detaches.
  void set_slot_arbiter(SlotArbiter* arbiter) { arbiter_ = arbiter; }
  SlotArbiter* slot_arbiter() const { return arbiter_; }

  std::string name() const override;

  /// Audited not concurrency-safe: the throughput-tracker EWMAs, the plan
  /// hysteresis cache and the merged session clock are all fed on the
  /// operator's calling thread. Concurrent operator calls would race them,
  /// and — worse — make partition boundaries depend on scheduling order,
  /// so float partial-sum splits (non-associative) would differ between
  /// dataflow-on and dataflow-off runs. The MAL dataflow executor instead
  /// serializes Scheduler calls in program order; the Scheduler supplies
  /// its own intra-operator device parallelism.
  bool concurrency_safe() const override { return false; }

  int device_count() const { return static_cast<int>(engines_.size()); }
  OcelotEngine* engine(int i) { return engines_[static_cast<std::size_t>(i)].get(); }

  /// The merged session clock operator makespans are billed onto.
  common::VirtualClock* clock() { return &clock_; }

  /// Forgets BAT `id`'s cached hash table on every device (benchmarks
  /// measuring cold builds; joins replicate the build per device).
  void DropCachedHashTable(std::uint64_t id);

  /// Process-wide count of host bytes scheduler merges have copied (the
  /// partition side is views and copies nothing). Benchmarks report the
  /// delta across a measured section.
  static std::uint64_t bytes_copied();

  /// Snapshot of this scheduler's degradation counters (see FaultStats).
  /// One scheduler backs one session, so after a query these totals are
  /// that query's fault-recovery story.
  FaultStats fault_stats() const {
    FaultStats s;
    s.retries = retries_.load(std::memory_order_relaxed);
    s.quarantines = quarantines_.load(std::memory_order_relaxed);
    s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

  /// True when `device` has been removed from planning after repeated
  /// faults (kQuarantineStrikes strikes). Quarantine is permanent for the
  /// scheduler's lifetime — a device that fails deterministically would
  /// re-earn its strikes on every operator otherwise.
  bool quarantined(int device) const {
    return quarantined_[static_cast<std::size_t>(device)];
  }

  int healthy_device_count() const {
    int n = 0;
    for (bool q : quarantined_) n += q ? 0 : 1;
    return n;
  }

  common::Result<cstore::BatPtr> SelectRange(const cstore::BatPtr& col,
                                             const cstore::BatPtr& cand,
                                             cstore::Bound lo,
                                             cstore::Bound hi) override;
  common::Result<cstore::BatPtr> CandUnion(const cstore::BatPtr& a,
                                           const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> Project(const cstore::BatPtr& oids,
                                         const cstore::BatPtr& col) override;
  common::Result<cstore::JoinResult> HashJoin(const cstore::BatPtr& left,
                                              const cstore::BatPtr& right) override;
  common::Result<cstore::JoinResult> ThetaJoin(const cstore::BatPtr& left,
                                               const cstore::BatPtr& right,
                                               cstore::CmpOp op) override;
  common::Result<cstore::BatPtr> SemiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> AntiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::SortResult> Sort(const cstore::BatPtr& col) override;
  common::Result<cstore::GroupResult> GroupBy(const cstore::BatPtr& col,
                                              const cstore::GroupResult* prev) override;
  common::Result<cstore::BatPtr> SubSum(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubCount(const cstore::BatPtr& groups,
                                          std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMin(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMax(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubAvg(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<double> Sum(const cstore::BatPtr& col) override;
  common::Result<double> Min(const cstore::BatPtr& col) override;
  common::Result<double> Max(const cstore::BatPtr& col) override;
  common::Result<std::int64_t> Count(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> Calc(cstore::CalcOp op, const cstore::BatPtr& a,
                                      const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CalcScalar(cstore::CalcOp op, const cstore::BatPtr& a,
                                            double s, bool scalar_left) override;
  common::Result<cstore::BatPtr> Cmp(cstore::CmpOp op, const cstore::BatPtr& a,
                                     const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CmpScalar(cstore::CmpOp op, const cstore::BatPtr& a,
                                           double s) override;
  common::Result<cstore::BatPtr> BoolOr(const cstore::BatPtr& a,
                                        const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> BoolAnd(const cstore::BatPtr& a,
                                         const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> IfThenElseConst(const cstore::BatPtr& cond,
                                                 const cstore::BatPtr& then_vals,
                                                 double else_val) override;
  common::Result<cstore::BatPtr> Year(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> CastToFloat(const cstore::BatPtr& col) override;

 private:
  /// Partition plan for an `n`-row input of operator class `c`: contiguous
  /// fragment row-ranges sized by the class's calibrated device throughputs
  /// (equal on cold start or under static partitioning; never empty —
  /// monet::WeightedSlices' contract). A single-fragment plan covers [0, n)
  /// whole, including n == 0.
  ///
  /// Two calibrated refinements beyond proportional slicing:
  ///  * **Device drop** — a device whose recent fragment cost exceeds the
  ///    modeled makespan of running without it is excluded from the plan:
  ///    per-launch driver overhead (the Intel-SDK 2 ms dispatch of the
  ///    paper's Fig. 7d) does not shrink with the row share, so past a
  ///    point a slow device is pure ballast. The decision depends on `n`,
  ///    so a dropped device re-enters naturally when inputs grow enough to
  ///    amortize its fixed costs.
  ///  * **Hysteresis** — for a repeated (class, n, device-set) the previous
  ///    cut points are kept unless some device's ideal share moved by more
  ///    than n/16. Fragment views are cached device-side by their exact
  ///    heap range, so a boundary that wobbles with every EWMA update would
  ///    invalidate the non-unified devices' upload cache on every call and
  ///    pay the transfer the weighting was meant to save.
  ///
  /// Plans draw from the *healthy* (non-quarantined) device subset only; a
  /// plan with an empty device list means every device is quarantined and
  /// the caller must fail over or error out.
  PartitionPlan PlanParts(OpClass c, std::size_t n);

  /// Runs `frag(i)` for fragments 0..devices.size()-1 (fragment i on device
  /// devices[i]), concurrently on the host thread pool, measuring each
  /// fragment's *virtual* duration (its device queue's modeled-busy delta),
  /// then bills the makespan of the fragment set onto the session clock
  /// (the section's real host time is deducted — the fragments are modeled
  /// as concurrent on the devices). On error the lowest-index failing
  /// fragment's status is returned. `deltas`, when non-null, receives each
  /// fragment's virtual duration; `kernel_deltas` the kernel-only subset
  /// (no transfers), the signal the throughput calibration wants;
  /// `statuses_out` every fragment's individual status — the retry ladder
  /// needs to know *which* devices faulted, not just the first.
  common::Status RunPartitioned(
      const std::vector<int>& devices,
      const std::function<common::Status(int)>& frag,
      std::vector<common::Nanos>* deltas = nullptr,
      std::vector<common::Nanos>* kernel_deltas = nullptr,
      std::vector<common::Status>* statuses_out = nullptr);

  /// The partitioned-operator driver: plans (PlanParts), runs the fragment
  /// set (RunPartitioned) and feeds each fragment's (rows, kernel-only
  /// virtual duration) back into the throughput tracker on success.
  /// Transfers are excluded from the calibration signal: a boundary re-cut
  /// pays a one-time upload whose cost would depress the device's estimate
  /// and re-move the boundary — with near-parity devices (e.g.
  /// SIMD-accelerated host kernels) that feedback never settles.
  ///
  /// Fault recovery happens *here*, below the operators: a fragment batch
  /// that fails with a device fault (kDeviceLost / kResourceExhausted) is
  /// retried with backoff, the faulted devices' queues drained and their
  /// poisoned cache entries purged; kQuarantineStrikes consecutive strikes
  /// quarantine a device, and the next attempt re-plans over the surviving
  /// set. Because `reset` re-sizes the caller's fragment-result state for
  /// each attempt's plan, a re-plan after quarantine is transparent to the
  /// operator. Only when every attempt fails (or every device is
  /// quarantined) does the error surface — the operators then fall back to
  /// the host engine. Non-device errors surface immediately, unretried.
  ///
  /// `reset` is called once per attempt with that attempt's plan (size your
  /// result vectors here); `part` receives (fragment index, device index,
  /// row range). `observed_rows`, when non-null, is re-sized per attempt
  /// and overrides the per-fragment row count reported to the tracker
  /// (filled in by `part`): candidate-list selections partition the
  /// candidates but each device scans the *covered column range*, and
  /// calibrating on candidate counts would pollute the select buckets plain
  /// selections share.
  common::Status RunWeighted(
      OpClass c, std::size_t n,
      const std::function<void(const PartitionPlan&)>& reset,
      const std::function<common::Status(int, int, const monet::Slice&)>& part,
      std::vector<std::size_t>* observed_rows = nullptr);

  /// Runs `fn` whole against device `device` (no partitioning), billing that
  /// device's modeled busy-time delta onto the session clock. The un-split
  /// analogue of RunPartitioned for order-sensitive operators.
  common::Status RunOnDevice(int device, const std::function<common::Status()>& fn);

  /// The retry ladder for whole-device (unpartitioned) operator paths:
  /// runs `fn(device)` on the primary healthy device, retrying with backoff
  /// on device faults, striking/quarantining like RunWeighted (quarantine
  /// re-elects the primary, so a later attempt lands on a survivor).
  common::Status RunWhole(const std::function<common::Status(int)>& fn);

  /// Post-fault cleanup for one device: drains its queue (clearing the
  /// sticky fault so the retry starts clean), purges cache entries bound to
  /// failed work, and adds a strike — kQuarantineStrikes strikes quarantine.
  void HandleDeviceFault(int device);

  /// Removes `device` from planning permanently: marks it quarantined,
  /// evicts its *entire* device cache (nothing on it can be trusted or
  /// reused), and re-elects primary_ among the survivors.
  void QuarantineDevice(int device);

  /// Device indices not currently quarantined, ascending.
  std::vector<int> HealthyDevices() const;

  /// Element-wise operator skeleton: slices every BAT in `inputs` by rows,
  /// applies `op` per fragment, concatenates the fragment results. Falls
  /// back to running `op` whole on the host engine when the device path is
  /// lost (as do the other skeletons — their callbacks are typed on
  /// cstore::QueryEngine so one lambda serves both paths).
  common::Result<cstore::BatPtr> ElementWise(
      const std::vector<cstore::BatPtr>& inputs,
      const std::function<common::Result<cstore::BatPtr>(
          cstore::QueryEngine*, const std::vector<cstore::BatPtr>&)>& op);

  /// Left-fragment join skeleton shared by HashJoin/ThetaJoin.
  common::Result<cstore::JoinResult> LeftFragmentJoin(
      const cstore::BatPtr& left,
      const std::function<common::Result<cstore::JoinResult>(
          cstore::QueryEngine*, const cstore::BatPtr&)>& op);

  /// Left-fragment semi/anti join skeleton (oid-list results).
  common::Result<cstore::BatPtr> LeftFragmentFilter(
      const cstore::BatPtr& left,
      const std::function<common::Result<cstore::BatPtr>(
          cstore::QueryEngine*, const cstore::BatPtr&)>& op);

  /// Grouped-aggregate skeleton: slices (vals, groups) by rows, computes an
  /// `ngroups`-sized partial per device, merges with `merge`.
  common::Result<cstore::BatPtr> PartitionedSubAgg(
      const cstore::BatPtr& vals, const cstore::BatPtr& groups, std::size_t ngroups,
      const std::function<common::Result<cstore::BatPtr>(
          cstore::QueryEngine*, const cstore::BatPtr&, const cstore::BatPtr&)>& op,
      const std::function<void(cstore::BatPtr&, const cstore::BatPtr&)>& merge);

  /// Scalar-aggregate skeleton (Sum/Min/Max).
  common::Result<double> PartitionedReduce(
      const cstore::BatPtr& col,
      const std::function<common::Result<double>(cstore::QueryEngine*,
                                                 const cstore::BatPtr&)>& op,
      const std::function<double(double, double)>& merge);

  /// Syncs a fragment result back to the host through device `i`'s engine.
  common::Status SyncPart(int i, const cstore::BatPtr& bat);

  /// Last adopted plan for one exact input size of one operator class —
  /// the hysteresis state. Keyed by exact n (per-class map, not a single
  /// slot): a query that interleaves several input sizes of the same class
  /// (Q3 selects customer, orders and lineitem columns every iteration)
  /// must not evict each size's cut points on every call, or the
  /// hysteresis protects nothing.
  struct PlanCache {
    std::vector<int> devices;
    std::vector<std::size_t> shares;
  };

  /// Strikes before a faulting device is quarantined. Three lets a couple of
  /// transient faults heal under retry while a permanently broken device
  /// (every attempt faults) is out after three attempts.
  static constexpr int kQuarantineStrikes = 3;
  /// Retry budget per operator batch. Sized so a *permanent* single-device
  /// fault resolves within it: three strikes trip the quarantine, the next
  /// attempt re-plans over the survivors, with headroom for a second sick
  /// device.
  static constexpr int kMaxAttempts = 6;

  ocl::Context* ctx_;
  common::VirtualClock clock_;
  std::vector<std::unique_ptr<OcelotEngine>> engines_;
  ThroughputTracker tracker_;
  SlotArbiter* arbiter_ = nullptr;  ///< not owned; see set_slot_arbiter
  /// Last-resort host engine: when the retry/quarantine ladder runs out of
  /// devices (or attempts), operators re-run whole on this — a query only
  /// fails when the host path fails too. Inputs and outputs of the
  /// scheduler are host-resident by contract, so the handoff is free.
  monet::SequentialEngine host_;
  std::vector<bool> quarantined_;  ///< per-device: excluded from planning
  std::vector<int> strikes_;       ///< per-device: consecutive-fault count
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  /// plans_[class]: exact input size -> last adopted plan (bounded; cleared
  /// wholesale if a pathological workload produces thousands of distinct
  /// sizes — losing hysteresis there costs re-cuts, not correctness).
  std::array<std::map<std::size_t, PlanCache>, kOpClassCount> plans_;
  bool static_partition_ = false;
  /// Device for operators that cannot be partitioned (sort, grouping):
  /// the highest model-prior-throughput device of the set — pinning them to
  /// slot 0 would chain a heterogeneous set to whatever device happens to
  /// be enumerated first. Index 0 for homogeneous sets (all priors equal).
  int primary_ = 0;
};

}  // namespace ocelot

#endif  // OCELOT_OCELOT_SCHEDULER_H_
