#ifndef OCELOT_OCELOT_SCHEDULER_H_
#define OCELOT_OCELOT_SCHEDULER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/vclock.h"
#include "cstore/engine.h"
#include "ocelot/engine.h"
#include "ocl/context.h"

namespace ocelot {

/// The multi-device execution layer: one hardware-oblivious operator set
/// running concurrently on every device of a multi-device ocl::Context.
///
/// The Scheduler is itself a cstore::QueryEngine. It owns one OcelotEngine
/// per device slot and, per operator call, horizontally partitions the
/// operator's inputs across the devices with MonetDB's Mitosis slicing
/// (monet::SliceOf), runs each fragment on its device's engine, synchronizes
/// the fragment results through each engine's memory manager, and merges
/// them on the host:
///
///  * partitioning is **zero-copy**: fragments are Bat views aliasing the
///    input heaps, so devices cache fragment uploads across operator calls
///    (the memory manager keys its cache on heap identity) and the host
///    moves no input bytes at all;
///  * row-partitionable operators (selection, projection, batcalc, the
///    probe side of joins, grouped/ungrouped aggregation) run as true
///    fragments — each device sees 1/N of the rows (selection with a
///    candidate list fragments the *candidates* instead);
///  * order-sensitive operators without a cheap merge (sort, grouping)
///    run whole on the primary device;
///  * merges preallocate the output once from a size-prefix pass and write
///    every fragment exactly once (candidate/pair-list rebasing is fused
///    into that write; single-fragment results are stolen wholesale), so
///    the scheduler's copy traffic is at most one output's worth of bytes
///    per operator — and the byte-exact single-device result order is
///    reproduced.
///
/// Execution is *really* parallel: fragments run concurrently on the host
/// thread pool (common::ThreadPool, OCELOT_THREADS lanes). Fragment i only
/// ever touches device slot i — engine, memory manager and slot clock are
/// per-fragment-private — so results are bit-identical and billing follows
/// the same makespan rule at every thread count (clock *values* stay
/// real-time-anchored and vary run to run, as for every engine; see
/// ARCHITECTURE.md's determinism contract).
///
/// Virtual time: each device bills its fragment onto its own slot clock;
/// the scheduler advances its session clock by the *makespan* (the slowest
/// device's delta), modeling the fragments as concurrent on the devices
/// regardless of how many host threads happened to drive them.
///
/// Contract: inputs must be host-resident BATs (catalog columns or results
/// this scheduler produced). Scheduler results are always host-resident, so
/// Sync is a no-op and chains of scheduler operators compose naturally.
class Scheduler : public cstore::QueryEngine {
 public:
  /// Builds one engine per device of `ctx` (which must outlive the
  /// scheduler). A one-device context degenerates to single-device Ocelot
  /// with a merge layer on top.
  explicit Scheduler(ocl::Context* ctx);

  std::string name() const override;

  int device_count() const { return static_cast<int>(engines_.size()); }
  OcelotEngine* engine(int i) { return engines_[static_cast<std::size_t>(i)].get(); }

  /// The merged session clock operator makespans are billed onto.
  common::VirtualClock* clock() { return &clock_; }

  /// Forgets BAT `id`'s cached hash table on every device (benchmarks
  /// measuring cold builds; joins replicate the build per device).
  void DropCachedHashTable(std::uint64_t id);

  /// Process-wide count of host bytes scheduler merges have copied (the
  /// partition side is views and copies nothing). Benchmarks report the
  /// delta across a measured section.
  static std::uint64_t bytes_copied();

  common::Result<cstore::BatPtr> SelectRange(const cstore::BatPtr& col,
                                             const cstore::BatPtr& cand,
                                             cstore::Bound lo,
                                             cstore::Bound hi) override;
  common::Result<cstore::BatPtr> CandUnion(const cstore::BatPtr& a,
                                           const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> Project(const cstore::BatPtr& oids,
                                         const cstore::BatPtr& col) override;
  common::Result<cstore::JoinResult> HashJoin(const cstore::BatPtr& left,
                                              const cstore::BatPtr& right) override;
  common::Result<cstore::JoinResult> ThetaJoin(const cstore::BatPtr& left,
                                               const cstore::BatPtr& right,
                                               cstore::CmpOp op) override;
  common::Result<cstore::BatPtr> SemiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::BatPtr> AntiJoin(const cstore::BatPtr& left,
                                          const cstore::BatPtr& right) override;
  common::Result<cstore::SortResult> Sort(const cstore::BatPtr& col) override;
  common::Result<cstore::GroupResult> GroupBy(const cstore::BatPtr& col,
                                              const cstore::GroupResult* prev) override;
  common::Result<cstore::BatPtr> SubSum(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubCount(const cstore::BatPtr& groups,
                                          std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMin(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubMax(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<cstore::BatPtr> SubAvg(const cstore::BatPtr& vals,
                                        const cstore::BatPtr& groups,
                                        std::size_t ngroups) override;
  common::Result<double> Sum(const cstore::BatPtr& col) override;
  common::Result<double> Min(const cstore::BatPtr& col) override;
  common::Result<double> Max(const cstore::BatPtr& col) override;
  common::Result<std::int64_t> Count(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> Calc(cstore::CalcOp op, const cstore::BatPtr& a,
                                      const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CalcScalar(cstore::CalcOp op, const cstore::BatPtr& a,
                                            double s, bool scalar_left) override;
  common::Result<cstore::BatPtr> Cmp(cstore::CmpOp op, const cstore::BatPtr& a,
                                     const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> CmpScalar(cstore::CmpOp op, const cstore::BatPtr& a,
                                           double s) override;
  common::Result<cstore::BatPtr> BoolOr(const cstore::BatPtr& a,
                                        const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> BoolAnd(const cstore::BatPtr& a,
                                         const cstore::BatPtr& b) override;
  common::Result<cstore::BatPtr> IfThenElseConst(const cstore::BatPtr& cond,
                                                 const cstore::BatPtr& then_vals,
                                                 double else_val) override;
  common::Result<cstore::BatPtr> Year(const cstore::BatPtr& col) override;
  common::Result<cstore::BatPtr> CastToFloat(const cstore::BatPtr& col) override;

 private:
  /// Number of fragments for an `n`-row input: every device gets one while
  /// there are rows to go around.
  int PartsFor(std::size_t n) const;

  /// Runs `part(i)` for fragments 0..parts-1 (fragment i on device i),
  /// concurrently on the host thread pool, measuring each device's
  /// virtual-time delta, then bills the makespan of the fragment set onto
  /// the session clock (the section's real host time is deducted — the
  /// fragments are modeled as concurrent on the devices). On error the
  /// lowest-index failing fragment's status is returned.
  common::Status RunPartitioned(int parts,
                                const std::function<common::Status(int)>& part);

  /// Element-wise operator skeleton: slices every BAT in `inputs` by rows,
  /// applies `op` per fragment, concatenates the fragment results.
  common::Result<cstore::BatPtr> ElementWise(
      const std::vector<cstore::BatPtr>& inputs,
      const std::function<common::Result<cstore::BatPtr>(
          OcelotEngine*, const std::vector<cstore::BatPtr>&)>& op);

  /// Left-fragment join skeleton shared by HashJoin/ThetaJoin.
  common::Result<cstore::JoinResult> LeftFragmentJoin(
      const cstore::BatPtr& left,
      const std::function<common::Result<cstore::JoinResult>(
          OcelotEngine*, const cstore::BatPtr&)>& op);

  /// Left-fragment semi/anti join skeleton (oid-list results).
  common::Result<cstore::BatPtr> LeftFragmentFilter(
      const cstore::BatPtr& left,
      const std::function<common::Result<cstore::BatPtr>(
          OcelotEngine*, const cstore::BatPtr&)>& op);

  /// Grouped-aggregate skeleton: slices (vals, groups) by rows, computes an
  /// `ngroups`-sized partial per device, merges with `merge`.
  common::Result<cstore::BatPtr> PartitionedSubAgg(
      const cstore::BatPtr& vals, const cstore::BatPtr& groups, std::size_t ngroups,
      const std::function<common::Result<cstore::BatPtr>(
          OcelotEngine*, const cstore::BatPtr&, const cstore::BatPtr&)>& op,
      const std::function<void(cstore::BatPtr&, const cstore::BatPtr&)>& merge);

  /// Scalar-aggregate skeleton (Sum/Min/Max).
  common::Result<double> PartitionedReduce(
      const cstore::BatPtr& col,
      const std::function<common::Result<double>(OcelotEngine*,
                                                 const cstore::BatPtr&)>& op,
      const std::function<double(double, double)>& merge);

  /// Syncs a fragment result back to the host through device `i`'s engine.
  common::Status SyncPart(int i, const cstore::BatPtr& bat);

  ocl::Context* ctx_;
  common::VirtualClock clock_;
  std::vector<std::unique_ptr<OcelotEngine>> engines_;
};

}  // namespace ocelot

#endif  // OCELOT_OCELOT_SCHEDULER_H_
