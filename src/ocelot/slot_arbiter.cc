#include "ocelot/slot_arbiter.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace ocelot {

namespace {

int DefaultLeasesPerSlot() {
  if (const char* env = std::getenv("OCELOT_SLOT_LEASES")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 4;
}

}  // namespace

SlotArbiter::SlotArbiter(int slots, int leases_per_slot)
    : leases_per_slot_(leases_per_slot >= 1 ? leases_per_slot
                                            : DefaultLeasesPerSlot()) {
  OCELOT_CHECK(slots >= 1) << "arbiter needs at least one slot";
  free_.assign(static_cast<std::size_t>(slots), leases_per_slot_);
}

void SlotArbiter::Lease::Release() {
  if (arbiter_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(arbiter_->mu_);
    for (int s : slots_) arbiter_->free_[static_cast<std::size_t>(s)] += 1;
    arbiter_->Pump();
  }
  arbiter_->cv_.notify_all();
  arbiter_ = nullptr;
}

void SlotArbiter::Pump() {
  // Scan waiters in arrival order. An older request that cannot run yet
  // *reserves* its slots: no younger request touching them may overtake it.
  // Younger requests on disjoint slots are granted in the same pass.
  std::vector<char> reserved(free_.size(), 0);
  for (Request* req : waiting_) {
    bool runnable = true;
    for (int s : *req->slots) {
      auto idx = static_cast<std::size_t>(s);
      if (free_[idx] == 0 || reserved[idx]) {
        runnable = false;
        break;
      }
    }
    if (runnable) {
      for (int s : *req->slots) free_[static_cast<std::size_t>(s)] -= 1;
      req->granted = true;
      grants_ += 1;
    } else {
      for (int s : *req->slots) reserved[static_cast<std::size_t>(s)] = 1;
    }
  }
  waiting_.erase(std::remove_if(waiting_.begin(), waiting_.end(),
                                [](const Request* r) { return r->granted; }),
                 waiting_.end());
}

SlotArbiter::Lease SlotArbiter::Acquire(const std::vector<int>& slots) {
  if (slots.empty()) return Lease();
  for (int s : slots) {
    OCELOT_CHECK(s >= 0 && s < this->slots()) << "slot id " << s;
  }
  Request req;
  req.slots = &slots;
  std::unique_lock<std::mutex> lock(mu_);
  waiting_.push_back(&req);
  Pump();
  if (!req.granted) {
    contended_ += 1;
    cv_.wait(lock, [&] { return req.granted; });
  }
  return Lease(this, slots);
}

std::uint64_t SlotArbiter::contended_acquires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contended_;
}

std::uint64_t SlotArbiter::grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}

}  // namespace ocelot
