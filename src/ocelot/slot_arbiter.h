#ifndef OCELOT_OCELOT_SLOT_ARBITER_H_
#define OCELOT_OCELOT_SLOT_ARBITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ocelot {

/// Arbitrates the machine's *physical* device slots between concurrent
/// sessions. Every session's ocl::Context simulates its own private device
/// set, but the machine those contexts model has one CPU and one GPU: when
/// mal::QueryService runs N sessions at once, their schedulers must not
/// pretend N disjoint machines exist. The arbiter leases slot capacity to
/// sessions per *operator batch* — a Scheduler acquires the slots of its
/// partition plan right before launching the fragments and releases them at
/// the merge — so a heavy query holds devices for one operator at a time,
/// never for its whole runtime.
///
/// Capacity model: each physical slot has `leases_per_slot` concurrent
/// lease units — the multiplexing depth of a real device driver's command
/// queues (several host contexts can feed one device; the driver interleaves
/// them). `leases_per_slot = 1` models strictly exclusive devices and is
/// what the starvation tests pin; the default (OCELOT_SLOT_LEASES, else 4)
/// lets sessions share a device the way concurrent OpenCL contexts do.
/// Virtual time is unaffected either way: each session bills modeled device
/// durations onto its own clocks, and lease *waiting* happens inside the
/// window the Scheduler deducts as unbilled host time — contention changes
/// wall-clock throughput, never a query's virtual metrics or results.
///
/// Fairness: strict arrival order per slot. A request blocks while any
/// *older* waiting request needs one of its slots, even if enough units are
/// free right now — bypassing would let a stream of small queries starve a
/// gang request for the full device set. Disjoint requests overtake freely.
/// Because leases are per-operator-batch, a heavy query re-enters the queue
/// behind everyone who arrived while it ran, so no session can starve the
/// pool by re-acquiring in a loop.
class SlotArbiter {
 public:
  /// `slots` physical device slots with `leases_per_slot` concurrent lease
  /// units each; `leases_per_slot <= 0` reads OCELOT_SLOT_LEASES (default 4).
  explicit SlotArbiter(int slots, int leases_per_slot = 0);

  SlotArbiter(const SlotArbiter&) = delete;
  SlotArbiter& operator=(const SlotArbiter&) = delete;

  /// A held lease; releases its slot units on destruction. Movable so
  /// Acquire can return it; an empty lease (default) releases nothing.
  class Lease {
   public:
    Lease() = default;
    Lease(SlotArbiter* arbiter, std::vector<int> slots)
        : arbiter_(arbiter), slots_(std::move(slots)) {}
    Lease(Lease&& o) noexcept : arbiter_(o.arbiter_), slots_(std::move(o.slots_)) {
      o.arbiter_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Release();
        arbiter_ = o.arbiter_;
        slots_ = std::move(o.slots_);
        o.arbiter_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    bool held() const { return arbiter_ != nullptr; }
    void Release();

   private:
    SlotArbiter* arbiter_ = nullptr;
    std::vector<int> slots_;
  };

  /// Blocks until one lease unit of *every* slot in `slots` is held by the
  /// caller (all-or-nothing: fragment batches run on their full plan device
  /// set, so partial grants would deadlock two half-granted schedulers).
  /// Slot ids must be distinct and < slots(). Granted in arrival order per
  /// slot (see class comment).
  Lease Acquire(const std::vector<int>& slots);

  int slots() const { return static_cast<int>(free_.size()); }
  int leases_per_slot() const { return leases_per_slot_; }

  /// Total Acquire calls that could not be granted immediately and had to
  /// queue (tests assert contention actually occurred / didn't).
  std::uint64_t contended_acquires() const;
  /// Total leases granted so far.
  std::uint64_t grants() const;

 private:
  struct Request {
    const std::vector<int>* slots;
    bool granted = false;
  };

  /// Grants every grantable waiting request in arrival order; called with
  /// mu_ held after any release or enqueue.
  void Pump();

  const int leases_per_slot_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> free_;            ///< free lease units per slot
  std::vector<Request*> waiting_;    ///< arrival order
  std::uint64_t contended_ = 0;
  std::uint64_t grants_ = 0;
};

}  // namespace ocelot

#endif  // OCELOT_OCELOT_SLOT_ARBITER_H_
