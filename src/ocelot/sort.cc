// OcelotEngine: LSD binary radix sort (paper 4.1.3, after Helluy [22] and
// Satish et al. [31,32]): per-work-group histograms of the current radix, a
// prefix sum over the bucket-major histogram matrix to obtain global write
// offsets, and a stable reorder — repeated until the whole 32-bit key is
// consumed. The radix width is a device preference: 8 bits on the CPU, 4 on
// the GPU.

#include <bit>

#include "ocelot/engine.h"
#include "ocelot/internal.h"
#include "ocelot/scan.h"

namespace ocelot {

using common::Result;
using common::Status;
using cstore::Bat;
using cstore::BatPtr;
using cstore::oid_t;
using cstore::SortResult;
using cstore::ValType;

namespace {

/// Order-preserving map to uint32: flip the sign bit for two's-complement
/// ints; the standard IEEE-754 trick for floats (negatives reversed); oids
/// pass through. This also sorts nil first (int nil = INT_MIN; float nil =
/// NaN maps below -inf only for the negative-NaN pattern we emit).
std::uint32_t OrderedBits(ValType type, std::uint32_t raw) {
  switch (type) {
    case ValType::kInt:
      return raw ^ 0x80000000u;
    case ValType::kFloat:
      // Treat NaN (nil) as the smallest key, like the baseline engines.
      if (((raw >> 23) & 0xffu) == 0xffu && (raw & 0x7fffffu) != 0) return 0;
      return (raw & 0x80000000u) ? ~raw : raw | 0x80000000u;
    case ValType::kOid:
      return raw;
  }
  return raw;
}

}  // namespace

Result<SortResult> OcelotEngine::Sort(const BatPtr& col) {
  if (col == nullptr) return Status::InvalidArgument("sort input is null");
  std::size_t n = col->size();
  const ocl::DeviceModel& model = ctx_->device()->model();
  int radix_bits = model.radix_bits;
  int passes = 32 / radix_bits;
  std::size_t buckets = std::size_t{1} << radix_bits;
  std::size_t groups = static_cast<std::size_t>(model.default_groups());

  MemoryManager::OpScope scope(&mm_);
  ocl::EventList waits;
  ASSIGN_OR_RETURN(ocl::BufferPtr col_buf, mm_.AcquireRead(&scope, col, &waits));
  ASSIGN_OR_RETURN(ocl::BufferPtr keys_a, mm_.AllocScratch(std::max<std::size_t>(n, 1) * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr keys_b, mm_.AllocScratch(std::max<std::size_t>(n, 1) * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr pay_a, mm_.AllocScratch(std::max<std::size_t>(n, 1) * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr pay_b, mm_.AllocScratch(std::max<std::size_t>(n, 1) * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr hist, mm_.AllocScratch(buckets * groups * 4));
  ASSIGN_OR_RETURN(ocl::BufferPtr offsets, mm_.AllocScratch((buckets * groups + 1) * 4));

  // Pass 0 preparation: order-preserving key transform plus identity payload.
  ValType type = col->type();
  ocl::KernelLaunch kt;
  kt.name = "radix_transform";
  kt.body = [col_buf, keys_a, pay_a, n, type](ocl::WorkGroup& wg) {
    auto src = col_buf->Span<const std::uint32_t>();
    auto keys = keys_a->Span<std::uint32_t>();
    auto pay = pay_a->Span<std::uint32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t i : wg.UnitsFor(item, n)) {
        keys[i] = OrderedBits(type, src[i]);
        pay[i] = static_cast<std::uint32_t>(i);
      }
    }
  };
  ocl::EventPtr ev = ctx_->queue()->EnqueueKernel(std::move(kt), waits);
  mm_.AddConsumer(col, ev);

  ocl::BufferPtr src_keys = keys_a, dst_keys = keys_b;
  ocl::BufferPtr src_pay = pay_a, dst_pay = pay_b;
  for (int pass = 0; pass < passes; ++pass) {
    int shift = pass * radix_bits;
    std::uint32_t mask = static_cast<std::uint32_t>(buckets - 1);

    // Per-work-group histogram of the current radix, stored bucket-major
    // (hist[b * groups + g]) so the following scan directly yields the
    // global offset of (bucket, group).
    ocl::KernelLaunch kh;
    kh.name = "radix_histogram";
    ocl::BufferPtr sk = src_keys;
    kh.body = [sk, hist, n, shift, mask, buckets, groups](ocl::WorkGroup& wg) {
      auto keys = sk->Span<const std::uint32_t>();
      auto h = hist->Span<std::uint32_t>();
      auto local_hist = wg.local().Alloc<std::uint32_t>(buckets);
      for (std::uint64_t i : wg.GroupUnits(n)) {
        local_hist[(keys[i] >> shift) & mask] += 1;
      }
      wg.CountLocalAtomics(wg.GroupUnits(n).size(), buckets);
      std::size_t g = static_cast<std::size_t>(wg.group_id());
      for (std::size_t b = 0; b < buckets; ++b) h[b * groups + g] = local_hist[b];
    };
    ocl::EventPtr eh = ctx_->queue()->EnqueueKernel(std::move(kh), {ev});

    ASSIGN_OR_RETURN(
        ocl::EventPtr es,
        EnqueueExclusiveScan(&mm_, hist, offsets, buckets * groups, {eh}));

    // Stable reorder: each work-group walks its chunk in order and scatters
    // at its private offset column.
    ocl::KernelLaunch kr;
    kr.name = "radix_scatter";
    ocl::BufferPtr sp = src_pay, dk = dst_keys, dp = dst_pay;
    kr.body = [sk, sp, dk, dp, offsets, n, shift, mask, buckets,
               groups](ocl::WorkGroup& wg) {
      auto keys = sk->Span<const std::uint32_t>();
      auto pay = sp->Span<const std::uint32_t>();
      auto okeys = dk->Span<std::uint32_t>();
      auto opay = dp->Span<std::uint32_t>();
      auto offs = offsets->Span<const std::uint32_t>();
      auto local_offs = wg.local().Alloc<std::uint32_t>(buckets);
      std::size_t g = static_cast<std::size_t>(wg.group_id());
      for (std::size_t b = 0; b < buckets; ++b) local_offs[b] = offs[b * groups + g];
      for (std::uint64_t i : wg.GroupUnits(n)) {
        std::uint32_t b = (keys[i] >> shift) & mask;
        std::uint32_t at = local_offs[b]++;
        okeys[at] = keys[i];
        opay[at] = pay[i];
      }
    };
    ev = ctx_->queue()->EnqueueKernel(std::move(kr), {es});
    std::swap(src_keys, dst_keys);
    std::swap(src_pay, dst_pay);
  }

  // The payload is the order; copy it into the result BAT and gather the
  // values through the projection operator.
  SortResult res;
  res.order = Bat::MakeOid(n);
  ASSIGN_OR_RETURN(ocl::BufferPtr order_buf, mm_.AcquireWrite(&scope, res.order));
  ocl::KernelLaunch kcopy;
  kcopy.name = "radix_emit_order";
  ocl::BufferPtr final_pay = src_pay;
  kcopy.body = [final_pay, order_buf, n](ocl::WorkGroup& wg) {
    auto src = final_pay->Span<const std::uint32_t>();
    auto dst = order_buf->Span<std::uint32_t>();
    for (int item = 0; item < wg.local_size(); ++item) {
      for (std::uint64_t i : wg.UnitsFor(item, n)) dst[i] = src[i];
    }
  };
  ocl::EventPtr ec = ctx_->queue()->EnqueueKernel(std::move(kcopy), {ev});
  mm_.SetProducer(res.order, ec);

  ASSIGN_OR_RETURN(res.values, Project(res.order, col));
  cstore::FinalizeSortProperties(&res, col);
  return res;
}

}  // namespace ocelot
