#ifndef OCELOT_OCL_BUFFER_H_
#define OCELOT_OCL_BUFFER_H_

#include <cstddef>
#include <memory>
#include <span>

#include "common/logging.h"

namespace ocl {

class Device;

/// Device-resident memory, the cl_mem analogue.
///
/// On unified-memory devices a Buffer may wrap a host heap zero-copy (the
/// paper's "on the CPU this is a zero-copy operation", section 3.3); on
/// discrete devices it owns a separate allocation charged against the
/// device's modeled capacity, and data moves via CommandQueue transfers.
class Buffer {
 public:
  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::size_t bytes() const { return bytes_; }
  bool owns_storage() const { return owned_; }
  Device* device() const { return device_; }

  void* data() { return data_; }
  const void* data() const { return data_; }

  /// Typed view over the device storage; kernels read/write through this.
  template <typename T>
  std::span<T> Span() {
    return {static_cast<T*>(data_), bytes_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> Span() const {
    return {static_cast<const T*>(data_), bytes_ / sizeof(T)};
  }

 private:
  friend class Device;
  Buffer(Device* device, void* data, std::size_t bytes, bool owned)
      : device_(device), data_(data), bytes_(bytes), owned_(owned) {}

  Device* device_;
  void* data_;
  std::size_t bytes_;
  bool owned_;
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace ocl

#endif  // OCELOT_OCL_BUFFER_H_
