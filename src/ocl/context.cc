#include "ocl/context.h"

namespace ocl {

std::vector<DeviceModel> AvailableDevices() {
  return {XeonE5620Model(), Gtx460Model()};
}

}  // namespace ocl
