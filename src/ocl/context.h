#ifndef OCELOT_OCL_CONTEXT_H_
#define OCELOT_OCL_CONTEXT_H_

#include <memory>
#include <vector>

#include "common/vclock.h"
#include "ocl/device.h"
#include "ocl/queue.h"

namespace ocl {

/// An OpenCLite context: one device, its command queue, and the virtual
/// clock that splices modeled device time into the engine's measurements.
/// Mirrors the (context, device, queue) triple every OpenCL host program
/// sets up; Ocelot's "OpenCL Context Management" component (paper Fig. 2)
/// wraps exactly this.
class Context {
 public:
  static std::unique_ptr<Context> Create(DeviceModel model) {
    return std::unique_ptr<Context>(new Context(std::move(model)));
  }

  Device* device() { return &device_; }
  CommandQueue* queue() { return &queue_; }
  common::VirtualClock* clock() { return &clock_; }

 private:
  explicit Context(DeviceModel model)
      : device_(std::move(model)), queue_(&device_, &clock_) {}

  common::VirtualClock clock_;
  Device device_;
  CommandQueue queue_;
};

/// Device discovery, mirroring clGetPlatformIDs/clGetDeviceIDs: the models
/// available on this "machine" (the paper's testbed).
std::vector<DeviceModel> AvailableDevices();

}  // namespace ocl

#endif  // OCELOT_OCL_CONTEXT_H_
