#ifndef OCELOT_OCL_CONTEXT_H_
#define OCELOT_OCL_CONTEXT_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/vclock.h"
#include "ocl/device.h"
#include "ocl/fault.h"
#include "ocl/queue.h"

namespace ocl {

/// One device slot of a context: the device, its command queue, and the
/// virtual clock that splices this device's modeled time into the engine's
/// measurements. Mirrors the (device, queue) pair every OpenCL host program
/// sets up per device of a context; engine code binds to exactly one slot
/// and never needs to know about its siblings.
class DeviceContext {
 public:
  /// `slot_index` is this device's position in the owning Context — the
  /// identity OCELOT_FAULT_SPEC `dev=<index>` rules match on. The fault
  /// schedule (test override or environment) is captured at construction,
  /// so one context sees one consistent schedule for its whole lifetime.
  explicit DeviceContext(DeviceModel model, int slot_index = 0)
      : injector_(slot_index, model.type, FaultSpec::Active()),
        device_(std::move(model)),
        queue_(&device_, &clock_) {
    queue_.set_fault_injector(&injector_);
    device_.set_fault_injector(&injector_);
  }

  DeviceContext(const DeviceContext&) = delete;
  DeviceContext& operator=(const DeviceContext&) = delete;

  Device* device() { return &device_; }
  CommandQueue* queue() { return &queue_; }
  common::VirtualClock* clock() { return &clock_; }
  FaultInjector* fault_injector() { return &injector_; }

 private:
  common::VirtualClock clock_;
  FaultInjector injector_;
  Device device_;
  CommandQueue queue_;
};

/// An OpenCLite context: a *set* of devices, each with its own command queue
/// and virtual clock. Mirrors clCreateContext over several device ids;
/// Ocelot's "OpenCL Context Management" component (paper Fig. 2) wraps
/// exactly this. Single-device contexts behave exactly as before through the
/// primary-slot accessors; the multi-device form feeds ocelot::Scheduler,
/// which partitions operator inputs across the slots.
class Context {
 public:
  /// Single-device context (the paper's configurations).
  static std::unique_ptr<Context> Create(DeviceModel model) {
    std::vector<DeviceModel> models;
    models.push_back(std::move(model));
    return Create(std::move(models));
  }

  /// Multi-device context, e.g. Create(AvailableDevices()).
  static std::unique_ptr<Context> Create(std::vector<DeviceModel> models) {
    return std::unique_ptr<Context>(new Context(std::move(models)));
  }

  int device_count() const { return static_cast<int>(slots_.size()); }

  /// Slot `i`'s bundled (device, queue, clock) triple.
  DeviceContext* at(int i) {
    OCELOT_CHECK(i >= 0 && i < device_count()) << "device index " << i;
    return slots_[static_cast<std::size_t>(i)].get();
  }

  // Primary-slot accessors: a single-device context is used exactly like the
  // historical one-device Context through these.
  Device* device(int i = 0) { return at(i)->device(); }
  CommandQueue* queue(int i = 0) { return at(i)->queue(); }
  common::VirtualClock* clock() { return at(0)->clock(); }

  /// Drains every device's queue and advances each slot clock to idle
  /// (clFinish over the whole context). Returns the first slot's fault if
  /// any queue had failed work pending (and clears all of them).
  common::Status FinishAll() {
    common::Status first;
    for (auto& slot : slots_) {
      common::Status st = slot->queue()->Finish();
      if (first.ok() && !st.ok()) first = std::move(st);
    }
    return first;
  }

 private:
  explicit Context(std::vector<DeviceModel> models) {
    OCELOT_CHECK(!models.empty()) << "context needs at least one device";
    slots_.reserve(models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
      slots_.push_back(std::make_unique<DeviceContext>(std::move(models[i]),
                                                       static_cast<int>(i)));
    }
  }

  std::vector<std::unique_ptr<DeviceContext>> slots_;
};

/// Device discovery, mirroring clGetPlatformIDs/clGetDeviceIDs: the models
/// available on this "machine" (the paper's testbed).
std::vector<DeviceModel> AvailableDevices();

}  // namespace ocl

#endif  // OCELOT_OCL_CONTEXT_H_
