#include "ocl/device.h"

#include <algorithm>

#include "common/aligned.h"
#include "ocl/buffer.h"
#include "ocl/fault.h"

namespace ocl {

DeviceModel XeonE5620Model() {
  DeviceModel m;
  m.name = "Intel Xeon E5620 (Intel OpenCL SDK 2013 beta)";
  m.type = DeviceType::kCpu;
  m.compute_cores = 4;
  m.units_per_core = 2;  // two HW threads per core
  // The beta Intel SDK's generated code trails hand-written C by ~30%
  // (paper 5.2.3 observes exactly this gap on the aggregation kernel).
  m.group_time_scale = 1.30;
  m.kernel_launch_overhead = 2'000'000;  // 2 ms; ~ the 1 s/query intercept of Fig 7d
  m.kernel_compile_cost = 30'000'000;    // 30 ms JIT per kernel, cached afterwards
  m.atomic_op_ns = 10.0;
  m.atomic_contention_ns = 90.0;  // cacheline ping-pong between cores
  m.local_atomic_ns = 2.0;        // "local" is L2-resident on the CPU
  m.local_atomic_contention_ns = 20.0;
  m.unified_memory = true;
  m.global_mem_bytes = 0;  // unified: not capacity-limited
  m.local_mem_bytes = 256 * 1024;  // "local" maps onto L2 (paper 2.3)
  m.transfer_gbps = 0.0;
  m.transfer_latency = 0;
  m.radix_bits = 8;
  m.access = AccessPattern::kSequentialPerThread;
  return m;
}

DeviceModel Gtx460Model() {
  DeviceModel m;
  m.name = "NVIDIA GTX460 (GF104)";
  m.type = DeviceType::kGpu;
  m.compute_cores = 7;    // multiprocessors
  m.units_per_core = 48;  // lanes per multiprocessor
  // One GF104 multiprocessor sustains roughly 2.9x the throughput of one
  // host core on the bandwidth-bound kernels this engine runs (GDDR5 at
  // ~115 GB/s shared by 7 SMs vs ~8 GB/s for one Xeon core).
  m.group_time_scale = 0.35;
  m.kernel_launch_overhead = 30'000;  // 30 us driver dispatch
  m.kernel_compile_cost = 15'000'000;
  m.atomic_op_ns = 2.0;
  m.atomic_contention_ns = 6.0;  // hardware atomics near the L2 slices
  m.local_atomic_ns = 0.5;       // on-chip shared memory atomics
  m.local_atomic_contention_ns = 4.0;
  m.unified_memory = false;
  m.global_mem_bytes = 2ull << 30;  // 2 GB
  m.local_mem_bytes = 48 * 1024;
  m.transfer_gbps = 5.0;          // effective PCIe 2.0 x16
  m.transfer_latency = 20'000;    // 20 us DMA setup
  m.radix_bits = 4;
  m.access = AccessPattern::kCoalesced;
  return m;
}

Device::Device(DeviceModel model)
    : model_(std::move(model)),
      compute_(model_.compute_cores),
      transfer_(1),
      driver_(1) {}

common::Result<BufferPtr> Device::Allocate(std::size_t bytes) {
  if (injector_ != nullptr) {
    common::Status injected =
        injector_->OnOp(FaultOp::kAlloc, std::to_string(bytes) + "B");
    if (!injected.ok()) return injected;
  }
  if (capacity_bytes() != 0 && allocated_bytes_ + bytes > capacity_bytes()) {
    return common::Status::ResourceExhausted(
        "device memory: need " + std::to_string(bytes) + "B, " +
        std::to_string(capacity_bytes() - allocated_bytes_) + "B free on " + name());
  }
  void* data = common::AlignedAlloc(bytes);
  allocated_bytes_ += bytes;
  return BufferPtr(new Buffer(this, data, bytes, /*owned=*/true));
}

common::Result<BufferPtr> Device::WrapHost(void* data, std::size_t bytes) {
  if (!model_.unified_memory) {
    return common::Status::InvalidArgument(
        "zero-copy host wrapping requires unified memory (" + name() + ")");
  }
  return BufferPtr(new Buffer(this, data, bytes, /*owned=*/false));
}

void Device::Release(std::size_t bytes) {
  OCELOT_CHECK_LE(bytes, allocated_bytes_);
  allocated_bytes_ -= bytes;
}

Nanos Device::TransferDuration(std::size_t bytes) const {
  if (model_.unified_memory) return 0;
  double ns = static_cast<double>(bytes) / model_.transfer_gbps;  // B/ (GB/s) == ns
  return model_.transfer_latency + static_cast<Nanos>(ns);
}

namespace {

Nanos ContentionCost(std::uint64_t atomic_ops, std::uint64_t distinct_addresses,
                     double base_ns, double contention_ns, double lanes) {
  if (atomic_ops == 0) return 0;
  // ~16 four-byte slots share a cache line; conflicts are per-line.
  double lines = std::max<double>(1.0, static_cast<double>(distinct_addresses) / 16.0);
  double conflict_prob = lanes / (lanes + lines);
  double per_op = base_ns + contention_ns * conflict_prob;
  return static_cast<Nanos>(per_op * static_cast<double>(atomic_ops));
}

}  // namespace

Nanos Device::AtomicPenalty(std::uint64_t atomic_ops,
                            std::uint64_t distinct_addresses) const {
  return ContentionCost(atomic_ops, distinct_addresses, model_.atomic_op_ns,
                        model_.atomic_contention_ns,
                        static_cast<double>(model_.total_lanes()));
}

Nanos Device::LocalAtomicPenalty(std::uint64_t atomic_ops,
                                 std::uint64_t distinct_addresses) const {
  // Local memory is shared within one work-group: only that group's lanes
  // contend.
  return ContentionCost(atomic_ops, distinct_addresses, model_.local_atomic_ns,
                        model_.local_atomic_contention_ns,
                        static_cast<double>(model_.default_local_size()));
}

Buffer::~Buffer() {
  if (owned_) {
    common::AlignedFree(data_);
    device_->Release(bytes_);
  }
}

}  // namespace ocl
