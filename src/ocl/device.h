#ifndef OCELOT_OCL_DEVICE_H_
#define OCELOT_OCL_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timeline.h"

namespace ocl {

using common::Nanos;

/// Kind of compute device, mirroring CL_DEVICE_TYPE_{CPU,GPU}.
enum class DeviceType { kCpu, kGpu };

/// Preferred global-memory access pattern of a device (paper section 4.2):
/// CPUs want each thread to walk a contiguous block (prefetch-friendly),
/// GPUs want neighboring threads to touch neighboring addresses (coalesced).
/// OpenCLite injects this as a build constant into every kernel, exactly as
/// Ocelot injects a pre-processor constant at kernel build time.
enum class AccessPattern { kSequentialPerThread, kCoalesced };

/// Calibrated performance model of one device.
///
/// OpenCLite executes kernels on the host for result correctness and uses
/// this model to compute *virtual* runtimes (DESIGN.md section 2). The two
/// presets below mirror the paper's testbed: a 4-core Intel Xeon E5620
/// driven by the (beta) Intel OpenCL SDK, and an NVIDIA GTX460 (GF104,
/// 7 multiprocessors x 48 lanes, 2 GB GDDR on PCIe 2.0 x16).
struct DeviceModel {
  std::string name;
  DeviceType type = DeviceType::kCpu;

  /// nc: independent schedulable cores (CPU cores / GPU multiprocessors).
  int compute_cores = 1;
  /// na: compute units per core; the default work-group size is 4*na.
  int units_per_core = 1;

  /// Multiplier turning measured single-host-core work-group time into this
  /// device's per-core virtual time. >1 models framework inefficiency (the
  /// beta Intel SDK), <1 models a wider/faster core (a GPU multiprocessor).
  double group_time_scale = 1.0;

  /// Fixed virtual cost charged per kernel launch (driver dispatch).
  Nanos kernel_launch_overhead = 0;
  /// One-time virtual cost per distinct kernel per device (JIT compilation).
  Nanos kernel_compile_cost = 0;

  /// Modeled extra cost of one global atomic operation...
  double atomic_op_ns = 0.0;
  /// ...plus this much when it conflicts; the conflict probability is
  /// min(1, lanes / (distinct_addresses / slots_per_cacheline)) — few hot
  /// addresses under many hardware lanes ping-pong cache lines.
  double atomic_contention_ns = 0.0;
  /// Atomics on work-group local memory (the grouped aggregation tables of
  /// paper 4.1.7): far cheaper, but still contended when few accumulators
  /// serve many lanes — which is exactly why Ocelot spreads each group over
  /// multiple accumulators.
  double local_atomic_ns = 0.0;
  double local_atomic_contention_ns = 0.0;

  /// True when the device operates directly on host memory (zero-copy BATs).
  bool unified_memory = true;
  std::size_t global_mem_bytes = 0;  ///< device cache capacity for buffers
  std::size_t local_mem_bytes = 48 * 1024;

  double transfer_gbps = 0.0;     ///< host<->device copy bandwidth
  Nanos transfer_latency = 0;     ///< per-transfer fixed cost (DMA setup)

  /// Preferred radix width for the radix sort (paper 4.1.3: 8 on CPU, 4 on GPU).
  int radix_bits = 8;
  AccessPattern access = AccessPattern::kSequentialPerThread;

  int total_lanes() const { return compute_cores * units_per_core; }

  /// Model-derived relative throughput prior for multi-device work division
  /// before any calibration has happened: the modeled per-core time of a
  /// work-group is (measured host time x group_time_scale), and compute_cores
  /// groups run concurrently, so sustained row throughput is proportional to
  /// compute_cores / group_time_scale. Dimensionless — only ratios between
  /// devices matter (ocelot::Scheduler's throughput tracker scales it into
  /// its observed-EWMA units for devices it has not yet calibrated).
  double partition_weight() const {
    if (group_time_scale <= 0) return static_cast<double>(compute_cores);
    return static_cast<double>(compute_cores) / group_time_scale;
  }
  /// Default work-group geometry of the paper's scheduling strategy (4.2):
  /// one work-group per core, each of size 4*na.
  int default_groups() const { return compute_cores; }
  int default_local_size() const { return 4 * units_per_core; }
};

/// The paper's CPU: Intel Xeon E5620, 4 cores (8 HW threads), 12 MB cache,
/// driven by Intel's OpenCL SDK 2013 XE Beta (whose fixed per-launch overhead
/// the paper measures as a ~1 s per-query intercept in Fig. 7d).
DeviceModel XeonE5620Model();

/// The paper's GPU: NVIDIA GTX460 (GF104): 7 multiprocessors with 48 lanes,
/// 2 GB device memory behind PCIe 2.0 x16.
DeviceModel Gtx460Model();

class Buffer;
class FaultInjector;

/// A compute device: owns the virtual compute/transfer timelines and the
/// device-memory capacity accounting that the Ocelot memory manager relies
/// on for its cache/eviction decisions.
class Device {
 public:
  explicit Device(DeviceModel model);

  const DeviceModel& model() const { return model_; }
  const std::string& name() const { return model_.name; }

  /// Allocates device memory (128-byte aligned host storage standing in for
  /// the device heap). Fails with ResourceExhausted when the modeled device
  /// capacity would be exceeded — the signal the memory manager's eviction
  /// policy reacts to.
  common::Result<std::shared_ptr<Buffer>> Allocate(std::size_t bytes);

  /// Wraps host memory zero-copy; only valid on unified-memory devices.
  common::Result<std::shared_ptr<Buffer>> WrapHost(void* data, std::size_t bytes);

  std::size_t allocated_bytes() const { return allocated_bytes_; }
  std::size_t capacity_bytes() const { return model_.global_mem_bytes; }

  common::Timeline& compute_timeline() { return compute_; }
  common::Timeline& transfer_timeline() { return transfer_; }
  /// Serializes per-launch driver costs (dispatch + JIT); the paper's Fig 7d
  /// CPU intercept is ~300 launches/query through this single lane.
  common::Timeline& driver_timeline() { return driver_; }

  /// Virtual duration of moving `bytes` across the host<->device link.
  Nanos TransferDuration(std::size_t bytes) const;

  /// Modeled penalty for `atomic_ops` global atomics spread over
  /// approximately `distinct_addresses` addresses (see DeviceModel).
  Nanos AtomicPenalty(std::uint64_t atomic_ops, std::uint64_t distinct_addresses) const;

  /// Same contention model with the (cheaper) local-memory atomic costs.
  Nanos LocalAtomicPenalty(std::uint64_t atomic_ops,
                           std::uint64_t distinct_addresses) const;

  /// Wires the fault decision point for allocation faults; owned by the
  /// DeviceContext. May be null (injection disabled).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  friend class Buffer;
  void Release(std::size_t bytes);

  DeviceModel model_;
  FaultInjector* injector_ = nullptr;
  std::size_t allocated_bytes_ = 0;
  common::Timeline compute_;
  common::Timeline transfer_;
  common::Timeline driver_;
};

}  // namespace ocl

#endif  // OCELOT_OCL_DEVICE_H_
