#ifndef OCELOT_OCL_EVENT_H_
#define OCELOT_OCL_EVENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/timeline.h"

namespace ocl {

/// Completion handle of one enqueued device operation (kernel or transfer),
/// mirroring cl_event. Ocelot's lazy evaluation model (paper section 3.4)
/// is built on these: operators only schedule work and thread events through
/// the memory manager's producer/consumer registries; nobody blocks until a
/// sync point.
class Event {
 public:
  enum class State { kQueued, kComplete, kFailed };

  explicit Event(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kFailed; }
  /// Terminal either way — the op will never execute again. Quiescence
  /// checks use this: a failed producer must not leave its entry "busy"
  /// forever (the memory manager would then drain queues from foreign
  /// threads trying to wait it out).
  bool settled() const { return state_ != State::kQueued; }

  /// Virtual-time profiling info, valid once complete (cf. OpenCL's
  /// CL_PROFILING_COMMAND_{QUEUED,START,END}).
  common::Nanos queued_time() const { return queued_; }
  common::Nanos start_time() const { return start_; }
  common::Nanos end_time() const { return end_; }
  common::Nanos duration() const { return end_ - start_; }

 private:
  friend class CommandQueue;
  void MarkQueued(common::Nanos t) { queued_ = t; }
  void MarkComplete(common::Nanos start, common::Nanos end) {
    start_ = start;
    end_ = end;
    state_ = State::kComplete;
  }
  void MarkFailed() {
    start_ = queued_;
    end_ = queued_;
    state_ = State::kFailed;
  }

  std::string label_;
  State state_ = State::kQueued;
  common::Nanos queued_ = 0;
  common::Nanos start_ = 0;
  common::Nanos end_ = 0;
};

using EventPtr = std::shared_ptr<Event>;
using EventList = std::vector<EventPtr>;

}  // namespace ocl

#endif  // OCELOT_OCL_EVENT_H_
