#include "ocl/fault.h"

#include <cstdlib>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace ocl {
namespace {

/// Test override: guarded because gtest main threads install it while
/// engine threads read it. `set` distinguishes "no override" (fall back to
/// the environment) from "override to empty" (injection off).
struct SpecOverride {
  std::mutex mu;
  bool set = false;
  std::string spec;
};

SpecOverride& Override() {
  static SpecOverride* o = new SpecOverride();
  return *o;
}

const char* OpName(FaultOp op) {
  switch (op) {
    case FaultOp::kKernel:
      return "kernel";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kAlloc:
      return "alloc";
  }
  return "?";
}

common::Status ParseError(const std::string& field, const std::string& why) {
  return common::Status::InvalidArgument("OCELOT_FAULT_SPEC field '" + field +
                                         "': " + why);
}

}  // namespace

common::Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  std::stringstream rules(text);
  std::string rule_text;
  while (std::getline(rules, rule_text, ';')) {
    if (rule_text.empty()) continue;
    FaultRule rule;
    bool any_op = false;
    bool seed_only = true;
    std::stringstream fields(rule_text);
    std::string field;
    while (std::getline(fields, field, ',')) {
      if (field.empty()) continue;
      std::size_t eq = field.find('=');
      if (eq == std::string::npos) return ParseError(field, "expected key=value");
      std::string key = field.substr(0, eq);
      std::string val = field.substr(eq + 1);
      if (key == "seed") {
        spec.seed = std::strtoull(val.c_str(), nullptr, 10);
        continue;
      }
      seed_only = false;
      if (key == "dev") {
        if (val == "*") {
          rule.dev_match = FaultRule::DevMatch::kAny;
        } else if (val == "cpu") {
          rule.dev_match = FaultRule::DevMatch::kType;
          rule.dev_type = DeviceType::kCpu;
        } else if (val == "gpu") {
          rule.dev_match = FaultRule::DevMatch::kType;
          rule.dev_type = DeviceType::kGpu;
        } else {
          char* end = nullptr;
          long idx = std::strtol(val.c_str(), &end, 10);
          if (end == val.c_str() || *end != '\0' || idx < 0) {
            return ParseError(field, "want index, cpu, gpu or *");
          }
          rule.dev_match = FaultRule::DevMatch::kIndex;
          rule.dev_index = static_cast<int>(idx);
        }
      } else if (key == "op") {
        if (val == "*") {
          for (bool& b : rule.ops) b = true;
        } else if (val == "kernel") {
          rule.ops[static_cast<int>(FaultOp::kKernel)] = true;
        } else if (val == "write") {
          rule.ops[static_cast<int>(FaultOp::kWrite)] = true;
        } else if (val == "read") {
          rule.ops[static_cast<int>(FaultOp::kRead)] = true;
        } else if (val == "transfer") {
          rule.ops[static_cast<int>(FaultOp::kWrite)] = true;
          rule.ops[static_cast<int>(FaultOp::kRead)] = true;
        } else if (val == "alloc") {
          rule.ops[static_cast<int>(FaultOp::kAlloc)] = true;
        } else {
          return ParseError(field, "want kernel, write, read, transfer, alloc or *");
        }
        any_op = true;
      } else if (key == "at") {
        rule.at = std::strtoll(val.c_str(), nullptr, 10);
        if (rule.at < 1) return ParseError(field, "want a 1-based op ordinal");
      } else if (key == "p") {
        rule.probability = std::strtod(val.c_str(), nullptr);
        if (rule.probability <= 0.0 || rule.probability > 1.0) {
          return ParseError(field, "want a probability in (0, 1]");
        }
      } else if (key == "mode") {
        if (val == "permanent") {
          rule.permanent = true;
        } else if (val == "transient") {
          rule.permanent = false;
        } else {
          return ParseError(field, "want transient or permanent");
        }
      } else if (key == "count") {
        rule.count = std::strtoll(val.c_str(), nullptr, 10);
        if (rule.count < 1) return ParseError(field, "want a positive cap");
      } else {
        return ParseError(field, "unknown key");
      }
    }
    if (seed_only) continue;  // a bare "seed=N" rule configures, not injects
    if (!any_op) {
      for (bool& b : rule.ops) b = true;
    }
    if (rule.at < 0 && rule.probability <= 0.0) {
      return ParseError(rule_text, "rule needs at=N or p=prob");
    }
    spec.rules.push_back(rule);
  }
  return spec;
}

FaultSpec FaultSpec::Active() {
  std::string text;
  {
    SpecOverride& o = Override();
    std::lock_guard<std::mutex> lock(o.mu);
    if (o.set) {
      text = o.spec;
    } else if (const char* env = std::getenv("OCELOT_FAULT_SPEC")) {
      text = env;
    }
  }
  if (text.empty()) return FaultSpec();
  auto parsed = Parse(text);
  OCELOT_CHECK(parsed.ok()) << parsed.status().ToString();
  FaultSpec spec = std::move(*parsed);
  if (spec.seed == 0) {
    if (const char* env = std::getenv("OCELOT_FAULT_SEED")) {
      spec.seed = std::strtoull(env, nullptr, 10);
    }
  }
  return spec;
}

void SetFaultSpecForTesting(const std::string& spec) {
  SpecOverride& o = Override();
  std::lock_guard<std::mutex> lock(o.mu);
  o.set = true;
  o.spec = spec;
}

void ClearFaultSpecForTesting() {
  SpecOverride& o = Override();
  std::lock_guard<std::mutex> lock(o.mu);
  o.set = false;
  o.spec.clear();
}

bool FaultInjectionActive() { return !FaultSpec::Active().empty(); }

FaultInjector::FaultInjector(int device_index, DeviceType device_type,
                             FaultSpec spec)
    : device_index_(device_index),
      device_type_(device_type),
      rng_(common::Mix64(spec.seed + 0x5eedfau) ^
           common::Mix64(static_cast<std::uint64_t>(device_index) + 1)) {
  for (const FaultRule& rule : spec.rules) {
    bool applies = false;
    switch (rule.dev_match) {
      case FaultRule::DevMatch::kAny:
        applies = true;
        break;
      case FaultRule::DevMatch::kIndex:
        applies = rule.dev_index == device_index;
        break;
      case FaultRule::DevMatch::kType:
        applies = rule.dev_type == device_type;
        break;
    }
    if (applies) rules_.push_back(RuleState{rule, 0, 0, false});
  }
}

bool FaultInjector::Fire(RuleState* rs) {
  const FaultRule& r = rs->rule;
  if (r.permanent && rs->tripped) return true;
  bool fire = false;
  if (r.at > 0) {
    fire = rs->matched == r.at;
  } else if (r.probability > 0.0) {
    fire = rng_.NextDouble() < r.probability;
  }
  if (!fire) return false;
  if (!r.permanent && r.count > 0 && rs->injected >= r.count) return false;
  if (r.permanent) rs->tripped = true;
  return true;
}

common::Status FaultInjector::OnOp(FaultOp op, const std::string& label) {
  if (rules_.empty()) return common::Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  for (RuleState& rs : rules_) {
    if (!rs.rule.ops[static_cast<int>(op)]) continue;
    rs.matched += 1;
    if (!Fire(&rs)) continue;
    rs.injected += 1;
    total_injected_ += 1;
    std::string msg = std::string("injected ") +
                      (rs.rule.permanent ? "permanent" : "transient") + " " +
                      OpName(op) + " fault on device " +
                      std::to_string(device_index_) + " (" +
                      (device_type_ == DeviceType::kGpu ? "gpu" : "cpu") +
                      ")" + (label.empty() ? "" : ": " + label);
    if (op == FaultOp::kAlloc) {
      return common::Status::ResourceExhausted(std::move(msg));
    }
    return common::Status::DeviceLost(std::move(msg));
  }
  return common::Status::Ok();
}

std::int64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

}  // namespace ocl
