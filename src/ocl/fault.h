#ifndef OCELOT_OCL_FAULT_H_
#define OCELOT_OCL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ocl/device.h"

namespace ocl {

/// The injectable operation kinds, matching the queue's PendingOp kinds plus
/// device-memory allocation.
enum class FaultOp { kKernel, kWrite, kRead, kAlloc };

/// One parsed rule of an OCELOT_FAULT_SPEC.
///
/// Grammar (rules separated by ';', fields by ','):
///
///   dev=<index|cpu|gpu|*>   which device slots the rule applies to
///   op=<kernel|write|read|transfer|alloc|*>   which operations
///   at=<N>                  scripted: fire on the Nth matching op (1-based)
///   p=<prob>                probabilistic: fire with probability per op
///   mode=<transient|permanent>   permanent rules keep failing once tripped
///   count=<N>               cap on injections for probabilistic transients
///   seed=<S>                global RNG seed (spec-wide; last one wins)
///
/// Example: "dev=gpu,op=kernel,at=3,mode=permanent" fails the GPU's third
/// kernel launch and every device op after it — a card falling off the bus.
struct FaultRule {
  enum class DevMatch { kAny, kIndex, kType };
  DevMatch dev_match = DevMatch::kAny;
  int dev_index = -1;
  DeviceType dev_type = DeviceType::kCpu;

  bool ops[4] = {false, false, false, false};  // indexed by FaultOp

  std::int64_t at = -1;      ///< fire on the Nth matching op; -1 = unused
  double probability = 0.0;  ///< fire with this probability; 0 = unused
  bool permanent = false;
  std::int64_t count = -1;   ///< max injections for transient rules; -1 = no cap
};

/// A full fault schedule: the parsed rules plus the global seed.
struct FaultSpec {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0;

  bool empty() const { return rules.empty(); }

  /// Parses the OCELOT_FAULT_SPEC grammar. Returns InvalidArgument with the
  /// offending field on malformed input.
  static common::Result<FaultSpec> Parse(const std::string& text);

  /// The active spec: the programmatic test override if one is installed,
  /// else OCELOT_FAULT_SPEC/OCELOT_FAULT_SEED from the environment, else an
  /// empty (injection disabled) spec. Malformed specs abort — a fault
  /// schedule that silently parses to nothing would turn a fault-matrix CI
  /// job into a no-op.
  static FaultSpec Active();
};

/// Installs a process-global fault spec that takes precedence over the
/// environment; tests use this instead of setenv (which races with getenv
/// under TSan). An empty string is itself an override — it suppresses
/// injection entirely even if OCELOT_FAULT_SPEC is set (fault-free golden
/// runs under a fault-matrix CI job rely on this). Use
/// ClearFaultSpecForTesting to fall back to the environment.
void SetFaultSpecForTesting(const std::string& spec);
void ClearFaultSpecForTesting();

/// True when any fault schedule is active (test override or environment).
/// Tests whose assertions assume fault-free execution — structural kernel
/// counts, copy accounting, calibration expectations, bit-identity across
/// fault-divergent retry histories — consult this to skip or relax under a
/// fault-matrix CI run.
bool FaultInjectionActive();

/// Per-device fault decision point. A DeviceContext owns one injector; the
/// command queue consults it per executed op and the device consults it per
/// allocation. Deterministic: the per-device RNG stream is seeded from the
/// spec seed and the device's slot index, so a (spec, seed) pair reproduces
/// the exact same fault schedule on every run — faults are part of the
/// simulation, not noise.
class FaultInjector {
 public:
  FaultInjector(int device_index, DeviceType device_type, FaultSpec spec);

  bool enabled() const { return !rules_.empty(); }

  /// Ok to proceed, or the Status the op must fail with: DeviceLost for
  /// kernel/transfer faults, ResourceExhausted for allocation faults.
  common::Status OnOp(FaultOp op, const std::string& label);

  /// Total injections so far (tests / telemetry).
  std::int64_t injected() const;

 private:
  struct RuleState {
    FaultRule rule;
    std::int64_t matched = 0;
    std::int64_t injected = 0;
    bool tripped = false;  ///< permanent rule has fired at least once
  };

  bool Fire(RuleState* rs);

  const int device_index_;
  const DeviceType device_type_;
  mutable std::mutex mu_;
  common::Rng rng_;
  std::vector<RuleState> rules_;
  std::int64_t total_injected_ = 0;
};

}  // namespace ocl

#endif  // OCELOT_OCL_FAULT_H_
