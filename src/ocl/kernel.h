#ifndef OCELOT_OCL_KERNEL_H_
#define OCELOT_OCL_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/logging.h"
#include "ocl/device.h"

namespace ocl {

/// Counters a kernel reports per work-group; they feed the device timing
/// model (atomics are the only operation whose cost differs qualitatively
/// between our devices — see DeviceModel::atomic_*).
struct KernelStats {
  std::uint64_t atomic_ops = 0;
  /// Approximate number of distinct addresses the atomics touch (e.g. the
  /// hash-table size or the group count); used for the contention model.
  std::uint64_t atomic_addresses = 0;
  /// Work-group-local-memory atomics (cheaper; see DeviceModel).
  std::uint64_t local_atomic_ops = 0;
  std::uint64_t local_atomic_addresses = 0;
};

/// Bump allocator over a work-group's local memory. Mirrors OpenCL
/// __local declarations; allocation beyond the device's local memory size
/// is a programming error (kernels must check capacity and fall back to
/// global memory, as the grouped aggregation of section 4.1.7 does).
class LocalArena {
 public:
  explicit LocalArena(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  void Reset() { used_ = 0; }

  /// Allocates `n` T's of zero-initialized local memory.
  template <typename T>
  std::span<T> Alloc(std::size_t n) {
    std::size_t aligned = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    std::size_t bytes = n * sizeof(T);
    OCELOT_CHECK_LE(aligned + bytes, capacity_)
        << "local memory overflow: kernel must fall back to global memory";
    T* ptr = reinterpret_cast<T*>(storage_.data() + aligned);
    used_ = aligned + bytes;
    std::fill(ptr, ptr + n, T{});
    return {ptr, n};
  }

 private:
  std::vector<std::byte, common::AlignedAllocator<std::byte>> storage_;
  std::size_t capacity_;
  std::size_t used_ = 0;
};

/// The half-open, strided set of data units assigned to one work-item.
/// Under kSequentialPerThread this is a contiguous block (step 1); under
/// kCoalesced the item starts at its global thread id and strides by the
/// total thread count, so neighboring items touch neighboring addresses.
struct UnitRange {
  std::uint64_t first = 0;
  std::uint64_t limit = 0;
  std::uint64_t step = 1;

  class Iterator {
   public:
    Iterator(std::uint64_t v, std::uint64_t step) : v_(v), step_(step) {}
    std::uint64_t operator*() const { return v_; }
    Iterator& operator++() {
      v_ += step_;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return v_ < o.v_; }

   private:
    std::uint64_t v_;
    std::uint64_t step_;
  };

  Iterator begin() const { return {first, step}; }
  Iterator end() const { return {limit, step}; }
  bool empty() const { return first >= limit; }
  std::uint64_t size() const {
    if (first >= limit) return 0;
    return (limit - first + step - 1) / step;
  }
};

/// Execution context of one work-group, the unit OpenCLite schedules onto a
/// virtual core (paper section 4.2: one work-group per core, 4*na items).
///
/// Work-items inside a group execute sequentially between barriers, so
/// kernels are written as explicit phases: each `for (int it : ...)` loop
/// over the local items corresponds to the code between two barriers of the
/// equivalent OpenCL kernel.
class WorkGroup {
 public:
  WorkGroup(int group_id, int group_count, int local_size, AccessPattern access,
            LocalArena* local)
      : group_id_(group_id),
        group_count_(group_count),
        local_size_(local_size),
        access_(access),
        local_(local) {}

  int group_id() const { return group_id_; }
  int group_count() const { return group_count_; }
  int local_size() const { return local_size_; }
  int global_threads() const { return group_count_ * local_size_; }
  /// Global thread id of a local item, cf. get_global_id(0).
  int global_id(int item) const { return group_id_ * local_size_ + item; }

  AccessPattern access() const { return access_; }

  /// Data units assigned to `item` out of `total` units, under the device's
  /// preferred access pattern. This is the hardware-oblivious loop header of
  /// every kernel in the engine.
  UnitRange UnitsFor(int item, std::uint64_t total) const {
    std::uint64_t threads = static_cast<std::uint64_t>(global_threads());
    std::uint64_t tid = static_cast<std::uint64_t>(global_id(item));
    if (access_ == AccessPattern::kCoalesced) {
      return {tid, total, threads};
    }
    std::uint64_t per = (total + threads - 1) / threads;
    std::uint64_t first = tid * per;
    std::uint64_t limit = std::min<std::uint64_t>(total, first + per);
    if (first > limit) first = limit;
    return {first, limit, 1};
  }

  /// Contiguous per-thread chunk regardless of the device's preferred
  /// pattern. Order-sensitive kernels (bitmap materialization, radix-sort
  /// scatter) need each thread to own an ascending range so that per-thread
  /// outputs concatenate into a globally ordered result (paper 4.1.2/4.1.3).
  UnitRange ContiguousUnitsFor(int item, std::uint64_t total) const {
    std::uint64_t threads = static_cast<std::uint64_t>(global_threads());
    std::uint64_t tid = static_cast<std::uint64_t>(global_id(item));
    std::uint64_t per = (total + threads - 1) / threads;
    std::uint64_t first = tid * per;
    std::uint64_t limit = std::min<std::uint64_t>(total, first + per);
    if (first > limit) first = limit;
    return {first, limit, 1};
  }

  /// Units assigned to the whole group (contiguous per-group split). Kernels
  /// that cooperate through local memory use this and divide internally.
  UnitRange GroupUnits(std::uint64_t total) const {
    std::uint64_t per = (total + static_cast<std::uint64_t>(group_count_) - 1) /
                        static_cast<std::uint64_t>(group_count_);
    std::uint64_t first = static_cast<std::uint64_t>(group_id_) * per;
    std::uint64_t limit = std::min<std::uint64_t>(total, first + per);
    if (first > limit) first = limit;
    return {first, limit, 1};
  }

  LocalArena& local() { return *local_; }
  KernelStats& stats() { return stats_; }
  const KernelStats& stats() const { return stats_; }

  /// Records `n` global atomic operations hitting ~`addresses` distinct
  /// addresses; the timing model converts these into contention penalties.
  void CountAtomics(std::uint64_t n, std::uint64_t addresses) {
    stats_.atomic_ops += n;
    stats_.atomic_addresses = std::max(stats_.atomic_addresses, addresses);
  }

  /// Records `n` local-memory atomics over ~`addresses` local slots.
  void CountLocalAtomics(std::uint64_t n, std::uint64_t addresses) {
    stats_.local_atomic_ops += n;
    stats_.local_atomic_addresses = std::max(stats_.local_atomic_addresses, addresses);
  }

 private:
  int group_id_;
  int group_count_;
  int local_size_;
  AccessPattern access_;
  LocalArena* local_;
  KernelStats stats_;
};

/// A kernel launch: the name keys the per-device compile cache and the
/// profiler; `body` is the hardware-oblivious kernel itself, invoked once
/// per work-group.
struct KernelLaunch {
  std::string name;
  /// Work-group geometry; 0 selects the device default (nc groups of 4*na).
  int groups = 0;
  int local_size = 0;
  std::function<void(WorkGroup&)> body;
};

}  // namespace ocl

#endif  // OCELOT_OCL_KERNEL_H_
