#include "ocl/queue.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace ocl {

CommandQueue::CommandQueue(Device* device, common::VirtualClock* clock)
    : device_(device),
      clock_(clock),
      local_arena_(device->model().local_mem_bytes) {}

EventPtr CommandQueue::EnqueueKernel(KernelLaunch launch, EventList waits) {
  OCELOT_CHECK(launch.body != nullptr) << "kernel " << launch.name << " has no body";
  if (launch.groups <= 0) launch.groups = device_->model().default_groups();
  if (launch.local_size <= 0) launch.local_size = device_->model().default_local_size();
  PendingOp op;
  op.kind = PendingOp::Kind::kKernel;
  op.launch = std::move(launch);
  op.waits = std::move(waits);
  op.event = std::make_shared<Event>(op.launch.name);
  op.event->MarkQueued(clock_->Now());
  pending_.push_back(std::move(op));
  return pending_.back().event;
}

EventPtr CommandQueue::EnqueueWrite(BufferPtr dst, const void* src, std::size_t bytes,
                                    EventList waits) {
  OCELOT_CHECK_LE(bytes, dst->bytes());
  PendingOp op;
  op.kind = PendingOp::Kind::kWrite;
  op.buffer = std::move(dst);
  op.host_src = src;
  op.bytes = bytes;
  op.waits = std::move(waits);
  op.event = std::make_shared<Event>("write");
  op.event->MarkQueued(clock_->Now());
  pending_.push_back(std::move(op));
  return pending_.back().event;
}

EventPtr CommandQueue::EnqueueRead(void* dst, BufferPtr src, std::size_t bytes,
                                   EventList waits) {
  OCELOT_CHECK_LE(bytes, src->bytes());
  PendingOp op;
  op.kind = PendingOp::Kind::kRead;
  op.buffer = std::move(src);
  op.host_dst = dst;
  op.bytes = bytes;
  op.waits = std::move(waits);
  op.event = std::make_shared<Event>("read");
  op.event->MarkQueued(clock_->Now());
  pending_.push_back(std::move(op));
  return pending_.back().event;
}

common::Nanos CommandQueue::ReadyTime(const PendingOp& op) const {
  common::Nanos ready = op.event->queued_time();
  for (const EventPtr& w : op.waits) {
    OCELOT_CHECK(w->complete()) << "wait-list event '" << w->label()
                                << "' not complete at flush";
    ready = std::max(ready, w->end_time());
  }
  return ready;
}

void CommandQueue::ExecuteKernel(PendingOp* op) {
  const DeviceModel& model = device_->model();
  const KernelLaunch& launch = op->launch;

  common::Nanos ready = ReadyTime(*op);

  // Driver-side serial costs: one-time JIT compile, then per-launch dispatch.
  common::Nanos driver_cost = model.kernel_launch_overhead;
  bool& compiled = compiled_[launch.name];
  if (!compiled) {
    compiled = true;
    driver_cost += model.kernel_compile_cost;
  }
  common::Interval dispatch = device_->driver_timeline().Schedule(ready, driver_cost);

  // Execute each work-group on the host, measuring the thread's CPU time
  // (concurrent scheduler fragments must not inflate each other's modeled
  // durations through scheduling gaps) and collecting the kernel's atomic
  // counters; convert to modeled per-group durations.
  std::vector<common::Nanos> durations;
  durations.reserve(static_cast<std::size_t>(launch.groups));
  KernelProfile& prof = profiles_[launch.name];
  common::Stopwatch total_real;
  for (int g = 0; g < launch.groups; ++g) {
    local_arena_.Reset();
    WorkGroup wg(g, launch.groups, launch.local_size, model.access, &local_arena_);
    common::CpuStopwatch group_real;
    launch.body(wg);
    common::Nanos real_ns = group_real.ElapsedNanos();
    common::Nanos modeled =
        static_cast<common::Nanos>(static_cast<double>(real_ns) * model.group_time_scale) +
        device_->AtomicPenalty(wg.stats().atomic_ops, wg.stats().atomic_addresses) +
        device_->LocalAtomicPenalty(wg.stats().local_atomic_ops,
                                    wg.stats().local_atomic_addresses);
    durations.push_back(modeled);
    prof.atomic_ops += wg.stats().atomic_ops + wg.stats().local_atomic_ops;
  }

  common::Interval iv =
      device_->compute_timeline().ScheduleBatch(dispatch.end, durations);
  op->event->MarkComplete(iv.start, iv.end);

  prof.launches += 1;
  prof.work_groups += static_cast<std::uint64_t>(launch.groups);
  prof.modeled_ns += iv.end - dispatch.start;
  prof.measured_ns += total_real.ElapsedNanos();
  modeled_busy_ += iv.end - dispatch.start;
  modeled_kernel_busy_ += iv.end - dispatch.start;
}

void CommandQueue::ExecuteTransfer(PendingOp* op) {
  common::Nanos ready = ReadyTime(*op);
  // Zero-byte transfers exist (empty columns); memcpy with a null source
  // or destination is undefined even at zero length.
  if (op->bytes != 0) {
    if (op->kind == PendingOp::Kind::kWrite) {
      std::memcpy(op->buffer->data(), op->host_src, op->bytes);
    } else {
      std::memcpy(op->host_dst, op->buffer->data(), op->bytes);
    }
  }
  common::Nanos duration = device_->TransferDuration(op->bytes);
  common::Interval iv = device_->transfer_timeline().Schedule(ready, duration);
  op->event->MarkComplete(iv.start, iv.end);
  modeled_busy_ += iv.end - iv.start;
  transferred_bytes_ += op->bytes;
}

common::Status CommandQueue::Flush() {
  if (pending_.empty()) return fault_;
  common::Stopwatch real;
  while (!pending_.empty()) {
    PendingOp op = std::move(pending_.front());
    pending_.pop_front();

    // An op downstream of a failed dependency can never produce its
    // contracted bytes; fail it too rather than execute against garbage.
    // Ops with intact wait-lists still run — the fault stays contained to
    // its dependency cone, exactly like event error propagation in CL.
    const Event* failed_wait = nullptr;
    for (const EventPtr& w : op.waits) {
      if (w->failed()) {
        failed_wait = w.get();
        break;
      }
    }
    if (failed_wait != nullptr) {
      op.event->MarkFailed();
      if (fault_.ok()) {
        fault_ = common::Status::DeviceLost(
            "op '" + op.event->label() + "' depends on failed event '" +
            failed_wait->label() + "'");
      }
      continue;
    }

    if (injector_ != nullptr) {
      FaultOp kind = op.kind == PendingOp::Kind::kKernel ? FaultOp::kKernel
                     : op.kind == PendingOp::Kind::kWrite ? FaultOp::kWrite
                                                          : FaultOp::kRead;
      common::Status injected = injector_->OnOp(kind, op.event->label());
      if (!injected.ok()) {
        op.event->MarkFailed();
        if (fault_.ok()) fault_ = std::move(injected);
        continue;
      }
    }

    if (op.kind == PendingOp::Kind::kKernel) {
      ExecuteKernel(&op);
    } else {
      ExecuteTransfer(&op);
    }
  }
  // The host only *scheduled* this work; execution time belongs to the
  // simulated device, which has already been billed on its timelines.
  clock_->Deduct(real.ElapsedNanos());
  return fault_;
}

common::Status CommandQueue::Wait(const EventPtr& event) {
  if (!event->settled()) Flush();
  if (event->failed()) {
    return fault_.ok() ? common::Status::DeviceLost("event '" + event->label() +
                                                    "' failed")
                       : fault_;
  }
  OCELOT_CHECK(event->complete());
  clock_->AdvanceTo(event->end_time());
  return common::Status::Ok();
}

common::Status CommandQueue::Finish() {
  Flush();
  clock_->AdvanceTo(std::max({device_->compute_timeline().AllIdleTime(),
                              device_->transfer_timeline().AllIdleTime(),
                              device_->driver_timeline().AllIdleTime()}));
  return TakeFault();
}

common::Status CommandQueue::TakeFault() {
  common::Status f = std::move(fault_);
  fault_ = common::Status::Ok();
  return f;
}

}  // namespace ocl
