#ifndef OCELOT_OCL_QUEUE_H_
#define OCELOT_OCL_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "common/vclock.h"
#include "ocl/buffer.h"
#include "ocl/device.h"
#include "ocl/event.h"
#include "ocl/fault.h"
#include "ocl/kernel.h"

namespace ocl {

/// Per-kernel aggregate statistics collected during flushes; the ablation
/// benchmarks and EXPERIMENTS.md use these to attribute query time.
struct KernelProfile {
  std::uint64_t launches = 0;
  std::uint64_t work_groups = 0;
  common::Nanos modeled_ns = 0;   ///< virtual device time billed
  common::Nanos measured_ns = 0;  ///< real host time spent executing
  std::uint64_t atomic_ops = 0;
};

/// The command queue of one device: Ocelot's lazy evaluation model.
///
/// Enqueue calls never execute anything — they record the operation, its
/// event and its wait-list, exactly like clEnqueue* calls on an out-of-order
/// queue (paper section 3.4). `Flush()` drains the queue: operations are
/// *executed* on the host for correctness and *billed* onto the device's
/// virtual timelines (compute lanes / transfer lane / serial driver lane),
/// which reproduces the transfer/compute overlap and kernel interleaving of
/// the paper's Figure 3. Real host time spent inside Flush is deducted from
/// the virtual clock so only modeled device time remains visible.
class CommandQueue {
 public:
  CommandQueue(Device* device, common::VirtualClock* clock);

  Device* device() { return device_; }

  /// Schedules a kernel; returns its event. The kernel body runs once per
  /// work-group at flush time. Buffers referenced by the body must be kept
  /// alive by the closure (capture BufferPtr by value).
  EventPtr EnqueueKernel(KernelLaunch launch, EventList waits = {});

  /// Schedules a host->device transfer of `bytes` from `src` into `dst`.
  EventPtr EnqueueWrite(BufferPtr dst, const void* src, std::size_t bytes,
                        EventList waits = {});

  /// Schedules a device->host transfer of `bytes` from `src` into `dst`.
  EventPtr EnqueueRead(void* dst, BufferPtr src, std::size_t bytes,
                       EventList waits = {});

  /// Executes every pending operation (in dependency order; all wait-lists
  /// reference earlier enqueues, as with a single in-order application
  /// thread feeding an out-of-order device queue). Ops the fault injector
  /// fails — and ops downstream of a failed wait event — are marked failed
  /// and skipped; independent ops still execute. Returns the sticky fault
  /// status (Ok when everything executed).
  common::Status Flush();

  /// Flush + advance the virtual clock to the event's completion; the
  /// blocking analogue of clWaitForEvents. Returns the queue's fault status
  /// when the event failed (no clock advance happens in that case).
  common::Status Wait(const EventPtr& event);

  /// Flush + advance the virtual clock until the whole device is idle
  /// (clFinish). Returns and *clears* the sticky fault status, so the next
  /// batch of work starts clean — the retry path drains the queue through
  /// here before re-attempting.
  common::Status Finish();

  /// First failure since the last Finish()/TakeFault(), without draining.
  const common::Status& fault() const { return fault_; }

  /// Consumes the sticky fault status (returns it and resets to Ok).
  common::Status TakeFault();

  /// Wires the fault decision point; owned by the DeviceContext. May be
  /// null (injection disabled).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  std::size_t pending() const { return pending_.size(); }

  const std::map<std::string, KernelProfile>& profiles() const { return profiles_; }
  void ResetProfiles() { profiles_.clear(); }

  /// Monotone total of *modeled* device time this queue has executed:
  /// kernel batches (dispatch + compute, as in the profiles) plus transfer
  /// durations. Purely virtual — no real host time, no scheduling gaps —
  /// so a delta across a code section gives that section's device cost
  /// independent of host thread count or load. ocelot::Scheduler bills
  /// fragment makespans and calibrates per-device throughput from exactly
  /// these deltas.
  common::Nanos modeled_busy_ns() const { return modeled_busy_; }

  /// Monotone total of bytes moved across this queue's (modeled) bus, in
  /// either direction. With encoded columns a host->device upload counts
  /// the *compressed* image size — a delta of this counter across a query
  /// is exactly what transfer billing charged, which the compression
  /// benchmark reports as "modeled transfer bytes".
  std::uint64_t transferred_bytes() const { return transferred_bytes_; }

  /// Kernel-only subset of modeled_busy_ns(): excludes transfer durations.
  /// Throughput calibration reads this one — a boundary re-cut pays a
  /// one-time upload that says nothing about the device's steady-state
  /// compute rate, and folding it into the EWMA makes near-parity device
  /// sets oscillate (re-cut -> transfer -> depressed estimate -> re-cut).
  common::Nanos modeled_kernel_busy_ns() const { return modeled_kernel_busy_; }

 private:
  struct PendingOp {
    enum class Kind { kKernel, kWrite, kRead };
    Kind kind;
    KernelLaunch launch;       // kKernel
    BufferPtr buffer;          // kWrite dst / kRead src
    const void* host_src = nullptr;
    void* host_dst = nullptr;
    std::size_t bytes = 0;
    EventList waits;
    EventPtr event;
  };

  common::Nanos ReadyTime(const PendingOp& op) const;
  void ExecuteKernel(PendingOp* op);
  void ExecuteTransfer(PendingOp* op);

  Device* device_;
  common::VirtualClock* clock_;
  FaultInjector* injector_ = nullptr;
  common::Status fault_;  ///< first failure since last Finish/TakeFault
  std::deque<PendingOp> pending_;
  LocalArena local_arena_;
  std::map<std::string, KernelProfile> profiles_;
  std::map<std::string, bool> compiled_;  // kernel name -> JIT done
  common::Nanos modeled_busy_ = 0;
  common::Nanos modeled_kernel_busy_ = 0;
  std::uint64_t transferred_bytes_ = 0;
};

}  // namespace ocl

#endif  // OCELOT_OCL_QUEUE_H_
