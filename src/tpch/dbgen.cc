#include "tpch/dbgen.h"

#include <cstdlib>

#include "common/date.h"
#include "common/logging.h"
#include "common/rng.h"
#include "cstore/encoding.h"

namespace tpch {

using common::Rng;
using cstore::Bat;
using cstore::BatPtr;
using cstore::Table;

namespace {

// Spec-derived literal pools (subset sufficient for the paper's workload).
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation, per the spec's nation.tbl.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kContainerSizes[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerTypes[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                                 "DRUM"};
const char* kTypeSyl1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                           "PROMO"};
const char* kTypeSyl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"};
const char* kTypeSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

struct ColumnBuf {
  std::vector<std::int32_t> ints;
  std::vector<float> floats;
};

BatPtr IntCol(const std::vector<std::int32_t>& v, bool sorted = false,
              bool key = false) {
  BatPtr b = Bat::MakeInt(v.size());
  std::copy(v.begin(), v.end(), b->ints().begin());
  b->set_sorted(sorted);
  b->set_key(key);
  b->set_nonil(true);
  return b;
}

BatPtr FloatCol(const std::vector<float>& v) {
  BatPtr b = Bat::MakeFloat(v.size());
  std::copy(v.begin(), v.end(), b->floats().begin());
  b->set_nonil(true);
  return b;
}

/// Dense 1-based key column (partkey, suppkey, custkey, nationkey...).
BatPtr DenseKeyCol(std::size_t n, std::int32_t base = 1) {
  BatPtr b = Bat::MakeInt(n);
  auto s = b->ints();
  for (std::size_t i = 0; i < n; ++i) s[i] = base + static_cast<std::int32_t>(i);
  b->SetDense(static_cast<cstore::oid_t>(base));
  return b;
}

std::vector<std::string> StringPool(const char* const* vals, std::size_t n) {
  return std::vector<std::string>(vals, vals + n);
}

}  // namespace

std::int32_t TpchDb::Code(const std::string& column, const std::string& value) const {
  auto it = dicts.find(column);
  OCELOT_CHECK(it != dicts.end()) << "no dictionary for " << column;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i] == value) return static_cast<std::int32_t>(i);
  }
  OCELOT_CHECK(false) << "no code for '" << value << "' in " << column;
  return -1;
}

double ScaleForPaperSf(double paper_sf) {
  double unit = 0.02;
  if (const char* env = std::getenv("OCELOT_SF_UNIT")) {
    unit = std::atof(env);
    if (unit <= 0) unit = 0.02;
  }
  return paper_sf * unit;
}

TpchDb Generate(double scale, std::uint64_t seed) {
  OCELOT_CHECK(scale > 0) << "scale must be positive";
  TpchDb db;
  db.scale = scale;
  Rng rng(seed);

  auto rows = [scale](double base) {
    auto n = static_cast<std::size_t>(base * scale);
    return n < 1 ? std::size_t{1} : n;
  };
  std::size_t n_supplier = rows(10'000);
  std::size_t n_part = rows(200'000);
  std::size_t n_customer = rows(150'000);
  std::size_t n_orders = rows(1'500'000);
  std::size_t n_nation = 25;
  std::size_t n_region = 5;

  const std::int32_t start_date = common::date::FromYmd(1992, 1, 1);
  const std::int32_t end_date = common::date::FromYmd(1998, 8, 2);

  // ---- region / nation ------------------------------------------------------
  {
    Table region("region");
    OCELOT_CHECK_OK(region.AddColumn("r_regionkey", DenseKeyCol(n_region, 0)));
    std::vector<std::int32_t> names(n_region);
    for (std::size_t i = 0; i < n_region; ++i) names[i] = static_cast<std::int32_t>(i);
    OCELOT_CHECK_OK(region.AddColumn("r_name", IntCol(names, true, true)));
    db.dicts["r_name"] = StringPool(kRegions, n_region);
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(region)));
  }
  {
    Table nation("nation");
    OCELOT_CHECK_OK(nation.AddColumn("n_nationkey", DenseKeyCol(n_nation, 0)));
    std::vector<std::int32_t> names(n_nation), regions(n_nation);
    for (std::size_t i = 0; i < n_nation; ++i) {
      names[i] = static_cast<std::int32_t>(i);
      regions[i] = kNationRegion[i];
    }
    OCELOT_CHECK_OK(nation.AddColumn("n_name", IntCol(names, true, true)));
    OCELOT_CHECK_OK(nation.AddColumn("n_regionkey", IntCol(regions)));
    db.dicts["n_name"] = StringPool(kNations, n_nation);
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(nation)));
  }

  // ---- supplier --------------------------------------------------------------
  {
    Table supplier("supplier");
    OCELOT_CHECK_OK(supplier.AddColumn("s_suppkey", DenseKeyCol(n_supplier)));
    std::vector<std::int32_t> nk(n_supplier);
    std::vector<float> bal(n_supplier);
    for (std::size_t i = 0; i < n_supplier; ++i) {
      nk[i] = static_cast<std::int32_t>(rng.Uniform(0, 24));
      bal[i] = static_cast<float>(rng.Uniform(-99999, 999999)) / 100.f;
    }
    OCELOT_CHECK_OK(supplier.AddColumn("s_nationkey", IntCol(nk)));
    OCELOT_CHECK_OK(supplier.AddColumn("s_acctbal", FloatCol(bal)));
    // s_name is "Supplier#<key>": a per-row-unique dictionary would defeat
    // encoding; queries only group/join on it, so the key itself serves.
    OCELOT_CHECK_OK(supplier.AddColumn("s_name", DenseKeyCol(n_supplier)));
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(supplier)));
  }

  // ---- part -------------------------------------------------------------------
  {
    Table part("part");
    OCELOT_CHECK_OK(part.AddColumn("p_partkey", DenseKeyCol(n_part)));
    std::vector<std::string> brands;
    for (int m = 1; m <= 5; ++m) {
      for (int n2 = 1; n2 <= 5; ++n2) {
        brands.push_back("Brand#" + std::to_string(m) + std::to_string(n2));
      }
    }
    std::vector<std::string> containers;
    for (const char* s : kContainerSizes) {
      for (const char* t : kContainerTypes) {
        containers.push_back(std::string(s) + " " + t);
      }
    }
    std::vector<std::string> types;
    for (const char* a : kTypeSyl1) {
      for (const char* b : kTypeSyl2) {
        for (const char* c : kTypeSyl3) {
          types.push_back(std::string(a) + " " + b + " " + c);
        }
      }
    }
    std::vector<std::int32_t> brand(n_part), container(n_part), type(n_part),
        size(n_part);
    std::vector<float> retail(n_part);
    for (std::size_t i = 0; i < n_part; ++i) {
      brand[i] = static_cast<std::int32_t>(rng.Uniform(0, 24));
      container[i] =
          static_cast<std::int32_t>(rng.Uniform(0, static_cast<std::int64_t>(containers.size()) - 1));
      type[i] =
          static_cast<std::int32_t>(rng.Uniform(0, static_cast<std::int64_t>(types.size()) - 1));
      size[i] = static_cast<std::int32_t>(rng.Uniform(1, 50));
      retail[i] =
          (90000.f + static_cast<float>((i % 200'000) / 10) + 100.f * (i % 1000)) / 100.f;
    }
    OCELOT_CHECK_OK(part.AddColumn("p_brand", IntCol(brand)));
    OCELOT_CHECK_OK(part.AddColumn("p_container", IntCol(container)));
    OCELOT_CHECK_OK(part.AddColumn("p_type", IntCol(type)));
    OCELOT_CHECK_OK(part.AddColumn("p_size", IntCol(size)));
    OCELOT_CHECK_OK(part.AddColumn("p_retailprice", FloatCol(retail)));
    db.dicts["p_brand"] = brands;
    db.dicts["p_container"] = containers;
    db.dicts["p_type"] = types;
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(part)));
  }

  // ---- partsupp ----------------------------------------------------------------
  {
    std::size_t n_ps = n_part * 4;
    Table partsupp("partsupp");
    std::vector<std::int32_t> pk(n_ps), sk(n_ps), avail(n_ps);
    std::vector<float> cost(n_ps);
    for (std::size_t i = 0; i < n_ps; ++i) {
      pk[i] = static_cast<std::int32_t>(i / 4) + 1;
      // The spec's supplier spread: 4 distinct suppliers per part.
      sk[i] = static_cast<std::int32_t>(
          (i / 4 + (i % 4) * (n_supplier / 4 + 1)) % n_supplier + 1);
      avail[i] = static_cast<std::int32_t>(rng.Uniform(1, 9999));
      cost[i] = static_cast<float>(rng.Uniform(100, 100000)) / 100.f;
    }
    OCELOT_CHECK_OK(partsupp.AddColumn("ps_partkey", IntCol(pk, true)));
    OCELOT_CHECK_OK(partsupp.AddColumn("ps_suppkey", IntCol(sk)));
    OCELOT_CHECK_OK(partsupp.AddColumn("ps_availqty", IntCol(avail)));
    OCELOT_CHECK_OK(partsupp.AddColumn("ps_supplycost", FloatCol(cost)));
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(partsupp)));
  }

  // ---- customer ----------------------------------------------------------------
  {
    Table customer("customer");
    OCELOT_CHECK_OK(customer.AddColumn("c_custkey", DenseKeyCol(n_customer)));
    std::vector<std::int32_t> nk(n_customer), seg(n_customer);
    std::vector<float> bal(n_customer);
    for (std::size_t i = 0; i < n_customer; ++i) {
      nk[i] = static_cast<std::int32_t>(rng.Uniform(0, 24));
      seg[i] = static_cast<std::int32_t>(rng.Uniform(0, 4));
      bal[i] = static_cast<float>(rng.Uniform(-99999, 999999)) / 100.f;
    }
    OCELOT_CHECK_OK(customer.AddColumn("c_nationkey", IntCol(nk)));
    OCELOT_CHECK_OK(customer.AddColumn("c_mktsegment", IntCol(seg)));
    OCELOT_CHECK_OK(customer.AddColumn("c_acctbal", FloatCol(bal)));
    db.dicts["c_mktsegment"] = StringPool(kSegments, 5);
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(customer)));
  }

  // ---- orders + lineitem ----------------------------------------------------------
  {
    const std::int32_t cutoff = common::date::FromYmd(1995, 6, 17);
    std::vector<std::int32_t> o_key(n_orders), o_cust(n_orders), o_date(n_orders),
        o_prio(n_orders), o_status(n_orders), o_ship(n_orders);
    std::vector<float> o_total(n_orders);

    std::vector<std::int32_t> l_ok, l_pk, l_sk, l_line, l_rf, l_ls, l_sd, l_cd, l_rd,
        l_sm, l_si;
    std::vector<float> l_qty, l_ext, l_disc, l_tax;
    std::size_t est = n_orders * 4;
    for (auto* v : {&l_ok, &l_pk, &l_sk, &l_line, &l_rf, &l_ls, &l_sd, &l_cd, &l_rd,
                    &l_sm, &l_si}) {
      v->reserve(est);
    }
    for (auto* v : {&l_qty, &l_ext, &l_disc, &l_tax}) v->reserve(est);

    const auto* part_table = *db.catalog.GetTable("part");
    auto retail = (*part_table->Column("p_retailprice"))->floats();

    for (std::size_t i = 0; i < n_orders; ++i) {
      // Sparse order keys, as in the spec (8 consecutive per 32-key block).
      o_key[i] = static_cast<std::int32_t>((i / 8) * 32 + (i % 8) + 1);
      o_cust[i] = static_cast<std::int32_t>(
          rng.Uniform(1, static_cast<std::int64_t>(n_customer)));
      o_date[i] = static_cast<std::int32_t>(
          rng.Uniform(start_date, end_date - 151));
      o_prio[i] = static_cast<std::int32_t>(rng.Uniform(0, 4));
      o_ship[i] = 0;

      int lines = static_cast<int>(rng.Uniform(1, 7));
      double total = 0;
      bool any_open = false;
      for (int l = 0; l < lines; ++l) {
        std::int32_t pk = static_cast<std::int32_t>(
            rng.Uniform(1, static_cast<std::int64_t>(n_part)));
        std::int32_t sk = static_cast<std::int32_t>(
            rng.Uniform(1, static_cast<std::int64_t>(n_supplier)));
        float qty = static_cast<float>(rng.Uniform(1, 50));
        float price = qty * retail[static_cast<std::size_t>(pk - 1)] / 10.f;
        float disc = static_cast<float>(rng.Uniform(0, 10)) / 100.f;
        float tax = static_cast<float>(rng.Uniform(0, 8)) / 100.f;
        std::int32_t ship = o_date[i] + static_cast<std::int32_t>(rng.Uniform(1, 121));
        std::int32_t commit = o_date[i] + static_cast<std::int32_t>(rng.Uniform(30, 90));
        std::int32_t receipt = ship + static_cast<std::int32_t>(rng.Uniform(1, 30));

        l_ok.push_back(o_key[i]);
        l_pk.push_back(pk);
        l_sk.push_back(sk);
        l_line.push_back(l + 1);
        l_qty.push_back(qty);
        l_ext.push_back(price);
        l_disc.push_back(disc);
        l_tax.push_back(tax);
        // Return flags / line status per the spec's date rules.
        bool returnable = receipt <= cutoff;
        l_rf.push_back(returnable ? (rng.Uniform(0, 1) != 0 ? 0 : 1) : 2);  // R/A/N
        bool open = ship > cutoff;
        any_open |= open;
        l_ls.push_back(open ? 1 : 0);  // O/F
        l_sd.push_back(ship);
        l_cd.push_back(commit);
        l_rd.push_back(receipt);
        l_sm.push_back(static_cast<std::int32_t>(rng.Uniform(0, 6)));
        l_si.push_back(static_cast<std::int32_t>(rng.Uniform(0, 3)));
        total += static_cast<double>(price) * (1 + tax) * (1 - disc);
      }
      o_total[i] = static_cast<float>(total);
      o_status[i] = any_open ? 1 : 0;  // O / F (P collapsed into O)
    }

    Table orders("orders");
    {
      BatPtr ok = IntCol(o_key, /*sorted=*/true, /*key=*/true);
      OCELOT_CHECK_OK(orders.AddColumn("o_orderkey", ok));
    }
    OCELOT_CHECK_OK(orders.AddColumn("o_custkey", IntCol(o_cust)));
    OCELOT_CHECK_OK(orders.AddColumn("o_orderdate", IntCol(o_date)));
    OCELOT_CHECK_OK(orders.AddColumn("o_orderpriority", IntCol(o_prio)));
    OCELOT_CHECK_OK(orders.AddColumn("o_orderstatus", IntCol(o_status)));
    OCELOT_CHECK_OK(orders.AddColumn("o_shippriority", IntCol(o_ship)));
    OCELOT_CHECK_OK(orders.AddColumn("o_totalprice", FloatCol(o_total)));
    db.dicts["o_orderpriority"] = StringPool(kPriorities, 5);
    db.dicts["o_orderstatus"] = {"F", "O"};
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(orders)));

    Table lineitem("lineitem");
    OCELOT_CHECK_OK(lineitem.AddColumn("l_orderkey", IntCol(l_ok, /*sorted=*/true)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_partkey", IntCol(l_pk)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_suppkey", IntCol(l_sk)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_linenumber", IntCol(l_line)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_quantity", FloatCol(l_qty)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_extendedprice", FloatCol(l_ext)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_discount", FloatCol(l_disc)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_tax", FloatCol(l_tax)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_returnflag", IntCol(l_rf)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_linestatus", IntCol(l_ls)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_shipdate", IntCol(l_sd)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_commitdate", IntCol(l_cd)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_receiptdate", IntCol(l_rd)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_shipmode", IntCol(l_sm)));
    OCELOT_CHECK_OK(lineitem.AddColumn("l_shipinstruct", IntCol(l_si)));
    db.dicts["l_returnflag"] = {"R", "A", "N"};
    db.dicts["l_linestatus"] = {"F", "O"};
    db.dicts["l_shipmode"] = StringPool(kShipModes, 7);
    db.dicts["l_shipinstruct"] = StringPool(kInstructs, 4);
    OCELOT_CHECK_OK(db.catalog.AddTable(std::move(lineitem)));
  }

  // The load-path encoding pass (stats-driven format per column, or the
  // OCELOT_FORCE_ENCODING override): date/flag/quantity columns shrink to
  // dictionary, RLE or bit-packed images; results stay bit-identical.
  cstore::ApplyEncodings(&db.catalog);

  return db;
}

}  // namespace tpch
