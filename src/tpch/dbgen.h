#ifndef OCELOT_TPCH_DBGEN_H_
#define OCELOT_TPCH_DBGEN_H_

#include <map>
#include <string>
#include <vector>

#include "cstore/catalog.h"

namespace tpch {

/// A generated TPC-H database with the paper's schema modifications
/// (Appendix A): DECIMAL -> REAL (float), dates as int32 day counts, and
/// every string column dictionary-encoded to int32 (the engine supports
/// string equality only, which dictionary codes implement exactly).
struct TpchDb {
  cstore::Catalog catalog;
  /// Per-column dictionaries, e.g. dicts["n_name"][code] == "GERMANY".
  std::map<std::string, std::vector<std::string>> dicts;
  double scale = 0;

  /// Dictionary code of `value` in `column`; aborts when absent (queries
  /// reference only spec-defined literals).
  std::int32_t Code(const std::string& column, const std::string& value) const;
};

/// Generates a deterministic scaled database. `scale` is the TPC-H scale
/// factor times the reproduction's row-count unit (DESIGN.md section 2):
/// lineitem gets ~6,000,000 * scale rows. All foreign keys are referentially
/// intact; o_orderkey is sparse (non-dense) as in the spec, all other keys
/// are dense 1-based sequences.
TpchDb Generate(double scale, std::uint64_t seed = 19920401);

/// Row-count unit: paper scale factor -> generator scale. Controlled by the
/// OCELOT_SF_UNIT environment variable (default 0.02, i.e. "SF 1" generates
/// 120k lineitem rows).
double ScaleForPaperSf(double paper_sf);

}  // namespace tpch

#endif  // OCELOT_TPCH_DBGEN_H_
