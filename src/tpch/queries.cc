// BAT-algebra plans for the paper's modified TPC-H workload. Each query is
// built the way MonetDB's SQL front-end would emit it: operator-at-a-time
// over candidate lists, fetch joins for projections, PK-side hash joins,
// group/subgroup for multi-attribute grouping. Sorting is single-column
// (Appendix A) and ascending (the engines sort ascending; a descending
// presentation pass would not change any measured operator).

#include "tpch/queries.h"

#include <limits>

#include "common/date.h"

namespace tpch {

using common::Status;
using mal::Program;
using mal::ProgramBuilder;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::int32_t Date(int y, int m, int d) { return common::date::FromYmd(y, m, d); }

/// Thin plan-construction helper over ProgramBuilder: every method emits one
/// MAL instruction and returns the result variable id.
class Q {
 public:
  explicit Q(const TpchDb& db) : db_(db) {}

  int D(double v) { return b_.Const(v); }
  int I(std::int64_t v) { return b_.Const(v); }
  int Nil() { return b_.Const(mal::Value{}); }

  /// bat.bind("table", "column")
  int Bind(const std::string& table, const std::string& column) {
    return b_.Emit("bat", "bind",
                   {b_.Const(std::string(table)), b_.Const(std::string(column))});
  }
  int SetKey(int bat) { return b_.Emit("bat", "setkey", {bat}); }

  /// Range select: bounds are variable ids (usually D(...) constants, but
  /// Q11/Q15 pass computed scalars). +-inf means unbounded.
  int Select(int col, int cand, int lo, int hi, bool li = true, bool hi_incl = true) {
    return b_.Emit("algebra", "select", {col, cand, lo, hi, I(li), I(hi_incl)});
  }
  int SelectEq(int col, int cand, double v) {
    return Select(col, cand, D(v), D(v));
  }
  /// Select rows where an int 0/1 condition column is true.
  int SelectTrue(int cond, int cand) { return Select(cond, cand, D(1), D(1)); }

  int Proj(int oids, int col) { return b_.Emit("algebra", "projection", {oids, col}); }
  std::pair<int, int> Join(int l, int r) {
    auto rets = b_.EmitMulti("algebra", "join", {l, r}, 2);
    return {rets[0], rets[1]};
  }
  int Semi(int l, int r) { return b_.Emit("algebra", "semijoin", {l, r}); }
  int Anti(int l, int r) { return b_.Emit("algebra", "antijoin", {l, r}); }
  int Union(int a, int c) { return b_.Emit("algebra", "candunion", {a, c}); }
  std::pair<int, int> SortBy(int col) {
    auto rets = b_.EmitMulti("algebra", "sort", {col}, 2);
    return {rets[0], rets[1]};
  }

  struct Grouping {
    int groups;
    int extents;
    int ngroups;
  };
  Grouping Group(int col) {
    auto rets = b_.EmitMulti("group", "group", {col}, 3);
    return {rets[0], rets[1], rets[2]};
  }
  Grouping SubGroup(int col, const Grouping& prev) {
    auto rets = b_.EmitMulti("group", "subgroup", {col, prev.groups, prev.ngroups}, 3);
    return {rets[0], rets[1], rets[2]};
  }

  int SubSum(int vals, const Grouping& g) {
    return b_.Emit("aggr", "subsum", {vals, g.groups, g.ngroups});
  }
  int SubCount(const Grouping& g) {
    return b_.Emit("aggr", "subcount", {g.groups, g.ngroups});
  }
  int SubMin(int vals, const Grouping& g) {
    return b_.Emit("aggr", "submin", {vals, g.groups, g.ngroups});
  }
  int SubMax(int vals, const Grouping& g) {
    return b_.Emit("aggr", "submax", {vals, g.groups, g.ngroups});
  }
  int SubAvg(int vals, const Grouping& g) {
    return b_.Emit("aggr", "subavg", {vals, g.groups, g.ngroups});
  }
  int Sum(int col) { return b_.Emit("aggr", "sum", {col}); }
  int Max(int col) { return b_.Emit("aggr", "max", {col}); }
  int Count(int col) { return b_.Emit("aggr", "count", {col}); }

  int Add(int a, int c) { return b_.Emit("batcalc", "add", {a, c}); }
  int Sub(int a, int c) { return b_.Emit("batcalc", "sub", {a, c}); }
  int Mul(int a, int c) { return b_.Emit("batcalc", "mul", {a, c}); }
  int Div(int a, int c) { return b_.Emit("batcalc", "div", {a, c}); }
  int Eq(int a, int c) { return b_.Emit("batcalc", "eq", {a, c}); }
  int Lt(int a, int c) { return b_.Emit("batcalc", "lt", {a, c}); }
  int Or(int a, int c) { return b_.Emit("batcalc", "or", {a, c}); }
  int And(int a, int c) { return b_.Emit("batcalc", "and", {a, c}); }
  int IfThenElse(int cond, int then_bat, int else_const) {
    return b_.Emit("batcalc", "ifthenelse", {cond, then_bat, else_const});
  }
  int Year(int col) { return b_.Emit("mtime", "year", {col}); }
  int Flt(int col) { return b_.Emit("batcalc", "flt", {col}); }

  /// 1 - col and 1 + col, the price expressions of the workload.
  int OneMinus(int col) { return Sub(D(1.0), col); }
  int OnePlus(int col) { return Add(D(1.0), col); }

  std::int32_t Code(const std::string& col, const std::string& val) {
    return db_.Code(col, val);
  }

  void Ret(int var) { b_.Return(var); }
  Program Build() { return b_.Build(); }

 private:
  const TpchDb& db_;
  ProgramBuilder b_;
};

// ---------------------------------------------------------------------------
// Q1: pricing summary report.
Program BuildQ1(const TpchDb& db) {
  Q q(db);
  int shipdate = q.Bind("lineitem", "l_shipdate");
  int cand = q.Select(shipdate, q.Nil(), q.D(-kInf), q.D(Date(1998, 9, 2)));

  int rf = q.Proj(cand, q.Bind("lineitem", "l_returnflag"));
  int ls = q.Proj(cand, q.Bind("lineitem", "l_linestatus"));
  int qty = q.Proj(cand, q.Bind("lineitem", "l_quantity"));
  int ext = q.Proj(cand, q.Bind("lineitem", "l_extendedprice"));
  int disc = q.Proj(cand, q.Bind("lineitem", "l_discount"));
  int tax = q.Proj(cand, q.Bind("lineitem", "l_tax"));

  auto g1 = q.Group(rf);
  auto g2 = q.SubGroup(ls, g1);

  int disc_price = q.Mul(ext, q.OneMinus(disc));
  int charge = q.Mul(disc_price, q.OnePlus(tax));

  int sum_qty = q.SubSum(qty, g2);
  int sum_base = q.SubSum(ext, g2);
  int sum_disc = q.SubSum(disc_price, g2);
  int sum_charge = q.SubSum(charge, g2);
  int avg_qty = q.SubAvg(qty, g2);
  int avg_price = q.SubAvg(ext, g2);
  int avg_disc = q.SubAvg(disc, g2);
  int counts = q.SubCount(g2);

  // Order by l_returnflag (the l_linestatus sort clause is removed, App. A).
  int rf_g = q.Proj(g2.extents, rf);
  int ls_g = q.Proj(g2.extents, ls);
  auto [rf_sorted, order] = q.SortBy(rf_g);
  q.Ret(rf_sorted);
  q.Ret(q.Proj(order, ls_g));
  for (int agg : {sum_qty, sum_base, sum_disc, sum_charge, avg_qty, avg_price,
                  avg_disc, counts}) {
    q.Ret(q.Proj(order, agg));
  }
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q3: shipping priority.
Program BuildQ3(const TpchDb& db) {
  Q q(db);
  int seg = q.Bind("customer", "c_mktsegment");
  int ccand = q.SelectEq(seg, q.Nil(), q.Code("c_mktsegment", "BUILDING"));
  int ckeys = q.SetKey(q.Proj(ccand, q.Bind("customer", "c_custkey")));

  int odate = q.Bind("orders", "o_orderdate");
  int ocand = q.Select(odate, q.Nil(), q.D(-kInf), q.D(Date(1995, 3, 15)), true, false);
  int ocust = q.Proj(ocand, q.Bind("orders", "o_custkey"));
  auto [ol, _or] = q.Join(ocust, ckeys);
  (void)_or;
  int orows = q.Proj(ol, ocand);
  int okeys = q.SetKey(q.Proj(orows, q.Bind("orders", "o_orderkey")));
  int odate_j = q.Proj(orows, odate);
  int oship_j = q.Proj(orows, q.Bind("orders", "o_shippriority"));

  int sdate = q.Bind("lineitem", "l_shipdate");
  int lcand = q.Select(sdate, q.Nil(), q.D(Date(1995, 3, 15)), q.D(kInf), false, true);
  int lok = q.Proj(lcand, q.Bind("lineitem", "l_orderkey"));
  auto [ll, lr] = q.Join(lok, okeys);

  int ext = q.Proj(q.Proj(ll, lcand), q.Bind("lineitem", "l_extendedprice"));
  int disc = q.Proj(q.Proj(ll, lcand), q.Bind("lineitem", "l_discount"));
  int rev = q.Mul(ext, q.OneMinus(disc));
  int okey_row = q.Proj(lr, okeys);

  auto g = q.Group(okey_row);
  int revenue = q.SubSum(rev, g);
  // Order by revenue (o_orderdate clause and LIMIT removed, App. A).
  auto [rev_sorted, order] = q.SortBy(revenue);
  q.Ret(q.Proj(order, q.Proj(g.extents, okey_row)));
  q.Ret(rev_sorted);
  q.Ret(q.Proj(order, q.Proj(g.extents, q.Proj(lr, odate_j))));
  q.Ret(q.Proj(order, q.Proj(g.extents, q.Proj(lr, oship_j))));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q4: order priority checking (EXISTS via semijoin).
Program BuildQ4(const TpchDb& db) {
  Q q(db);
  int odate = q.Bind("orders", "o_orderdate");
  int ocand = q.Select(odate, q.Nil(), q.D(Date(1993, 7, 1)), q.D(Date(1993, 10, 1)),
                       true, false);
  int commit = q.Bind("lineitem", "l_commitdate");
  int receipt = q.Bind("lineitem", "l_receiptdate");
  int late = q.Lt(commit, receipt);
  int lcand = q.SelectTrue(late, q.Nil());
  int lok = q.Proj(lcand, q.Bind("lineitem", "l_orderkey"));

  int o_ok = q.Proj(ocand, q.Bind("orders", "o_orderkey"));
  int sj = q.Semi(o_ok, lok);
  int prio = q.Proj(sj, q.Proj(ocand, q.Bind("orders", "o_orderpriority")));

  auto g = q.Group(prio);
  int counts = q.SubCount(g);
  auto [prio_sorted, order] = q.SortBy(q.Proj(g.extents, prio));
  q.Ret(prio_sorted);
  q.Ret(q.Proj(order, counts));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q5: local supplier volume.
Program BuildQ5(const TpchDb& db) {
  Q q(db);
  int rname = q.Bind("region", "r_name");
  int rcand = q.SelectEq(rname, q.Nil(), q.Code("r_name", "ASIA"));
  int rkeys = q.SetKey(q.Proj(rcand, q.Bind("region", "r_regionkey")));
  auto [nl, nr] = q.Join(q.Bind("nation", "n_regionkey"), rkeys);
  (void)nr;
  int nkeys = q.SetKey(q.Proj(nl, q.Bind("nation", "n_nationkey")));

  auto [cl, cr] = q.Join(q.Bind("customer", "c_nationkey"), nkeys);
  int ckeys = q.SetKey(q.Proj(cl, q.Bind("customer", "c_custkey")));
  int cnat = q.Proj(cr, nkeys);

  int odate = q.Bind("orders", "o_orderdate");
  int ocand = q.Select(odate, q.Nil(), q.D(Date(1994, 1, 1)), q.D(Date(1995, 1, 1)),
                       true, false);
  int ocust = q.Proj(ocand, q.Bind("orders", "o_custkey"));
  auto [ol, ocr] = q.Join(ocust, ckeys);
  int okeys = q.SetKey(q.Proj(q.Proj(ol, ocand), q.Bind("orders", "o_orderkey")));
  int cnat_o = q.Proj(ocr, cnat);

  auto [ll, lr] = q.Join(q.Bind("lineitem", "l_orderkey"), okeys);
  int lsupp = q.Proj(ll, q.Bind("lineitem", "l_suppkey"));
  auto [sl, sr] = q.Join(lsupp, q.Bind("supplier", "s_suppkey"));
  int snat = q.Proj(sr, q.Bind("supplier", "s_nationkey"));
  int cnat_l = q.Proj(sl, q.Proj(lr, cnat_o));

  int same = q.Eq(snat, cnat_l);
  int rows = q.SelectTrue(same, q.Nil());

  int ext_row = q.Proj(sl, q.Proj(ll, q.Bind("lineitem", "l_extendedprice")));
  int disc_row = q.Proj(sl, q.Proj(ll, q.Bind("lineitem", "l_discount")));
  int rev = q.Proj(rows, q.Mul(ext_row, q.OneMinus(disc_row)));
  int nat_rows = q.Proj(rows, snat);

  auto g = q.Group(nat_rows);
  int revenue = q.SubSum(rev, g);
  int rep_nat = q.Proj(g.extents, nat_rows);
  auto [xl, xr] = q.Join(rep_nat, q.Bind("nation", "n_nationkey"));
  (void)xl;
  int names = q.Proj(xr, q.Bind("nation", "n_name"));
  auto [rev_sorted, order] = q.SortBy(revenue);
  q.Ret(q.Proj(order, names));
  q.Ret(rev_sorted);
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change.
Program BuildQ6(const TpchDb& db) {
  Q q(db);
  int shipdate = q.Bind("lineitem", "l_shipdate");
  int c1 = q.Select(shipdate, q.Nil(), q.D(Date(1994, 1, 1)), q.D(Date(1995, 1, 1)),
                    true, false);
  int disc = q.Bind("lineitem", "l_discount");
  int c2 = q.Select(disc, c1, q.D(0.05), q.D(0.07));
  int qty = q.Bind("lineitem", "l_quantity");
  int c3 = q.Select(qty, c2, q.D(-kInf), q.D(24.0), true, false);
  int rev = q.Mul(q.Proj(c3, q.Bind("lineitem", "l_extendedprice")), q.Proj(c3, disc));
  q.Ret(q.Sum(rev));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q7: volume shipping between FRANCE and GERMANY.
Program BuildQ7(const TpchDb& db) {
  Q q(db);
  double fr = db.Code("n_name", "FRANCE");
  double de = db.Code("n_name", "GERMANY");
  // Nation keys equal the n_name codes' row positions (dense key 0-based),
  // but resolve them through the nation table as the SQL plan would.
  int nname = q.Bind("nation", "n_name");
  int nkey = q.Bind("nation", "n_nationkey");
  int both = q.Union(q.SelectEq(nname, q.Nil(), fr), q.SelectEq(nname, q.Nil(), de));
  int nkeys2 = q.SetKey(q.Proj(both, nkey));

  // Suppliers in either nation.
  auto [s_in, s_nat_idx] = q.Join(q.Bind("supplier", "s_nationkey"), nkeys2);
  int skeys = q.SetKey(q.Proj(s_in, q.Bind("supplier", "s_suppkey")));
  int snat = q.Proj(s_nat_idx, nkeys2);

  int sdate = q.Bind("lineitem", "l_shipdate");
  int lcand = q.Select(sdate, q.Nil(), q.D(Date(1995, 1, 1)), q.D(Date(1996, 12, 31)));
  int lsupp = q.Proj(lcand, q.Bind("lineitem", "l_suppkey"));
  auto [jl, jr] = q.Join(lsupp, skeys);
  int snat_row = q.Proj(jr, snat);

  int lok = q.Proj(jl, q.Proj(lcand, q.Bind("lineitem", "l_orderkey")));
  auto [j2l, j2r] = q.Join(lok, q.Bind("orders", "o_orderkey"));
  int ocust = q.Proj(j2r, q.Bind("orders", "o_custkey"));
  auto [j3l, j3r] = q.Join(ocust, q.Bind("customer", "c_custkey"));
  int cnat = q.Proj(j3r, q.Bind("customer", "c_nationkey"));

  // Row-align everything with the customer join chain.
  int snat3 = q.Proj(j3l, q.Proj(j2l, snat_row));
  int ship3 = q.Proj(j3l, q.Proj(j2l, q.Proj(jl, q.Proj(lcand, sdate))));
  int ext3 = q.Proj(
      j3l, q.Proj(j2l, q.Proj(jl, q.Proj(lcand, q.Bind("lineitem", "l_extendedprice")))));
  int disc3 = q.Proj(
      j3l, q.Proj(j2l, q.Proj(jl, q.Proj(lcand, q.Bind("lineitem", "l_discount")))));

  int cond = q.Or(q.And(q.Eq(snat3, q.D(fr)), q.Eq(cnat, q.D(de))),
                  q.And(q.Eq(snat3, q.D(de)), q.Eq(cnat, q.D(fr))));
  int rows = q.SelectTrue(cond, q.Nil());

  int supp_nation = q.Proj(rows, snat3);
  int cust_nation = q.Proj(rows, cnat);
  int l_year = q.Year(q.Proj(rows, ship3));
  int volume = q.Proj(rows, q.Mul(ext3, q.OneMinus(disc3)));

  auto g1 = q.Group(supp_nation);
  auto g2 = q.SubGroup(cust_nation, g1);
  auto g3 = q.SubGroup(l_year, g2);
  int rev = q.SubSum(volume, g3);
  // Sorting clauses for supp_nation/l_year removed (App. A); order by the
  // remaining cust_nation key.
  auto [cn_sorted, order] = q.SortBy(q.Proj(g3.extents, cust_nation));
  q.Ret(q.Proj(order, q.Proj(g3.extents, supp_nation)));
  q.Ret(cn_sorted);
  q.Ret(q.Proj(order, q.Proj(g3.extents, l_year)));
  q.Ret(q.Proj(order, rev));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q8: national market share.
Program BuildQ8(const TpchDb& db) {
  Q q(db);
  int pcand = q.SelectEq(q.Bind("part", "p_type"), q.Nil(),
                         db.Code("p_type", "ECONOMY ANODIZED STEEL"));
  int pkeys = q.SetKey(q.Proj(pcand, q.Bind("part", "p_partkey")));

  auto [jl, jr] = q.Join(q.Bind("lineitem", "l_partkey"), pkeys);
  (void)jr;
  int lok = q.Proj(jl, q.Bind("lineitem", "l_orderkey"));
  auto [j2l, j2r] = q.Join(lok, q.Bind("orders", "o_orderkey"));
  int odate = q.Proj(j2r, q.Bind("orders", "o_orderdate"));

  // Customers in region AMERICA.
  int rcand = q.SelectEq(q.Bind("region", "r_name"), q.Nil(), q.Code("r_name", "AMERICA"));
  int rkeys = q.SetKey(q.Proj(rcand, q.Bind("region", "r_regionkey")));
  auto [nl, nr] = q.Join(q.Bind("nation", "n_regionkey"), rkeys);
  (void)nr;
  int nkeys = q.Proj(nl, q.Bind("nation", "n_nationkey"));

  int ocust = q.Proj(j2r, q.Bind("orders", "o_custkey"));
  auto [j3l, j3r] = q.Join(ocust, q.Bind("customer", "c_custkey"));
  (void)j3l;  // FK join: all rows match, alignment preserved
  int cnat = q.Proj(j3r, q.Bind("customer", "c_nationkey"));

  int in_america = q.Semi(cnat, nkeys);
  int rows = q.Select(odate, in_america, q.D(Date(1995, 1, 1)),
                      q.D(Date(1996, 12, 31)));

  int lsupp_row = q.Proj(j2l, q.Proj(jl, q.Bind("lineitem", "l_suppkey")));
  auto [j4l, j4r] = q.Join(lsupp_row, q.Bind("supplier", "s_suppkey"));
  (void)j4l;  // FK join, aligned
  int snat = q.Proj(j4r, q.Bind("supplier", "s_nationkey"));

  int ext = q.Proj(j2l, q.Proj(jl, q.Bind("lineitem", "l_extendedprice")));
  int disc = q.Proj(j2l, q.Proj(jl, q.Bind("lineitem", "l_discount")));
  int volume = q.Proj(rows, q.Mul(ext, q.OneMinus(disc)));
  int o_year = q.Year(q.Proj(rows, odate));
  int is_brazil = q.Eq(q.Proj(rows, snat), q.D(db.Code("n_name", "BRAZIL")));
  int brazil_vol = q.IfThenElse(is_brazil, volume, q.D(0.0));

  auto g = q.Group(o_year);
  int share = q.Div(q.SubSum(brazil_vol, g), q.SubSum(volume, g));
  auto [year_sorted, order] = q.SortBy(q.Proj(g.extents, o_year));
  q.Ret(year_sorted);
  q.Ret(q.Proj(order, share));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting.
Program BuildQ10(const TpchDb& db) {
  Q q(db);
  int ocand = q.Select(q.Bind("orders", "o_orderdate"), q.Nil(),
                       q.D(Date(1993, 10, 1)), q.D(Date(1994, 1, 1)), true, false);
  int okeys = q.SetKey(q.Proj(ocand, q.Bind("orders", "o_orderkey")));
  int lcand = q.SelectEq(q.Bind("lineitem", "l_returnflag"), q.Nil(),
                         q.Code("l_returnflag", "R"));
  int lok = q.Proj(lcand, q.Bind("lineitem", "l_orderkey"));
  auto [jl, jr] = q.Join(lok, okeys);

  int ext = q.Proj(jl, q.Proj(lcand, q.Bind("lineitem", "l_extendedprice")));
  int disc = q.Proj(jl, q.Proj(lcand, q.Bind("lineitem", "l_discount")));
  int rev = q.Mul(ext, q.OneMinus(disc));
  int cust = q.Proj(jr, q.Proj(ocand, q.Bind("orders", "o_custkey")));

  auto g = q.Group(cust);
  int revenue = q.SubSum(rev, g);
  int rep_cust = q.Proj(g.extents, cust);
  auto [al, ar] = q.Join(rep_cust, q.Bind("customer", "c_custkey"));
  (void)al;
  int acct = q.Proj(ar, q.Bind("customer", "c_acctbal"));
  auto [bl, br] = q.Join(q.Proj(ar, q.Bind("customer", "c_nationkey")),
                         q.Bind("nation", "n_nationkey"));
  (void)bl;
  int nname = q.Proj(br, q.Bind("nation", "n_name"));

  // Order by revenue (LIMIT removed, App. A).
  auto [rev_sorted, order] = q.SortBy(revenue);
  q.Ret(q.Proj(order, rep_cust));
  q.Ret(rev_sorted);
  q.Ret(q.Proj(order, acct));
  q.Ret(q.Proj(order, nname));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q11: important stock identification.
Program BuildQ11(const TpchDb& db) {
  Q q(db);
  int scand = q.SelectEq(q.Bind("supplier", "s_nationkey"), q.Nil(),
                         q.Code("n_name", "GERMANY"));
  int skeys = q.SetKey(q.Proj(scand, q.Bind("supplier", "s_suppkey")));
  auto [jl, jr] = q.Join(q.Bind("partsupp", "ps_suppkey"), skeys);
  (void)jr;
  int value = q.Mul(q.Proj(jl, q.Bind("partsupp", "ps_supplycost")),
                    q.Flt(q.Proj(jl, q.Bind("partsupp", "ps_availqty"))));
  // HAVING threshold: sum(value) * 0.0001 == sum(value * 0.0001).
  int threshold = q.Sum(q.Mul(value, q.D(0.0001)));

  int pk = q.Proj(jl, q.Bind("partsupp", "ps_partkey"));
  auto g = q.Group(pk);
  int sums = q.SubSum(value, g);
  int sel = q.Select(sums, q.Nil(), threshold, q.D(kInf), false, true);
  int out_part = q.Proj(sel, q.Proj(g.extents, pk));
  int out_value = q.Proj(sel, sums);
  auto [val_sorted, order] = q.SortBy(out_value);
  q.Ret(q.Proj(order, out_part));
  q.Ret(val_sorted);
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority.
Program BuildQ12(const TpchDb& db) {
  Q q(db);
  int mode = q.Bind("lineitem", "l_shipmode");
  int c_mail = q.SelectEq(mode, q.Nil(), q.Code("l_shipmode", "MAIL"));
  int c_ship = q.SelectEq(mode, q.Nil(), q.Code("l_shipmode", "SHIP"));
  int cm = q.Union(c_mail, c_ship);
  int cr = q.Select(q.Bind("lineitem", "l_receiptdate"), cm, q.D(Date(1994, 1, 1)),
                    q.D(Date(1995, 1, 1)), true, false);
  int commit_lt_receipt =
      q.Lt(q.Bind("lineitem", "l_commitdate"), q.Bind("lineitem", "l_receiptdate"));
  int c2 = q.SelectTrue(commit_lt_receipt, cr);
  int ship_lt_commit =
      q.Lt(q.Bind("lineitem", "l_shipdate"), q.Bind("lineitem", "l_commitdate"));
  int rows = q.SelectTrue(ship_lt_commit, c2);

  int lok = q.Proj(rows, q.Bind("lineitem", "l_orderkey"));
  auto [jl, jr] = q.Join(lok, q.Bind("orders", "o_orderkey"));
  (void)jl;  // FK join, aligned with `rows`
  int prio = q.Proj(jr, q.Bind("orders", "o_orderpriority"));
  int high = q.Or(q.Eq(prio, q.D(q.Code("o_orderpriority", "1-URGENT"))),
                  q.Eq(prio, q.D(q.Code("o_orderpriority", "2-HIGH"))));
  int low = q.Sub(q.D(1.0), high);

  auto g = q.Group(q.Proj(rows, mode));
  int high_count = q.SubSum(q.Flt(high), g);
  int low_count = q.SubSum(low, g);
  auto [mode_sorted, order] = q.SortBy(q.Proj(g.extents, q.Proj(rows, mode)));
  q.Ret(mode_sorted);
  q.Ret(q.Proj(order, high_count));
  q.Ret(q.Proj(order, low_count));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q15: top supplier (view inlined; max instead of LIMIT).
Program BuildQ15(const TpchDb& db) {
  Q q(db);
  int lcand = q.Select(q.Bind("lineitem", "l_shipdate"), q.Nil(),
                       q.D(Date(1996, 1, 1)), q.D(Date(1996, 4, 1)), true, false);
  int sk = q.Proj(lcand, q.Bind("lineitem", "l_suppkey"));
  int rev = q.Mul(q.Proj(lcand, q.Bind("lineitem", "l_extendedprice")),
                  q.OneMinus(q.Proj(lcand, q.Bind("lineitem", "l_discount"))));
  auto g = q.Group(sk);
  int total = q.SubSum(rev, g);
  int mx = q.Max(total);
  int sel = q.Select(total, q.Nil(), mx, mx);
  int supp = q.Proj(sel, q.Proj(g.extents, sk));
  int top_rev = q.Proj(sel, total);
  auto [supp_sorted, order] = q.SortBy(supp);
  q.Ret(supp_sorted);
  q.Ret(q.Proj(order, top_rev));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q17: small-quantity-order revenue.
Program BuildQ17(const TpchDb& db) {
  Q q(db);
  int pc1 = q.SelectEq(q.Bind("part", "p_brand"), q.Nil(), q.Code("p_brand", "Brand#23"));
  int pc2 = q.SelectEq(q.Bind("part", "p_container"), pc1,
                       q.Code("p_container", "MED BOX"));
  int pkeys = q.SetKey(q.Proj(pc2, q.Bind("part", "p_partkey")));

  // Per-part average quantity over ALL lineitems (the correlated subquery).
  int lpk = q.Bind("lineitem", "l_partkey");
  auto ag = q.Group(lpk);
  int avg_qty = q.SubAvg(q.Bind("lineitem", "l_quantity"), ag);
  int rep_pk = q.SetKey(q.Proj(ag.extents, lpk));

  auto [jl, jr] = q.Join(lpk, pkeys);
  (void)jr;
  int qty = q.Proj(jl, q.Bind("lineitem", "l_quantity"));
  int pk_rows = q.Proj(jl, lpk);
  auto [j2l, j2r] = q.Join(pk_rows, rep_pk);
  int qty2 = q.Proj(j2l, qty);
  int limit = q.Mul(q.D(0.2), q.Proj(j2r, avg_qty));
  int cond = q.Lt(qty2, limit);
  int rows = q.SelectTrue(cond, q.Nil());
  int price = q.Proj(rows, q.Proj(j2l, q.Proj(jl, q.Bind("lineitem", "l_extendedprice"))));
  // avg_yearly = sum(price) / 7; fold the constant into the sum's input.
  q.Ret(q.Sum(q.Mul(price, q.D(1.0 / 7.0))));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q18: large volume customer (not in the paper's Fig. 7 runs; see queries.h).
Program BuildQ18(const TpchDb& db) {
  Q q(db);
  int lok = q.Bind("lineitem", "l_orderkey");
  auto g = q.Group(lok);
  int qsum = q.SubSum(q.Bind("lineitem", "l_quantity"), g);
  int sel = q.Select(qsum, q.Nil(), q.D(300.0), q.D(kInf), false, true);
  int bigkeys = q.SetKey(q.Proj(sel, q.Proj(g.extents, lok)));

  auto [jl, jr] = q.Join(q.Bind("orders", "o_orderkey"), bigkeys);
  int okey = q.Proj(jl, q.Bind("orders", "o_orderkey"));
  int cust = q.Proj(jl, q.Bind("orders", "o_custkey"));
  int total = q.Proj(jl, q.Bind("orders", "o_totalprice"));
  int odate = q.Proj(jl, q.Bind("orders", "o_orderdate"));
  int oqty = q.Proj(jr, q.Proj(sel, qsum));

  // Order by o_totalprice (o_orderdate clause and LIMIT removed, App. A).
  auto [tp_sorted, order] = q.SortBy(total);
  q.Ret(q.Proj(order, cust));
  q.Ret(q.Proj(order, okey));
  q.Ret(tp_sorted);
  q.Ret(q.Proj(order, odate));
  q.Ret(q.Proj(order, oqty));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue (three disjunctive branches, bitmap OR).
Program BuildQ19(const TpchDb& db) {
  Q q(db);
  struct Branch {
    const char* brand;
    const char* sizes;  // container size prefix
    double qmin;
    int psize_max;
  };
  const Branch branches[] = {{"Brand#12", "SM", 1, 5},
                             {"Brand#23", "MED", 10, 10},
                             {"Brand#34", "LG", 20, 15}};
  const char* kContainerTypes[] = {"CASE", "BOX", "PACK", "PKG"};

  int lqty = q.Bind("lineitem", "l_quantity");
  int lmode = q.Bind("lineitem", "l_shipmode");
  int linstr = q.Bind("lineitem", "l_shipinstruct");
  int lpk = q.Bind("lineitem", "l_partkey");

  int rows = -1;
  for (const Branch& br : branches) {
    int pc = q.SelectEq(q.Bind("part", "p_brand"), q.Nil(),
                        q.Code("p_brand", br.brand));
    int containers = -1;
    for (const char* ct : kContainerTypes) {
      int c = q.SelectEq(q.Bind("part", "p_container"), pc,
                         q.Code("p_container", std::string(br.sizes) + " " + ct));
      containers = containers < 0 ? c : q.Union(containers, c);
    }
    int psz = q.Select(q.Bind("part", "p_size"), containers, q.D(1.0),
                       q.D(br.psize_max));
    int pkeys = q.Proj(psz, q.Bind("part", "p_partkey"));

    int s1 = q.Semi(lpk, pkeys);
    int s2 = q.Select(lqty, s1, q.D(br.qmin), q.D(br.qmin + 10));
    int s3 = q.SelectEq(linstr, s2, q.Code("l_shipinstruct", "DELIVER IN PERSON"));
    int s4a = q.SelectEq(lmode, s3, q.Code("l_shipmode", "AIR"));
    int s4b = q.SelectEq(lmode, s3, q.Code("l_shipmode", "REG AIR"));
    int sb = q.Union(s4a, s4b);
    rows = rows < 0 ? sb : q.Union(rows, sb);
  }

  int rev = q.Mul(q.Proj(rows, q.Bind("lineitem", "l_extendedprice")),
                  q.OneMinus(q.Proj(rows, q.Bind("lineitem", "l_discount"))));
  q.Ret(q.Sum(rev));
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q21: suppliers who kept orders waiting (EXISTS/NOT EXISTS via per-orderkey
// distinct-supplier counting).
Program BuildQ21(const TpchDb& db) {
  Q q(db);
  int lok = q.Bind("lineitem", "l_orderkey");
  int lsk = q.Bind("lineitem", "l_suppkey");

  // EXISTS l2: orderkeys shipped by more than one supplier.
  auto g1 = q.Group(lok);
  auto g2 = q.SubGroup(lsk, g1);
  int pair_ok = q.Proj(g2.extents, lok);
  auto pg = q.Group(pair_ok);
  int supp_per_ok = q.SubCount(pg);
  int multi = q.Select(supp_per_ok, q.Nil(), q.D(2.0), q.D(kInf));
  int ok_multi = q.Proj(multi, q.Proj(pg.extents, pair_ok));

  // NOT EXISTS l3: among *late* lineitems, orderkeys with exactly one supplier.
  int late = q.Lt(q.Bind("lineitem", "l_commitdate"), q.Bind("lineitem", "l_receiptdate"));
  int lcand = q.SelectTrue(late, q.Nil());
  int dok = q.Proj(lcand, lok);
  int dsk = q.Proj(lcand, lsk);
  auto h1 = q.Group(dok);
  auto h2 = q.SubGroup(dsk, h1);
  int pair_ok2 = q.Proj(h2.extents, dok);
  auto pg2 = q.Group(pair_ok2);
  int late_supp_per_ok = q.SubCount(pg2);
  int single = q.SelectEq(late_supp_per_ok, q.Nil(), 1.0);
  int ok_single = q.Proj(single, q.Proj(pg2.extents, pair_ok2));

  // l1: late lineitems of SAUDI ARABIA suppliers on F-status orders.
  int scand = q.SelectEq(q.Bind("supplier", "s_nationkey"), q.Nil(),
                         q.Code("n_name", "SAUDI ARABIA"));
  int skeys = q.SetKey(q.Proj(scand, q.Bind("supplier", "s_suppkey")));
  int sj = q.Semi(dsk, skeys);  // positions into lcand rows

  int fcand = q.SelectEq(q.Bind("orders", "o_orderstatus"), q.Nil(),
                         q.Code("o_orderstatus", "F"));
  int fkeys = q.Proj(fcand, q.Bind("orders", "o_orderkey"));

  int ok_rows = q.Proj(sj, dok);            // orderkeys of candidate l1 rows
  int sk_rows = q.Proj(sj, dsk);            // suppkeys of candidate l1 rows
  int in_f = q.Semi(ok_rows, fkeys);
  int ok2 = q.Proj(in_f, ok_rows);
  int sk2 = q.Proj(in_f, sk_rows);
  int in_multi = q.Semi(ok2, ok_multi);
  int ok3 = q.Proj(in_multi, ok2);
  int sk3 = q.Proj(in_multi, sk2);
  int in_single = q.Semi(ok3, ok_single);
  int sk4 = q.Proj(in_single, sk3);

  auto g = q.Group(sk4);
  int numwait = q.SubCount(g);
  // Order by numwait (the s_name clause is removed, App. A).
  auto [wait_sorted, order] = q.SortBy(q.Flt(numwait));
  int rep_supp = q.Proj(g.extents, sk4);
  auto [xl, xr] = q.Join(rep_supp, q.Bind("supplier", "s_suppkey"));
  (void)xl;
  q.Ret(q.Proj(order, q.Proj(xr, q.Bind("supplier", "s_name"))));
  q.Ret(wait_sorted);
  return q.Build();
}

}  // namespace

std::vector<int> PaperWorkload() {
  return {1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19, 21};
}

std::vector<int> AllQueries() {
  return {1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 18, 19, 21};
}

common::Result<Program> BuildQuery(int query, const TpchDb& db) {
  switch (query) {
    case 1:
      return BuildQ1(db);
    case 3:
      return BuildQ3(db);
    case 4:
      return BuildQ4(db);
    case 5:
      return BuildQ5(db);
    case 6:
      return BuildQ6(db);
    case 7:
      return BuildQ7(db);
    case 8:
      return BuildQ8(db);
    case 10:
      return BuildQ10(db);
    case 11:
      return BuildQ11(db);
    case 12:
      return BuildQ12(db);
    case 15:
      return BuildQ15(db);
    case 17:
      return BuildQ17(db);
    case 18:
      return BuildQ18(db);
    case 19:
      return BuildQ19(db);
    case 21:
      return BuildQ21(db);
    default:
      return Status::InvalidArgument("query " + std::to_string(query) +
                                     " is not part of the workload (App. A)");
  }
}

}  // namespace tpch
