#ifndef OCELOT_TPCH_QUERIES_H_
#define OCELOT_TPCH_QUERIES_H_

#include <vector>

#include "mal/program.h"
#include "tpch/dbgen.h"

namespace tpch {

/// The paper's modified TPC-H workload (Appendix A): queries 1, 3, 4, 5, 6,
/// 7, 8, 10, 11, 12, 15, 17, 19, 21 with the documented modifications (no
/// LIKE, no LIMIT, no multi-column sort; DECIMAL -> REAL). The paper's
/// MonetDB build could not run Q18; ours can, so BuildQuery also accepts 18,
/// but Fig. 7 reproduction uses PaperWorkload().
std::vector<int> PaperWorkload();

/// All queries this reproduction implements (the paper workload + Q18).
std::vector<int> AllQueries();

/// Builds the BAT-algebra plan of query `q` against the generated database
/// (dictionary codes and date literals are resolved at build time, like
/// MonetDB's SQL front-end does).
common::Result<mal::Program> BuildQuery(int q, const TpchDb& db);

}  // namespace tpch

#endif  // OCELOT_TPCH_QUERIES_H_
