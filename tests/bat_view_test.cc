// Tests for zero-copy BAT views (shared tail heaps): aliasing, property
// inheritance, lifetime (the heap outlives whichever of parent/view dies
// first), heap-identity bookkeeping for the memory manager's buffer cache,
// and the fixed-size contract (no ResizeTail on views).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cstore/bat.h"

namespace {

using cstore::Bat;
using cstore::BatPtr;
using cstore::oid_t;
using cstore::ValType;

BatPtr Iota(std::size_t n) {
  BatPtr b = Bat::MakeInt(n);
  std::iota(b->ints().begin(), b->ints().end(), 0);
  return b;
}

TEST(BatViewTest, AliasesParentStorage) {
  BatPtr parent = Iota(100);
  BatPtr view = Bat::View(parent, 40, 20);
  ASSERT_EQ(view->size(), 20u);
  EXPECT_TRUE(view->is_view());
  EXPECT_FALSE(parent->is_view());
  // Same bytes, not a copy: the view's data points into the parent heap...
  EXPECT_EQ(view->data(), static_cast<const std::byte*>(parent->data()) + 40 * 4);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(view->ints()[i], static_cast<std::int32_t>(40 + i));
  }
  // ...so writes through the parent are visible through the view.
  parent->ints()[45] = -7;
  EXPECT_EQ(view->ints()[5], -7);
}

TEST(BatViewTest, SharesHeapIdentityWithParent) {
  BatPtr parent = Iota(64);
  BatPtr whole = Bat::View(parent, 0, 64);
  BatPtr part = Bat::View(parent, 16, 32);
  // Distinct descriptors...
  EXPECT_NE(whole->id(), parent->id());
  // ...one heap: (heap, offset, bytes) identifies the covered range.
  EXPECT_EQ(whole->heap_id(), parent->heap_id());
  EXPECT_EQ(part->heap_id(), parent->heap_id());
  EXPECT_EQ(parent->heap_offset(), 0u);
  EXPECT_EQ(whole->heap_offset(), 0u);
  EXPECT_EQ(part->heap_offset(), 16u * 4);
  EXPECT_EQ(part->tail_bytes(), 32u * 4);
}

TEST(BatViewTest, ViewOfViewCollapses) {
  BatPtr parent = Iota(100);
  BatPtr outer = Bat::View(parent, 20, 60);
  BatPtr inner = Bat::View(outer, 10, 30);  // rows 30..60 of the parent
  EXPECT_EQ(inner->heap_id(), parent->heap_id());
  EXPECT_EQ(inner->heap_offset(), 30u * 4);
  EXPECT_EQ(inner->ints()[0], 30);
  EXPECT_EQ(inner->ints()[29], 59);
}

TEST(BatViewTest, InheritsPropertyBits) {
  BatPtr parent = Iota(50);
  parent->set_sorted(true);
  parent->set_key(true);
  parent->set_nonil(true);
  BatPtr view = Bat::View(parent, 10, 20);
  EXPECT_TRUE(view->sorted());
  EXPECT_TRUE(view->key());
  EXPECT_TRUE(view->nonil());
  // The head keeps the parent's numbering: row 0 of the view is row 10.
  EXPECT_EQ(view->hseqbase(), parent->hseqbase() + 10);
}

TEST(BatViewTest, InheritsDeviceOwnership) {
  // Device ownership travels with the bytes: a view of an unsynced
  // device-resident BAT must not masquerade as host-resident.
  BatPtr parent = Iota(50);
  parent->set_ocelot_owned(true);
  BatPtr view = Bat::View(parent, 0, 25);
  EXPECT_TRUE(view->ocelot_owned());
  parent->set_ocelot_owned(false);
  EXPECT_FALSE(Bat::View(parent, 0, 25)->ocelot_owned());
}

TEST(BatViewTest, DenseViewShiftsTseqbase) {
  BatPtr cand = Bat::DenseOids(100, /*base=*/5);
  BatPtr view = Bat::View(cand, 30, 40);
  ASSERT_TRUE(view->dense());
  EXPECT_EQ(view->tseqbase(), 35u);
  EXPECT_EQ(view->oids()[0], 35u);
  EXPECT_TRUE(view->sorted());
  EXPECT_TRUE(view->key());
}

TEST(BatViewTest, HeapSurvivesParentRelease) {
  BatPtr view;
  std::uint64_t heap = 0;
  {
    BatPtr parent = Iota(1000);
    heap = parent->heap_id();
    view = Bat::View(parent, 500, 100);
  }
  // The parent descriptor is gone; the view pinned the heap.
  EXPECT_EQ(view->heap_id(), heap);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(view->ints()[i], static_cast<std::int32_t>(500 + i));
  }
}

TEST(BatViewTest, HeapListenerFiresOnceAfterLastOwner) {
  std::vector<std::uint64_t> died;
  std::uint64_t token =
      Bat::AddHeapDeleteListener([&](std::uint64_t id) { died.push_back(id); });
  std::uint64_t heap = 0;
  {
    BatPtr view;
    {
      BatPtr parent = Iota(10);
      heap = parent->heap_id();
      view = Bat::View(parent, 0, 10);
    }
    // Parent released, view alive: the heap must not have died.
    EXPECT_TRUE(std::find(died.begin(), died.end(), heap) == died.end());
  }
  // Last owner (the view) released: exactly one death notification.
  EXPECT_EQ(std::count(died.begin(), died.end(), heap), 1);
  Bat::RemoveHeapDeleteListener(token);
}

TEST(BatViewDeathTest, ResizeTailOnViewIsFatal) {
  BatPtr parent = Iota(10);
  BatPtr view = Bat::View(parent, 2, 4);
  EXPECT_DEATH(view->ResizeTail(8), "ResizeTail on a BAT view");
}

TEST(BatViewDeathTest, ResizeTailUnderLiveViewsIsFatal) {
  // The other side of the fixed-size contract: a parent must not shrink or
  // reallocate the heap while views alias it.
  BatPtr parent = Iota(10);
  BatPtr view = Bat::View(parent, 2, 4);
  EXPECT_DEATH(parent->ResizeTail(4), "live views");
}

TEST(BatViewDeathTest, OutOfRangeViewIsFatal) {
  BatPtr parent = Iota(10);
  EXPECT_DEATH(Bat::View(parent, 8, 4), "exceeds parent");
}

}  // namespace
