// Unit tests for the shared infrastructure: Status/Result, aligned
// allocation, bit vectors, hashing, RNG and date arithmetic.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <atomic>

#include "common/aligned.h"
#include "common/bitvector.h"
#include "common/date.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace {

using common::BitVector;
using common::HashFamily;
using common::Result;
using common::Rng;
using common::Status;
using common::StatusCode;

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad selectivity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad selectivity");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("no BAT"); };
  auto outer = [&]() -> Status {
    RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);

  Result<int> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturn) {
  auto maybe = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("nope");
    return 41;
  };
  auto use = [&](bool fail) -> Result<int> {
    ASSIGN_OR_RETURN(int v, maybe(fail));
    return v + 1;
  };
  EXPECT_EQ(*use(false), 42);
  EXPECT_FALSE(use(true).ok());
}

TEST(AlignedTest, HeapAlignmentContract) {
  for (std::size_t bytes : {1u, 17u, 128u, 1000u, 65536u}) {
    void* p = common::AlignedAlloc(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % common::kHeapAlignment, 0u);
    common::AlignedFree(p);
  }
}

TEST(AlignedTest, VectorUsesAlignedStorage) {
  std::vector<int, common::AlignedAllocator<int>> v(1000, 3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % common::kHeapAlignment, 0u);
  EXPECT_EQ(v[999], 3);
}

TEST(BitVectorTest, SetGetClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.CountOnes(), 0u);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountOnes(), 3u);
  bv.Clear(64);
  EXPECT_EQ(bv.CountOnes(), 2u);
}

TEST(BitVectorTest, CountIgnoresSlackBytes) {
  BitVector bv(9);  // one word, 55 slack bits
  // Simulate a kernel writing a full byte pattern past the logical end.
  bv.bytes()[0] = 0xFF;
  bv.bytes()[1] = 0xFF;
  EXPECT_EQ(bv.CountOnes(), 9u);
}

TEST(BitVectorTest, LogicalOps) {
  BitVector a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.Set(i);  // evens
  for (std::size_t i = 0; i < 100; i += 3) b.Set(i);  // multiples of 3
  BitVector a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.CountOnes(), 17u);  // multiples of 6 in [0,100): 0,6,...,96
  BitVector a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.CountOnes(), 50u + 34u - 17u);
  BitVector neg = a;
  neg.Not();
  EXPECT_EQ(neg.CountOnes(), 50u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_NE(a.Get(i), neg.Get(i));
}

TEST(BitVectorTest, AppendSetPositions) {
  BitVector bv(200);
  bv.Set(3);
  bv.Set(63);
  bv.Set(64);
  bv.Set(199);
  std::vector<std::uint32_t> pos;
  bv.AppendSetPositions(&pos, /*base=*/1000);
  EXPECT_EQ(pos, (std::vector<std::uint32_t>{1003, 1063, 1064, 1199}));
}

TEST(HashTest, FamilyMembersDisagree) {
  HashFamily family;
  // The six functions of the pessimistic round must be distinct: a key that
  // collides under one member should usually escape under another.
  std::set<std::uint32_t> slots;
  for (int f = 0; f < HashFamily::kFunctions; ++f) {
    slots.insert(family.Hash(f, 12345) % 1024);
  }
  EXPECT_GT(slots.size(), 3u);
}

TEST(HashTest, DeterministicAcrossInstances) {
  HashFamily a, b;
  for (int f = 0; f < HashFamily::kFunctions; ++f) {
    EXPECT_EQ(a.Hash(f, 99), b.Hash(f, 99));
  }
}

TEST(HashTest, Mix32SpreadsLowBits) {
  // Sequential keys must not map to sequential buckets.
  std::set<std::uint32_t> buckets;
  for (std::uint32_t k = 0; k < 1000; ++k) buckets.insert(common::Mix32(k) % 64);
  EXPECT_EQ(buckets.size(), 64u);
}

TEST(RngTest, DeterministicStreams) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DateTest, KnownEpochValues) {
  EXPECT_EQ(common::date::FromYmd(1970, 1, 1), 0);
  EXPECT_EQ(common::date::FromYmd(1970, 1, 2), 1);
  EXPECT_EQ(common::date::FromYmd(1969, 12, 31), -1);
  EXPECT_EQ(common::date::FromYmd(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripAcrossTpchRange) {
  // TPC-H dates span 1992..1998; check every ~7th day round-trips.
  for (std::int32_t d = common::date::FromYmd(1992, 1, 1);
       d <= common::date::FromYmd(1998, 12, 31); d += 7) {
    int y, m, day;
    common::date::ToYmd(d, &y, &m, &day);
    EXPECT_EQ(common::date::FromYmd(y, m, day), d);
  }
}

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ(common::date::ToString(common::date::FromYmd(1995, 3, 15)), "1995-03-15");
}

TEST(DateTest, AddMonthsClampsDay) {
  std::int32_t jan31 = common::date::FromYmd(1995, 1, 31);
  EXPECT_EQ(common::date::ToString(common::date::AddMonths(jan31, 1)), "1995-02-28");
  std::int32_t oct = common::date::FromYmd(1993, 10, 1);
  EXPECT_EQ(common::date::ToString(common::date::AddMonths(oct, 3)), "1994-01-01");
}

TEST(DateTest, AddYears) {
  std::int32_t d = common::date::FromYmd(1994, 1, 1);
  EXPECT_EQ(common::date::ToString(common::date::AddYears(d, 1)), "1995-01-01");
  std::int32_t leap = common::date::FromYmd(1996, 2, 29);
  EXPECT_EQ(common::date::ToString(common::date::AddYears(leap, 1)), "1997-02-28");
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    for (int n : {0, 1, 3, 17, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      pool.ParallelFor(n, [&](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i << " with " << threads << " threads";
      }
    }
  }
}

TEST(ThreadPoolTest, ConcurrentIndicesSeeDisjointSlots) {
  common::ThreadPool pool(4);
  std::vector<std::int64_t> out(512, -1);
  pool.ParallelFor(512, [&](int i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(i) * i;
  });
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<std::int64_t>(i) * i);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  common::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    // A task fanning out again must not deadlock; the inner loop runs
    // inline on the owning lane.
    pool.ParallelFor(8, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  common::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(7, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  common::ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(common::ThreadPool::Global().threads(), 2);
  std::atomic<int> total{0};
  common::ThreadPool::Global().ParallelFor(10, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
  common::ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(common::ThreadPool::Global().threads(), 1);
  common::ThreadPool::SetGlobalThreads(common::ThreadPool::EnvThreads());
}

TEST(ThreadPoolTest, ConcurrentCallersShareThePoolWithoutSerializing) {
  // Two threads fan out on the same pool at once, and their batches
  // *rendezvous*: an index of batch A spins until an index of batch B ran.
  // Under the old single-published-batch pool, concurrent ParallelFor
  // calls serialized on a caller mutex, so A's batch blocked B's from ever
  // starting and this deadlocked. The concurrent-session pool must
  // interleave the two batches (each caller participates in its own batch,
  // so this holds at any pool size, even one lane).
  common::ThreadPool pool(2);
  std::atomic<bool> b_ran{false};
  std::atomic<int> total{0};
  std::thread a([&] {
    pool.ParallelFor(2, [&](int) {
      while (!b_ran.load()) std::this_thread::yield();
      total.fetch_add(1);
    });
  });
  std::thread b([&] {
    pool.ParallelFor(2, [&](int) {
      b_ran.store(true);
      total.fetch_add(1);
    });
  });
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPoolTest, ManyConcurrentCallersAllComplete) {
  common::ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(5, [&](int) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 8 * 20 * 5);
}

}  // namespace
