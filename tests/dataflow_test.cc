// Tests for the MAL dataflow executor: dependency-DAG derivation (RAW edges,
// in-place-mutation ordering, liveness counts), critical-path billing,
// eager intermediate release (including mid-query device-cache reaping),
// concurrent execution on the thread pool, and the OCELOT_DATAFLOW escape
// hatch's bit-equality contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/vclock.h"
#include "mal/engines.h"
#include "mal/interp.h"
#include "mal/rewriter.h"
#include "monet/seq_engine.h"
#include "ocelot/engine.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

using common::Nanos;
using cstore::BatPtr;
using mal::Dataflow;
using mal::Program;
using mal::ProgramBuilder;
using mal::RunOptions;

/// Restores the global pool to its environment-derived size (the tests
/// below sweep it).
void RestoreGlobalThreads() {
  common::ThreadPool::SetGlobalThreads(common::ThreadPool::EnvThreads());
}

// --- DAG derivation -----------------------------------------------------------

TEST(DataflowAnalysisTest, DiamondEdgesAndLiveness) {
  // v0 := bind; v1 := year(v0); v2 := mirror(v0); v3 := join(v1, v2).
  ProgramBuilder b;
  int t = b.Const(std::string("t"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  int v1 = b.Emit("batcalc", "year", {v0});
  int v2 = b.Emit("bat", "mirror", {v0});
  auto v3 = b.EmitMulti("algebra", "join", {v1, v2}, 2);
  b.Return(v3[0]);
  Program p = b.Build();

  Dataflow d = mal::AnalyzeDataflow(p);
  ASSERT_EQ(d.instructions(), 4);
  EXPECT_TRUE(d.preds[0].empty());
  EXPECT_EQ(d.preds[1], (std::vector<int>{0}));
  EXPECT_EQ(d.preds[2], (std::vector<int>{0}));
  EXPECT_EQ(d.preds[3], (std::vector<int>{1, 2}));
  EXPECT_EQ(d.succs[0], (std::vector<int>{1, 2}));

  // v0 is touched by bind (ret), year and mirror; dies after both readers.
  EXPECT_EQ(d.use_count[static_cast<std::size_t>(v0)], 3);
  // The returned variable is never released.
  EXPECT_TRUE(d.returned[static_cast<std::size_t>(v3[0])]);
  EXPECT_FALSE(d.returned[static_cast<std::size_t>(v3[1])]);
}

TEST(DataflowAnalysisTest, SetkeyOrdersLikeAWriter) {
  // setkey mutates the BAT behind its argument in place: readers before it
  // must precede it, readers after it must follow it.
  ProgramBuilder b;
  int t = b.Const(std::string("t"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  int r1 = b.Emit("bat", "mirror", {v0});   // reader before the mutation
  int k = b.Emit("bat", "setkey", {v0});    // mutates v0's BAT
  int r2 = b.Emit("bat", "mirror", {v0});   // reader after the mutation
  b.Return(k);
  b.Return(r1);
  b.Return(r2);
  Program p = b.Build();

  Dataflow d = mal::AnalyzeDataflow(p);
  // setkey (instr 2) waits for the bind and the earlier reader...
  EXPECT_EQ(d.preds[2], (std::vector<int>{0, 1}));
  // ...and the later reader waits for setkey, not the original bind.
  EXPECT_EQ(d.preds[3], (std::vector<int>{2}));
}

TEST(DataflowAnalysisTest, SyncSerializesWithReaders) {
  ProgramBuilder b;
  int t = b.Const(std::string("t"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  int r1 = b.Emit("bat", "mirror", {v0});
  b.EmitVoid("ocelot", "sync", {v0});
  b.Return(r1);
  Program p = b.Build();

  Dataflow d = mal::AnalyzeDataflow(p);
  EXPECT_EQ(d.preds[2], (std::vector<int>{0, 1}));  // sync waits for the reader
}

TEST(DataflowAnalysisTest, CriticalPathOfDiamond) {
  ProgramBuilder b;
  int t = b.Const(std::string("t"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  int v1 = b.Emit("batcalc", "year", {v0});
  int v2 = b.Emit("bat", "mirror", {v0});
  auto v3 = b.EmitMulti("algebra", "join", {v1, v2}, 2);
  b.Return(v3[0]);
  Dataflow d = mal::AnalyzeDataflow(b.Build());

  // Longest chain: 4 (bind) -> 10 (year) -> 3 (join) = 17; the 5ns mirror
  // branch overlaps. A serial interpreter would bill the 22ns sum.
  std::vector<Nanos> costs = {4, 10, 5, 3};
  EXPECT_EQ(mal::CriticalPath(d, costs), 17);
  costs = {4, 5, 10, 3};  // now the mirror branch dominates
  EXPECT_EQ(mal::CriticalPath(d, costs), 17);
  EXPECT_EQ(mal::CriticalPath(d, {0, 0, 0, 0}), 0);
}

TEST(DataflowAnalysisTest, RewriterDedupesSyncOfTwiceReturnedVar) {
  ProgramBuilder b;
  int t = b.Const(std::string("t"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  int v1 = b.Emit("bat", "mirror", {v0});
  b.Return(v1);
  b.Return(v1);  // same variable returned twice
  Program rewritten = mal::RewriteForOcelot(b.Build());
  EXPECT_EQ(mal::CountSyncs(rewritten), 1);
}

// --- Execution ----------------------------------------------------------------

const tpch::TpchDb& Db() {
  static const tpch::TpchDb* db = new tpch::TpchDb(tpch::Generate(0.02));
  return *db;
}

common::Result<mal::ExecResult> RunQ3(mal::Session* session, RunOptions options) {
  auto plan = tpch::BuildQuery(3, Db());
  OCELOT_CHECK(plan.ok());
  mal::Program prog = *plan;
  if (session->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
  return mal::Run(prog, Db().catalog, session, options);
}

TEST(DataflowExecTest, CriticalPathBelowSerialSumOnMultiBranchQuery) {
  // Q3's customer/orders/lineitem branches are independent until the joins:
  // the DAG must bill strictly less than the instruction sum, and the
  // session clock must advance by the makespan, not the sum.
  const tpch::TpchDb& db = Db();
  auto plan = tpch::BuildQuery(3, db);
  ASSERT_TRUE(plan.ok());
  auto session = mal::Session::Open("seq");
  ASSERT_TRUE(session.ok());
  mal::DataflowStats stats;
  RunOptions options;
  options.mode = RunOptions::Mode::kDataflow;
  options.stats = &stats;
  Nanos before = (*session)->clock()->Now();
  auto res = mal::Run(*plan, db.catalog, session->get(), options);
  Nanos billed = (*session)->clock()->Now() - before;
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  EXPECT_GT(stats.serial_sum_ns, 0);
  EXPECT_LT(stats.critical_path_ns, stats.serial_sum_ns);
  // The clock moved by the critical path (plus inter-measurement noise),
  // not by the serial sum.
  EXPECT_GE(billed, stats.critical_path_ns);
  EXPECT_LT(billed, stats.serial_sum_ns);
  EXPECT_GT(stats.executed, 0);
}

TEST(DataflowExecTest, EagerReleaseDropsPeakLiveIntermediates) {
  auto session = mal::Session::Open("seq");
  ASSERT_TRUE(session.ok());
  mal::DataflowStats stats;
  RunOptions options;
  options.mode = RunOptions::Mode::kDataflow;
  options.stats = &stats;
  ASSERT_TRUE(RunQ3(session->get(), options).ok());
  EXPECT_GT(stats.released_early, 0);
  EXPECT_GT(stats.total_bat_vars, 0);
  // With every intermediate released at its last use, the peak number of
  // live BAT variables must sit strictly below the all-live total the
  // sequential interpreter would hold.
  EXPECT_LT(stats.peak_live_bats, stats.total_bat_vars);
}

/// A concurrency-safe engine whose selects block for a fixed wall-clock
/// interval before delegating: pool workers reliably pick up the second
/// branch while the first sleeps, so overlap assertions hold even on a
/// single-core CI machine (where Q3's microsecond operators can drain
/// through one lane before another thread ever gets scheduled).
class SleepySelectEngine : public monet::SequentialEngine {
 public:
  static constexpr auto kNap = std::chrono::milliseconds(20);

  std::string name() const override { return "sleepy"; }
  bool concurrency_safe() const override { return true; }
  common::Result<BatPtr> SelectRange(const BatPtr& col, const BatPtr& cand,
                                     cstore::Bound lo, cstore::Bound hi) override {
    std::this_thread::sleep_for(kNap);
    return monet::SequentialEngine::SelectRange(col, cand, lo, hi);
  }
};

/// Registers the sleepy engine under "dataflow:sleepy" (idempotent) — which
/// also exercises the external-engine session path (Pipeline::kExternal).
void EnsureSleepyEngine() {
  class Bundle : public cstore::EngineBundle {
   public:
    cstore::QueryEngine* engine() override { return &engine_; }
    common::VirtualClock* clock() override { return &clock_; }

   private:
    SleepySelectEngine engine_;
    common::VirtualClock clock_;
  };
  mal::EnsureEngineRegistry().Register(
      "dataflow:sleepy",
      [](const cstore::EngineOptions&)
          -> common::Result<std::unique_ptr<cstore::EngineBundle>> {
        return std::unique_ptr<cstore::EngineBundle>(std::make_unique<Bundle>());
      });
}

/// Two independent selects over `t.v` joined at the end — the smallest plan
/// with real branch parallelism.
Program TwoBranchPlan() {
  ProgramBuilder b;
  int col = b.Emit("bat", "bind",
                   {b.Const(std::string("t")), b.Const(std::string("v"))});
  int c1 = b.Emit("algebra", "select",
                  {col, b.Const(mal::Value{}), b.Const(0.0), b.Const(40.0),
                   b.Const(std::int64_t{1}), b.Const(std::int64_t{1})});
  int c2 = b.Emit("algebra", "select",
                  {col, b.Const(mal::Value{}), b.Const(50.0), b.Const(96.0),
                   b.Const(std::int64_t{1}), b.Const(std::int64_t{1})});
  int u = b.Emit("algebra", "candunion", {c1, c2});
  int n = b.Emit("aggr", "count", {u});
  b.Return(n);
  return b.Build();
}

cstore::Catalog SmallCatalog() {
  cstore::Catalog catalog;
  cstore::Table t("t");
  auto vals = cstore::Bat::MakeInt(1024);
  for (int i = 0; i < 1024; ++i) {
    vals->ints()[static_cast<std::size_t>(i)] = i % 97;
  }
  OCELOT_CHECK_OK(t.AddColumn("v", vals));
  OCELOT_CHECK_OK(catalog.AddTable(std::move(t)));
  return catalog;
}

TEST(DataflowExecTest, ConcurrentExecutorOverlapsIndependentBranches) {
  EnsureSleepyEngine();
  cstore::Catalog catalog = SmallCatalog();
  Program prog = TwoBranchPlan();
  common::ThreadPool::SetGlobalThreads(4);
  auto session = mal::Session::Open("dataflow:sleepy");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->pipeline(), mal::Pipeline::kExternal);
  mal::DataflowStats stats;
  RunOptions options;
  options.mode = RunOptions::Mode::kDataflow;
  options.stats = &stats;
  auto res = mal::Run(prog, catalog, session->get(), options);
  RestoreGlobalThreads();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(stats.parallel);  // the engine is concurrency-safe, 4 lanes
  EXPECT_GE(stats.peak_parallelism, 2);  // both selects in flight at once
}

TEST(DataflowExecTest, RealTimeImprovesWithOverlappedBranches) {
  // Wall-clock: the two 20ms selects overlap under the dataflow executor
  // (sleeps overlap even on one core), so the dataflow run must beat the
  // operator-at-a-time run by a solid margin.
  EnsureSleepyEngine();
  cstore::Catalog catalog = SmallCatalog();
  Program prog = TwoBranchPlan();
  common::ThreadPool::SetGlobalThreads(4);
  auto run_ms = [&](RunOptions::Mode mode) {
    auto session = mal::Session::Open("dataflow:sleepy");
    OCELOT_CHECK(session.ok());
    RunOptions options;
    options.mode = mode;
    common::Stopwatch w;
    OCELOT_CHECK(mal::Run(prog, catalog, session->get(), options).ok());
    return w.ElapsedMillis();
  };
  double off = run_ms(RunOptions::Mode::kSequential);  // ~2 naps serial
  double on = run_ms(RunOptions::Mode::kDataflow);     // ~1 nap, overlapped
  RestoreGlobalThreads();
  EXPECT_LT(on, off * 0.8) << "dataflow on: " << on << "ms, off: " << off << "ms";
}

TEST(DataflowExecTest, MidQueryDeviceCacheReaping) {
  // An Ocelot intermediate released at its last use fires the heap-death
  // listener, which reaps the device-cache entry *mid-query* — observable
  // as a drop in cached_entries() before the program ends. In sequential
  // mode every intermediate stays live, so the count never drops.
  cstore::Catalog catalog;
  cstore::Table t("t");
  auto vals = cstore::Bat::MakeInt(4096);
  for (int i = 0; i < 4096; ++i) {
    vals->ints()[static_cast<std::size_t>(i)] = i % 97;
  }
  OCELOT_CHECK_OK(t.AddColumn("v", vals));
  OCELOT_CHECK_OK(catalog.AddTable(std::move(t)));

  ProgramBuilder b;
  int col = b.Emit("bat", "bind",
                   {b.Const(std::string("t")), b.Const(std::string("v"))});
  int cand = b.Emit("algebra", "select",
                    {col, b.Const(mal::Value{}), b.Const(10.0), b.Const(80.0),
                     b.Const(std::int64_t{1}), b.Const(std::int64_t{1})});
  int proj = b.Emit("algebra", "projection", {cand, col});
  int sum = b.Emit("aggr", "sum", {proj});
  b.Return(sum);
  Program prog = mal::RewriteForOcelot(b.Build());

  auto run_samples = [&](RunOptions::Mode mode) {
    auto session = mal::Session::Open("ocelot:gpu");
    OCELOT_CHECK(session.ok());
    std::vector<std::size_t> samples;
    RunOptions options;
    options.mode = mode;
    options.after_instr = [&](int) {
      samples.push_back((*session)->ocelot()->memory()->cached_entries());
    };
    auto res = mal::Run(prog, catalog, session->get(), options);
    OCELOT_CHECK(res.ok()) << res.status().ToString();
    return samples;
  };

  std::vector<std::size_t> eager = run_samples(RunOptions::Mode::kDataflow);
  std::vector<std::size_t> lazy = run_samples(RunOptions::Mode::kSequential);
  ASSERT_EQ(eager.size(), lazy.size());

  // Sequential mode: monotone non-decreasing until the program ends.
  for (std::size_t i = 1; i < lazy.size(); ++i) {
    EXPECT_GE(lazy[i], lazy[i - 1]) << "unexpected mid-query reap at " << i;
  }
  // Dataflow mode: some intermediate died before the end.
  bool dropped = false;
  for (std::size_t i = 1; i < eager.size(); ++i) {
    if (eager[i] < eager[i - 1]) dropped = true;
  }
  EXPECT_TRUE(dropped) << "no device-cache entry was reaped mid-query";
}

TEST(DataflowExecTest, ErrorsMatchSequentialInterpretation) {
  cstore::Catalog catalog;  // empty: bind will fail
  ProgramBuilder b;
  int t = b.Const(std::string("nope"));
  int c = b.Const(std::string("v"));
  int v0 = b.Emit("bat", "bind", {t, c});
  b.Return(v0);
  b.Emit("voodoo", "levitate", {});
  Program p = b.Build();

  auto session = mal::Session::Open("seq");
  ASSERT_TRUE(session.ok());
  RunOptions off;
  off.mode = RunOptions::Mode::kSequential;
  RunOptions on;
  on.mode = RunOptions::Mode::kDataflow;
  auto r_off = mal::Run(p, catalog, session->get(), off);
  auto r_on = mal::Run(p, catalog, session->get(), on);
  ASSERT_FALSE(r_off.ok());
  ASSERT_FALSE(r_on.ok());
  // The lowest-index failing instruction wins deterministically, matching
  // what operator-at-a-time interpretation reports.
  EXPECT_EQ(r_off.status().code(), r_on.status().code());
  EXPECT_EQ(r_off.status().ToString(), r_on.status().ToString());
}

TEST(DataflowExecTest, LowestIndexErrorWinsOverFasterLaterFailure) {
  // Error contract under real concurrency: a fast-failing high-index
  // instruction must not mask a lower-index failure that is still waiting
  // on a slow dependency — the run has to keep executing instructions
  // below the first known error and report exactly what sequential
  // interpretation would.
  EnsureSleepyEngine();
  cstore::Catalog catalog = SmallCatalog();
  ProgramBuilder b;
  int scalar = b.Const(std::int64_t{7});
  int col = b.Emit("bat", "bind",
                   {b.Const(std::string("t")), b.Const(std::string("v"))});
  int c1 = b.Emit("algebra", "select",  // sleeps before running
                  {col, b.Const(mal::Value{}), b.Const(0.0), b.Const(40.0),
                   b.Const(std::int64_t{1}), b.Const(std::int64_t{1})});
  int bad = b.Emit("algebra", "projection", {c1, scalar});  // arg not a BAT
  b.EmitVoid("voodoo", "levitate", {});  // independent, fails instantly
  b.Return(bad);
  Program p = b.Build();

  common::ThreadPool::SetGlobalThreads(4);
  auto session = mal::Session::Open("dataflow:sleepy");
  ASSERT_TRUE(session.ok());
  RunOptions off;
  off.mode = RunOptions::Mode::kSequential;
  RunOptions on;
  on.mode = RunOptions::Mode::kDataflow;
  auto r_off = mal::Run(p, catalog, session->get(), off);
  auto r_on = mal::Run(p, catalog, session->get(), on);
  RestoreGlobalThreads();
  ASSERT_FALSE(r_off.ok());
  ASSERT_FALSE(r_on.ok());
  EXPECT_EQ(r_off.status().ToString(), r_on.status().ToString());
  // Both must name the projection, not the later unsupported op.
  EXPECT_NE(r_on.status().ToString().find("projection"), std::string::npos)
      << r_on.status().ToString();
}

TEST(DataflowExecTest, EnvEscapeHatchForcesSequential) {
  // OCELOT_DATAFLOW=0 must force operator-at-a-time execution for Mode::kEnv.
  const char* saved = std::getenv("OCELOT_DATAFLOW");
  std::string saved_value = saved != nullptr ? saved : "";
  setenv("OCELOT_DATAFLOW", "0", 1);
  auto session = mal::Session::Open("seq");
  ASSERT_TRUE(session.ok());
  mal::DataflowStats stats;
  RunOptions options;  // Mode::kEnv
  options.stats = &stats;
  ASSERT_TRUE(RunQ3(session->get(), options).ok());
  EXPECT_EQ(stats.executed, 0);  // the sequential path fills no stats

  unsetenv("OCELOT_DATAFLOW");
  ASSERT_TRUE(RunQ3(session->get(), options).ok());
  EXPECT_GT(stats.executed, 0);  // default is dataflow

  if (saved != nullptr) setenv("OCELOT_DATAFLOW", saved_value.c_str(), 1);
}

}  // namespace
