// Tests for the format-tagged column encodings: codec roundtrips (with
// nils and views), the stats-driven format policy and its env escape
// hatch, native compressed kernels staying bit-identical to the plain
// paths on every engine, and compressed-byte transfer billing on discrete
// devices.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "cstore/encoding.h"
#include "mal/interp.h"
#include "mal/rewriter.h"
#include "monet/par_engine.h"
#include "monet/seq_engine.h"
#include "ocelot/engine.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using cstore::ColumnStats;
using cstore::Encoding;
using cstore::EncodingPolicy;
using cstore::ValType;

BatPtr IntColumn(std::size_t n, std::int32_t cardinality, std::uint64_t seed,
                 bool with_nils = false) {
  common::Rng rng(seed);
  BatPtr b = Bat::MakeInt(n);
  for (auto& v : b->ints()) {
    if (with_nils && rng.Uniform(0, 99) == 0) {
      v = cstore::kIntNil;
    } else {
      v = static_cast<std::int32_t>(rng.Uniform(0, cardinality - 1)) + 100;
    }
  }
  return b;
}

BatPtr RunnyColumn(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  BatPtr b = Bat::MakeInt(n);
  auto v = b->ints();
  std::size_t i = 0;
  while (i < n) {
    std::int32_t val = static_cast<std::int32_t>(rng.Uniform(0, 9));
    std::size_t len = std::min<std::size_t>(n - i, rng.Uniform(1, 400));
    for (std::size_t k = 0; k < len; ++k) v[i + k] = val;
    i += len;
  }
  return b;
}

BatPtr FloatColumn(std::size_t n, std::int32_t cardinality, std::uint64_t seed,
                   bool with_nils = false) {
  common::Rng rng(seed);
  BatPtr b = Bat::MakeFloat(n);
  for (auto& v : b->floats()) {
    if (with_nils && rng.Uniform(0, 99) == 0) {
      v = cstore::FloatNil();
    } else {
      v = static_cast<float>(rng.Uniform(0, cardinality - 1)) * 0.25f;
    }
  }
  return b;
}

void ExpectBitIdentical(const BatPtr& plain, const BatPtr& encoded) {
  ASSERT_EQ(plain->size(), encoded->size());
  ASSERT_EQ(plain->type(), encoded->type());
  // data() on the encoded BAT is the transparent decoded twin.
  EXPECT_EQ(0, std::memcmp(plain->data(), encoded->data(),
                           plain->tail_bytes()));
}

// --- Codec roundtrips --------------------------------------------------------

TEST(EncodingTest, DictRoundtripWithNils) {
  BatPtr plain = IntColumn(10'000, 200, 7, /*with_nils=*/true);
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kDict);
  ASSERT_NE(enc.get(), plain.get());
  EXPECT_EQ(enc->encoding(), Encoding::kDict);
  EXPECT_LT(enc->physical_tail_bytes(), plain->tail_bytes());
  ExpectBitIdentical(plain, enc);
}

TEST(EncodingTest, DictRoundtripFloat) {
  BatPtr plain = FloatColumn(10'000, 50, 9, /*with_nils=*/true);
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kDict);
  ASSERT_NE(enc.get(), plain.get());
  ExpectBitIdentical(plain, enc);
}

TEST(EncodingTest, RleRoundtrip) {
  BatPtr plain = RunnyColumn(20'000, 3);
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kRle);
  ASSERT_NE(enc.get(), plain.get());
  EXPECT_EQ(enc->encoding(), Encoding::kRle);
  EXPECT_LT(enc->physical_tail_bytes(), plain->tail_bytes() / 2);
  ExpectBitIdentical(plain, enc);
}

TEST(EncodingTest, BitPackRoundtrip) {
  BatPtr plain = IntColumn(10'000, 1000, 11);  // nil-free, narrow domain
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kBitPacked);
  ASSERT_NE(enc.get(), plain.get());
  EXPECT_EQ(enc->encoding(), Encoding::kBitPacked);
  EXPECT_LT(enc->physical_tail_bytes(), plain->tail_bytes() / 2);
  ExpectBitIdentical(plain, enc);
}

TEST(EncodingTest, BitPackRejectsNilsAndFloats) {
  BatPtr nils = IntColumn(5'000, 100, 1, /*with_nils=*/true);
  EXPECT_EQ(cstore::EncodeColumn(nils, Encoding::kBitPacked).get(), nils.get());
  BatPtr floats = FloatColumn(5'000, 100, 1);
  EXPECT_EQ(cstore::EncodeColumn(floats, Encoding::kBitPacked).get(),
            floats.get());
}

TEST(EncodingTest, ViewsOfEncodedColumnsDecodeTheirRange) {
  BatPtr plain = RunnyColumn(10'000, 5);
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kRle);
  BatPtr view = Bat::View(enc, 2'500, 4'000);
  EXPECT_EQ(view->encoding(), Encoding::kRle);
  EXPECT_EQ(view->row_offset(), 2'500u);
  EXPECT_EQ(0, std::memcmp(static_cast<const std::int32_t*>(plain->data()) + 2'500,
                           view->data(), view->tail_bytes()));
}

// --- Stats-driven policy -----------------------------------------------------

TEST(EncodingTest, ChooseEncodingPicksSmallestApplicable) {
  // Long runs over a tiny domain: RLE beats dict and bit-packing.
  ColumnStats runny = cstore::ObserveColumn(*RunnyColumn(50'000, 1));
  EXPECT_EQ(cstore::ChooseEncoding(runny, ValType::kInt), Encoding::kRle);

  // High-cardinality nil-free ints in a narrow range: bit-packing.
  ColumnStats narrow = cstore::ObserveColumn(*IntColumn(50'000, 40'000, 2));
  EXPECT_EQ(cstore::ChooseEncoding(narrow, ValType::kInt),
            Encoding::kBitPacked);

  // Tiny column: never encoded.
  ColumnStats tiny = cstore::ObserveColumn(*RunnyColumn(512, 3));
  EXPECT_EQ(cstore::ChooseEncoding(tiny, ValType::kInt), Encoding::kPlain);
}

TEST(EncodingTest, ObserveColumnCountsRunsAndDistincts) {
  BatPtr b = Bat::MakeInt(6);
  auto v = b->ints();
  v[0] = 1; v[1] = 1; v[2] = 2; v[3] = 2; v[4] = 2; v[5] = cstore::kIntNil;
  ColumnStats s = cstore::ObserveColumn(*b);
  EXPECT_EQ(s.rows, 6u);
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_TRUE(s.has_nil);
}

TEST(EncodingTest, ForceEncodingEnvIsRespected) {
  ASSERT_EQ(setenv("OCELOT_FORCE_ENCODING", "dict", 1), 0);
  EXPECT_EQ(cstore::EncodingPolicyFromEnv(), EncodingPolicy::kDict);
  ASSERT_EQ(setenv("OCELOT_FORCE_ENCODING", "plain", 1), 0);
  EXPECT_EQ(cstore::EncodingPolicyFromEnv(), EncodingPolicy::kPlain);
  ASSERT_EQ(setenv("OCELOT_FORCE_ENCODING", "bitpack", 1), 0);
  EXPECT_EQ(cstore::EncodingPolicyFromEnv(), EncodingPolicy::kBitPacked);
  ASSERT_EQ(setenv("OCELOT_FORCE_ENCODING", "nonsense", 1), 0);
  EXPECT_EQ(cstore::EncodingPolicyFromEnv(), EncodingPolicy::kAuto);
  ASSERT_EQ(unsetenv("OCELOT_FORCE_ENCODING"), 0);
  EXPECT_EQ(cstore::EncodingPolicyFromEnv(), EncodingPolicy::kAuto);
}

// --- Native kernels vs plain paths, host engines -----------------------------

class EncodedKernelTest : public ::testing::TestWithParam<Encoding> {};

BatPtr EncodableColumn(Encoding enc, std::uint64_t seed) {
  switch (enc) {
    case Encoding::kDict:
      return IntColumn(30'000, 300, seed, /*with_nils=*/true);
    case Encoding::kRle:
      return RunnyColumn(30'000, seed);
    default:
      return IntColumn(30'000, 5'000, seed);  // bitpack: nil-free
  }
}

TEST_P(EncodedKernelTest, SeqSelectGatherGroupAggregateMatchPlain) {
  Encoding enc_fmt = GetParam();
  BatPtr plain = EncodableColumn(enc_fmt, 21);
  BatPtr enc = cstore::EncodeColumn(plain, enc_fmt);
  ASSERT_NE(enc.get(), plain.get());

  monet::SequentialEngine seq;
  Bound lo = Bound::Incl(150);
  Bound hi = Bound::Excl(2'000);

  auto want_sel = seq.SelectRange(plain, nullptr, lo, hi);
  auto got_sel = seq.SelectRange(enc, nullptr, lo, hi);
  ASSERT_TRUE(want_sel.ok() && got_sel.ok());
  ASSERT_EQ((*want_sel)->size(), (*got_sel)->size());
  EXPECT_EQ(0, std::memcmp((*want_sel)->data(), (*got_sel)->data(),
                           (*want_sel)->tail_bytes()));

  // Candidate-filtered select through the encoded path.
  auto want_cand = seq.SelectRange(plain, *want_sel, lo, hi);
  auto got_cand = seq.SelectRange(enc, *got_sel, lo, hi);
  ASSERT_TRUE(want_cand.ok() && got_cand.ok());
  EXPECT_EQ(0, std::memcmp((*want_cand)->data(), (*got_cand)->data(),
                           (*want_cand)->tail_bytes()));

  // Fetchjoin gather through the dictionary / bit-unpacking path.
  auto want_proj = seq.Project(*want_sel, plain);
  auto got_proj = seq.Project(*want_sel, enc);
  ASSERT_TRUE(want_proj.ok() && got_proj.ok());
  EXPECT_EQ(0, std::memcmp((*want_proj)->data(), (*got_proj)->data(),
                           (*want_proj)->tail_bytes()));

  // GroupBy + grouped aggregates: identical gids, extents and folds.
  auto want_grp = seq.GroupBy(plain, nullptr);
  auto got_grp = seq.GroupBy(enc, nullptr);
  ASSERT_TRUE(want_grp.ok() && got_grp.ok());
  ASSERT_EQ(want_grp->ngroups, got_grp->ngroups);
  EXPECT_EQ(0, std::memcmp(want_grp->groups->data(), got_grp->groups->data(),
                           want_grp->groups->tail_bytes()));
  EXPECT_EQ(0, std::memcmp(want_grp->extents->data(), got_grp->extents->data(),
                           want_grp->extents->tail_bytes()));

  for (auto agg : {&cstore::QueryEngine::SubSum, &cstore::QueryEngine::SubMin,
                   &cstore::QueryEngine::SubMax}) {
    auto want = (seq.*agg)(plain, want_grp->groups, want_grp->ngroups);
    auto got = (seq.*agg)(enc, want_grp->groups, want_grp->ngroups);
    ASSERT_TRUE(want.ok() && got.ok());
    EXPECT_EQ(0, std::memcmp((*want)->data(), (*got)->data(),
                             (*want)->tail_bytes()));
  }

  auto want_sum = seq.Sum(plain);
  auto got_sum = seq.Sum(enc);
  ASSERT_TRUE(want_sum.ok() && got_sum.ok());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(*want_sum),
            std::bit_cast<std::uint64_t>(*got_sum));
}

TEST_P(EncodedKernelTest, ParEngineMatchesSeqOnEncoded) {
  Encoding enc_fmt = GetParam();
  BatPtr plain = EncodableColumn(enc_fmt, 33);
  BatPtr enc = cstore::EncodeColumn(plain, enc_fmt);
  ASSERT_NE(enc.get(), plain.get());

  monet::SequentialEngine seq;
  common::VirtualClock clock;
  monet::MitosisEngine par(&clock);
  Bound lo = Bound::Incl(150);
  Bound hi = Bound::Excl(2'000);

  auto want = seq.SelectRange(enc, nullptr, lo, hi);
  auto got = par.SelectRange(enc, nullptr, lo, hi);
  ASSERT_TRUE(want.ok() && got.ok());
  ASSERT_EQ((*want)->size(), (*got)->size());
  EXPECT_EQ(0, std::memcmp((*want)->data(), (*got)->data(),
                           (*want)->tail_bytes()));

  auto want_grp = seq.GroupBy(enc, nullptr);
  auto got_grp = par.GroupBy(enc, nullptr);
  ASSERT_TRUE(want_grp.ok() && got_grp.ok());
  ASSERT_EQ(want_grp->ngroups, got_grp->ngroups);
  EXPECT_EQ(0, std::memcmp(want_grp->groups->data(), got_grp->groups->data(),
                           want_grp->groups->tail_bytes()));

  auto want_sum = seq.SubSum(enc, want_grp->groups, want_grp->ngroups);
  auto got_sum = par.SubSum(enc, got_grp->groups, got_grp->ngroups);
  ASSERT_TRUE(want_sum.ok() && got_sum.ok());
  EXPECT_EQ(0, std::memcmp((*want_sum)->data(), (*got_sum)->data(),
                           (*want_sum)->tail_bytes()));
}

TEST_P(EncodedKernelTest, OcelotEnginesMatchPlainOnEncoded) {
  Encoding enc_fmt = GetParam();
  BatPtr plain = EncodableColumn(enc_fmt, 55);
  BatPtr enc = cstore::EncodeColumn(plain, enc_fmt);
  ASSERT_NE(enc.get(), plain.get());

  monet::SequentialEngine seq;
  Bound lo = Bound::Incl(150);
  Bound hi = Bound::Excl(2'000);
  auto want_sel = seq.SelectRange(plain, nullptr, lo, hi);
  ASSERT_TRUE(want_sel.ok());
  auto want_proj = seq.Project(*want_sel, plain);
  ASSERT_TRUE(want_proj.ok());

  for (bool unified : {true, false}) {
    auto ctx = ocl::Context::Create(unified ? ocl::XeonE5620Model()
                                            : ocl::Gtx460Model());
    ocelot::OcelotEngine engine(ctx.get());
    auto got_sel = engine.SelectRange(enc, nullptr, lo, hi);
    ASSERT_TRUE(got_sel.ok());
    ASSERT_TRUE(engine.Sync(*got_sel).ok());
    ASSERT_EQ((*want_sel)->size(), (*got_sel)->size()) << "unified=" << unified;
    EXPECT_EQ(0, std::memcmp((*want_sel)->data(), (*got_sel)->data(),
                             (*want_sel)->tail_bytes()));

    auto got_proj = engine.Project(*got_sel, enc);
    ASSERT_TRUE(got_proj.ok());
    ASSERT_TRUE(engine.Sync(*got_proj).ok());
    EXPECT_EQ(0, std::memcmp((*want_proj)->data(), (*got_proj)->data(),
                             (*want_proj)->tail_bytes()))
        << "unified=" << unified;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EncodedKernelTest,
                         ::testing::Values(Encoding::kDict, Encoding::kRle,
                                           Encoding::kBitPacked),
                         [](const auto& info) {
                           return std::string(cstore::EncodingName(info.param));
                         });

// --- Compressed-byte transfer billing ----------------------------------------

TEST(EncodingTest, DiscreteUploadBillsCompressedBytes) {
  BatPtr plain = RunnyColumn(200'000, 77);
  BatPtr enc = cstore::EncodeColumn(plain, Encoding::kRle);
  ASSERT_NE(enc.get(), plain.get());
  ASSERT_LT(enc->physical_tail_bytes(), plain->tail_bytes() / 2);

  auto run_sum = [](const BatPtr& col) {
    auto ctx = ocl::Context::Create(ocl::Gtx460Model());
    ocelot::OcelotEngine engine(ctx.get());
    auto sum = engine.Sum(col);
    OCELOT_CHECK(sum.ok());
    return ctx->queue()->transferred_bytes();
  };

  std::uint64_t plain_bytes = run_sum(plain);
  std::uint64_t enc_bytes = run_sum(enc);
  ASSERT_GE(plain_bytes, plain->tail_bytes());
  // The encoded upload crosses the modeled bus at its physical size: at
  // least a 2x transfer-byte reduction on this column.
  EXPECT_LT(enc_bytes, plain_bytes / 2);
}

// Generate() applies the env-selected policy as its last step, so forcing
// "plain" is the only way to obtain a genuinely unencoded catalog.
tpch::TpchDb GeneratePlain(double scale) {
  OCELOT_CHECK(setenv("OCELOT_FORCE_ENCODING", "plain", 1) == 0);
  tpch::TpchDb db = tpch::Generate(scale);
  OCELOT_CHECK(unsetenv("OCELOT_FORCE_ENCODING") == 0);
  return db;
}

TEST(EncodingTest, CatalogPhysicalBytesShrinkUnderAutoPolicy) {
  tpch::TpchDb db = GeneratePlain(0.02);
  EXPECT_EQ(db.catalog.TotalPhysicalBytes(), db.catalog.TotalBytes());
  cstore::ApplyEncodings(&db.catalog, EncodingPolicy::kAuto);
  EXPECT_LT(db.catalog.TotalPhysicalBytes(), db.catalog.TotalBytes());
}

// --- Full-query parity: every engine, every forced format vs plain -----------

TEST(EncodingTest, TpchQueriesBitIdenticalUnderEveryForcedEncoding) {
  // The acceptance gate: encodings must be invisible in results. The golden
  // is per (query, engine) on a plain catalog — grouped float aggregation
  // legitimately differs bit-wise *across* engines (the Ocelot accumulator
  // spread reorders adds), but within one engine the encoded catalog must
  // reproduce the plain run bit-for-bit.
  tpch::TpchDb db = GeneratePlain(0.005);

  auto run = [](int q, mal::Pipeline p, const tpch::TpchDb& on) {
    auto session = mal::Session::Create(p);
    mal::Program prog = *tpch::BuildQuery(q, on);
    if (session->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
    auto res = mal::Run(prog, on.catalog, session.get());
    OCELOT_CHECK(res.ok()) << res.status().ToString();
    return res->returns;
  };
  auto expect_identical = [](const std::vector<mal::Value>& want,
                             const std::vector<mal::Value>& got,
                             const std::string& what) {
    ASSERT_EQ(want.size(), got.size()) << what;
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (std::holds_alternative<BatPtr>(want[i])) {
        const BatPtr& w = std::get<BatPtr>(want[i]);
        const BatPtr& g = std::get<BatPtr>(got[i]);
        ASSERT_EQ(w->size(), g->size()) << what << " return " << i;
        EXPECT_EQ(0, std::memcmp(w->data(), g->data(), w->tail_bytes()))
            << what << " return " << i;
      } else if (std::holds_alternative<double>(want[i])) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(std::get<double>(want[i])),
                  std::bit_cast<std::uint64_t>(std::get<double>(got[i])))
            << what << " return " << i;
      } else {
        EXPECT_EQ(std::get<std::int64_t>(want[i]),
                  std::get<std::int64_t>(got[i]))
            << what << " return " << i;
      }
    }
  };

  constexpr mal::Pipeline kPipelines[] = {
      mal::Pipeline::kSequential, mal::Pipeline::kMitosis,
      mal::Pipeline::kOcelotCpu, mal::Pipeline::kOcelotGpu,
      mal::Pipeline::kOcelotMulti};
  for (int q : {1, 6}) {
    std::map<mal::Pipeline, std::vector<mal::Value>> want;
    for (mal::Pipeline p : kPipelines) want[p] = run(q, p, db);
    for (EncodingPolicy policy :
         {EncodingPolicy::kDict, EncodingPolicy::kRle,
          EncodingPolicy::kBitPacked, EncodingPolicy::kAuto}) {
      // Regenerate so each sweep leg starts from pristine plain columns
      // (encoding an already-encoded catalog is a no-op by design).
      tpch::TpchDb fresh = GeneratePlain(0.005);
      cstore::ApplyEncodings(&fresh.catalog, policy);
      for (mal::Pipeline p : kPipelines) {
        expect_identical(want[p], run(q, p, fresh),
                         "Q" + std::to_string(q) + " policy=" +
                             std::to_string(static_cast<int>(policy)) + " " +
                             mal::PipelineName(p));
      }
    }
  }
}

}  // namespace
