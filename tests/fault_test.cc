// Fault-injection and failover tests: the OCELOT_FAULT_SPEC grammar, the
// injector's per-seed determinism, the scheduler's retry / quarantine /
// host-fallback ladder under scripted device faults (including the
// flagship bit-identity-under-quarantine contract on TPC-H), and the
// serving tier's deadlines, cancellation, error isolation and
// slot-lease hygiene when queries die mid-flight.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/status.h"
#include "mal/interp.h"
#include "mal/rewriter.h"
#include "mal/service.h"
#include "ocelot/scheduler.h"
#include "ocl/device.h"
#include "ocl/fault.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

using common::StatusCode;
using ocl::FaultOp;
using ocl::FaultRule;
using ocl::FaultSpec;

/// Clears the process-global spec override even when an ASSERT bails out of
/// the test body — a leaked schedule would fault every later test.
struct SpecGuard {
  explicit SpecGuard(const std::string& spec) {
    ocl::SetFaultSpecForTesting(spec);
  }
  ~SpecGuard() { ocl::ClearFaultSpecForTesting(); }
};

const tpch::TpchDb& Db() {
  static const tpch::TpchDb* db = new tpch::TpchDb(tpch::Generate(0.02));
  return *db;
}

// --- OCELOT_FAULT_SPEC grammar -----------------------------------------------

TEST(FaultSpecTest, ParsesFullGrammar) {
  auto spec = FaultSpec::Parse(
      "dev=gpu,op=kernel,at=3,mode=permanent;"
      "dev=*,op=alloc,p=0.5,count=2,mode=transient;"
      "seed=99");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->rules.size(), 2u);
  EXPECT_EQ(spec->seed, 99u);

  const FaultRule& gpu = spec->rules[0];
  EXPECT_EQ(gpu.dev_match, FaultRule::DevMatch::kType);
  EXPECT_EQ(gpu.dev_type, ocl::DeviceType::kGpu);
  EXPECT_TRUE(gpu.ops[static_cast<int>(FaultOp::kKernel)]);
  EXPECT_FALSE(gpu.ops[static_cast<int>(FaultOp::kAlloc)]);
  EXPECT_EQ(gpu.at, 3);
  EXPECT_TRUE(gpu.permanent);

  const FaultRule& alloc = spec->rules[1];
  EXPECT_EQ(alloc.dev_match, FaultRule::DevMatch::kAny);
  EXPECT_TRUE(alloc.ops[static_cast<int>(FaultOp::kAlloc)]);
  EXPECT_FALSE(alloc.ops[static_cast<int>(FaultOp::kKernel)]);
  EXPECT_DOUBLE_EQ(alloc.probability, 0.5);
  EXPECT_EQ(alloc.count, 2);
  EXPECT_FALSE(alloc.permanent);
}

TEST(FaultSpecTest, TransferExpandsToBothDirectionsAndIndexDevicesParse) {
  auto spec = FaultSpec::Parse("dev=1,op=transfer,p=0.25");
  ASSERT_TRUE(spec.ok());
  const FaultRule& r = spec->rules[0];
  EXPECT_EQ(r.dev_match, FaultRule::DevMatch::kIndex);
  EXPECT_EQ(r.dev_index, 1);
  EXPECT_TRUE(r.ops[static_cast<int>(FaultOp::kWrite)]);
  EXPECT_TRUE(r.ops[static_cast<int>(FaultOp::kRead)]);
  EXPECT_FALSE(r.ops[static_cast<int>(FaultOp::kKernel)]);
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  const char* bad[] = {
      "dev=warp,p=0.5",       // unknown device
      "op=sing,p=0.5",        // unknown op
      "dev=gpu,p=0",          // probability outside (0, 1]
      "dev=gpu,p=1.5",        // probability outside (0, 1]
      "dev=gpu,at=0",         // ordinals are 1-based
      "dev=gpu,count=0,p=1",  // cap must be positive
      "dev=gpu,mode=maybe,p=1",
      "flux=capacitor",       // unknown key
      "dev=gpu",              // rule without a trigger
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(FaultSpec::Parse(spec).ok()) << spec;
  }
}

// --- FaultInjector determinism -----------------------------------------------

TEST(FaultInjectorTest, ProbabilisticScheduleIsDeterministicPerSeed) {
  auto fired_with = [](std::uint64_t seed) {
    FaultSpec spec = *FaultSpec::Parse("dev=*,op=kernel,p=0.3,mode=transient");
    spec.seed = seed;
    ocl::FaultInjector inj(/*device_index=*/1, ocl::DeviceType::kGpu, spec);
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i) {
      fired.push_back(!inj.OnOp(FaultOp::kKernel, "k").ok());
    }
    return fired;
  };
  EXPECT_EQ(fired_with(7), fired_with(7));   // replayable
  EXPECT_NE(fired_with(7), fired_with(8));   // seed actually matters
}

TEST(FaultInjectorTest, ScriptedTransientFiresExactlyOnce) {
  FaultSpec spec = *FaultSpec::Parse("dev=*,op=kernel,at=3,mode=transient");
  ocl::FaultInjector inj(0, ocl::DeviceType::kCpu, spec);
  for (int op = 1; op <= 10; ++op) {
    common::Status s = inj.OnOp(FaultOp::kKernel, "k");
    if (op == 3) {
      EXPECT_EQ(s.code(), StatusCode::kDeviceLost) << "op " << op;
    } else {
      EXPECT_TRUE(s.ok()) << "op " << op;
    }
  }
  EXPECT_EQ(inj.injected(), 1);
}

TEST(FaultInjectorTest, PermanentRuleKeepsFailingOnceTripped) {
  FaultSpec spec = *FaultSpec::Parse("dev=*,op=kernel,at=2,mode=permanent");
  ocl::FaultInjector inj(0, ocl::DeviceType::kGpu, spec);
  EXPECT_TRUE(inj.OnOp(FaultOp::kKernel, "k").ok());
  for (int op = 2; op <= 6; ++op) {
    EXPECT_EQ(inj.OnOp(FaultOp::kKernel, "k").code(), StatusCode::kDeviceLost);
  }
}

TEST(FaultInjectorTest, AllocFaultsAreResourceExhausted) {
  FaultSpec spec = *FaultSpec::Parse("dev=*,op=alloc,at=1");
  ocl::FaultInjector inj(0, ocl::DeviceType::kGpu, spec);
  EXPECT_EQ(inj.OnOp(FaultOp::kAlloc, "buf").code(),
            StatusCode::kResourceExhausted);
}

// --- Scheduler failover on TPC-H ---------------------------------------------

using Rows = std::vector<std::vector<double>>;

Rows Canonicalize(const std::vector<mal::Value>& returns) {
  std::size_t nrows = 0;
  std::vector<std::vector<double>> columns;
  for (const mal::Value& v : returns) {
    if (std::holds_alternative<double>(v)) {
      columns.push_back({std::get<double>(v)});
    } else if (std::holds_alternative<std::int64_t>(v)) {
      columns.push_back({static_cast<double>(std::get<std::int64_t>(v))});
    } else if (std::holds_alternative<cstore::BatPtr>(v)) {
      const cstore::BatPtr& b = std::get<cstore::BatPtr>(v);
      std::vector<double> col;
      col.reserve(b->size());
      switch (b->type()) {
        case cstore::ValType::kInt:
          for (auto x : b->ints()) col.push_back(x);
          break;
        case cstore::ValType::kFloat:
          for (auto x : b->floats()) col.push_back(x);
          break;
        case cstore::ValType::kOid:
          for (auto x : b->oids()) col.push_back(x);
          break;
      }
      columns.push_back(std::move(col));
    } else {
      columns.push_back({});
    }
    nrows = std::max(nrows, columns.back().size());
  }
  Rows rows(nrows);
  for (auto& col : columns) {
    for (std::size_t i = 0; i < nrows; ++i) {
      double x = i < col.size() ? col[i] : 0;
      rows[i].push_back(std::isnan(x) ? -1.0e308 : x);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// One ocelot:multi query under the currently installed fault spec, with
/// static partitioning pinned (the bit-reproducible mode whose contract the
/// quarantine path must preserve).
struct MultiRun {
  common::Result<mal::ExecResult> res = common::Result<mal::ExecResult>(
      common::Status::Internal("not run"));
  ocelot::FaultStats stats;
  int healthy = 0;
  int devices = 0;
};

MultiRun RunMulti(int query) {
  MultiRun out;
  auto session = mal::Session::Open("ocelot:multi");
  OCELOT_CHECK(session.ok()) << session.status().ToString();
  auto* sched = dynamic_cast<ocelot::Scheduler*>((*session)->engine());
  OCELOT_CHECK(sched != nullptr);
  sched->set_static_partition(true);
  mal::Program prog = mal::RewriteForOcelot(*tpch::BuildQuery(query, Db()));
  out.res = mal::Run(prog, Db().catalog, session->get());
  out.stats = sched->fault_stats();
  out.healthy = sched->healthy_device_count();
  out.devices = sched->device_count();
  // Drain deliberately ignoring a drain-time injected fault: results are
  // already host-synced fragment by fragment.
  (void)(*session)->FinishDevices();
  return out;
}

/// Fault-free baseline run: an empty override suppresses injection even
/// when the fault-matrix CI job exports an ambient OCELOT_FAULT_SPEC, so
/// goldens stay goldens.
MultiRun RunMultiFaultFree(int query) {
  SpecGuard fault_free("");
  return RunMulti(query);
}

TEST(SchedulerFailoverTest, TransientKernelFaultIsRetriedBitIdentically) {
  MultiRun clean = RunMultiFaultFree(1);
  ASSERT_TRUE(clean.res.ok()) << clean.res.status().ToString();
  EXPECT_EQ(clean.stats.retries, 0u);

  SpecGuard guard("dev=gpu,op=kernel,at=2,mode=transient");
  MultiRun faulted = RunMulti(1);
  ASSERT_TRUE(faulted.res.ok()) << faulted.res.status().ToString();
  EXPECT_GE(faulted.stats.retries, 1u);
  EXPECT_EQ(faulted.stats.quarantines, 0u);  // one blip never quarantines
  EXPECT_EQ(faulted.healthy, faulted.devices);
  EXPECT_EQ(Canonicalize(clean.res->returns),
            Canonicalize(faulted.res->returns));
}

// The acceptance contract: a scripted *permanent* GPU fault mid-query
// quarantines the device, re-plans onto the survivors with the fault-free
// partition shape, and completes Q1/Q3 bit-identical to the fault-free run.
TEST(SchedulerFailoverTest, PermanentGpuFaultMidQueryIsBitIdentical) {
  for (int query : {1, 3}) {
    MultiRun clean = RunMultiFaultFree(query);
    ASSERT_TRUE(clean.res.ok()) << clean.res.status().ToString();

    // Kernel launch 6 is mid-plan for both queries: earlier operators run
    // on the full device set, later ones must re-plan around the corpse.
    SpecGuard guard("dev=gpu,op=kernel,at=6,mode=permanent");
    MultiRun faulted = RunMulti(query);
    ASSERT_TRUE(faulted.res.ok())
        << "Q" << query << ": " << faulted.res.status().ToString();
    EXPECT_GE(faulted.stats.quarantines, 1u) << "Q" << query;
    EXPECT_GE(faulted.stats.retries, 1u) << "Q" << query;
    EXPECT_EQ(faulted.healthy, faulted.devices - 1) << "Q" << query;
    EXPECT_EQ(Canonicalize(clean.res->returns),
              Canonicalize(faulted.res->returns))
        << "Q" << query << " diverged across the quarantine re-plan";
    ocl::ClearFaultSpecForTesting();
  }
}

TEST(SchedulerFailoverTest, TotalDeviceLossFallsBackToHostAndStillAnswers) {
  MultiRun clean = RunMultiFaultFree(1);
  ASSERT_TRUE(clean.res.ok());
  Rows want = Canonicalize(clean.res->returns);

  SpecGuard guard("dev=*,op=kernel,p=1,mode=permanent");
  MultiRun faulted = RunMulti(1);
  ASSERT_TRUE(faulted.res.ok()) << faulted.res.status().ToString();
  EXPECT_EQ(faulted.healthy, 0);
  EXPECT_EQ(faulted.stats.quarantines,
            static_cast<std::uint64_t>(faulted.devices));
  EXPECT_GE(faulted.stats.fallbacks, 1u);
  // The host engine computes whole columns where the device plan summed
  // per-fragment partials, so float aggregates may differ in low bits:
  // same cardinality, tolerance-near values (the repo's cross-engine bar).
  Rows got = Canonicalize(faulted.res->returns);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(want[r].size(), got[r].size());
    for (std::size_t c = 0; c < want[r].size(); ++c) {
      double tol = std::abs(want[r][c]) * 5e-4 + 1e-2;
      ASSERT_NEAR(want[r][c], got[r][c], tol) << "row " << r << " col " << c;
    }
  }
}

TEST(SchedulerFailoverTest, SingleDeviceEngineSurfacesCleanDeviceLost) {
  // No redundancy on ocelot:gpu — the clean-error half of the determinism
  // contract: the query dies with the fault's own code, nothing else.
  SpecGuard guard("dev=*,op=kernel,at=1,mode=permanent");
  auto session = mal::Session::Open("ocelot:gpu");
  ASSERT_TRUE(session.ok());
  mal::Program prog = mal::RewriteForOcelot(*tpch::BuildQuery(1, Db()));
  auto res = mal::Run(prog, Db().catalog, session->get());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeviceLost)
      << res.status().ToString();
}

// --- Serving tier: deadlines, cancellation, isolation, lease hygiene ---------

TEST(ServiceFaultTest, FaultCodesReachSubmitFuturesVerbatim) {
  SpecGuard guard("dev=*,op=kernel,at=1,mode=permanent");
  auto service = mal::QueryService::Open("ocelot:gpu", &Db().catalog);
  ASSERT_TRUE(service.ok());
  mal::DegradationStats stats;
  mal::SubmitOptions options;
  options.stats = &stats;
  auto fut = (*service)->Submit(*tpch::BuildQuery(1, Db()), options);
  auto res = fut.get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeviceLost)
      << res.status().ToString();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ((*service)->degradation().failures, 1u);
}

TEST(ServiceFaultTest, DeadlineKillsOnlyTheOverBudgetQuery) {
  // Deadline isolation is a fault-free property: pin injection off so the
  // bit-identity goldens hold under the fault-matrix CI's ambient spec.
  SpecGuard fault_free("");
  const tpch::TpchDb& db = Db();
  const std::vector<int> workload = {1, 3, 6, 12, 1, 3, 6};

  // Serial goldens on the same engine configuration (static partitioning is
  // the service's bit-identity mode).
  std::vector<Rows> golden;
  for (int q : workload) {
    auto session = mal::Session::Open("ocelot:multi");
    ASSERT_TRUE(session.ok());
    dynamic_cast<ocelot::Scheduler*>((*session)->engine())
        ->set_static_partition(true);
    mal::Program prog = mal::RewriteForOcelot(*tpch::BuildQuery(q, db));
    auto res = mal::Run(prog, db.catalog, session->get());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    golden.push_back(Canonicalize(res->returns));
  }

  mal::ServiceOptions opts;
  opts.max_sessions = 8;
  opts.static_partition = true;
  auto service = mal::QueryService::Open("ocelot:multi", &db.catalog, opts);
  ASSERT_TRUE(service.ok());

  // One doomed query (a 1 ns budget expires before the first instruction
  // boundary) races seven healthy ones.
  mal::DegradationStats doomed_stats;
  mal::SubmitOptions doomed;
  doomed.deadline = std::chrono::nanoseconds(1);
  doomed.stats = &doomed_stats;
  auto doomed_fut = (*service)->Submit(*tpch::BuildQuery(3, db), doomed);

  std::vector<std::future<common::Result<mal::ExecResult>>> futures;
  for (int q : workload) {
    futures.push_back((*service)->Submit(*tpch::BuildQuery(q, db)));
  }

  auto doomed_res = doomed_fut.get();
  ASSERT_FALSE(doomed_res.ok());
  EXPECT_EQ(doomed_res.status().code(), StatusCode::kDeadlineExceeded)
      << doomed_res.status().ToString();
  EXPECT_EQ(doomed_stats.deadline_kills, 1u);

  // The kill must not perturb any concurrent query: bit-compare every
  // healthy result against its serial golden.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto res = futures[i].get();
    ASSERT_TRUE(res.ok()) << "Q" << workload[i] << ": "
                          << res.status().ToString();
    EXPECT_EQ(golden[i], Canonicalize(res->returns))
        << "Q" << workload[i] << " perturbed by the concurrent deadline kill";
  }
  EXPECT_GE((*service)->degradation().deadline_kills, 1u);
  EXPECT_EQ((*service)->degradation().failures, 0u);
}

TEST(ServiceFaultTest, PreCancelledTokenResolvesToCancelled) {
  auto service = mal::QueryService::Open("ocelot:multi", &Db().catalog);
  ASSERT_TRUE(service.ok());
  auto token = std::make_shared<common::CancelToken>();
  token->Cancel();
  mal::DegradationStats stats;
  mal::SubmitOptions options;
  options.cancel = token;
  options.stats = &stats;
  auto res = (*service)->Submit(*tpch::BuildQuery(1, Db()), options).get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled)
      << res.status().ToString();
  EXPECT_EQ(stats.cancel_kills, 1u);
}

TEST(ServiceFaultTest, FaultedQueryDoesNotStarveSuccessorsOfSlots) {
  const tpch::TpchDb& db = Db();
  // Strictly exclusive device slots: a leaked lease from the dead query
  // would block every successor forever (the ctest timeout is the failure
  // detector for that).
  mal::ServiceOptions opts;
  opts.max_sessions = 2;
  opts.leases_per_slot = 1;
  opts.static_partition = true;
  auto service = mal::QueryService::Open("ocelot:multi", &db.catalog, opts);
  ASSERT_TRUE(service.ok());

  mal::SubmitOptions doomed;
  doomed.deadline = std::chrono::nanoseconds(1);
  auto dead = (*service)->Submit(*tpch::BuildQuery(1, db), doomed);
  EXPECT_EQ(dead.get().status().code(), StatusCode::kDeadlineExceeded);

  // Successors keep running through transient device faults too: each retry
  // re-acquires its leases per attempt, erroring batches included.
  SpecGuard guard("dev=*,op=kernel,p=0.2,mode=transient,seed=5");
  for (int i = 0; i < 3; ++i) {
    auto res = (*service)->Submit(*tpch::BuildQuery(3, db)).get();
    EXPECT_TRUE(res.ok()) << res.status().ToString();
  }
  EXPECT_EQ((*service)->completed(), 4u);
}

}  // namespace
