// Cross-engine differential fuzzer: a seeded generator of random
// well-typed BAT-algebra programs — selects (with candidate chains),
// projections, joins, semi/anti joins, batcalc expressions, sorts and
// grouped aggregates over random int/float columns with 0-30% nil density
// — executed on every registered engine under both interpreter modes
// (dataflow off/on) and *bit*-compared against the sequential baseline.
//
// Bit-comparison across engines is only meaningful if float arithmetic is
// order-independent, so the generator keeps every float integer-valued and
// every intermediate magnitude below 2^23 (an "exactness budget" tracked
// through the expression graph): integer-valued IEEE sums and products in
// that range are exact in any association order, so weighted partitioning,
// fragment merges and dataflow reordering cannot change a single bit. What
// remains is pure semantics — nil propagation, empty groups, candidate
// rebasing, merge conventions — which is exactly what the fuzzer hunts.
//
// Every failure prints the seed, the iteration and the full program, so
// any divergence replays with OCELOT_FUZZ_SEED / OCELOT_FUZZ_ITERS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/status.h"
#include "cstore/bat.h"
#include "cstore/catalog.h"
#include "cstore/encoding.h"
#include "cstore/types.h"
#include "mal/engines.h"
#include "mal/interp.h"
#include "mal/program.h"
#include "mal/rewriter.h"
#include "ocl/fault.h"

namespace {

using cstore::BatPtr;
using cstore::ValType;

// --- Random database ---------------------------------------------------------

struct FuzzDb {
  cstore::Catalog catalog;
  std::size_t rows = 0;
  double nil_density = 0;
};

BatPtr RandomIntColumn(common::Rng& rng, std::size_t n, std::int32_t lo,
                       std::int32_t hi, double nil_density) {
  BatPtr b = cstore::Bat::MakeInt(n);
  auto v = b->ints();
  bool any_nil = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < nil_density) {
      v[i] = cstore::kIntNil;
      any_nil = true;
    } else {
      v[i] = static_cast<std::int32_t>(rng.Uniform(lo, hi));
    }
  }
  b->set_nonil(!any_nil);
  return b;
}

BatPtr RandomFloatColumn(common::Rng& rng, std::size_t n, double nil_density) {
  // Integer-valued floats: see the exactness-budget comment at the top.
  BatPtr b = cstore::Bat::MakeFloat(n);
  auto v = b->floats();
  bool any_nil = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < nil_density) {
      v[i] = cstore::FloatNil();
      any_nil = true;
    } else {
      v[i] = static_cast<float>(rng.Uniform(-50, 100));
    }
  }
  b->set_nonil(!any_nil);
  return b;
}

FuzzDb MakeDb(common::Rng& rng) {
  FuzzDb db;
  db.rows = static_cast<std::size_t>(rng.Uniform(40, 800));
  db.nil_density = rng.NextDouble() * 0.3;  // the issue's 0-30% band
  cstore::Table t("t");
  // i0 is key-ish (sparse values) so joins stay selective; i1/i2 are the
  // low-cardinality value band selects and groupings chew on.
  OCELOT_CHECK(
      t.AddColumn("i0", RandomIntColumn(rng, db.rows, 0, 4000, db.nil_density))
          .ok());
  OCELOT_CHECK(
      t.AddColumn("i1", RandomIntColumn(rng, db.rows, -50, 100, db.nil_density))
          .ok());
  OCELOT_CHECK(
      t.AddColumn("i2", RandomIntColumn(rng, db.rows, -50, 100, db.nil_density))
          .ok());
  OCELOT_CHECK(t.AddColumn("f0", RandomFloatColumn(rng, db.rows, db.nil_density)).ok());
  OCELOT_CHECK(t.AddColumn("f1", RandomFloatColumn(rng, db.rows, db.nil_density)).ok());
  OCELOT_CHECK(db.catalog.AddTable(std::move(t)).ok());
  return db;
}

// --- Random well-typed programs ----------------------------------------------

/// Exactness cap: every intermediate stays below this in absolute value, so
/// float arithmetic (including any summation order) is exact. 2^23 leaves a
/// factor-2 margin below float's 2^24 integer-exactness limit.
constexpr double kMaxMagnitude = 8'000'000.0;
/// Row-count upper bound past which no further ops build on a frame (keeps
/// chained-join blowup and runtimes bounded).
constexpr double kMaxRows = 50'000.0;

/// One materialized column of a frame.
struct Col {
  int var;         ///< program variable holding the BAT
  ValType type;    ///< kInt or kFloat
  double est;      ///< upper bound on |value| (exactness budget)
  bool key_range;  ///< from the sparse i0 band (preferred join key)
};

/// An alignment class: a set of equally-sized columns produced by the same
/// row-defining operation (base table, select, join, group, sort).
struct Frame {
  std::vector<Col> cols;
  double rows_bound;  ///< upper bound on the frame's cardinality
  bool grouped;       ///< rows are groups (ids may be engine-ordered)
};

class ProgramFuzzer {
 public:
  ProgramFuzzer(common::Rng& rng, const FuzzDb& db) : rng_(rng), db_(db) {}

  mal::Program Generate() {
    nil_const_ = b_.Const(mal::Value{});
    Frame base;
    base.rows_bound = static_cast<double>(db_.rows);
    base.grouped = false;
    const char* names[] = {"i0", "i1", "i2", "f0", "f1"};
    for (int c = 0; c < 5; ++c) {
      Col col;
      col.var = b_.Emit("bat", "bind", {S("t"), S(names[c])});
      col.type = c < 3 ? ValType::kInt : ValType::kFloat;
      col.est = c == 0 ? 4000 : 100;
      col.key_range = c == 0;
      base.cols.push_back(col);
    }
    frames_.push_back(std::move(base));

    int ops = static_cast<int>(rng_.Uniform(5, 16));
    for (int i = 0; i < ops; ++i) EmitRandomOp();

    // Return every column of the most recently created frame (the deepest
    // pipeline) — one alignment class, so canonicalization is a clean row
    // table even when engines order group ids differently.
    const Frame& last = frames_.back();
    for (std::size_t c = 0; c < last.cols.size() && c < 4; ++c) {
      b_.Return(last.cols[c].var);
    }
    return b_.Build();
  }

 private:
  int S(const std::string& s) { return b_.Const(s); }
  int D(double v) { return b_.Const(v); }
  int I(std::int64_t v) { return b_.Const(v); }

  const Frame& Pick(const std::vector<int>& candidates) {
    return frames_[static_cast<std::size_t>(
        candidates[static_cast<std::size_t>(
            rng_.Uniform(0, static_cast<std::int64_t>(candidates.size()) - 1))])];
  }

  /// Frames whose row bound keeps downstream work bounded.
  std::vector<int> UsableFrames() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].rows_bound <= kMaxRows) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  static const Col* PickCol(common::Rng& rng, const Frame& f,
                            ValType type, double max_est,
                            bool require_key_range = false) {
    std::vector<const Col*> eligible;
    for (const Col& c : f.cols) {
      if (c.type != type || c.est > max_est) continue;
      if (require_key_range && !c.key_range) continue;
      eligible.push_back(&c);
    }
    if (eligible.empty()) return nullptr;
    return eligible[static_cast<std::size_t>(
        rng.Uniform(0, static_cast<std::int64_t>(eligible.size()) - 1))];
  }

  const Col* AnyNumericCol(const Frame& f, double max_est) {
    std::vector<const Col*> eligible;
    for (const Col& c : f.cols) {
      if (c.est <= max_est) eligible.push_back(&c);
    }
    if (eligible.empty()) return nullptr;
    return eligible[static_cast<std::size_t>(
        rng_.Uniform(0, static_cast<std::int64_t>(eligible.size()) - 1))];
  }

  /// Projects a random non-empty subset of `src`'s columns through the oid
  /// variable `oids` into a new frame with row bound `rows_bound`.
  Frame ProjectSubset(const Frame& src, int oids, double rows_bound) {
    Frame out;
    out.rows_bound = rows_bound;
    out.grouped = false;
    int want = static_cast<int>(rng_.Uniform(1, std::min<std::int64_t>(
                                                   3, static_cast<std::int64_t>(
                                                          src.cols.size()))));
    std::vector<std::size_t> order(src.cols.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(rng_.Uniform(
                                  0, static_cast<std::int64_t>(i) - 1))]);
    }
    for (int i = 0; i < want; ++i) {
      const Col& c = src.cols[order[static_cast<std::size_t>(i)]];
      Col out_col = c;
      out_col.var = b_.Emit("algebra", "projection", {oids, c.var});
      out.cols.push_back(out_col);
    }
    return out;
  }

  /// A random selection bound pair over a column with estimate `est`.
  std::vector<int> SelectArgs(int col, int cand, double est) {
    double lo = rng_.Uniform(-60, 110) * (est / 100.0);
    double hi = lo + rng_.Uniform(0, 120) * (est / 100.0);
    if (rng_.NextDouble() < 0.15) lo = -std::numeric_limits<double>::infinity();
    if (rng_.NextDouble() < 0.15) hi = std::numeric_limits<double>::infinity();
    return {col,   cand,  D(std::floor(lo)), D(std::floor(hi)),
            I(rng_.Uniform(0, 1)), I(rng_.Uniform(0, 1))};
  }

  void EmitRandomOp() {
    for (int attempt = 0; attempt < 8; ++attempt) {
      int kind = static_cast<int>(rng_.Uniform(0, 9));
      bool emitted = false;
      switch (kind) {
        case 0:
        case 1:
          emitted = EmitSelect();
          break;
        case 2:
          emitted = EmitJoin();
          break;
        case 3:
          emitted = EmitSemiAnti();
          break;
        case 4:
        case 5:
          emitted = EmitCalc();
          break;
        case 6:
          emitted = EmitGroupAgg();
          break;
        case 7:
          emitted = EmitSort();
          break;
        case 8:
          emitted = EmitCandUnion();
          break;
        default:
          break;
      }
      if (emitted) return;
    }
  }

  bool EmitSelect() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f = Pick(usable);
    const Col* col = AnyNumericCol(f, kMaxMagnitude);
    if (col == nullptr) return false;
    int cand = b_.Emit("algebra", "select",
                       SelectArgs(col->var, nil_const_, col->est));
    // Half the time, refine through the candidate list (the chained
    // select idiom every TPC-H plan uses).
    if (f.cols.size() > 1 && rng_.NextDouble() < 0.5) {
      const Col* col2 = AnyNumericCol(f, kMaxMagnitude);
      if (col2 != nullptr) {
        cand = b_.Emit("algebra", "select", SelectArgs(col2->var, cand, col2->est));
      }
    }
    frames_.push_back(ProjectSubset(f, cand, f.rows_bound));
    return true;
  }

  bool EmitCandUnion() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f = Pick(usable);
    const Col* a = AnyNumericCol(f, kMaxMagnitude);
    const Col* b = AnyNumericCol(f, kMaxMagnitude);
    if (a == nullptr || b == nullptr) return false;
    int ca = b_.Emit("algebra", "select", SelectArgs(a->var, nil_const_, a->est));
    int cb = b_.Emit("algebra", "select", SelectArgs(b->var, nil_const_, b->est));
    int both = b_.Emit("algebra", "candunion", {ca, cb});
    frames_.push_back(ProjectSubset(f, both, f.rows_bound));
    return true;
  }

  bool EmitJoin() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f1 = Pick(usable);
    const Frame& f2 = Pick(usable);
    // Prefer the sparse key band on at least one side; low-cardinality
    // joins on value columns explode quadratically.
    const Col* a = PickCol(rng_, f1, ValType::kInt, kMaxMagnitude,
                           /*require_key_range=*/true);
    if (a == nullptr) a = PickCol(rng_, f1, ValType::kInt, kMaxMagnitude);
    const Col* b = PickCol(rng_, f2, ValType::kInt, kMaxMagnitude);
    if (a == nullptr || b == nullptr) return false;
    double matches_per_probe =
        (a->key_range || b->key_range) ? 1.5 : f2.rows_bound / 100.0;
    double bound = f1.rows_bound * std::max(1.0, matches_per_probe);
    if (bound > kMaxRows) return false;
    auto lr = b_.EmitMulti("algebra", "join", {a->var, b->var}, 2);
    Frame joined = ProjectSubset(f1, lr[0], bound);
    Frame right = ProjectSubset(f2, lr[1], bound);
    for (const Col& c : right.cols) joined.cols.push_back(c);
    frames_.push_back(std::move(joined));
    return true;
  }

  bool EmitSemiAnti() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f1 = Pick(usable);
    const Frame& f2 = Pick(usable);
    const Col* a = PickCol(rng_, f1, ValType::kInt, kMaxMagnitude);
    const Col* b = PickCol(rng_, f2, ValType::kInt, kMaxMagnitude);
    if (a == nullptr || b == nullptr) return false;
    const char* op = rng_.NextDouble() < 0.5 ? "semijoin" : "antijoin";
    int oids = b_.Emit("algebra", op, {a->var, b->var});
    frames_.push_back(ProjectSubset(f1, oids, f1.rows_bound));
    return true;
  }

  bool EmitCalc() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    std::size_t fi = static_cast<std::size_t>(
        usable[static_cast<std::size_t>(rng_.Uniform(
            0, static_cast<std::int64_t>(usable.size()) - 1))]);
    Frame& f = frames_[fi];
    int kind = static_cast<int>(rng_.Uniform(0, 5));
    Col out;
    out.key_range = false;
    if (kind == 0) {
      // Arithmetic on two columns (add/sub/mul) under the budget.
      const Col* a = AnyNumericCol(f, kMaxMagnitude);
      const Col* b = AnyNumericCol(f, kMaxMagnitude);
      if (a == nullptr || b == nullptr) return false;
      const char* ops[] = {"add", "sub", "mul"};
      int which = static_cast<int>(rng_.Uniform(0, 2));
      double est = which == 2 ? a->est * b->est : a->est + b->est;
      if (est > kMaxMagnitude) return false;
      out.var = b_.Emit("batcalc", ops[which], {a->var, b->var});
      out.type = (a->type == ValType::kInt && b->type == ValType::kInt)
                     ? ValType::kInt
                     : ValType::kFloat;
      out.est = est;
    } else if (kind == 1) {
      // Scalar arithmetic; division only by powers of two (exact).
      const Col* a = AnyNumericCol(f, kMaxMagnitude);
      if (a == nullptr) return false;
      if (rng_.NextDouble() < 0.4) {
        double divisor = static_cast<double>(1 << rng_.Uniform(1, 4));
        out.var = b_.Emit("batcalc", "div", {a->var, D(divisor)});
        out.type = ValType::kFloat;
        out.est = a->est;
      } else {
        double s = static_cast<double>(rng_.Uniform(-20, 20));
        const char* op = rng_.NextDouble() < 0.5 ? "add" : "mul";
        double est = op[0] == 'a' ? a->est + std::abs(s) : a->est * std::abs(s);
        if (est > kMaxMagnitude) return false;
        bool scalar_left = rng_.NextDouble() < 0.5;
        std::vector<int> args = scalar_left ? std::vector<int>{D(s), a->var}
                                            : std::vector<int>{a->var, D(s)};
        out.var = b_.Emit("batcalc", op, std::move(args));
        out.type = ValType::kFloat;  // CalcScalar always yields float
        out.est = est;
      }
    } else if (kind == 2) {
      // Comparison -> 0/1 int column.
      const Col* a = AnyNumericCol(f, kMaxMagnitude);
      if (a == nullptr) return false;
      const char* cmps[] = {"eq", "ne", "lt", "le", "gt", "ge"};
      const char* cmp = cmps[rng_.Uniform(0, 5)];
      if (f.cols.size() > 1 && rng_.NextDouble() < 0.5) {
        const Col* b = AnyNumericCol(f, kMaxMagnitude);
        if (b == nullptr) return false;
        out.var = b_.Emit("batcalc", cmp, {a->var, b->var});
      } else {
        out.var = b_.Emit("batcalc", cmp,
                          {a->var, D(std::floor(rng_.Uniform(-60, 110) *
                                                (a->est / 100.0)))});
      }
      out.type = ValType::kInt;
      out.est = 1;
    } else if (kind == 3) {
      // Boolean algebra over two fresh comparisons.
      const Col* a = AnyNumericCol(f, kMaxMagnitude);
      const Col* b = AnyNumericCol(f, kMaxMagnitude);
      if (a == nullptr || b == nullptr) return false;
      int ca = b_.Emit("batcalc", "le", {a->var, D(std::floor(a->est / 2))});
      int cb = b_.Emit("batcalc", "ge", {b->var, D(-std::floor(b->est / 2))});
      out.var = b_.Emit("batcalc", rng_.NextDouble() < 0.5 ? "and" : "or", {ca, cb});
      out.type = ValType::kInt;
      out.est = 1;
    } else if (kind == 4) {
      // ifthenelse(cond, vals, const).
      const Col* cond = PickCol(rng_, f, ValType::kInt, 1.5);
      const Col* vals = AnyNumericCol(f, kMaxMagnitude - 100);
      if (cond == nullptr || vals == nullptr) return false;
      double else_val = static_cast<double>(rng_.Uniform(-100, 100));
      out.var = b_.Emit("batcalc", "ifthenelse", {cond->var, vals->var, D(else_val)});
      out.type = vals->type;
      out.est = std::max(vals->est, std::abs(else_val));
    } else {
      // Cast int -> float (exact by the budget).
      const Col* a = PickCol(rng_, f, ValType::kInt, kMaxMagnitude);
      if (a == nullptr) return false;
      out.var = b_.Emit("batcalc", "flt", {a->var});
      out.type = ValType::kFloat;
      out.est = a->est;
    }
    f.cols.push_back(out);
    return true;
  }

  bool EmitGroupAgg() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f = Pick(usable);
    const Col* key = PickCol(rng_, f, ValType::kInt, kMaxMagnitude);
    if (key == nullptr) return false;
    auto grp = b_.EmitMulti("algebra", "group", {key->var}, 3);
    int groups = grp[0];
    int ngroups = grp[2];
    Frame out;
    out.rows_bound = f.rows_bound;
    out.grouped = true;
    int naggs = static_cast<int>(rng_.Uniform(1, 3));
    for (int i = 0; i < naggs; ++i) {
      Col agg;
      agg.key_range = false;
      int which = static_cast<int>(rng_.Uniform(0, 4));
      const Col* vals =
          AnyNumericCol(f, kMaxMagnitude / std::max(1.0, f.rows_bound));
      if (which == 0 || vals == nullptr) {
        agg.var = b_.Emit("aggr", "subcount", {groups, ngroups});
        agg.type = ValType::kInt;
        agg.est = f.rows_bound;
      } else if (which == 1) {
        agg.var = b_.Emit("aggr", "subsum", {vals->var, groups, ngroups});
        agg.type = vals->type;
        agg.est = vals->est * f.rows_bound;
      } else if (which == 2) {
        const char* op = rng_.NextDouble() < 0.5 ? "submin" : "submax";
        agg.var = b_.Emit("aggr", op, {vals->var, groups, ngroups});
        agg.type = vals->type;
        agg.est = vals->est;
      } else {
        // subavg divides an exact sum by an exact count: both operands are
        // bit-identical across engines, so the quotient is too.
        agg.var = b_.Emit("aggr", "subavg", {vals->var, groups, ngroups});
        agg.type = ValType::kFloat;
        agg.est = vals->est;
      }
      out.cols.push_back(agg);
    }
    frames_.push_back(std::move(out));
    return true;
  }

  bool EmitSort() {
    std::vector<int> usable = UsableFrames();
    if (usable.empty()) return false;
    const Frame& f = Pick(usable);
    // Int keys only: NaN float nils have no total order to sort by.
    const Col* key = PickCol(rng_, f, ValType::kInt, kMaxMagnitude);
    if (key == nullptr) return false;
    auto vo = b_.EmitMulti("algebra", "sort", {key->var}, 2);
    Frame out = ProjectSubset(f, vo[1], f.rows_bound);
    Col sorted;
    sorted.var = vo[0];
    sorted.type = ValType::kInt;
    sorted.est = key->est;
    sorted.key_range = key->key_range;
    out.cols.push_back(sorted);
    frames_.push_back(std::move(out));
    return true;
  }

  common::Rng& rng_;
  const FuzzDb& db_;
  mal::ProgramBuilder b_;
  std::vector<Frame> frames_;
  int nil_const_ = -1;
};

// --- Execution and comparison ------------------------------------------------

/// Rows of doubles, lexicographically sorted; NaNs (float nil, 0/0) are
/// mapped to a finite sentinel so sorting stays a strict weak order and
/// equality means "same bits, nil-for-nil".
using Rows = std::vector<std::vector<double>>;

constexpr double kNanSentinel = -1.0e308;

Rows Canonicalize(const std::vector<mal::Value>& returns) {
  std::size_t nrows = 0;
  std::vector<std::vector<double>> columns;
  for (const mal::Value& v : returns) {
    if (std::holds_alternative<double>(v)) {
      columns.push_back({std::get<double>(v)});
    } else if (std::holds_alternative<std::int64_t>(v)) {
      columns.push_back({static_cast<double>(std::get<std::int64_t>(v))});
    } else if (std::holds_alternative<BatPtr>(v)) {
      const BatPtr& b = std::get<BatPtr>(v);
      std::vector<double> col;
      col.reserve(b->size());
      switch (b->type()) {
        case ValType::kInt:
          for (auto x : b->ints()) col.push_back(x);
          break;
        case ValType::kFloat:
          for (auto x : b->floats()) col.push_back(x);
          break;
        case ValType::kOid:
          for (auto x : b->oids()) col.push_back(x);
          break;
      }
      columns.push_back(std::move(col));
    } else {
      columns.push_back({});
    }
    nrows = std::max(nrows, columns.back().size());
  }
  Rows rows(nrows);
  for (auto& col : columns) {
    for (std::size_t i = 0; i < nrows; ++i) {
      double x = i < col.size() ? col[i] : 0;
      rows[i].push_back(std::isnan(x) ? kNanSentinel : x);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Under an externally supplied fault schedule (the CI fault matrix runs
/// this binary with OCELOT_FAULT_SPEC exported) the contract for every test
/// here weakens from "must succeed" to "bit-identical or a clean
/// fault-coded error": an injected fault may legitimately kill a query on a
/// non-redundant engine. Without an active spec this always returns false
/// and the strict assertions stand.
bool TolerableFault(const common::Status& s) {
  if (ocl::FaultSpec::Active().empty()) return false;
  return s.code() == common::StatusCode::kDeviceLost ||
         s.code() == common::StatusCode::kResourceExhausted;
}

std::uint64_t FuzzSeed() {
  if (const char* env = std::getenv("OCELOT_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260729;
}

int FuzzIters() {
  if (const char* env = std::getenv("OCELOT_FUZZ_ITERS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 200;
}

TEST(DifferentialFuzzTest, AllEnginesAgreeWithSeqOnRandomPrograms) {
  const std::uint64_t base_seed = FuzzSeed();
  const int iters = FuzzIters();
  const std::vector<std::string> engines = mal::OrderedEngineNames();

  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(iter);
    common::Rng rng(seed);
    FuzzDb db = MakeDb(rng);
    ProgramFuzzer fuzzer(rng, db);
    mal::Program program = fuzzer.Generate();

    // Golden: the sequential baseline under strict operator-at-a-time
    // interpretation.
    Rows golden;
    {
      auto session = mal::Session::Open("seq");
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      mal::RunOptions options;
      options.mode = mal::RunOptions::Mode::kSequential;
      auto res = mal::Run(program, db.catalog, session->get(), options);
      ASSERT_TRUE(res.ok()) << "seed " << seed << " iter " << iter
                            << ": golden failed: " << res.status().ToString()
                            << "\n"
                            << program.Explain();
      golden = Canonicalize(res->returns);
    }

    for (const std::string& engine : engines) {
      for (auto mode : {mal::RunOptions::Mode::kSequential,
                        mal::RunOptions::Mode::kDataflow}) {
        if (std::getenv("OCELOT_FUZZ_TRACE") != nullptr) {
          // Crash triage: a SIGSEGV/CHECK inside an engine never reaches the
          // gtest failure printer, so narrate progress up front.
          std::fprintf(stderr, "[fuzz] seed %llu iter %d engine %s mode %d\n%s",
                       static_cast<unsigned long long>(seed), iter,
                       engine.c_str(), static_cast<int>(mode),
                       iter == 0 ? program.Explain().c_str() : "");
        }
        auto session = mal::Session::Open(engine);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        mal::Program prog = program;
        if ((*session)->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
        mal::RunOptions options;
        options.mode = mode;
        auto res = mal::Run(prog, db.catalog, session->get(), options);
        const char* mode_name =
            mode == mal::RunOptions::Mode::kDataflow ? "dataflow" : "sequential";
        if (!res.ok() && TolerableFault(res.status())) continue;
        ASSERT_TRUE(res.ok())
            << "seed " << seed << " iter " << iter << " engine " << engine
            << " mode " << mode_name << ": " << res.status().ToString() << "\n"
            << program.Explain();
        (*session)->FinishDevices();
        Rows got = Canonicalize(res->returns);
        ASSERT_EQ(golden, got)
            << "DIVERGENCE seed " << seed << " iter " << iter << " engine "
            << engine << " mode " << mode_name
            << "\nreplay: OCELOT_FUZZ_SEED=" << seed
            << " OCELOT_FUZZ_ITERS=1 ./fuzz_differential_test\n"
            << program.Explain();
      }
    }
  }
}

// The SIMD axis: the same random programs, golden computed under forced
// scalar kernels (OCELOT_SCALAR_KERNELS semantics) and every engine run
// with the vector path enabled. Any bit of divergence means a vector
// kernel broke the determinism contract of common/simd.h — nil handling,
// the cvttsd2si overflow convention, double-domain float math, or the
// radix/chained match order.
TEST(DifferentialFuzzTest, ScalarAndSimdKernelsBitIdentical) {
  const std::uint64_t base_seed = FuzzSeed() + 777;
  const int iters = std::max(1, FuzzIters() / 4);
  const std::vector<std::string> engines = mal::OrderedEngineNames();
  const bool was_forced = !common::simd::Enabled();

  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(iter);
    common::Rng rng(seed);
    FuzzDb db = MakeDb(rng);
    ProgramFuzzer fuzzer(rng, db);
    mal::Program program = fuzzer.Generate();

    Rows golden;
    {
      common::simd::SetForceScalar(true);
      auto session = mal::Session::Open("seq");
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      mal::RunOptions options;
      options.mode = mal::RunOptions::Mode::kSequential;
      auto res = mal::Run(program, db.catalog, session->get(), options);
      common::simd::SetForceScalar(was_forced);
      ASSERT_TRUE(res.ok()) << "seed " << seed << " iter " << iter
                            << ": scalar golden failed: "
                            << res.status().ToString() << "\n"
                            << program.Explain();
      golden = Canonicalize(res->returns);
    }

    common::simd::SetForceScalar(false);
    for (const std::string& engine : engines) {
      auto session = mal::Session::Open(engine);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      mal::Program prog = program;
      if ((*session)->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
      mal::RunOptions options;
      options.mode = mal::RunOptions::Mode::kDataflow;
      auto res = mal::Run(prog, db.catalog, session->get(), options);
      if (!res.ok() && TolerableFault(res.status())) continue;
      ASSERT_TRUE(res.ok()) << "seed " << seed << " iter " << iter
                            << " engine " << engine << " (simd): "
                            << res.status().ToString() << "\n"
                            << program.Explain();
      (*session)->FinishDevices();
      Rows got = Canonicalize(res->returns);
      ASSERT_EQ(golden, got)
          << "SCALAR/SIMD DIVERGENCE seed " << seed << " iter " << iter
          << " engine " << engine
          << "\nreplay: OCELOT_FUZZ_SEED=" << (seed - 777)
          << " OCELOT_FUZZ_ITERS=1 ./fuzz_differential_test\n"
          << program.Explain();
    }
    common::simd::SetForceScalar(was_forced);
  }
}

// The encoding axis: the same random programs, golden computed on the
// plain catalog, then re-executed on every engine against catalogs
// re-formatted under each forced column encoding (dict / RLE / bit-packed;
// rebuilt from the same seed so the logical data is identical). Divergence
// means a compressed-aware kernel or a Decode() fallback broke the
// transparency contract of cstore/encoding.h. A final leg re-runs the
// dict-encoded catalog under a seeded fault schedule: encoded uploads and
// on-device decode kernels must recover (or fail fault-coded) exactly like
// plain ones.
TEST(DifferentialFuzzTest, ForcedEncodingsBitIdenticalAcrossEngines) {
  struct SpecGuard {
    ~SpecGuard() { ocl::ClearFaultSpecForTesting(); }
  } guard;

  const std::uint64_t base_seed = FuzzSeed() + 31337;
  const int iters = std::max(1, FuzzIters() / 10);
  const std::vector<std::string> engines = mal::OrderedEngineNames();
  const cstore::EncodingPolicy policies[] = {cstore::EncodingPolicy::kDict,
                                             cstore::EncodingPolicy::kRle,
                                             cstore::EncodingPolicy::kBitPacked};

  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(iter);
    common::Rng rng(seed);
    FuzzDb db = MakeDb(rng);
    ProgramFuzzer fuzzer(rng, db);
    mal::Program program = fuzzer.Generate();

    Rows golden;
    {
      auto session = mal::Session::Open("seq");
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      mal::RunOptions options;
      options.mode = mal::RunOptions::Mode::kSequential;
      auto res = mal::Run(program, db.catalog, session->get(), options);
      ASSERT_TRUE(res.ok()) << "seed " << seed << " iter " << iter
                            << ": plain golden failed: "
                            << res.status().ToString() << "\n"
                            << program.Explain();
      golden = Canonicalize(res->returns);
    }

    for (cstore::EncodingPolicy policy : policies) {
      // Identical logical columns, fresh heaps: replay the db generator
      // from the seed, then force-encode (MakeDb never encodes itself).
      common::Rng rng2(seed);
      FuzzDb encoded_db = MakeDb(rng2);
      cstore::ApplyEncodings(&encoded_db.catalog, policy);
      const char* policy_name =
          policy == cstore::EncodingPolicy::kDict
              ? "dict"
              : policy == cstore::EncodingPolicy::kRle ? "rle" : "bitpack";

      for (const std::string& engine : engines) {
        for (auto mode : {mal::RunOptions::Mode::kSequential,
                          mal::RunOptions::Mode::kDataflow}) {
          auto session = mal::Session::Open(engine);
          ASSERT_TRUE(session.ok()) << session.status().ToString();
          mal::Program prog = program;
          if ((*session)->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
          mal::RunOptions options;
          options.mode = mode;
          auto res = mal::Run(prog, encoded_db.catalog, session->get(), options);
          if (!res.ok() && TolerableFault(res.status())) continue;
          ASSERT_TRUE(res.ok())
              << "seed " << seed << " iter " << iter << " engine " << engine
              << " encoding " << policy_name << ": " << res.status().ToString()
              << "\n"
              << program.Explain();
          (*session)->FinishDevices();
          Rows got = Canonicalize(res->returns);
          ASSERT_EQ(golden, got)
              << "ENCODING DIVERGENCE seed " << seed << " iter " << iter
              << " engine " << engine << " encoding " << policy_name
              << "\nreplay: OCELOT_FUZZ_SEED=" << (seed - 31337)
              << " OCELOT_FUZZ_ITERS=1 ./fuzz_differential_test\n"
              << program.Explain();
        }
      }
    }

    // Fault-schedule leg on the dict-encoded catalog: bit-identical or a
    // clean fault-coded error, exactly as for plain heaps.
    {
      common::Rng rng3(seed);
      FuzzDb encoded_db = MakeDb(rng3);
      cstore::ApplyEncodings(&encoded_db.catalog, cstore::EncodingPolicy::kDict);
      const std::string spec = "dev=*,op=*,p=0.05,mode=transient,seed=13";
      ocl::SetFaultSpecForTesting(spec);
      for (const std::string& engine : engines) {
        auto session = mal::Session::Open(engine);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        mal::Program prog = program;
        if ((*session)->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
        mal::RunOptions options;
        options.mode = mal::RunOptions::Mode::kDataflow;
        auto res = mal::Run(prog, encoded_db.catalog, session->get(), options);
        if (!res.ok()) {
          common::StatusCode code = res.status().code();
          ASSERT_TRUE(code == common::StatusCode::kDeviceLost ||
                      code == common::StatusCode::kResourceExhausted)
              << "NON-FAULT ERROR seed " << seed << " iter " << iter
              << " engine " << engine << " (encoded, spec " << spec
              << "): " << res.status().ToString() << "\n"
              << program.Explain();
          continue;
        }
        (void)(*session)->FinishDevices();
        Rows got = Canonicalize(res->returns);
        ASSERT_EQ(golden, got)
            << "ENCODED FAULT DIVERGENCE seed " << seed << " iter " << iter
            << " engine " << engine << " spec " << spec << "\n"
            << program.Explain();
      }
      ocl::ClearFaultSpecForTesting();
    }
  }
}

// The fault axis: the same random programs re-executed under seeded fault
// schedules. The determinism contract under test: whatever the schedule
// does — transient blips the scheduler retries through, a permanently dead
// GPU it quarantines and re-plans around, allocation exhaustion it falls
// back to the host for — a query either returns results *bit-identical* to
// the fault-free run or fails with a clean fault-coded Status. A wrong
// answer, a crash, or a non-fault error code is a divergence.
TEST(DifferentialFuzzTest, FaultSchedulesNeverDivergeResults) {
  // ASSERT returns out of the test body, so clear the process-global spec
  // from a guard — a leaked spec would fault every later test in the binary.
  struct SpecGuard {
    ~SpecGuard() { ocl::ClearFaultSpecForTesting(); }
  } guard;

  const std::uint64_t base_seed = FuzzSeed() + 4242;
  const int iters = std::max(1, FuzzIters() / 20);
  const std::vector<std::string> engines = mal::OrderedEngineNames();
  // Three seeds per schedule shape (the issue's minimum sweep), covering
  // transient-everywhere, a GPU falling off the bus, and device-memory
  // exhaustion.
  const std::uint64_t fault_seeds[] = {11, 23, 47};
  const char* shapes[] = {
      "dev=*,op=*,p=0.05,mode=transient,seed=",
      "dev=gpu,op=*,p=0.03,mode=permanent,seed=",
      "dev=*,op=alloc,p=0.08,mode=transient,seed=",
  };

  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(iter);
    common::Rng rng(seed);
    FuzzDb db = MakeDb(rng);
    ProgramFuzzer fuzzer(rng, db);
    mal::Program program = fuzzer.Generate();

    // Fault-free golden.
    Rows golden;
    {
      ocl::ClearFaultSpecForTesting();
      auto session = mal::Session::Open("seq");
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      mal::RunOptions options;
      options.mode = mal::RunOptions::Mode::kSequential;
      auto res = mal::Run(program, db.catalog, session->get(), options);
      ASSERT_TRUE(res.ok()) << "seed " << seed << " iter " << iter
                            << ": golden failed: " << res.status().ToString()
                            << "\n"
                            << program.Explain();
      golden = Canonicalize(res->returns);
    }

    for (const char* shape : shapes) {
      for (std::uint64_t fault_seed : fault_seeds) {
        const std::string spec = shape + std::to_string(fault_seed);
        ocl::SetFaultSpecForTesting(spec);
        for (const std::string& engine : engines) {
          auto session = mal::Session::Open(engine);
          ASSERT_TRUE(session.ok()) << session.status().ToString();
          mal::Program prog = program;
          if ((*session)->hardware_oblivious()) prog = mal::RewriteForOcelot(prog);
          mal::RunOptions options;
          options.mode = mal::RunOptions::Mode::kDataflow;
          auto res = mal::Run(prog, db.catalog, session->get(), options);
          if (!res.ok()) {
            // Clean-error half of the contract: only fault codes may escape.
            common::StatusCode code = res.status().code();
            ASSERT_TRUE(code == common::StatusCode::kDeviceLost ||
                        code == common::StatusCode::kResourceExhausted)
                << "NON-FAULT ERROR seed " << seed << " iter " << iter
                << " engine " << engine << " spec " << spec << ": "
                << res.status().ToString() << "\n"
                << program.Explain();
            continue;
          }
          // Results are host-synced fragment by fragment before an operator
          // returns, so a drain-time injected fault cannot taint them.
          (void)(*session)->FinishDevices();
          Rows got = Canonicalize(res->returns);
          ASSERT_EQ(golden, got)
              << "FAULT DIVERGENCE seed " << seed << " iter " << iter
              << " engine " << engine << " spec " << spec
              << "\nreplay: OCELOT_FUZZ_SEED=" << (seed - 4242)
              << " OCELOT_FUZZ_ITERS=1 OCELOT_FAULT_SPEC=\"" << spec
              << "\" ./fuzz_differential_test\n"
              << program.Explain();
        }
        ocl::ClearFaultSpecForTesting();
      }
    }
  }
}

}  // namespace
