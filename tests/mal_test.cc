// Tests for the MAL plan layer: builder, EXPLAIN, interpreter dispatch,
// pipelines and the Ocelot query rewriter.

#include <gtest/gtest.h>

#include "mal/interp.h"
#include "mal/rewriter.h"

namespace {

using mal::Pipeline;
using mal::Program;
using mal::ProgramBuilder;

cstore::Catalog TinyCatalog() {
  cstore::Catalog catalog;
  cstore::Table t("t");
  auto vals = cstore::Bat::MakeInt(6);
  std::int32_t data[] = {5, 1, 9, 3, 7, 2};
  std::copy(std::begin(data), std::end(data), vals->ints().begin());
  OCELOT_CHECK_OK(t.AddColumn("v", vals));
  auto keys = cstore::Bat::MakeInt(6);
  for (int i = 0; i < 6; ++i) keys->ints()[static_cast<std::size_t>(i)] = i + 1;
  keys->SetDense(1);
  OCELOT_CHECK_OK(t.AddColumn("k", keys));
  OCELOT_CHECK_OK(catalog.AddTable(std::move(t)));
  return catalog;
}

Program SelectSumPlan() {
  ProgramBuilder b;
  int col = b.Emit("bat", "bind", {b.Const(std::string("t")), b.Const(std::string("v"))});
  int cand = b.Emit("algebra", "select",
                    {col, b.Const(mal::Value{}), b.Const(3.0), b.Const(9.0),
                     b.Const(std::int64_t{1}), b.Const(std::int64_t{1})});
  int vals = b.Emit("algebra", "projection", {cand, col});
  int sum = b.Emit("aggr", "sum", {vals});
  b.Return(sum);
  return b.Build();
}

TEST(MalProgramTest, ExplainRendersInstructions) {
  Program p = SelectSumPlan();
  std::string text = p.Explain();
  EXPECT_NE(text.find("algebra.select"), std::string::npos);
  EXPECT_NE(text.find("aggr.sum"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(MalRewriterTest, ReroutesModulesAndInsertsSync) {
  Program p = SelectSumPlan();
  Program rewritten = mal::RewriteForOcelot(p);
  EXPECT_EQ(mal::CountSyncs(p), 0);
  EXPECT_EQ(mal::CountSyncs(rewritten), 1);  // one per returned variable
  bool any_ocelot = false;
  for (const auto& ins : rewritten.instrs) {
    if (ins.module == "ocelot") any_ocelot = true;
    EXPECT_TRUE(ins.module == "ocelot" || ins.module == "bat") << ins.module;
  }
  EXPECT_TRUE(any_ocelot);
  EXPECT_NE(rewritten.Explain().find("ocelot.select"), std::string::npos);
}

class MalPipelineTest : public ::testing::TestWithParam<Pipeline> {};

TEST_P(MalPipelineTest, SelectSumRunsEverywhere) {
  cstore::Catalog catalog = TinyCatalog();
  auto session = mal::Session::Create(GetParam());
  Program p = SelectSumPlan();
  if (session->hardware_oblivious()) p = mal::RewriteForOcelot(p);
  auto res = mal::Run(p, catalog, session.get());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->returns.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(res->returns[0]), 5 + 9 + 3 + 7);
}

TEST_P(MalPipelineTest, JoinGroupPlanRunsEverywhere) {
  cstore::Catalog catalog = TinyCatalog();
  auto session = mal::Session::Create(GetParam());
  ProgramBuilder b;
  int v = b.Emit("bat", "bind", {b.Const(std::string("t")), b.Const(std::string("v"))});
  int k = b.Emit("bat", "bind", {b.Const(std::string("t")), b.Const(std::string("k"))});
  auto jr = b.EmitMulti("algebra", "join", {v, k}, 2);  // v values as FKs into k
  int matched = b.Emit("algebra", "projection", {jr[0], v});
  auto g = b.EmitMulti("group", "group", {matched}, 3);
  int cnt = b.Emit("aggr", "subcount", {g[0], g[2]});
  b.Return(cnt);
  Program p = b.Build();
  if (session->hardware_oblivious()) p = mal::RewriteForOcelot(p);
  auto res = mal::Run(p, catalog, session.get());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto bat = std::get<cstore::BatPtr>(res->returns[0]);
  // v values 1..6-range: {5,1,3,2} are within k=1..6, 9 and 7 are not; all
  // distinct -> 4 groups of one row each.
  EXPECT_EQ(bat->size(), 4u);
  for (std::int32_t c : bat->ints()) EXPECT_EQ(c, 1);
}

TEST_P(MalPipelineTest, UnknownOpReportsUnsupported) {
  cstore::Catalog catalog = TinyCatalog();
  auto session = mal::Session::Create(GetParam());
  ProgramBuilder b;
  b.Emit("voodoo", "levitate", {});
  auto res = mal::Run(b.Build(), catalog, session.get());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), common::StatusCode::kUnsupported);
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, MalPipelineTest,
                         ::testing::Values(Pipeline::kSequential, Pipeline::kMitosis,
                                           Pipeline::kOcelotCpu, Pipeline::kOcelotGpu,
                                           Pipeline::kOcelotMulti),
                         [](const auto& info) {
                           switch (info.param) {
                             case Pipeline::kSequential:
                               return "MS";
                             case Pipeline::kMitosis:
                               return "MP";
                             case Pipeline::kOcelotCpu:
                               return "OcelotCpu";
                             case Pipeline::kOcelotGpu:
                               return "OcelotGpu";
                             case Pipeline::kOcelotMulti:
                               return "OcelotMulti";
                             case Pipeline::kExternal:
                               return "External";
                           }
                           return "?";
                         });

}  // namespace
