// Tests for Ocelot's memory manager (paper 3.3): device caching, zero-copy
// on unified memory, LRU eviction of clean cache entries, hash-table-first
// aux eviction, host offloading of results with transparent reload, pinning
// and the BAT delete callbacks (4.3).

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "ocelot/engine.h"
#include "ocelot/hash_table.h"

namespace {

using cstore::Bat;
using cstore::BatPtr;
using cstore::Bound;
using ocelot::MemoryManager;
using ocelot::OcelotEngine;

BatPtr Column(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  BatPtr b = Bat::MakeInt(n);
  for (auto& v : b->ints()) v = static_cast<std::int32_t>(rng.Uniform(0, 999));
  return b;
}

std::unique_ptr<ocl::Context> TinyGpu(std::size_t mem_bytes) {
  ocl::DeviceModel gpu = ocl::Gtx460Model();
  gpu.global_mem_bytes = mem_bytes;
  gpu.kernel_compile_cost = 0;
  return ocl::Context::Create(gpu);
}

TEST(MemoryManagerTest, UnifiedMemoryIsZeroCopy) {
  auto ctx = ocl::Context::Create(ocl::XeonE5620Model());
  OcelotEngine engine(ctx.get());
  BatPtr col = Column(1000, 1);
  MemoryManager::OpScope scope(engine.memory());
  ocl::EventList waits;
  auto buf = engine.memory()->AcquireRead(&scope, col, &waits);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->data(), col->data());  // wraps the BAT heap directly
  EXPECT_EQ(ctx->device()->allocated_bytes(), 0u);
}

TEST(MemoryManagerTest, DiscreteDeviceCachesAcrossOperators) {
  auto ctx = TinyGpu(64 << 20);
  OcelotEngine engine(ctx.get());
  BatPtr col = Column(100'000, 2);
  ASSERT_TRUE(engine.Sum(col).ok());
  std::size_t after_first = engine.memory()->device_bytes();
  EXPECT_GT(after_first, 0u);
  // Second operator on the same BAT: no new base-data allocation.
  ASSERT_TRUE(engine.Min(col).ok());
  EXPECT_EQ(engine.memory()->evictions(), 0u);
}

TEST(MemoryManagerTest, LruEvictionOfCleanCacheEntries) {
  // 3 columns of 4 MB in 9 MB of device memory: scanning the third must
  // evict the least recently used cached copy.
  auto ctx = TinyGpu(9 << 20);
  OcelotEngine engine(ctx.get());
  BatPtr a = Column(1'000'000, 1), b = Column(1'000'000, 2), c = Column(1'000'000, 3);
  ASSERT_TRUE(engine.Sum(a).ok());
  ASSERT_TRUE(engine.Sum(b).ok());
  EXPECT_EQ(engine.memory()->evictions(), 0u);
  ASSERT_TRUE(engine.Sum(c).ok());
  EXPECT_GE(engine.memory()->evictions(), 1u);
  // Everything still works afterwards (A transfers again).
  ASSERT_TRUE(engine.Sum(a).ok());
}

TEST(MemoryManagerTest, ResultsAreOffloadedNotDropped) {
  auto ctx = TinyGpu(9 << 20);
  OcelotEngine engine(ctx.get());
  BatPtr a = Column(1'000'000, 1);
  auto doubled = engine.CalcScalar(cstore::CalcOp::kMul, a, 2.0, false);
  ASSERT_TRUE(doubled.ok());

  // Crowd the device with a column too large to fit next to the result even
  // after every clean cache entry is gone: the result must be offloaded.
  BatPtr b = Column(1'500'000, 2);  // 6 MB vs 9 MB device with a 4 MB result
  ASSERT_TRUE(engine.Sum(b).ok());
  EXPECT_GE(engine.memory()->offloads(), 1u);

  // Using the result again reloads it; contents are intact.
  auto total = engine.Sum(*doubled);
  ASSERT_TRUE(total.ok());
  double expect = 0;
  for (auto v : a->ints()) expect += 2.0 * v;
  EXPECT_NEAR(*total, expect, std::abs(expect) * 1e-6);
  EXPECT_GE(engine.memory()->reloads(), 1u);
}

TEST(MemoryManagerTest, HashTablesEvictBeforeResults) {
  auto ctx = TinyGpu(10 << 20);
  OcelotEngine engine(ctx.get());
  // A result buffer plus a cached hash table; pressure should drop the
  // table (aux structure) and keep the result resident.
  BatPtr a = Column(400'000, 1);
  auto result = engine.CalcScalar(cstore::CalcOp::kMul, a, 2.0, false);
  ASSERT_TRUE(result.ok());
  BatPtr keys = Bat::MakeInt(400'000);
  std::iota(keys->ints().begin(), keys->ints().end(), 0);
  keys->set_key(true);
  ASSERT_TRUE(ocelot::BuildHashTable(engine.memory(), keys, false).ok());

  std::uint64_t offloads_before = engine.memory()->offloads();
  BatPtr big = Column(1'200'000, 2);
  ASSERT_TRUE(engine.Sum(big).ok());
  EXPECT_GE(engine.memory()->evictions(), 1u);
  EXPECT_EQ(engine.memory()->offloads(), offloads_before);  // result untouched
}

TEST(MemoryManagerTest, PinnedBatSurvivesPressure) {
  auto ctx = TinyGpu(9 << 20);
  OcelotEngine engine(ctx.get());
  BatPtr hot = Column(500'000, 1);
  MemoryManager::OpScope scope(engine.memory());
  ASSERT_TRUE(engine.memory()->Pin(&scope, hot).ok());
  std::size_t bytes_with_hot = engine.memory()->device_bytes();

  BatPtr b = Column(1'000'000, 2), c = Column(1'000'000, 3);
  ASSERT_TRUE(engine.Sum(b).ok());
  ASSERT_TRUE(engine.Sum(c).ok());
  // The pinned column is still resident.
  EXPECT_GE(engine.memory()->device_bytes(), bytes_with_hot);
  ocl::EventList waits;
  MemoryManager::OpScope scope2(engine.memory());
  auto buf = engine.memory()->AcquireRead(&scope2, hot, &waits);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(waits.empty());  // no new transfer was needed
  engine.memory()->Unpin(hot);
}

TEST(MemoryManagerTest, BatDeletionDropsCacheEntries) {
  auto ctx = TinyGpu(64 << 20);
  OcelotEngine engine(ctx.get());
  {
    BatPtr temp = Column(100'000, 4);
    ASSERT_TRUE(engine.Sum(temp).ok());
    EXPECT_GT(engine.memory()->cached_entries(), 0u);
  }
  // The delete listener (paper 4.3) must have removed the entry.
  EXPECT_EQ(engine.memory()->cached_entries(), 0u);
  EXPECT_EQ(ctx->device()->allocated_bytes(), 0u);
}

TEST(MemoryManagerTest, ExhaustionWithNothingEvictableFails) {
  auto ctx = TinyGpu(1 << 20);  // 1 MB
  OcelotEngine engine(ctx.get());
  BatPtr big = Column(1'000'000, 5);  // 4 MB > device
  auto res = engine.Sum(big);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), common::StatusCode::kResourceExhausted);
}

TEST(MemoryManagerTest, SyncHandsOwnershipBack) {
  auto ctx = TinyGpu(64 << 20);
  OcelotEngine engine(ctx.get());
  BatPtr col = Column(10'000, 6);
  auto sel = engine.SelectRange(col, nullptr, Bound::Incl(0), Bound::Incl(499));
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE((*sel)->ocelot_owned());
  ASSERT_TRUE(engine.Sync(*sel).ok());
  EXPECT_FALSE((*sel)->ocelot_owned());
  // Host heap is authoritative now: values are sorted oids.
  auto oids = (*sel)->oids();
  EXPECT_TRUE(std::is_sorted(oids.begin(), oids.end()));
}

}  // namespace
